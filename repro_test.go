package repro

import (
	"math"
	"testing"
)

// TestFacadeQuickstart exercises the public API end to end: the Figure 1
// scenario from the package documentation.
func TestFacadeQuickstart(t *testing.T) {
	d := MustDataset([]Example{
		{Candidates: [][]float64{{32}}, Label: 0},
		{Candidates: [][]float64{{29}}, Label: 1},
		{Candidates: [][]float64{{25}, {65}}, Label: 1},
	}, 2)
	if d.WorldCount().Int64() != 2 {
		t.Fatalf("world count %s", d.WorldCount())
	}

	// Near Anna (29): 1-NN is Anna or Kevin@25, both label 1 → certain.
	q1, q2, err := Query(d, NegEuclidean{}, []float64{28}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !q1[1] || q2[1] != 1 {
		t.Fatalf("age 28: q1=%v q2=%v", q1, q2)
	}

	// At 60: Kevin@65 (label 1) vs John@32 (label 0) split the worlds.
	q1, q2, err = Query(d, NegEuclidean{}, []float64{60}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q1[0] || q1[1] {
		t.Fatalf("age 60 should be uncertain: %v", q1)
	}
	if q2[0] != 0.5 || q2[1] != 0.5 {
		t.Fatalf("age 60 fractions %v", q2)
	}
	if h := Entropy(q2); math.Abs(h-math.Log(2)) > 1e-12 {
		t.Fatalf("entropy %v", h)
	}
}

func TestFacadeEngineAndPins(t *testing.T) {
	d := MustDataset([]Example{
		{Candidates: [][]float64{{0}}, Label: 0},
		{Candidates: [][]float64{{1}}, Label: 1},
		{Candidates: [][]float64{{0.4}, {0.6}}, Label: 0},
	}, 2)
	e := NewEngine(d, NegEuclidean{}, []float64{0.5})
	sc, err := e.NewScratch(1)
	if err != nil {
		t.Fatal(err)
	}
	p := e.Counts(sc, -1, -1)
	if p[0] != 1 {
		t.Fatalf("both candidates of row 2 are nearest and labeled 0: %v", p)
	}
	// Pin row 2 away and the 1-NN becomes ambiguous between rows 0/1? No —
	// row 2 remains nearest; counts stay certain.
	e.SetPin(2, 1)
	p = e.Counts(sc, -1, -1)
	if p[0] != 1 {
		t.Fatalf("pinned counts %v", p)
	}
}

func TestFacadeWeighted(t *testing.T) {
	d := MustDataset([]Example{
		{Candidates: [][]float64{{0}}, Label: 0},
		{Candidates: [][]float64{{1}}, Label: 1},
		{Candidates: [][]float64{{0.1}, {0.9}}, Label: 1},
	}, 2)
	inst := InstanceFor(d, NegEuclidean{}, []float64{0.1})
	wi, err := NewWeightedInstance(inst, [][]float64{{1}, {1}, {0.25, 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := WeightedQ2(wi, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 1-NN of t=0.1: row 2's candidate 0.1 (label 1, exact hit) wins with
	// prior 0.25; otherwise row 0 at distance 0.1 (label 0).
	if math.Abs(p[1]-0.25) > 1e-12 || math.Abs(p[0]-0.75) > 1e-12 {
		t.Fatalf("weighted fractions %v", p)
	}
}

func TestFacadeFromComplete(t *testing.T) {
	d, err := FromComplete([][]float64{{0}, {1}}, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	q1, _, err := Query(d, NegEuclidean{}, []float64{0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !q1[0] {
		t.Fatal("complete dataset must be certain")
	}
}

func TestFacadeQ1Q2Dispatch(t *testing.T) {
	d := MustDataset([]Example{
		{Candidates: [][]float64{{0}, {2}}, Label: 0},
		{Candidates: [][]float64{{1}}, Label: 1},
		{Candidates: [][]float64{{3}}, Label: 1},
	}, 2)
	inst := InstanceFor(d, NegEuclidean{}, []float64{1.5})
	for _, alg := range []Algorithm{Auto, SSDC, SSDCMC, SSExact, BruteForce} {
		q2, err := Q2(inst, 1, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		sum := q2[0] + q2[1]
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%v: fractions %v", alg, q2)
		}
	}
	if _, err := Q1(inst, 1, MM); err != nil {
		t.Fatal(err)
	}
}
