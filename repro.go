// Package repro is a Go implementation of "Nearest Neighbor Classifiers over
// Incomplete Information: From Certain Answers to Certain Predictions"
// (Karlaš et al., VLDB 2020): Certain-Prediction (CP) queries for K-nearest-
// neighbor classifiers over incomplete training data, answered in polynomial
// time over exponentially many possible worlds, plus the CPClean
// data-cleaning-for-ML algorithm built on top of them.
//
// # Concepts
//
// An incomplete dataset (Dataset) assigns each training example a candidate
// set C_i of possible feature vectors; every way of choosing one candidate
// per example is a possible world. A test point is *certainly predicted*
// (CP'ed) if the K-NN classifiers of all possible worlds agree on its label.
//
// Two primitive queries:
//
//   - Q1 (checking): is label y predicted in every possible world?
//   - Q2 (counting): what fraction of possible worlds predict y?
//
// # Quick start
//
//	d := repro.MustDataset([]repro.Example{
//	    {Candidates: [][]float64{{0.1}, {0.9}}, Label: 0}, // uncertain row
//	    {Candidates: [][]float64{{0.8}}, Label: 1},
//	}, 2)
//	q1, q2, _ := repro.Query(d, repro.NegEuclidean{}, []float64{0.85}, 1)
//
// For data cleaning, build a Task from a dirty table and run CPClean; see
// examples/ and the cmd/ tools.
package repro

import (
	"repro/internal/cleaning"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/repair"
	"repro/internal/table"
)

// Re-exported dataset model (paper §2, Definitions 1-2).
type (
	// Example is one training example with a candidate set of possible
	// feature vectors.
	Example = dataset.Example
	// Dataset is an incomplete training set D = {(C_i, y_i)}.
	Dataset = dataset.Incomplete
)

// Re-exported kernels (the paper's similarity functions κ).
type (
	// Kernel scores similarity between feature vectors.
	Kernel = knn.Kernel
	// NegEuclidean is the paper's experimental kernel: −‖a−b‖₂.
	NegEuclidean = knn.NegEuclidean
	// RBF is the Gaussian kernel exp(−γ‖a−b‖²).
	RBF = knn.RBF
	// Linear is the dot-product kernel.
	Linear = knn.Linear
	// Cosine is the cosine-similarity kernel.
	Cosine = knn.Cosine
)

// Re-exported CP query machinery (paper §3).
type (
	// Instance is an incomplete dataset viewed through one test point
	// (candidate similarities + labels).
	Instance = core.Instance
	// Engine answers repeated Q1/Q2 queries for one test point under
	// evolving cleaning state.
	Engine = core.Engine
	// Scratch is per-goroutine engine query state.
	Scratch = core.Scratch
	// ExactCounts is a big-integer Q2 answer.
	ExactCounts = core.ExactCounts
	// Algorithm selects a query implementation (SS, SS-DC, MM, ...).
	Algorithm = core.Algorithm
)

// Algorithm selectors.
const (
	Auto       = core.Auto
	BruteForce = core.BruteForce
	SSExact    = core.SSExact
	SSFast     = core.SSFast
	SSDC       = core.SSDC
	SSDCMC     = core.SSDCMC
	MM         = core.MM
)

// Re-exported cleaning application (paper §4-5).
type (
	// Task is a data-cleaning-for-ML problem instance.
	Task = cleaning.Task
	// CleanOptions configures CPClean / RandomClean runs.
	CleanOptions = cleaning.Options
	// CleanResult summarizes an iterative cleaning run.
	CleanResult = cleaning.Result
	// StepInfo is one step of a cleaning trajectory.
	StepInfo = cleaning.StepInfo
	// RepairOptions configures candidate-repair generation.
	RepairOptions = repair.Options
)

// Re-exported table substrate.
type (
	// Table is a typed in-memory table with missing cells.
	Table = table.Table
	// Column is one table column.
	Column = table.Column
	// Encoder maps table rows to feature vectors.
	Encoder = table.Encoder
)

// NewDataset validates and constructs an incomplete dataset.
func NewDataset(examples []Example, numLabels int) (*Dataset, error) {
	return dataset.New(examples, numLabels)
}

// MustDataset is NewDataset but panics on error.
func MustDataset(examples []Example, numLabels int) *Dataset {
	return dataset.MustNew(examples, numLabels)
}

// FromComplete wraps a complete training set as an incomplete dataset with
// singleton candidate sets.
func FromComplete(x [][]float64, y []int, numLabels int) (*Dataset, error) {
	return dataset.FromComplete(x, y, numLabels)
}

// Query answers both CP queries for test point t: q1[y] reports whether y is
// certainly predicted; q2[y] is the fraction of possible worlds predicting y.
func Query(d *Dataset, kernel Kernel, t []float64, k int) (q1 []bool, q2 []float64, err error) {
	return core.QueryDataset(d, kernel, t, k)
}

// Q1 answers the checking query on a similarity instance with the chosen
// algorithm.
func Q1(inst *Instance, k int, alg Algorithm) ([]bool, error) {
	return core.Q1(inst, k, alg)
}

// Q2 answers the counting query (normalized world fractions) on a similarity
// instance with the chosen algorithm.
func Q2(inst *Instance, k int, alg Algorithm) ([]float64, error) {
	return core.Q2(inst, k, alg)
}

// InstanceFor computes the similarity view of (d, t) under kernel.
func InstanceFor(d *Dataset, kernel Kernel, t []float64) *Instance {
	return core.InstanceFor(d, kernel, t)
}

// NewEngine builds a reusable CP-query engine for one test point.
func NewEngine(d *Dataset, kernel Kernel, t []float64) *Engine {
	return core.NewEngine(d, kernel, t)
}

// Entropy is the Shannon entropy (nats) of a Q2 distribution — CPClean's
// selection objective.
func Entropy(q2 []float64) float64 { return core.Entropy(q2) }

// WeightedInstance attaches per-candidate prior probabilities to an
// Instance — the block tuple-independent probabilistic-database semantics
// with non-uniform priors.
type WeightedInstance = core.WeightedInstance

// NewWeightedInstance validates priors (each row must sum to 1).
func NewWeightedInstance(inst *Instance, probs [][]float64) (*WeightedInstance, error) {
	return core.NewWeightedInstance(inst, probs)
}

// WeightedQ2 computes P[prediction = y] under candidate priors.
func WeightedQ2(wi *WeightedInstance, k int) ([]float64, error) {
	return core.WeightedQ2(wi, k)
}

// NewTask assembles a data-cleaning task from a dirty training table, its
// ground truth (for the simulated cleaning oracle), and complete
// validation/test tables.
func NewTask(dirty, truth, val, test *Table, k int, kernel Kernel, opts RepairOptions) (*Task, error) {
	return cleaning.NewTask(dirty, truth, val, test, k, kernel, opts)
}

// DefaultCleanOptions returns the recommended CPClean configuration (the
// certain-skip lemma on, one row per sweep).
func DefaultCleanOptions() CleanOptions { return cleaning.DefaultOptions() }

// CPClean runs the paper's Algorithm 3: greedy minimum-expected-entropy
// cleaning until every validation example is certainly predicted.
func CPClean(t *Task, opts CleanOptions) (*CleanResult, error) {
	return cleaning.CPClean(t, opts)
}

// RandomClean is the random-order cleaning baseline.
func RandomClean(t *Task, opts CleanOptions) (*CleanResult, error) {
	return cleaning.RandomClean(t, opts)
}
