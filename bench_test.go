// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus microbenchmarks of the CP-query algorithms (Figure 4's complexity
// claims) and ablations of the design choices called out in DESIGN.md §6.
//
// The Benchmark{Table,Figure}* entries run the corresponding experiment at
// the tiny scale (full scales via cmd/cpbench -scale small|medium|paper).
package repro

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/cleaning"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/knn"
	"repro/internal/serve"
)

// --- Table and figure regenerators (tiny scale) -----------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(experiments.Tiny, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTable2(b *testing.B, name string) {
	spec, err := experiments.SpecByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2Dataset(spec, experiments.Tiny, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_BabyProduct(b *testing.B) { benchTable2(b, "BabyProduct") }
func BenchmarkTable2_Supreme(b *testing.B)     { benchTable2(b, "Supreme") }
func BenchmarkTable2_Bank(b *testing.B)        { benchTable2(b, "Bank") }
func BenchmarkTable2_Puma(b *testing.B)        { benchTable2(b, "Puma") }

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFigure4([]int{100, 200}, 1)
	}
}

func benchFigure9(b *testing.B, name string) {
	spec, err := experiments.SpecByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure9Dataset(spec, experiments.Tiny, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9_BabyProduct(b *testing.B) { benchFigure9(b, "BabyProduct") }
func BenchmarkFigure9_Supreme(b *testing.B)     { benchFigure9(b, "Supreme") }
func BenchmarkFigure9_Bank(b *testing.B)        { benchFigure9(b, "Bank") }
func BenchmarkFigure9_Puma(b *testing.B)        { benchFigure9(b, "Puma") }

func BenchmarkFigure10(b *testing.B) {
	spec, err := experiments.SpecByName("Supreme")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure10Dataset(spec, experiments.Tiny, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- CP-query microbenchmarks (Figure 4 rows) --------------------------------

// benchInstance builds a deterministic random instance.
func benchInstance(n, m, numLabels int) *core.Instance {
	rng := rand.New(rand.NewSource(42))
	sims := make([][]float64, n)
	labels := make([]int, n)
	for i := range sims {
		row := make([]float64, m)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		sims[i] = row
		labels[i] = rng.Intn(numLabels)
	}
	for l := 0; l < numLabels && l < n; l++ {
		labels[l] = l
	}
	return core.MustNewInstance(sims, labels, numLabels)
}

func BenchmarkQ2_SSFast_K1_N1000(b *testing.B) {
	inst := benchInstance(1000, 5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SSFastCounts(inst)
	}
}

func benchSSDC(b *testing.B, n, m, k, labels int) {
	inst := benchInstance(n, m, labels)
	e := core.NewEngineFromInstance(inst)
	sc := e.MustScratch(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Counts(sc, -1, -1)
	}
}

func BenchmarkQ2_SSDC_K3_N250(b *testing.B)  { benchSSDC(b, 250, 5, 3, 2) }
func BenchmarkQ2_SSDC_K3_N1000(b *testing.B) { benchSSDC(b, 1000, 5, 3, 2) }
func BenchmarkQ2_SSDC_K3_N4000(b *testing.B) { benchSSDC(b, 4000, 5, 3, 2) }
func BenchmarkQ2_SSDC_K7_N1000(b *testing.B) { benchSSDC(b, 1000, 5, 7, 2) }

func benchSSDCMC(b *testing.B, n, m, k, labels int) {
	inst := benchInstance(n, m, labels)
	e := core.NewEngineFromInstance(inst)
	sc := e.MustScratch(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CountsMC(sc, -1, -1)
	}
}

func BenchmarkQ2_SSDCMC_K3_N1000_Y2(b *testing.B)  { benchSSDCMC(b, 1000, 5, 3, 2) }
func BenchmarkQ2_SSDCMC_K3_N1000_Y8(b *testing.B)  { benchSSDCMC(b, 1000, 5, 3, 8) }
func BenchmarkQ2_SSDCMC_K3_N1000_Y16(b *testing.B) { benchSSDCMC(b, 1000, 5, 3, 16) }

// Ablation: tally enumeration (SS-DC) blows up combinatorially in |Y| while
// the winner-cap DP (SS-DC-MC) stays polynomial.
func BenchmarkAblation_SSDC_TallyEnum_K3_Y8(b *testing.B) { benchSSDC(b, 1000, 5, 3, 8) }

func BenchmarkQ1_MM_N1000(b *testing.B) {
	inst := benchInstance(1000, 5, 2)
	e := core.NewEngineFromInstance(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.CheckMM(3, -1, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQ1_MM_N4000(b *testing.B) {
	inst := benchInstance(4000, 5, 2)
	e := core.NewEngineFromInstance(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.CheckMM(3, -1, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: naive exact SortScan (per-candidate DP recomputation, big-int
// arithmetic) vs the segment-tree scan above.
func BenchmarkAblation_SSExact_K3_N100(b *testing.B) {
	inst := benchInstance(100, 5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SSExactCounts(inst, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: exact incremental big-int scan vs the float64 K=1 scan.
func BenchmarkAblation_SSFastExact_K1_N250(b *testing.B) {
	inst := benchInstance(250, 5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SSFastExactCounts(inst)
	}
}

// --- Serving layer ------------------------------------------------------------

// benchServeData builds a deterministic incomplete dataset in feature space
// (benchInstance works on similarities; serving needs raw candidates).
func benchServeData(n, m, numLabels, dim int, seed int64) *dataset.Incomplete {
	rng := rand.New(rand.NewSource(seed))
	examples := make([]dataset.Example, n)
	for i := range examples {
		label := rng.Intn(numLabels)
		if i < numLabels {
			label = i
		}
		cands := make([][]float64, 1)
		base := make([]float64, dim)
		for d := range base {
			base[d] = float64(label) + rng.NormFloat64()
		}
		cands[0] = base
		if rng.Float64() < 0.4 {
			for j := 1; j < m; j++ {
				c := make([]float64, dim)
				for d := range c {
					c[d] = base[d] + rng.NormFloat64()
				}
				cands = append(cands, c)
			}
		}
		examples[i] = dataset.Example{Candidates: cands, Label: label}
	}
	return dataset.MustNew(examples, numLabels)
}

func benchServePoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = 2 * rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// benchServeBatch measures serve.BatchQuery throughput for one batch of
// `batch` points per iteration. hot repeats the same batch (engine-cache
// hits); cold cycles through distinct batches (cache misses, so the win
// comes from Scratch pooling + worker parallelism alone).
func benchServeBatch(b *testing.B, batch int, hot bool) {
	d := benchServeData(500, 3, 2, 4, 42)
	s := serve.NewServer(serve.Config{})
	if _, err := s.Register("bench", d, knn.NegEuclidean{}, 3); err != nil {
		b.Fatal(err)
	}
	const distinct = 64
	batches := make([][][]float64, distinct)
	for i := range batches {
		batches[i] = benchServePoints(batch, 4, int64(100+i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := batches[0]
		if !hot {
			pts = batches[i%distinct]
		}
		if _, err := s.BatchQuery(context.Background(), "bench", serve.BatchRequest{Points: pts}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeBatch16_PooledHot(b *testing.B)  { benchServeBatch(b, 16, true) }
func BenchmarkServeBatch16_PooledCold(b *testing.B) { benchServeBatch(b, 16, false) }
func BenchmarkServeBatch64_PooledCold(b *testing.B) { benchServeBatch(b, 64, false) }

// Baseline: the pre-serving path — one engine + one Scratch constructed and
// thrown away per query, sequentially.
func benchServeNaive(b *testing.B, batch int) {
	d := benchServeData(500, 3, 2, 4, 42)
	points := benchServePoints(batch, 4, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range points {
			e := core.NewEngine(d, knn.NegEuclidean{}, t)
			sc := e.MustScratch(3)
			e.Counts(sc, -1, -1)
			if _, err := e.CheckMM(3, -1, -1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkServeBatch16_NaivePerQuery(b *testing.B) { benchServeNaive(b, 16) }
func BenchmarkServeBatch64_NaivePerQuery(b *testing.B) { benchServeNaive(b, 64) }

// Scratch construction vs pooled reuse — the allocation the ScratchPool
// amortizes (segment trees dominate: O(N·K) floats per label).
func BenchmarkScratch_Fresh_N1000(b *testing.B) {
	inst := benchInstance(1000, 5, 2)
	e := core.NewEngineFromInstance(inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MustScratch(3)
	}
}

func BenchmarkScratch_Pooled_N1000(b *testing.B) {
	inst := benchInstance(1000, 5, 2)
	e := core.NewEngineFromInstance(inst)
	pool, err := core.NewScratchPool(e, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Put(pool.Get())
	}
}

// --- Incremental batch Q2 under pins (Figure-9-style clean-while-query) ------

// benchBatchQ2CleanWhileQuery interleaves cleaning steps of a session with a
// repeated batch Q2 of the same points against the session's evolving pin
// state — the serving pattern the retained-tree memo targets. incremental
// answers through the per-point retained trees (memo hits for irrelevant
// pins, windowed delta replays for relevant ones); the baseline disables the
// memo so every query pays a full SS-DC sweep per point through the same
// code path, keeping the scans/op counters directly comparable.
func benchBatchQ2CleanWhileQuery(b *testing.B, incremental bool) {
	cfg := serve.Config{Parallelism: 2, DisableQueryMemo: !incremental}
	d := benchServeData(200, 3, 2, 4, 52)
	s := serve.NewServer(cfg)
	defer s.Close()
	if _, err := s.Register("bench", d, knn.NegEuclidean{}, 3); err != nil {
		b.Fatal(err)
	}
	truth := make([]int, d.N()) // candidate 0 is every row's oracle repair
	sess, err := s.StartCleanSession("bench", serve.CleanRequest{
		Truth:     truth,
		ValPoints: benchServePoints(4, 4, 61),
	})
	if err != nil {
		b.Fatal(err)
	}
	points := benchServePoints(16, 4, 62)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sess.Next(1); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Query(ctx, serve.BatchRequest{Points: points}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	qs := sess.QueryStats()
	b.ReportMetric(float64(qs.Retained.CandidatesScanned)/float64(b.N), "scans/op")
	b.ReportMetric(float64(qs.Retained.CandidatesAvoided)/float64(b.N), "scans-avoided/op")
}

func BenchmarkBatchQ2_Incremental(b *testing.B) { benchBatchQ2CleanWhileQuery(b, true) }
func BenchmarkBatchQ2_FullSweep(b *testing.B)   { benchBatchQ2CleanWhileQuery(b, false) }

// BenchmarkBatchQ2_ParallelSweep measures the span-parallel sweep on a
// single-point full sweep (memo disabled, so every op pays the whole SS-DC
// scan) across worker counts. A one-point batch leaves the entire
// Parallelism budget to the intra-sweep span workers; workers=1 is the
// sequential baseline the speedup is read against. Answers are bit-identical
// across rows — only the wall clock moves.
func BenchmarkBatchQ2_ParallelSweep(b *testing.B) {
	d := benchServeData(1500, 4, 3, 4, 71)
	point := benchServePoints(1, 4, 72)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			s := serve.NewServer(serve.Config{
				Parallelism:      workers,
				SweepWorkers:     workers,
				DisableQueryMemo: true,
			})
			defer s.Close()
			if _, err := s.Register("bench", d, knn.NegEuclidean{}, 3); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.BatchQuery(ctx, "bench", serve.BatchRequest{Points: point}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sw := s.Stats().Sweep
			b.ReportMetric(float64(sw.Spans)/float64(b.N), "spans/op")
			b.ReportMetric(float64(sw.Steals)/float64(b.N), "steals/op")
		})
	}
}

// --- Sweep-plan cache ---------------------------------------------------------

// benchSweepPlanCache measures the span-parallel SS-DC sweep with the
// engine's plan cache either cold (pins reset before every sweep, so each
// iteration pays the full O(N) prefix re-plan) or warm (unchanged pin state,
// so each iteration reuses the cached span plan verbatim). The delta between
// the two rows is the prefix walk the plan cache removes; plan-hits/op and
// plan-misses/op come from the engine's plan-cache counters and pin the cache
// behavior the rows claim (warm ≥ 1 hit/op, cold ≥ 1 miss/op).
func benchSweepPlanCache(b *testing.B, warm bool) {
	inst := benchInstance(4000, 5, 2)
	e := core.NewEngineFromInstance(inst)
	pool, err := core.NewScratchPool(e, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.SweepConfig{Workers: 4}
	// Prime the cache so the warm run's first iteration is already a hit.
	if _, _, err := e.SweepCounts(3, false, cfg, pool); err != nil {
		b.Fatal(err)
	}
	start := e.PlanStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warm {
			// Bump the pin generation: the cached plan is stale and the sweep
			// re-plans from scratch.
			e.ResetPins()
		}
		if _, _, err := e.SweepCounts(3, false, cfg, pool); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := e.PlanStats()
	b.ReportMetric(float64(st.Hits-start.Hits)/float64(b.N), "plan-hits/op")
	b.ReportMetric(float64(st.Misses-start.Misses)/float64(b.N), "plan-misses/op")
}

func BenchmarkSweepPlanCache_Cold(b *testing.B) { benchSweepPlanCache(b, false) }
func BenchmarkSweepPlanCache_Warm(b *testing.B) { benchSweepPlanCache(b, true) }

// --- CPClean ablations --------------------------------------------------------

func benchCPClean(b *testing.B, opts cleaning.Options) {
	spec, err := experiments.SpecByName("Supreme")
	if err != nil {
		b.Fatal(err)
	}
	task, err := experiments.BuildTask(spec, experiments.Tiny, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var examined int64
	for i := 0; i < b.N; i++ {
		res, err := cleaning.CPClean(task, opts)
		if err != nil {
			b.Fatal(err)
		}
		examined = res.ExaminedHypotheses
	}
	// One full multi-round run's hypothesis Q2 scans — compare the default
	// (incremental selection memo) against the FullRescore ablation below to
	// see the round-over-round reuse.
	b.ReportMetric(float64(examined), "hyp-scans/run")
}

func BenchmarkCPClean_Supreme(b *testing.B) {
	benchCPClean(b, cleaning.DefaultOptions())
}

// Ablation: full per-round rescoring instead of the shared selection
// engine's cross-round hypothesis memo. Every uncleaned (row, validation
// point) pair is rescanned each round even when the previous pin provably
// left its entropy unchanged; the hyp-scans/run metric quantifies what the
// incremental selector saves on a Figure-9-style workload.
func BenchmarkAblation_CPClean_FullRescore(b *testing.B) {
	benchCPClean(b, cleaning.Options{DisableIncremental: true})
}

// Ablation: without the CP'ed-points-stay-CP'ed lemma (§4), every validation
// point is re-queried for every hypothesis.
func BenchmarkAblation_CPClean_NoSkipCertain(b *testing.B) {
	benchCPClean(b, cleaning.Options{DisableSkipCertain: true})
}

// Ablation: Q2 via the multi-class winner-cap DP instead of tally
// enumeration (identical answers for |Y|=2; different constants).
func BenchmarkAblation_CPClean_MC(b *testing.B) {
	benchCPClean(b, cleaning.Options{UseMC: true})
}

// Ablation: batch cleaning (top-3 rows per hypothesis sweep) vs the paper's
// one-row-per-sweep Algorithm 3.
func BenchmarkAblation_CPClean_Batch3(b *testing.B) {
	benchCPClean(b, cleaning.Options{BatchSize: 3})
}
