// Certainty analysis: how incompleteness erodes certain predictions.
//
// Sweeps the fraction of uncertain training rows on a Supreme-style dataset
// and reports, for a fixed probe set: the fraction of CP'ed probes (Q1), the
// mean Q2 entropy, and agreement between the fast algorithms and the exact
// big-integer SortScan. Exercises MM, SS-DC, SS-DC-MC and SS-exact on the
// same queries.
//
// Run: go run ./examples/certainty_analysis
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/missing"
	"repro/internal/repair"
	"repro/internal/synth"
	"repro/internal/table"
)

func main() {
	const (
		trainN = 80
		probeN = 60
		k      = 3
	)
	full := synth.Supreme(trainN+probeN, 3)
	rng := rand.New(rand.NewSource(4))
	split, err := full.SplitRandom(rng, probeN, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("uncertain rows | CP'ed probes | mean entropy | max |SS-DC − SS-exact|")
	for _, rate := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		dirty := split.Train.Clone()
		if rate > 0 {
			imp := make([]float64, dirty.NumCols())
			for i := range imp {
				imp[i] = 1
			}
			if err := missing.InjectMNARRows(dirty, rate, 0.3, imp, rng); err != nil {
				log.Fatal(err)
			}
		}
		enc := table.FitEncoder(dirty, 0)
		reps, err := repair.Generate(dirty, split.Train, enc, repair.Options{MaxRowCandidates: 25})
		if err != nil {
			log.Fatal(err)
		}
		d := reps.Dataset

		cpCount := 0
		entropySum := 0.0
		maxDiff := 0.0
		for i := 0; i < split.Val.NumRows(); i++ {
			t := enc.EncodeRow(split.Val, i, nil)
			inst := repro.InstanceFor(d, knn.NegEuclidean{}, t)

			q2, err := repro.Q2(inst, k, repro.SSDC)
			if err != nil {
				log.Fatal(err)
			}
			q2mc, err := repro.Q2(inst, k, repro.SSDCMC)
			if err != nil {
				log.Fatal(err)
			}
			exact, err := core.SSExactCounts(inst, k)
			if err != nil {
				log.Fatal(err)
			}
			exactNorm := exact.Normalize()
			for y := range q2 {
				if dy := abs(q2[y] - exactNorm[y]); dy > maxDiff {
					maxDiff = dy
				}
				if dy := abs(q2mc[y] - exactNorm[y]); dy > maxDiff {
					maxDiff = dy
				}
			}

			q1, err := repro.Q1(inst, k, repro.MM)
			if err != nil {
				log.Fatal(err)
			}
			if q1[0] || q1[1] {
				cpCount++
			}
			entropySum += repro.Entropy(q2)
		}
		fmt.Printf("    %4.0f%%      |    %3.0f%%     |    %.4f    |   %.2e\n",
			100*rate,
			100*float64(cpCount)/float64(probeN),
			entropySum/float64(probeN),
			maxDiff)
	}
	fmt.Println("\nAs incompleteness grows, fewer predictions are certain and mean")
	fmt.Println("entropy rises; all three polynomial algorithms agree with the exact")
	fmt.Println("big-integer SortScan to floating-point precision.")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
