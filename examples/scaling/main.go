// Scaling: empirical verification of the paper's Figure 4 complexity table.
//
// Measures Q1/Q2 runtime of each algorithm while doubling N, and reports the
// per-candidate cost: near-constant per-candidate cost demonstrates the
// claimed ~O(NM) / O(NM log NM) scaling, in contrast to the quadratic naive
// SortScan.
//
// Run: go run ./examples/scaling
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("Doubling N with M=5, K=3, |Y|=2 (times are per query):")
	rows := experiments.RunFigure4([]int{200, 400, 800, 1600}, 99)
	experiments.Figure4Report(rows).Render(os.Stdout)
	fmt.Println()
	fmt.Println("Reading the table: 'Per candidate' is Elapsed/(N·M). For MM and the")
	fmt.Println("SS scans it stays near-constant as N doubles (quasi-linear total")
	fmt.Println("cost), matching Figure 4 of the paper; a naive SS implementation")
	fmt.Println("would double its per-candidate cost with every row of the table.")
}
