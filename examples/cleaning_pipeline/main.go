// Cleaning pipeline: the paper's "DC for ML" application end to end on a
// bank-marketing-style dataset — generate data, inject MNAR missing values,
// build candidate repairs, run CPClean against RandomClean, and compare the
// closed accuracy gap.
//
// Run: go run ./examples/cleaning_pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/cleaning"
	"repro/internal/knn"
	"repro/internal/missing"
	"repro/internal/synth"
)

func main() {
	const (
		trainN = 120
		valN   = 30
		testN  = 250
		k      = 3
	)
	rng := rand.New(rand.NewSource(7))

	// 1. Data: a complete Bank table, split three ways.
	full := synth.Bank(trainN+valN+testN, 42)
	split, err := full.SplitRandom(rng, valN, testN)
	if err != nil {
		log.Fatal(err)
	}
	truth := split.Train

	// 2. Corruption: importance-targeted MNAR missing values (20% of cells).
	dirty := truth.Clone()
	imp, err := missing.FeatureImportance(truth, k, knn.NegEuclidean{}, rng, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := missing.InjectMNARBiased(dirty, 0.20, 1.2, imp, rng); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected: %.1f%% cells missing, %d/%d rows dirty\n",
		100*dirty.MissingCellRate(), len(dirty.DirtyRows()), dirty.NumRows())

	// 3. Task: candidate repairs (five-point numeric, top-4+other
	// categorical) and the simulated human oracle.
	task, err := repro.NewTask(dirty, truth, split.Val, split.Test, k,
		repro.NegEuclidean{}, repro.RepairOptions{MaxRowCandidates: 25})
	if err != nil {
		log.Fatal(err)
	}

	gt, err := cleaning.GroundTruthAccuracy(task)
	if err != nil {
		log.Fatal(err)
	}
	def, err := cleaning.DefaultCleanAccuracy(task)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground-truth accuracy: %.3f\n", gt)
	fmt.Printf("default cleaning:      %.3f (gap %.1fpp)\n\n", def, 100*(gt-def))

	// 4. CPClean: greedy minimum-entropy cleaning until all validation
	// examples are certainly predicted.
	cp, err := repro.CPClean(task, repro.DefaultCleanOptions())
	if err != nil {
		log.Fatal(err)
	}
	report("CPClean", cp, task, gt, def)

	// 5. RandomClean baseline with the same budget.
	rc, err := repro.RandomClean(task, repro.CleanOptions{
		MaxSteps: len(cp.Order),
		Rand:     rand.New(rand.NewSource(1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	report("RandomClean (same budget)", rc, task, gt, def)
}

func report(name string, res *repro.CleanResult, task *repro.Task, gt, def float64) {
	dirty := len(task.Repairs.DirtyRows)
	fmt.Printf("%s:\n", name)
	fmt.Printf("  cleaned %d/%d dirty rows", len(res.Order), dirty)
	if res.AllCertainStep >= 0 {
		fmt.Printf(" (all validation examples CP'ed after %d)", res.AllCertainStep)
	}
	fmt.Println()
	fmt.Printf("  final test accuracy %.3f — gap closed %.0f%%\n\n",
		res.FinalAccuracy, 100*cleaning.GapClosed(res.FinalAccuracy, def, gt))
}
