// Quickstart: certain predictions over a toy incomplete dataset.
//
// Reproduces the flavor of the paper's Figure 1: a training set where one
// record's value is unknown, and a test query whose K-NN prediction may or
// may not depend on how the unknown resolves.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Ages dataset, Figure 1 style: John 32 (label: no), Anna 29 (label:
	// yes), Kevin's age unknown — the cleaning system proposed {25, 65}.
	// Labels: does the person match the target segment?
	d := repro.MustDataset([]repro.Example{
		{Candidates: [][]float64{{32}}, Label: 0},       // John
		{Candidates: [][]float64{{29}}, Label: 1},       // Anna
		{Candidates: [][]float64{{25}, {65}}, Label: 1}, // Kevin: 25 or 65?
	}, 2)

	fmt.Printf("possible worlds: %s\n\n", d.WorldCount())

	// A 1-NN query near Anna: is its prediction certain?
	for _, t := range []float64{28, 40, 60} {
		q1, q2, err := repro.Query(d, repro.NegEuclidean{}, []float64{t}, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("test age %v:\n", t)
		for y := range q2 {
			fmt.Printf("  label %d: certain=%-5v  world fraction=%.2f\n", y, q1[y], q2[y])
		}
		if certain(q1) {
			fmt.Println("  → CP'ed: cleaning Kevin's record cannot change this prediction")
		} else {
			fmt.Printf("  → not CP'ed (entropy %.3f nats): the unknown value matters here\n",
				repro.Entropy(q2))
		}
		fmt.Println()
	}

	// The same queries with K = 3 (every training row votes): with all three
	// voting and labels {0, 1, 1}, the majority is always 1 — certain even
	// though Kevin's age is unknown.
	q1, q2, err := repro.Query(d, repro.NegEuclidean{}, []float64{40}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K=3, test age 40: certain=%v fractions=%.2f\n", q1[1], q2)
}

func certain(q1 []bool) bool {
	for _, b := range q1 {
		if b {
			return true
		}
	}
	return false
}
