#!/usr/bin/env bash
# Two-process replication smoke test: build cpserve, run a leader and a
# follower as separate processes, register a dataset and step a clean session
# on the leader, wait for the follower to catch up, and byte-diff every read
# answer between the two. Also checks the follower's write gate (421 + Leader
# header). Exits non-zero on any divergence.
set -euo pipefail

LEADER_PORT="${LEADER_PORT:-18080}"
FOLLOWER_PORT="${FOLLOWER_PORT:-18081}"
LEADER="http://127.0.0.1:${LEADER_PORT}"
FOLLOWER="http://127.0.0.1:${FOLLOWER_PORT}"

WORK="$(mktemp -d)"
LEADER_PID=""
FOLLOWER_PID=""
cleanup() {
  [ -n "$FOLLOWER_PID" ] && kill "$FOLLOWER_PID" 2>/dev/null || true
  [ -n "$LEADER_PID" ] && kill "$LEADER_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building cpserve"
go build -o "$WORK/cpserve" ./cmd/cpserve

echo "== starting leader on $LEADER"
"$WORK/cpserve" -addr "127.0.0.1:${LEADER_PORT}" -data-dir "$WORK/leader" \
  -advertise "$LEADER" -wal-sync-interval 1ms >"$WORK/leader.log" 2>&1 &
LEADER_PID=$!

echo "== starting follower on $FOLLOWER"
"$WORK/cpserve" -addr "127.0.0.1:${FOLLOWER_PORT}" -data-dir "$WORK/follower" \
  -follow "$LEADER" -wal-sync-interval 1ms >"$WORK/follower.log" 2>&1 &
FOLLOWER_PID=$!

wait_http() { # url: poll until it answers 200
  for _ in $(seq 1 100); do
    if curl -fsS -o /dev/null "$1" 2>/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "timed out waiting for $1" >&2
  return 1
}
wait_http "$LEADER/v1/stats"
wait_http "$FOLLOWER/v1/stats"

echo "== registering a dataset on the leader"
cat >"$WORK/register.json" <<'EOF'
{"name":"smoke","num_labels":2,"k":3,"examples":[
  {"candidates":[[0.0,0.1]],"label":0},
  {"candidates":[[0.2,0.0],[1.8,1.9]],"label":0},
  {"candidates":[[0.1,0.3]],"label":0},
  {"candidates":[[2.0,2.1]],"label":1},
  {"candidates":[[1.9,2.2],[0.1,0.2]],"label":1},
  {"candidates":[[2.2,1.8]],"label":1},
  {"candidates":[[0.4,0.2],[2.1,2.0]],"label":0},
  {"candidates":[[1.7,2.3]],"label":1}
]}
EOF
curl -fsS -X POST -H 'Content-Type: application/json' \
  --data-binary @"$WORK/register.json" "$LEADER/v1/datasets" >/dev/null

echo "== starting and stepping a clean session on the leader"
SESSION_ID="$(curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"truth":[0,0,0,0,1,0,1,0],"val_points":[[0.1,0.1],[2.0,2.0],[1.0,1.0]]}' \
  "$LEADER/v1/datasets/smoke/clean" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$SESSION_ID" ] || { echo "no session id" >&2; exit 1; }
curl -fsS -X POST "$LEADER/v1/clean/$SESSION_ID/next?steps=2" >/dev/null

echo "== waiting for the follower to catch up"
lag() { curl -fsS "$FOLLOWER/v1/stats" | sed -n 's/.*"lag_records":\([0-9-]*\).*/\1/p'; }
for _ in $(seq 1 100); do
  [ "$(lag)" = "0" ] && break
  sleep 0.1
done
[ "$(lag)" = "0" ] || { echo "follower never caught up" >&2; curl -fsS "$FOLLOWER/v1/stats" >&2; exit 1; }
# Lag 0 plus a quiescent leader means every journaled record is applied.

echo "== diffing read answers byte for byte"
QUERY='{"points":[[0.15,0.1],[2.0,2.05],[1.1,0.9],[0.3,1.7]]}'
diff_route() { # method path [body] [accept]
  local method="$1" path="$2" body="${3:-}" accept="${4:-application/json}"
  local args=(-fsS -X "$method" -H "Accept: $accept")
  [ -n "$body" ] && args+=(-H 'Content-Type: application/json' -d "$body")
  curl "${args[@]}" "$LEADER$path" >"$WORK/leader.resp"
  curl "${args[@]}" "$FOLLOWER$path" >"$WORK/follower.resp"
  if ! diff -q "$WORK/leader.resp" "$WORK/follower.resp" >/dev/null; then
    echo "DIVERGED: $method $path" >&2
    diff "$WORK/leader.resp" "$WORK/follower.resp" >&2 || true
    exit 1
  fi
  echo "   identical: $method $path ($accept)"
}
diff_route GET  /v1/datasets
diff_route POST /v1/datasets/smoke/query "$QUERY"
diff_route POST /v1/datasets/smoke/query "$QUERY" application/x-ndjson
diff_route POST "/v1/clean/$SESSION_ID/query" "$QUERY"
diff_route POST "/v1/clean/$SESSION_ID/query" "$QUERY" application/x-ndjson

echo "== checking the follower rejects writes with 421 + Leader header"
REJECT_HEADERS="$(curl -sS -o /dev/null -D - -X POST -H 'Content-Type: application/json' \
  --data-binary @"$WORK/register.json" "$FOLLOWER/v1/datasets")"
echo "$REJECT_HEADERS" | grep -q "^HTTP/1.1 421" || { echo "expected 421, got:"; echo "$REJECT_HEADERS"; exit 1; } >&2
echo "$REJECT_HEADERS" | grep -qi "^Leader: $LEADER" || { echo "missing Leader header:"; echo "$REJECT_HEADERS"; exit 1; } >&2

echo "replication smoke: OK"
