#!/usr/bin/env bash
# Guards the pinned sweep benchmarks against ns/op regressions: re-runs them
# at a steadier iteration count than the `make bench` smoke pass, converts
# the transcript with benchjson, and diffs it against the committed baseline
# with benchcompare — failing on any >BENCH_REGRESSION_PCT% (default 15)
# ns/op regression. With no committed baseline the script warns and exits 0,
# so a fresh checkout is never broken by a missing artifact.
#
# Refresh the baseline after an intentional perf change:
#   make bench-baseline && git add bench/BENCH_baseline.json
#
# Environment:
#   BENCH_REGRESSION_PCT   regression threshold in percent (default 15)
#   BENCH_COMPARE_MATCH    comma-separated benchmark name substrings
#                          (default the pinned sweep benchmarks)
#   BENCH_COMPARE_TIME     -benchtime for the comparison run (default 50x, best of BENCH_COMPARE_COUNT=5 runs)
#   BENCH_BASELINE         baseline path (default bench/BENCH_baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${BENCH_BASELINE:-bench/BENCH_baseline.json}
PCT=${BENCH_REGRESSION_PCT:-15}
MATCH=${BENCH_COMPARE_MATCH:-SweepPlanCache,ScanPositions,BatchQ2_ParallelSweep}
TIME=${BENCH_COMPARE_TIME:-50x}
COUNT=${BENCH_COMPARE_COUNT:-5}

if [[ ! -f "$BASELINE" ]]; then
  echo "bench_compare: no baseline at $BASELINE; skipping (create one with 'make bench-baseline')" >&2
  exit 0
fi

out=$(mktemp)
trap 'rm -f "$out" "$out.json"' EXIT

# The pinned benchmarks live in the repro root package (SweepPlanCache,
# BatchQ2_ParallelSweep) and internal/core (ScanPositions).
go test -run XXX -bench "${MATCH//,/|}" -benchtime "$TIME" -count "$COUNT" . ./internal/core/ | tee "$out"
go run ./internal/tools/benchjson -in "$out" -out "$out.json"
go run ./internal/tools/benchcompare \
  -baseline "$BASELINE" -current "$out.json" -pct "$PCT" -match "$MATCH"
