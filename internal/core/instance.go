// Package core implements the paper's Certain Prediction (CP) primitives for
// K-nearest-neighbor classifiers: the checking query Q1 and the counting
// query Q2 over the exponentially many possible worlds of an incomplete
// dataset, answered in polynomial time.
//
// Implementations provided (Figure 4 of the paper):
//
//   - Brute force — enumerates possible worlds; exponential, used as the
//     ground truth in tests (BruteForceCounts).
//   - SS (SortScan), naive exact — O((NM)²·K·|Y|) with math/big integers
//     (SSExactCounts); the verification reference for large-count cases.
//   - SS for K = 1 — the O(NM log NM) incremental scan of §3.1.2
//     (SSFastCounts, SSFastExactCounts).
//   - SS-DC — the general O(NM·(log NM + K²·log N)) algorithm of §3.1.3 +
//     appendix A.2, built on a segment tree of truncated polynomial products
//     (Engine.Counts).
//   - SS-DC-MC — the multi-class variant of appendix A.3, polynomial in |Y|
//     (Engine.CountsMC).
//   - MM (MinMax) — Q1 for binary labels in O(NM + N log K) via l-extreme
//     worlds, §3.2 (Engine.CheckMM, MMCheck).
//
// All algorithms share one strict total order over candidates (descending
// similarity, ties to the lexicographically smaller (row, candidate) pair)
// and one vote tie-break (smallest label), so their answers agree exactly.
package core

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/knn"
)

// Instance is an incomplete training set viewed through the lens of a single
// test point: only the candidate similarities and the labels remain.
// Sims[i][j] is κ(x_{i,j}, t) for candidate j of training example i.
type Instance struct {
	Sims      [][]float64
	Labels    []int
	NumLabels int
}

// NewInstance validates shapes and label ranges.
func NewInstance(sims [][]float64, labels []int, numLabels int) (*Instance, error) {
	if len(sims) != len(labels) {
		return nil, fmt.Errorf("core: %d similarity rows but %d labels", len(sims), len(labels))
	}
	if numLabels < 2 {
		return nil, fmt.Errorf("core: need at least 2 labels, got %d", numLabels)
	}
	for i, row := range sims {
		if len(row) == 0 {
			return nil, fmt.Errorf("core: example %d has no candidates", i)
		}
		if labels[i] < 0 || labels[i] >= numLabels {
			return nil, fmt.Errorf("core: label %d at example %d out of range [0,%d)", labels[i], i, numLabels)
		}
	}
	return &Instance{Sims: sims, Labels: labels, NumLabels: numLabels}, nil
}

// MustNewInstance is NewInstance but panics on error.
func MustNewInstance(sims [][]float64, labels []int, numLabels int) *Instance {
	inst, err := NewInstance(sims, labels, numLabels)
	if err != nil {
		panic(err)
	}
	return inst
}

// InstanceFor computes the similarity view of incomplete dataset d with
// respect to test point t under the given kernel.
func InstanceFor(d *dataset.Incomplete, kernel knn.Kernel, t []float64) *Instance {
	sims := make([][]float64, d.N())
	labels := make([]int, d.N())
	for i := range d.Examples {
		ex := &d.Examples[i]
		row := make([]float64, ex.M())
		for j, c := range ex.Candidates {
			row[j] = kernel.Similarity(c, t)
		}
		sims[i] = row
		labels[i] = ex.Label
	}
	return &Instance{Sims: sims, Labels: labels, NumLabels: d.NumLabels}
}

// N returns the number of training examples.
func (in *Instance) N() int { return len(in.Labels) }

// M returns the candidate count of example i.
func (in *Instance) M(i int) int { return len(in.Sims[i]) }

// TotalCandidates returns Σ_i M_i.
func (in *Instance) TotalCandidates() int {
	s := 0
	for _, row := range in.Sims {
		s += len(row)
	}
	return s
}

// MoreSimilar reports whether candidate (i1,j1) is strictly more similar to
// the test point than (i2,j2) under the package's total order: higher
// similarity wins; exact ties go to the lexicographically smaller (i,j).
// The paper assumes no ties ("we can always break a tie by favoring a
// smaller i and j"); this order realizes that assumption.
func (in *Instance) MoreSimilar(i1, j1, i2, j2 int) bool {
	s1, s2 := in.Sims[i1][j1], in.Sims[i2][j2]
	if s1 != s2 {
		return s1 > s2
	}
	if i1 != i2 {
		return i1 < i2
	}
	return j1 < j2
}

// candRef identifies one candidate value.
type candRef struct {
	row, cand int32
}

// sortedCandidates returns every candidate reference ordered by ascending
// similarity (least similar first), the scan order of the SS algorithms.
func (in *Instance) sortedCandidates() []candRef {
	out := make([]candRef, 0, in.TotalCandidates())
	for i, row := range in.Sims {
		for j := range row {
			out = append(out, candRef{int32(i), int32(j)})
		}
	}
	// Ascending similarity: a scans before b iff b is more similar than a.
	sort.Slice(out, func(x, y int) bool {
		a, b := out[x], out[y]
		return in.MoreSimilar(int(b.row), int(b.cand), int(a.row), int(a.cand))
	})
	return out
}
