package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ShapeKey returns a canonical string identifying the engine's *scratch
// shape*: the per-label row counts (in label order) that size a Scratch's
// segment trees and buffers. Two engines with equal shape keys can share
// Scratches of the same K — the property CPClean exploits across
// validation-point engines and the serving layer exploits across pooled
// engines of one dataset.
func (e *Engine) ShapeKey() string {
	var b strings.Builder
	for l, n := range e.labelLen {
		if l > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(n))
	}
	return b.String()
}

// K returns the K the scratch was allocated for.
func (sc *Scratch) K() int { return sc.k }

// ApproxBytes estimates the engine's heap footprint — the similarity matrix
// and the sorted candidate order dominate at O(NM) — so byte-budgeted caches
// can account engines instead of merely counting them.
func (e *Engine) ApproxBytes() int64 {
	nm := int64(e.inst.TotalCandidates())
	n := int64(e.N())
	const sliceHeader = 24
	b := nm * (8 + 8)    // inst.Sims values + order candRefs
	b += n * sliceHeader // Sims row headers
	b += n * (4 + 8 + 8) // pins, labelOf, rowPos
	b += n * (8 + 8)     // firstPos, lastPos
	b += int64(len(e.pinLog)) * 12
	b += int64(e.numLabels) * 8 // labelLen
	b += e.planBytes()          // cached sweep plans (α snapshots)
	return b
}

// ApproxBytes estimates the scratch's heap footprint: the per-label segment
// trees dominate at O(N·K) floats per label (×2 for the hypothesis-scan
// alternate trees).
func (sc *Scratch) ApproxBytes() int64 {
	var b int64
	for _, tr := range sc.trees {
		b += treeBytes(tr.Len(), sc.k) * 2 // trees + altTrees
	}
	b += int64(len(sc.alpha)) * 4
	b += int64(len(sc.tallies)) * (24 + int64(len(sc.counts))) // tally slices
	for _, p := range sc.leafP0 {
		b += int64(len(p)) * 16 // leafP0 + leafP1
	}
	for _, h := range sc.hyp {
		b += int64(len(h)) * 8 * 4 // hyp, own, snapPre, snapPost
	}
	return b
}

// treeBytes is the node-array footprint of a segtree.PolyTree over n leaves.
func treeBytes(n, k int) int64 {
	size := 1
	for size < n {
		size *= 2
	}
	return int64(2*size*(k+1)) * 8
}

// CompatibleWith reports whether sc (allocated for some engine with the
// given K) can serve queries against e: same K and same per-label tree
// sizes. Note rows must also appear in the same label order for answers to
// be meaningful, which holds whenever both engines view the same dataset.
func (sc *Scratch) CompatibleWith(e *Engine, k int) bool {
	if sc.k != k || len(sc.trees) != e.numLabels {
		return false
	}
	for l, tr := range sc.trees {
		if tr.Len() != e.labelLen[l] {
			return false
		}
	}
	return true
}

// ResetPins clears every persistent pin, returning the engine to the fully
// uncertain state. Like SetPin, not safe to call concurrently with queries.
func (e *Engine) ResetPins() {
	for i := range e.pins {
		e.pins[i] = -1
	}
	e.pinGen++
	e.logPinMutation(PinEvent{Row: -1, Old: -1, New: -1})
}

// ScratchPool is a concurrency-safe free list of Scratches for one
// (engine shape, K) pair. It amortizes Scratch allocation — the segment
// trees dominate and cost O(N·K) memory — across queries, goroutines, and
// engines of identical shape.
type ScratchPool struct {
	k        int
	shapeKey string
	pool     sync.Pool
	// allocs counts Scratches built fresh; gets counts Get calls. The
	// difference is the number of reuses (modulo GC-evicted pool entries).
	allocs atomic.Int64
	gets   atomic.Int64
}

// NewScratchPool builds a pool producing Scratches for engines shaped like
// template, queried with the given K. K is validated once here; Get never
// fails afterwards. Only the shape is captured — the pool does not retain
// the template engine.
func NewScratchPool(template *Engine, k int) (*ScratchPool, error) {
	if err := validateK(template.inst, k); err != nil {
		return nil, err
	}
	sh := template.shape()
	p := &ScratchPool{k: k, shapeKey: template.ShapeKey()}
	p.pool.New = func() interface{} {
		p.allocs.Add(1)
		return newScratchFromShape(sh, k)
	}
	return p, nil
}

// K returns the K the pool's Scratches are allocated for.
func (p *ScratchPool) K() int { return p.k }

// Get returns a Scratch for exclusive use by the calling goroutine. Release
// it with Put when the query results derived from it are no longer needed
// (Counts et al. return slices aliasing the Scratch).
func (p *ScratchPool) Get() *Scratch {
	p.gets.Add(1)
	return p.pool.Get().(*Scratch)
}

// Put returns a Scratch to the pool. The Scratch must have been produced by
// a pool of the same shape and K; mismatched Scratches panic rather than
// silently corrupt later queries.
func (p *ScratchPool) Put(sc *Scratch) {
	if sc == nil {
		return
	}
	if sc.k != p.k {
		panic(fmt.Sprintf("core: returning K=%d scratch to K=%d pool", sc.k, p.k))
	}
	p.pool.Put(sc)
}

// Stats reports lifetime Get calls and fresh allocations; gets − allocs
// Scratch constructions were avoided by reuse.
func (p *ScratchPool) Stats() (gets, allocs int64) {
	return p.gets.Load(), p.allocs.Load()
}
