package core

import (
	"fmt"
	"math/rand"
)

// WeightedInstance extends Instance with per-candidate prior probabilities,
// realizing the full block tuple-independent probabilistic-database
// semantics the paper connects Q2 to in §2 ("Q2 can be seen as a natural
// definition of evaluating an ML classifier over a block tuple-independent
// probabilistic database with uniform prior") — here with arbitrary priors
// rather than uniform ones.
//
// Probs[i][j] is the prior probability that example i takes candidate j;
// each row must sum to 1. The uniform case Probs[i][j] = 1/M_i reproduces
// normalized Q2 counts exactly.
type WeightedInstance struct {
	*Instance
	Probs [][]float64
}

// NewWeightedInstance validates shapes and row-stochasticity.
func NewWeightedInstance(inst *Instance, probs [][]float64) (*WeightedInstance, error) {
	if len(probs) != inst.N() {
		return nil, fmt.Errorf("core: %d probability rows for %d examples", len(probs), inst.N())
	}
	for i, row := range probs {
		if len(row) != inst.M(i) {
			return nil, fmt.Errorf("core: example %d has %d probabilities for %d candidates", i, len(row), inst.M(i))
		}
		sum := 0.0
		for j, p := range row {
			if p < 0 {
				return nil, fmt.Errorf("core: negative probability at (%d,%d)", i, j)
			}
			sum += p
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			return nil, fmt.Errorf("core: example %d probabilities sum to %v", i, sum)
		}
	}
	return &WeightedInstance{Instance: inst, Probs: probs}, nil
}

// UniformWeights builds the uniform prior for an instance.
func UniformWeights(inst *Instance) [][]float64 {
	probs := make([][]float64, inst.N())
	for i := range probs {
		m := inst.M(i)
		row := make([]float64, m)
		for j := range row {
			row[j] = 1 / float64(m)
		}
		probs[i] = row
	}
	return probs
}

// WeightedQ2 computes P[A_D(t) = y] under the candidate priors: the
// probability, over independently sampled rows, that the K-NN classifier
// predicts y. It is the weighted generalization of the SS algorithm: the
// scan maintains per-row cumulative probability mass below the boundary
// (the weighted α), and the boundary-set DP multiplies probability masses
// instead of candidate counts. O(NM·(log NM + K·N·|Y| + |Γ|·|Y|)) with the
// per-candidate DP recomputed naively — the segment-tree optimization
// applies identically but this reference implementation favors clarity.
func WeightedQ2(wi *WeightedInstance, k int) ([]float64, error) {
	inst := wi.Instance
	if err := validateK(inst, k); err != nil {
		return nil, err
	}
	n := inst.N()
	out := make([]float64, inst.NumLabels)
	order := inst.sortedCandidates()
	// below[i]: prior mass of row i's candidates scanned so far (strictly
	// less similar than the current boundary under the total order).
	below := make([]float64, n)
	tallies := compositions(k, inst.NumLabels)
	winners := make([]int, len(tallies))
	for ti, g := range tallies {
		winners[ti] = argmaxTally(g)
	}
	perLabel := make([][]float64, inst.NumLabels)
	for _, ref := range order {
		i := int(ref.row)
		j := int(ref.cand)
		below[i] += wi.Probs[i][j]
		pOwn := wi.Probs[i][j]
		if pOwn == 0 {
			continue
		}
		// DP over rows per label: ways (probability mass) for label l to
		// contribute exactly c top-K members, with row i forced onto the
		// boundary having picked candidate j.
		for l := 0; l < inst.NumLabels; l++ {
			perLabel[l] = weightedDP(wi, below, i, l, k)
		}
		for ti, g := range tallies {
			prod := pOwn
			for l, c := range g {
				v := perLabel[l][c]
				if v == 0 {
					prod = 0
					break
				}
				prod *= v
			}
			if prod != 0 {
				out[winners[ti]] += prod
			}
		}
	}
	return out, nil
}

// weightedDP is ssExactDP with probability masses: below[n] is the mass not
// in the top-K, 1−below[n] the mass above the boundary.
func weightedDP(wi *WeightedInstance, below []float64, boundaryRow, l, k int) []float64 {
	c := make([]float64, k+1)
	c[0] = 1
	for nn := 0; nn < wi.N(); nn++ {
		if nn == boundaryRow {
			if wi.Labels[nn] != l {
				continue
			}
			for x := k; x >= 1; x-- {
				c[x] = c[x-1]
			}
			c[0] = 0
			continue
		}
		if wi.Labels[nn] != l {
			continue
		}
		in := 1 - below[nn]
		outMass := below[nn]
		for x := k; x >= 0; x-- {
			v := outMass * c[x]
			if x > 0 {
				v += in * c[x-1]
			}
			c[x] = v
		}
	}
	return c
}

// WeightedBruteForce enumerates every possible world, weighting each by its
// prior probability — the reference implementation for WeightedQ2.
func WeightedBruteForce(wi *WeightedInstance, k int) ([]float64, error) {
	inst := wi.Instance
	if err := validateK(inst, k); err != nil {
		return nil, err
	}
	total := 1.0
	for i := 0; i < inst.N(); i++ {
		total *= float64(inst.M(i))
		if total > MaxBruteWorlds {
			return nil, fmt.Errorf("core: too many worlds for weighted brute force")
		}
	}
	out := make([]float64, inst.NumLabels)
	choice := make([]int, inst.N())
	for {
		p := 1.0
		for i, j := range choice {
			p *= wi.Probs[i][j]
		}
		if p != 0 {
			out[classifyWorld(inst, choice, k)] += p
		}
		i := inst.N() - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < inst.M(i) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// WeightedSample draws a possible world from the priors (for Monte-Carlo
// estimation under non-uniform priors).
func WeightedSample(wi *WeightedInstance, rng *rand.Rand, choice []int) {
	for i := range choice {
		r := rng.Float64()
		acc := 0.0
		choice[i] = wi.M(i) - 1
		for j, p := range wi.Probs[i] {
			acc += p
			if r < acc {
				choice[i] = j
				break
			}
		}
	}
}
