package core

import (
	"math/rand"
	"testing"
)

// TestRelevantRowsSoundness verifies the exact property the CPClean pruning
// relies on: pinning an irrelevant row (any candidate) leaves the Q2
// distribution bit-for-bit unchanged.
func TestRelevantRowsSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(rng, 6+rng.Intn(10), 4, 2)
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		rel := e.RelevantRows(k)
		base := append([]float64(nil), e.Counts(sc, -1, -1)...)
		for i, r := range rel {
			if r {
				continue
			}
			for j := 0; j < inst.M(i); j++ {
				got := e.Counts(sc, i, j)
				for y := range got {
					if got[y] != base[y] {
						t.Fatalf("trial %d: pinning irrelevant row %d to cand %d changed Q2: %v vs %v",
							trial, i, j, got, base)
					}
				}
			}
		}
	}
}

// TestRelevantRowsUnderPins checks the filter stays sound once rows are
// pinned (the cleaning loop's steady state).
func TestRelevantRowsUnderPins(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 8, 3, 2)
		k := 1 + rng.Intn(2)
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		for i := 0; i < inst.N(); i++ {
			if rng.Intn(3) == 0 {
				e.SetPin(i, rng.Intn(inst.M(i)))
			}
		}
		rel := e.RelevantRows(k)
		base := append([]float64(nil), e.Counts(sc, -1, -1)...)
		for i, r := range rel {
			if r || e.Pin(i) >= 0 {
				continue
			}
			for j := 0; j < inst.M(i); j++ {
				got := e.Counts(sc, i, j)
				for y := range got {
					if got[y] != base[y] {
						t.Fatalf("trial %d: pinned-state irrelevant row %d cand %d changed Q2", trial, i, j)
					}
				}
			}
		}
	}
}

// TestRelevantRowsAlwaysIncludesTopRows sanity-checks that rows whose only
// candidate is globally most similar are always flagged relevant.
func TestRelevantRowsAlwaysIncludesTopRows(t *testing.T) {
	inst := MustNewInstance([][]float64{
		{10}, {9}, {1, 2}, {0},
	}, []int{0, 1, 0, 1}, 2)
	e := NewEngineFromInstance(inst)
	rel := e.RelevantRows(2)
	if !rel[0] || !rel[1] {
		t.Fatalf("top rows marked irrelevant: %v", rel)
	}
	// Row 3 (sim 0) can never beat rows 0,1 for K=2.
	if rel[3] {
		t.Fatalf("hopeless row marked relevant: %v", rel)
	}
}

// TestRelevantRowsSmallN ensures everything is relevant when N ≤ K.
func TestRelevantRowsSmallN(t *testing.T) {
	inst := MustNewInstance([][]float64{{1}, {2}}, []int{0, 1}, 2)
	e := NewEngineFromInstance(inst)
	for _, r := range e.RelevantRows(2) {
		if !r {
			t.Fatal("row irrelevant with N == K")
		}
	}
}

// TestHypothesisCountsMatchesPerPinCounts verifies the combined-scan
// hypothesis evaluator against M independent override queries.
func TestHypothesisCountsMatchesPerPinCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		numLabels := 2 + rng.Intn(2)
		inst := randomInstance(rng, 4+rng.Intn(8), 4, numLabels)
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		// Random pins on some other rows.
		for i := 0; i < inst.N(); i++ {
			if rng.Intn(4) == 0 {
				e.SetPin(i, rng.Intn(inst.M(i)))
			}
		}
		for row := 0; row < inst.N(); row++ {
			if e.Pin(row) >= 0 {
				continue
			}
			hyp := e.HypothesisCounts(sc, row)
			// Copy: hyp aliases scratch reused by Counts below.
			got := make([][]float64, len(hyp))
			for j := range hyp {
				got[j] = append([]float64(nil), hyp[j]...)
			}
			for j := 0; j < inst.M(row); j++ {
				want := e.Counts(sc, row, j)
				for y := range want {
					if d := got[j][y] - want[y]; d > 1e-9 || d < -1e-9 {
						t.Fatalf("trial %d row %d pin %d label %d: hyp=%v want=%v (N=%d K=%d)",
							trial, row, j, y, got[j][y], want[y], inst.N(), k)
					}
				}
			}
		}
	}
}

// TestIrrelevantPinLeavesHypothesesUnchanged verifies the invalidation lemma
// the incremental selection memo relies on: pinning a row that is irrelevant
// to a test point changes neither the relevance mask nor ANY hypothesis Q2
// distribution over that point (not just the unconditional Counts) — so
// every cached per-(row, pin) entropy stays exact across the pin.
func TestIrrelevantPinLeavesHypothesesUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tested := 0
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(rng, 6+rng.Intn(10), 4, 2+rng.Intn(2))
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		// Some prior pins, as in the cleaning loop's steady state.
		for i := 0; i < inst.N(); i++ {
			if rng.Intn(4) == 0 {
				e.SetPin(i, rng.Intn(inst.M(i)))
			}
		}
		rel := e.RelevantRows(k)
		var irrelevant []int
		for i, r := range rel {
			if !r && e.Pin(i) < 0 && inst.M(i) > 1 {
				irrelevant = append(irrelevant, i)
			}
		}
		if len(irrelevant) == 0 {
			continue
		}
		tested++
		// Snapshot every unpinned row's hypothesis distributions.
		before := map[int][][]float64{}
		for row := 0; row < inst.N(); row++ {
			if e.Pin(row) >= 0 {
				continue
			}
			hyp := e.HypothesisCounts(sc, row)
			cp := make([][]float64, len(hyp))
			for j := range hyp {
				cp[j] = append([]float64(nil), hyp[j]...)
			}
			before[row] = cp
		}
		// Pin one irrelevant row to a random candidate.
		pinRow := irrelevant[rng.Intn(len(irrelevant))]
		e.SetPin(pinRow, rng.Intn(inst.M(pinRow)))
		after := e.RelevantRows(k)
		for i := range rel {
			if rel[i] != after[i] {
				t.Fatalf("trial %d: pinning irrelevant row %d flipped relevance of row %d", trial, pinRow, i)
			}
		}
		for row, want := range before {
			if row == pinRow {
				continue
			}
			hyp := e.HypothesisCounts(sc, row)
			for j := range hyp {
				for y := range hyp[j] {
					if hyp[j][y] != want[j][y] {
						t.Fatalf("trial %d: pinning irrelevant row %d changed hypothesis (row=%d pin=%d label=%d): %v vs %v",
							trial, pinRow, row, j, y, hyp[j][y], want[j][y])
					}
				}
			}
		}
	}
	if tested == 0 {
		t.Fatal("no trial produced an irrelevant uncertain row; weaken the generator")
	}
}

// TestPinGenerationTracksMutations checks the staleness hook caches key on.
func TestPinGenerationTracksMutations(t *testing.T) {
	inst := MustNewInstance([][]float64{{1, 2}, {3}, {4, 5}}, []int{0, 1, 0}, 2)
	e := NewEngineFromInstance(inst)
	g0 := e.PinGeneration()
	e.SetPin(0, 1)
	if e.PinGeneration() == g0 {
		t.Fatal("SetPin did not bump the pin generation")
	}
	g1 := e.PinGeneration()
	e.SetPin(0, -1)
	if e.PinGeneration() == g1 {
		t.Fatal("clearing a pin did not bump the pin generation")
	}
	g2 := e.PinGeneration()
	e.ResetPins()
	if e.PinGeneration() == g2 {
		t.Fatal("ResetPins did not bump the pin generation")
	}
}

// TestHypothesisCountsWithTies exercises the combined scan under duplicated
// similarities.
func TestHypothesisCountsWithTies(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		inst := tiedInstance(rng, 4+rng.Intn(6), 3, 2)
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		for row := 0; row < inst.N(); row++ {
			hyp := e.HypothesisCounts(sc, row)
			got := make([][]float64, len(hyp))
			for j := range hyp {
				got[j] = append([]float64(nil), hyp[j]...)
			}
			for j := 0; j < inst.M(row); j++ {
				want := e.Counts(sc, row, j)
				for y := range want {
					if d := got[j][y] - want[y]; d > 1e-9 || d < -1e-9 {
						t.Fatalf("tied trial %d row %d pin %d: %v vs %v", trial, row, j, got[j], want)
					}
				}
			}
		}
	}
}
