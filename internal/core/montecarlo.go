package core

import (
	"fmt"
	"math"
	"math/rand"
)

// MonteCarloCounts estimates Q2 by sampling possible worlds uniformly,
// training the K-NN classifier in each and tallying predictions. Unlike the
// SS/MM algorithms it makes no use of the classifier's structure, so it is
// the practical fallback the paper's §2 alludes to for classifiers where no
// efficient CP algorithm is known — and an independent statistical check on
// the exact algorithms. Standard error of each fraction is ≤ 1/(2√samples).
func MonteCarloCounts(inst *Instance, k, samples int, rng *rand.Rand) ([]float64, error) {
	if err := validateK(inst, k); err != nil {
		return nil, err
	}
	if samples <= 0 {
		return nil, fmt.Errorf("core: need a positive sample count, got %d", samples)
	}
	counts := make([]float64, inst.NumLabels)
	choice := make([]int, inst.N())
	for s := 0; s < samples; s++ {
		for i := range choice {
			choice[i] = rng.Intn(inst.M(i))
		}
		counts[classifyWorld(inst, choice, k)]++
	}
	for y := range counts {
		counts[y] /= float64(samples)
	}
	return counts, nil
}

// MonteCarloCheck answers Q1 probabilistically: a label is reported certain
// iff every sampled world predicted it. False positives vanish at rate
// (1−p)^samples where p is the true mass of disagreeing worlds; false
// negatives cannot occur.
func MonteCarloCheck(inst *Instance, k, samples int, rng *rand.Rand) ([]bool, error) {
	p, err := MonteCarloCounts(inst, k, samples, rng)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(p))
	for y, v := range p {
		out[y] = v == 1
	}
	return out, nil
}

// MonteCarloAgrees reports whether an exact Q2 distribution lies within z
// standard errors of a Monte-Carlo estimate — a convenience for statistical
// cross-checks.
func MonteCarloAgrees(exact, estimate []float64, samples int, z float64) bool {
	if len(exact) != len(estimate) {
		return false
	}
	for y := range exact {
		se := math.Sqrt(exact[y]*(1-exact[y])/float64(samples)) + 1e-12
		if math.Abs(exact[y]-estimate[y]) > z*se+1e-9 {
			return false
		}
	}
	return true
}
