package core

import "fmt"

// Retained is the retained-tree incremental Q2 mode: it answers repeated
// Q2/entropy queries for one (engine, K) pair while the engine's pins evolve,
// reusing the previous answer's scan state instead of re-running the full
// SS-DC sweep. Every answer is bit-for-bit identical to a fresh
// Engine.Counts / Engine.CountsMC call under the current pins (the property
// TestRetainedMatchesFreshSSDC pins), via three reuse tiers:
//
//   - Memo: the pin generation is unchanged → the previous counts are
//     returned verbatim. O(1).
//   - Irrelevant pins: every pin since the memo was a fresh pin of a row the
//     relevance lemma (Engine.RelevantRows) proves unable to enter the
//     top-K → counts, relevance mask, and every retained term are provably
//     bit-identical, so the memo is returned verbatim. O(pins).
//   - Windowed delta: a relevant pin of row r can only change scan terms
//     inside r's candidate span in the total order (before the span r's DP
//     leaf is [0,1] under any pin state, after it [1,0]), so only that
//     window is replayed with real tree work — collapsing r's leaf to its
//     pinned candidate's polynomial — while every other position reuses its
//     retained term stream. The final counts are re-summed term by term in
//     the original scan order, which keeps the floating-point result
//     bit-identical to a fresh sweep. O(window·K²·log N + NM·K) versus the
//     fresh sweep's O(NM·K²·log N).
//
// The bit-exact splice is licensed by the segment tree's purity invariant
// (internal/segtree): node values are a pure function of leaf values, so a
// bulk rebuild at the window start reproduces exactly the tree state a fresh
// scan would carry there.
//
// A Retained is bound to one engine and K and is not safe for concurrent
// use; callers that share one across goroutines must serialize access (the
// serving layer guards each cached instance with the owning entry's mutex).
// Pin mutations on the engine are picked up automatically through
// Engine.PinsSince; mutations that outgrow the engine's bounded pin log
// simply force a full rescan.
type Retained struct {
	e     *Engine
	k     int
	useMC bool

	pool *ScratchPool // optional; otherwise a private Scratch is kept
	own  *Scratch

	valid    bool
	gen      uint64
	counts   []float64 // memoized Q2 fractions under pin generation gen
	relevant []bool    // relevance mask under generation gen
	// terms/offs hold every scan position's recorded support terms in one
	// flat slice: position pos's stream is terms[offs[pos]:offs[pos+1]].
	// Replacing the old per-position [][]term drops a slice header plus its
	// capacity slack per position, makes the re-sum a single linear walk, and
	// lets a window rescan splice in with one suffix shift.
	terms []term
	offs  []int // len(order)+1 stream boundaries

	// results buffers the flat span outputs across rescans (capacity reuse).
	results []spanResult

	// sweep selects the span-parallel scan (sweep.go) for rescans whose
	// window is wide enough to split; requires a scratch pool (each worker
	// borrows its own scan state). Zero value = sequential.
	sweep      SweepConfig
	sweepStats SweepStats

	stats RetainedStats
}

// RetainedStats counts how a Retained answered its queries.
type RetainedStats struct {
	// FullScans counts complete SS-DC sweeps (first query, ResetPins, or a
	// pin log that outgrew its window).
	FullScans int64 `json:"full_scans"`
	// MemoHits counts queries answered verbatim from the memo: unchanged pin
	// generation, or only provably irrelevant pins since.
	MemoHits int64 `json:"memo_hits"`
	// DeltaScans counts queries answered by replaying only the changed pin's
	// candidate-span window.
	DeltaScans int64 `json:"delta_scans"`
	// CandidatesScanned counts boundary candidates evaluated with real
	// segment-tree work; CandidatesAvoided counts positions answered from
	// memoized terms instead — the scans a fresh sweep would have paid.
	CandidatesScanned int64 `json:"candidates_scanned"`
	CandidatesAvoided int64 `json:"candidates_avoided"`
}

// Add accumulates other into s.
func (s *RetainedStats) Add(other RetainedStats) {
	s.FullScans += other.FullScans
	s.MemoHits += other.MemoHits
	s.DeltaScans += other.DeltaScans
	s.CandidatesScanned += other.CandidatesScanned
	s.CandidatesAvoided += other.CandidatesAvoided
}

// NewRetained builds a retained-tree query mode over e for the given K.
// useMC selects the appendix-A.3 multi-class accumulator (matching
// Engine.CountsMC) instead of tally enumeration (Engine.Counts). scratches,
// when non-nil, lends the scan Scratch per (re)scan — it must be a pool of
// e's shape with the same K; with nil a private Scratch is allocated lazily
// and retained.
func NewRetained(e *Engine, k int, useMC bool, scratches *ScratchPool) (*Retained, error) {
	if err := validateK(e.inst, k); err != nil {
		return nil, err
	}
	if scratches != nil && scratches.K() != k {
		return nil, fmt.Errorf("core: retained K=%d but scratch pool K=%d", k, scratches.K())
	}
	return &Retained{
		e:      e,
		k:      k,
		useMC:  useMC,
		pool:   scratches,
		counts: make([]float64, e.numLabels),
		offs:   make([]int, len(e.order)+1),
	}, nil
}

// K returns the query K the mode is bound to.
func (r *Retained) K() int { return r.k }

// UseMC reports whether answers come from the multi-class accumulator.
func (r *Retained) UseMC() bool { return r.useMC }

// Generation returns the pin generation the current memo answers for.
func (r *Retained) Generation() uint64 { return r.gen }

// Stats snapshots the reuse counters.
func (r *Retained) Stats() RetainedStats { return r.stats }

// ConfigureSweep selects the span-parallel scan for future rescans. Answers
// stay bit-identical to the sequential path for every worker count; without a
// scratch pool (NewRetained's scratches == nil) the config is ignored and
// scans stay sequential, since each span worker needs its own scan state.
func (r *Retained) ConfigureSweep(cfg SweepConfig) { r.sweep = cfg }

// SweepStats snapshots the span-parallel scan counters.
func (r *Retained) SweepStats() SweepStats { return r.sweepStats }

// Invalidate drops the memo so the next Counts runs a full sweep — the
// ablation hook benchmarks use to measure the non-incremental baseline, and
// the escape hatch after out-of-band engine mutation.
func (r *Retained) Invalidate() { r.valid = false }

// Entropy returns the Shannon entropy (nats) of the current Q2 distribution,
// bit-identical to Entropy over a fresh sweep's counts.
func (r *Retained) Entropy() float64 { return Entropy(r.Counts()) }

// Relevant returns the relevance mask matching the memo state — after a
// Counts call, the mask a fresh Engine.RelevantRows(K) would return under
// the current pins. It is a pure accessor (no recompute, no stats): call
// Counts first when pins may have moved since the last query. The slice
// aliases internal state; valid until the next Counts call.
func (r *Retained) Relevant() []bool {
	return r.relevant
}

// Counts answers Q2 under the engine's current pins, reusing the retained
// scan state wherever the reuse is provably bit-exact. The returned slice
// aliases the memo: copy it before the next pin mutation + Counts call if it
// must outlive them.
func (r *Retained) Counts() []float64 {
	e := r.e
	gen := e.PinGeneration()
	if r.valid && gen == r.gen {
		r.stats.MemoHits++
		r.stats.CandidatesAvoided += int64(len(e.order))
		return r.counts
	}
	if r.valid {
		if events, ok := e.PinsSince(r.gen); ok {
			if lo, hi, usable := r.deltaWindow(events); usable {
				if hi < 0 {
					// Every pin since the memo was a fresh pin of a provably
					// irrelevant row: counts, mask, and all retained terms are
					// bit-identical (the RelevantRows lemma), so the memo
					// stays valid as-is under the new generation.
					r.gen = gen
					r.stats.MemoHits++
					r.stats.CandidatesAvoided += int64(len(e.order))
					return r.counts
				}
				r.rescan(lo, hi)
				r.gen = gen
				r.stats.DeltaScans++
				return r.counts
			}
		}
	}
	r.rescan(0, len(e.order)-1)
	r.gen = gen
	r.valid = true
	r.stats.FullScans++
	return r.counts
}

// deltaWindow maps a batch of pin events onto the scan window that must be
// replayed. usable is false for a ResetPins (every row may have changed —
// full rescan). hi < 0 means no window at all: the whole batch is provably
// term-preserving. Only batches made solely of fresh pins (no pin before,
// one after) may skip the spans of irrelevant rows: an unpin or repin can
// lower the relevance bound, which would unsoundly shrink the window.
func (r *Retained) deltaWindow(events []PinEvent) (lo, hi int, usable bool) {
	lo, hi = len(r.e.order), -1
	trusted := true
	for _, ev := range events {
		if ev.Row < 0 {
			return 0, 0, false
		}
		if ev.Old >= 0 || ev.New < 0 {
			trusted = false
		}
	}
	for _, ev := range events {
		if trusted && !r.relevant[ev.Row] {
			continue
		}
		f, l := r.e.OrderSpan(int(ev.Row))
		if f < lo {
			lo = f
		}
		if l > hi {
			hi = l
		}
	}
	return lo, hi, true
}

// rescan replays scan positions [lo, hi] with real tree work under the
// current pins, re-records their term streams, and re-sums every position's
// terms in scan order. Positions outside the window keep their retained
// terms — the callers guarantee those are bit-identical under the current
// pins. rescan(0, len(order)−1) is a full sweep. When a sweep config is set
// (ConfigureSweep) and the engine is large enough for span parallelism, the
// window runs through the engine's plan cache (rescanPlanned); either way
// the term streams — and therefore the re-summed counts — are bit-identical.
func (r *Retained) rescan(lo, hi int) {
	e := r.e
	total := len(e.order)
	workers, fullSpans := r.sweep.planSize(e.N(), total)
	if r.pool != nil && workers > 1 && fullSpans >= 2 {
		r.rescanPlanned(lo, hi, workers, fullSpans)
	} else {
		r.rescanSeq(lo, hi)
	}
	r.stats.CandidatesAvoided += int64(len(e.order) - (hi - lo + 1))

	// Re-sum all positions' terms in scan order: each addition has the same
	// operands in the same sequence as a fresh sweep's accumulation, so the
	// result is bit-identical.
	for y := range r.counts {
		r.counts[y] = 0
	}
	for i := range r.terms {
		r.counts[r.terms[i].y] += r.terms[i].v
	}
	r.relevant = e.RelevantRows(r.k)
}

// ensureResults sizes the reusable span-output buffers (keeping previously
// grown term capacities) and returns the first n.
func (r *Retained) ensureResults(n int) []spanResult {
	if n > cap(r.results) {
		next := make([]spanResult, n)
		copy(next, r.results[:cap(r.results)])
		r.results = next
	}
	r.results = r.results[:n]
	return r.results
}

// rescanSeq is the sequential window replay.
func (r *Retained) rescanSeq(lo, hi int) {
	e := r.e
	sc := r.getScratch()
	defer r.putScratch(sc)

	// Reconstruct α and the zero-row count at the window start under the
	// current pins — pure integer work over the prefix.
	for i := range sc.alpha {
		sc.alpha[i] = 0
	}
	zeroRows := e.N()
	for pos := 0; pos < lo; pos++ {
		zeroRows = e.advanceAlpha(pos, sc.alpha, zeroRows)
	}
	// A fresh sweep builds its trees at the first position where the
	// boundary support stops being provably zero; if that transition lies
	// before the window, bulk-build the same leaf state here — bit-identical
	// by the segment tree's purity invariant.
	built := zeroRows <= sc.k-1
	if built {
		e.buildLeaves(sc, -1, -1)
	}
	results := r.ensureResults(1)
	r.stats.CandidatesScanned += e.scanSpanFlat(sc, lo, hi, zeroRows, built, r.useMC, &results[0])
	r.splice(lo, hi, []sweepSpan{{lo: lo, hi: hi}}, results)
}

// rescanPlanned replays window [lo, hi] through the engine's plan cache: the
// full-scan plan is fetched (or revalidated, or repaired) once per pin
// generation, a full rescan runs its spans directly, and a delta window is
// sub-sliced from it — the cached α snapshots seed the window's scan state,
// so the replay skips the O(N) sequential prefix walk, and a hot window
// splits below the full sweep's span floor (deltaPlanSize) because planning
// it costs almost nothing.
func (r *Retained) rescanPlanned(lo, hi, workers, fullSpans int) {
	e := r.e
	total := len(e.order)
	full := e.planFor(r.k, 0, total-1, fullSpans)
	spans := full.spans
	if lo != 0 || hi != total-1 {
		_, deltaSpans := r.sweep.deltaPlanSize(hi - lo + 1)
		_, spans = e.subSlicePlan(full, lo, hi, deltaSpans)
	}
	// Spans carry their own boundaries; splice truncates [lo, spans[0].lo).
	if len(spans) == 0 {
		r.splice(lo, hi, nil, nil)
		return
	}
	results := r.ensureResults(len(spans))
	if len(spans) < 2 {
		// Degenerate plan (the emitting tail is one span): scan it
		// sequentially from the snapshot — still skipping the prefix walk.
		sp := spans[0]
		sc := r.getScratch()
		defer r.putScratch(sc)
		copy(sc.alpha, sp.alpha)
		built := sp.zeroRows <= r.k-1
		if built {
			e.buildLeaves(sc, -1, -1)
		}
		r.stats.CandidatesScanned += e.scanSpanFlat(sc, sp.lo, sp.hi, sp.zeroRows, built, r.useMC, &results[0])
		r.splice(lo, hi, spans, results)
		return
	}
	stats, scanned := e.runSpans(spans, r.k, r.useMC, workers, r.pool, results)
	r.sweepStats.Add(stats)
	r.stats.CandidatesScanned += scanned
	r.splice(lo, hi, spans, results)
}

// splice replaces the retained streams of positions [lo, hi] with the freshly
// scanned spans' flat outputs. Positions in [lo, spans[0].lo) — the
// provably-zero prefix — and trailing positions past the last span become
// empty streams. The flat suffix beyond hi shifts once (an overlapping copy),
// and offsets after the window adjust by the length delta; streams outside
// the window are untouched byte-for-byte, which is what keeps the re-summed
// counts bit-identical to a fresh sweep.
func (r *Retained) splice(lo, hi int, spans []sweepSpan, results []spanResult) {
	oldLo := r.offs[lo]
	oldHi := r.offs[hi+1]
	newW := 0
	for i := range results {
		newW += len(results[i].terms)
	}
	delta := newW - (oldHi - oldLo)
	n := len(r.terms)
	if delta > 0 {
		r.terms = append(r.terms, make([]term, delta)...)
	}
	copy(r.terms[oldHi+delta:n+delta], r.terms[oldHi:n])
	if delta < 0 {
		r.terms = r.terms[:n+delta]
	}
	w := oldLo
	pos := lo
	for i := range results {
		sp := spans[i]
		for ; pos < sp.lo; pos++ {
			r.offs[pos] = w // truncated pre-emit prefix: empty stream
		}
		copy(r.terms[w:], results[i].terms)
		offs := results[i].offs
		for pi := 0; pi <= sp.hi-sp.lo; pi++ {
			r.offs[sp.lo+pi] = w + int(offs[pi])
		}
		w += len(results[i].terms)
		pos = sp.hi + 1
	}
	for ; pos <= hi; pos++ {
		r.offs[pos] = w // no emitting span reached these positions
	}
	if delta != 0 {
		for p := hi + 1; p < len(r.offs); p++ {
			r.offs[p] += delta
		}
	}
}

func (r *Retained) getScratch() *Scratch {
	if r.pool != nil {
		return r.pool.Get()
	}
	if r.own == nil {
		r.own = newScratchFromShape(r.e.shape(), r.k)
	}
	return r.own
}

func (r *Retained) putScratch(sc *Scratch) {
	if r.pool != nil {
		r.pool.Put(sc)
	}
}

// ApproxBytes estimates the retained state's heap footprint — the flat term
// stream dominates at O(NM·K) — for byte-budgeted caches.
func (r *Retained) ApproxBytes() int64 {
	b := int64(len(r.counts))*8 + int64(len(r.relevant)) +
		int64(cap(r.terms))*16 + int64(len(r.offs))*8
	for i := range r.results {
		b += int64(cap(r.results[i].terms))*16 + int64(cap(r.results[i].offs))*4
	}
	if r.own != nil {
		b += r.own.ApproxBytes()
	}
	return b
}
