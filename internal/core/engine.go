package core

import (
	"fmt"
	"math/big"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/segtree"
)

// Engine answers CP queries for one (incomplete dataset, test point) pair.
// It pre-sorts all candidate similarities once and then supports repeated
// Q1/Q2 evaluation under different cleaning states:
//
//   - persistent pins (SetPin) model rows that have been cleaned to a known
//     value, shrinking their candidate set to one;
//   - a per-query override models CPClean's hypothetical "what if we cleaned
//     row i to candidate j" without mutating the engine, so hypotheses can be
//     evaluated from many goroutines sharing one engine (each goroutine owns
//     its own Scratch).
//
// Q2 uses the SS-DC algorithm (§3.1.3 + appendix A.2): a segment tree per
// label maintains the boundary-set DP under one leaf update per scanned
// candidate, giving O(NM·(log NM + K²·log N)) per query. Q1 uses MM (§3.2).
type Engine struct {
	inst      *Instance
	numLabels int
	order     []candRef // ascending similarity under the total order
	pins      []int32   // pins[i] = candidate index row i is cleaned to, or -1
	pinGen    uint64    // bumped on every pin mutation (SetPin, ResetPins)
	labelOf   []int
	rowPos    []int   // leaf index of each row inside its label's tree
	labelLen  []int   // rows per label
	ones      []int32 // scratch template
	// firstPos/lastPos bound each row's candidate span inside order: every
	// candidate of row i sits at a scan position in [firstPos[i], lastPos[i]].
	// Outside that span a pin of row i provably cannot change the row's DP
	// leaf (α is 0 before the span and saturated after it), which is what
	// lets Retained replay only the span window after a pin.
	firstPos []int
	lastPos  []int
	// pinLog records each pin mutation so retained-tree caches can ask which
	// rows changed between two pin generations. pinLog[g−pinLogBase] is the
	// mutation that advanced the generation from g to g+1; the log is
	// bounded, and a cache older than its tail falls back to a full rescan.
	pinLog     []PinEvent
	pinLogBase uint64
	// planMu guards the sweep-plan cache. Queries may share an unpinned
	// engine across goroutines, so plan lookups lock; pin mutations are never
	// concurrent with queries (the SetPin contract), so a plan revalidated at
	// the current generation stays valid for the whole query and its spans
	// can be read lock-free by scan workers.
	planMu    sync.Mutex
	plans     map[planKey]*SweepPlan // guarded by planMu
	planStats PlanStats              // guarded by planMu
}

// PinEvent is one pin mutation: row's pin moved from Old to New (−1 = no
// pin). A Row of −1 marks a ResetPins, where every row may have changed.
type PinEvent struct {
	Row, Old, New int32
}

// maxPinLog bounds the engine's pin-mutation log. Caches further behind than
// this rebuild from scratch, which is a performance fallback, never an error.
const maxPinLog = 4096

// NewEngine builds an engine for incomplete dataset d and test point t under
// the given kernel.
func NewEngine(d *dataset.Incomplete, kernel knn.Kernel, t []float64) *Engine {
	return NewEngineFromInstance(InstanceFor(d, kernel, t))
}

// NewEngineFromInstance builds an engine from a precomputed similarity view.
func NewEngineFromInstance(inst *Instance) *Engine {
	n := inst.N()
	e := &Engine{
		inst:      inst,
		numLabels: inst.NumLabels,
		order:     inst.sortedCandidates(),
		pins:      make([]int32, n),
		labelOf:   make([]int, n),
		rowPos:    make([]int, n),
		labelLen:  make([]int, inst.NumLabels),
	}
	for i := 0; i < n; i++ {
		e.pins[i] = -1
		l := inst.Labels[i]
		e.labelOf[i] = l
		e.rowPos[i] = e.labelLen[l]
		e.labelLen[l]++
	}
	e.firstPos = make([]int, n)
	e.lastPos = make([]int, n)
	for i := range e.firstPos {
		e.firstPos[i] = -1
	}
	for pos, ref := range e.order {
		i := int(ref.row)
		if e.firstPos[i] < 0 {
			e.firstPos[i] = pos
		}
		e.lastPos[i] = pos
	}
	return e
}

// logPinMutation appends one mutation to the pin log, sliding the bounded
// window forward when it overflows.
func (e *Engine) logPinMutation(ev PinEvent) {
	if len(e.pinLog) >= maxPinLog {
		drop := len(e.pinLog) / 2
		e.pinLogBase += uint64(drop)
		e.pinLog = append(e.pinLog[:0], e.pinLog[drop:]...)
	}
	e.pinLog = append(e.pinLog, ev)
}

// PinsSince reports the pin mutations between generation gen and the
// engine's current generation, in order. ok is false when gen is ahead of
// the engine or has aged out of the bounded log — callers must then treat
// every row as potentially changed. The returned slice aliases the log and
// is valid only until the next pin mutation. Like SetPin, not safe to call
// concurrently with pin mutations.
func (e *Engine) PinsSince(gen uint64) (events []PinEvent, ok bool) {
	switch {
	case gen > e.pinGen:
		return nil, false
	case gen == e.pinGen:
		return nil, true
	case gen < e.pinLogBase:
		return nil, false
	}
	return e.pinLog[gen-e.pinLogBase:], true
}

// OrderSpan returns the scan-position span of row's candidates inside the
// engine's total order — the only window of the SS-DC scan a pin of this row
// can affect.
func (e *Engine) OrderSpan(row int) (first, last int) {
	return e.firstPos[row], e.lastPos[row]
}

// Instance returns the similarity view the engine answers queries over.
func (e *Engine) Instance() *Instance { return e.inst }

// N returns the number of training examples.
func (e *Engine) N() int { return e.inst.N() }

// SetPin permanently fixes row to its cand-th candidate (cleaning); cand = -1
// clears the pin. Not safe to call concurrently with queries.
func (e *Engine) SetPin(row, cand int) {
	if cand >= 0 && cand >= e.inst.M(row) {
		panic(fmt.Sprintf("core: pin candidate %d out of range for row %d (M=%d)", cand, row, e.inst.M(row)))
	}
	old := e.pins[row]
	e.pins[row] = int32(cand)
	e.pinGen++
	e.logPinMutation(PinEvent{Row: int32(row), Old: old, New: int32(cand)})
}

// Pin returns the pinned candidate of row, or -1.
func (e *Engine) Pin(row int) int { return int(e.pins[row]) }

// PinGeneration returns a counter bumped by every pin mutation (SetPin,
// ResetPins). Caches keyed on an engine's cleaning state — the incremental
// selection memo above all — compare generations to detect that the engine
// was pinned out from under them.
func (e *Engine) PinGeneration() uint64 { return e.pinGen }

// PinnedCount returns the number of pinned rows.
func (e *Engine) PinnedCount() int {
	n := 0
	for _, p := range e.pins {
		if p >= 0 {
			n++
		}
	}
	return n
}

// WorldCount returns the number of possible worlds remaining under the pins.
func (e *Engine) WorldCount() *big.Int {
	total := big.NewInt(1)
	for i := 0; i < e.N(); i++ {
		if e.pins[i] < 0 {
			total.Mul(total, big.NewInt(int64(e.inst.M(i))))
		}
	}
	return total
}

// Scratch holds per-goroutine query state for an Engine. A Scratch is bound
// to one (engine, K) pair and must not be shared between goroutines. It may
// be reused across engines of identical shape (same N, labels in the same
// order) — CPClean exploits this across validation-point engines.
type Scratch struct {
	k       int
	trees   []*segtree.PolyTree
	alpha   []int32
	leafP0  [][]float64 // per-label bulk leaf staging
	leafP1  [][]float64
	counts  []float64
	tallies [][]int
	winners []int
	// SS-DC-MC winner-cap DP buffers.
	dpA, dpB []float64
	// Cached root views (stable slices into each tree's backing array).
	rootsNormal [][]float64
	// HypothesisCounts state: one alternate (pre-state) tree per label,
	// prefix snapshots and per-pin outputs.
	altTrees []*segtree.PolyTree
	rootsPre [][]float64
	cumPre   []float64
	cumPost  []float64
	snapPre  [][]float64
	snapPost [][]float64
	own      [][]float64
	hyp      [][]float64
}

// scratchShape is the structural signature a Scratch is sized by: the
// per-label row counts. It carries no reference to any engine, so pools can
// hold it without retaining the engine they were seeded from.
type scratchShape struct {
	labelLen []int
}

// shape copies the engine's scratch shape.
func (e *Engine) shape() scratchShape {
	return scratchShape{labelLen: append([]int(nil), e.labelLen...)}
}

// n returns the total row count.
func (sh scratchShape) n() int {
	t := 0
	for _, l := range sh.labelLen {
		t += l
	}
	return t
}

// newScratchFromShape allocates query state for the given shape and K.
func newScratchFromShape(sh scratchShape, k int) *Scratch {
	numLabels := len(sh.labelLen)
	sc := &Scratch{
		k:      k,
		alpha:  make([]int32, sh.n()),
		counts: make([]float64, numLabels),
		dpA:    make([]float64, k+1),
		dpB:    make([]float64, k+1),
	}
	for l := 0; l < numLabels; l++ {
		sc.trees = append(sc.trees, segtree.New(sh.labelLen[l], k))
		sc.altTrees = append(sc.altTrees, segtree.New(sh.labelLen[l], k))
		sc.leafP0 = append(sc.leafP0, make([]float64, sh.labelLen[l]))
		sc.leafP1 = append(sc.leafP1, make([]float64, sh.labelLen[l]))
	}
	sc.rootsNormal = make([][]float64, numLabels)
	sc.rootsPre = make([][]float64, numLabels)
	for l := 0; l < numLabels; l++ {
		sc.rootsNormal[l] = sc.trees[l].Root()
	}
	sc.cumPre = make([]float64, numLabels)
	sc.cumPost = make([]float64, numLabels)
	sc.tallies = compositions(k, numLabels)
	sc.winners = make([]int, len(sc.tallies))
	for ti, g := range sc.tallies {
		sc.winners[ti] = argmaxTally(g)
	}
	return sc
}

// NewScratch allocates query state for queries with the given K.
func (e *Engine) NewScratch(k int) (*Scratch, error) {
	if err := validateK(e.inst, k); err != nil {
		return nil, err
	}
	return newScratchFromShape(e.shape(), k), nil
}

// MustScratch is NewScratch but panics on error.
func (e *Engine) MustScratch(k int) *Scratch {
	sc, err := e.NewScratch(k)
	if err != nil {
		panic(err)
	}
	return sc
}

// chosen returns the forced candidate of row under pins and the per-query
// override, or -1 if the row is uncertain.
func (e *Engine) chosen(row int, overrideRow, overrideCand int) int {
	if row == overrideRow {
		return overrideCand
	}
	return int(e.pins[row])
}

// Counts answers Q2 with SS-DC. overrideRow/overrideCand (-1,-1 for none)
// hypothetically clean one row for the duration of the query. The returned
// slice (owned by sc) holds normalized fractions: out[y] = Q2/|worlds|.
func (e *Engine) Counts(sc *Scratch, overrideRow, overrideCand int) []float64 {
	inst := e.inst
	for i := range sc.alpha {
		sc.alpha[i] = 0
	}
	for y := range sc.counts {
		sc.counts[y] = 0
	}

	// zeroRows counts rows with α = 0. Every such row must place a candidate
	// in the top-K (all its candidates are more similar than the boundary),
	// so while zeroRows > K−1 (excluding the boundary row, whose α has just
	// been incremented) the boundary support is identically zero. During
	// that prefix only α is maintained; the trees are built in one bulk pass
	// at the transition (built = false until then).
	zeroRows := e.N()
	built := false
	for _, ref := range e.order {
		i := int(ref.row)
		j := int(ref.cand)
		ch := e.chosen(i, overrideRow, overrideCand)
		if ch >= 0 && j != ch {
			continue // candidate eliminated by cleaning
		}
		mEff := inst.M(i)
		if ch >= 0 {
			mEff = 1
		}
		sc.alpha[i]++
		if sc.alpha[i] == 1 {
			zeroRows--
		}
		if zeroRows > sc.k-1 {
			continue // provably zero boundary support; trees not needed yet
		}
		if !built {
			e.buildLeaves(sc, overrideRow, overrideCand)
			built = true
		}
		a := float64(sc.alpha[i]) / float64(mEff)
		tr := sc.trees[e.labelOf[i]]
		pos := e.rowPos[i]
		// Query with row i forced onto the boundary: it contributes exactly
		// one top-K slot, with probability 1/mEff of picking candidate j.
		tr.SetLeaf(pos, 0, 1/float64(mEff))
		e.accumulate(sc)
		// Restore the leaf to its scanned state [α/M, 1−α/M].
		tr.SetLeaf(pos, a, 1-a)
	}
	return sc.counts
}

// buildLeaves bulk-initializes every label tree from the current α state:
// leaf n = [α_n/M_n, 1−α_n/M_n] with M_n = 1 for pinned/overridden rows.
func (e *Engine) buildLeaves(sc *Scratch, overrideRow, overrideCand int) {
	for i := 0; i < e.N(); i++ {
		mEff := e.inst.M(i)
		if e.chosen(i, overrideRow, overrideCand) >= 0 {
			mEff = 1
		}
		a := float64(sc.alpha[i]) / float64(mEff)
		l := e.labelOf[i]
		sc.leafP0[l][e.rowPos[i]] = a
		sc.leafP1[l][e.rowPos[i]] = 1 - a
	}
	for l, tr := range sc.trees {
		n := e.labelLen[l]
		tr.ResetLeaves(sc.leafP0[l][:n], sc.leafP1[l][:n])
	}
}

// accumulate adds the supports of every valid label tally for the current
// boundary candidate into sc.counts (Algorithm 1, lines 9-12).
func (e *Engine) accumulate(sc *Scratch) {
	accumulateInto(sc, sc.rootsNormal, sc.counts)
}

// accumulateInto tallies every composition against the given per-label root
// polynomials, adding each support to out[winner].
func accumulateInto(sc *Scratch, roots [][]float64, out []float64) {
	for ti, g := range sc.tallies {
		prod := 1.0
		for l, c := range g {
			v := roots[l][c]
			if v == 0 {
				prod = 0
				break
			}
			prod *= v
		}
		if prod != 0 {
			out[sc.winners[ti]] += prod
		}
	}
}

// term is one recorded support contribution of a boundary-candidate scan
// position: counts[y] += v. Retained replays term streams in the original
// accumulation order, which keeps the re-summed counts bit-identical to a
// fresh scan.
type term struct {
	y int32
	v float64
}

// recordInto is accumulateInto with the additions captured as terms instead
// of applied: same tally order, same products, same zero-skips.
func recordInto(sc *Scratch, roots [][]float64, rec []term) []term {
	for ti, g := range sc.tallies {
		prod := 1.0
		for l, c := range g {
			v := roots[l][c]
			if v == 0 {
				prod = 0
				break
			}
			prod *= v
		}
		if prod != 0 {
			rec = append(rec, term{y: int32(sc.winners[ti]), v: prod})
		}
	}
	return rec
}

// CountsMC answers Q2 with the appendix-A.3 multi-class variant: instead of
// enumerating all C(K+|Y|−1, K) label tallies, for each winning label l and
// winning tally c it runs a winner-cap DP over the other labels (labels
// smaller than l capped at c−1, larger capped at c — realizing the
// smallest-label vote tie-break exactly). O(|Y|²K³) per scanned candidate,
// polynomial in |Y|.
func (e *Engine) CountsMC(sc *Scratch, overrideRow, overrideCand int) []float64 {
	inst := e.inst
	for i := range sc.alpha {
		sc.alpha[i] = 0
	}
	for y := range sc.counts {
		sc.counts[y] = 0
	}
	zeroRows := e.N()
	built := false
	for _, ref := range e.order {
		i := int(ref.row)
		j := int(ref.cand)
		ch := e.chosen(i, overrideRow, overrideCand)
		if ch >= 0 && j != ch {
			continue
		}
		mEff := inst.M(i)
		if ch >= 0 {
			mEff = 1
		}
		sc.alpha[i]++
		if sc.alpha[i] == 1 {
			zeroRows--
		}
		if zeroRows > sc.k-1 {
			continue
		}
		if !built {
			e.buildLeaves(sc, overrideRow, overrideCand)
			built = true
		}
		a := float64(sc.alpha[i]) / float64(mEff)
		tr := sc.trees[e.labelOf[i]]
		pos := e.rowPos[i]
		tr.SetLeaf(pos, 0, 1/float64(mEff))
		e.accumulateMC(sc)
		tr.SetLeaf(pos, a, 1-a)
	}
	return sc.counts
}

// accumulateMC adds supports via the winner-cap DP.
func (e *Engine) accumulateMC(sc *Scratch) {
	e.recordMC(sc, nil)
}

// recordMC is accumulateMC with an optional term recorder: with rec == nil
// the supports are added into sc.counts (the normal query path); otherwise
// they are appended to rec in the same (l, c) order and sc.counts is left
// untouched.
func (e *Engine) recordMC(sc *Scratch, rec *[]term) {
	k := sc.k
	for l := 0; l < e.numLabels; l++ {
		rootL := sc.trees[l].Root()
		for c := 1; c <= k; c++ {
			wl := rootL[c]
			if wl == 0 {
				continue
			}
			// DP over the other labels filling the remaining k−c slots,
			// each label l' capped at c−1 (l' < l) or c (l' > l).
			rem := k - c
			dp := sc.dpA[:rem+1]
			next := sc.dpB[:rem+1]
			for s := range dp {
				dp[s] = 0
			}
			dp[0] = 1
			for lp := 0; lp < e.numLabels; lp++ {
				if lp == l {
					continue
				}
				capL := c
				if lp < l {
					capL = c - 1
				}
				rootP := sc.trees[lp].Root()
				for s := 0; s <= rem; s++ {
					acc := 0.0
					hi := s
					if hi > capL {
						hi = capL
					}
					for u := 0; u <= hi; u++ {
						if rootP[u] != 0 && dp[s-u] != 0 {
							acc += rootP[u] * dp[s-u]
						}
					}
					next[s] = acc
				}
				dp, next = next, dp
			}
			if dp[rem] != 0 {
				if rec != nil {
					*rec = append(*rec, term{y: int32(l), v: wl * dp[rem]})
				} else {
					sc.counts[l] += wl * dp[rem]
				}
			}
		}
	}
}

// Entropy returns the Shannon entropy (nats) of the Q2 distribution under
// the given override — the quantity CPClean greedily minimizes (§4, Eq. 3).
func (e *Engine) Entropy(sc *Scratch, overrideRow, overrideCand int) float64 {
	return Entropy(e.Counts(sc, overrideRow, overrideCand))
}

// ensureHyp sizes the per-pin HypothesisCounts buffers.
func (sc *Scratch) ensureHyp(m, numLabels int) {
	for len(sc.snapPre) < m {
		sc.snapPre = append(sc.snapPre, make([]float64, numLabels))
		sc.snapPost = append(sc.snapPost, make([]float64, numLabels))
		sc.own = append(sc.own, make([]float64, numLabels))
		sc.hyp = append(sc.hyp, make([]float64, numLabels))
	}
}

// HypothesisCounts answers, for *every* candidate j of the given row, the Q2
// query under the hypothetical cleaning "pin row to j" — the inner loop of
// CPClean's expected-entropy computation (Eq. 4) — in a single combined scan
// instead of M separate ones.
//
// Key observation: across the M pinned worlds, only two things vary —
//
//  1. when another candidate (n, m) is the boundary, row `row`'s chosen value
//     is either still unscanned (more similar ⇒ row occupies a top-K slot;
//     its DP leaf is [0,1] — the *pre* state) or already scanned (less
//     similar ⇒ leaf [1,0] — the *post* state), determined solely by whether
//     (n, m) precedes candidate (row, j) in the scan order; and
//  2. row `row`'s own boundary term, which for pin j is the support of
//     candidate (row, j) with the row forced onto the boundary.
//
// So one scan maintains two trees for the row's label (pre and post leaf
// state), accumulates *both* supports per scanned candidate into running
// prefix sums, snapshots the prefixes at each (row, j), and assembles
//
//	Q2_j = cumPre(before j) + [cumPost(total) − cumPost(before j)] + own_j.
//
// The returned slice holds M normalized distributions (aliasing sc buffers;
// valid until the next call).
func (e *Engine) HypothesisCounts(sc *Scratch, row int) [][]float64 {
	inst := e.inst
	if e.pins[row] >= 0 {
		panic("core: HypothesisCounts on a pinned row")
	}
	m := inst.M(row)
	lRow := e.labelOf[row]
	posRow := e.rowPos[row]
	sc.ensureHyp(m, e.numLabels)
	for i := range sc.alpha {
		sc.alpha[i] = 0
	}
	for y := 0; y < e.numLabels; y++ {
		sc.cumPre[y] = 0
		sc.cumPost[y] = 0
	}
	// rootsPre views the alternate tree for the row's label.
	copy(sc.rootsPre, sc.rootsNormal)
	sc.rootsPre[lRow] = sc.altTrees[lRow].Root()
	preTree := sc.altTrees[lRow]
	postTree := sc.trees[lRow]

	// zeroOthers counts rows ≠ row with α = 0; while it exceeds K−1, both
	// the pre and post supports of any boundary candidate are zero, as is
	// the row's own boundary support.
	zeroOthers := e.N() - 1
	built := false
	build := func() {
		e.buildLeaves(sc, -1, -1)
		// Mirror the row-label tree into the pre tree, then fix the row's
		// leaf states: post [1,0] (row's value less similar than boundary),
		// pre [0,1] (row forced into the top-K).
		n := e.labelLen[lRow]
		preTree.ResetLeaves(sc.leafP0[lRow][:n], sc.leafP1[lRow][:n])
		postTree.SetLeaf(posRow, 1, 0)
		preTree.SetLeaf(posRow, 0, 1)
		built = true
	}
	for _, ref := range e.order {
		i := int(ref.row)
		j := int(ref.cand)
		if i == row {
			// Snapshot the prefix sums for pin j and compute its own
			// boundary term (row forced onto the boundary ≡ the pre tree,
			// with a pinned row's 1/M_eff = 1).
			copy(sc.snapPre[j], sc.cumPre)
			copy(sc.snapPost[j], sc.cumPost)
			for y := range sc.own[j] {
				sc.own[j][y] = 0
			}
			if zeroOthers <= sc.k-1 {
				if !built {
					build()
				}
				accumulateInto(sc, sc.rootsPre, sc.own[j])
			}
			continue
		}
		ch := int(e.pins[i])
		if ch >= 0 && j != ch {
			continue
		}
		mEff := inst.M(i)
		if ch >= 0 {
			mEff = 1
		}
		sc.alpha[i]++
		if sc.alpha[i] == 1 {
			zeroOthers--
		}
		if zeroOthers > sc.k-1 {
			continue
		}
		if !built {
			build()
		}
		a := float64(sc.alpha[i]) / float64(mEff)
		l := e.labelOf[i]
		pos := e.rowPos[i]
		force0, force1 := 0.0, 1/float64(mEff)
		// Force row i onto the boundary in its tree(s), accumulate both
		// states, restore.
		sc.trees[l].SetLeaf(pos, force0, force1)
		if l == lRow {
			preTree.SetLeaf(pos, force0, force1)
		}
		accumulateInto(sc, sc.rootsNormal, sc.cumPost)
		accumulateInto(sc, sc.rootsPre, sc.cumPre)
		sc.trees[l].SetLeaf(pos, a, 1-a)
		if l == lRow {
			preTree.SetLeaf(pos, a, 1-a)
		}
	}
	// Assemble the per-pin distributions.
	for j := 0; j < m; j++ {
		out := sc.hyp[j]
		for y := 0; y < e.numLabels; y++ {
			out[y] = sc.snapPre[j][y] + (sc.cumPost[y] - sc.snapPost[j][y]) + sc.own[j][y]
		}
	}
	return sc.hyp[:m]
}

// RelevantRows reports, per training row, whether the row can appear in the
// test point's top-K in *any* possible world under the current pins. If not,
// every world's prediction is independent of that row's candidate choice, so
// pinning it cannot change the Q2 distribution — CPClean uses this to skip
// hypothesis evaluations wholesale.
//
// Soundness: let bound be the (K+1)-th largest per-row *worst* (least
// similar) valid candidate similarity. If row i's *best* valid candidate
// similarity is strictly below bound, then in every world at least K rows
// other than i choose candidates strictly more similar than anything row i
// can offer, so row i is never in the top-K. Ties are kept relevant
// (conservative).
func (e *Engine) RelevantRows(k int) []bool {
	n := e.N()
	rel := make([]bool, n)
	if n <= k {
		for i := range rel {
			rel[i] = true
		}
		return rel
	}
	worst := make([]float64, n)
	best := make([]float64, n)
	for i := 0; i < n; i++ {
		ch := int(e.pins[i])
		if ch >= 0 {
			worst[i] = e.inst.Sims[i][ch]
			best[i] = worst[i]
			continue
		}
		row := e.inst.Sims[i]
		lo, hi := row[0], row[0]
		for _, s := range row[1:] {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		worst[i] = lo
		best[i] = hi
	}
	sorted := append([]float64(nil), worst...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	bound := sorted[k] // (k+1)-th largest
	for i := 0; i < n; i++ {
		rel[i] = best[i] >= bound
	}
	return rel
}
