package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/knn"
)

func TestAlgorithmStrings(t *testing.T) {
	algs := []Algorithm{Auto, BruteForce, SSExact, SSFast, SSDC, SSDCMC, MM}
	seen := map[string]bool{}
	for _, a := range algs {
		s := a.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("algorithm %d stringifies to %q", int(a), s)
		}
		seen[s] = true
	}
	if Algorithm(99).String() != "unknown" {
		t.Fatal("out-of-range algorithm should be unknown")
	}
}

func TestQ2DispatchAllAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(rng, 4+rng.Intn(4), 3, 2)
		k := 1 + rng.Intn(3)
		ref, err := Q2(inst, k, BruteForce)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{SSExact, SSDC, SSDCMC, Auto} {
			got, err := Q2(inst, k, alg)
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			if d := maxAbsDiff(got, ref); d > 1e-9 {
				t.Fatalf("trial %d: %v disagrees with brute force by %g", trial, alg, d)
			}
		}
		if k == 1 {
			got, err := Q2(inst, 1, SSFast)
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(got, ref); d > 1e-9 {
				t.Fatalf("trial %d: ss-fast disagrees by %g", trial, d)
			}
		}
	}
}

func TestQ1DispatchAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(rng, 4+rng.Intn(4), 3, 2)
		k := 1 + rng.Intn(3)
		ref, err := Q1(inst, k, BruteForce)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{MM, SSExact, SSDC, Auto} {
			got, err := Q1(inst, k, alg)
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			for y := range ref {
				if got[y] != ref[y] {
					t.Fatalf("trial %d: %v label %d = %v, want %v", trial, alg, y, got[y], ref[y])
				}
			}
		}
	}
}

func TestQueryDatasetEndToEnd(t *testing.T) {
	d := dataset.MustNew([]dataset.Example{
		{Candidates: [][]float64{{0}}, Label: 0},
		{Candidates: [][]float64{{1}}, Label: 1},
		{Candidates: [][]float64{{0.4}, {0.6}}, Label: 1},
	}, 2)
	q1, q2, err := QueryDataset(d, knn.NegEuclidean{}, []float64{0.9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Nearest to 0.9 is row 1 (sim −0.1) or row 2 at 0.6 (sim −0.3)? Row 1
	// always wins; both have label 1 anyway → certain.
	if !q1[1] || q2[1] != 1 {
		t.Fatalf("q1=%v q2=%v", q1, q2)
	}
}

func TestValidateK(t *testing.T) {
	inst := MustNewInstance([][]float64{{1}, {2}}, []int{0, 1}, 2)
	if _, err := Q2(inst, 0, SSDC); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Q2(inst, 3, SSDC); err == nil {
		t.Fatal("K>N accepted")
	}
	if _, err := BruteForceCounts(inst, 5); err == nil {
		t.Fatal("brute force K>N accepted")
	}
}

func TestBruteForceRefusesHugeInstances(t *testing.T) {
	// 30 rows × 5 candidates = 5^30 worlds — must be refused, not attempted.
	rng := rand.New(rand.NewSource(43))
	sims := make([][]float64, 30)
	labels := make([]int, 30)
	for i := range sims {
		sims[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		labels[i] = i % 2
	}
	inst := MustNewInstance(sims, labels, 2)
	if _, err := BruteForceCounts(inst, 1); err == nil {
		t.Fatal("huge instance accepted")
	}
}

func TestMonteCarloApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(rng, 6, 3, 2)
		k := 1 + rng.Intn(3)
		exact, err := Q2(inst, k, SSDC)
		if err != nil {
			t.Fatal(err)
		}
		const samples = 4000
		est, err := MonteCarloCounts(inst, k, samples, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !MonteCarloAgrees(exact, est, samples, 5) {
			t.Fatalf("trial %d: exact %v vs estimate %v beyond 5σ", trial, exact, est)
		}
	}
}

func TestMonteCarloCheckNeverFalseNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 5, 3, 2)
		k := 1 + rng.Intn(2)
		exact, err := Q1(inst, k, SSExact)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarloCheck(inst, k, 200, rng)
		if err != nil {
			t.Fatal(err)
		}
		for y := range exact {
			if exact[y] && !mc[y] {
				t.Fatalf("trial %d: certain label %d reported uncertain by sampling", trial, y)
			}
		}
	}
}

func TestMonteCarloValidation(t *testing.T) {
	inst := MustNewInstance([][]float64{{1}, {2}}, []int{0, 1}, 2)
	if _, err := MonteCarloCounts(inst, 1, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero samples accepted")
	}
}

// Property: Q1(y) true implies Q2(y) == 1 and all other labels impossible.
func TestQ1Q2ConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randomInstance(r, 3+r.Intn(5), 3, 2)
		k := 1 + r.Intn(2)
		q1, err := Q1(inst, k, SSExact)
		if err != nil {
			return false
		}
		q2, err := Q2(inst, k, SSExact)
		if err != nil {
			return false
		}
		for y := range q1 {
			if q1[y] && (q2[y] < 1-1e-9) {
				return false
			}
			if q1[y] {
				for yy := range q2 {
					if yy != y && q2[yy] > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: pinning any single row never increases the support spread beyond
// bounds — specifically, normalized Q2 remains a distribution.
func TestPinnedCountsRemainDistributionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst := randomInstance(r, 4+r.Intn(6), 4, 2+r.Intn(2))
		k := 1 + r.Intn(3)
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		row := r.Intn(inst.N())
		cand := r.Intn(inst.M(row))
		p := e.Counts(sc, row, cand)
		sum := 0.0
		for _, v := range p {
			if v < -1e-12 || v > 1+1e-9 {
				return false
			}
			sum += v
		}
		return sum > 1-1e-9 && sum < 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
