package core

import (
	"repro/internal/dataset"
	"repro/internal/knn"
)

// Algorithm selects a CP query implementation.
type Algorithm int

const (
	// Auto picks the fastest sound algorithm for the query shape:
	// SS fast scan for K = 1, MM for binary Q1, SS-DC otherwise.
	Auto Algorithm = iota
	// BruteForce enumerates possible worlds (tiny instances only).
	BruteForce
	// SSExact is SortScan with exact big-int counts.
	SSExact
	// SSFast is the K = 1 incremental SortScan.
	SSFast
	// SSDC is the segment-tree SortScan (general K, |Y|).
	SSDC
	// SSDCMC is the appendix-A.3 multi-class SortScan.
	SSDCMC
	// MM is the MinMax checking algorithm (Q1, binary labels).
	MM
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case BruteForce:
		return "brute-force"
	case SSExact:
		return "ss-exact"
	case SSFast:
		return "ss-fast"
	case SSDC:
		return "ss-dc"
	case SSDCMC:
		return "ss-dc-mc"
	case MM:
		return "mm"
	default:
		return "unknown"
	}
}

// Q2 answers the counting query for every label at once, returning
// normalized world fractions (Q2(D,t,y)/|I_D|). The test point is implicit
// in the instance's similarities.
func Q2(inst *Instance, k int, alg Algorithm) ([]float64, error) {
	if err := validateK(inst, k); err != nil {
		return nil, err
	}
	switch alg {
	case BruteForce:
		c, err := BruteForceCounts(inst, k)
		if err != nil {
			return nil, err
		}
		return c.Normalize(), nil
	case SSExact:
		c, err := SSExactCounts(inst, k)
		if err != nil {
			return nil, err
		}
		return c.Normalize(), nil
	case SSFast:
		if k != 1 {
			c, err := SSExactCounts(inst, k)
			if err != nil {
				return nil, err
			}
			return c.Normalize(), nil
		}
		return SSFastCounts(inst), nil
	case SSDCMC:
		e := NewEngineFromInstance(inst)
		sc, err := e.NewScratch(k)
		if err != nil {
			return nil, err
		}
		return append([]float64(nil), e.CountsMC(sc, -1, -1)...), nil
	case Auto:
		if k == 1 {
			return SSFastCounts(inst), nil
		}
		fallthrough
	case SSDC:
		e := NewEngineFromInstance(inst)
		sc, err := e.NewScratch(k)
		if err != nil {
			return nil, err
		}
		return append([]float64(nil), e.Counts(sc, -1, -1)...), nil
	default:
		c, err := SSExactCounts(inst, k)
		if err != nil {
			return nil, err
		}
		return c.Normalize(), nil
	}
}

// Q1 answers the checking query for every label at once: out[y] is true iff
// every possible world's classifier predicts y.
func Q1(inst *Instance, k int, alg Algorithm) ([]bool, error) {
	switch alg {
	case MM:
		return MMCheck(inst, k)
	case BruteForce:
		return BruteForceCheck(inst, k)
	case SSExact:
		return SSExactCheck(inst, k)
	case Auto:
		if inst.NumLabels == 2 {
			return MMCheck(inst, k)
		}
		fallthrough
	default:
		p, err := Q2(inst, k, alg)
		if err != nil {
			return nil, err
		}
		return CheckFromNormalized(p), nil
	}
}

// QueryDataset is a convenience wrapper: builds the similarity instance for
// (d, t) under kernel and answers both queries.
func QueryDataset(d *dataset.Incomplete, kernel knn.Kernel, t []float64, k int) (q1 []bool, q2 []float64, err error) {
	inst := InstanceFor(d, kernel, t)
	q2, err = Q2(inst, k, Auto)
	if err != nil {
		return nil, nil, err
	}
	if inst.NumLabels == 2 {
		q1, err = MMCheck(inst, k)
		if err != nil {
			return nil, nil, err
		}
	} else {
		q1 = CheckFromNormalized(q2)
	}
	return q1, q2, nil
}
