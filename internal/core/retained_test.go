package core

import (
	"math/rand"
	"testing"
)

// nearZeroInstance builds an instance whose similarities include exact
// duplicates and near-zero / tiny-gap values, so the retained-tree replay is
// exercised against degenerate leaf weights and tie-broken scan orders.
func nearZeroInstance(rng *rand.Rand, n, maxM, numLabels int) *Instance {
	vals := []float64{0, 1e-300, -1e-300, 5e-17, -5e-17, 1e-9, 0.5, 0.5 + 1e-16, 1}
	sims := make([][]float64, n)
	labels := make([]int, n)
	for i := range sims {
		m := 1 + rng.Intn(maxM)
		row := make([]float64, m)
		for j := range row {
			row[j] = vals[rng.Intn(len(vals))]
		}
		sims[i] = row
		labels[i] = rng.Intn(numLabels)
	}
	for l := 0; l < numLabels && l < n; l++ {
		labels[l] = l
	}
	return MustNewInstance(sims, labels, numLabels)
}

// applyRandomPinOp mutates the engine's pins one step: mostly fresh pins
// (the cleaning steady state), sometimes an unpin, repin, or full reset, so
// every reuse tier — memo, irrelevant-pin skip, windowed delta, forced full
// rescan — gets hit.
func applyRandomPinOp(rng *rand.Rand, e *Engine) {
	switch op := rng.Intn(10); {
	case op == 0: // unpin a pinned row, if any
		var pinned []int
		for i := 0; i < e.N(); i++ {
			if e.Pin(i) >= 0 {
				pinned = append(pinned, i)
			}
		}
		if len(pinned) > 0 {
			e.SetPin(pinned[rng.Intn(len(pinned))], -1)
			return
		}
		fallthrough
	case op == 1: // repin or pin an arbitrary row
		row := rng.Intn(e.N())
		e.SetPin(row, rng.Intn(e.inst.M(row)))
	case op == 2 && rng.Intn(4) == 0: // occasional full reset
		e.ResetPins()
	default: // fresh pin of an unpinned row
		var free []int
		for i := 0; i < e.N(); i++ {
			if e.Pin(i) < 0 {
				free = append(free, i)
			}
		}
		if len(free) == 0 {
			e.ResetPins()
			return
		}
		row := free[rng.Intn(len(free))]
		e.SetPin(row, rng.Intn(e.inst.M(row)))
	}
}

// TestRetainedMatchesFreshSSDC is the exactness contract of the retained-tree
// mode: across random pin/unpin/reset sequences — over generic, tied, and
// near-zero-weight instances — Retained.Counts and Retained.Entropy must
// equal a fresh SS-DC sweep bit for bit, for both the tally-enumeration and
// multi-class accumulators. A second Retained configured for the
// span-parallel sweep (worker counts cycling 1/2/4/8, spans forced tiny so
// even these small instances split into many spans) runs every query in
// lockstep and must agree bitwise too. Well over 100 distinct pin sequences
// run here (every trial is one sequence of 12 mutation steps).
func TestRetainedMatchesFreshSSDC(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	gens := []func(*rand.Rand, int, int, int) *Instance{randomInstance, tiedInstance, nearZeroInstance}
	workerCounts := []int{1, 2, 4, 8}
	sequences := 0
	for trial := 0; trial < 120; trial++ {
		numLabels := 2 + rng.Intn(2)
		inst := gens[trial%len(gens)](rng, 5+rng.Intn(10), 4, numLabels)
		k := 1 + rng.Intn(3)
		useMC := trial%2 == 1
		workers := workerCounts[trial%len(workerCounts)]
		e := NewEngineFromInstance(inst)
		rt, err := NewRetained(e, k, useMC, nil)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := NewScratchPool(e, k)
		if err != nil {
			t.Fatal(err)
		}
		rtPar, err := NewRetained(e, k, useMC, pool)
		if err != nil {
			t.Fatal(err)
		}
		rtPar.ConfigureSweep(SweepConfig{Workers: workers, MinSpanPositions: 1})
		sc := e.MustScratch(k)
		sequences++
		for step := 0; step < 12; step++ {
			if step > 0 {
				// Sometimes land several pins between queries, so delta
				// windows cover multi-pin batches too.
				for n := 1 + rng.Intn(2); n > 0; n-- {
					applyRandomPinOp(rng, e)
				}
			}
			got := rt.Counts()
			gotPar := rtPar.Counts()
			var want []float64
			if useMC {
				want = e.CountsMC(sc, -1, -1)
			} else {
				want = e.Counts(sc, -1, -1)
			}
			for y := range want {
				if got[y] != want[y] {
					t.Fatalf("trial %d step %d (mc=%v k=%d): retained[%d]=%v fresh=%v (gen %d, stats %+v)",
						trial, step, useMC, k, y, got[y], want[y], e.PinGeneration(), rt.Stats())
				}
				if gotPar[y] != want[y] {
					t.Fatalf("trial %d step %d (mc=%v k=%d workers=%d): parallel retained[%d]=%v fresh=%v (sweep %+v)",
						trial, step, useMC, k, workers, y, gotPar[y], want[y], rtPar.SweepStats())
				}
			}
			if gotH, wantH := rt.Entropy(), Entropy(want); gotH != wantH {
				t.Fatalf("trial %d step %d: retained entropy %v fresh %v", trial, step, gotH, wantH)
			}
			if gotH, wantH := rtPar.Entropy(), Entropy(want); gotH != wantH {
				t.Fatalf("trial %d step %d (workers=%d): parallel retained entropy %v fresh %v", trial, step, workers, gotH, wantH)
			}
			wantRel := e.RelevantRows(k)
			for i, rel := range rt.Relevant() {
				if rel != wantRel[i] {
					t.Fatalf("trial %d step %d: retained relevance[%d]=%v fresh=%v", trial, step, i, rel, wantRel[i])
				}
			}
			for i, rel := range rtPar.Relevant() {
				if rel != wantRel[i] {
					t.Fatalf("trial %d step %d: parallel retained relevance[%d]=%v fresh=%v", trial, step, i, rel, wantRel[i])
				}
			}
		}
	}
	if sequences < 100 {
		t.Fatalf("only %d pin sequences exercised; the contract demands ≥ 100", sequences)
	}
}

// TestRetainedReusesWork checks the tiers actually fire: repeated queries at
// one generation are memo hits, a fresh pin triggers at most a windowed
// delta, and the scanned-candidate counter stays well under the full-sweep
// cost for a cleaning-style pin sequence.
func TestRetainedReusesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	inst := randomInstance(rng, 60, 4, 2)
	e := NewEngineFromInstance(inst)
	rt, err := NewRetained(e, 3, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt.Counts()
	if s := rt.Stats(); s.FullScans != 1 {
		t.Fatalf("first query: %+v", s)
	}
	rt.Counts()
	rt.Counts()
	if s := rt.Stats(); s.MemoHits != 2 {
		t.Fatalf("repeat queries were not memo hits: %+v", s)
	}
	total := int64(0)
	for i := 0; i < inst.N(); i++ {
		total += int64(inst.M(i))
	}
	// Pin rows one at a time, querying after each pin, as a cleaning session
	// interleaved with batch queries would.
	perm := rng.Perm(inst.N())
	pins := 0
	for _, row := range perm[:30] {
		e.SetPin(row, rng.Intn(inst.M(row)))
		rt.Counts()
		pins++
	}
	s := rt.Stats()
	if s.FullScans != 1 {
		t.Fatalf("pins forced full rescans: %+v", s)
	}
	fullCost := int64(pins) * total
	if s.CandidatesScanned >= fullCost {
		t.Fatalf("delta replay scanned %d candidates, full sweeps would be %d: %+v",
			s.CandidatesScanned, fullCost, s)
	}
}

// TestRetainedPinLogOverflow forces the engine's bounded pin log to slide
// past the memo's generation and checks the fallback full rescan still
// answers exactly.
func TestRetainedPinLogOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(rng, 8, 3, 2)
	e := NewEngineFromInstance(inst)
	rt, err := NewRetained(e, 2, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc := e.MustScratch(2)
	rt.Counts()
	// Far more mutations than maxPinLog, ending at a random pin state.
	for i := 0; i < maxPinLog+50; i++ {
		row := rng.Intn(inst.N())
		if rng.Intn(3) == 0 {
			e.SetPin(row, -1)
		} else {
			e.SetPin(row, rng.Intn(inst.M(row)))
		}
	}
	if _, ok := e.PinsSince(1); ok {
		t.Fatal("pin log should have slid past generation 1")
	}
	got := rt.Counts()
	want := e.Counts(sc, -1, -1)
	for y := range want {
		if got[y] != want[y] {
			t.Fatalf("after log overflow: retained %v fresh %v", got, want)
		}
	}
	if s := rt.Stats(); s.FullScans != 2 {
		t.Fatalf("overflow should force exactly one extra full rescan: %+v", s)
	}
}

// TestRetainedWithScratchPool runs the mode against a shared scratch pool
// (the serving configuration) and cross-checks a pooled and a private-scratch
// instance stay bitwise in lockstep.
func TestRetainedWithScratchPool(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst := randomInstance(rng, 12, 3, 3)
	e := NewEngineFromInstance(inst)
	pool, err := NewScratchPool(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := NewRetained(e, 2, false, pool)
	if err != nil {
		t.Fatal(err)
	}
	private, err := NewRetained(e, 2, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 8; step++ {
		if step > 0 {
			applyRandomPinOp(rng, e)
		}
		a := pooled.Counts()
		b := private.Counts()
		for y := range a {
			if a[y] != b[y] {
				t.Fatalf("step %d: pooled %v private %v", step, a, b)
			}
		}
	}
	if _, err := NewRetained(e, 3, false, pool); err == nil {
		t.Fatal("mismatched pool K must be rejected")
	}
}
