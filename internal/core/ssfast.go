package core

import (
	"fmt"
	"math"
	"math/big"
)

// SSFastCounts answers Q2 for K = 1 with the incremental SortScan of §3.1.2
// in O(NM log NM): candidates are scanned in ascending similarity while the
// boundary mass Π_{n≠i} α[n]/M_n is maintained in log space (log space keeps
// the scan O(1) per candidate and immune to underflow; genuinely negligible
// masses round to zero, which is what they contribute to the sum anyway).
//
// The returned slice is normalized: out[y] = Q2(D,t,y) / |I_D|. Works for
// any number of labels (for K = 1 the label support equals the boundary
// count of the scanned candidate, Example 4 in the paper).
func SSFastCounts(inst *Instance) []float64 {
	n := inst.N()
	out := make([]float64, inst.NumLabels)
	order := inst.sortedCandidates()
	alpha := make([]int, n)
	zeroCount := n
	logP := 0.0 // Σ_{α[n]>0} log(α[n]/M_n)
	for _, ref := range order {
		i := int(ref.row)
		oldA := alpha[i]
		newA := oldA + 1
		alpha[i] = newA
		if oldA == 0 {
			zeroCount--
			logP += math.Log(float64(newA) / float64(inst.M(i)))
		} else {
			logP += math.Log(float64(newA)) - math.Log(float64(oldA))
		}
		if zeroCount > 0 {
			continue // some row has no candidate ≤ the boundary: empty boundary set
		}
		// Normalized boundary mass of (i,j):
		//   (1/M_i)·Π_{n≠i} α[n]/M_n = exp(logP)/α[i].
		out[inst.Labels[i]] += math.Exp(logP) / float64(newA)
	}
	return out
}

// SSFastExactCounts is SSFastCounts with exact big-int boundary counts,
// maintained incrementally by multiplying/dividing one factor per step.
func SSFastExactCounts(inst *Instance) *ExactCounts {
	n := inst.N()
	counts := newExactCounts(inst.NumLabels)
	counts.Total.SetInt64(1)
	for i := 0; i < n; i++ {
		counts.Total.Mul(counts.Total, big.NewInt(int64(inst.M(i))))
	}
	order := inst.sortedCandidates()
	alpha := make([]int, n)
	zeroCount := n
	prod := big.NewInt(1) // Π_{α[n]>0} α[n]
	tmp := new(big.Int)
	for _, ref := range order {
		i := int(ref.row)
		oldA := alpha[i]
		newA := oldA + 1
		alpha[i] = newA
		if oldA == 0 {
			zeroCount--
		} else {
			prod.Quo(prod, tmp.SetInt64(int64(oldA)))
		}
		prod.Mul(prod, tmp.SetInt64(int64(newA)))
		if zeroCount > 0 {
			continue
		}
		// Boundary count of (i,j): Π_{n≠i} α[n] = prod / α[i].
		tmp.SetInt64(int64(newA))
		boundary := new(big.Int).Quo(prod, tmp)
		y := inst.Labels[i]
		counts.PerLabel[y].Add(counts.PerLabel[y], boundary)
	}
	return counts
}

// SSFastCheck answers Q1 for K = 1 from the normalized fast counts.
func SSFastCheck(inst *Instance) []bool {
	return CheckFromNormalized(SSFastCounts(inst))
}

// validateK rejects out-of-range K for an instance.
func validateK(inst *Instance, k int) error {
	if k <= 0 || k > inst.N() {
		return fmt.Errorf("core: K=%d out of range for N=%d", k, inst.N())
	}
	return nil
}
