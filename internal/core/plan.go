package core

import "slices"

// This file implements the sweep-plan cache: the integer-only α prefix pass
// of planSpans extracted into a first-class, engine-resident SweepPlan that
// repeated sweeps reuse instead of re-walking the prefix. A plan is keyed by
// (K, window, span count) and stamped with the pin generation its snapshots
// were taken at; the engine's bounded pin log (PinsSince) revalidates it:
//
//   - unchanged generation → served verbatim (hit);
//   - every pin since touched rows whose candidate spans lie beyond the
//     window → valid verbatim, re-stamped (hit);
//   - every pin since touched rows whose spans start after the emit
//     transition → the transition and the span boundaries are provably
//     unchanged, so only the α snapshots past the first changed position are
//     replayed forward from the last still-valid snapshot (partial);
//   - anything else (a changed row reaching the pre-emit prefix, a ResetPins,
//     a log that aged out) → full re-plan (miss).
//
// Soundness of the repair tiers: α entering any position p is determined by
// the advance decisions at positions < p, and the decision at position q
// involves only the row owning q's candidate, whose span starts at or before
// q. So if every changed row's span starts at or after minFirst, the whole
// trajectory — α, the zero-row count, and the emit transition it selects —
// is unchanged below minFirst. TestPlanCacheMatchesPlanSpans pins the
// resulting plans field-for-field against uncached planSpans across random
// pin/unpin/reset sequences.

// planKey identifies one cached sweep plan: the query K, the inclusive scan
// window, and the span count the plan was sized for.
type planKey struct {
	k, lo, hi, numSpans int
}

// SweepPlan is the reusable output of one planSpans prefix pass: the emit
// transition and the planned spans with their α snapshots, valid for pin
// generation gen. Spans are read-only to scan workers (runSpans copies each
// snapshot into a Scratch); only refreshPlanLocked mutates them, under the
// engine's plan lock and never concurrently with queries.
type SweepPlan struct {
	key       planKey
	gen       uint64 // pin generation the snapshots are valid for
	emitStart int
	spans     []sweepSpan
}

// PlanStats counts plan-cache outcomes. All fields are monotonically
// increasing totals.
type PlanStats struct {
	// Hits counts plans served with their snapshots intact (unchanged
	// generation, or pins provably outside the window).
	Hits int64 `json:"hits"`
	// Partials counts plans served after a snapshot-only repair (pins past
	// the emit transition; boundaries reused, snapshots replayed forward).
	Partials int64 `json:"partials"`
	// Misses counts full re-plans (first use, pins reaching the pre-emit
	// prefix, ResetPins, or an aged-out pin log).
	Misses int64 `json:"misses"`
}

// Add accumulates other into s.
func (s *PlanStats) Add(other PlanStats) {
	s.Hits += other.Hits
	s.Partials += other.Partials
	s.Misses += other.Misses
}

// planOutcome classifies a cache revalidation.
type planOutcome int

const (
	planStale planOutcome = iota
	planHit
	planPartial
)

// advanceAlpha applies scan position pos to an α trajectory under the
// engine's current pins, returning the updated zero-row count — the single
// step every plan pass (planSpans, plan repair, sub-slicing) shares.
func (e *Engine) advanceAlpha(pos int, alpha []int32, zeroRows int) int {
	ref := e.order[pos]
	i := int(ref.row)
	if ch := int(e.pins[i]); ch >= 0 && int(ref.cand) != ch {
		return zeroRows
	}
	alpha[i]++
	if alpha[i] == 1 {
		zeroRows--
	}
	return zeroRows
}

// sortedPlanKeys collects the plan cache's keys in a deterministic order —
// the sanctioned sorted-keys iteration for cache maps read in deterministic
// scope (cpvet maporder): callers range over the returned slice, never over
// the map itself.
func sortedPlanKeys(m map[planKey]*SweepPlan) []planKey {
	keys := make([]planKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b planKey) int {
		switch {
		case a.k != b.k:
			return a.k - b.k
		case a.lo != b.lo:
			return a.lo - b.lo
		case a.hi != b.hi:
			return a.hi - b.hi
		default:
			return a.numSpans - b.numSpans
		}
	})
	return keys
}

// planFor returns the span plan for scan window [lo, hi] with numSpans spans
// under the engine's current pins, from the plan cache when its snapshots are
// still (or repairably) valid. The returned plan is at the current pin
// generation; callers treat its spans as read-only. Plan state feeds replayed
// scans, so the body is deterministic scope: iteration over the cache map
// goes through sortedPlanKeys.
//
//cpvet:deterministic
func (e *Engine) planFor(k, lo, hi, numSpans int) *SweepPlan {
	key := planKey{k: k, lo: lo, hi: hi, numSpans: numSpans}
	gen := e.pinGen // pin mutations are never concurrent with queries
	e.planMu.Lock()
	defer e.planMu.Unlock()
	if p, ok := e.plans[key]; ok {
		switch e.refreshPlanLocked(p, gen) {
		case planHit:
			e.planStats.Hits++
			return p
		case planPartial:
			e.planStats.Partials++
			return p
		}
	}
	// Full re-plan. A sibling plan over the same window already at this
	// generation knows the emit transition — numSpans does not affect it —
	// so thread it through instead of re-deriving it position by position.
	emitStart := -1
	for _, sk := range sortedPlanKeys(e.plans) {
		if sk.k == k && sk.lo == lo && sk.hi == hi && e.plans[sk].gen == gen {
			emitStart = e.plans[sk].emitStart
			break
		}
	}
	es, spans := e.planSpans(k, lo, hi, numSpans, emitStart)
	p := &SweepPlan{key: key, gen: gen, emitStart: es, spans: spans}
	if e.plans == nil {
		e.plans = make(map[planKey]*SweepPlan)
	}
	e.plans[key] = p
	e.planStats.Misses++
	return p
}

// refreshPlanLocked revalidates a cached plan against the current pin
// generation through the engine's pin log, repairing snapshots in place when
// the boundaries are provably unchanged — it rewrites the α snapshots that
// replayed scans seed from, hence deterministic scope. Caller holds e.planMu.
//
//cpvet:deterministic
func (e *Engine) refreshPlanLocked(p *SweepPlan, gen uint64) planOutcome {
	if p.gen == gen {
		return planHit
	}
	events, ok := e.PinsSince(p.gen)
	if !ok {
		return planStale // aged out of the bounded pin log
	}
	minFirst := len(e.order)
	for _, ev := range events {
		if ev.Row < 0 {
			return planStale // ResetPins: every row may have changed
		}
		if f := e.firstPos[ev.Row]; f < minFirst {
			minFirst = f
		}
	}
	if minFirst > p.key.hi {
		// Every changed row's candidate span lies beyond the window: no
		// advance decision at a position ≤ hi moved, so the plan is valid
		// verbatim under the new generation.
		p.gen = gen
		return planHit
	}
	if len(p.spans) == 0 || minFirst <= p.emitStart {
		// A changed row reaches into the pre-emit prefix: the transition
		// itself may have moved. Re-plan from scratch.
		return planStale
	}
	// Partial repair: emitStart and therefore every span boundary are
	// unchanged (the trajectory below minFirst is untouched, and with it the
	// zero-row count entering every position ≤ emitStart). Only the α
	// snapshots at span starts beyond minFirst can differ; replay them
	// forward from the last still-valid snapshot instead of from position 0.
	s0 := 0
	for s0+1 < len(p.spans) && p.spans[s0+1].lo <= minFirst {
		s0++
	}
	alpha := slices.Clone(p.spans[s0].alpha)
	zeroRows := p.spans[s0].zeroRows
	for t := s0 + 1; t < len(p.spans); t++ {
		for pos := p.spans[t-1].lo; pos < p.spans[t].lo; pos++ {
			zeroRows = e.advanceAlpha(pos, alpha, zeroRows)
		}
		copy(p.spans[t].alpha, alpha)
		p.spans[t].zeroRows = zeroRows
	}
	p.gen = gen
	return planPartial
}

// subSlicePlan derives the plan for sub-window [lo, hi] with numSpans spans
// from a full-window plan at the current pin generation — field-for-field
// what planSpans(k, lo, hi, numSpans, -1) would return, but seeded from the
// cached α snapshots: each windowed span start replays from the nearest
// snapshot at or below it instead of from position 0, so a deep window costs
// O(full span length) integer work instead of O(N). This is what lets
// Retained's windowed delta replays split hot windows below the full sweep's
// span floor: the plan is nearly free, only the per-span tree rebuild
// remains. Produces the α snapshots replayed scans seed from — deterministic
// scope.
//
//cpvet:deterministic
func (e *Engine) subSlicePlan(full *SweepPlan, lo, hi, numSpans int) (emitStart int, spans []sweepSpan) {
	// The zero-rows transition is global and monotone, so the windowed
	// transition is the full plan's clamped into the window — exactly where
	// planSpans' search would stop.
	emitStart = full.emitStart
	if emitStart < lo {
		emitStart = lo
	}
	if emitStart > hi {
		return hi + 1, nil
	}
	window := hi - emitStart + 1
	if numSpans > window {
		numSpans = window
	}
	if numSpans < 1 {
		numSpans = 1
	}
	spanLen := (window + numSpans - 1) / numSpans

	// Seed the replay from the latest full-plan snapshot at or below the
	// first windowed span start; full.spans[0].lo == full.emitStart ≤
	// emitStart whenever the window emits at all, so a seed always exists.
	j := 0
	for j+1 < len(full.spans) && full.spans[j+1].lo <= emitStart {
		j++
	}
	alpha := slices.Clone(full.spans[j].alpha)
	zeroRows := full.spans[j].zeroRows
	cur := full.spans[j].lo
	for pos := emitStart; pos <= hi; pos += spanLen {
		// Jump ahead to any later snapshot between the replay point and this
		// span start rather than replaying across it.
		for j+1 < len(full.spans) && full.spans[j+1].lo <= pos {
			j++
			if full.spans[j].lo > cur {
				copy(alpha, full.spans[j].alpha)
				zeroRows = full.spans[j].zeroRows
				cur = full.spans[j].lo
			}
		}
		for ; cur < pos; cur++ {
			zeroRows = e.advanceAlpha(cur, alpha, zeroRows)
		}
		end := pos + spanLen - 1
		if end > hi {
			end = hi
		}
		spans = append(spans, sweepSpan{
			lo:       pos,
			hi:       end,
			zeroRows: zeroRows,
			alpha:    slices.Clone(alpha),
		})
	}
	return emitStart, spans
}

// PlanStats snapshots the engine's plan-cache counters.
func (e *Engine) PlanStats() PlanStats {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	return e.planStats
}

// planBytes sums the plan cache's snapshot footprint for byte-budgeted
// caches. Iteration goes through sortedPlanKeys (cpvet maporder).
func (e *Engine) planBytes() int64 {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	var b int64
	for _, k := range sortedPlanKeys(e.plans) {
		p := e.plans[k]
		for i := range p.spans {
			b += int64(cap(p.spans[i].alpha))*4 + 32
		}
		b += 64
	}
	return b
}
