package core

import (
	"math/rand"
	"testing"
)

// comparePlan fails unless (gotES, got) and (wantES, want) are
// field-for-field identical plans: same transition, same span boundaries,
// same zero-row counts, same α snapshots.
func comparePlan(t *testing.T, label string, gotES int, got []sweepSpan, wantES int, want []sweepSpan) {
	t.Helper()
	if gotES != wantES {
		t.Fatalf("%s: emitStart=%d want %d", label, gotES, wantES)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d spans want %d", label, len(got), len(want))
	}
	for s := range want {
		g, w := got[s], want[s]
		if g.lo != w.lo || g.hi != w.hi || g.zeroRows != w.zeroRows {
			t.Fatalf("%s: span %d = [%d,%d] zr=%d want [%d,%d] zr=%d",
				label, s, g.lo, g.hi, g.zeroRows, w.lo, w.hi, w.zeroRows)
		}
		for i := range w.alpha {
			if g.alpha[i] != w.alpha[i] {
				t.Fatalf("%s: span %d alpha[%d]=%d want %d", label, s, i, g.alpha[i], w.alpha[i])
			}
		}
	}
}

// TestPlanCacheMatchesPlanSpans is the exactness property of the plan cache:
// across random pin/unpin/reset sequences, every planFor answer — whether it
// came back verbatim, repaired, or rebuilt — must match an uncached planSpans
// run under the current pins field-for-field, and must carry the current pin
// generation (a stale plan is never served across a generation bump).
func TestPlanCacheMatchesPlanSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	gens := []func(*rand.Rand, int, int, int) *Instance{randomInstance, tiedInstance, nearZeroInstance}
	var total PlanStats
	for trial := 0; trial < 40; trial++ {
		inst := gens[trial%len(gens)](rng, 8+rng.Intn(16), 4, 2+rng.Intn(2))
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		n := len(e.order)
		// A mix of full-window and sub-window keys: sub-windows whose hi
		// lands below a pinned row's span exercise the verbatim-revalidation
		// tier, full windows the repair/rebuild tiers.
		keys := []planKey{
			{k: k, lo: 0, hi: n - 1, numSpans: 4},
			{k: k, lo: 0, hi: n - 1, numSpans: 7},
			{k: k, lo: 0, hi: n / 2, numSpans: 3},
			{k: k, lo: n / 4, hi: n - 1, numSpans: 2},
		}
		for step := 0; step < 8; step++ {
			if step > 0 {
				applyRandomPinOp(rng, e)
			}
			for _, key := range keys {
				p := e.planFor(key.k, key.lo, key.hi, key.numSpans)
				if p.gen != e.PinGeneration() {
					t.Fatalf("trial %d step %d: plan served at gen %d, engine at %d",
						trial, step, p.gen, e.PinGeneration())
				}
				wantES, want := e.planSpans(key.k, key.lo, key.hi, key.numSpans, -1)
				comparePlan(t, "planFor vs planSpans", p.emitStart, p.spans, wantES, want)
			}
		}
		st := e.PlanStats()
		if st.Hits+st.Partials+st.Misses != int64(len(keys)*8) {
			t.Fatalf("trial %d: stats %+v do not sum to %d lookups", trial, st, len(keys)*8)
		}
		total.Add(st)
	}
	// The random walk must actually have exercised every tier; a vanishing
	// count means a branch went dead, not that the property got easier.
	if total.Hits == 0 || total.Partials == 0 || total.Misses == 0 {
		t.Fatalf("tiers not all exercised: %+v", total)
	}
}

// TestPlanCacheRepeatAndReset pins the two ends of the invalidation
// spectrum: an unchanged generation serves the identical plan object as a
// pure hit, and a ResetPins always forces a full re-plan.
func TestPlanCacheRepeatAndReset(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	inst := randomInstance(rng, 30, 4, 2)
	e := NewEngineFromInstance(inst)
	n := len(e.order)

	p1 := e.planFor(2, 0, n-1, 4)
	p2 := e.planFor(2, 0, n-1, 4)
	if p1 != p2 {
		t.Fatal("repeat lookup at the same generation returned a different plan object")
	}
	if st := e.PlanStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("expected 1 hit + 1 miss, got %+v", st)
	}

	e.ResetPins()
	p3 := e.planFor(2, 0, n-1, 4)
	if st := e.PlanStats(); st.Misses != 2 {
		t.Fatalf("ResetPins must force a re-plan, got %+v", st)
	}
	wantES, want := e.planSpans(2, 0, n-1, 4, -1)
	comparePlan(t, "post-reset", p3.emitStart, p3.spans, wantES, want)

	// Overflow the bounded pin log between lookups: the plan must rebuild
	// (miss), never serve stale snapshots.
	row := 0
	for i := 0; i < maxPinLog+8; i++ {
		e.SetPin(row, 0)
		e.SetPin(row, -1)
	}
	p4 := e.planFor(2, 0, n-1, 4)
	wantES, want = e.planSpans(2, 0, n-1, 4, -1)
	comparePlan(t, "post-overflow", p4.emitStart, p4.spans, wantES, want)
	if p4.gen != e.PinGeneration() {
		t.Fatalf("post-overflow plan at gen %d, engine at %d", p4.gen, e.PinGeneration())
	}
}

// TestPlanSpansKnownEmitStart checks the emitStart threading satellite: a
// planSpans run that is handed the transition from a sibling plan at the
// same generation must produce the identical plan without re-deriving it.
func TestPlanSpansKnownEmitStart(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 10+rng.Intn(20), 4, 2)
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		for step := 0; step < 3; step++ {
			if step > 0 {
				applyRandomPinOp(rng, e)
			}
			n := len(e.order)
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo)
			numSpans := 1 + rng.Intn(5)
			wantES, want := e.planSpans(k, lo, hi, numSpans, -1)
			gotES, got := e.planSpans(k, lo, hi, numSpans, wantES)
			comparePlan(t, "knownEmitStart", gotES, got, wantES, want)
		}
	}
}

// TestSubSlicePlanMatchesPlanSpans is the exactness property of plan
// sub-slicing: for any sub-window and span count, slicing a cached
// full-window plan must equal a fresh planSpans of the window field for
// field — the guarantee that lets Retained seed windowed delta replays from
// cached snapshots.
func TestSubSlicePlanMatchesPlanSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	gens := []func(*rand.Rand, int, int, int) *Instance{randomInstance, tiedInstance, nearZeroInstance}
	for trial := 0; trial < 40; trial++ {
		inst := gens[trial%len(gens)](rng, 8+rng.Intn(20), 4, 2+rng.Intn(2))
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		for step := 0; step < 4; step++ {
			if step > 0 {
				applyRandomPinOp(rng, e)
			}
			n := len(e.order)
			for _, fullSpans := range []int{2, 5, 9} {
				full := e.planFor(k, 0, n-1, fullSpans)
				for w := 0; w < 6; w++ {
					lo := rng.Intn(n)
					hi := lo + rng.Intn(n-lo)
					numSpans := 1 + rng.Intn(6)
					gotES, got := e.subSlicePlan(full, lo, hi, numSpans)
					wantES, want := e.planSpans(k, lo, hi, numSpans, -1)
					comparePlan(t, "subSlice", gotES, got, wantES, want)
				}
			}
		}
	}
}
