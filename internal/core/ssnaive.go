package core

import (
	"fmt"
	"math/big"
)

// compositions returns every vector of `parts` non-negative integers summing
// to total — the paper's valid label-tally vectors Γ (|Γ| = C(total+parts-1,
// total)).
func compositions(total, parts int) [][]int {
	var out [][]int
	cur := make([]int, parts)
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if pos == parts-1 {
			cur[pos] = left
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 0; v <= left; v++ {
			cur[pos] = v
			rec(pos+1, left-v)
		}
	}
	if parts == 0 {
		return nil
	}
	rec(0, total)
	return out
}

// SSExactCounts answers Q2 with the SortScan algorithm using exact big-int
// arithmetic and per-candidate DP recomputation (Algorithm 1 without the
// incremental optimizations). O((NM)²·K·|Y|) big-int operations — intended
// as the exact reference for instances too large to brute force.
func SSExactCounts(inst *Instance, k int) (*ExactCounts, error) {
	n := inst.N()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("core: K=%d out of range for N=%d", k, n)
	}
	counts := newExactCounts(inst.NumLabels)
	counts.Total.SetInt64(1)
	for i := 0; i < n; i++ {
		counts.Total.Mul(counts.Total, big.NewInt(int64(inst.M(i))))
	}

	tallies := compositions(k, inst.NumLabels)
	winners := make([]int, len(tallies))
	for ti, g := range tallies {
		winners[ti] = argmaxTally(g)
	}

	alpha := make([]int, n)
	perLabel := make([][]*big.Int, inst.NumLabels)
	support := new(big.Int)
	for i := 0; i < n; i++ {
		for j := 0; j < inst.M(i); j++ {
			// Similarity tally α_{i,j}[n]: candidates of row n that are not
			// more similar than (i,j) under the total order.
			for nn := 0; nn < n; nn++ {
				a := 0
				for m := 0; m < inst.M(nn); m++ {
					if !inst.MoreSimilar(nn, m, i, j) {
						a++
					}
				}
				alpha[nn] = a
			}
			// Per-label boundary-set DP C^{i,j}_l(c, N).
			for l := 0; l < inst.NumLabels; l++ {
				perLabel[l] = ssExactDP(inst, alpha, i, l, k)
			}
			// Aggregate supports over all valid label tallies.
			for ti, g := range tallies {
				support.SetInt64(1)
				zero := false
				for l, c := range g {
					if perLabel[l][c].Sign() == 0 {
						zero = true
						break
					}
					support.Mul(support, perLabel[l][c])
				}
				if zero {
					continue
				}
				w := winners[ti]
				counts.PerLabel[w].Add(counts.PerLabel[w], support)
			}
		}
	}
	return counts, nil
}

// ssExactDP computes C^{i,j}_l(c, N) for c = 0..k: the number of ways rows
// with label l can contribute exactly c members of the top-K set, given that
// candidate (i, ·) is the boundary (K-th most similar) element. alpha must
// hold the similarity tally for the boundary candidate.
func ssExactDP(inst *Instance, alpha []int, boundaryRow, l, k int) []*big.Int {
	c := make([]*big.Int, k+1)
	for x := range c {
		c[x] = new(big.Int)
	}
	c[0].SetInt64(1)
	tmp := new(big.Int)
	for nn := 0; nn < inst.N(); nn++ {
		if nn == boundaryRow {
			if inst.Labels[nn] != l {
				continue
			}
			// The boundary row is always in the top-K: consume one slot.
			for x := k; x >= 1; x-- {
				c[x].Set(c[x-1])
			}
			c[0].SetInt64(0)
			continue
		}
		if inst.Labels[nn] != l {
			continue
		}
		in := int64(inst.M(nn) - alpha[nn]) // candidates more similar than the boundary
		out := int64(alpha[nn])             // candidates not more similar
		for x := k; x >= 0; x-- {
			// c[x] = out·c[x] + in·c[x−1]
			c[x].Mul(c[x], tmp.SetInt64(out))
			if x > 0 && in != 0 {
				c[x].Add(c[x], tmp.SetInt64(in).Mul(tmp, c[x-1]))
			}
		}
	}
	return c
}

// SSExactCheck answers Q1 via SSExactCounts.
func SSExactCheck(inst *Instance, k int) ([]bool, error) {
	counts, err := SSExactCounts(inst, k)
	if err != nil {
		return nil, err
	}
	return CheckFromExact(counts), nil
}
