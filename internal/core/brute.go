package core

import (
	"fmt"
	"math/big"
)

// MaxBruteWorlds caps brute-force enumeration; BruteForceCounts refuses
// larger instances.
const MaxBruteWorlds = 5_000_000

// BruteForceCounts answers Q2 by enumerating every possible world, training
// the K-NN classifier in each and tallying its prediction — the O(M^N)
// reference implementation from §2.1 ("Computational Challenge"). It is the
// ground truth all polynomial algorithms are tested against.
func BruteForceCounts(inst *Instance, k int) (*ExactCounts, error) {
	n := inst.N()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("core: K=%d out of range for N=%d", k, n)
	}
	totalWorlds := big.NewInt(1)
	for i := 0; i < n; i++ {
		totalWorlds.Mul(totalWorlds, big.NewInt(int64(inst.M(i))))
	}
	if totalWorlds.Cmp(big.NewInt(MaxBruteWorlds)) > 0 {
		return nil, fmt.Errorf("core: %s possible worlds exceed brute-force limit %d", totalWorlds, MaxBruteWorlds)
	}

	counts := newExactCounts(inst.NumLabels)
	counts.Total.Set(totalWorlds)
	choice := make([]int, n)
	one := big.NewInt(1)
	for {
		y := classifyWorld(inst, choice, k)
		counts.PerLabel[y].Add(counts.PerLabel[y], one)
		// Odometer increment, last row fastest.
		i := n - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < inst.M(i) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return counts, nil
}

// classifyWorld runs the K-NN classifier in the possible world selected by
// choice, using the shared total order and vote tie-break.
func classifyWorld(inst *Instance, choice []int, k int) int {
	n := inst.N()
	// Selection of the K most similar rows: repeated linear scans — O(NK),
	// fine for brute-force-sized inputs and trivially correct.
	inTop := make([]bool, n)
	tally := make([]int, inst.NumLabels)
	for kk := 0; kk < k; kk++ {
		best := -1
		for i := 0; i < n; i++ {
			if inTop[i] {
				continue
			}
			if best == -1 || inst.MoreSimilar(i, choice[i], best, choice[best]) {
				best = i
			}
		}
		inTop[best] = true
		tally[inst.Labels[best]]++
	}
	return argmaxTally(tally)
}

// argmaxTally returns the winning label of a vote tally (smallest label on
// ties) — must match knn.ArgmaxTally.
func argmaxTally(tally []int) int {
	best, bestCount := 0, -1
	for l, c := range tally {
		if c > bestCount {
			best, bestCount = l, c
		}
	}
	return best
}

// BruteForceCheck answers Q1 by brute force.
func BruteForceCheck(inst *Instance, k int) ([]bool, error) {
	counts, err := BruteForceCounts(inst, k)
	if err != nil {
		return nil, err
	}
	return CheckFromExact(counts), nil
}
