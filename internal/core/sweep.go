package core

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements the span-parallel SS-DC sweep: the boundary-candidate
// scan of Engine.Counts / Engine.CountsMC split into contiguous spans that
// run on worker goroutines, with the answer re-summed in original scan order
// so it is bit-for-bit identical to the sequential sweep.
//
// Why this is exact: the scan's only cross-position state is the α vector
// (candidates of each row already passed) and the segment trees derived from
// it. A cheap sequential prefix pass — pure integer work, no tree updates —
// replays the α trajectory and snapshots it at each span start; a span worker
// bulk-rebuilds its trees from the snapshot, which the segment tree's purity
// invariant (internal/segtree) guarantees reproduces exactly the node values
// a sequential scan would carry into that position. Each position's support
// contributions are captured as an ordered term stream (recordInto/recordMC)
// instead of being added into a shared accumulator, and the reducer re-adds
// every term in scan order — the same operands in the same sequence as the
// sequential sweep, hence the same floats. TestSweepCountsMatchesSequential
// and the extended TestRetainedMatchesFreshSSDC harness pin the property
// across worker counts, accumulators, ties, and near-zero weights.

// DefaultMinSpanPositions is the smallest span the planner will create when
// SweepConfig.MinSpanPositions is zero (spans also never shrink below N/4 in
// that case — each span pays an O(N·K²) tree rebuild, so spans much shorter
// than N would spend more time rebuilding than scanning).
const DefaultMinSpanPositions = 256

// spansPerWorker oversubscribes spans relative to workers so a worker that
// drew a cheap span can steal another instead of idling at the barrier.
const spansPerWorker = 2

// SweepConfig tunes the span-parallel sweep. The zero value means fully
// sequential.
type SweepConfig struct {
	// Workers is the number of span workers; values ≤ 1 select the
	// sequential scan.
	Workers int
	// MinSpanPositions floors the span length. 0 applies
	// DefaultMinSpanPositions (and an N/4 floor); tests force tiny spans
	// with 1 to exercise multi-span plans on small instances.
	MinSpanPositions int
}

// SweepStats counts span-parallel sweep executions. All fields are
// monotonically increasing totals.
type SweepStats struct {
	// ParallelSweeps counts scans that actually ran the span-parallel path
	// (plans with ≥ 2 spans and ≥ 2 workers).
	ParallelSweeps int64 `json:"parallel_sweeps"`
	// Spans counts spans executed across all parallel sweeps.
	Spans int64 `json:"spans"`
	// Steals counts spans executed by a worker other than the one the plan's
	// round-robin assignment would have given them to — work that migrated to
	// keep every worker busy.
	Steals int64 `json:"steals"`
}

// Add accumulates other into s.
func (s *SweepStats) Add(other SweepStats) {
	s.ParallelSweeps += other.ParallelSweeps
	s.Spans += other.Spans
	s.Steals += other.Steals
}

// spanFloor resolves the effective minimum span length for an N-row engine.
func (cfg SweepConfig) spanFloor(n int) int {
	if cfg.MinSpanPositions > 0 {
		return cfg.MinSpanPositions
	}
	floor := DefaultMinSpanPositions
	if nf := n / 4; nf > floor {
		floor = nf
	}
	return floor
}

// planSize sizes a plan for a window of `window` scan positions: the worker
// count actually usable and the span count. numSpans < 2 means the window is
// too small to be worth splitting — run sequentially.
func (cfg SweepConfig) planSize(n, window int) (workers, numSpans int) {
	workers = cfg.Workers
	if workers <= 1 {
		return workers, 1
	}
	numSpans = workers * spansPerWorker
	if maxSpans := window / cfg.spanFloor(n); numSpans > maxSpans {
		numSpans = maxSpans
	}
	return workers, numSpans
}

// deltaPlanSize sizes the span plan for a windowed delta replay that
// sub-slices a cached full-window plan. Planning such a window is nearly free
// — a snapshot seek plus a short replay instead of an O(N) prefix walk — so
// the span floor drops to a quarter of the full-sweep default (the remaining
// per-span cost is the O(N·K²) tree rebuild), letting hot windows well below
// the full sweep's floor still fan out across workers. An explicit
// MinSpanPositions is honored unchanged.
func (cfg SweepConfig) deltaPlanSize(window int) (workers, numSpans int) {
	workers = cfg.Workers
	if workers <= 1 {
		return workers, 1
	}
	floor := cfg.MinSpanPositions
	if floor <= 0 {
		floor = DefaultMinSpanPositions / 4
	}
	numSpans = workers * spansPerWorker
	if maxSpans := window / floor; numSpans > maxSpans {
		numSpans = maxSpans
	}
	return workers, numSpans
}

// sweepSpan is one contiguous run of scan positions plus the α state a
// sequential scan would carry into its first position.
type sweepSpan struct {
	lo, hi   int     // inclusive scan-position range
	zeroRows int     // rows with α = 0 entering lo
	alpha    []int32 // α snapshot entering lo (length N)
}

// planSpans runs the sequential prefix pass for a scan of window [lo, hi]
// under the engine's current pins: it replays the α trajectory from position
// 0, finds the zero-rows transition — the first position in the window whose
// boundary support is not provably zero — and splits the emitting tail
// [emitStart, hi] into up to numSpans spans, snapshotting α at each span
// start. Positions in [lo, emitStart) provably contribute no terms (while
// more than K−1 rows still have all their candidates ahead of the boundary,
// the boundary can never be in the top-K); callers only need to clear any
// retained terms there. Pure integer work: O(hi) α updates plus
// O(numSpans·N) snapshot copies, no tree operations.
//
// knownEmitStart ≥ 0 asserts the transition is already known — a sibling
// plan over the same window at the same pin generation derived it, and the
// span count does not affect it — so the search is skipped and the prefix is
// replayed straight to it. Pass −1 to derive it here.
func (e *Engine) planSpans(k, lo, hi, numSpans, knownEmitStart int) (emitStart int, spans []sweepSpan) {
	alpha := make([]int32, e.N())
	zeroRows := e.N()
	for pos := 0; pos < lo; pos++ {
		zeroRows = e.advanceAlpha(pos, alpha, zeroRows)
	}
	if knownEmitStart >= 0 {
		for pos := lo; pos < knownEmitStart; pos++ {
			zeroRows = e.advanceAlpha(pos, alpha, zeroRows)
		}
		emitStart = knownEmitStart
	} else {
		// Find the transition without consuming it: a position emits iff after
		// its own α increment zeroRows ≤ K−1, and zeroRows is monotone
		// non-increasing, so the first such position starts the emitting tail.
		pos := lo
		for ; pos <= hi; pos++ {
			if zeroRows <= k-1 {
				break
			}
			ref := e.order[pos]
			i := int(ref.row)
			ch := int(e.pins[i])
			valid := ch < 0 || int(ref.cand) == ch
			if valid && alpha[i] == 0 && zeroRows-1 <= k-1 {
				break // this position's own increment crosses the threshold
			}
			zeroRows = e.advanceAlpha(pos, alpha, zeroRows)
		}
		emitStart = pos
	}
	window := hi - emitStart + 1
	if window <= 0 {
		return emitStart, nil
	}
	if numSpans > window {
		numSpans = window
	}
	if numSpans < 1 {
		numSpans = 1
	}
	spanLen := (window + numSpans - 1) / numSpans
	for pos := emitStart; pos <= hi; pos++ {
		if (pos-emitStart)%spanLen == 0 {
			end := pos + spanLen - 1
			if end > hi {
				end = hi
			}
			spans = append(spans, sweepSpan{
				lo:       pos,
				hi:       end,
				zeroRows: zeroRows,
				alpha:    append([]int32(nil), alpha...),
			})
		}
		zeroRows = e.advanceAlpha(pos, alpha, zeroRows)
	}
	return emitStart, spans
}

// scanPositions is the callback-dispatch reference kernel: it replays scan
// positions [lo, hi] with real tree work under the engine's current pins,
// appending each position's support terms to *rec(pos). rec is invoked for
// every position in the range — including eliminated candidates and
// provably-zero prefixes, which append nothing — so recorders that retain
// per-position streams can truncate stale state.
//
// Production sweeps run scanSpanFlat instead; this kernel is kept as the
// independent reference the lockstep test (TestScanFlatMatchesCallback) and
// the kernel benchmark (BenchmarkScanPositions_Callback) compare against.
//
// Preconditions: sc.alpha holds the α state a sequential scan carries into
// position lo, zeroRows counts its zero rows, and built reports whether sc's
// trees already reflect sc.alpha (when false they are bulk-built at the
// transition, exactly as Engine.Counts does). Returns the number of positions
// that performed tree work.
func (e *Engine) scanPositions(sc *Scratch, lo, hi, zeroRows int, built, useMC bool, rec func(pos int) *[]term) int64 {
	inst := e.inst
	var scanned int64
	for pos := lo; pos <= hi; pos++ {
		ref := e.order[pos]
		i, j := int(ref.row), int(ref.cand)
		buf := rec(pos)
		ch := int(e.pins[i])
		if ch >= 0 && j != ch {
			continue // candidate eliminated by cleaning
		}
		mEff := inst.M(i)
		if ch >= 0 {
			mEff = 1
		}
		sc.alpha[i]++
		if sc.alpha[i] == 1 {
			zeroRows--
		}
		if zeroRows > sc.k-1 {
			continue // provably zero boundary support (empty term stream)
		}
		if !built {
			e.buildLeaves(sc, -1, -1)
			built = true
		}
		a := float64(sc.alpha[i]) / float64(mEff)
		tr := sc.trees[e.labelOf[i]]
		p := e.rowPos[i]
		// Collapse the row's leaf onto the boundary (one top-K slot, 1/mEff
		// weight on this candidate), record the supports, restore the leaf to
		// its scanned-α state — the same force/restore pair as Counts.
		tr.SetLeaf(p, 0, 1/float64(mEff))
		if useMC {
			e.recordMC(sc, buf)
		} else {
			*buf = recordInto(sc, sc.rootsNormal, *buf)
		}
		tr.SetLeaf(p, a, 1-a)
		scanned++
	}
	return scanned
}

// spanResult is one span's flat scan output: every term its positions record,
// concatenated in scan order, plus per-position offsets — the stream of
// position lo+i is terms[offs[i]:offs[i+1]] (empty for eliminated candidates
// and provably-zero positions). The layout replaces per-position callback
// dispatch and per-position slice headers with one flat append stream per
// span, and lets reducers splice whole spans with two copies.
type spanResult struct {
	terms []term
	offs  []int32 // len = span length + 1
}

// reset prepares the buffers for reuse without releasing capacity.
func (sr *spanResult) reset() {
	sr.terms = sr.terms[:0]
	sr.offs = sr.offs[:0]
}

// scanSpanFlat is the flat scan kernel: it replays scan positions [lo, hi]
// with real tree work under the engine's current pins, recording every
// position's support terms into out's flat layout. It performs identical
// tree operations in identical order to scanPositions — the lockstep test
// pins stream-for-stream equality across worker counts and accumulators —
// with the dispatch overhead gone: engine state hoisted into locals, one
// tight loop, appends into a single flat term slice.
//
// Preconditions match scanPositions: sc.alpha holds the α state entering lo,
// zeroRows its zero-row count, built whether sc's trees already reflect
// sc.alpha. Returns the number of positions that performed tree work.
func (e *Engine) scanSpanFlat(sc *Scratch, lo, hi, zeroRows int, built, useMC bool, out *spanResult) int64 {
	out.reset()
	inst := e.inst
	order := e.order
	pins := e.pins
	labelOf := e.labelOf
	rowPos := e.rowPos
	alpha := sc.alpha
	k := sc.k
	terms := out.terms
	offs := out.offs
	var scanned int64
	for pos := lo; pos <= hi; pos++ {
		offs = append(offs, int32(len(terms)))
		ref := order[pos]
		i := int(ref.row)
		ch := int(pins[i])
		if ch >= 0 && int(ref.cand) != ch {
			continue // candidate eliminated by cleaning
		}
		mEff := inst.M(i)
		if ch >= 0 {
			mEff = 1
		}
		alpha[i]++
		if alpha[i] == 1 {
			zeroRows--
		}
		if zeroRows > k-1 {
			continue // provably zero boundary support (empty stream)
		}
		if !built {
			e.buildLeaves(sc, -1, -1)
			built = true
		}
		a := float64(alpha[i]) / float64(mEff)
		tr := sc.trees[labelOf[i]]
		p := rowPos[i]
		// Same force/record/restore pair as Counts and scanPositions.
		tr.SetLeaf(p, 0, 1/float64(mEff))
		if useMC {
			e.recordMC(sc, &terms)
		} else {
			terms = recordInto(sc, sc.rootsNormal, terms)
		}
		tr.SetLeaf(p, a, 1-a)
		scanned++
	}
	offs = append(offs, int32(len(terms)))
	out.terms = terms
	out.offs = offs
	return scanned
}

// runSpans executes the planned spans across worker goroutines. Workers pull
// span indices from a shared counter — span s "belongs" to worker s mod
// workers, and a pull by any other worker counts as a steal — and each holds
// one pooled Scratch for all the spans it runs, rebuilding tree state from
// the span's α snapshot before running the flat kernel into results[s].
// results must have len(spans) elements; workers write disjoint elements, so
// no cross-worker synchronization is needed. Spans (typically from a cached
// plan) are read-only here. Returns the sweep counters and the total
// positions that performed tree work.
func (e *Engine) runSpans(spans []sweepSpan, k int, useMC bool, workers int, scratches *ScratchPool, results []spanResult) (SweepStats, int64) {
	if workers > len(spans) {
		workers = len(spans)
	}
	var nextSpan, steals, scanned atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := scratches.Get()
			defer scratches.Put(sc)
			for {
				s := int(nextSpan.Add(1)) - 1
				if s >= len(spans) {
					return
				}
				if s%workers != w {
					steals.Add(1)
				}
				sp := spans[s]
				copy(sc.alpha, sp.alpha)
				built := sp.zeroRows <= k-1
				if built {
					e.buildLeaves(sc, -1, -1)
				}
				scanned.Add(e.scanSpanFlat(sc, sp.lo, sp.hi, sp.zeroRows, built, useMC, &results[s]))
			}
		}(w)
	}
	wg.Wait()
	return SweepStats{ParallelSweeps: 1, Spans: int64(len(spans)), Steals: steals.Load()}, scanned.Load()
}

// SweepCounts answers Q2 under the engine's current pins with the
// span-parallel sweep, returning a freshly allocated fraction slice that is
// bit-for-bit identical to Engine.Counts (useMC false) or Engine.CountsMC
// (useMC true). scratches lends each worker its scan state and must match
// the engine's shape and K. When cfg requests no parallelism — or the scan is
// too small to split profitably — it falls back to the sequential sweep
// (stats all zero).
func (e *Engine) SweepCounts(k int, useMC bool, cfg SweepConfig, scratches *ScratchPool) ([]float64, SweepStats, error) {
	if err := validateK(e.inst, k); err != nil {
		return nil, SweepStats{}, err
	}
	if scratches != nil && scratches.K() != k {
		return nil, SweepStats{}, fmt.Errorf("core: sweep K=%d but scratch pool K=%d", k, scratches.K())
	}
	counts := make([]float64, e.numLabels)
	total := len(e.order)
	workers, numSpans := cfg.planSize(e.N(), total)
	if workers <= 1 || numSpans < 2 || scratches == nil {
		var sc *Scratch
		if scratches != nil {
			sc = scratches.Get()
			defer scratches.Put(sc)
		} else {
			sc = newScratchFromShape(e.shape(), k)
		}
		if useMC {
			copy(counts, e.CountsMC(sc, -1, -1))
		} else {
			copy(counts, e.Counts(sc, -1, -1))
		}
		return counts, SweepStats{}, nil
	}
	plan := e.planFor(k, 0, total-1, numSpans)
	if len(plan.spans) < 2 {
		// The emitting tail collapsed below two spans (late zero-rows
		// transition): sequential is both simpler and faster.
		sc := scratches.Get()
		defer scratches.Put(sc)
		if useMC {
			copy(counts, e.CountsMC(sc, -1, -1))
		} else {
			copy(counts, e.Counts(sc, -1, -1))
		}
		return counts, SweepStats{}, nil
	}
	// Each span records into its own flat term stream; appends within a span
	// are already in scan order, so the reducer just walks spans in order.
	results := make([]spanResult, len(plan.spans))
	stats, _ := e.runSpans(plan.spans, k, useMC, workers, scratches, results)
	for s := range results {
		for _, t := range results[s].terms {
			counts[t.y] += t.v
		}
	}
	return counts, stats, nil
}
