package core

import (
	"container/heap"
	"fmt"
)

// extremePrediction classifies the l-extreme world E_l (§3.2, appendix B):
// each row with label l takes its *most* similar valid candidate, every
// other row its *least* similar valid candidate. chosen(i) ≥ 0 restricts a
// row to a single candidate (pins/overrides). Returns the K-NN prediction
// of E_l.
func extremePrediction(inst *Instance, l, k int, chosen func(row int) int) int {
	n := inst.N()
	// h keeps the K most similar rows; root = least similar kept.
	h := make(mmHeap, 0, k)
	for i := 0; i < n; i++ {
		j := pickExtreme(inst, i, inst.Labels[i] == l, chosen)
		nb := mmNeighbor{row: i, cand: j}
		if len(h) < k {
			h = append(h, nb)
			if len(h) == k {
				heap.Init(&mmHeapWrap{inst: inst, h: &h})
			}
			continue
		}
		w := &mmHeapWrap{inst: inst, h: &h}
		if inst.MoreSimilar(nb.row, nb.cand, h[0].row, h[0].cand) {
			h[0] = nb
			heap.Fix(w, 0)
		}
	}
	tally := make([]int, inst.NumLabels)
	for _, nb := range h {
		tally[inst.Labels[nb.row]]++
	}
	return argmaxTally(tally)
}

// pickExtreme returns the most (wantMax) or least similar valid candidate of
// row i under the total order.
func pickExtreme(inst *Instance, i int, wantMax bool, chosen func(row int) int) int {
	if ch := chosen(i); ch >= 0 {
		return ch
	}
	best := 0
	for j := 1; j < inst.M(i); j++ {
		more := inst.MoreSimilar(i, j, i, best)
		if more == wantMax {
			best = j
		}
	}
	return best
}

// mmNeighbor is a (row, chosen candidate) pair inside an MM extreme world.
type mmNeighbor struct{ row, cand int }

type mmHeap []mmNeighbor

// mmHeapWrap implements heap.Interface with access to the instance's total
// order; the root is the least similar kept neighbor.
type mmHeapWrap struct {
	inst *Instance
	h    *mmHeap
}

func (w *mmHeapWrap) Len() int { return len(*w.h) }
func (w *mmHeapWrap) Less(i, j int) bool {
	a, b := (*w.h)[i], (*w.h)[j]
	return w.inst.MoreSimilar(b.row, b.cand, a.row, a.cand)
}
func (w *mmHeapWrap) Swap(i, j int)      { (*w.h)[i], (*w.h)[j] = (*w.h)[j], (*w.h)[i] }
func (w *mmHeapWrap) Push(x interface{}) { *w.h = append(*w.h, x.(mmNeighbor)) }
func (w *mmHeapWrap) Pop() interface{} {
	old := *w.h
	n := len(old)
	x := old[n-1]
	*w.h = old[:n-1]
	return x
}

// MMCheck answers Q1 for binary classification with the MinMax algorithm
// (Algorithm 2): label y can be certainly predicted iff its own extreme
// world predicts it and no other label's extreme world predicts that other
// label. O(NM + |Y|·(N log K + K)). It returns an error for |Y| > 2, where
// the extreme-world argument is unsound (appendix B, Lemma B.1 case 3).
func MMCheck(inst *Instance, k int) ([]bool, error) {
	if inst.NumLabels != 2 {
		return nil, fmt.Errorf("core: MM algorithm requires binary labels, got |Y|=%d", inst.NumLabels)
	}
	if err := validateK(inst, k); err != nil {
		return nil, err
	}
	return mmCheck(inst, k, func(int) int { return -1 }), nil
}

// mmCheck is the shared MM body; chosen encodes pins/overrides.
func mmCheck(inst *Instance, k int, chosen func(row int) int) []bool {
	possible := make([]bool, inst.NumLabels)
	for l := 0; l < inst.NumLabels; l++ {
		// ∃ world predicting l ⟺ E_l predicts l (Lemma B.2).
		possible[l] = extremePrediction(inst, l, k, chosen) == l
	}
	out := make([]bool, inst.NumLabels)
	for l := range out {
		ok := possible[l]
		for lp := range possible {
			if lp != l && possible[lp] {
				ok = false
			}
		}
		out[l] = ok
	}
	return out
}

// CheckMM answers Q1 under the engine's pins plus an optional per-query
// override. Binary labels only.
func (e *Engine) CheckMM(k, overrideRow, overrideCand int) ([]bool, error) {
	if e.numLabels != 2 {
		return nil, fmt.Errorf("core: MM algorithm requires binary labels, got |Y|=%d", e.numLabels)
	}
	if err := validateK(e.inst, k); err != nil {
		return nil, err
	}
	return mmCheck(e.inst, k, func(row int) int {
		return e.chosen(row, overrideRow, overrideCand)
	}), nil
}

// IsCertainMM reports whether the test point is CP'ed (some label certainly
// predicted) under the engine's pins. Binary labels only.
func (e *Engine) IsCertainMM(k int) (bool, error) {
	q1, err := e.CheckMM(k, -1, -1)
	if err != nil {
		return false, err
	}
	for _, b := range q1 {
		if b {
			return true, nil
		}
	}
	return false, nil
}
