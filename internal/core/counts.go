package core

import (
	"fmt"
	"math"
	"math/big"
)

// ExactCounts holds exact Q2 answers: PerLabel[y] is the number of possible
// worlds whose trained classifier predicts label y; Total is |I_D| = Π M_i.
type ExactCounts struct {
	PerLabel []*big.Int
	Total    *big.Int
}

// newExactCounts allocates zeroed counts for numLabels labels.
func newExactCounts(numLabels int) *ExactCounts {
	per := make([]*big.Int, numLabels)
	for i := range per {
		per[i] = new(big.Int)
	}
	return &ExactCounts{PerLabel: per, Total: new(big.Int)}
}

// Sum returns Σ_y PerLabel[y].
func (c *ExactCounts) Sum() *big.Int {
	s := new(big.Int)
	for _, v := range c.PerLabel {
		s.Add(s, v)
	}
	return s
}

// Consistent reports whether the per-label counts sum to the world count —
// an invariant of every correct Q2 implementation.
func (c *ExactCounts) Consistent() bool { return c.Sum().Cmp(c.Total) == 0 }

// Normalize converts the counts to per-label fractions of the world count.
func (c *ExactCounts) Normalize() []float64 {
	out := make([]float64, len(c.PerLabel))
	total := new(big.Float).SetInt(c.Total)
	if c.Total.Sign() == 0 {
		return out
	}
	for i, v := range c.PerLabel {
		f := new(big.Float).SetInt(v)
		f.Quo(f, total)
		out[i], _ = f.Float64()
	}
	return out
}

// String renders the counts for debugging.
func (c *ExactCounts) String() string {
	return fmt.Sprintf("ExactCounts{per=%v total=%s}", c.PerLabel, c.Total.String())
}

// CheckFromExact answers Q1 from exact Q2 counts: label y is certainly
// predicted iff every possible world predicts y.
func CheckFromExact(c *ExactCounts) []bool {
	out := make([]bool, len(c.PerLabel))
	for i, v := range c.PerLabel {
		out[i] = v.Cmp(c.Total) == 0 && c.Total.Sign() > 0
	}
	return out
}

// CertainEps is the tolerance used when deciding certainty from normalized
// float64 counts: a label with fraction ≥ 1−CertainEps is considered CP'ed.
const CertainEps = 1e-9

// CheckFromNormalized answers Q1 from normalized Q2 fractions.
func CheckFromNormalized(p []float64) []bool {
	out := make([]bool, len(p))
	for i, v := range p {
		out[i] = v >= 1-CertainEps
	}
	return out
}

// IsCertain reports whether any label is certainly predicted according to
// the normalized fractions.
func IsCertain(p []float64) bool {
	for _, v := range p {
		if v >= 1-CertainEps {
			return true
		}
	}
	return false
}

// Entropy returns the Shannon entropy (nats) of a normalized label
// distribution — the paper's H(A_D(t) | ...) computed from Q2 (§4, Eq. 3).
// Tiny negative or >1 deviations from float error are clamped.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v <= 0 {
			continue
		}
		if v >= 1 {
			return 0
		}
		h -= v * math.Log(v)
	}
	if h < 0 {
		return 0
	}
	return h
}

// ArgmaxProb returns the most supported label under smallest-label
// tie-breaking.
func ArgmaxProb(p []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range p {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
