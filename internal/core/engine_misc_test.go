package core

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
)

func TestEngineWorldCountUnderPins(t *testing.T) {
	d := dataset.MustNew([]dataset.Example{
		{Candidates: [][]float64{{0}, {1}}, Label: 0},
		{Candidates: [][]float64{{2}, {3}, {4}}, Label: 1},
		{Candidates: [][]float64{{5}}, Label: 0},
	}, 2)
	e := NewEngine(d, knn.NegEuclidean{}, []float64{0})
	if e.WorldCount().Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("world count %s", e.WorldCount())
	}
	e.SetPin(1, 2)
	if e.WorldCount().Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("pinned world count %s", e.WorldCount())
	}
	if e.PinnedCount() != 1 || e.Pin(1) != 2 || e.Pin(0) != -1 {
		t.Fatalf("pin state: count=%d pin(1)=%d", e.PinnedCount(), e.Pin(1))
	}
	e.SetPin(1, -1)
	if e.PinnedCount() != 0 {
		t.Fatal("unpin failed")
	}
}

func TestEngineSetPinValidation(t *testing.T) {
	inst := MustNewInstance([][]float64{{1, 2}}, []int{0}, 2)
	e := NewEngineFromInstance(inst)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range pin accepted")
		}
	}()
	e.SetPin(0, 5)
}

// TestScratchReuseAcrossEngines covers the CPClean pattern: one scratch
// serving many engines built from the same dataset (identical shape).
func TestScratchReuseAcrossEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d := dataset.MustNew([]dataset.Example{
		{Candidates: [][]float64{{0.1}, {0.9}}, Label: 0},
		{Candidates: [][]float64{{0.5}}, Label: 1},
		{Candidates: [][]float64{{0.3}, {0.7}}, Label: 1},
		{Candidates: [][]float64{{0.2}}, Label: 0},
	}, 2)
	engines := make([]*Engine, 5)
	for v := range engines {
		engines[v] = NewEngine(d, knn.NegEuclidean{}, []float64{rng.Float64()})
	}
	sc := engines[0].MustScratch(3)
	for v, e := range engines {
		shared := append([]float64(nil), e.Counts(sc, -1, -1)...)
		own := e.Counts(e.MustScratch(3), -1, -1)
		if d := maxAbsDiff(shared, own); d > 1e-12 {
			t.Fatalf("engine %d: shared-scratch counts differ by %g", v, d)
		}
	}
}

func TestHypothesisCountsRejectsPinnedRow(t *testing.T) {
	inst := MustNewInstance([][]float64{{1, 2}, {3}}, []int{0, 1}, 2)
	e := NewEngineFromInstance(inst)
	e.SetPin(0, 1)
	sc := e.MustScratch(1)
	defer func() {
		if recover() == nil {
			t.Fatal("HypothesisCounts on pinned row did not panic")
		}
	}()
	e.HypothesisCounts(sc, 0)
}

func TestInstanceForComputesKernelSims(t *testing.T) {
	d := dataset.MustNew([]dataset.Example{
		{Candidates: [][]float64{{0}, {3}}, Label: 0},
	}, 2)
	inst := InstanceFor(d, knn.NegEuclidean{}, []float64{1})
	if inst.Sims[0][0] != -1 || inst.Sims[0][1] != -2 {
		t.Fatalf("sims %v", inst.Sims[0])
	}
}

func TestCheckFromExactAndNormalized(t *testing.T) {
	c := newExactCounts(2)
	c.Total.SetInt64(4)
	c.PerLabel[0].SetInt64(4)
	q1 := CheckFromExact(c)
	if !q1[0] || q1[1] {
		t.Fatalf("q1 = %v", q1)
	}
	qn := CheckFromNormalized([]float64{1, 0})
	if !qn[0] || qn[1] {
		t.Fatalf("qn = %v", qn)
	}
	if !IsCertain([]float64{1 - 1e-12, 1e-12}) {
		t.Fatal("near-one fraction not certain")
	}
	if IsCertain([]float64{0.6, 0.4}) {
		t.Fatal("0.6 reported certain")
	}
}

func TestArgmaxProb(t *testing.T) {
	if ArgmaxProb([]float64{0.2, 0.5, 0.3}) != 1 {
		t.Fatal("argmax wrong")
	}
	if ArgmaxProb([]float64{0.5, 0.5}) != 0 {
		t.Fatal("tie should go to the smaller label")
	}
}
