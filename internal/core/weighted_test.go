package core

import (
	"math/rand"
	"testing"
)

// randomWeighted attaches random (normalized) priors to an instance.
func randomWeighted(rng *rand.Rand, inst *Instance) *WeightedInstance {
	probs := make([][]float64, inst.N())
	for i := range probs {
		m := inst.M(i)
		row := make([]float64, m)
		sum := 0.0
		for j := range row {
			row[j] = rng.Float64() + 0.05
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
		probs[i] = row
	}
	wi, err := NewWeightedInstance(inst, probs)
	if err != nil {
		panic(err)
	}
	return wi
}

func TestWeightedQ2MatchesWeightedBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		numLabels := 2 + rng.Intn(2)
		inst := randomInstance(rng, 3+rng.Intn(4), 3, numLabels)
		wi := randomWeighted(rng, inst)
		k := 1 + rng.Intn(3)
		want, err := WeightedBruteForce(wi, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := WeightedQ2(wi, k)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("trial %d (N=%d K=%d |Y|=%d): weighted Q2 off by %g: %v vs %v",
				trial, inst.N(), k, numLabels, d, got, want)
		}
	}
}

func TestWeightedQ2UniformMatchesCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 4+rng.Intn(5), 3, 2)
		k := 1 + rng.Intn(3)
		wi, err := NewWeightedInstance(inst, UniformWeights(inst))
		if err != nil {
			t.Fatal(err)
		}
		got, err := WeightedQ2(wi, k)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		want := e.Counts(sc, -1, -1)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("trial %d: uniform weighted Q2 %v != normalized counts %v", trial, got, want)
		}
	}
}

func TestWeightedQ2DegeneratePriorIsPin(t *testing.T) {
	// A row with all mass on one candidate behaves exactly like a pinned row.
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 5, 3, 2)
		k := 1 + rng.Intn(2)
		row := rng.Intn(inst.N())
		cand := rng.Intn(inst.M(row))
		probs := UniformWeights(inst)
		for j := range probs[row] {
			probs[row][j] = 0
		}
		probs[row][cand] = 1
		wi, err := NewWeightedInstance(inst, probs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := WeightedQ2(wi, k)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		want := e.Counts(sc, row, cand)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("trial %d: degenerate prior %v != pinned counts %v", trial, got, want)
		}
	}
}

func TestWeightedQ2SumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 4+rng.Intn(8), 4, 2+rng.Intn(2))
		wi := randomWeighted(rng, inst)
		k := 1 + rng.Intn(3)
		got, err := WeightedQ2(wi, k)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range got {
			sum += v
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			t.Fatalf("trial %d: weighted Q2 sums to %v", trial, sum)
		}
	}
}

func TestNewWeightedInstanceValidation(t *testing.T) {
	inst := MustNewInstance([][]float64{{1, 2}, {3}}, []int{0, 1}, 2)
	if _, err := NewWeightedInstance(inst, [][]float64{{1}}); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	if _, err := NewWeightedInstance(inst, [][]float64{{0.5, 0.5}, {0.9}}); err == nil {
		t.Fatal("non-stochastic row accepted")
	}
	if _, err := NewWeightedInstance(inst, [][]float64{{1.5, -0.5}, {1}}); err == nil {
		t.Fatal("negative probability accepted")
	}
	if _, err := NewWeightedInstance(inst, [][]float64{{0.5, 0.5}, {1}}); err != nil {
		t.Fatalf("valid priors rejected: %v", err)
	}
}

func TestWeightedSampleRespectsPriors(t *testing.T) {
	inst := MustNewInstance([][]float64{{1, 2}}, []int{0}, 2)
	wi, err := NewWeightedInstance(inst, [][]float64{{0.2, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	choice := make([]int, 1)
	ones := 0
	const n = 10000
	for s := 0; s < n; s++ {
		WeightedSample(wi, rng, choice)
		ones += choice[0]
	}
	frac := float64(ones) / n
	if frac < 0.77 || frac > 0.83 {
		t.Fatalf("sampled candidate-1 fraction %v, want ≈0.8", frac)
	}
}
