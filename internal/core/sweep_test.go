package core

import (
	"math/rand"
	"testing"
)

// TestSweepCountsMatchesSequential is the standalone lockstep contract of the
// span-parallel sweep: for worker counts 1/2/4/8 × tally/MC accumulators ×
// generic, tied, and near-zero-weight instances × random pin states,
// Engine.SweepCounts must equal the sequential Engine.Counts / CountsMC bit
// for bit. MinSpanPositions is forced to 1 so even tiny instances split into
// many spans and the snapshot/rebuild/reduce machinery is genuinely
// exercised.
func TestSweepCountsMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	gens := []func(*rand.Rand, int, int, int) *Instance{randomInstance, tiedInstance, nearZeroInstance}
	for trial := 0; trial < 60; trial++ {
		numLabels := 2 + rng.Intn(2)
		inst := gens[trial%len(gens)](rng, 6+rng.Intn(12), 4, numLabels)
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		pool, err := NewScratchPool(e, k)
		if err != nil {
			t.Fatal(err)
		}
		sc := e.MustScratch(k)
		for step := 0; step < 4; step++ {
			if step > 0 {
				applyRandomPinOp(rng, e)
			}
			for _, useMC := range []bool{false, true} {
				var want []float64
				if useMC {
					want = append([]float64(nil), e.CountsMC(sc, -1, -1)...)
				} else {
					want = append([]float64(nil), e.Counts(sc, -1, -1)...)
				}
				for _, workers := range []int{1, 2, 4, 8} {
					got, _, err := e.SweepCounts(k, useMC, SweepConfig{Workers: workers, MinSpanPositions: 1}, pool)
					if err != nil {
						t.Fatal(err)
					}
					for y := range want {
						if got[y] != want[y] {
							t.Fatalf("trial %d step %d (mc=%v k=%d workers=%d): sweep[%d]=%v sequential=%v",
								trial, step, useMC, k, workers, y, got[y], want[y])
						}
					}
				}
			}
		}
	}
}

// TestSweepCountsStats checks the counters actually reflect a parallel run —
// one sweep, at least two spans — and that the sequential fallbacks (one
// worker, nil pool, oversized span floor) report zero.
func TestSweepCountsStats(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst := randomInstance(rng, 40, 4, 2)
	e := NewEngineFromInstance(inst)
	pool, err := NewScratchPool(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := e.SweepCounts(3, false, SweepConfig{Workers: 4, MinSpanPositions: 1}, pool)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ParallelSweeps != 1 || stats.Spans < 2 {
		t.Fatalf("parallel sweep did not run parallel: %+v", stats)
	}
	for name, run := range map[string]func() (SweepStats, error){
		"one worker": func() (SweepStats, error) {
			_, s, err := e.SweepCounts(3, false, SweepConfig{Workers: 1, MinSpanPositions: 1}, pool)
			return s, err
		},
		"nil pool": func() (SweepStats, error) {
			_, s, err := e.SweepCounts(3, false, SweepConfig{Workers: 4, MinSpanPositions: 1}, nil)
			return s, err
		},
		"oversized floor": func() (SweepStats, error) {
			_, s, err := e.SweepCounts(3, false, SweepConfig{Workers: 4, MinSpanPositions: 1 << 20}, pool)
			return s, err
		},
	} {
		s, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s != (SweepStats{}) {
			t.Fatalf("%s: sequential fallback reported parallel stats %+v", name, s)
		}
	}
	if _, _, err := e.SweepCounts(0, false, SweepConfig{}, pool); err == nil {
		t.Fatal("K=0 must be rejected")
	}
	wrongK, err := NewScratchPool(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.SweepCounts(3, false, SweepConfig{}, wrongK); err == nil {
		t.Fatal("mismatched pool K must be rejected")
	}
}

// TestRetainedSweepStatsAccumulate checks a parallel-configured Retained
// actually runs its full rescans span-parallel (and counts them), and that a
// windowed delta replay after a pin still answers bit-identically.
func TestRetainedSweepStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	inst := randomInstance(rng, 50, 4, 2)
	e := NewEngineFromInstance(inst)
	pool, err := NewScratchPool(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRetained(e, 3, false, pool)
	if err != nil {
		t.Fatal(err)
	}
	rt.ConfigureSweep(SweepConfig{Workers: 4, MinSpanPositions: 1})
	rt.Counts()
	if s := rt.SweepStats(); s.ParallelSweeps != 1 {
		t.Fatalf("full rescan should have run span-parallel: %+v", s)
	}
	sc := e.MustScratch(3)
	row := rng.Intn(e.N())
	e.SetPin(row, rng.Intn(inst.M(row)))
	got := rt.Counts()
	want := e.Counts(sc, -1, -1)
	for y := range want {
		if got[y] != want[y] {
			t.Fatalf("post-pin parallel retained %v fresh %v", got, want)
		}
	}
}
