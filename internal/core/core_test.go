package core

import (
	"math"
	"math/rand"
	"testing"
)

// randomInstance builds a random instance with n rows, candidate counts in
// [1, maxM], and the given label count.
func randomInstance(rng *rand.Rand, n, maxM, numLabels int) *Instance {
	sims := make([][]float64, n)
	labels := make([]int, n)
	for i := range sims {
		m := 1 + rng.Intn(maxM)
		row := make([]float64, m)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		sims[i] = row
		labels[i] = rng.Intn(numLabels)
	}
	// Ensure every label appears at least once so votes are interesting.
	for l := 0; l < numLabels && l < n; l++ {
		labels[l] = l
	}
	return MustNewInstance(sims, labels, numLabels)
}

// tiedInstance returns an instance with deliberately duplicated similarity
// values to exercise the total-order tie-breaking.
func tiedInstance(rng *rand.Rand, n, maxM, numLabels int) *Instance {
	inst := randomInstance(rng, n, maxM, numLabels)
	vals := []float64{-1, 0, 0.5, 1}
	for i, row := range inst.Sims {
		for j := range row {
			inst.Sims[i][j] = vals[rng.Intn(len(vals))]
		}
	}
	return inst
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestBruteForceTotalsAndConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 3+rng.Intn(4), 3, 2)
		k := 1 + rng.Intn(3)
		counts, err := BruteForceCounts(inst, k)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		if !counts.Consistent() {
			t.Fatalf("trial %d: per-label counts %v do not sum to total %s", trial, counts.PerLabel, counts.Total)
		}
	}
}

func TestSSExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		numLabels := 2 + rng.Intn(2)
		inst := randomInstance(rng, 3+rng.Intn(4), 3, numLabels)
		k := 1 + rng.Intn(min(3, inst.N()))
		want, err := BruteForceCounts(inst, k)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		got, err := SSExactCounts(inst, k)
		if err != nil {
			t.Fatalf("ss exact: %v", err)
		}
		for y := range want.PerLabel {
			if want.PerLabel[y].Cmp(got.PerLabel[y]) != 0 {
				t.Fatalf("trial %d (N=%d K=%d |Y|=%d): label %d brute=%s ss=%s",
					trial, inst.N(), k, numLabels, y, want.PerLabel[y], got.PerLabel[y])
			}
		}
		if !got.Consistent() {
			t.Fatalf("trial %d: SS counts inconsistent: %s vs total %s", trial, got.Sum(), got.Total)
		}
	}
}

func TestSSExactMatchesBruteForceWithTies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		inst := tiedInstance(rng, 3+rng.Intn(4), 3, 2)
		k := 1 + rng.Intn(min(3, inst.N()))
		want, err := BruteForceCounts(inst, k)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		got, err := SSExactCounts(inst, k)
		if err != nil {
			t.Fatalf("ss exact: %v", err)
		}
		for y := range want.PerLabel {
			if want.PerLabel[y].Cmp(got.PerLabel[y]) != 0 {
				t.Fatalf("tied trial %d: label %d brute=%s ss=%s", trial, y, want.PerLabel[y], got.PerLabel[y])
			}
		}
	}
}

func TestSSFastMatchesBruteForceK1(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		numLabels := 2 + rng.Intn(3)
		inst := randomInstance(rng, 3+rng.Intn(5), 3, numLabels)
		want, err := BruteForceCounts(inst, 1)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		gotNorm := SSFastCounts(inst)
		if d := maxAbsDiff(gotNorm, want.Normalize()); d > 1e-9 {
			t.Fatalf("trial %d: fast float counts off by %g: got %v want %v", trial, d, gotNorm, want.Normalize())
		}
		gotExact := SSFastExactCounts(inst)
		for y := range want.PerLabel {
			if want.PerLabel[y].Cmp(gotExact.PerLabel[y]) != 0 {
				t.Fatalf("trial %d: label %d brute=%s fast-exact=%s", trial, y, want.PerLabel[y], gotExact.PerLabel[y])
			}
		}
	}
}

func TestEngineSSDCMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		numLabels := 2 + rng.Intn(2)
		inst := randomInstance(rng, 3+rng.Intn(4), 3, numLabels)
		k := 1 + rng.Intn(min(3, inst.N()))
		want, err := BruteForceCounts(inst, k)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		got := e.Counts(sc, -1, -1)
		if d := maxAbsDiff(got, want.Normalize()); d > 1e-9 {
			t.Fatalf("trial %d (N=%d K=%d |Y|=%d): ss-dc off by %g: got %v want %v",
				trial, inst.N(), k, numLabels, d, got, want.Normalize())
		}
	}
}

func TestEngineSSDCMCMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		numLabels := 2 + rng.Intn(3)
		inst := randomInstance(rng, 3+rng.Intn(4), 3, numLabels)
		k := 1 + rng.Intn(min(3, inst.N()))
		want, err := BruteForceCounts(inst, k)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		got := e.CountsMC(sc, -1, -1)
		if d := maxAbsDiff(got, want.Normalize()); d > 1e-9 {
			t.Fatalf("trial %d (N=%d K=%d |Y|=%d): ss-dc-mc off by %g: got %v want %v",
				trial, inst.N(), k, numLabels, d, got, want.Normalize())
		}
	}
}

func TestMMMatchesBruteForceQ1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(rng, 3+rng.Intn(5), 3, 2)
		k := 1 + rng.Intn(min(3, inst.N()))
		want, err := BruteForceCheck(inst, k)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		got, err := MMCheck(inst, k)
		if err != nil {
			t.Fatalf("mm: %v", err)
		}
		for y := range want {
			if want[y] != got[y] {
				t.Fatalf("trial %d (N=%d K=%d): Q1 label %d brute=%v mm=%v", trial, inst.N(), k, y, want[y], got[y])
			}
		}
	}
}

func TestMMMatchesBruteForceQ1WithTies(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		inst := tiedInstance(rng, 3+rng.Intn(4), 3, 2)
		k := 1 + rng.Intn(min(3, inst.N()))
		want, err := BruteForceCheck(inst, k)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		got, err := MMCheck(inst, k)
		if err != nil {
			t.Fatalf("mm: %v", err)
		}
		for y := range want {
			if want[y] != got[y] {
				t.Fatalf("tied trial %d: Q1 label %d brute=%v mm=%v", trial, y, want[y], got[y])
			}
		}
	}
}

func TestMMRejectsMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := randomInstance(rng, 5, 3, 3)
	if _, err := MMCheck(inst, 1); err == nil {
		t.Fatal("MMCheck should reject |Y|=3")
	}
}

func TestEnginePinsMatchPinnedBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(rng, 4+rng.Intn(3), 3, 2)
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		// Pin a random subset of rows.
		pinned := map[int]int{}
		for i := 0; i < inst.N(); i++ {
			if rng.Intn(2) == 0 {
				c := rng.Intn(inst.M(i))
				e.SetPin(i, c)
				pinned[i] = c
			}
		}
		// Reference: brute force over the reduced instance.
		redSims := make([][]float64, inst.N())
		for i := range redSims {
			if c, ok := pinned[i]; ok {
				redSims[i] = []float64{inst.Sims[i][c]}
			} else {
				redSims[i] = inst.Sims[i]
			}
		}
		// NOTE: pinning must preserve the total order, so the reduced
		// instance is only a valid reference when similarities are unique;
		// NormFloat64 candidates are unique almost surely.
		red := MustNewInstance(redSims, inst.Labels, inst.NumLabels)
		want, err := BruteForceCounts(red, k)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		got := e.Counts(sc, -1, -1)
		if d := maxAbsDiff(got, want.Normalize()); d > 1e-9 {
			t.Fatalf("trial %d: pinned counts off by %g: got %v want %v", trial, d, got, want.Normalize())
		}
		// MM under pins must agree with brute-force Q1 on the reduced instance.
		gotQ1, err := e.CheckMM(k, -1, -1)
		if err != nil {
			t.Fatalf("mm: %v", err)
		}
		wantQ1 := CheckFromExact(want)
		for y := range wantQ1 {
			if gotQ1[y] != wantQ1[y] {
				t.Fatalf("trial %d: pinned Q1 label %d got %v want %v", trial, y, gotQ1[y], wantQ1[y])
			}
		}
	}
}

func TestEngineOverrideEqualsPin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 5, 3, 2)
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		row := rng.Intn(inst.N())
		cand := rng.Intn(inst.M(row))
		viaOverride := append([]float64(nil), e.Counts(sc, row, cand)...)
		e.SetPin(row, cand)
		viaPin := e.Counts(sc, -1, -1)
		if d := maxAbsDiff(viaOverride, viaPin); d > 1e-12 {
			t.Fatalf("trial %d: override %v != pin %v", trial, viaOverride, viaPin)
		}
	}
}

func TestQ2NormalizedSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 4+rng.Intn(20), 4, 2+rng.Intn(2))
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		sc := e.MustScratch(k)
		got := e.Counts(sc, -1, -1)
		sum := 0.0
		for _, v := range got {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: normalized Q2 sums to %v, want 1", trial, sum)
		}
	}
}

func TestCompositions(t *testing.T) {
	got := compositions(3, 2)
	want := [][]int{{0, 3}, {1, 2}, {2, 1}, {3, 0}}
	if len(got) != len(want) {
		t.Fatalf("compositions(3,2) = %v", got)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("compositions(3,2)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if n := len(compositions(3, 3)); n != 10 {
		t.Fatalf("|compositions(3,3)| = %d, want 10", n)
	}
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]float64{1, 0}); h != 0 {
		t.Fatalf("Entropy certain = %v", h)
	}
	if h := Entropy([]float64{0.5, 0.5}); math.Abs(h-math.Log(2)) > 1e-12 {
		t.Fatalf("Entropy uniform = %v, want ln 2", h)
	}
	if h := Entropy([]float64{0.25, 0.75}); h <= 0 || h >= math.Log(2) {
		t.Fatalf("Entropy skewed = %v out of (0, ln2)", h)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
