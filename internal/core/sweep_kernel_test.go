package core

import (
	"math/rand"
	"testing"
)

// TestScanFlatMatchesCallback is the lockstep contract of the flat scan
// kernel: for worker counts 1/2/4/8 × tally/MC accumulators × random pin
// states, every position's term stream produced by scanSpanFlat (via
// runSpans' flat results) must equal the callback reference kernel
// (scanPositions) bit for bit — same terms, same order, same per-position
// boundaries.
func TestScanFlatMatchesCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	gens := []func(*rand.Rand, int, int, int) *Instance{randomInstance, tiedInstance, nearZeroInstance}
	for trial := 0; trial < 30; trial++ {
		inst := gens[trial%len(gens)](rng, 8+rng.Intn(16), 4, 2+rng.Intn(2))
		k := 1 + rng.Intn(3)
		e := NewEngineFromInstance(inst)
		pool, err := NewScratchPool(e, k)
		if err != nil {
			t.Fatal(err)
		}
		total := len(e.order)
		for step := 0; step < 3; step++ {
			if step > 0 {
				applyRandomPinOp(rng, e)
			}
			for _, useMC := range []bool{false, true} {
				for _, workers := range []int{1, 2, 4, 8} {
					_, spans := e.planSpans(k, 0, total-1, workers*spansPerWorker, -1)
					if len(spans) == 0 {
						continue
					}
					// Callback reference: each span replayed sequentially
					// through scanPositions into per-position streams.
					perPos := make([][]term, total)
					for _, sp := range spans {
						sc := pool.Get()
						copy(sc.alpha, sp.alpha)
						built := sp.zeroRows <= k-1
						if built {
							e.buildLeaves(sc, -1, -1)
						}
						e.scanPositions(sc, sp.lo, sp.hi, sp.zeroRows, built, useMC, func(pos int) *[]term {
							return &perPos[pos]
						})
						pool.Put(sc)
					}
					// Flat kernel under real worker fan-out.
					results := make([]spanResult, len(spans))
					e.runSpans(spans, k, useMC, workers, pool, results)
					for s, sp := range spans {
						res := results[s]
						if len(res.offs) != sp.hi-sp.lo+2 {
							t.Fatalf("trial %d step %d (mc=%v w=%d): span %d offs len %d want %d",
								trial, step, useMC, workers, s, len(res.offs), sp.hi-sp.lo+2)
						}
						if int(res.offs[len(res.offs)-1]) != len(res.terms) {
							t.Fatalf("span %d: final offset %d != %d terms", s, res.offs[len(res.offs)-1], len(res.terms))
						}
						for pi := 0; pi <= sp.hi-sp.lo; pi++ {
							pos := sp.lo + pi
							got := res.terms[res.offs[pi]:res.offs[pi+1]]
							want := perPos[pos]
							if len(got) != len(want) {
								t.Fatalf("trial %d step %d (mc=%v w=%d): pos %d has %d terms want %d",
									trial, step, useMC, workers, pos, len(got), len(want))
							}
							for ti := range want {
								if got[ti] != want[ti] {
									t.Fatalf("trial %d step %d (mc=%v w=%d): pos %d term %d = %+v want %+v",
										trial, step, useMC, workers, pos, ti, got[ti], want[ti])
								}
							}
						}
					}
				}
			}
		}
	}
}

// benchKernelEngine builds a mid-sized engine plus a scratch for the kernel
// benchmarks below.
func benchKernelEngine() (*Engine, *Scratch, int) {
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(rng, 400, 4, 3)
	e := NewEngineFromInstance(inst)
	return e, e.MustScratch(3), len(e.order)
}

// BenchmarkScanPositions_Callback measures the callback-dispatch reference
// kernel over a full scan.
func BenchmarkScanPositions_Callback(b *testing.B) {
	e, sc, total := benchKernelEngine()
	perPos := make([][]term, total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range sc.alpha {
			sc.alpha[j] = 0
		}
		for pos := range perPos {
			perPos[pos] = perPos[pos][:0]
		}
		e.scanPositions(sc, 0, total-1, e.N(), false, false, func(pos int) *[]term {
			return &perPos[pos]
		})
	}
}

// BenchmarkScanPositions_Flat measures the flat-layout kernel over the same
// scan; the delta against _Callback is the dispatch + per-position slice
// overhead the flat layout removes.
func BenchmarkScanPositions_Flat(b *testing.B) {
	e, sc, total := benchKernelEngine()
	var out spanResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range sc.alpha {
			sc.alpha[j] = 0
		}
		e.scanSpanFlat(sc, 0, total-1, e.N(), false, false, &out)
	}
}
