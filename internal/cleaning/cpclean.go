package cleaning

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/selection"
)

// newClassifier trains K-NN on encoded features with the dirty table's
// labels.
func newClassifier(t *Task, x [][]float64) (*knn.Classifier, error) {
	return knn.NewClassifier(t.K, t.Kernel, x, t.Dirty.Labels, t.Dirty.NumLabels)
}

// StepInfo records the state after one cleaning step.
type StepInfo struct {
	// Step is the 1-based number of examples cleaned so far.
	Step int
	// Row is the training row cleaned at this step.
	Row int
	// FracCleaned is Step / #dirty rows.
	FracCleaned float64
	// ValCertainFrac is the fraction of validation examples CP'ed after the
	// step.
	ValCertainFrac float64
	// TestAccuracy is the test accuracy of the partially-cleaned world
	// (cleaned rows → oracle candidate, uncleaned → mean/mode candidate).
	// Only populated when the run is configured to evaluate it.
	TestAccuracy float64
	// Entropy is the selected hypothesis's expected conditional entropy
	// (CPClean only).
	Entropy float64
}

// Result summarizes an iterative cleaning run.
type Result struct {
	// Order lists cleaned rows in cleaning order.
	Order []int
	// Steps holds per-step trajectory info (step 0 = before any cleaning).
	Steps []StepInfo
	// AllCertainStep is the number of cleaned examples after which every
	// validation example was CP'ed, or -1 if the run ended first.
	AllCertainStep int
	// FinalAccuracy is the test accuracy of the final returned world.
	FinalAccuracy float64
	// ExaminedHypotheses counts Q2 hypothesis evaluations (CPClean only).
	ExaminedHypotheses int64
}

// Options configures CPClean and RandomClean runs.
type Options struct {
	// MaxSteps caps the number of cleaned examples (0 = no cap: run until
	// every validation example is CP'ed or every dirty row is cleaned).
	MaxSteps int
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS).
	Parallelism int
	// SweepWorkers bounds the span-parallel sweep used when a cold
	// validation point rescores through its retained tree (0 or 1 =
	// sequential; answers are bit-identical either way).
	SweepWorkers int
	// EvalTestEachStep computes StepInfo.TestAccuracy along the trajectory
	// (needed for Figure 9 curves; costs one K-NN evaluation per step).
	EvalTestEachStep bool
	// DisableSkipCertain turns OFF the paper's key lemma — a CP'ed
	// validation example stays CP'ed under further cleaning, so its entropy
	// is 0 forever and it can be skipped. The skip is on by default (zero
	// value); only the ablation bench opts out of it.
	DisableSkipCertain bool
	// BatchSize cleans the top-B entropy-minimizing rows per selection round
	// (1 = the paper's Algorithm 3). Larger batches trade selection quality
	// for B× fewer hypothesis sweeps.
	BatchSize int
	// UseMC answers Q2 with the multi-class SS-DC-MC variant.
	UseMC bool
	// DisableIncremental turns OFF the selection engine's cross-round
	// hypothesis-entropy memo, rescoring every (row, validation point) pair
	// from scratch each round. Selections are identical either way (see
	// internal/selection); this exists as the ablation/benchmark baseline
	// for the incremental reuse.
	DisableIncremental bool
	// Rand drives RandomClean's choices (ignored by CPClean).
	Rand *rand.Rand
}

// DefaultOptions returns the recommended configuration: the certain-skip
// lemma enabled, one row cleaned per hypothesis sweep (the paper's
// Algorithm 3), and GOMAXPROCS worker parallelism. The zero Options value is
// equivalent for correctness; this constructor exists as the documented
// entry point.
func DefaultOptions() Options {
	return Options{BatchSize: 1}
}

func (o Options) withDefaults() Options {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// runState holds the shared machinery of the iterative cleaners.
type runState struct {
	task    *Task
	opts    Options
	engines []*core.Engine // one per validation example
	// scratches pools query Scratches shared across all engines (identical
	// shape: same dataset, same label order) and across selection rounds.
	scratches *core.ScratchPool
	// sel is the shared incremental entropy-selection engine. All pins route
	// through it (even RandomClean's, which never scores) so its per-point
	// memos stay coherent with the engines.
	sel     *selection.Selector
	certain []bool
	cleaned []bool
	dirty   []int
	choice  []int // current world: oracle candidate once cleaned, default before
}

// newRunState builds per-validation-point engines and the initial certainty
// mask.
func newRunState(t *Task, opts Options) (*runState, error) {
	if t.Val == nil || t.Test == nil {
		return nil, fmt.Errorf("cleaning: task needs validation and test sets")
	}
	if t.Dirty.NumLabels != 2 {
		return nil, fmt.Errorf("cleaning: iterative cleaners require binary labels (MM-based Q1), got %d", t.Dirty.NumLabels)
	}
	st := &runState{
		task:    t,
		opts:    opts.withDefaults(),
		engines: make([]*core.Engine, len(t.ValX)),
		certain: make([]bool, len(t.ValX)),
		cleaned: make([]bool, t.Dirty.NumRows()),
		dirty:   append([]int(nil), t.Repairs.DirtyRows...),
		choice:  t.DefaultWorld(),
	}
	d := t.Dataset()
	var wg sync.WaitGroup
	sem := make(chan struct{}, st.opts.Parallelism)
	errs := make([]error, len(t.ValX))
	for v := range t.ValX {
		wg.Add(1)
		sem <- struct{}{}
		go func(v int) {
			defer wg.Done()
			defer func() { <-sem }()
			st.engines[v] = core.NewEngine(d, t.Kernel, t.ValX[v])
			c, err := st.engines[v].IsCertainMM(t.K)
			if err != nil {
				errs[v] = err
				return
			}
			st.certain[v] = c
		}(v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(st.engines) > 0 {
		pool, err := core.NewScratchPool(st.engines[0], t.K)
		if err != nil {
			return nil, err
		}
		st.scratches = pool
		sel, err := selection.New(st.engines, st.certain, pool, selection.Config{
			K:                  t.K,
			Parallelism:        st.opts.Parallelism,
			SweepWorkers:       st.opts.SweepWorkers,
			UseMC:              st.opts.UseMC,
			DisableSkipCertain: st.opts.DisableSkipCertain,
			DisableCache:       st.opts.DisableIncremental,
		})
		if err != nil {
			return nil, err
		}
		st.sel = sel
	}
	return st, nil
}

// certainFrac returns the fraction of CP'ed validation examples.
func (st *runState) certainFrac() float64 {
	n := 0
	for _, c := range st.certain {
		if c {
			n++
		}
	}
	return float64(n) / float64(len(st.certain))
}

// allCertain reports whether every validation example is CP'ed.
func (st *runState) allCertain() bool {
	for _, c := range st.certain {
		if !c {
			return false
		}
	}
	return true
}

// uncleanedDirty lists dirty rows not yet cleaned.
func (st *runState) uncleanedDirty() []int {
	var out []int
	for _, i := range st.dirty {
		if !st.cleaned[i] {
			out = append(out, i)
		}
	}
	return out
}

// clean performs the cleaning of row i: the oracle reveals the closest
// candidate, all engines pin it, and certainty is refreshed.
func (st *runState) clean(row int) error {
	truth := st.task.Repairs.Truth[row]
	st.cleaned[row] = true
	st.choice[row] = truth
	if st.sel != nil {
		// The selector pins every engine and selectively invalidates its
		// per-validation-point memos.
		st.sel.Pin(row, truth)
	}
	// Refresh certainty of still-uncertain validation examples (certain ones
	// stay certain — the paper's key observation).
	var wg sync.WaitGroup
	sem := make(chan struct{}, st.opts.Parallelism)
	errs := make([]error, len(st.engines))
	for v, e := range st.engines {
		if st.certain[v] {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(v int, e *core.Engine) {
			defer wg.Done()
			defer func() { <-sem }()
			c, err := e.IsCertainMM(st.task.K)
			if err != nil {
				errs[v] = err
				return
			}
			st.certain[v] = c
		}(v, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// testAccuracy evaluates the current world's test accuracy.
func (st *runState) testAccuracy() (float64, error) {
	x, y := st.task.WorldX(st.choice)
	return st.task.AccuracyOnEncoded(x, y)
}

// finish computes the final metrics shared by both cleaners.
func (st *runState) finish(res *Result) error {
	acc, err := st.testAccuracy()
	if err != nil {
		return err
	}
	res.FinalAccuracy = acc
	return nil
}

// recordStep appends a StepInfo for the just-performed step.
func (st *runState) recordStep(res *Result, row int, entropy float64) error {
	info := StepInfo{
		Step:           len(res.Order),
		Row:            row,
		FracCleaned:    float64(len(res.Order)) / float64(len(st.dirty)),
		ValCertainFrac: st.certainFrac(),
		Entropy:        entropy,
	}
	if st.opts.EvalTestEachStep {
		acc, err := st.testAccuracy()
		if err != nil {
			return err
		}
		info.TestAccuracy = acc
	}
	res.Steps = append(res.Steps, info)
	if res.AllCertainStep < 0 && st.allCertain() {
		res.AllCertainStep = len(res.Order)
	}
	return nil
}

// CPClean runs Algorithm 3: at every step it cleans the training example
// whose (uniform-prior) expected conditional entropy of the validation
// predictions is minimal, computed from Q2 via the pinnable SS-DC engines,
// and stops when every validation example is CP'ed (or the budget runs out).
// Scoring goes through the shared incremental selection engine
// (internal/selection), which memoizes per-(row, validation point)
// hypothesis sums across rounds and rescans only the pairs each pin could
// actually have changed.
func CPClean(t *Task, opts Options) (*Result, error) {
	st, err := newRunState(t, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{AllCertainStep: -1}
	if err := st.recordStep(res, -1, 0); err != nil {
		return nil, err
	}
	res.Steps[0].Step = 0
	res.Steps[0].Row = -1

	for {
		if st.allCertain() {
			break
		}
		remaining := st.uncleanedDirty()
		if len(remaining) == 0 {
			break
		}
		if opts.MaxSteps > 0 && len(res.Order) >= opts.MaxSteps {
			break
		}
		batch := opts.BatchSize
		if batch <= 0 {
			batch = 1
		}
		rows, entropies, examined := st.sel.SelectBatch(remaining, batch)
		res.ExaminedHypotheses += examined
		for bi, row := range rows {
			if opts.MaxSteps > 0 && len(res.Order) >= opts.MaxSteps {
				break
			}
			if bi > 0 && st.allCertain() {
				break
			}
			if err := st.clean(row); err != nil {
				return nil, err
			}
			res.Order = append(res.Order, row)
			if err := st.recordStep(res, row, entropies[bi]); err != nil {
				return nil, err
			}
		}
	}
	if err := st.finish(res); err != nil {
		return nil, err
	}
	return res, nil
}

// RandomClean cleans uniformly random dirty rows — the Figure 9 baseline.
func RandomClean(t *Task, opts Options) (*Result, error) {
	if opts.Rand == nil {
		return nil, fmt.Errorf("cleaning: RandomClean requires Options.Rand")
	}
	st, err := newRunState(t, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{AllCertainStep: -1}
	if err := st.recordStep(res, -1, 0); err != nil {
		return nil, err
	}
	for {
		if st.allCertain() {
			break
		}
		remaining := st.uncleanedDirty()
		if len(remaining) == 0 {
			break
		}
		if opts.MaxSteps > 0 && len(res.Order) >= opts.MaxSteps {
			break
		}
		row := remaining[opts.Rand.Intn(len(remaining))]
		if err := st.clean(row); err != nil {
			return nil, err
		}
		res.Order = append(res.Order, row)
		if err := st.recordStep(res, row, 0); err != nil {
			return nil, err
		}
	}
	if err := st.finish(res); err != nil {
		return nil, err
	}
	return res, nil
}
