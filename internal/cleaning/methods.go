package cleaning

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/repair"
	"repro/internal/table"
)

// GroundTruthAccuracy trains on the ground-truth training table — the
// paper's upper bound.
func GroundTruthAccuracy(t *Task) (float64, error) {
	return t.AccuracyOn(t.Truth)
}

// DefaultCleanAccuracy imputes missing numeric cells with the column mean
// and categorical cells with the column mode — the paper's lower bound
// ("the default and most commonly used way for cleaning missing values").
func DefaultCleanAccuracy(t *Task) (float64, error) {
	return t.AccuracyOn(table.ImputeDefaults(t.Dirty))
}

// BoostCleanResult reports the repair methods selected by BoostClean.
type BoostCleanResult struct {
	Accuracy float64
	// SelectedMethods lists the chosen global repair functions by index into
	// the candidate-method list (numeric candidate slot).
	SelectedMethods []int
	ValAccuracies   []float64
}

// BoostClean selects, from the predefined space of global repair functions
// (impute every numeric cell with its column's {min, p25, mean, p75, max};
// every categorical cell with its column's {top-1..top-4, other}), the
// ensemble maximizing validation accuracy — the §5.1 baseline ("it selects,
// from a predefined set of cleaning methods, the one that has the maximum
// validation accuracy on the validation set", with the same repair space and
// validation set as CPClean). rounds > 1 adds greedy forward selection with
// majority vote, a simplified stand-in for statistical boosting (see
// DESIGN.md §4).
func BoostClean(t *Task, rounds int) (*BoostCleanResult, error) {
	if rounds <= 0 {
		rounds = 1
	}
	const methods = 5
	// Materialize each method's cleaned training set.
	worlds := make([][][]float64, methods)
	valAcc := make([]float64, methods)
	labels := t.Dirty.Labels
	for m := 0; m < methods; m++ {
		choice := make([]int, t.Dirty.NumRows())
		for i := range choice {
			choice[i] = t.methodCandidate(i, m)
		}
		x, _ := t.WorldX(choice)
		worlds[m] = x
		va, err := t.ValAccuracyOnEncoded(x, labels)
		if err != nil {
			return nil, err
		}
		valAcc[m] = va
	}
	// Greedy forward selection of an ensemble (size ≤ rounds) by validation
	// accuracy of the majority vote.
	var selected []int
	for r := 0; r < rounds; r++ {
		bestM, bestAcc := -1, -1.0
		for m := 0; m < methods; m++ {
			trial := append(append([]int(nil), selected...), m)
			acc, err := t.ensembleValAccuracy(worlds, trial)
			if err != nil {
				return nil, err
			}
			if acc > bestAcc {
				bestM, bestAcc = m, acc
			}
		}
		// Stop if adding a member does not help.
		if len(selected) > 0 {
			cur, err := t.ensembleValAccuracy(worlds, selected)
			if err != nil {
				return nil, err
			}
			if bestAcc <= cur {
				break
			}
		}
		selected = append(selected, bestM)
	}
	acc, err := t.ensembleTestAccuracy(worlds, selected)
	if err != nil {
		return nil, err
	}
	return &BoostCleanResult{Accuracy: acc, SelectedMethods: selected, ValAccuracies: valAcc}, nil
}

// methodCandidate maps global repair method m to row i's candidate index:
// the candidate whose override cells all use slot m of their column pools.
func (t *Task) methodCandidate(i, m int) int {
	overrides := t.Repairs.Overrides[i]
	if len(overrides) == 1 {
		return 0
	}
	bestJ, bestScore := 0, -1
	for j, ov := range overrides {
		score := 0
		for ci, cell := range ov {
			if t.cellIsMethodSlot(ci, cell, m) {
				score++
			}
		}
		if score > bestScore {
			bestJ, bestScore = j, score
		}
	}
	return bestJ
}

// cellIsMethodSlot reports whether cell equals slot m of column ci's repair
// pool.
func (t *Task) cellIsMethodSlot(ci int, cell table.Cell, m int) bool {
	col := t.Dirty.Cols[ci]
	if col.Kind == table.Numeric {
		pool := repair.NumericCandidates(col)
		if m >= len(pool) {
			m = len(pool) - 1
		}
		return cell.Num == pool[m].Num
	}
	pool := repair.CategoricalCandidates(col, 4)
	if m >= len(pool) {
		m = len(pool) - 1
	}
	return cell.Cat == pool[m].Cat
}

// ensembleValAccuracy scores a majority-vote ensemble on the validation set.
func (t *Task) ensembleValAccuracy(worlds [][][]float64, members []int) (float64, error) {
	return t.ensembleAccuracy(worlds, members, t.ValX, t.Val.Labels)
}

// ensembleTestAccuracy scores a majority-vote ensemble on the test set.
func (t *Task) ensembleTestAccuracy(worlds [][][]float64, members []int) (float64, error) {
	return t.ensembleAccuracy(worlds, members, t.TestX, t.Test.Labels)
}

func (t *Task) ensembleAccuracy(worlds [][][]float64, members []int, qs [][]float64, y []int) (float64, error) {
	if len(members) == 0 {
		return 0, fmt.Errorf("cleaning: empty ensemble")
	}
	preds := make([][]int, len(members))
	for mi, m := range members {
		clf, err := newClassifier(t, worlds[m])
		if err != nil {
			return 0, err
		}
		preds[mi] = clf.PredictAll(qs)
	}
	correct := 0
	numLabels := t.Dirty.NumLabels
	for qi := range qs {
		tally := make([]int, numLabels)
		for mi := range members {
			tally[preds[mi][qi]]++
		}
		best, bestC := 0, -1
		for l, c := range tally {
			if c > bestC {
				best, bestC = l, c
			}
		}
		if best == y[qi] {
			correct++
		}
	}
	return float64(correct) / float64(len(qs)), nil
}

// HoloCleanResult reports the HoloClean-style imputation outcome.
type HoloCleanResult struct {
	Accuracy float64
	// Imputed counts the cells filled.
	Imputed int
}

// HoloCleanStyle imputes each missing cell with its most probable value
// given the row's observed attributes, estimated from the R most similar
// complete-in-that-column rows (distance-weighted vote / mean). It is a
// downstream-oblivious probabilistic cleaner standing in for HoloClean (see
// DESIGN.md §4): like HoloClean it picks the most likely fix per cell
// without regard to the classifier, and like in the paper it may close a
// negative gap.
func HoloCleanStyle(t *Task, neighbors int) (*HoloCleanResult, error) {
	if neighbors <= 0 {
		neighbors = 10
	}
	cleaned := t.Dirty.Clone()
	imputed := 0
	for ci, c := range cleaned.Cols {
		if c.MissingCount() == 0 {
			continue
		}
		for i := 0; i < c.Len(); i++ {
			if !c.Missing[i] {
				continue
			}
			v, ok := imputeCell(t.Dirty, i, ci, neighbors)
			if ok {
				if c.Kind == table.Numeric {
					c.Nums[i] = v.Num
				} else {
					c.Cats[i] = v.Cat
				}
				c.Missing[i] = false
				imputed++
			}
		}
	}
	// Any cell that could not be imputed falls back to defaults.
	cleaned = table.ImputeDefaults(cleaned)
	acc, err := t.AccuracyOn(cleaned)
	if err != nil {
		return nil, err
	}
	return &HoloCleanResult{Accuracy: acc, Imputed: imputed}, nil
}

// imputeCell estimates cell (row, col) from the `neighbors` nearest rows
// (by distance over mutually observed other attributes) that observe col.
func imputeCell(t *table.Table, row, col, neighbors int) (table.Cell, bool) {
	type scored struct {
		idx  int
		dist float64
	}
	var cands []scored
	for r := 0; r < t.NumRows(); r++ {
		if r == row || t.Cols[col].Missing[r] {
			continue
		}
		d, n := rowDistance(t, row, r, col)
		if n == 0 {
			continue
		}
		cands = append(cands, scored{idx: r, dist: d / float64(n)})
	}
	if len(cands) == 0 {
		return table.Cell{}, false
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].idx < cands[b].idx
	})
	if len(cands) > neighbors {
		cands = cands[:neighbors]
	}
	c := t.Cols[col]
	if c.Kind == table.Numeric {
		num, den := 0.0, 0.0
		for _, s := range cands {
			w := 1 / (1e-6 + s.dist)
			num += w * c.Nums[s.idx]
			den += w
		}
		return table.NumCell(num / den), true
	}
	votes := map[string]float64{}
	for _, s := range cands {
		votes[c.Cats[s.idx]] += 1 / (1e-6 + s.dist)
	}
	best, bestW := "", -1.0
	for v, w := range votes {
		if w > bestW || (w == bestW && v < best) {
			best, bestW = v, w
		}
	}
	return table.CatCell(best), true
}

// rowDistance sums normalized per-cell distances over attributes (≠ skipCol)
// observed in both rows; n is the number of comparable attributes.
func rowDistance(t *table.Table, a, b, skipCol int) (dist float64, n int) {
	for ci, c := range t.Cols {
		if ci == skipCol || c.Missing[a] || c.Missing[b] {
			continue
		}
		if c.Kind == table.Numeric {
			st := c.Stats()
			scale := st.Max - st.Min
			if scale <= 0 {
				scale = 1
			}
			dist += math.Abs(c.Nums[a]-c.Nums[b]) / scale
		} else if c.Cats[a] != c.Cats[b] {
			dist += 1
		}
		n++
	}
	return dist, n
}
