// Package cleaning implements the paper's "data cleaning for machine
// learning" application (§4): the CPClean algorithm (sequential information
// maximization over the Q2 counting query) and the baselines it is compared
// against in §5 — Ground Truth, Default Cleaning, BoostClean-style selection,
// HoloClean-style probabilistic imputation, and RandomClean.
package cleaning

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/repair"
	"repro/internal/table"
)

// Task bundles one cleaning problem: a dirty training set with ground truth,
// a complete validation set (used by CPClean and BoostClean), and a complete
// test set (used only for final reporting).
type Task struct {
	Dirty *table.Table
	Truth *table.Table
	Val   *table.Table
	Test  *table.Table

	K      int
	Kernel knn.Kernel

	// Encoder is fitted on the dirty training table and shared by every
	// method so accuracies are comparable.
	Encoder *table.Encoder
	// Repairs holds the candidate sets (the incomplete dataset) and oracle.
	Repairs *repair.Repairs

	ValX, TestX [][]float64
}

// NewTask validates inputs, fits the encoder, and generates candidate
// repairs.
func NewTask(dirty, truth, val, test *table.Table, k int, kernel knn.Kernel, opts repair.Options) (*Task, error) {
	if truth == nil {
		return nil, fmt.Errorf("cleaning: ground-truth table required (oracle simulation)")
	}
	if dirty.NumRows() != truth.NumRows() {
		return nil, fmt.Errorf("cleaning: dirty has %d rows, truth %d", dirty.NumRows(), truth.NumRows())
	}
	if k <= 0 || k > dirty.NumRows() {
		return nil, fmt.Errorf("cleaning: K=%d out of range for %d training rows", k, dirty.NumRows())
	}
	enc := table.FitEncoder(dirty, 0)
	reps, err := repair.Generate(dirty, truth, enc, opts)
	if err != nil {
		return nil, err
	}
	t := &Task{
		Dirty: dirty, Truth: truth, Val: val, Test: test,
		K: k, Kernel: kernel, Encoder: enc, Repairs: reps,
	}
	if val != nil {
		t.ValX = enc.EncodeAll(val)
	}
	if test != nil {
		t.TestX = enc.EncodeAll(test)
	}
	return t, nil
}

// AccuracyOn trains K-NN on the given complete training table and returns
// its accuracy on the task's test set.
func (t *Task) AccuracyOn(train *table.Table) (float64, error) {
	clf, err := knn.NewClassifier(t.K, t.Kernel, t.Encoder.EncodeAll(train), train.Labels, train.NumLabels)
	if err != nil {
		return 0, err
	}
	return clf.Accuracy(t.TestX, t.Test.Labels), nil
}

// AccuracyOnEncoded trains K-NN on pre-encoded features and labels.
func (t *Task) AccuracyOnEncoded(x [][]float64, y []int) (float64, error) {
	clf, err := knn.NewClassifier(t.K, t.Kernel, x, y, t.Dirty.NumLabels)
	if err != nil {
		return 0, err
	}
	return clf.Accuracy(t.TestX, t.Test.Labels), nil
}

// ValAccuracyOnEncoded is AccuracyOnEncoded against the validation set.
func (t *Task) ValAccuracyOnEncoded(x [][]float64, y []int) (float64, error) {
	clf, err := knn.NewClassifier(t.K, t.Kernel, x, y, t.Dirty.NumLabels)
	if err != nil {
		return 0, err
	}
	return clf.Accuracy(t.ValX, t.Val.Labels), nil
}

// DefaultCandidate returns, for each training row, the candidate index whose
// repairs are the column mean / mode — the possible world corresponding to
// Default Cleaning. For numeric columns the mean is candidate 2 of the
// five-point set {min, p25, mean, p75, max}; for categorical columns the
// mode is candidate 0. We locate them by matching override cells.
func (t *Task) DefaultCandidate(row int) int {
	overrides := t.Repairs.Overrides[row]
	if len(overrides) == 1 {
		return 0
	}
	bestJ, bestScore := 0, -1
	for j, ov := range overrides {
		score := 0
		for ci, cell := range ov {
			col := t.Dirty.Cols[ci]
			if cell.Kind == table.Numeric {
				if cell.Num == col.Stats().Mean {
					score++
				}
			} else {
				if cell.Cat == col.Mode() {
					score++
				}
			}
		}
		if score > bestScore {
			bestJ, bestScore = j, score
		}
	}
	return bestJ
}

// WorldX materializes the encoded feature matrix of the possible world
// selected by choice (choice[i] = candidate index of row i), alongside the
// labels.
func (t *Task) WorldX(choice []int) ([][]float64, []int) {
	return t.Repairs.Dataset.World(choice)
}

// OracleWorld returns the choice vector where every row takes the oracle's
// (closest-to-truth) candidate.
func (t *Task) OracleWorld() []int {
	out := make([]int, t.Dirty.NumRows())
	copy(out, t.Repairs.Truth)
	return out
}

// DefaultWorld returns the choice vector where every dirty row takes its
// mean/mode candidate.
func (t *Task) DefaultWorld() []int {
	out := make([]int, t.Dirty.NumRows())
	for i := range out {
		out[i] = t.DefaultCandidate(i)
	}
	return out
}

// Dataset returns the incomplete training dataset.
func (t *Task) Dataset() *dataset.Incomplete { return t.Repairs.Dataset }

// GapClosed computes the paper's headline metric:
//
//	gap closed by X = (acc(X) − acc(Default)) / (acc(GroundTruth) − acc(Default)).
//
// Degenerate zero gaps return 0.
func GapClosed(accX, accDefault, accTruth float64) float64 {
	den := accTruth - accDefault
	if den == 0 {
		return 0
	}
	return (accX - accDefault) / den
}
