package cleaning

import (
	"math"
	"testing"

	"repro/internal/knn"
	"repro/internal/repair"
	"repro/internal/table"
)

func TestBoostCleanSelectsBestMethodOnVal(t *testing.T) {
	task := makeTask(t, 60, 20, 40, 0.2, 101)
	res, err := BoostClean(task, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SelectedMethods) != 1 {
		t.Fatalf("selected %v", res.SelectedMethods)
	}
	// The chosen method must be the validation-accuracy argmax.
	best := 0
	for m, acc := range res.ValAccuracies {
		if acc > res.ValAccuracies[best] {
			best = m
		}
	}
	if res.ValAccuracies[res.SelectedMethods[0]] != res.ValAccuracies[best] {
		t.Fatalf("selected method %d (val %v), best is %d (val %v)",
			res.SelectedMethods[0], res.ValAccuracies[res.SelectedMethods[0]],
			best, res.ValAccuracies[best])
	}
}

func TestBoostCleanEnsembleNeverWorseOnVal(t *testing.T) {
	task := makeTask(t, 60, 20, 40, 0.2, 103)
	single, err := BoostClean(task, 1)
	if err != nil {
		t.Fatal(err)
	}
	ensemble, err := BoostClean(task, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ensemble.SelectedMethods) < 1 || len(ensemble.SelectedMethods) > 3 {
		t.Fatalf("ensemble size %d", len(ensemble.SelectedMethods))
	}
	// Greedy forward selection only adds members that improve validation
	// accuracy, so its first member equals the single best.
	if ensemble.SelectedMethods[0] != single.SelectedMethods[0] {
		t.Fatalf("ensemble starts with %d, single best is %d",
			ensemble.SelectedMethods[0], single.SelectedMethods[0])
	}
}

func TestMethodCandidateMapsSlots(t *testing.T) {
	// A table with one missing numeric cell: methodCandidate(m) must select
	// the candidate equal to pool slot m.
	truth := table.MustNew([]*table.Column{
		table.NewNumeric("x", []float64{0, 1, 2, 3, 4, 5, 6, 7}),
	}, []int{0, 1, 0, 1, 0, 1, 0, 1}, 2)
	dirty := truth.Clone()
	dirty.Cols[0].SetMissing(3)
	task, err := NewTask(dirty, truth, truth.Subset([]int{0, 1}), truth.Subset([]int{2, 3}),
		3, knn.NegEuclidean{}, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Numeric pool of observed column: min=0, p25, mean, p75, max=7.
	for m := 0; m < 5; m++ {
		j := task.methodCandidate(3, m)
		cell := task.Repairs.Overrides[3][j][0]
		if !task.cellIsMethodSlot(0, cell, m) {
			t.Fatalf("method %d mapped to cell %v", m, cell)
		}
	}
}

func TestHoloCleanImputesNumericFromNeighbors(t *testing.T) {
	// Two clusters: x correlates perfectly with y. A missing x must be
	// imputed near its cluster's x, not the global mean.
	n := 40
	xs := make([]float64, n)
	ys := make([]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			xs[i], ys[i], labels[i] = 0, 0, 0
		} else {
			xs[i], ys[i], labels[i] = 10, 10, 1
		}
	}
	truth := table.MustNew([]*table.Column{
		table.NewNumeric("x", xs),
		table.NewNumeric("y", ys),
	}, labels, 2)
	dirty := truth.Clone()
	dirty.Cols[0].SetMissing(1) // row 1 belongs to the x=10 cluster
	cell, ok := imputeCellForTest(dirty, 1, 0, 5)
	if !ok {
		t.Fatal("imputation failed")
	}
	if math.Abs(cell.Num-10) > 1e-9 {
		t.Fatalf("imputed %v, want 10 (cluster value, not the global mean 5)", cell.Num)
	}
}

func TestHoloCleanImputesCategoricalMode(t *testing.T) {
	cats := []string{"a", "a", "a", "b", "a", "a"}
	truth := table.MustNew([]*table.Column{
		table.NewNumeric("x", []float64{1, 1, 1, 1, 1, 1}),
		table.NewCategorical("c", cats),
	}, []int{0, 1, 0, 1, 0, 1}, 2)
	dirty := truth.Clone()
	dirty.Cols[1].SetMissing(0)
	cell, ok := imputeCellForTest(dirty, 0, 1, 5)
	if !ok || cell.Cat != "a" {
		t.Fatalf("imputed %v", cell)
	}
}

func TestGroundTruthBeatsOrMatchesDefaultOnAverage(t *testing.T) {
	wins := 0
	for seed := int64(0); seed < 4; seed++ {
		task := makeTask(t, 70, 15, 60, 0.25, 200+seed)
		gt, err := GroundTruthAccuracy(task)
		if err != nil {
			t.Fatal(err)
		}
		def, err := DefaultCleanAccuracy(task)
		if err != nil {
			t.Fatal(err)
		}
		if gt >= def {
			wins++
		}
	}
	if wins < 2 {
		t.Fatalf("ground truth beat default cleaning only %d/4 times", wins)
	}
}

// imputeCellForTest exposes the HoloClean-style cell imputer.
func imputeCellForTest(t *table.Table, row, col, neighbors int) (table.Cell, bool) {
	return imputeCell(t, row, col, neighbors)
}
