package cleaning

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/missing"
	"repro/internal/repair"
	"repro/internal/synth"
)

// makeTask builds a small end-to-end cleaning task from the Supreme
// generator with MNAR-injected missing values.
func makeTask(t testing.TB, n, valN, testN int, rate float64, seed int64) *Task {
	t.Helper()
	full := synth.Supreme(n+valN+testN, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	split, err := full.SplitRandom(rng, valN, testN)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	truth := split.Train
	dirty := truth.Clone()
	imp, err := missing.FeatureImportance(truth, 3, knn.NegEuclidean{}, rng, 0)
	if err != nil {
		t.Fatalf("importance: %v", err)
	}
	if err := missing.InjectMNARRows(dirty, rate, 0.25, imp, rng); err != nil {
		t.Fatalf("inject: %v", err)
	}
	task, err := NewTask(dirty, truth, split.Val, split.Test, 3, knn.NegEuclidean{}, repair.Options{})
	if err != nil {
		t.Fatalf("task: %v", err)
	}
	return task
}

func TestBaselinesRun(t *testing.T) {
	task := makeTask(t, 80, 20, 40, 0.1, 42)
	gt, err := GroundTruthAccuracy(task)
	if err != nil {
		t.Fatalf("ground truth: %v", err)
	}
	def, err := DefaultCleanAccuracy(task)
	if err != nil {
		t.Fatalf("default: %v", err)
	}
	if gt <= 0.5 {
		t.Fatalf("ground-truth accuracy %v suspiciously low", gt)
	}
	if def < 0 || def > 1 {
		t.Fatalf("default accuracy %v out of range", def)
	}
	bc, err := BoostClean(task, 1)
	if err != nil {
		t.Fatalf("boostclean: %v", err)
	}
	if bc.Accuracy < 0 || bc.Accuracy > 1 {
		t.Fatalf("boostclean accuracy %v out of range", bc.Accuracy)
	}
	if len(bc.SelectedMethods) == 0 {
		t.Fatal("boostclean selected no method")
	}
	hc, err := HoloCleanStyle(task, 10)
	if err != nil {
		t.Fatalf("holoclean: %v", err)
	}
	if hc.Imputed == 0 {
		t.Fatal("holoclean imputed nothing on a dirty table")
	}
}

func TestCPCleanConvergesAndMatchesGroundTruthValAccuracy(t *testing.T) {
	task := makeTask(t, 60, 15, 30, 0.12, 7)
	res, err := CPClean(task, DefaultOptions())
	if err != nil {
		t.Fatalf("cpclean: %v", err)
	}
	if res.AllCertainStep < 0 {
		t.Fatalf("CPClean did not certify all validation examples (cleaned %d rows)", len(res.Order))
	}
	// The paper's guarantee: once all validation examples are CP'ed, any
	// remaining possible world has the same *validation* accuracy as the
	// ground-truth world. Verify against the oracle world vs the current
	// mixed world.
	st, err := newRunState(task, Options{}.withDefaults())
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	for _, row := range res.Order {
		st.choice[row] = task.Repairs.Truth[row]
		st.cleaned[row] = true
	}
	// World A: cleaned rows → oracle, uncleaned → default candidate.
	xa, ya := task.WorldX(st.choice)
	accA, err := task.ValAccuracyOnEncoded(xa, ya)
	if err != nil {
		t.Fatalf("accuracy: %v", err)
	}
	// World B: every row → its *first* candidate (an arbitrary other world).
	choiceB := make([]int, task.Dirty.NumRows())
	for _, row := range res.Order {
		choiceB[row] = task.Repairs.Truth[row]
	}
	xb, yb := task.WorldX(choiceB)
	accB, err := task.ValAccuracyOnEncoded(xb, yb)
	if err != nil {
		t.Fatalf("accuracy: %v", err)
	}
	if accA != accB {
		t.Fatalf("validation accuracy differs across possible worlds after full certification: %v vs %v", accA, accB)
	}
	// Monotonicity of certification: ValCertainFrac never decreases.
	prev := -1.0
	for _, s := range res.Steps {
		if s.ValCertainFrac < prev-1e-12 {
			t.Fatalf("ValCertainFrac decreased: %v after %v", s.ValCertainFrac, prev)
		}
		prev = s.ValCertainFrac
	}
}

func TestRandomCleanRunsToBudget(t *testing.T) {
	task := makeTask(t, 60, 15, 30, 0.12, 9)
	res, err := RandomClean(task, Options{MaxSteps: 5, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatalf("randomclean: %v", err)
	}
	if len(res.Order) > 5 {
		t.Fatalf("budget exceeded: cleaned %d rows", len(res.Order))
	}
	seen := map[int]bool{}
	for _, r := range res.Order {
		if seen[r] {
			t.Fatalf("row %d cleaned twice", r)
		}
		seen[r] = true
		if !task.Dirty.RowIsDirty(r) {
			t.Fatalf("cleaned row %d is not dirty", r)
		}
	}
}

func TestCPCleanBeatsRandomOnCertificationRate(t *testing.T) {
	task := makeTask(t, 70, 20, 30, 0.15, 11)
	cp, err := CPClean(task, DefaultOptions())
	if err != nil {
		t.Fatalf("cpclean: %v", err)
	}
	if cp.AllCertainStep < 0 {
		t.Skip("instance not certifiable within dirty rows")
	}
	// Average steps for Random to certify everything, over a few seeds.
	totalRandom := 0
	runs := 3
	for s := 0; s < runs; s++ {
		r, err := RandomClean(task, Options{Rand: rand.New(rand.NewSource(int64(s)))})
		if err != nil {
			t.Fatalf("randomclean: %v", err)
		}
		steps := r.AllCertainStep
		if steps < 0 {
			steps = len(r.Order)
		}
		totalRandom += steps
	}
	avgRandom := float64(totalRandom) / float64(runs)
	if float64(cp.AllCertainStep) > avgRandom+1 {
		t.Fatalf("CPClean needed %d cleanings, random average %.1f — greedy selection is not helping",
			cp.AllCertainStep, avgRandom)
	}
}

func TestGapClosed(t *testing.T) {
	if g := GapClosed(0.9, 0.8, 1.0); g != 0.5 {
		t.Fatalf("GapClosed = %v, want 0.5", g)
	}
	if g := GapClosed(0.7, 0.8, 1.0); g < -0.5-1e-9 || g > -0.5+1e-9 {
		t.Fatalf("GapClosed negative case = %v, want -0.5", g)
	}
	if g := GapClosed(0.9, 0.8, 0.8); g != 0 {
		t.Fatalf("GapClosed degenerate = %v, want 0", g)
	}
}

func TestDefaultWorldMatchesDefaultCleaning(t *testing.T) {
	task := makeTask(t, 50, 10, 20, 0.1, 13)
	// The mean/mode candidate world must reproduce Default Cleaning's
	// accuracy exactly: mean and mode are members of the candidate pools.
	x, y := task.WorldX(task.DefaultWorld())
	accWorld, err := task.AccuracyOnEncoded(x, y)
	if err != nil {
		t.Fatalf("accuracy: %v", err)
	}
	accDefault, err := DefaultCleanAccuracy(task)
	if err != nil {
		t.Fatalf("default: %v", err)
	}
	if accWorld != accDefault {
		t.Fatalf("default-candidate world accuracy %v != default cleaning accuracy %v", accWorld, accDefault)
	}
}

func TestTableHasMissingAfterInjection(t *testing.T) {
	task := makeTask(t, 50, 10, 20, 0.15, 17)
	if len(task.Repairs.DirtyRows) == 0 {
		t.Fatal("no dirty rows after MNAR injection")
	}
	if task.Dirty.MissingCellRate() == 0 {
		t.Fatal("zero missing-cell rate after injection")
	}
}

// benchSelection runs a full multi-round CPClean on the Figure-9-style
// workload of TestCPCleanIncrementalMatchesFullRescore and reports the
// hypothesis Q2 scans of the run. Comparing the Incremental and FullRescore
// variants shows the ≥2× round-over-round scan reduction the shared
// selection engine's memo buys (the wall-clock difference tracks it).
func benchSelection(b *testing.B, opts Options) {
	task := makeTask(b, 90, 20, 30, 0.3, 31)
	b.ResetTimer()
	var examined int64
	for i := 0; i < b.N; i++ {
		res, err := CPClean(task, opts)
		if err != nil {
			b.Fatal(err)
		}
		examined = res.ExaminedHypotheses
	}
	b.ReportMetric(float64(examined), "hyp-scans/run")
}

func BenchmarkSelection_Incremental(b *testing.B) { benchSelection(b, DefaultOptions()) }
func BenchmarkSelection_FullRescore(b *testing.B) {
	benchSelection(b, Options{DisableIncremental: true})
}

// TestCertificationSoundness is the strongest end-to-end check of the whole
// stack: after CPClean certifies every validation example, *every* possible
// world of the partially-cleaned dataset must predict identically on every
// validation example (Definition 3). We verify on a sample of random worlds
// plus the two extreme corners.
func TestCertificationSoundness(t *testing.T) {
	task := makeTask(t, 50, 12, 30, 0.2, 301)
	res, err := CPClean(task, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.AllCertainStep < 0 {
		t.Skip("not certifiable within the dirty rows")
	}
	// Partially-cleaned dataset: cleaned rows pinned to the oracle.
	d := task.Dataset()
	for _, row := range res.Order {
		d = d.Pin(row, task.Repairs.Truth[row])
	}
	rng := rand.New(rand.NewSource(99))
	worlds := make([][]int, 0, 12)
	for w := 0; w < 10; w++ {
		worlds = append(worlds, sampleChoice(d, rng))
	}
	first := make([]int, d.N())
	last := make([]int, d.N())
	for i := range last {
		last[i] = d.Examples[i].M() - 1
	}
	worlds = append(worlds, first, last)

	for vi, vx := range task.ValX {
		ref := -1
		for wi, choice := range worlds {
			x, y := d.World(choice)
			clf, err := knn.NewClassifier(task.K, task.Kernel, x, y, d.NumLabels)
			if err != nil {
				t.Fatal(err)
			}
			p := clf.Predict(vx)
			if ref == -1 {
				ref = p
			} else if p != ref {
				t.Fatalf("validation point %d: world %d predicts %d, world 0 predicts %d — certification unsound",
					vi, wi, p, ref)
			}
		}
	}
}

func sampleChoice(d *dataset.Incomplete, rng *rand.Rand) []int {
	choice := make([]int, d.N())
	for i := range choice {
		choice[i] = rng.Intn(d.Examples[i].M())
	}
	return choice
}

// TestCPCleanIncrementalMatchesFullRescore pins down the acceptance property
// of the shared selection engine: the memoized (incremental) selector and
// full per-round rescoring produce the SAME cleaning order and per-step
// entropies, while the memo performs at most half the hypothesis Q2 scans on
// a Figure-9-style multi-round workload.
func TestCPCleanIncrementalMatchesFullRescore(t *testing.T) {
	task := makeTask(t, 90, 20, 30, 0.3, 31)
	inc, err := CPClean(task, DefaultOptions())
	if err != nil {
		t.Fatalf("incremental: %v", err)
	}
	full, err := CPClean(task, Options{DisableIncremental: true})
	if err != nil {
		t.Fatalf("full rescore: %v", err)
	}
	if len(inc.Order) != len(full.Order) {
		t.Fatalf("cleaning orders differ in length: %d vs %d", len(inc.Order), len(full.Order))
	}
	for i := range inc.Order {
		if inc.Order[i] != full.Order[i] {
			t.Fatalf("cleaning orders diverge at step %d: %v vs %v", i, inc.Order, full.Order)
		}
		if inc.Steps[i+1].Entropy != full.Steps[i+1].Entropy {
			t.Fatalf("step %d entropy diverged: %v vs %v", i, inc.Steps[i+1].Entropy, full.Steps[i+1].Entropy)
		}
	}
	if len(inc.Order) < 3 {
		t.Fatalf("workload certified in %d steps — too few rounds to exercise the memo", len(inc.Order))
	}
	if inc.ExaminedHypotheses*2 > full.ExaminedHypotheses {
		t.Fatalf("incremental selection examined %d hypotheses, full rescoring %d — want ≥2× reduction",
			inc.ExaminedHypotheses, full.ExaminedHypotheses)
	}
}

// TestCPCleanBatchMode checks BatchSize > 1 still certifies and never cleans
// a row twice.
func TestCPCleanBatchMode(t *testing.T) {
	task := makeTask(t, 50, 12, 30, 0.2, 303)
	res, err := CPClean(task, Options{BatchSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range res.Order {
		if seen[r] {
			t.Fatalf("row %d cleaned twice", r)
		}
		seen[r] = true
	}
	if res.AllCertainStep < 0 && len(res.Order) < len(task.Repairs.DirtyRows) {
		t.Fatal("batch run stopped early without certifying")
	}
}
