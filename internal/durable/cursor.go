package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is the WAL's read-side shipping surface: a resumable
// (segment, offset) Cursor over the record stream, a ReadFrom that scans any
// suffix of the log up to the durable frontier, a SyncedSignal for live
// tailing, and the frame reader/writer exported so the same CRC framing that
// protects segments on disk protects records shipped over a network stream.
//
// Two invariants make the cursor sound for replication:
//
//   - ReadFrom never reads past the fsynced frontier of the active segment,
//     so a record handed to a follower is always one the leader would also
//     recover after a crash — a follower can never be ahead of a restarted
//     leader.
//   - A cursor addresses a frame boundary. Offsets that land inside a frame
//     fail loudly instead of resynchronizing on garbage.

// Cursor addresses a record boundary in the WAL: the segment sequence number
// and the byte offset of the next frame within that segment. The zero Cursor
// means "before everything" — a follower with no state bootstraps from the
// leader's snapshot instead of a zero cursor.
type Cursor struct {
	Segment int   `json:"segment"`
	Offset  int64 `json:"offset"`
}

// IsZero reports whether c is the unset cursor.
func (c Cursor) IsZero() bool { return c.Segment == 0 && c.Offset == 0 }

// String renders the cursor in the "segment,offset" form ParseCursor reads —
// the wire syntax of the ship stream's from= parameter.
func (c Cursor) String() string { return fmt.Sprintf("%d,%d", c.Segment, c.Offset) }

// ParseCursor parses the "segment,offset" form produced by Cursor.String.
func ParseCursor(s string) (Cursor, error) {
	segStr, offStr, ok := strings.Cut(s, ",")
	seg, err1 := strconv.Atoi(segStr)
	off, err2 := strconv.ParseInt(offStr, 10, 64)
	if !ok || err1 != nil || err2 != nil {
		return Cursor{}, fmt.Errorf("durable: malformed cursor %q (want \"segment,offset\")", s)
	}
	c := Cursor{Segment: seg, Offset: off}
	if c.Segment < 0 || c.Offset < 0 {
		return Cursor{}, fmt.Errorf("durable: negative cursor %q", s)
	}
	return c, nil
}

// SegmentStart returns the cursor addressing the first record of segment
// seq — just past the magic header. It is how a reader positions itself at
// the top of a segment without knowing the header length.
func SegmentStart(seq int) Cursor {
	return Cursor{Segment: seq, Offset: int64(len(segMagic))}
}

// Before reports whether c addresses an earlier log position than o.
func (c Cursor) Before(o Cursor) bool {
	if c.Segment != o.Segment {
		return c.Segment < o.Segment
	}
	return c.Offset < o.Offset
}

// ErrCompacted reports a cursor that predates the oldest on-disk segment:
// the records it addresses were folded into a snapshot and deleted, so the
// reader must re-bootstrap from the snapshot instead of resuming.
var ErrCompacted = errors.New("durable: cursor predates the oldest on-disk segment")

// ErrCorruptFrame reports a frame whose checksum or length field is wrong —
// a torn or bit-flipped record. Readers must refuse the frame and everything
// after it rather than resynchronize.
var ErrCorruptFrame = errors.New("durable: corrupt frame")

// WriteFrame writes one CRC-framed payload to w — the exact
// [length][CRC-32C][payload] frame the WAL uses on disk, reusable for
// shipping records over a network stream with the same torn/corrupt
// detection on the receiving end.
func WriteFrame(w io.Writer, payload []byte) error {
	var frame [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(frame[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame written by WriteFrame. It returns io.EOF at a
// clean frame boundary, an error wrapping io.ErrUnexpectedEOF for a torn
// frame, and one wrapping ErrCorruptFrame for a checksum mismatch or an
// implausible length field. Only a nil error means the payload is intact.
func ReadFrame(r io.Reader) ([]byte, error) {
	var frame [frameHeaderLen]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return nil, err // io.EOF: clean boundary; io.ErrUnexpectedEOF: torn header
	}
	length := binary.LittleEndian.Uint32(frame[0:4])
	sum := binary.LittleEndian.Uint32(frame[4:8])
	if length > maxRecordBytes {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrCorruptFrame, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: record checksum mismatch", ErrCorruptFrame)
	}
	return payload, nil
}

// signalSyncedLocked wakes everything parked on SyncedSignal. Caller holds
// st.mu.
func (st *Store) signalSyncedLocked() {
	if st.syncedCh != nil {
		close(st.syncedCh)
		st.syncedCh = nil
	}
}

// SyncedSignal returns a channel closed the next time the durable frontier
// moves (an fsync lands), the store is poisoned, or it closes. Take the
// channel before calling ReadFrom, then wait on it after catching up — that
// order guarantees no frontier advance between the read and the wait is
// missed.
func (st *Store) SyncedSignal() <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || st.syncErr != nil {
		done := make(chan struct{})
		close(done)
		return done
	}
	if st.syncedCh == nil {
		st.syncedCh = make(chan struct{})
	}
	return st.syncedCh
}

// SyncedTip reports the durable frontier — the cursor just past the last
// fsynced record — and that record's global ordinal (0 when the log is
// empty). The difference between the tip ordinal and a shipped record's
// ordinal is a follower's exact replication lag in records.
func (st *Store) SyncedTip() (Cursor, int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return Cursor{Segment: st.activeSeq, Offset: st.syncedLen}, st.activeStart + st.syncedRecs - 1
}

// FirstCursor returns the position of the first record still on disk — where
// a reader with no cursor of its own starts after applying the newest
// snapshot (see LatestSnapshot).
func (st *Store) FirstCursor() Cursor {
	st.mu.Lock()
	defer st.mu.Unlock()
	oldest := st.activeSeq
	//cpvet:allow maporder -- min over keys is iteration-order independent
	for seq := range st.sealedStart {
		if seq < oldest {
			oldest = seq
		}
	}
	return Cursor{Segment: oldest, Offset: int64(len(segMagic))}
}

// ReadFrom scans the record stream starting at cursor from, calling fn once
// per intact frame with the raw payload bytes, the record's global ordinal,
// and the cursor addressing the position just after it (what a follower
// resumes from once the record is applied). It reads sealed segments to
// their end and the active segment up to the durable frontier, then returns
// the cursor to resume from — combine with SyncedSignal to tail live.
//
// Errors: ErrCompacted when from predates the oldest on-disk segment (the
// caller re-bootstraps from a snapshot), ErrClosed after Close, fn's error
// verbatim, and a hard error for a cursor inside a frame or corruption below
// the durable frontier. A corrupt sealed segment is skipped past with a
// warning — exactly what replay at startup does, so a shipped stream and a
// local recovery converge on the same records.
func (st *Store) ReadFrom(from Cursor, fn func(payload []byte, ord int64, next Cursor) error) (Cursor, error) {
	c := from
	if c.Offset < int64(len(segMagic)) {
		c.Offset = int64(len(segMagic))
	}
	for {
		st.mu.Lock()
		if st.closed {
			st.mu.Unlock()
			return c, ErrClosed
		}
		var (
			startOrd int64
			sealed   bool
			limit    int64
		)
		switch {
		case c.Segment == st.activeSeq:
			startOrd, limit = st.activeStart, st.syncedLen
			if c.Offset >= limit {
				// At (or somehow past) the durable frontier: caught up.
				st.mu.Unlock()
				return c, nil
			}
		case c.Segment > st.activeSeq:
			st.mu.Unlock()
			return c, fmt.Errorf("durable: cursor %s is beyond the active segment %d", c, st.activeSeq)
		default:
			s, ok := st.sealedStart[c.Segment]
			if !ok {
				st.mu.Unlock()
				return c, ErrCompacted
			}
			startOrd, sealed, limit = s, true, -1
		}
		st.mu.Unlock()

		next, err := st.readSegmentFrom(c, sealed, limit, startOrd, fn)
		if err != nil || !sealed {
			return next, err
		}
		c = next // a sealed segment was exhausted; continue into the next one
	}
}

// readSegmentFrom scans one segment from cursor c. For a sealed segment it
// reads to EOF and returns the cursor at the start of the next segment; for
// the active segment it reads exactly limit bytes (the durable frontier
// captured under st.mu) and returns the cursor there.
func (st *Store) readSegmentFrom(c Cursor, sealed bool, limit, startOrd int64, fn func(payload []byte, ord int64, next Cursor) error) (Cursor, error) {
	nextSeg := Cursor{Segment: c.Segment + 1, Offset: int64(len(segMagic))}
	f, err := os.Open(filepath.Join(st.dir, segName(c.Segment)))
	if err != nil {
		if sealed && os.IsNotExist(err) {
			return c, ErrCompacted // deleted by a racing Compact
		}
		return c, fmt.Errorf("durable: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only; nothing to lose

	header := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, header); err != nil || string(header) != segMagic {
		if sealed {
			// Replay skipped this segment wholesale at startup; mirror it.
			return nextSeg, nil
		}
		return c, fmt.Errorf("durable: active segment %s has a bad header", segName(c.Segment))
	}
	var src io.Reader = f
	if !sealed {
		src = io.LimitReader(f, limit-int64(len(segMagic)))
	}
	r := bufio.NewReader(src)
	off := int64(len(segMagic))
	ord := startOrd
	for {
		payload, err := ReadFrame(r)
		if err == io.EOF {
			if sealed {
				return nextSeg, nil
			}
			return Cursor{Segment: c.Segment, Offset: off}, nil
		}
		if err != nil {
			if sealed && (errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorruptFrame)) {
				// Replay logged and skipped the rest of this segment at
				// startup; mirror that so shipped state converges with
				// recovered state.
				st.opts.Logf("durable: reading %s at offset %d: %s; skipping the rest (as replay did)",
					segName(c.Segment), off, frameErrReason(err))
				return nextSeg, nil
			}
			// Below the durable frontier of the active segment nothing may be
			// torn: this is real corruption, not a benign tail.
			return Cursor{Segment: c.Segment, Offset: off}, fmt.Errorf("durable: reading %s at offset %d: %w", segName(c.Segment), off, err)
		}
		end := off + frameHeaderLen + int64(len(payload))
		if off < c.Offset && end > c.Offset {
			return Cursor{Segment: c.Segment, Offset: off}, fmt.Errorf("durable: cursor %s does not address a record boundary", c)
		}
		if off >= c.Offset {
			if err := fn(payload, ord, Cursor{Segment: c.Segment, Offset: end}); err != nil {
				return Cursor{Segment: c.Segment, Offset: off}, err
			}
		}
		off = end
		ord++
	}
}

// LatestSnapshot re-reads the newest intact snapshot from disk: its payload
// and the segment it covers through (a bootstrapping follower resumes the
// stream at segment seq+1). ok is false when no usable snapshot exists.
func (st *Store) LatestSnapshot() (payload []byte, seq int, ok bool, err error) {
	_, snaps, err := scanDir(st.dir)
	if err != nil {
		return nil, 0, false, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		b, rerr := readSnapshot(filepath.Join(st.dir, snapName(snaps[i])))
		if rerr == nil {
			return b, snaps[i], true, nil
		}
		st.opts.Logf("durable: snapshot %s unreadable (%v); trying an older one", snapName(snaps[i]), rerr)
	}
	return nil, 0, false, nil
}
