package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestCursorStringParseRoundTrip(t *testing.T) {
	for _, c := range []Cursor{{}, {Segment: 1, Offset: 8}, {Segment: 42, Offset: 123456789}} {
		got, err := ParseCursor(c.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("round trip %v -> %q -> %v", c, c.String(), got)
		}
	}
	for _, bad := range []string{"", "1", "1,2,3junk", "x,y", "-1,8", "1,-8"} {
		if _, err := ParseCursor(bad); err == nil {
			t.Fatalf("ParseCursor(%q) accepted", bad)
		}
	}
}

// readAll drains ReadFrom from the given cursor, returning payload indices
// (the i field appendN writes), ordinals, and the resume cursor after each
// record.
func readAll(t *testing.T, st *Store, from Cursor) (idx []int, ords []int64, nexts []Cursor, end Cursor) {
	t.Helper()
	end, err := st.ReadFrom(from, func(payload []byte, ord int64, next Cursor) error {
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return err
		}
		var p struct{ I int }
		if err := json.Unmarshal(r.Data, &p); err != nil {
			return err
		}
		idx = append(idx, p.I)
		ords = append(ords, ord)
		nexts = append(nexts, next)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return idx, ords, nexts, end
}

// TestReadFromEverySuffix pins the resumability contract behind WAL
// shipping: reading from the cursor returned alongside record i yields
// exactly records i+1..n with continuous global ordinals — for every i.
func TestReadFromEverySuffix(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	defer st.Close()
	const n = 9
	appendN(t, st, n)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	idx, ords, nexts, end := readAll(t, st, SegmentStart(1))
	if len(idx) != n {
		t.Fatalf("read %d records, want %d", len(idx), n)
	}
	for i := 0; i < n; i++ {
		if idx[i] != i || ords[i] != int64(i+1) {
			t.Fatalf("record %d: payload i=%d ord=%d", i, idx[i], ords[i])
		}
	}
	tip, tipOrd := st.SyncedTip()
	if tipOrd != n {
		t.Fatalf("tip ordinal %d, want %d", tipOrd, n)
	}
	if end != tip || nexts[n-1] != tip {
		t.Fatalf("final cursors %v / %v, want the durable tip %v", end, nexts[n-1], tip)
	}
	for i := 0; i < n; i++ {
		suffix, subOrds, _, _ := readAll(t, st, nexts[i])
		if len(suffix) != n-1-i {
			t.Fatalf("resume after record %d: %d records, want %d", i, len(suffix), n-1-i)
		}
		for j, v := range suffix {
			if v != i+1+j || subOrds[j] != int64(i+2+j) {
				t.Fatalf("resume after record %d: position %d has payload %d ord %d", i, j, v, subOrds[j])
			}
		}
	}
}

// TestReadFromMidFrameCursor pins the boundary invariant: an offset inside a
// frame fails loudly instead of resynchronizing on garbage.
func TestReadFromMidFrameCursor(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	defer st.Close()
	appendN(t, st, 3)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	from := SegmentStart(1)
	from.Offset += 3 // inside the first frame's header
	_, err := st.ReadFrom(from, func([]byte, int64, Cursor) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "record boundary") {
		t.Fatalf("mid-frame cursor: got %v, want a record-boundary error", err)
	}
}

// TestReadFromStopsAtDurableFrontier pins the invariant that makes shipping
// crash-consistent: a record a reader is handed is always one the writer
// would also recover after a crash, i.e. ReadFrom never surfaces appends
// that have not been fsynced yet.
func TestReadFromStopsAtDurableFrontier(t *testing.T) {
	st := openT(t, t.TempDir(), Options{SyncInterval: time.Hour})
	defer st.Close()
	appendN(t, st, 4) // buffered; the hour-long group-commit window never fires
	idx, _, _, _ := readAll(t, st, SegmentStart(1))
	if len(idx) != 0 {
		t.Fatalf("read %d records past the durable frontier", len(idx))
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if idx, _, _, _ = readAll(t, st, SegmentStart(1)); len(idx) != 4 {
		t.Fatalf("read %d records after sync, want 4", len(idx))
	}
}

// TestSyncedSignalTail pins the live-tail handshake: take the signal, catch
// up, wait — an fsync landing afterwards closes the channel and the next
// ReadFrom returns the new records.
func TestSyncedSignalTail(t *testing.T) {
	st := openT(t, t.TempDir(), Options{SyncInterval: time.Millisecond})
	defer st.Close()
	appendN(t, st, 2)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	_, _, _, end := readAll(t, st, SegmentStart(1))
	signal := st.SyncedSignal()
	go func() {
		_ = st.AppendSync(rec("e", "step", map[string]int{"i": 2}))
	}()
	select {
	case <-signal:
	case <-time.After(10 * time.Second):
		t.Fatal("frontier advance never signaled")
	}
	idx, _, _, _ := readAll(t, st, end)
	if len(idx) != 1 || idx[0] != 2 {
		t.Fatalf("tail read %v, want the one new record", idx)
	}
}

// TestReadFromCompacted pins the re-bootstrap contract: a cursor into a
// segment that compaction folded into a snapshot answers ErrCompacted, the
// snapshot is re-readable via LatestSnapshot with the segment it covers, and
// global ordinals keep counting across the compaction.
func TestReadFromCompacted(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	defer st.Close()
	if _, _, ok, err := st.LatestSnapshot(); err != nil || ok {
		t.Fatalf("fresh store: snapshot ok=%v err=%v", ok, err)
	}
	appendN(t, st, 5)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	state := []byte(`{"state":"everything-through-segment-1"}`)
	if err := st.Compact(func() ([]byte, error) { return state, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadFrom(SegmentStart(1), func([]byte, int64, Cursor) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("compacted cursor: got %v, want ErrCompacted", err)
	}
	payload, seq, ok, err := st.LatestSnapshot()
	if err != nil || !ok || seq != 1 || string(payload) != string(state) {
		t.Fatalf("LatestSnapshot = (%q, %d, %v, %v)", payload, seq, ok, err)
	}
	if first := st.FirstCursor(); first != SegmentStart(2) {
		t.Fatalf("FirstCursor after compaction = %v, want %v", first, SegmentStart(2))
	}
	for i := 5; i < 7; i++ {
		if err := st.Append(rec("e", "step", map[string]int{"i": i})); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	idx, ords, _, _ := readAll(t, st, st.FirstCursor())
	if fmt.Sprint(idx) != "[5 6]" || fmt.Sprint(ords) != "[6 7]" {
		t.Fatalf("post-compaction read idx=%v ords=%v, want [5 6] with ordinals [6 7]", idx, ords)
	}
}
