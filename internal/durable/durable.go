// Package durable is the crash-safe persistence layer under the serving
// registry: an append-only, CRC-framed write-ahead log plus snapshot store.
// It journals opaque per-entity records (dataset registrations, clean-session
// events) and rebuilds the exact record stream after a process restart —
// including a restart caused by a crash mid-write, where the torn final
// record is detected by its checksum and cleanly truncated instead of
// poisoning startup.
//
// The package is deliberately schema-free: a Record is (entity id, type,
// JSON payload) and the owner decides what the payloads mean and how to fold
// them into state. That keeps the interface node-agnostic — the same
// entity-id → record-stream contract works whether one process owns every
// entity or a sharded deployment hands entity streams between nodes.
//
// # On-disk layout
//
// A store directory holds numbered WAL segments and at most one live
// snapshot:
//
//	wal-00000001.log    CRC-framed records, oldest surviving segment
//	wal-00000002.log    ... the highest-numbered segment is the active one
//	snap-00000001.snap  state as of the end of segment 1 (owner-defined bytes)
//
// Every segment starts with an 8-byte magic header; each record is framed as
//
//	[4-byte little-endian payload length][4-byte CRC-32C of payload][payload]
//
// Snapshot files carry their own magic, length, and CRC, and are written to
// a temp file and renamed into place, so a crash mid-snapshot leaves the
// previous snapshot (or none) intact.
//
// # Durability model
//
// Append buffers the record and returns; a background flusher fsyncs the
// active segment every SyncInterval, so many appends share one fsync (group
// commit). AppendSync additionally blocks until the record's bytes are on
// disk — use it for acknowledgements the client must be able to rely on
// across a crash. Records lost in the un-synced window are exactly the
// freshest tail; an owner whose replay is deterministic (CPClean's is)
// re-executes that tail identically, so batching costs a bounded amount of
// redone work, never correctness.
//
// # Recovery
//
// Open loads the newest intact snapshot (a corrupt one falls back to its
// predecessor), then replays every later segment in order. A record that
// fails its CRC — a torn write from a crash mid-append or mid-fsync — ends
// replay of that segment: if it is the active (final) segment the file is
// truncated back to the last good record and appends continue from there;
// a corrupt interior segment is reported via Logf and the rest of that
// segment skipped. Open never fails because of a torn tail.
package durable

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Record is one journaled event of one entity.
type Record struct {
	// Entity identifies whose stream this record belongs to, e.g.
	// "dataset/iris" or "session/cs_0a1b...". Replay preserves the global
	// append order, which also orders every entity's stream.
	Entity string `json:"entity"`
	// Type names the event within the entity's stream ("register", "step",
	// "release", ...). The store does not interpret it.
	Type string `json:"type"`
	// Data is the owner-defined payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// Options tunes a store.
type Options struct {
	// SyncInterval is the group-commit window: the flusher fsyncs the active
	// segment this often while appends are outstanding. 0 = DefaultSyncInterval;
	// negative = fsync synchronously on every append (no batching).
	SyncInterval time.Duration
	// Logf receives recovery warnings (torn tails, skipped segments) and
	// background-maintenance errors. Defaults to log.Printf.
	Logf func(format string, args ...interface{})
}

const (
	// DefaultSyncInterval is the default group-commit fsync window.
	DefaultSyncInterval = 5 * time.Millisecond

	segMagic  = "CPWALv1\n"
	snapMagic = "CPSNAP1\n"

	frameHeaderLen = 8 // 4-byte length + 4-byte CRC-32C

	// maxRecordBytes guards replay against allocating for a garbage length
	// field that happens to pass no other sanity check.
	maxRecordBytes = 256 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed marks operations on a closed store.
var ErrClosed = errors.New("durable: store is closed")

// Store is an open WAL+snapshot directory. Append/AppendSync/Sync/Compact
// are safe for concurrent use; the store assumes it is the directory's only
// writer (run one process per data directory).
type Store struct {
	dir  string
	opts Options

	snapshot []byte   // newest intact snapshot payload, nil if none
	records  []Record // records after the snapshot, in append order

	mu        sync.Mutex
	cond      *sync.Cond // signals syncedSeq advancing
	f         *os.File   // active segment
	w         *bufio.Writer
	activeSeq int    // active segment number
	activeLen int64  // bytes written to the active segment (incl. header)
	appendSeq uint64 // records appended since open
	syncedSeq uint64 // records known durable
	syncErr   error  // sticky: a failed fsync poisons the store
	closed    bool

	// Cursor/ordinal bookkeeping for WAL shipping (see cursor.go). All of it
	// is mutated under mu once the store is open; Open and startSegment write
	// it before the store is shared.
	activeStart int64         // global ordinal of the active segment's first record
	activeRecs  int64         // records written to the active segment
	syncedLen   int64         // bytes of the active segment known durable
	syncedRecs  int64         // records of the active segment known durable
	sealedStart map[int]int64 // first global ordinal per sealed on-disk segment
	sealedRecs  map[int]int64 // record count per sealed on-disk segment
	syncedCh    chan struct{} // closed and replaced whenever the durable frontier moves

	// Observability counters (guarded by mu; see Metrics).
	fsyncCount    int64
	fsyncTotal    time.Duration
	fsyncLast     time.Duration
	snapsWritten  int64
	replayDur     time.Duration
	replayRecords int64

	flusherStop chan struct{}
	flusherDone chan struct{}
}

// Open opens (creating if needed) the store directory, recovers the newest
// intact snapshot plus every record appended after it, truncates any torn
// tail left by a crash, and readies the highest-numbered segment for
// appends. The recovered state is exposed via Snapshot and Records.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SyncInterval == 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	st := &Store{
		dir:         dir,
		opts:        opts,
		sealedStart: make(map[int]int64),
		sealedRecs:  make(map[int]int64),
	}
	st.cond = sync.NewCond(&st.mu)
	replayStart := time.Now() //cpvet:allow nowalltime -- replay-duration metric only, never persisted

	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	segSet := make(map[int]bool, len(segs))
	for _, q := range segs {
		segSet[q] = true
	}
	hasRange := func(lo, hi int) bool {
		for q := lo; q <= hi; q++ {
			if !segSet[q] {
				return false
			}
		}
		return true
	}
	// Pick the newest readable snapshot. An unreadable snapshot is only
	// skippable when the segments it condensed still exist (Compact failed
	// before deleting them) — otherwise skipping it would silently discard
	// every record it held, so starting up at all would be data loss dressed
	// as success. Refuse instead and let the operator restore the file, or
	// delete it to explicitly accept the loss.
	snapSeq := 0
	for i := len(snaps) - 1; i >= 0; i-- {
		seq := snaps[i]
		b, err := readSnapshot(filepath.Join(dir, snapName(seq)))
		if err == nil {
			st.snapshot = b
			snapSeq = seq
			break
		}
		prev := 0
		if i > 0 {
			prev = snaps[i-1]
		}
		if !hasRange(prev+1, seq) {
			return nil, fmt.Errorf(
				"durable: snapshot %s is unreadable (%v) and the segments it condensed are gone; refusing to start with silent data loss — restore the file, or delete it to accept the loss",
				snapName(seq), err)
		}
		opts.Logf("durable: snapshot %s unreadable (%v); its segments survive, recovering from them instead", snapName(seq), err)
	}
	// The segments to replay must be gapless: a missing middle segment means
	// records vanished outside any journaled path. When a snapshot was
	// chosen, segment snapSeq+1 must exist too — Compact creates it before
	// writing the snapshot, so its absence is equally a loss. (With no
	// usable snapshot the first surviving segment is accepted as-is: that is
	// the operator's explicit delete-to-accept-loss path.)
	prev := -1
	for _, seq := range segs {
		if seq <= snapSeq {
			continue
		}
		switch {
		case prev == -1 && st.snapshot != nil && seq != snapSeq+1:
			return nil, fmt.Errorf("durable: %s chosen but %s is missing; refusing to replay around missing records", snapName(snapSeq), segName(snapSeq+1))
		case prev != -1 && seq != prev+1:
			return nil, fmt.Errorf("durable: WAL segment gap: %s is followed by %s; refusing to replay around missing records", segName(prev), segName(seq))
		}
		prev = seq
	}
	// Global record ordinals (1-based, counted from the first record after
	// the snapshot) let a shipping cursor report exact replication lag.
	ord := int64(1)
	for _, seq := range segs {
		if seq <= snapSeq {
			// Fully covered by the snapshot; normally deleted by Compact, but a
			// crash between snapshot write and segment deletion leaves them.
			continue
		}
		final := seq == segs[len(segs)-1]
		frames, err := st.replaySegment(seq, final)
		if err != nil {
			return nil, err
		}
		if final && st.f != nil && st.activeSeq == seq {
			st.activeStart = ord
			st.activeRecs = frames
			st.syncedRecs = frames
			st.syncedLen = st.activeLen
		} else {
			st.sealedStart[seq] = ord
			st.sealedRecs[seq] = frames
		}
		ord += frames
	}

	if len(segs) == 0 || segs[len(segs)-1] <= snapSeq {
		// Nothing to append to: start a fresh segment after the snapshot.
		if err := st.startSegment(snapSeq + 1); err != nil {
			return nil, err
		}
		st.activeStart = ord
	}
	st.replayDur = time.Since(replayStart) //cpvet:allow nowalltime -- replay-duration metric only, never persisted
	st.replayRecords = int64(len(st.records))
	st.flusherStop = make(chan struct{})
	st.flusherDone = make(chan struct{})
	go st.flusher()
	return st, nil
}

// Snapshot returns the newest intact snapshot payload recovered by Open, or
// nil if none was found. The caller must treat it as read-only.
func (st *Store) Snapshot() []byte { return st.snapshot }

// Records returns the records recovered by Open, in append order, starting
// after the state captured by Snapshot. (Overlap is possible when a crash
// interrupted a Compact: apply records idempotently.)
func (st *Store) Records() []Record { return st.records }

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// ActiveSegmentBytes reports the size of the active segment — the owner's
// rotation/compaction trigger.
func (st *Store) ActiveSegmentBytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.activeLen
}

// Metrics is the store's observability snapshot — what an operator watches
// to see group-commit health (fsync cadence and latency), compaction
// progress (segments and snapshots on disk), and how expensive the last
// restart was (replay duration and record count).
type Metrics struct {
	// FsyncCount counts record fsyncs since open; FsyncTotalMicros and
	// FsyncLastMicros are their cumulative and most recent latency.
	FsyncCount       int64 `json:"fsync_count"`
	FsyncTotalMicros int64 `json:"fsync_total_micros"`
	FsyncLastMicros  int64 `json:"fsync_last_micros"`
	// AppendedRecords / SyncedRecords count records buffered and known
	// durable; the difference is the group-commit window's exposure.
	AppendedRecords uint64 `json:"appended_records"`
	SyncedRecords   uint64 `json:"synced_records"`
	// ActiveSegment is the live segment's sequence number and
	// ActiveSegmentBytes its current size; SegmentCount and SnapshotCount
	// are the files on disk right now (compaction shrinks both).
	ActiveSegment      int   `json:"active_segment"`
	ActiveSegmentBytes int64 `json:"active_segment_bytes"`
	SegmentCount       int   `json:"segment_count"`
	SnapshotCount      int   `json:"snapshot_count"`
	// SnapshotsWritten counts compactions completed since open.
	SnapshotsWritten int64 `json:"snapshots_written"`
	// LastReplayMicros is how long Open spent recovering the directory, and
	// LastReplayRecords how many records it replayed after the snapshot.
	LastReplayMicros  int64 `json:"last_replay_micros"`
	LastReplayRecords int64 `json:"last_replay_records"`
}

// Metrics snapshots the store's counters. It lists the directory to report
// live segment/snapshot counts — cheap, but not free; meant for stats
// endpoints, not hot paths.
func (st *Store) Metrics() Metrics {
	segs, snaps, err := scanDir(st.dir)
	if err != nil {
		segs, snaps = nil, nil // directory unreadable: report counters only
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return Metrics{
		FsyncCount:         st.fsyncCount,
		FsyncTotalMicros:   st.fsyncTotal.Microseconds(),
		FsyncLastMicros:    st.fsyncLast.Microseconds(),
		AppendedRecords:    st.appendSeq,
		SyncedRecords:      st.syncedSeq,
		ActiveSegment:      st.activeSeq,
		ActiveSegmentBytes: st.activeLen,
		SegmentCount:       len(segs),
		SnapshotCount:      len(snaps),
		SnapshotsWritten:   st.snapsWritten,
		LastReplayMicros:   st.replayDur.Microseconds(),
		LastReplayRecords:  st.replayRecords,
	}
}

// scanDir lists segment and snapshot sequence numbers in ascending order.
func scanDir(dir string) (segs, snaps []int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	for _, e := range entries {
		var seq int
		// Sscanf reports a converted %08d even when the literal suffix then
		// fails to match, so round-trip the name to keep strays (leftover
		// snap-*.tmp files, backups) out of the sequence lists.
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.log", &seq); n == 1 && segName(seq) == e.Name() {
			segs = append(segs, seq)
		} else if n, _ := fmt.Sscanf(e.Name(), "snap-%08d.snap", &seq); n == 1 && snapName(seq) == e.Name() {
			snaps = append(snaps, seq)
		}
	}
	sort.Ints(segs)
	sort.Ints(snaps)
	return segs, snaps, nil
}

func segName(seq int) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(seq int) string { return fmt.Sprintf("snap-%08d.snap", seq) }

// replaySegment reads one segment into st.records and returns how many
// intact frames it holds (the segment's record count for cursor ordinals —
// undecodable-but-intact frames included, since they occupy log positions).
// For the final (active) segment a corrupt or torn record truncates the file
// back to the last good offset and the segment stays open for appends; for
// interior segments the remainder is skipped with a warning.
//
//cpvet:allow walframe -- sanctioned helper: the only truncation of a torn tail
func (st *Store) replaySegment(seq int, final bool) (int64, error) {
	path := filepath.Join(st.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	header := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, header); err != nil || string(header) != segMagic {
		_ = f.Close() // nothing was written; the skip/recreate path below is the answer
		if !final {
			st.opts.Logf("durable: segment %s has a bad header; skipping it", segName(seq))
			return 0, nil
		}
		// An empty or garbage active segment (crash during creation): recreate.
		st.opts.Logf("durable: active segment %s has a bad header; recreating it", segName(seq))
		return 0, st.startSegment(seq)
	}
	r := bufio.NewReader(f)
	good := int64(len(segMagic)) // end offset of the last intact record
	frames := int64(0)
	for {
		payload, err := ReadFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorruptFrame) {
				st.truncateWarn(seq, good, frameErrReason(err))
				break
			}
			_ = f.Close() // the read error is the one worth reporting
			return 0, fmt.Errorf("durable: reading %s: %w", segName(seq), err)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The frame was intact, so this is not a torn write; still, one
			// undecodable record must not take down startup.
			st.opts.Logf("durable: %s: skipping undecodable record at offset %d: %v", segName(seq), good, err)
		} else {
			st.records = append(st.records, rec)
		}
		good += frameHeaderLen + int64(len(payload))
		frames++
	}
	if !final {
		if err := f.Close(); err != nil {
			return 0, fmt.Errorf("durable: closing %s: %w", segName(seq), err)
		}
		return frames, nil
	}
	// Adopt as the active segment: drop anything after the last good record
	// so new appends land on a clean tail.
	if err := f.Truncate(good); err != nil {
		_ = f.Close() // the truncate error is the one worth reporting
		return 0, fmt.Errorf("durable: truncating %s: %w", segName(seq), err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		_ = f.Close() // the seek error is the one worth reporting
		return 0, fmt.Errorf("durable: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the fsync error is the one worth reporting
		return 0, fmt.Errorf("durable: %w", err)
	}
	st.f = f
	st.w = bufio.NewWriter(f)
	st.activeSeq = seq
	st.activeLen = good
	return frames, nil
}

// frameErrReason renders a ReadFrame failure the way recovery warnings
// traditionally describe torn tails.
func frameErrReason(err error) string {
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return "torn record"
	}
	return err.Error()
}

func (st *Store) truncateWarn(seq int, good int64, why string) {
	st.opts.Logf("durable: %s: %s at offset %d; resuming from the last intact record", segName(seq), why, good)
}

// startSegment creates (truncating any leftover) segment seq and makes it
// active. Caller guarantees no concurrent appends (Open, or Compact under mu).
//
//cpvet:allow walframe -- sanctioned helper: writes only the magic header, then fsyncs
func (st *Store) startSegment(seq int) error {
	f, err := os.OpenFile(filepath.Join(st.dir, segName(seq)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the fsync error is the one worth reporting
		return fmt.Errorf("durable: %w", err)
	}
	if err := syncDir(st.dir); err != nil {
		_ = f.Close() // the directory-fsync error is the one worth reporting
		return err
	}
	st.f = f
	st.w = bufio.NewWriter(f)
	st.activeSeq = seq
	st.activeLen = int64(len(segMagic))
	st.activeRecs = 0
	st.syncedRecs = 0
	st.syncedLen = st.activeLen
	return nil
}

// Append journals one record. It returns once the record is buffered in the
// active segment; durability follows within one SyncInterval (or immediately
// when SyncInterval < 0). Use AppendSync when the caller must not proceed
// until the record is on disk.
func (st *Store) Append(rec Record) error {
	_, err := st.append(rec)
	return err
}

// AppendSync journals one record and blocks until it is fsynced. Concurrent
// AppendSync callers share fsyncs (group commit), so the cost of a burst of
// durable appends is one flush window, not one fsync each.
func (st *Store) AppendSync(rec Record) error {
	wait, err := st.AppendWait(rec)
	if err != nil {
		return err
	}
	return wait()
}

// AppendWait buffers the record like Append and returns a function that
// blocks until it is on disk. This splits the durable append in two so a
// caller can buffer the record while holding its own locks — keeping its
// state mutation and the record's log position atomic with respect to
// snapshots — and pay the fsync wait after releasing them. A non-nil error
// means nothing was appended; an error from wait means the record may not
// be durable (and the store is poisoned — see Append).
func (st *Store) AppendWait(rec Record) (wait func() error, err error) {
	seq, err := st.append(rec)
	if err != nil {
		return nil, err
	}
	return func() error { return st.waitSynced(seq) }, nil
}

// ReleaseRecovered drops the recovered snapshot and record buffers once the
// owner has folded them into its state — they are loaded once at Open and
// would otherwise stay resident for the life of the store.
func (st *Store) ReleaseRecovered() {
	st.snapshot = nil
	st.records = nil
}

func (st *Store) append(rec Record) (uint64, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("durable: encoding record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("durable: record of %d bytes exceeds the %d-byte cap", len(payload), maxRecordBytes)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, ErrClosed
	}
	if st.syncErr != nil {
		return 0, st.syncErr
	}
	if err := WriteFrame(st.w, payload); err != nil {
		return 0, st.poisonLocked(err)
	}
	st.activeLen += frameHeaderLen + int64(len(payload))
	st.activeRecs++
	st.appendSeq++
	seq := st.appendSeq
	if st.opts.SyncInterval < 0 {
		if err := st.flushLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// poisonLocked records a sticky write/fsync failure: once bytes may be
// missing from the log, every later append must fail too, or replay would see
// a gap. Caller holds st.mu.
func (st *Store) poisonLocked(err error) error {
	if st.syncErr == nil {
		st.syncErr = fmt.Errorf("durable: log write failed: %w", err)
		st.cond.Broadcast()
		st.signalSyncedLocked() // wake tailing readers so they observe the poison
	}
	return st.syncErr
}

// flushLocked flushes the buffer and fsyncs the active segment. Caller holds
// st.mu.
//
//cpvet:allow blockedlock -- group commit by design: the fsync runs under st.mu so appenders observe a consistent syncedSeq; waiters park on cond, not the lock
func (st *Store) flushLocked() error {
	if st.syncErr != nil {
		return st.syncErr
	}
	if st.syncedSeq == st.appendSeq {
		return nil
	}
	if err := st.w.Flush(); err != nil {
		return st.poisonLocked(err)
	}
	start := time.Now() //cpvet:allow nowalltime -- fsync-latency metric only, never persisted
	if err := st.f.Sync(); err != nil {
		return st.poisonLocked(err)
	}
	st.fsyncLast = time.Since(start) //cpvet:allow nowalltime -- fsync-latency metric only, never persisted
	st.fsyncTotal += st.fsyncLast
	st.fsyncCount++
	st.syncedSeq = st.appendSeq
	st.syncedLen = st.activeLen
	st.syncedRecs = st.activeRecs
	st.cond.Broadcast()
	st.signalSyncedLocked()
	return nil
}

func (st *Store) waitSynced(seq uint64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.syncedSeq < seq && st.syncErr == nil && !st.closed {
		st.cond.Wait()
	}
	if st.syncErr != nil {
		return st.syncErr
	}
	if st.syncedSeq < seq {
		return ErrClosed
	}
	return nil
}

// Sync forces an immediate flush+fsync of everything appended so far.
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	return st.flushLocked()
}

// flusher is the group-commit loop: while appends are outstanding it fsyncs
// once per SyncInterval and wakes every AppendSync waiter at once.
func (st *Store) flusher() {
	defer close(st.flusherDone)
	interval := st.opts.SyncInterval
	if interval < 0 {
		// Synchronous mode: appends fsync inline; nothing to do here.
		<-st.flusherStop
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-st.flusherStop:
			return
		case <-ticker.C:
			st.mu.Lock()
			if !st.closed {
				if err := st.flushLocked(); err != nil {
					st.opts.Logf("durable: background fsync failed: %v", err)
				}
			}
			st.mu.Unlock()
		}
	}
}

// Compact rotates the WAL and replaces everything before the rotation point
// with one snapshot: it seals the active segment, opens a new one (appends
// proceed there immediately), calls state for the owner's serialized state —
// which must reflect at least every record appended before Compact was
// called — writes it as the new snapshot, and deletes the superseded
// segments and older snapshots. On a state or write error the old segments
// stay, so a failed compaction costs only disk space, never records.
//
//cpvet:allow walframe -- sanctioned helper: removes only segments the new snapshot covers
//cpvet:allow blockedlock -- segment rotation must be atomic with the append stream: startSegment's create+fsync runs under st.mu so no append lands between seal and rotate
func (st *Store) Compact(state func() ([]byte, error)) error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	if err := st.flushLocked(); err != nil {
		st.mu.Unlock()
		return err
	}
	sealed := st.activeSeq
	sealedOrd, sealedCount := st.activeStart, st.activeRecs
	old := st.f
	if err := st.startSegment(sealed + 1); err != nil {
		// startSegment left st.f/st.w untouched on failure: the sealed segment
		// is intact, flushed, and stays active.
		st.mu.Unlock()
		return err
	}
	// The sealed segment stays shippable until its file is deleted below.
	st.sealedStart[sealed] = sealedOrd
	st.sealedRecs[sealed] = sealedCount
	st.activeStart = sealedOrd + sealedCount
	// The sealed segment was flushed and fsynced by flushLocked above, so a
	// close error cannot lose data.
	_ = old.Close()
	st.mu.Unlock()

	// Serialize outside the lock: appends (to the new segment) keep flowing
	// while the snapshot is built and written. Records that race into the
	// snapshot AND the new segment are re-applied harmlessly as long as the
	// owner's apply is idempotent (see Records).
	b, err := state()
	if err != nil {
		return fmt.Errorf("durable: snapshot state: %w", err)
	}
	if err := writeSnapshot(st.dir, sealed, b); err != nil {
		return err
	}
	st.mu.Lock()
	st.snapsWritten++
	st.mu.Unlock()
	// The snapshot covers every segment up to and including the sealed one,
	// and any older snapshot.
	segs, snaps, err := scanDir(st.dir)
	if err != nil {
		return err
	}
	for _, seq := range segs {
		if seq <= sealed {
			if err := os.Remove(filepath.Join(st.dir, segName(seq))); err != nil {
				st.opts.Logf("durable: removing compacted %s: %v", segName(seq), err)
				continue // the file survives, so it stays shippable
			}
			st.mu.Lock()
			delete(st.sealedStart, seq)
			delete(st.sealedRecs, seq)
			st.mu.Unlock()
		}
	}
	for _, seq := range snaps {
		if seq < sealed {
			if err := os.Remove(filepath.Join(st.dir, snapName(seq))); err != nil {
				st.opts.Logf("durable: removing superseded %s: %v", snapName(seq), err)
			}
		}
	}
	return syncDir(st.dir)
}

// Close flushes and fsyncs outstanding appends and closes the active
// segment. Further operations fail with ErrClosed. Safe to call twice.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	err := st.flushLocked()
	st.closed = true
	st.cond.Broadcast()
	st.signalSyncedLocked() // wake tailing readers so they observe the close
	closeErr := st.f.Close()
	st.mu.Unlock()
	close(st.flusherStop)
	<-st.flusherDone
	if err != nil {
		return err
	}
	if closeErr != nil {
		return fmt.Errorf("durable: %w", closeErr)
	}
	return nil
}

// writeSnapshot writes seq's snapshot atomically: temp file, fsync, rename,
// directory fsync.
//
//cpvet:allow walframe -- sanctioned helper: the atomic tmp+rename implementation itself
func writeSnapshot(dir string, seq int, payload []byte) error {
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var header [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	if _, err := tmp.WriteString(snapMagic); err == nil {
		if _, err = tmp.Write(header[:]); err == nil {
			_, err = tmp.Write(payload)
		}
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapName(seq))); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return syncDir(dir)
}

// readSnapshot loads and verifies one snapshot file.
func readSnapshot(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < len(snapMagic)+frameHeaderLen || string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("bad snapshot header")
	}
	body := b[len(snapMagic):]
	length := binary.LittleEndian.Uint32(body[0:4])
	sum := binary.LittleEndian.Uint32(body[4:8])
	payload := body[frameHeaderLen:]
	if uint32(len(payload)) != length {
		return nil, fmt.Errorf("snapshot length %d, header says %d", len(payload), length)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("snapshot checksum mismatch")
	}
	return payload, nil
}

// syncDir fsyncs a directory so renames/creates/removes inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("durable: fsync %s: %w", dir, serr)
	}
	if cerr != nil {
		return fmt.Errorf("durable: closing %s: %w", dir, cerr)
	}
	return nil
}
