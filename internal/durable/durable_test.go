package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func rec(entity, typ string, payload interface{}) Record {
	b, err := json.Marshal(payload)
	if err != nil {
		panic(err)
	}
	return Record{Entity: entity, Type: typ, Data: b}
}

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func appendN(t *testing.T, st *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := st.Append(rec(fmt.Sprintf("session/%d", i%3), "step", map[string]int{"i": i})); err != nil {
			t.Fatal(err)
		}
	}
}

func checkRecords(t *testing.T, got []Record, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("recovered %d records, want %d", len(got), n)
	}
	for i, r := range got {
		var p struct{ I int }
		if err := json.Unmarshal(r.Data, &p); err != nil {
			t.Fatal(err)
		}
		if p.I != i {
			t.Fatalf("record %d has payload i=%d", i, p.I)
		}
	}
}

// TestRoundTrip pins the basic contract: what was appended (and synced)
// before Close is exactly what a reopen replays, in order.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{})
	appendN(t, st, 25)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, Options{})
	defer st2.Close()
	if st2.Snapshot() != nil {
		t.Fatal("unexpected snapshot in a snapshot-free store")
	}
	checkRecords(t, st2.Records(), 25)
}

// TestAppendSyncDurableWithoutClose pins group commit: AppendSync returning
// means the record is on disk even if the process never closes the store —
// a reopen of a copy of the directory (the crash simulation) sees it.
func TestAppendSyncDurableWithoutClose(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{SyncInterval: time.Millisecond})
	defer st.Close()
	for i := 0; i < 7; i++ {
		if err := st.AppendSync(rec("e", "step", map[string]int{"i": i})); err != nil {
			t.Fatal(err)
		}
	}
	crash := t.TempDir()
	copyDir(t, dir, crash)
	st2 := openT(t, crash, Options{})
	defer st2.Close()
	checkRecords(t, st2.Records(), 7)
}

// TestTornTailSweep is the crash-mid-fsync simulation: a crash can leave any
// byte-length prefix of the final record (or frame header) on disk. For
// every truncation point inside the last record, Open must warn, truncate
// back to the last intact record, and carry on — never fail, never
// resurrect garbage, and stay appendable afterwards.
func TestTornTailSweep(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{})
	appendN(t, st, 5)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, segName(1))
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Find the start of the final record: replay 4 records' worth of frames.
	offsets := frameOffsets(t, whole)
	if len(offsets) != 6 { // header end + 5 record ends
		t.Fatalf("found %d frame offsets, want 6", len(offsets))
	}
	lastStart, lastEnd := offsets[4], offsets[5]
	for cut := lastStart + 1; cut < lastEnd; cut++ {
		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, segName(1)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var warned bool
		st2, err := Open(cutDir, Options{Logf: func(string, ...interface{}) { warned = true }})
		if err != nil {
			t.Fatalf("cut at %d: open failed: %v", cut, err)
		}
		checkRecords(t, st2.Records(), 4)
		if !warned {
			t.Fatalf("cut at %d: no warning logged for the torn tail", cut)
		}
		// The store must be cleanly appendable after truncation.
		if err := st2.Append(rec("e", "post", map[string]int{"i": 4})); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
		st3 := openT(t, cutDir, Options{})
		checkRecords(t, st3.Records(), 5)
		st3.Close()
	}
}

// TestCorruptTailBitFlip: a flipped payload byte in the final record fails
// its CRC and is dropped, with everything before it kept.
func TestCorruptTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{})
	appendN(t, st, 3)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x40
	if err := os.WriteFile(segPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var msgs []string
	st2, err := Open(dir, Options{Logf: func(f string, a ...interface{}) { msgs = append(msgs, fmt.Sprintf(f, a...)) }})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	checkRecords(t, st2.Records(), 2)
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "checksum") {
		t.Fatalf("corruption warning does not mention the checksum: %q", joined)
	}
}

// TestCompact pins rotation: after Compact the old segments are gone, the
// snapshot holds the owner's state, and a reopen sees snapshot + only the
// records appended after the rotation point.
func TestCompact(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{})
	appendN(t, st, 10)
	if err := st.Compact(func() ([]byte, error) { return []byte(`{"upto":10}`), nil }); err != nil {
		t.Fatal(err)
	}
	// Post-compaction records land in the new segment.
	for i := 0; i < 4; i++ {
		if err := st.Append(rec("e", "post", map[string]int{"i": i})); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("compacted segment 1 still exists (stat err %v)", err)
	}
	st2 := openT(t, dir, Options{})
	defer st2.Close()
	if string(st2.Snapshot()) != `{"upto":10}` {
		t.Fatalf("snapshot = %q", st2.Snapshot())
	}
	if len(st2.Records()) != 4 {
		t.Fatalf("recovered %d post-snapshot records, want 4", len(st2.Records()))
	}
	// A second compaction supersedes the first snapshot.
	if err := st2.Compact(func() ([]byte, error) { return []byte(`{"upto":14}`), nil }); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3 := openT(t, dir, Options{})
	defer st3.Close()
	if string(st3.Snapshot()) != `{"upto":14}` {
		t.Fatalf("snapshot after recompaction = %q", st3.Snapshot())
	}
	if len(st3.Records()) != 0 {
		t.Fatalf("recovered %d records after full compaction, want 0", len(st3.Records()))
	}
}

// TestCorruptSnapshotRefusesSilentLoss: when the newest snapshot is damaged
// and the segments it condensed are gone (the normal post-compaction state),
// Open must refuse to start — proceeding would silently discard everything
// the snapshot held. Deleting the snapshot is the operator's explicit
// accept-the-loss override.
func TestCorruptSnapshotRefusesSilentLoss(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{})
	appendN(t, st, 6)
	if err := st.Compact(func() ([]byte, error) { return []byte(`state`), nil }); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapName(1))
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(snapPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Logf: t.Logf}); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("Open over a corrupt snapshot with its segments gone = %v, want a refusing-to-start error", err)
	}
	// Operator override: delete the snapshot, accept the loss, start empty.
	if err := os.Remove(snapPath); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, Options{})
	defer st2.Close()
	if st2.Snapshot() != nil || len(st2.Records()) != 0 {
		t.Fatalf("after explicit snapshot removal: snapshot %v, %d records; want empty", st2.Snapshot(), len(st2.Records()))
	}
}

// TestCorruptSnapshotFallsBackWhenSegmentsSurvive: if compaction wrote the
// snapshot but failed to delete the segments it condensed, a later snapshot
// corruption is recoverable — Open warns and replays the surviving segments.
func TestCorruptSnapshotFallsBackWhenSegmentsSurvive(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{})
	appendN(t, st, 6)
	if err := st.Sync(); err != nil { // flush so the copy below holds the records
		t.Fatal(err)
	}
	seg1, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(func() ([]byte, error) { return []byte(`state`), nil }); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the failed deletion: put the condensed segment back, then
	// corrupt the snapshot.
	if err := os.WriteFile(filepath.Join(dir, segName(1)), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapName(1))
	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(snapPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var warned bool
	st2, err := Open(dir, Options{Logf: func(string, ...interface{}) { warned = true }})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Snapshot() != nil {
		t.Fatal("corrupt snapshot was not rejected")
	}
	checkRecords(t, st2.Records(), 6)
	if !warned {
		t.Fatal("no warning for the corrupt snapshot")
	}
}

// TestConcurrentAppendSync hammers group commit from many goroutines — for
// -race, and to check every record survives a reopen.
func TestConcurrentAppendSync(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, Options{SyncInterval: time.Millisecond})
	var wg sync.WaitGroup
	const writers, each = 8, 20
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				var err error
				if i%4 == 0 {
					err = st.AppendSync(rec(fmt.Sprintf("w/%d", g), "step", map[string]int{"i": i}))
				} else {
					err = st.Append(rec(fmt.Sprintf("w/%d", g), "step", map[string]int{"i": i}))
				}
				if err != nil {
					t.Errorf("writer %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, Options{})
	defer st2.Close()
	if got := len(st2.Records()); got != writers*each {
		t.Fatalf("recovered %d records, want %d", got, writers*each)
	}
}

// TestClosedStoreErrors pins ErrClosed on every post-Close operation.
func TestClosedStoreErrors(t *testing.T) {
	st := openT(t, t.TempDir(), Options{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := st.Append(rec("e", "t", nil)); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := st.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := st.Compact(func() ([]byte, error) { return nil, nil }); err != ErrClosed {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
}

// frameOffsets returns the byte offset after the segment header and after
// each intact record, by walking the frames like replay does.
func frameOffsets(t *testing.T, b []byte) []int64 {
	t.Helper()
	if len(b) < len(segMagic) || string(b[:len(segMagic)]) != segMagic {
		t.Fatal("bad segment header")
	}
	offs := []int64{int64(len(segMagic))}
	pos := len(segMagic)
	for pos+frameHeaderLen <= len(b) {
		length := int(uint32(b[pos]) | uint32(b[pos+1])<<8 | uint32(b[pos+2])<<16 | uint32(b[pos+3])<<24)
		pos += frameHeaderLen + length
		if pos > len(b) {
			break
		}
		offs = append(offs, int64(pos))
	}
	return offs
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
