package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
)

// lazyWeb returns an httptest server whose handler can be installed (and
// swapped) after the URL is known — a leader needs its own URL as
// AdvertiseURL before Open, and a restarted follower keeps its URL.
func lazyWeb(t *testing.T) (*httptest.Server, *atomic.Value) {
	t.Helper()
	var h atomic.Value
	h.Store(http.Handler(http.NotFoundHandler()))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &h
}

// replicaPair is a leader and a follower tailing it, each behind a real HTTP
// listener — the two-process topology, in-process.
type replicaPair struct {
	t           *testing.T
	mutate      func(*Config)
	leader      *Server
	leaderWeb   *httptest.Server
	follower    *Server
	followerWeb *httptest.Server
	followerH   *atomic.Value
	followerDir string
}

func startReplicaPair(t *testing.T, mutate func(*Config)) *replicaPair {
	t.Helper()
	leaderWeb, leaderH := lazyWeb(t)
	leader := openDurable(t, t.TempDir(), func(cfg *Config) {
		cfg.AdvertiseURL = leaderWeb.URL
		if mutate != nil {
			mutate(cfg)
		}
	})
	t.Cleanup(leader.Close) // Close is idempotent: tests may close earlier
	leaderH.Store(Handler(leader))
	p := &replicaPair{t: t, mutate: mutate, leader: leader, leaderWeb: leaderWeb, followerDir: t.TempDir()}
	p.followerWeb, p.followerH = lazyWeb(t)
	p.openFollower()
	return p
}

func (p *replicaPair) openFollower() {
	p.t.Helper()
	p.follower = openDurable(p.t, p.followerDir, func(cfg *Config) {
		cfg.FollowURL = p.leaderWeb.URL
		if p.mutate != nil {
			p.mutate(cfg)
		}
	})
	p.t.Cleanup(p.follower.Close)
	p.followerH.Store(Handler(p.follower))
}

// restartFollower kills the follower (graceful close: cursor saved) and
// reopens it over the same data directory and URL — the kill-and-restart leg
// of the lockstep acceptance criterion.
func (p *replicaPair) restartFollower() {
	p.t.Helper()
	p.follower.Close()
	p.openFollower()
}

// waitCaughtUp blocks until the follower's applied cursor equals the
// leader's durable tip with zero reported lag — the replication offsets at
// which lockstep comparisons are meaningful.
func (p *replicaPair) waitCaughtUp() {
	p.t.Helper()
	// Flush the leader's group-commit window first: its durable tip must
	// cover everything the schedule just wrote, or the comparison below
	// would accept a follower that matches a stale tip.
	if err := p.leader.journal.store.Sync(); err != nil {
		p.t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ls, fs := p.leader.Stats().Replication, p.follower.Stats().Replication
		if ls != nil && fs != nil && fs.Connected && fs.LagRecords == 0 &&
			fs.AppliedSegment == ls.TipSegment && fs.AppliedOffset == ls.TipOffset {
			return
		}
		if time.Now().After(deadline) {
			p.t.Fatalf("follower never caught up: leader=%+v follower=%+v", ls, fs)
		}
		time.Sleep(time.Millisecond)
	}
}

// fetch performs one request and returns status, headers, and body.
func fetch(t *testing.T, base, method, path string, body interface{}, ndjson bool) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if ndjson {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// compareBytes asserts leader and follower answer the given read request
// with identical status and identical bytes — the lockstep contract.
func (p *replicaPair) compareBytes(what, method, path string, body interface{}, ndjson bool) {
	p.t.Helper()
	lc, _, lb := fetch(p.t, p.leaderWeb.URL, method, path, body, ndjson)
	fc, _, fb := fetch(p.t, p.followerWeb.URL, method, path, body, ndjson)
	if lc != fc {
		p.t.Fatalf("%s: leader status %d, follower status %d", what, lc, fc)
	}
	if !bytes.Equal(lb, fb) {
		p.t.Fatalf("%s: answers diverged\nleader:   %s\nfollower: %s", what, lb, fb)
	}
}

// registerOverHTTP registers a random dataset on the leader and returns it
// (session creation needs the per-row candidate counts for a valid truth).
func (p *replicaPair) registerOverHTTP(name string, seed int64) *dataset.Incomplete {
	p.t.Helper()
	d := randDataset(p.t, 36, 3, 2, 2, 0.7, seed)
	code, _, b := fetch(p.t, p.leaderWeb.URL, http.MethodPost, "/v1/datasets", map[string]interface{}{
		"name": name, "num_labels": 2, "examples": exampleJSONs(d), "k": 3,
	}, false)
	if code != http.StatusCreated {
		p.t.Fatalf("register: status %d: %s", code, b)
	}
	return d
}

// startSession creates a clean session on the leader and returns its ID.
func (p *replicaPair) startSession(name string, d *dataset.Incomplete, seed int64) string {
	p.t.Helper()
	truth := make([]int, d.N())
	for i := range truth {
		truth[i] = (i * 7) % d.Examples[i].M()
	}
	code, _, b := fetch(p.t, p.leaderWeb.URL, http.MethodPost, "/v1/datasets/"+name+"/clean", map[string]interface{}{
		"truth": truth, "val_points": randPoints(4, 2, seed),
	}, false)
	if code != http.StatusCreated {
		p.t.Fatalf("clean: status %d: %s", code, b)
	}
	var st SessionStatus
	if err := json.Unmarshal(b, &st); err != nil {
		p.t.Fatal(err)
	}
	return st.ID
}

// stepLeader advances the leader session by up to n steps and reports done.
func (p *replicaPair) stepLeader(id string, n int) bool {
	p.t.Helper()
	code, _, b := fetch(p.t, p.leaderWeb.URL, http.MethodPost, fmt.Sprintf("/v1/clean/%s/next?steps=%d", id, n), nil, false)
	if code != http.StatusOK {
		p.t.Fatalf("next: status %d: %s", code, b)
	}
	var resp struct {
		Done bool `json:"done"`
	}
	if err := json.Unmarshal(b, &resp); err != nil {
		p.t.Fatal(err)
	}
	return resp.Done
}

// compareSessionStatus cross-checks the deterministic SessionStatus fields
// (wall-clock stamps and leader-only state names excluded).
func (p *replicaPair) compareSessionStatus(id string) {
	p.t.Helper()
	var ls, fs SessionStatus
	lc, _, lb := fetch(p.t, p.leaderWeb.URL, http.MethodGet, "/v1/clean/"+id, nil, false)
	fc, _, fb := fetch(p.t, p.followerWeb.URL, http.MethodGet, "/v1/clean/"+id, nil, false)
	if lc != http.StatusOK || fc != http.StatusOK {
		p.t.Fatalf("status fetch: leader %d, follower %d", lc, fc)
	}
	if err := json.Unmarshal(lb, &ls); err != nil {
		p.t.Fatal(err)
	}
	if err := json.Unmarshal(fb, &fs); err != nil {
		p.t.Fatal(err)
	}
	if ls.Steps != fs.Steps || ls.CertainFraction != fs.CertainFraction ||
		ls.WorldsRemaining != fs.WorldsRemaining || ls.ExaminedHypotheses != fs.ExaminedHypotheses {
		p.t.Fatalf("session status diverged:\nleader:   %+v\nfollower: %+v", ls, fs)
	}
}

// TestReplicaLockstep is the acceptance harness: a randomized
// register/step/query schedule where, at every replication offset the
// follower reaches, each query answered by the follower is byte-identical to
// the leader's answer — across worker counts 1/2/4/8 and across a follower
// kill-and-restart that resumes from its durable cursor.
func TestReplicaLockstep(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := startReplicaPair(t, func(cfg *Config) { cfg.Parallelism = workers })
			rng := rand.New(rand.NewSource(int64(9000 + workers)))

			d := p.registerOverHTTP("d", int64(100+workers))
			p.waitCaughtUp()
			p.compareBytes("dataset list", http.MethodGet, "/v1/datasets", nil, false)

			id := p.startSession("d", d, int64(200+workers))
			p.waitCaughtUp()

			done := false
			for round := 0; round < 6; round++ {
				if round == 3 {
					p.restartFollower()
					p.waitCaughtUp()
					if fs := p.follower.Stats().Replication; fs.Bootstraps != 0 {
						t.Fatalf("restarted follower bootstrapped (%d) instead of resuming from its durable cursor", fs.Bootstraps)
					}
				}
				if !done {
					done = p.stepLeader(id, 1+rng.Intn(2))
					p.waitCaughtUp()
				}
				pts := randPoints(2+rng.Intn(3), 2, rng.Int63())
				body := map[string]interface{}{"points": pts}
				p.compareBytes("batch query", http.MethodPost, "/v1/datasets/d/query", body, false)
				p.compareBytes("batch query NDJSON", http.MethodPost, "/v1/datasets/d/query", body, true)
				p.compareBytes("session query", http.MethodPost, "/v1/clean/"+id+"/query", body, false)
				p.compareBytes("session query NDJSON", http.MethodPost, "/v1/clean/"+id+"/query", body, true)
				p.compareSessionStatus(id)
			}

			// Drive to completion: a done session's step replay is
			// byte-comparable end to end (no live driving involved).
			for !done {
				done = p.stepLeader(id, 50)
			}
			p.waitCaughtUp()
			p.compareBytes("done-session stream replay", http.MethodGet, "/v1/clean/"+id+"/stream?from=0", nil, false)
			p.compareSessionStatus(id)

			// Release on the leader; the tombstone replicates and both sides
			// answer the same 404 bytes.
			if code, _, b := fetch(t, p.leaderWeb.URL, http.MethodDelete, "/v1/clean/"+id, nil, false); code != http.StatusNoContent {
				t.Fatalf("release: status %d: %s", code, b)
			}
			p.waitCaughtUp()
			p.compareBytes("released session status", http.MethodGet, "/v1/clean/"+id, nil, false)
		})
	}
}

// TestFollowerRejectsWrites pins the write gate: every mutating route on a
// follower answers 421 Misdirected Request with the leader's advertised URL
// in the Leader header, while reads keep working.
func TestFollowerRejectsWrites(t *testing.T) {
	p := startReplicaPair(t, nil)
	d := p.registerOverHTTP("d", 51)
	id := p.startSession("d", d, 52)
	p.stepLeader(id, 1)
	p.waitCaughtUp()

	truth := make([]int, 36)
	writes := []struct {
		what, method, path string
		body               interface{}
	}{
		{"register", http.MethodPost, "/v1/datasets", map[string]interface{}{
			"name": "w", "num_labels": 2, "examples": exampleJSONs(randDataset(t, 8, 2, 2, 2, 0.5, 53)), "k": 1}},
		{"clean create", http.MethodPost, "/v1/datasets/d/clean", map[string]interface{}{
			"truth": truth, "val_points": randPoints(2, 2, 54)}},
		{"step", http.MethodPost, "/v1/clean/" + id + "/next?steps=1", nil},
		{"release", http.MethodDelete, "/v1/clean/" + id, nil},
	}
	for _, w := range writes {
		code, hdr, body := fetch(t, p.followerWeb.URL, w.method, w.path, w.body, false)
		if code != http.StatusMisdirectedRequest {
			t.Fatalf("%s on follower: status %d (%s), want 421", w.what, code, body)
		}
		if got := hdr.Get("Leader"); got != p.leaderWeb.URL {
			t.Fatalf("%s on follower: Leader header %q, want %q", w.what, got, p.leaderWeb.URL)
		}
		if !strings.Contains(string(body), "leader") {
			t.Fatalf("%s on follower: body %q does not point at the leader", w.what, body)
		}
	}

	// The same writes succeed on the leader (step), and reads still work on
	// the follower after all those rejections.
	if code, _, b := fetch(t, p.followerWeb.URL, http.MethodPost, "/v1/datasets/d/query",
		map[string]interface{}{"points": randPoints(2, 2, 55)}, false); code != http.StatusOK {
		t.Fatalf("read on follower after write rejections: status %d: %s", code, b)
	}
	// And the library-level sentinel maps as documented.
	if status := errStatus(fmt.Errorf("wrap: %w", ErrNotLeader)); status != http.StatusMisdirectedRequest {
		t.Fatalf("errStatus(ErrNotLeader) = %d, want 421", status)
	}
}

// TestFollowerServesThroughLeaderDeath is the leader-disconnect half of the
// NDJSON error-path satellite: with the leader killed mid-replication, a
// follower NDJSON batch query still streams every line it owes — reads come
// from replicated local state, never from the (dead) leader — and the
// answers equal the leader's last-known answers at the shared offset.
func TestFollowerServesThroughLeaderDeath(t *testing.T) {
	p := startReplicaPair(t, func(cfg *Config) { cfg.Parallelism = 4 })
	d := p.registerOverHTTP("d", 61)
	id := p.startSession("d", d, 62)
	p.stepLeader(id, 2)
	p.waitCaughtUp()

	pts := randPoints(5, 2, 63)
	body := map[string]interface{}{"points": pts}
	_, _, wantBatch := fetch(t, p.leaderWeb.URL, http.MethodPost, "/v1/datasets/d/query", body, true)
	_, _, wantSess := fetch(t, p.leaderWeb.URL, http.MethodPost, "/v1/clean/"+id+"/query", body, true)

	// Kill the leader mid-stream: tear every open connection (the follower's
	// tail included) the way a dying process would, then shut down.
	p.leaderWeb.CloseClientConnections()
	p.leader.Close()
	p.leaderWeb.Close()

	for _, q := range []struct {
		what, path string
		want       []byte
	}{
		{"batch NDJSON", "/v1/datasets/d/query", wantBatch},
		{"session NDJSON", "/v1/clean/" + id + "/query", wantSess},
	} {
		code, hdr, got := fetch(t, p.followerWeb.URL, http.MethodPost, q.path, body, true)
		if code != http.StatusOK {
			t.Fatalf("%s after leader death: status %d: %s", q.what, code, got)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("%s: Content-Type %q", q.what, ct)
		}
		lines := strings.Split(strings.TrimSpace(string(got)), "\n")
		if len(lines) != len(pts)+1 {
			t.Fatalf("%s: %d lines for %d points (want points+trailer): %s", q.what, len(lines), len(pts), got)
		}
		if !strings.Contains(lines[len(pts)], `"done":true`) {
			t.Fatalf("%s: missing done trailer: %q", q.what, lines[len(pts)])
		}
		if !bytes.Equal(got, q.want) {
			t.Fatalf("%s diverged from the leader's pre-death answer\nleader:   %s\nfollower: %s", q.what, q.want, got)
		}
	}
	// The follower reports the outage instead of hiding it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		fs := p.follower.Stats().Replication
		if fs != nil && !fs.Connected && fs.LastApplyError != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never surfaced the leader outage: %+v", p.follower.Stats().Replication)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNDJSONErrorLineLowestIndex mirrors TestRunOrderedLowestIndexError at
// the HTTP layer: when a point mid-batch fails, the NDJSON stream carries
// exactly the results before the lowest failing index and then one
// deterministic {"error": ...} line — whichever worker schedule ran.
func TestNDJSONErrorLineLowestIndex(t *testing.T) {
	errLow := errors.New("low: point 1 exploded")
	errHigh := errors.New("high: point 3 exploded")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		streamBatchNDJSON(w, func(yield func(int, PointResult) error) (BatchSummary, error) {
			err := runOrdered(r.Context(), 6, 4, nil,
				func(i int) (PointResult, error) {
					switch i {
					case 1:
						return PointResult{}, errLow
					case 3:
						return PointResult{}, errHigh
					}
					return PointResult{Prediction: i}, nil
				}, yield)
			return BatchSummary{}, err
		})
	}))
	defer srv.Close()
	for trial := 0; trial < 25; trial++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trial %d: status %d (the stream was already live; errors must arrive in-band)", trial, resp.StatusCode)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		if len(lines) != 2 {
			t.Fatalf("trial %d: %d lines %q, want result 0 then the error line", trial, len(lines), lines)
		}
		if !strings.Contains(lines[0], `"index":0`) {
			t.Fatalf("trial %d: first line %q is not point 0", trial, lines[0])
		}
		var el struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(lines[1]), &el); err != nil {
			t.Fatalf("trial %d: error line %q: %v", trial, lines[1], err)
		}
		if el.Error != errLow.Error() {
			t.Fatalf("trial %d: error line reports %q, want the lowest-index error %q", trial, el.Error, errLow)
		}
	}
}

// TestFollowerApplyQueryRaceHammer (run under -race) hammers the follower's
// one real concurrency seam: the tailer applying replicated steps into live
// sessions while batch and session queries serve from the same engines.
func TestFollowerApplyQueryRaceHammer(t *testing.T) {
	p := startReplicaPair(t, func(cfg *Config) { cfg.Parallelism = 4 })
	d := p.registerOverHTTP("d", 71)
	id := p.startSession("d", d, 72)
	p.waitCaughtUp()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the leader steps the session to done, one step at a time
		defer wg.Done()
		defer stop.Store(true)
		for !p.stepLeader(id, 1) {
		}
	}()
	pts := randPoints(3, 2, 73)
	body := map[string]interface{}{"points": pts}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !stop.Load() {
				var code int
				var b []byte
				switch g {
				case 0:
					code, _, b = fetch(t, p.followerWeb.URL, http.MethodPost, "/v1/clean/"+id+"/query", body, g%2 == 0)
				case 1:
					code, _, b = fetch(t, p.followerWeb.URL, http.MethodPost, "/v1/datasets/d/query", body, false)
				default:
					code, _, b = fetch(t, p.followerWeb.URL, http.MethodGet, "/v1/stats", nil, false)
				}
				if code != http.StatusOK {
					t.Errorf("goroutine %d: status %d: %s", g, code, b)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// After the dust settles the two sides still agree byte for byte.
	p.waitCaughtUp()
	p.compareBytes("post-hammer session query", http.MethodPost, "/v1/clean/"+id+"/query", body, false)
	p.compareBytes("post-hammer batch query", http.MethodPost, "/v1/datasets/d/query", body, true)
}
