package serve

import (
	"context"
	"testing"
)

// samePointResults fails unless the two result slices agree field for field
// (fraction equality is exact: both sides run the same deterministic sweep).
func samePointResults(t *testing.T, label string, got, want []PointResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Prediction != w.Prediction || g.Certain != w.Certain || g.Entropy != w.Entropy {
			t.Fatalf("%s: point %d = %+v want %+v", label, i, g, w)
		}
		for y := range w.Fractions {
			if g.Fractions[y] != w.Fractions[y] {
				t.Fatalf("%s: point %d label %d fraction %v want %v", label, i, y, g.Fractions[y], w.Fractions[y])
			}
		}
	}
}

// TestResultCacheBatchRoundTrip checks the dataset-level result cache: a
// repeated batch is answered entirely from cache (hit per point), answers are
// field-for-field identical to a cache-disabled server, and the accumulator
// mode is part of the key (a UseMC flip never reuses a tally answer).
func TestResultCacheBatchRoundTrip(t *testing.T) {
	d := randDataset(t, 36, 3, 2, 2, 0.5, 402)
	cached := NewServer(Config{ResultCacheBytes: 1 << 20})
	defer cached.Close()
	plain := NewServer(Config{})
	defer plain.Close()
	for _, s := range []*Server{cached, plain} {
		if _, err := s.Register("d", d, nil, 3); err != nil {
			t.Fatal(err)
		}
	}
	points := randPoints(12, 2, 403)
	req := BatchRequest{Points: points}

	first, err := cached.BatchQuery(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	st := cached.Stats()
	if st.ResultCache == nil {
		t.Fatal("stats missing result_cache block with the cache enabled")
	}
	if st.ResultCache.Misses != int64(len(points)) || st.ResultCache.Hits != 0 {
		t.Fatalf("cold batch: %+v, want %d misses 0 hits", st.ResultCache, len(points))
	}
	if st.ResultCache.Entries != len(points) || st.ResultCache.Bytes <= 0 {
		t.Fatalf("cold batch cached %d entries (%d bytes), want %d", st.ResultCache.Entries, st.ResultCache.Bytes, len(points))
	}

	second, err := cached.BatchQuery(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	st = cached.Stats()
	if st.ResultCache.Hits != int64(len(points)) {
		t.Fatalf("warm batch: %+v, want %d hits", st.ResultCache, len(points))
	}
	want, err := plain.BatchQuery(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	samePointResults(t, "cold vs uncached", first.Results, want.Results)
	samePointResults(t, "warm vs uncached", second.Results, want.Results)

	// A mode flip must key separately: all misses again, and the MC answers
	// still match the uncached server's.
	mc, err := cached.BatchQuery(context.Background(), "d", BatchRequest{Points: points, UseMC: true})
	if err != nil {
		t.Fatal(err)
	}
	st = cached.Stats()
	if st.ResultCache.Misses != int64(2*len(points)) {
		t.Fatalf("mode flip: %+v, want %d misses", st.ResultCache, 2*len(points))
	}
	wantMC, err := plain.BatchQuery(context.Background(), "d", BatchRequest{Points: points, UseMC: true})
	if err != nil {
		t.Fatal(err)
	}
	samePointResults(t, "mc vs uncached", mc.Results, wantMC.Results)

	if plain.Stats().ResultCache != nil {
		t.Fatal("stats grew a result_cache block with the cache disabled")
	}
}

// TestResultCacheSessionGeneration checks the invalidation contract at the
// session level: an unchanged session answers repeats from cache, a cleaning
// step bumps the generation so the next query misses — and the fresh answer
// matches a reference pinned-engine sweep bit for bit, never the stale entry.
func TestResultCacheSessionGeneration(t *testing.T) {
	s, d, sess := cleanFixture(t, Config{ResultCacheBytes: 1 << 20}, 404)
	defer s.Close()
	points := randPoints(4, 2, 405)
	req := BatchRequest{Points: points}
	var executed []CleanStep
	for round := 0; round < 3; round++ {
		if round > 0 {
			steps, _, err := sess.Next(1)
			if err != nil {
				t.Fatal(err)
			}
			executed = append(executed, steps...)
		}
		before := s.Stats().ResultCache.Hits
		res, err := sess.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		st := s.Stats().ResultCache
		if st.Hits != before {
			t.Fatalf("round %d: first query at a new pin state got %d cache hits", round, st.Hits-before)
		}
		repeat, err := sess.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		st = s.Stats().ResultCache
		if st.Hits != before+int64(len(points)) {
			t.Fatalf("round %d: repeat query got %d hits, want %d", round, st.Hits-before, len(points))
		}
		samePointResults(t, "repeat vs fresh", repeat.Results, res.Results)
		for i := range points {
			want := referencePinned(d, executed, points[i], 3)
			for y, v := range want {
				if res.Results[i].Fractions[y] != v {
					t.Fatalf("round %d point %d label %d: cached-path answer %v, reference pinned sweep %v",
						round, i, y, res.Results[i].Fractions, want)
				}
			}
		}
	}
}

// TestResultCacheEviction checks the byte budget: a budget far below the
// sweep's footprint evicts (keeping at least the most recent entry) and the
// accounted bytes stay at or under the budget whenever more than one entry is
// cached.
func TestResultCacheEviction(t *testing.T) {
	d := randDataset(t, 30, 3, 2, 2, 0.5, 406)
	s := NewServer(Config{ResultCacheBytes: 400})
	defer s.Close()
	if _, err := s.Register("d", d, nil, 3); err != nil {
		t.Fatal(err)
	}
	points := randPoints(20, 2, 407)
	if _, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats().ResultCache
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", st.MaxBytes, st)
	}
	if st.Entries == 0 {
		t.Fatal("byte budget must keep at least the most recent entry")
	}
	if st.Entries > 1 && st.Bytes > st.MaxBytes {
		t.Fatalf("cache holds %d bytes above the %d budget with %d entries", st.Bytes, st.MaxBytes, st.Entries)
	}
}

// TestResultCacheAblationBypass checks DisableQueryMemo turns the result
// cache off too: the ablation baseline's sweep counters must stay comparable,
// so no layer may short-circuit a repeated query.
func TestResultCacheAblationBypass(t *testing.T) {
	d := randDataset(t, 24, 3, 2, 2, 0.5, 408)
	s := NewServer(Config{ResultCacheBytes: 1 << 20, DisableQueryMemo: true})
	defer s.Close()
	if _, err := s.Register("d", d, nil, 3); err != nil {
		t.Fatal(err)
	}
	points := randPoints(5, 2, 409)
	for i := 0; i < 2; i++ {
		if _, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats().ResultCache
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("ablation run touched the result cache: %+v", st)
	}
}
