package serve

import "container/list"

// lruBudget is the bookkeeping every serve-layer cache shares: an LRU of
// string-keyed entries budgeted by entry count and by accounted approximate
// bytes, with one eviction policy everywhere — least-recently-used first, and
// the byte budget always keeps the most recent entry, so a single over-budget
// entry degrades to a cache of one instead of thrashing. The engine pool, the
// session query cache, and the result cache all evict through this one
// accounting, which is what keeps their byte budgets comparable in /v1/stats.
//
// lruBudget does no locking; each owner guards its instance with its own
// mutex and keeps expensive work (engine construction, sweeps) outside it.
type lruBudget[V any] struct {
	capacity  int   // max entries; ≤ 0 = no entry-count budget
	maxBytes  int64 // byte budget; ≤ 0 = unlimited
	list      *list.List
	byKey     map[string]*list.Element
	bytes     int64 // Σ accounted bytes of cached entries
	evictions int64 // lifetime entries dropped by either budget
}

// lruItem is one cached binding with its accounted footprint.
type lruItem[V any] struct {
	key   string
	value V
	bytes int64
}

func newLRUBudget[V any](capacity int, maxBytes int64) *lruBudget[V] {
	return &lruBudget[V]{
		capacity: capacity,
		maxBytes: maxBytes,
		list:     list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// get returns the entry for key, refreshing its recency.
func (c *lruBudget[V]) get(key string) (V, bool) {
	if el, ok := c.byKey[key]; ok {
		c.list.MoveToFront(el)
		return el.Value.(*lruItem[V]).value, true
	}
	var zero V
	return zero, false
}

// put inserts v under key and applies the budgets. When the key is already
// present — a concurrent miss built a duplicate — the first insert wins: the
// existing value is refreshed and returned with inserted = false, and v is
// discarded by the caller.
func (c *lruBudget[V]) put(key string, v V, bytes int64) (cur V, inserted bool) {
	if el, ok := c.byKey[key]; ok {
		c.list.MoveToFront(el)
		return el.Value.(*lruItem[V]).value, false
	}
	c.byKey[key] = c.list.PushFront(&lruItem[V]{key: key, value: v, bytes: bytes})
	c.bytes += bytes
	c.evict()
	return v, true
}

// reaccount refreshes an entry's byte estimate after its value grew (retained
// term streams expand on first scan) and re-applies the byte budget. A key
// already evicted is a no-op: nothing is accounted for it.
func (c *lruBudget[V]) reaccount(key string, newBytes int64) {
	el, ok := c.byKey[key]
	if !ok {
		return
	}
	it := el.Value.(*lruItem[V])
	c.bytes += newBytes - it.bytes
	it.bytes = newBytes
	c.evict()
}

// evict drops least-recently-used entries while either budget is exceeded.
func (c *lruBudget[V]) evict() {
	for (c.capacity > 0 && c.list.Len() > c.capacity) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes && c.list.Len() > 1) {
		back := c.list.Back()
		it := back.Value.(*lruItem[V])
		delete(c.byKey, it.key)
		c.list.Remove(back)
		c.bytes -= it.bytes
		c.evictions++
	}
}

// len reports the number of cached entries.
func (c *lruBudget[V]) len() int { return c.list.Len() }

// values snapshots the cached values, most recently used first.
func (c *lruBudget[V]) values() []V {
	out := make([]V, 0, c.list.Len())
	for el := c.list.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruItem[V]).value)
	}
	return out
}
