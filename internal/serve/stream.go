package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// pointOutcome is one worker's answer for one point index.
type pointOutcome struct {
	idx int
	r   PointResult
	err error
}

// streamCounters aggregates runOrdered's fan-out activity server-wide, for
// /v1/stats: batches run, results yielded in order, results that arrived
// ahead of a lower pending index (the reorder buffer earning its keep), and
// batches that ended in an error. All methods are nil-safe so code paths
// without a server (direct Dataset.BatchQuery calls in tests) pay nothing.
type streamCounters struct {
	batches   atomic.Int64
	points    atomic.Int64
	reordered atomic.Int64
	errors    atomic.Int64
}

func (c *streamCounters) batch() {
	if c != nil {
		c.batches.Add(1)
	}
}

func (c *streamCounters) yielded() {
	if c != nil {
		c.points.Add(1)
	}
}

func (c *streamCounters) outOfOrder() {
	if c != nil {
		c.reordered.Add(1)
	}
}

func (c *streamCounters) failed() {
	if c != nil {
		c.errors.Add(1)
	}
}

// StreamStats is the wire form of the runOrdered counters in /v1/stats.
type StreamStats struct {
	Batches       int64 `json:"batches"`
	PointsYielded int64 `json:"points_yielded"`
	Reordered     int64 `json:"reordered"`
	Errors        int64 `json:"errors"`
}

func (c *streamCounters) snapshot() StreamStats {
	return StreamStats{
		Batches:       c.batches.Load(),
		PointsYielded: c.points.Load(),
		Reordered:     c.reordered.Load(),
		Errors:        c.errors.Load(),
	}
}

// runOrdered fans point indices [0, n) out to `workers` goroutines and
// delivers each result to yield in request order, as soon as it and every
// lower index have completed — a reorder buffer over the unordered worker
// fan-out, so the first results stream while later points are still
// computing. It is the shared engine behind both buffered batch queries and
// the NDJSON streaming mode.
//
// Error semantics are deterministic: results are only ever accepted at the
// lowest unemitted index, so the first error returned is always the one with
// the lowest point index, regardless of worker scheduling. On any error —
// a failed query, a failed yield (client write), or ctx cancellation — the
// fan-out stops handing out new points, in-flight workers are cancelled, and
// the indices already yielded stay yielded. A ctx error takes precedence in
// the return value so callers can map disconnects distinctly.
func runOrdered(ctx context.Context, n, workers int, sc *streamCounters, query func(i int) (PointResult, error), yield func(i int, r PointResult) error) error {
	sc.batch()
	if n == 0 {
		if err := ctx.Err(); err != nil {
			sc.failed()
			return err
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	work := make(chan int)
	out := make(chan pointOutcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if cctx.Err() != nil {
					continue // keep draining so the feeder never blocks
				}
				r, err := query(i)
				select {
				case out <- pointOutcome{idx: i, r: r, err: err}:
				case <-cctx.Done():
				}
			}
		}()
	}

	// Single coordinator: feeds indices and folds outcomes back into order.
	// pending holds results that arrived ahead of the next index to emit.
	pending := make(map[int]pointOutcome, workers)
	next, fed := 0, 0
	erred := false // some outcome errored; stop feeding new indices
	var firstErr error
	for next < n && firstErr == nil && ctx.Err() == nil {
		feed := work
		if fed >= n || erred {
			feed = nil // select never picks a nil channel
		}
		select {
		case feed <- fed:
			fed++
		case o := <-out:
			if o.err != nil {
				erred = true
			}
			if o.idx != next {
				sc.outOfOrder()
			}
			pending[o.idx] = o
			for {
				po, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if po.err != nil {
					// next is the lowest unemitted index, so this is the
					// lowest-index error by construction.
					firstErr = po.err
					break
				}
				if err := yield(next, po.r); err != nil {
					firstErr = err
					break
				}
				sc.yielded()
				next++
			}
		case <-ctx.Done():
		}
		if erred && next == fed && len(pending) == 0 && firstErr == nil {
			// Every fed index below the error has been emitted and the
			// errored outcome itself was consumed — nothing left to wait for.
			// (Unreachable in practice: the errored outcome stays pending
			// until next reaches it, setting firstErr above. Kept as a
			// belt-and-braces exit so a logic change cannot deadlock here.)
			break
		}
	}
	cancel()
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		sc.failed()
		return err
	}
	if firstErr != nil {
		sc.failed()
	}
	return firstErr
}
