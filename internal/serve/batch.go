package serve

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
)

// BatchRequest asks for CP answers for many test points in one call.
type BatchRequest struct {
	// Points holds the encoded test points.
	Points [][]float64
	// K overrides the dataset default when > 0.
	K int
	// UseMC answers Q2 with the multi-class winner-cap DP (appendix A.3)
	// instead of tally enumeration — preferable for large label alphabets.
	UseMC bool
}

// PointResult is the CP answer for one test point.
type PointResult struct {
	// Prediction is the most supported label (smallest-label tie-break).
	Prediction int `json:"prediction"`
	// Certain reports Q1: every possible world predicts Prediction.
	Certain bool `json:"certain"`
	// Entropy is the Shannon entropy (nats) of the Q2 distribution.
	Entropy float64 `json:"entropy"`
	// Fractions is the normalized Q2 answer per label. Treat as read-only:
	// memoized results share one backing slice across callers.
	Fractions []float64 `json:"fractions"`
}

// BatchResult summarizes one batch.
type BatchResult struct {
	K int `json:"k"`
	// Results is parallel to the request's Points.
	Results []PointResult `json:"results"`
	// CertainFraction is the fraction of CP'ed points in the batch.
	CertainFraction float64 `json:"certain_fraction"`
}

// BatchQuery answers Q1/Q2/entropy for every point of the request against
// the named dataset, fanning the points out across the server's worker
// budget. Engines come from the per-dataset LRU, Scratches from the shared
// free list, and repeated queries of a cached point are answered from its
// retained-tree memo. Canceling ctx — a disconnected HTTP client above all —
// stops the fan-out: remaining points are never started, in-flight workers
// stop at the next point boundary, and the context's error is returned with
// partial work discarded.
func (s *Server) BatchQuery(ctx context.Context, name string, req BatchRequest) (*BatchResult, error) {
	ds, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	return ds.BatchQuery(ctx, req, s.cfg)
}

// BatchQuery is the dataset-level batch entry point.
func (d *Dataset) BatchQuery(ctx context.Context, req BatchRequest, cfg Config) (*BatchResult, error) {
	cfg = cfg.withDefaults()
	k, err := d.resolveK(req.K)
	if err != nil {
		return nil, err
	}
	dim := d.dim()
	for i, t := range req.Points {
		if len(t) != dim {
			return nil, fmt.Errorf("serve: point %d has dim %d, dataset expects %d", i, len(t), dim)
		}
	}
	pool := d.pool(k, cfg)
	res := &BatchResult{K: k, Results: make([]PointResult, len(req.Points))}
	workers := cfg.Parallelism
	if workers > len(req.Points) {
		workers = len(req.Points)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sc *core.Scratch
			var scratches *core.ScratchPool
			defer func() {
				if sc != nil {
					scratches.Put(sc)
				}
			}()
			for i := range work {
				if errs[w] != nil || ctx.Err() != nil {
					continue // keep draining so senders never block
				}
				e, ent := pool.engine(req.Points[i])
				var r PointResult
				var qerr error
				if ent != nil {
					r, qerr = pool.queryEntry(ent, k, req.UseMC)
				} else {
					if sc == nil {
						scratches = pool.scratchesFor(e)
						sc = scratches.Get()
					}
					r, qerr = queryEngine(e, sc, k, req.UseMC)
				}
				if qerr != nil {
					errs[w] = qerr
					continue
				}
				res.Results[i] = r
			}
		}(w)
	}
feed:
	for i := range req.Points {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed // client gone: stop handing out points
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// Partial results are discarded: the caller disconnected, nobody is
		// left to read them. The wrapped context error lets the HTTP layer
		// answer with 499-style closed-connection handling.
		return nil, fmt.Errorf("serve: batch query abandoned: %w", err)
	}
	for _, werr := range errs {
		if werr != nil {
			return nil, werr
		}
	}
	certain := 0
	for _, r := range res.Results {
		if r.Certain {
			certain++
		}
	}
	if len(res.Results) > 0 {
		res.CertainFraction = float64(certain) / float64(len(res.Results))
	}
	return res, nil
}

// queryEngine answers both CP queries for one engine with the caller's
// Scratch. The engine may be shared across goroutines (no pins are set).
func queryEngine(e *core.Engine, sc *core.Scratch, k int, useMC bool) (PointResult, error) {
	var counts []float64
	if useMC {
		counts = e.CountsMC(sc, -1, -1)
	} else {
		counts = e.Counts(sc, -1, -1)
	}
	return assemblePointResult(e, k, append([]float64(nil), counts...))
}

// assemblePointResult derives prediction, entropy, and Q1 certainty from an
// owned Q2 fraction slice (exact MM for binary labels, threshold certainty
// otherwise). Both the fresh-sweep and retained-memo paths end here, so
// their answers agree field for field.
func assemblePointResult(e *core.Engine, k int, fractions []float64) (PointResult, error) {
	r := PointResult{
		Prediction: core.ArgmaxProb(fractions),
		Entropy:    core.Entropy(fractions),
		Fractions:  fractions,
	}
	if e.Instance().NumLabels == 2 {
		// MM answers Q1 exactly (no float tolerance) for binary labels.
		q1, err := e.CheckMM(k, -1, -1)
		if err != nil {
			return r, err
		}
		for _, b := range q1 {
			r.Certain = r.Certain || b
		}
	} else {
		r.Certain = core.IsCertain(fractions)
	}
	return r, nil
}

// dim returns the feature dimension of the dataset.
func (d *Dataset) dim() int {
	if d.data.N() == 0 {
		return 0
	}
	return len(d.data.Examples[0].Candidates[0])
}
