package serve

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// BatchRequest asks for CP answers for many test points in one call.
type BatchRequest struct {
	// Points holds the encoded test points.
	Points [][]float64
	// K overrides the dataset default when > 0.
	K int
	// UseMC answers Q2 with the multi-class winner-cap DP (appendix A.3)
	// instead of tally enumeration — preferable for large label alphabets.
	UseMC bool
}

// PointResult is the CP answer for one test point.
type PointResult struct {
	// Prediction is the most supported label (smallest-label tie-break).
	Prediction int `json:"prediction"`
	// Certain reports Q1: every possible world predicts Prediction.
	Certain bool `json:"certain"`
	// Entropy is the Shannon entropy (nats) of the Q2 distribution.
	Entropy float64 `json:"entropy"`
	// Fractions is the normalized Q2 answer per label. Treat as read-only:
	// memoized results share one backing slice across callers.
	Fractions []float64 `json:"fractions"`
}

// BatchResult summarizes one batch.
type BatchResult struct {
	K int `json:"k"`
	// Results is parallel to the request's Points.
	Results []PointResult `json:"results"`
	// CertainFraction is the fraction of CP'ed points in the batch.
	CertainFraction float64 `json:"certain_fraction"`
}

// BatchSummary is the per-batch aggregate a streaming query reports after its
// last point — the NDJSON trailer line's payload.
type BatchSummary struct {
	K int `json:"k"`
	// Points is the number of points answered.
	Points int `json:"points"`
	// CertainFraction is the fraction of CP'ed points in the batch.
	CertainFraction float64 `json:"certain_fraction"`
}

// splitParallelism budgets Config.Parallelism between the batch fan-out and
// each point's intra-sweep span workers so the two never multiply: a
// saturated fan-out leaves sweeps sequential, while a batch smaller than the
// budget hands the idle share to span parallelism (a single-point batch gets
// the full SweepWorkers). Both returns are ≥ 1.
func splitParallelism(cfg Config, points int) (batchWorkers, sweepWorkers int) {
	batchWorkers = cfg.Parallelism
	if batchWorkers > points {
		batchWorkers = points
	}
	if batchWorkers < 1 {
		batchWorkers = 1
	}
	sweepWorkers = cfg.SweepWorkers
	if sweepWorkers > 1 {
		if budget := cfg.Parallelism / batchWorkers; sweepWorkers > budget {
			sweepWorkers = budget
		}
	}
	if sweepWorkers < 1 {
		sweepWorkers = 1
	}
	return batchWorkers, sweepWorkers
}

// BatchQuery answers Q1/Q2/entropy for every point of the request against
// the named dataset, fanning the points out across the server's worker
// budget. Engines come from the per-dataset LRU, Scratches from the shared
// free list, and repeated queries of a cached point are answered from its
// retained-tree memo. Canceling ctx — a disconnected HTTP client above all —
// stops the fan-out: remaining points are never started, in-flight workers
// stop at the next point boundary, and the context's error is returned with
// partial work discarded.
func (s *Server) BatchQuery(ctx context.Context, name string, req BatchRequest) (*BatchResult, error) {
	ds, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	return ds.BatchQuery(ctx, req, s.cfg)
}

// StreamBatchQuery is BatchQuery with the results delivered through yield in
// request order as they complete, instead of buffered — the engine behind
// the NDJSON batch mode. A yield error aborts the batch and is returned.
func (s *Server) StreamBatchQuery(ctx context.Context, name string, req BatchRequest, yield func(i int, r PointResult) error) (BatchSummary, error) {
	ds, err := s.Dataset(name)
	if err != nil {
		return BatchSummary{}, err
	}
	return ds.StreamBatchQuery(ctx, req, s.cfg, yield)
}

// BatchQuery is the dataset-level batch entry point: the streaming pipeline
// with a buffer as its sink.
func (d *Dataset) BatchQuery(ctx context.Context, req BatchRequest, cfg Config) (*BatchResult, error) {
	res := &BatchResult{Results: make([]PointResult, len(req.Points))}
	sum, err := d.StreamBatchQuery(ctx, req, cfg, func(i int, r PointResult) error {
		res.Results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.K, res.CertainFraction = sum.K, sum.CertainFraction
	return res, nil
}

// StreamBatchQuery answers the request point by point, invoking yield in
// request order as results complete (runOrdered's reorder buffer over the
// worker fan-out). On a query error the lowest failing point index's error
// is returned — deterministically, regardless of worker scheduling.
func (d *Dataset) StreamBatchQuery(ctx context.Context, req BatchRequest, cfg Config, yield func(i int, r PointResult) error) (BatchSummary, error) {
	cfg = cfg.withDefaults()
	k, err := d.resolveK(req.K)
	if err != nil {
		return BatchSummary{}, err
	}
	dim := d.dim()
	for i, t := range req.Points {
		if len(t) != dim {
			return BatchSummary{}, fmt.Errorf("serve: point %d has dim %d, dataset expects %d", i, len(t), dim)
		}
	}
	pool := d.pool(k, cfg)
	batchWorkers, sweepWorkers := splitParallelism(cfg, len(req.Points))
	// Pooled engines are never pinned, so a dataset-level answer can never go
	// stale: the result-cache generation is a constant 0 and a hit skips the
	// engine layer entirely.
	results := cfg.resultCacheFor()
	certain := 0
	err = runOrdered(ctx, len(req.Points), batchWorkers, cfg.streams,
		func(i int) (PointResult, error) {
			var key string
			if results != nil {
				key = resultKey(d.fingerprint, "", k, req.UseMC, 0, pointKey(req.Points[i]))
				if r, ok := results.get(key); ok {
					return r, nil
				}
			}
			r, err := func() (PointResult, error) {
				e, ent := pool.engine(req.Points[i])
				if ent != nil {
					return pool.queryEntry(ent, k, req.UseMC, sweepWorkers)
				}
				return pool.querySweep(e, k, req.UseMC, sweepWorkers)
			}()
			if err == nil && results != nil {
				results.put(key, r)
			}
			return r, err
		},
		func(i int, r PointResult) error {
			if r.Certain {
				certain++
			}
			return yield(i, r)
		})
	if err != nil {
		if ctx.Err() != nil {
			// Partial results are abandoned: the caller disconnected, nobody
			// is left to read them. The wrapped context error lets the HTTP
			// layer answer with 499-style closed-connection handling.
			return BatchSummary{}, fmt.Errorf("serve: batch query abandoned: %w", ctx.Err())
		}
		return BatchSummary{}, err
	}
	sum := BatchSummary{K: k, Points: len(req.Points)}
	if len(req.Points) > 0 {
		sum.CertainFraction = float64(certain) / float64(len(req.Points))
	}
	return sum, nil
}

// queryEngine answers both CP queries for one engine with the caller's
// Scratch. The engine may be shared across goroutines (no pins are set).
func queryEngine(e *core.Engine, sc *core.Scratch, k int, useMC bool) (PointResult, error) {
	var counts []float64
	if useMC {
		counts = e.CountsMC(sc, -1, -1)
	} else {
		counts = e.Counts(sc, -1, -1)
	}
	return assemblePointResult(e, k, append([]float64(nil), counts...))
}

// assemblePointResult derives prediction, entropy, and Q1 certainty from an
// owned Q2 fraction slice (exact MM for binary labels, threshold certainty
// otherwise). Both the fresh-sweep and retained-memo paths end here, so
// their answers agree field for field.
func assemblePointResult(e *core.Engine, k int, fractions []float64) (PointResult, error) {
	r := PointResult{
		Prediction: core.ArgmaxProb(fractions),
		Entropy:    core.Entropy(fractions),
		Fractions:  fractions,
	}
	if e.Instance().NumLabels == 2 {
		// MM answers Q1 exactly (no float tolerance) for binary labels.
		q1, err := e.CheckMM(k, -1, -1)
		if err != nil {
			return r, err
		}
		for _, b := range q1 {
			r.Certain = r.Certain || b
		}
	} else {
		r.Certain = core.IsCertain(fractions)
	}
	return r, nil
}

// dim returns the feature dimension of the dataset. Registration rejects
// rows with empty candidate sets, so the indexing below is safe for any
// registered dataset; the guards keep a hand-built zero-row or zero-candidate
// value from panicking regardless.
func (d *Dataset) dim() int {
	if d.data.N() == 0 || d.data.Examples[0].M() == 0 {
		return 0
	}
	return len(d.data.Examples[0].Candidates[0])
}
