// Package serve is the concurrent batch CP-query serving layer: it owns
// registered incomplete datasets and answers Q1/Q2/entropy queries for many
// test points per request, amortizing the expensive per-test-point state
// (engine construction, Scratch segment trees) across queries instead of
// rebuilding it per call the way the one-shot core API does.
//
// Three pooling levers, in decreasing order of savings:
//
//   - Scratches (O(N·K) segment trees) are pooled per (dataset, K) via
//     core.ScratchPool — every engine of one dataset has the same shape, so
//     one free list serves every worker and every test point.
//   - Engines (O(NM log NM) candidate sort) are cached per (dataset, K) in
//     an LRU keyed by test point, so repeated queries for hot points skip
//     construction entirely. Engines are immutable while serving batch
//     queries (pins are only used by cleaning sessions, which own private
//     engines), so one cached engine safely serves many goroutines, each
//     with its own pooled Scratch.
//   - Batch requests fan out across a bounded worker pool mirroring
//     cleaning.Options.Parallelism.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
)

// ErrConflict marks a registration rejected because the name is taken by a
// dataset with a different fingerprint.
var ErrConflict = errors.New("serve: conflict")

// ErrNotFound marks a lookup of an unregistered dataset name or an unknown
// clean-session ID. The HTTP layer maps it to 404 so callers can tell "no
// such resource" apart from a bad request.
var ErrNotFound = errors.New("serve: not found")

// ErrGone marks a lookup of a clean session that existed but was evicted by
// the idle-TTL reaper. The HTTP layer maps it to 410 so clients can tell
// "your session expired, restart the run" apart from a mistyped ID (404).
var ErrGone = errors.New("serve: session expired")

// ErrBusy marks an attempt to drive a clean session that already has a
// driver attached (a concurrent /next or /stream). Sessions admit exactly
// one driver at a time; the HTTP layer maps this to 409.
var ErrBusy = errors.New("serve: session busy")

// ErrCapacity marks a session creation rejected because MaxCleanSessions
// live sessions already exist. The HTTP layer maps it to 429.
var ErrCapacity = errors.New("serve: session capacity reached")

// ErrSessionFailed wraps a server-side step error stored on a clean session:
// the run cannot continue, but its executed-step history stays replayable.
// The HTTP layer maps it to 500 — the client did nothing wrong.
var ErrSessionFailed = errors.New("serve: session failed")

// Config tunes the server.
type Config struct {
	// Parallelism bounds worker goroutines per batch request (0 = GOMAXPROCS).
	Parallelism int
	// EngineCacheSize is the per-(dataset, K) LRU capacity for test-point
	// engines (0 = DefaultEngineCacheSize, negative = disable caching).
	EngineCacheSize int
	// MaxCleanSessions caps concurrently live clean sessions
	// (0 = DefaultMaxCleanSessions, negative = unlimited). Creation beyond
	// the cap fails with ErrCapacity (HTTP 429).
	MaxCleanSessions int
	// SessionTTL evicts clean sessions idle longer than this
	// (0 = DefaultSessionTTL, negative = never expire). Expired sessions
	// answer ErrGone (HTTP 410) until their tombstone ages out.
	SessionTTL time.Duration
	// MaxRegisterBytes caps the dataset-registration request body
	// (0 = DefaultMaxRegisterBytes, negative = unlimited). Oversized bodies
	// get HTTP 413.
	MaxRegisterBytes int64
	// MaxQueryBytes caps query and clean-start request bodies
	// (0 = DefaultMaxQueryBytes, negative = unlimited).
	MaxQueryBytes int64
}

// DefaultEngineCacheSize is the engine LRU capacity used when
// Config.EngineCacheSize is zero.
const DefaultEngineCacheSize = 256

// Defaults for the session store and HTTP body caps (used when the
// corresponding Config field is zero).
const (
	DefaultMaxCleanSessions = 64
	DefaultSessionTTL       = 15 * time.Minute
	DefaultMaxRegisterBytes = 32 << 20 // datasets are the big payload
	DefaultMaxQueryBytes    = 8 << 20  // points/truth are much smaller
)

func (c Config) withDefaults() Config {
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.EngineCacheSize == 0 {
		c.EngineCacheSize = DefaultEngineCacheSize
	}
	if c.EngineCacheSize < 0 {
		c.EngineCacheSize = 0
	}
	if c.MaxCleanSessions == 0 {
		c.MaxCleanSessions = DefaultMaxCleanSessions
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = DefaultSessionTTL
	}
	if c.MaxRegisterBytes == 0 {
		c.MaxRegisterBytes = DefaultMaxRegisterBytes
	}
	if c.MaxQueryBytes == 0 {
		c.MaxQueryBytes = DefaultMaxQueryBytes
	}
	return c
}

// Server is a registry of datasets plus the query machinery over them. All
// methods are safe for concurrent use.
type Server struct {
	cfg Config

	mu       sync.RWMutex
	datasets map[string]*Dataset

	sessions *sessionStore
}

// NewServer builds an empty server.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		datasets: make(map[string]*Dataset),
		sessions: newSessionStore(cfg.MaxCleanSessions, cfg.SessionTTL),
	}
}

// Close stops the session reaper and releases every live clean session.
// Safe to call more than once; call it when discarding the server (e.g. on
// process shutdown) so session resources return to the pools promptly.
func (s *Server) Close() {
	s.sessions.close()
}

// Dataset is one registered incomplete dataset with its serving state.
type Dataset struct {
	name        string
	fingerprint string
	data        *dataset.Incomplete
	kernel      knn.Kernel
	k           int // default K for queries against this dataset

	mu    sync.Mutex
	pools map[int]*enginePool // by K
}

// Register adds an incomplete dataset under the given name. kernel defaults
// to the paper's NegEuclidean, k to 3. Registering an identical dataset
// (same fingerprint, kernel, K) under an existing name is idempotent;
// conflicting re-registration is an error.
func (s *Server) Register(name string, d *dataset.Incomplete, kernel knn.Kernel, k int) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: dataset name required")
	}
	if kernel == nil {
		kernel = knn.NegEuclidean{}
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("serve: cannot register an empty dataset")
	}
	if k <= 0 {
		// The default K must stay valid on tiny datasets: clamp to min(3, N)
		// instead of failing with an out-of-range error the caller never
		// asked for.
		k = 3
		if n := d.N(); k > n {
			k = n
		}
	}
	if k > d.N() {
		return nil, fmt.Errorf("serve: K=%d out of range for N=%d", k, d.N())
	}
	ds := &Dataset{
		name:        name,
		fingerprint: Fingerprint(d, kernel, k),
		data:        d,
		kernel:      kernel,
		k:           k,
		pools:       make(map[int]*enginePool),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.datasets[name]; ok {
		if old.fingerprint == ds.fingerprint {
			return old, nil
		}
		return nil, fmt.Errorf("%w: dataset %q already registered with a different fingerprint", ErrConflict, name)
	}
	s.datasets[name] = ds
	return ds, nil
}

// Dataset looks up a registered dataset by name.
func (s *Server) Dataset(name string) (*Dataset, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown dataset %q", ErrNotFound, name)
	}
	return ds, nil
}

// Names lists registered dataset names in sorted order.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the registration name.
func (d *Dataset) Name() string { return d.name }

// Fingerprint returns the dataset's content fingerprint.
func (d *Dataset) Fingerprint() string { return d.fingerprint }

// Data returns the underlying incomplete dataset. Treat it as immutable:
// engines cached by the serving layer alias its candidate vectors.
func (d *Dataset) Data() *dataset.Incomplete { return d.data }

// Kernel returns the similarity kernel queries run under.
func (d *Dataset) Kernel() knn.Kernel { return d.kernel }

// K returns the default K.
func (d *Dataset) K() int { return d.k }

// resolveK applies the dataset default and validates the range.
func (d *Dataset) resolveK(k int) (int, error) {
	if k == 0 {
		k = d.k
	}
	if k <= 0 || k > d.data.N() {
		return 0, fmt.Errorf("serve: K=%d out of range for N=%d", k, d.data.N())
	}
	return k, nil
}

// Fingerprint hashes the dataset contents together with the kernel identity
// and default K — the cache key property: equal fingerprints answer every CP
// query identically.
func Fingerprint(d *dataset.Incomplete, kernel knn.Kernel, k int) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	h.Write([]byte(kernel.Name()))
	// Name() alone under-identifies parameterized kernels.
	if rbf, ok := kernel.(knn.RBF); ok {
		writeFloat(rbf.Gamma)
	}
	writeInt(k)
	writeInt(d.NumLabels)
	writeInt(d.N())
	for i := range d.Examples {
		ex := &d.Examples[i]
		writeInt(ex.Label)
		writeInt(ex.M())
		for _, c := range ex.Candidates {
			writeInt(len(c))
			for _, v := range c {
				writeFloat(v)
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
