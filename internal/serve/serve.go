package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/knn"
	"repro/internal/replica"
)

// ErrConflict marks a registration rejected because the name is taken by a
// dataset with a different fingerprint.
var ErrConflict = errors.New("serve: conflict")

// ErrNotFound marks a lookup of an unregistered dataset name or an unknown
// clean-session ID. The HTTP layer maps it to 404 so callers can tell "no
// such resource" apart from a bad request.
var ErrNotFound = errors.New("serve: not found")

// ErrGone marks a lookup of a clean session that existed but was evicted by
// the idle-TTL reaper. The HTTP layer maps it to 410 so clients can tell
// "your session expired, restart the run" apart from a mistyped ID (404).
var ErrGone = errors.New("serve: session expired")

// ErrBusy marks an attempt to drive a clean session that already has a
// driver attached (a concurrent /next or /stream). Sessions admit exactly
// one driver at a time; the HTTP layer maps this to 409.
var ErrBusy = errors.New("serve: session busy")

// ErrCapacity marks a session creation rejected because MaxCleanSessions
// live sessions already exist. The HTTP layer maps it to 429.
var ErrCapacity = errors.New("serve: session capacity reached")

// ErrSessionFailed wraps a server-side step error stored on a clean session:
// the run cannot continue, but its executed-step history stays replayable.
// The HTTP layer maps it to 500 — the client did nothing wrong.
var ErrSessionFailed = errors.New("serve: session failed")

// ErrUnavailable marks a request that reached the server outside its serving
// window: while it is still replaying its data directory at startup, or
// after Close. The HTTP layer maps it to 503 — retry, don't fix the request.
var ErrUnavailable = errors.New("serve: temporarily unavailable")

// ErrPersist marks a write the durable journal could not confirm. The
// operation is rolled back in memory and reported failed; note that a
// failed fsync cannot prove the record's absence from disk, so after a
// crash the rolled-back change may still replay. The log poisons itself on
// the first such failure — every later durable operation fails loudly — so
// this is a degraded-durability signal for the operator, not a state the
// server keeps running through silently. The HTTP layer maps it to 500.
var ErrPersist = errors.New("serve: persistence failure")

// ErrNotLeader marks a state-changing request (registration, session
// creation, stepping, release) sent to a read-only follower. The HTTP layer
// maps it to 421 Misdirected Request with the leader's URL in the Leader
// response header — retry the same request there.
var ErrNotLeader = errors.New("serve: not the leader")

// Config tunes the server.
type Config struct {
	// Parallelism bounds worker goroutines per batch request (0 = GOMAXPROCS).
	Parallelism int
	// SweepWorkers enables the span-parallel SS-DC sweep inside a single
	// point's Q2 scan with up to this many workers (0 or 1 = sequential
	// sweeps, the default). The effective per-point worker count is budgeted
	// against Parallelism: batch fan-out and span workers share the one
	// budget, so a saturated batch runs sequential sweeps while a
	// single-point query gets the full count. Answers are bit-for-bit
	// identical either way.
	SweepWorkers int
	// EngineCacheSize is the per-(dataset, K) LRU capacity for test-point
	// engines (0 = DefaultEngineCacheSize, negative = disable caching).
	EngineCacheSize int
	// MaxEngineBytes is the approximate heap budget of each per-(dataset, K)
	// engine LRU — engines plus their retained-tree query memos, byte-counted
	// rather than entry-counted, so many large engines cannot blow the heap
	// (0 = DefaultMaxEngineBytes, negative = unlimited). The most recently
	// used entry is always kept, so a single over-budget engine degrades to
	// cache-of-one instead of thrashing.
	MaxEngineBytes int64
	// DisableQueryMemo turns off the retained-tree batch-query memo: every
	// batch Q2 runs a full SS-DC sweep — the pre-incremental behavior, kept
	// as the benchmark/ablation baseline (BenchmarkBatchQ2_FullSweep). It
	// also bypasses the result cache, so the ablation's sweep counters stay
	// comparable.
	DisableQueryMemo bool
	// ResultCacheBytes enables the server-wide query result cache with this
	// approximate byte budget: finished PointResults are kept by (dataset
	// fingerprint, session, K, accumulator mode, pin generation, test point),
	// so a repeated batch or session query is answered without touching an
	// engine at all. Unlike the other knobs, 0 does not mean "default" — it
	// (and any negative value) disables the cache. The cache is opt-in
	// because a hit skips the engine/memo layers entirely, changing which
	// /v1/stats counters a repeated query advances.
	ResultCacheBytes int64
	// MaxCleanSessions caps concurrently live clean sessions
	// (0 = DefaultMaxCleanSessions, negative = unlimited). Creation beyond
	// the cap fails with ErrCapacity (HTTP 429).
	MaxCleanSessions int
	// SessionTTL evicts clean sessions idle longer than this
	// (0 = DefaultSessionTTL, negative = never expire). Expired sessions
	// answer ErrGone (HTTP 410) until their tombstone ages out.
	SessionTTL time.Duration
	// MaxRegisterBytes caps the dataset-registration request body
	// (0 = DefaultMaxRegisterBytes, negative = unlimited). Oversized bodies
	// get HTTP 413.
	MaxRegisterBytes int64
	// MaxQueryBytes caps query and clean-start request bodies
	// (0 = DefaultMaxQueryBytes, negative = unlimited).
	MaxQueryBytes int64
	// DataDir enables crash-safe persistence: dataset registrations and
	// every clean-session event are journaled to an append-only WAL (plus
	// periodic snapshots) under this directory and replayed by Open after a
	// restart. Empty = purely in-memory, exactly the pre-durability
	// behavior. Run one server process per data directory.
	DataDir string
	// WALSegmentBytes rotates and compacts the WAL (sealing the segment,
	// snapshotting full state, deleting superseded files) once the active
	// segment exceeds this size (0 = DefaultWALSegmentBytes, negative =
	// never compact).
	WALSegmentBytes int64
	// WALSyncInterval is the group-commit window: acknowledged writes are
	// fsynced at least this often, and many writers share each fsync
	// (0 = durable.DefaultSyncInterval, negative = fsync on every append).
	WALSyncInterval time.Duration
	// FollowURL turns the server into a read-only replica of the leader at
	// this base URL: it tails the leader's WAL ship stream
	// (GET /v1/wal/stream), applies every journaled record through the same
	// code path recovery uses, re-journals it into its own DataDir (required
	// in this mode), and serves batch/entropy queries and session reads from
	// the replicated state. Writes are rejected with ErrNotLeader (HTTP 421
	// + Leader header). SessionTTL is forced to "never" on a follower:
	// expiry arrives only as replicated expire records, so leader and
	// follower evict identically.
	FollowURL string
	// AdvertiseURL is the leader's client-facing base URL, echoed to
	// followers on the ship stream (and from them to misdirected writers).
	AdvertiseURL string
	// Logf receives recovery and background-maintenance warnings
	// (nil = log.Printf).
	Logf func(format string, args ...interface{})

	// streams points at the owning Server's runOrdered counters. Set by Open;
	// the pointer rides along with every Config copy the request paths make,
	// and is nil (counters off) for a Config built by hand in tests.
	streams *streamCounters
	// results points at the owning Server's result cache (nil when
	// ResultCacheBytes leaves it disabled). Set by Open, same pattern as
	// streams: the pointer rides along with every Config copy.
	results *resultCache
}

// DefaultEngineCacheSize is the engine LRU capacity used when
// Config.EngineCacheSize is zero.
const DefaultEngineCacheSize = 256

// DefaultMaxEngineBytes is the per-(dataset, K) engine-cache byte budget
// used when Config.MaxEngineBytes is zero.
const DefaultMaxEngineBytes = 1 << 30

// Defaults for the session store and HTTP body caps (used when the
// corresponding Config field is zero).
const (
	DefaultMaxCleanSessions = 64
	DefaultSessionTTL       = 15 * time.Minute
	DefaultMaxRegisterBytes = 32 << 20 // datasets are the big payload
	DefaultMaxQueryBytes    = 8 << 20  // points/truth are much smaller
)

// DefaultWALSegmentBytes is the WAL rotation/compaction threshold used when
// Config.WALSegmentBytes is zero.
const DefaultWALSegmentBytes = 8 << 20

func (c Config) withDefaults() Config {
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	// Negative sentinels (disable / unlimited) are preserved, not collapsed
	// to zero: withDefaults is applied both at Open and again on the request
	// paths (Dataset.BatchQuery takes a caller Config), so it must be
	// idempotent — collapsing −1 to 0 here would turn "disabled" back into
	// the default on the second application.
	if c.EngineCacheSize == 0 {
		c.EngineCacheSize = DefaultEngineCacheSize
	}
	if c.MaxEngineBytes == 0 {
		c.MaxEngineBytes = DefaultMaxEngineBytes
	}
	if c.MaxCleanSessions == 0 {
		c.MaxCleanSessions = DefaultMaxCleanSessions
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = DefaultSessionTTL
	}
	if c.MaxRegisterBytes == 0 {
		c.MaxRegisterBytes = DefaultMaxRegisterBytes
	}
	if c.MaxQueryBytes == 0 {
		c.MaxQueryBytes = DefaultMaxQueryBytes
	}
	if c.WALSegmentBytes == 0 {
		c.WALSegmentBytes = DefaultWALSegmentBytes
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Server lifecycle states (Server.state). A closed server answers every
// request with ErrUnavailable (HTTP 503); cpserve additionally serves 503
// at the listener while Open is still replaying the data directory, before
// any *Server exists to ask.
const (
	stateReady int32 = iota
	stateClosed
)

// Server is a registry of datasets plus the query machinery over them. All
// methods are safe for concurrent use.
type Server struct {
	cfg  Config
	logf func(format string, args ...interface{})

	mu       sync.RWMutex
	datasets map[string]*Dataset // guarded by mu

	sessions *sessionStore

	journal *journal // nil when Config.DataDir is empty
	state   atomic.Int32

	// results is the opt-in server-wide query result cache (nil when
	// Config.ResultCacheBytes leaves it disabled).
	results *resultCache

	// streams aggregates runOrdered's fan-out counters across every batch
	// query (dataset- and session-level) this server answers.
	streams streamCounters

	// Replication roles (both nil on an in-memory server): shipper serves
	// this WAL to followers; tailer makes this server a follower of
	// Config.FollowURL.
	shipper *replica.Shipper
	tailer  *replica.Tailer
	// cursorPath is the follower's persisted-cursor file; lastSaved is the
	// last cursor written there. Both are touched only by Open/Close and the
	// tailer's single OnAdvance goroutine.
	cursorPath string
	lastSaved  durable.Cursor
}

// NewServer builds an empty in-memory server: Config.DataDir and
// Config.FollowURL are ignored and nothing survives the process. Use Open
// for a durable server or a follower.
func NewServer(cfg Config) *Server {
	cfg.DataDir = ""
	cfg.FollowURL = ""
	s, err := Open(cfg)
	if err != nil {
		// Open without a data directory touches no I/O and cannot fail.
		panic(err)
	}
	return s
}

// Open builds a server and, when cfg.DataDir is set, recovers it from the
// directory's snapshot + WAL before marking it ready: registered datasets
// come back verbatim (fingerprint-verified), unfinished clean sessions come
// back suspended — request and executed-step history only; their engines
// are rebuilt by the first driver — and expiry tombstones and releases are
// honored, so session IDs keep answering 410/404 truthfully across the
// restart. A torn WAL tail (crash mid-write) is truncated with a warning,
// never a startup failure.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	follower := cfg.FollowURL != ""
	if follower {
		if cfg.DataDir == "" {
			return nil, fmt.Errorf("serve: follower mode (FollowURL) requires a DataDir to journal replicated records")
		}
		// Expiry must arrive only as replicated expire records; a follower
		// running its own idle clock would evict sessions the leader still
		// has, and the two would answer session lookups differently.
		cfg.SessionTTL = -1
	}
	s := &Server{
		cfg:      cfg,
		logf:     cfg.Logf,
		datasets: make(map[string]*Dataset),
		sessions: newSessionStore(cfg.MaxCleanSessions, cfg.SessionTTL),
	}
	s.cfg.streams = &s.streams
	if cfg.ResultCacheBytes > 0 {
		s.results = newResultCache(cfg.ResultCacheBytes)
		s.cfg.results = s.results
	}
	if cfg.DataDir == "" {
		s.state.Store(stateReady)
		return s, nil
	}
	st, err := durable.Open(cfg.DataDir, durable.Options{
		SyncInterval: cfg.WALSyncInterval,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	if err := s.recoverFrom(st); err != nil {
		st.Close()
		return nil, err
	}
	// The recovered snapshot/record buffers are folded into the registry and
	// session store now; drop them instead of pinning them for the process
	// lifetime.
	st.ReleaseRecovered()
	s.journal = &journal{store: st, logf: cfg.Logf, segmentBytes: cfg.WALSegmentBytes}
	if follower {
		// Resume tailing from the persisted cursor: everything before it was
		// applied AND re-journaled locally (the local replay above already
		// rebuilt that state), so the leader only re-ships what is missing.
		s.cursorPath = filepath.Join(cfg.DataDir, replica.CursorFileName)
		cursor, _, err := replica.LoadCursor(s.cursorPath)
		if err != nil {
			st.Close()
			return nil, err
		}
		s.lastSaved = cursor
		s.state.Store(stateReady)
		s.tailer = replica.StartTailer(replica.TailerConfig{
			BaseURL:       cfg.FollowURL,
			Apply:         s.applyShipped,
			ApplySnapshot: s.applyReplicaSnapshot,
			OnAdvance:     s.noteApplied,
			Logf:          cfg.Logf,
		}, cursor)
		return s, nil
	}
	s.shipper = &replica.Shipper{Store: st, Advertise: cfg.AdvertiseURL, Logf: cfg.Logf}
	s.sessions.maybeStartReaper()
	s.state.Store(stateReady)
	return s, nil
}

// availErr reports why the server cannot serve right now (nil when it can).
func (s *Server) availErr() error {
	if s.state.Load() == stateReady {
		return nil
	}
	return fmt.Errorf("%w: server is shut down", ErrUnavailable)
}

// Close stops the session reaper, releases every live clean session, and —
// for a durable server — flushes and fsyncs the WAL before closing it, so a
// graceful shutdown (e.g. SIGTERM) loses nothing, not even records still in
// the group-commit window. Safe to call more than once; afterwards every
// request answers ErrUnavailable (HTTP 503).
func (s *Server) Close() {
	if !s.state.CompareAndSwap(stateReady, stateClosed) {
		return // already closed
	}
	if s.tailer != nil {
		// Stop tailing first, then persist the final applied cursor behind one
		// last fsync, so a restart resumes exactly where the tail stopped
		// instead of re-fetching (idempotently) from the last tip save.
		s.tailer.Close()
		if c := s.tailer.Status().Cursor; !c.IsZero() && c != s.lastSaved {
			if err := s.journal.store.Sync(); err != nil {
				s.logf("serve: follower shutdown: syncing replicated journal: %v", err)
			} else if err := replica.SaveCursor(s.cursorPath, c); err != nil {
				s.logf("serve: follower shutdown: persisting cursor: %v", err)
			}
		}
	}
	s.sessions.close()
	if s.journal != nil {
		s.journal.close()
	}
}

// RecoveredCounts reports what a durable Open found: registered datasets and
// live (including suspended) clean sessions. Handy for startup logging.
func (s *Server) RecoveredCounts() (datasets, sessions int) {
	s.mu.RLock()
	datasets = len(s.datasets)
	s.mu.RUnlock()
	return datasets, s.CleanSessionCount()
}

// Dataset is one registered incomplete dataset with its serving state.
type Dataset struct {
	name        string
	fingerprint string
	data        *dataset.Incomplete
	kernel      knn.Kernel
	k           int // default K for queries against this dataset
	// persistable marks a dataset whose kernel has a wire form (every
	// built-in kernel; custom Go implementations do not), so it and its
	// sessions can be journaled. Always true for HTTP registrations.
	persistable bool
	// ready is closed once the registration is durable (immediately for
	// in-memory/recovered datasets); registerErr is set first if the WAL
	// commit failed and the registration was rolled back. A concurrent
	// idempotent Register of the same content waits on it, so no caller is
	// ever told "registered" before the registration would survive a crash.
	ready       chan struct{}
	registerErr error

	mu    sync.Mutex
	pools map[int]*enginePool // by K
}

// Register adds an incomplete dataset under the given name. kernel defaults
// to the paper's NegEuclidean, k to 3. Registering an identical dataset
// (same fingerprint, kernel, K) under an existing name is idempotent;
// conflicting re-registration is an error.
func (s *Server) Register(name string, d *dataset.Incomplete, kernel knn.Kernel, k int) (*Dataset, error) {
	if err := s.writeGate(); err != nil {
		return nil, err
	}
	if name == "" {
		return nil, fmt.Errorf("serve: dataset name required")
	}
	if kernel == nil {
		kernel = knn.NegEuclidean{}
	}
	if d.N() == 0 {
		return nil, fmt.Errorf("serve: cannot register an empty dataset")
	}
	// A row with no candidates has no possible worlds — and would panic the
	// feature-dimension probe (Dataset.dim) and every scan over it. dataset
	// decoders reject this shape already; hand-built values get a clean
	// 400-mapped error here instead of a panic at first query.
	for i := range d.Examples {
		if d.Examples[i].M() == 0 {
			return nil, fmt.Errorf("serve: example %d has no candidates", i)
		}
	}
	if k <= 0 {
		// The default K must stay valid on tiny datasets: clamp to min(3, N)
		// instead of failing with an out-of-range error the caller never
		// asked for.
		k = 3
		if n := d.N(); k > n {
			k = n
		}
	}
	if k > d.N() {
		return nil, fmt.Errorf("serve: K=%d out of range for N=%d", k, d.N())
	}
	_, persistable := kernelSpecFor(kernel)
	ds := &Dataset{
		name:        name,
		fingerprint: Fingerprint(d, kernel, k),
		data:        d,
		kernel:      kernel,
		k:           k,
		persistable: persistable,
		pools:       make(map[int]*enginePool),
	}
	for {
		s.mu.Lock()
		if old, ok := s.datasets[name]; ok {
			s.mu.Unlock()
			if old.fingerprint != ds.fingerprint {
				return nil, fmt.Errorf("%w: dataset %q already registered with a different fingerprint", ErrConflict, name)
			}
			// Idempotent hit — but "registered" must mean durable, so wait for
			// the original registration's WAL commit rather than acknowledging
			// state a crash could still lose. If that commit failed and rolled
			// back, retry the registration ourselves.
			<-old.ready
			if old.registerErr != nil {
				continue
			}
			return old, nil
		}
		if s.journal != nil && !persistable {
			s.logf("serve: dataset %q uses a custom kernel with no wire form; it and its sessions will not survive a restart", name)
		}
		ds.ready = make(chan struct{})
		s.datasets[name] = ds
		// Buffer the journal record under the lock so a concurrent snapshot can
		// never capture a registry state the log is missing; pay the fsync wait
		// (commit) after unlocking so registrations don't stall every lookup
		// for a group-commit window. A registration the WAL cannot record must
		// not exist: it would silently vanish on restart while its sessions'
		// records survive — so a failed commit rolls the insert back.
		commit, err := s.journalRegisterStart(ds)
		if err != nil {
			delete(s.datasets, name)
			ds.registerErr = err
			close(ds.ready)
			s.mu.Unlock()
			return nil, err
		}
		s.mu.Unlock()
		if err := commit(); err != nil {
			s.mu.Lock()
			if cur, ok := s.datasets[name]; ok && cur == ds {
				delete(s.datasets, name)
			}
			ds.registerErr = err
			close(ds.ready)
			s.mu.Unlock()
			return nil, err
		}
		close(ds.ready)
		return ds, nil
	}
}

// Dataset looks up a registered dataset by name.
func (s *Server) Dataset(name string) (*Dataset, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown dataset %q", ErrNotFound, name)
	}
	return ds, nil
}

// Names lists registered dataset names in sorted order.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.namesLocked()
}

// namesLocked is Names with s.mu already held (either mode).
func (s *Server) namesLocked() []string {
	out := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the registration name.
func (d *Dataset) Name() string { return d.name }

// Fingerprint returns the dataset's content fingerprint.
func (d *Dataset) Fingerprint() string { return d.fingerprint }

// Data returns the underlying incomplete dataset. Treat it as immutable:
// engines cached by the serving layer alias its candidate vectors.
func (d *Dataset) Data() *dataset.Incomplete { return d.data }

// Kernel returns the similarity kernel queries run under.
func (d *Dataset) Kernel() knn.Kernel { return d.kernel }

// K returns the default K.
func (d *Dataset) K() int { return d.k }

// resolveK applies the dataset default and validates the range.
func (d *Dataset) resolveK(k int) (int, error) {
	if k == 0 {
		k = d.k
	}
	if k <= 0 || k > d.data.N() {
		return 0, fmt.Errorf("serve: K=%d out of range for N=%d", k, d.data.N())
	}
	return k, nil
}

// Fingerprint hashes the dataset contents together with the kernel identity
// and default K — the cache key property: equal fingerprints answer every CP
// query identically.
func Fingerprint(d *dataset.Incomplete, kernel knn.Kernel, k int) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	h.Write([]byte(kernel.Name()))
	// Name() alone under-identifies parameterized kernels.
	if rbf, ok := kernel.(knn.RBF); ok {
		writeFloat(rbf.Gamma)
	}
	writeInt(k)
	writeInt(d.NumLabels)
	writeInt(d.N())
	for i := range d.Examples {
		ex := &d.Examples[i]
		writeInt(ex.Label)
		writeInt(ex.M())
		for _, c := range ex.Candidates {
			writeInt(len(c))
			for _, v := range c {
				writeFloat(v)
			}
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
