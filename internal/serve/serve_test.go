package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
)

// randDataset builds a deterministic random incomplete dataset: label-
// dependent cluster centers, uncertainFrac of rows with m jittered
// candidates.
func randDataset(t testing.TB, n, m, numLabels, dim int, uncertainFrac float64, seed int64) *dataset.Incomplete {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	examples := make([]dataset.Example, n)
	for i := range examples {
		label := rng.Intn(numLabels)
		if i < numLabels {
			label = i // every label present
		}
		base := make([]float64, dim)
		for d := range base {
			base[d] = float64(label) + rng.NormFloat64()
		}
		cands := [][]float64{base}
		if rng.Float64() < uncertainFrac {
			for j := 1; j < m; j++ {
				c := make([]float64, dim)
				for d := range c {
					c[d] = base[d] + rng.NormFloat64()
				}
				cands = append(cands, c)
			}
		}
		examples[i] = dataset.Example{Candidates: cands, Label: label}
	}
	return dataset.MustNew(examples, numLabels)
}

func randPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = 2 * rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// TestBatchQueryMatchesOneShot cross-checks every batch answer against the
// one-shot core.QueryDataset path, binary and multi-class.
func TestBatchQueryMatchesOneShot(t *testing.T) {
	for _, numLabels := range []int{2, 3} {
		t.Run(fmt.Sprintf("labels=%d", numLabels), func(t *testing.T) {
			d := randDataset(t, 40, 3, numLabels, 2, 0.4, 7)
			s := NewServer(Config{})
			if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
				t.Fatal(err)
			}
			points := randPoints(20, 2, 11)
			res, err := s.BatchQuery("d", BatchRequest{Points: points})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Results) != len(points) {
				t.Fatalf("got %d results for %d points", len(res.Results), len(points))
			}
			for i, p := range points {
				q1, q2, err := core.QueryDataset(d, knn.NegEuclidean{}, p, 3)
				if err != nil {
					t.Fatal(err)
				}
				r := res.Results[i]
				for y := range q2 {
					if math.Abs(r.Fractions[y]-q2[y]) > 1e-9 {
						t.Fatalf("point %d label %d: batch %v vs one-shot %v", i, y, r.Fractions, q2)
					}
				}
				wantCertain := false
				for _, b := range q1 {
					wantCertain = wantCertain || b
				}
				if r.Certain != wantCertain {
					t.Fatalf("point %d: batch certain=%v, one-shot %v", i, r.Certain, wantCertain)
				}
				if r.Prediction != core.ArgmaxProb(q2) {
					t.Fatalf("point %d: batch prediction %d, one-shot %d", i, r.Prediction, core.ArgmaxProb(q2))
				}
			}
		})
	}
}

// TestBatchQueryMCMatchesSSDC checks the UseMC path agrees with tally
// enumeration.
func TestBatchQueryMCMatchesSSDC(t *testing.T) {
	d := randDataset(t, 30, 3, 3, 2, 0.5, 3)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	points := randPoints(10, 2, 5)
	plain, err := s.BatchQuery("d", BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := s.BatchQuery("d", BatchRequest{Points: points, UseMC: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		for y := range plain.Results[i].Fractions {
			if math.Abs(plain.Results[i].Fractions[y]-mc.Results[i].Fractions[y]) > 1e-9 {
				t.Fatalf("point %d: ss-dc %v vs mc %v", i, plain.Results[i].Fractions, mc.Results[i].Fractions)
			}
		}
	}
}

// TestConcurrentBatchesShareEngines hammers one dataset from many
// goroutines with overlapping points, so cached engines are concurrently
// shared while each worker holds its own pooled Scratch — the engine.go
// concurrency claim, meant to run under -race.
func TestConcurrentBatchesShareEngines(t *testing.T) {
	d := randDataset(t, 60, 3, 2, 2, 0.4, 13)
	s := NewServer(Config{Parallelism: 4})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	points := randPoints(8, 2, 17) // few distinct points → guaranteed sharing
	want, err := s.BatchQuery("d", BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Poll stats while batches run: Stats must be safe against concurrent
	// lazy scratch-pool creation.
	stop := make(chan struct{})
	ds0, _ := s.Dataset("d")
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				ds0.Stats()
			}
		}
	}()
	defer close(stop)
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				res, err := s.BatchQuery("d", BatchRequest{Points: points})
				if err != nil {
					errs[g] = err
					return
				}
				for i := range points {
					for y, f := range res.Results[i].Fractions {
						if f != want.Results[i].Fractions[y] {
							errs[g] = fmt.Errorf("goroutine %d: point %d diverged", g, i)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	ds, _ := s.Dataset("d")
	stats := ds.Stats()
	if len(stats) != 1 {
		t.Fatalf("want 1 pool, got %d", len(stats))
	}
	if stats[0].EngineHits == 0 {
		t.Fatal("expected engine cache hits across repeated batches")
	}
	if stats[0].ScratchAllocs >= stats[0].ScratchGets {
		t.Fatalf("scratch pool never reused: %d allocs for %d gets", stats[0].ScratchAllocs, stats[0].ScratchGets)
	}
}

// TestEngineCacheEviction bounds the LRU.
func TestEngineCacheEviction(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.3, 19)
	s := NewServer(Config{EngineCacheSize: 2})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BatchQuery("d", BatchRequest{Points: randPoints(9, 2, 23)}); err != nil {
		t.Fatal(err)
	}
	ds, _ := s.Dataset("d")
	if got := ds.Stats()[0].EnginesCached; got > 2 {
		t.Fatalf("LRU holds %d engines, capacity 2", got)
	}
}

// TestRegisterConflicts covers idempotent and conflicting registration.
func TestRegisterConflicts(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.3, 29)
	other := randDataset(t, 20, 2, 2, 2, 0.3, 31)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatalf("idempotent re-register failed: %v", err)
	}
	if _, err := s.Register("d", other, knn.NegEuclidean{}, 3); err == nil {
		t.Fatal("conflicting re-register succeeded")
	}
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 5); err == nil {
		t.Fatal("re-register with different K succeeded (fingerprint should differ)")
	}
	if Fingerprint(d, knn.RBF{Gamma: 0.5}, 3) == Fingerprint(d, knn.RBF{Gamma: 2}, 3) {
		t.Fatal("RBF gamma not part of the fingerprint")
	}
}

// refExpectedEntropy recomputes one hypothesis score the slow way: fresh
// per-candidate override queries, no pruning, no shared state.
func refExpectedEntropy(engines []*core.Engine, certain []bool, d *dataset.Incomplete, row, k int) float64 {
	m := d.Examples[row].M()
	total := 0.0
	for v, e := range engines {
		if certain[v] {
			continue
		}
		sc := e.MustScratch(k)
		for j := 0; j < m; j++ {
			total += core.Entropy(e.Counts(sc, row, j))
		}
	}
	return total / float64(m) / float64(len(certain))
}

// TestCleanSessionMatchesGreedyReference verifies every step cleans a row
// whose reference expected entropy is minimal, and that the session drives
// the validation set to full certainty while worlds shrink monotonically.
func TestCleanSessionMatchesGreedyReference(t *testing.T) {
	d := randDataset(t, 24, 3, 2, 2, 0.5, 37)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	valPts := randPoints(8, 2, 41)
	truth := make([]int, d.N())
	rng := rand.New(rand.NewSource(43))
	for i := range truth {
		truth[i] = rng.Intn(d.Examples[i].M())
	}
	sess, err := s.NewCleanSession("d", CleanRequest{Truth: truth, ValPoints: valPts})
	if err != nil {
		t.Fatal(err)
	}
	// Reference engines mirror the session's pins.
	refEngines := make([]*core.Engine, len(valPts))
	for v, p := range valPts {
		refEngines[v] = core.NewEngine(d, knn.NegEuclidean{}, p)
	}
	refCertain := make([]bool, len(valPts))
	for v, e := range refEngines {
		ok, err := e.IsCertainMM(3)
		if err != nil {
			t.Fatal(err)
		}
		refCertain[v] = ok
	}
	prevWorlds := sess.WorldsRemaining()
	for steps := 0; ; steps++ {
		if steps > d.N() {
			t.Fatal("session did not terminate")
		}
		step, ok, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		// The cleaned row must be a reference argmin (within float noise).
		cleanedScore := refExpectedEntropy(refEngines, refCertain, d, step.Row, 3)
		for row := 0; row < d.N(); row++ {
			if d.Examples[row].M() == 1 || refEngines[0].Pin(row) >= 0 || row == step.Row {
				continue
			}
			if score := refExpectedEntropy(refEngines, refCertain, d, row, 3); score < cleanedScore-1e-9 {
				t.Fatalf("step %d cleaned row %d (H=%.12f) but row %d scores %.12f",
					step.Step, step.Row, cleanedScore, row, score)
			}
		}
		if truth[step.Row] != step.Candidate {
			t.Fatalf("step %d pinned candidate %d, oracle says %d", step.Step, step.Candidate, truth[step.Row])
		}
		for v, e := range refEngines {
			e.SetPin(step.Row, step.Candidate)
			if !refCertain[v] {
				ok, err := e.IsCertainMM(3)
				if err != nil {
					t.Fatal(err)
				}
				refCertain[v] = ok
			}
		}
		worlds := sess.WorldsRemaining()
		if worlds.Cmp(prevWorlds) >= 0 {
			t.Fatalf("step %d: worlds %s did not shrink from %s", step.Step, worlds, prevWorlds)
		}
		prevWorlds = worlds
	}
	if sess.CertainFraction() != 1 && len(sess.candidateRows()) > 0 {
		t.Fatalf("session stopped at certain fraction %.3f with rows left", sess.CertainFraction())
	}
}

// TestCleanSessionMaxSteps respects the budget.
func TestCleanSessionMaxSteps(t *testing.T) {
	d := randDataset(t, 24, 3, 2, 2, 0.6, 47)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	sess, err := s.NewCleanSession("d", CleanRequest{
		Truth:     make([]int, d.N()),
		ValPoints: randPoints(6, 2, 53),
		MaxSteps:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	order, err := sess.Order()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) > 2 {
		t.Fatalf("budget 2, cleaned %d rows", len(order))
	}
}

// TestHTTPEndToEnd drives the JSON API: register, stats, batch query, and a
// streamed clean session.
func TestHTTPEndToEnd(t *testing.T) {
	d := randDataset(t, 24, 3, 2, 2, 0.5, 59)
	srv := httptest.NewServer(Handler(NewServer(Config{})))
	defer srv.Close()

	reg := map[string]interface{}{
		"name":       "web",
		"num_labels": 2,
		"examples":   exampleJSONs(d),
		"k":          3,
	}
	resp := postJSON(t, srv.URL+"/v1/datasets", reg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	var info datasetInfo
	decodeBody(t, resp, &info)
	if info.Rows != d.N() || info.Fingerprint == "" {
		t.Fatalf("bad register info: %+v", info)
	}

	points := randPoints(16, 2, 61)
	resp = postJSON(t, srv.URL+"/v1/datasets/web/query", map[string]interface{}{"points": points})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var batch BatchResult
	decodeBody(t, resp, &batch)
	if len(batch.Results) != 16 {
		t.Fatalf("got %d results", len(batch.Results))
	}

	resp, err := http.Get(srv.URL + "/v1/datasets/web")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &info)
	if len(info.Pools) == 0 || info.Pools[0].EngineBuilds == 0 {
		t.Fatalf("stats missing pool counters: %+v", info)
	}
	if info.Worlds == "" || info.Worlds == "1" {
		t.Fatalf("stats worlds = %q for an uncertain dataset", info.Worlds)
	}

	truth := make([]int, d.N())
	resp = postJSON(t, srv.URL+"/v1/datasets/web/clean", map[string]interface{}{
		"truth":      truth,
		"val_points": randPoints(6, 2, 67),
		"max_steps":  3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean status %d", resp.StatusCode)
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	var lines []map[string]interface{}
	for scanner.Scan() {
		var obj map[string]interface{}
		if err := json.Unmarshal(scanner.Bytes(), &obj); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		lines = append(lines, obj)
	}
	if len(lines) == 0 {
		t.Fatal("clean stream produced no lines")
	}
	last := lines[len(lines)-1]
	if last["done"] != true {
		t.Fatalf("final stream line not a summary: %v", last)
	}
	for _, obj := range lines[:len(lines)-1] {
		if _, hasRow := obj["row"]; !hasRow {
			t.Fatalf("step line missing row: %v", obj)
		}
	}
}

func exampleJSONs(d *dataset.Incomplete) []map[string]interface{} {
	out := make([]map[string]interface{}, d.N())
	for i := range d.Examples {
		out[i] = map[string]interface{}{
			"candidates": d.Examples[i].Candidates,
			"label":      d.Examples[i].Label,
		}
	}
	return out
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
