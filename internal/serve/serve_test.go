package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
)

// randDataset builds a deterministic random incomplete dataset: label-
// dependent cluster centers, uncertainFrac of rows with m jittered
// candidates.
func randDataset(t testing.TB, n, m, numLabels, dim int, uncertainFrac float64, seed int64) *dataset.Incomplete {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	examples := make([]dataset.Example, n)
	for i := range examples {
		label := rng.Intn(numLabels)
		if i < numLabels {
			label = i // every label present
		}
		base := make([]float64, dim)
		for d := range base {
			base[d] = float64(label) + rng.NormFloat64()
		}
		cands := [][]float64{base}
		if rng.Float64() < uncertainFrac {
			for j := 1; j < m; j++ {
				c := make([]float64, dim)
				for d := range c {
					c[d] = base[d] + rng.NormFloat64()
				}
				cands = append(cands, c)
			}
		}
		examples[i] = dataset.Example{Candidates: cands, Label: label}
	}
	return dataset.MustNew(examples, numLabels)
}

func randPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = 2 * rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// TestBatchQueryMatchesOneShot cross-checks every batch answer against the
// one-shot core.QueryDataset path, binary and multi-class.
func TestBatchQueryMatchesOneShot(t *testing.T) {
	for _, numLabels := range []int{2, 3} {
		t.Run(fmt.Sprintf("labels=%d", numLabels), func(t *testing.T) {
			d := randDataset(t, 40, 3, numLabels, 2, 0.4, 7)
			s := NewServer(Config{})
			if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
				t.Fatal(err)
			}
			points := randPoints(20, 2, 11)
			res, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Results) != len(points) {
				t.Fatalf("got %d results for %d points", len(res.Results), len(points))
			}
			for i, p := range points {
				q1, q2, err := core.QueryDataset(d, knn.NegEuclidean{}, p, 3)
				if err != nil {
					t.Fatal(err)
				}
				r := res.Results[i]
				for y := range q2 {
					if math.Abs(r.Fractions[y]-q2[y]) > 1e-9 {
						t.Fatalf("point %d label %d: batch %v vs one-shot %v", i, y, r.Fractions, q2)
					}
				}
				wantCertain := false
				for _, b := range q1 {
					wantCertain = wantCertain || b
				}
				if r.Certain != wantCertain {
					t.Fatalf("point %d: batch certain=%v, one-shot %v", i, r.Certain, wantCertain)
				}
				if r.Prediction != core.ArgmaxProb(q2) {
					t.Fatalf("point %d: batch prediction %d, one-shot %d", i, r.Prediction, core.ArgmaxProb(q2))
				}
			}
		})
	}
}

// TestBatchQueryMCMatchesSSDC checks the UseMC path agrees with tally
// enumeration.
func TestBatchQueryMCMatchesSSDC(t *testing.T) {
	d := randDataset(t, 30, 3, 3, 2, 0.5, 3)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	points := randPoints(10, 2, 5)
	plain, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points, UseMC: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		for y := range plain.Results[i].Fractions {
			if math.Abs(plain.Results[i].Fractions[y]-mc.Results[i].Fractions[y]) > 1e-9 {
				t.Fatalf("point %d: ss-dc %v vs mc %v", i, plain.Results[i].Fractions, mc.Results[i].Fractions)
			}
		}
	}
}

// TestConcurrentBatchesShareEngines hammers one dataset from many
// goroutines with overlapping points, so cached engines are concurrently
// shared while each worker holds its own pooled Scratch — the engine.go
// concurrency claim, meant to run under -race.
func TestConcurrentBatchesShareEngines(t *testing.T) {
	d := randDataset(t, 60, 3, 2, 2, 0.4, 13)
	s := NewServer(Config{Parallelism: 4})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	points := randPoints(8, 2, 17) // few distinct points → guaranteed sharing
	want, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Poll stats while batches run: Stats must be safe against concurrent
	// lazy scratch-pool creation.
	stop := make(chan struct{})
	ds0, _ := s.Dataset("d")
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				ds0.Stats()
			}
		}
	}()
	defer close(stop)
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				res, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points})
				if err != nil {
					errs[g] = err
					return
				}
				for i := range points {
					for y, f := range res.Results[i].Fractions {
						if f != want.Results[i].Fractions[y] {
							errs[g] = fmt.Errorf("goroutine %d: point %d diverged", g, i)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	ds, _ := s.Dataset("d")
	stats := ds.Stats()
	if len(stats) != 1 {
		t.Fatalf("want 1 pool, got %d", len(stats))
	}
	if stats[0].EngineHits == 0 {
		t.Fatal("expected engine cache hits across repeated batches")
	}
	if stats[0].ScratchAllocs >= stats[0].ScratchGets {
		t.Fatalf("scratch pool never reused: %d allocs for %d gets", stats[0].ScratchAllocs, stats[0].ScratchGets)
	}
}

// TestEngineCacheEviction bounds the LRU.
func TestEngineCacheEviction(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.3, 19)
	s := NewServer(Config{EngineCacheSize: 2})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: randPoints(9, 2, 23)}); err != nil {
		t.Fatal(err)
	}
	ds, _ := s.Dataset("d")
	if got := ds.Stats()[0].EnginesCached; got > 2 {
		t.Fatalf("LRU holds %d engines, capacity 2", got)
	}
}

// TestRegisterConflicts covers idempotent and conflicting registration.
func TestRegisterConflicts(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.3, 29)
	other := randDataset(t, 20, 2, 2, 2, 0.3, 31)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatalf("idempotent re-register failed: %v", err)
	}
	if _, err := s.Register("d", other, knn.NegEuclidean{}, 3); err == nil {
		t.Fatal("conflicting re-register succeeded")
	}
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 5); err == nil {
		t.Fatal("re-register with different K succeeded (fingerprint should differ)")
	}
	if Fingerprint(d, knn.RBF{Gamma: 0.5}, 3) == Fingerprint(d, knn.RBF{Gamma: 2}, 3) {
		t.Fatal("RBF gamma not part of the fingerprint")
	}
}

// refExpectedEntropy recomputes one hypothesis score the slow way: fresh
// per-candidate override queries, no pruning, no shared state.
func refExpectedEntropy(engines []*core.Engine, certain []bool, d *dataset.Incomplete, row, k int) float64 {
	m := d.Examples[row].M()
	total := 0.0
	for v, e := range engines {
		if certain[v] {
			continue
		}
		sc := e.MustScratch(k)
		for j := 0; j < m; j++ {
			total += core.Entropy(e.Counts(sc, row, j))
		}
	}
	return total / float64(m) / float64(len(certain))
}

// TestCleanSessionMatchesGreedyReference verifies every step cleans a row
// whose reference expected entropy is minimal, and that the session drives
// the validation set to full certainty while worlds shrink monotonically.
func TestCleanSessionMatchesGreedyReference(t *testing.T) {
	d := randDataset(t, 24, 3, 2, 2, 0.5, 37)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	valPts := randPoints(8, 2, 41)
	truth := make([]int, d.N())
	rng := rand.New(rand.NewSource(43))
	for i := range truth {
		truth[i] = rng.Intn(d.Examples[i].M())
	}
	sess, err := s.NewCleanSession("d", CleanRequest{Truth: truth, ValPoints: valPts})
	if err != nil {
		t.Fatal(err)
	}
	// Reference engines mirror the session's pins.
	refEngines := make([]*core.Engine, len(valPts))
	for v, p := range valPts {
		refEngines[v] = core.NewEngine(d, knn.NegEuclidean{}, p)
	}
	refCertain := make([]bool, len(valPts))
	for v, e := range refEngines {
		ok, err := e.IsCertainMM(3)
		if err != nil {
			t.Fatal(err)
		}
		refCertain[v] = ok
	}
	prevWorlds := sess.WorldsRemaining()
	for steps := 0; ; steps++ {
		if steps > d.N() {
			t.Fatal("session did not terminate")
		}
		step, ok, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		// The cleaned row must be a reference argmin (within float noise).
		cleanedScore := refExpectedEntropy(refEngines, refCertain, d, step.Row, 3)
		for row := 0; row < d.N(); row++ {
			if d.Examples[row].M() == 1 || refEngines[0].Pin(row) >= 0 || row == step.Row {
				continue
			}
			if score := refExpectedEntropy(refEngines, refCertain, d, row, 3); score < cleanedScore-1e-9 {
				t.Fatalf("step %d cleaned row %d (H=%.12f) but row %d scores %.12f",
					step.Step, step.Row, cleanedScore, row, score)
			}
		}
		if truth[step.Row] != step.Candidate {
			t.Fatalf("step %d pinned candidate %d, oracle says %d", step.Step, step.Candidate, truth[step.Row])
		}
		for v, e := range refEngines {
			e.SetPin(step.Row, step.Candidate)
			if !refCertain[v] {
				ok, err := e.IsCertainMM(3)
				if err != nil {
					t.Fatal(err)
				}
				refCertain[v] = ok
			}
		}
		worlds := sess.WorldsRemaining()
		if worlds.Cmp(prevWorlds) >= 0 {
			t.Fatalf("step %d: worlds %s did not shrink from %s", step.Step, worlds, prevWorlds)
		}
		prevWorlds = worlds
	}
	if sess.CertainFraction() != 1 && len(sess.candidateRows()) > 0 {
		t.Fatalf("session stopped at certain fraction %.3f with rows left", sess.CertainFraction())
	}
}

// TestCleanSessionMaxSteps respects the budget.
func TestCleanSessionMaxSteps(t *testing.T) {
	d := randDataset(t, 24, 3, 2, 2, 0.6, 47)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	sess, err := s.NewCleanSession("d", CleanRequest{
		Truth:     make([]int, d.N()),
		ValPoints: randPoints(6, 2, 53),
		MaxSteps:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	order, err := sess.Order()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) > 2 {
		t.Fatalf("budget 2, cleaned %d rows", len(order))
	}
}

// TestHTTPEndToEnd drives the JSON API: register, stats, batch query, and a
// streamed clean session.
func TestHTTPEndToEnd(t *testing.T) {
	d := randDataset(t, 24, 3, 2, 2, 0.5, 59)
	srv := httptest.NewServer(Handler(NewServer(Config{})))
	defer srv.Close()

	reg := map[string]interface{}{
		"name":       "web",
		"num_labels": 2,
		"examples":   exampleJSONs(d),
		"k":          3,
	}
	resp := postJSON(t, srv.URL+"/v1/datasets", reg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}
	var info datasetInfo
	decodeBody(t, resp, &info)
	if info.Rows != d.N() || info.Fingerprint == "" {
		t.Fatalf("bad register info: %+v", info)
	}

	points := randPoints(16, 2, 61)
	resp = postJSON(t, srv.URL+"/v1/datasets/web/query", map[string]interface{}{"points": points})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var batch BatchResult
	decodeBody(t, resp, &batch)
	if len(batch.Results) != 16 {
		t.Fatalf("got %d results", len(batch.Results))
	}

	resp, err := http.Get(srv.URL + "/v1/datasets/web")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &info)
	if len(info.Pools) == 0 || info.Pools[0].EngineBuilds == 0 {
		t.Fatalf("stats missing pool counters: %+v", info)
	}
	if info.Worlds == "" || info.Worlds == "1" {
		t.Fatalf("stats worlds = %q for an uncertain dataset", info.Worlds)
	}

	truth := make([]int, d.N())
	resp = postJSON(t, srv.URL+"/v1/datasets/web/clean", map[string]interface{}{
		"truth":      truth,
		"val_points": randPoints(6, 2, 67),
		"max_steps":  3,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("clean status %d, want 201", resp.StatusCode)
	}
	var status SessionStatus
	decodeBody(t, resp, &status)
	if status.ID == "" || status.State != "pending" {
		t.Fatalf("bad session status: %+v", status)
	}

	resp, err = http.Get(srv.URL + "/v1/clean/" + status.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	var lines []map[string]interface{}
	for scanner.Scan() {
		var obj map[string]interface{}
		if err := json.Unmarshal(scanner.Bytes(), &obj); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		lines = append(lines, obj)
	}
	if len(lines) == 0 {
		t.Fatal("clean stream produced no lines")
	}
	last := lines[len(lines)-1]
	if last["done"] != true {
		t.Fatalf("final stream line not a summary: %v", last)
	}
	for _, obj := range lines[:len(lines)-1] {
		if _, hasRow := obj["row"]; !hasRow {
			t.Fatalf("step line missing row: %v", obj)
		}
	}

	// The finished session is still addressable until released.
	resp, err = http.Get(srv.URL + "/v1/clean/" + status.ID)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &status)
	if status.State != "done" || status.Steps != len(lines)-1 {
		t.Fatalf("post-stream status: %+v (stream had %d step lines)", status, len(lines)-1)
	}
	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/clean/"+status.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/clean/" + status.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status after delete %d, want 404", resp.StatusCode)
	}
}

// TestUnknownDatasetStatusCodes pins the HTTP error contract: unknown
// dataset → 404 on every per-dataset route, conflicting registration → 409,
// malformed input → 400.
func TestUnknownDatasetStatusCodes(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.3, 71)
	srv := httptest.NewServer(Handler(NewServer(Config{})))
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/datasets", map[string]interface{}{
		"name": "d", "num_labels": 2, "examples": exampleJSONs(d), "k": 3,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/v1/datasets/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown dataset: status %d, want 404", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/v1/datasets/nope/query", map[string]interface{}{
		"points": [][]float64{{0, 0}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query unknown dataset: status %d, want 404", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/v1/datasets/nope/clean", map[string]interface{}{
		"truth": []int{0}, "val_points": [][]float64{{0, 0}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("clean unknown dataset: status %d, want 404", resp.StatusCode)
	}

	other := randDataset(t, 20, 2, 2, 2, 0.3, 73)
	resp = postJSON(t, srv.URL+"/v1/datasets", map[string]interface{}{
		"name": "d", "num_labels": 2, "examples": exampleJSONs(other), "k": 3,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting register: status %d, want 409", resp.StatusCode)
	}

	// Known dataset, bad payload (wrong dimension) stays a 400.
	resp = postJSON(t, srv.URL+"/v1/datasets/d/query", map[string]interface{}{
		"points": [][]float64{{0, 0, 0, 0, 0}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query payload: status %d, want 400", resp.StatusCode)
	}
}

// TestRegisterDefaultKClampedToN covers the k == 0 default on datasets with
// fewer than 3 rows: the default clamps to N instead of erroring.
func TestRegisterDefaultKClampedToN(t *testing.T) {
	d := dataset.MustNew([]dataset.Example{
		{Candidates: [][]float64{{0}, {1}}, Label: 0},
		{Candidates: [][]float64{{2}}, Label: 1},
	}, 2)
	s := NewServer(Config{})
	ds, err := s.Register("tiny", d, nil, 0)
	if err != nil {
		t.Fatalf("register with default K on N=2 dataset: %v", err)
	}
	if ds.K() != 2 {
		t.Fatalf("default K = %d, want clamp to N = 2", ds.K())
	}
	if _, err := s.BatchQuery(context.Background(), "tiny", BatchRequest{Points: [][]float64{{0.5}}}); err != nil {
		t.Fatalf("query under clamped default K: %v", err)
	}
	// An explicit out-of-range K must still be rejected.
	if _, err := s.Register("tiny5", d, nil, 5); err == nil {
		t.Fatal("explicit K=5 on N=2 dataset accepted")
	}
	// Larger datasets keep the documented default of 3.
	big := randDataset(t, 10, 2, 2, 2, 0.3, 83)
	ds, err = s.Register("big", big, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.K() != 3 {
		t.Fatalf("default K = %d on N=10 dataset, want 3", ds.K())
	}
}

// blockingWriter is a ResponseWriter that signals its first body write and
// then blocks until released — it freezes the NDJSON stream right after the
// first step so the test can cancel the request at a known point.
type blockingWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	first   chan struct{}
	once    sync.Once
	release chan struct{}
}

func (w *blockingWriter) Header() http.Header { return http.Header{} }
func (w *blockingWriter) WriteHeader(int)     {}
func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.first) })
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}
func (w *blockingWriter) contents() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestCleanStreamStopsOnClientCancel checks the NDJSON handler detaches
// from the session between steps once the request context is canceled
// instead of streaming to completion for a client that is gone — and that
// the session itself survives the disconnect for later resume.
func TestCleanStreamStopsOnClientCancel(t *testing.T) {
	d := randDataset(t, 40, 3, 2, 2, 0.8, 89)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	valPts := randPoints(8, 2, 91)
	truth := make([]int, d.N())
	// Control: the same session run to completion takes several steps, so an
	// uncanceled stream would emit several lines.
	ctrl, err := s.NewCleanSession("d", CleanRequest{Truth: truth, ValPoints: valPts})
	if err != nil {
		t.Fatal(err)
	}
	order, err := ctrl.Order()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) < 2 {
		t.Fatalf("workload finishes in %d steps; too short to observe cancellation", len(order))
	}

	sess, err := s.StartCleanSession("d", CleanRequest{Truth: truth, ValPoints: valPts})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest("GET", "/v1/clean/"+sess.ID()+"/stream", nil).WithContext(ctx)
	w := &blockingWriter{first: make(chan struct{}), release: make(chan struct{})}
	done := make(chan struct{})
	go func() {
		Handler(s).ServeHTTP(w, req)
		close(done)
	}()
	select {
	case <-w.first:
	case <-time.After(30 * time.Second):
		t.Fatal("stream never produced a first step")
	}
	// The handler is blocked inside the first step's Write. Cancel the
	// request, then let the write finish: the next loop iteration must
	// detach.
	cancel()
	close(w.release)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("handler kept running after client cancel")
	}
	out := w.contents()
	lines := strings.Count(out, "\n")
	if lines >= len(order) {
		t.Fatalf("canceled stream wrote %d lines; full run is only %d steps", lines, len(order))
	}
	if strings.Contains(out, `"done"`) {
		t.Fatalf("canceled stream still wrote the summary line: %q", out)
	}
	// The disconnect must not have killed the run: the session is still
	// addressable and steps onward from where the stream left off.
	resumed, err := s.FindCleanSession(sess.ID())
	if err != nil {
		t.Fatalf("session gone after client disconnect: %v", err)
	}
	executed := resumed.Status().Steps
	steps, _, err := resumed.Next(1)
	if err != nil {
		t.Fatalf("resume after disconnect: %v", err)
	}
	if len(steps) != 1 || steps[0].Step != executed+1 {
		t.Fatalf("resume produced %v after %d executed steps", steps, executed)
	}
}

// TestCleanSessionReportsExaminedHypotheses checks the serving API exposes
// the selection engine's scan counts: per-step counters sum to the session
// total, scans happen, and the stream's summary carries the total.
func TestCleanSessionReportsExaminedHypotheses(t *testing.T) {
	d := randDataset(t, 30, 3, 2, 2, 0.6, 97)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	truth := make([]int, d.N())
	sess, err := s.NewCleanSession("d", CleanRequest{Truth: truth, ValPoints: randPoints(8, 2, 101)})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	steps := 0
	for {
		step, ok, err := sess.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if step.ExaminedHypotheses < 0 {
			t.Fatalf("step %d: negative examined_hypotheses %d", step.Step, step.ExaminedHypotheses)
		}
		total += step.ExaminedHypotheses
		steps++
	}
	if steps == 0 {
		t.Fatal("session executed no steps")
	}
	if total == 0 {
		t.Fatal("no hypothesis scans recorded across the whole session")
	}
	if got := sess.ExaminedHypotheses(); got != total {
		t.Fatalf("session total %d != sum of per-step counters %d", got, total)
	}

	// The HTTP stream's summary line must carry the cumulative counter.
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	resp := postJSON(t, srv.URL+"/v1/datasets/d/clean", map[string]interface{}{
		"truth": truth, "val_points": randPoints(8, 2, 103),
	})
	var status SessionStatus
	decodeBody(t, resp, &status)
	resp, err = http.Get(srv.URL + "/v1/clean/" + status.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	var last map[string]interface{}
	for scanner.Scan() {
		last = nil
		if err := json.Unmarshal(scanner.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
	}
	if last["done"] != true {
		t.Fatalf("missing summary line: %v", last)
	}
	if _, ok := last["examined_hypotheses"]; !ok {
		t.Fatalf("summary line missing examined_hypotheses: %v", last)
	}
}

func exampleJSONs(d *dataset.Incomplete) []map[string]interface{} {
	out := make([]map[string]interface{}, d.N())
	for i := range d.Examples {
		out[i] = map[string]interface{}{
			"candidates": d.Examples[i].Candidates,
			"label":      d.Examples[i].Label,
		}
	}
	return out
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
