package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
)

// cleanFixture builds a server + dataset + clean session whose run takes
// several steps, plus a valid truth oracle.
func cleanFixture(t *testing.T, cfg Config, seed int64) (*Server, *dataset.Incomplete, *Session) {
	t.Helper()
	d := randDataset(t, 36, 3, 2, 2, 0.7, seed)
	s := NewServer(cfg)
	if _, err := s.Register("d", d, nil, 3); err != nil {
		t.Fatal(err)
	}
	truth := make([]int, d.N())
	for i := range truth {
		truth[i] = (i * 7) % d.Examples[i].M()
	}
	sess, err := s.StartCleanSession("d", CleanRequest{
		Truth:     truth,
		ValPoints: randPoints(6, 2, seed+1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, d, sess
}

// referencePinned answers one point with a fresh engine carrying the given
// pins — the ground truth a session query must match bit for bit.
func referencePinned(d *dataset.Incomplete, steps []CleanStep, pt []float64, k int) []float64 {
	e := core.NewEngine(d, knn.NegEuclidean{}, pt)
	for _, st := range steps {
		e.SetPin(st.Row, st.Candidate)
	}
	sc := e.MustScratch(k)
	return append([]float64(nil), e.Counts(sc, -1, -1)...)
}

// TestSessionQueryLockstep steps a clean session while repeatedly batch-
// querying it, asserting every answer equals a fresh pinned-engine sweep bit
// for bit, and that the repeats actually reuse retained tree state.
func TestSessionQueryLockstep(t *testing.T) {
	s, d, sess := cleanFixture(t, Config{Parallelism: 2}, 950)
	defer s.Close()
	points := randPoints(5, 2, 951)
	var executed []CleanStep
	for round := 0; round < 8; round++ {
		res, err := sess.Query(context.Background(), BatchRequest{Points: points})
		if err != nil {
			t.Fatal(err)
		}
		// Query again at the same pin state: must be pure memo hits.
		res2, err := sess.Query(context.Background(), BatchRequest{Points: points})
		if err != nil {
			t.Fatal(err)
		}
		for i := range points {
			want := referencePinned(d, executed, points[i], 3)
			for y, v := range want {
				if res.Results[i].Fractions[y] != v {
					t.Fatalf("round %d point %d label %d: session query %v, fresh pinned sweep %v",
						round, i, y, res.Results[i].Fractions[y], v)
				}
				if res2.Results[i].Fractions[y] != v {
					t.Fatalf("round %d point %d: repeat query diverged from memo", round, i)
				}
			}
		}
		steps, done, err := sess.Next(1)
		if err != nil {
			t.Fatal(err)
		}
		executed = append(executed, steps...)
		if done {
			break
		}
	}
	qs := sess.QueryStats()
	if qs.Queries == 0 || qs.Retained.MemoHits == 0 {
		t.Fatalf("query memo never hit: %+v", qs)
	}
	if qs.Retained.CandidatesAvoided == 0 {
		t.Fatalf("no candidate scans avoided across repeated queries under pins: %+v", qs)
	}
	if st := sess.Status(); st.QueryMemo == nil || st.QueryMemo.Queries != qs.Queries {
		t.Fatalf("status does not surface query memo stats: %+v", st.QueryMemo)
	}
}

// TestSessionQueryMatchesAblation cross-checks the memoized path against the
// DisableQueryMemo full-sweep baseline on an identical run, and checks the
// baseline pays more candidate scans — the quantity the benchmark reports.
func TestSessionQueryMatchesAblation(t *testing.T) {
	run := func(cfg Config) (answers [][]float64, stats SessionQueryStats) {
		s, _, sess := cleanFixture(t, cfg, 960)
		defer s.Close()
		points := randPoints(4, 2, 961)
		for {
			res, err := sess.Query(context.Background(), BatchRequest{Points: points})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res.Results {
				answers = append(answers, r.Fractions)
			}
			_, done, err := sess.Next(1)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
		return answers, sess.QueryStats()
	}
	memoAns, memoStats := run(Config{Parallelism: 2})
	fullAns, fullStats := run(Config{Parallelism: 2, DisableQueryMemo: true})
	if len(memoAns) != len(fullAns) {
		t.Fatalf("run lengths diverged: %d vs %d", len(memoAns), len(fullAns))
	}
	for i := range memoAns {
		for y := range memoAns[i] {
			if memoAns[i][y] != fullAns[i][y] {
				t.Fatalf("answer %d label %d: memo %v full %v", i, y, memoAns[i][y], fullAns[i][y])
			}
		}
	}
	if memoStats.Retained.CandidatesScanned >= fullStats.Retained.CandidatesScanned {
		t.Fatalf("memo path scanned %d candidates, full-sweep baseline %d — no work saved",
			memoStats.Retained.CandidatesScanned, fullStats.Retained.CandidatesScanned)
	}
}

// TestSessionQueryRaceHammer runs a clean session's driver concurrently with
// repeated session queries and dataset-level batch queries on the same
// dataset — the -race workload for the shared pools, the append-only history
// snapshotting, and the per-entry retained memos. The final answers must
// equal a fresh sweep under the full pin set.
func TestSessionQueryRaceHammer(t *testing.T) {
	s, d, sess := cleanFixture(t, Config{Parallelism: 4}, 970)
	defer s.Close()
	points := randPoints(4, 2, 971)
	done := make(chan struct{})
	var driveErr error
	go func() {
		defer close(done)
		for {
			_, finished, err := sess.Next(2)
			if err != nil {
				driveErr = err
				return
			}
			if finished {
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := sess.Query(context.Background(), BatchRequest{Points: points}); err != nil {
					t.Errorf("goroutine %d: session query: %v", g, err)
					return
				}
				if _, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points}); err != nil {
					t.Errorf("goroutine %d: batch query: %v", g, err)
					return
				}
			}
		}(g)
	}
	<-done
	wg.Wait()
	if driveErr != nil {
		t.Fatal(driveErr)
	}
	// Final check: the queried state equals a fresh sweep under every
	// executed pin.
	var executed []CleanStep
	if _, err := sess.DriveFrom(0, func(st CleanStep) bool {
		executed = append(executed, st)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Query(context.Background(), BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		want := referencePinned(d, executed, points[i], 3)
		for y, v := range want {
			if res.Results[i].Fractions[y] != v {
				t.Fatalf("post-hammer point %d label %d: %v want %v", i, y, res.Results[i].Fractions[y], v)
			}
		}
	}
}

// TestSessionQueryCacheBounded sweeps many distinct points through a
// session query cache under tiny entry and byte budgets and checks the
// cache never grows past them — the guard against a point sweep pinning
// unbounded engines to one session.
func TestSessionQueryCacheBounded(t *testing.T) {
	run := func(cfg Config, wantMaxEntries int) {
		s, _, sess := cleanFixture(t, cfg, 985)
		defer s.Close()
		if _, _, err := sess.Next(1); err != nil {
			t.Fatal(err)
		}
		sweep := randPoints(30, 2, 986)
		for _, p := range sweep {
			res, err := sess.Query(context.Background(), BatchRequest{Points: [][]float64{p}})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Results) != 1 {
				t.Fatal("missing result")
			}
		}
		sess.mu.Lock()
		q := sess.queries
		sess.mu.Unlock()
		q.mu.Lock()
		entries, bytes := q.cache.len(), q.cache.bytes
		maxBytes := q.cache.maxBytes
		q.mu.Unlock()
		if entries > wantMaxEntries {
			t.Fatalf("cache kept %d entries, budget %d (cfg %+v)", entries, wantMaxEntries, cfg)
		}
		if maxBytes > 0 && entries > 1 && bytes > maxBytes {
			t.Fatalf("cache bytes %d above budget %d with %d entries", bytes, maxBytes, entries)
		}
	}
	run(Config{EngineCacheSize: 4}, 4)
	// Caching "disabled" still bounds the session cache (single entry).
	run(Config{EngineCacheSize: -1}, 1)
	// A byte budget far below the 30-point sweep's total footprint must
	// evict: the cache may keep however many entries fit, but not all.
	run(Config{MaxEngineBytes: 100_000}, 29)
}

// TestSessionQueryAfterRelease checks a released session refuses queries
// with the gone/not-found contract instead of resurrecting engines.
func TestSessionQueryAfterRelease(t *testing.T) {
	s, _, sess := cleanFixture(t, Config{}, 980)
	defer s.Close()
	if _, err := sess.Query(context.Background(), BatchRequest{Points: randPoints(2, 2, 981)}); err != nil {
		t.Fatal(err)
	}
	if err := s.ReleaseCleanSession(sess.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(context.Background(), BatchRequest{Points: randPoints(2, 2, 981)}); !errors.Is(err, ErrGone) {
		t.Fatalf("query after release returned %v, want ErrGone", err)
	}
}
