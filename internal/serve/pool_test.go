package serve

import (
	"context"
	"testing"
)

// TestEngineCacheByteBudget checks the LRU is byte-counted, not just
// entry-counted: with a budget sized for only a few engines, a sweep of
// distinct points keeps the cache near the budget (never the 256-entry
// default), evictions fire, and answers stay correct.
func TestEngineCacheByteBudget(t *testing.T) {
	d := randDataset(t, 60, 3, 2, 3, 0.5, 930)
	s := NewServer(Config{Parallelism: 2})
	defer s.Close()
	ds, err := s.Register("d", d, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Size the budget from a real engine+memo footprint: room for ~3.
	points := randPoints(24, 3, 931)
	if _, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points[:1]}); err != nil {
		t.Fatal(err)
	}
	oneEntry := ds.Stats()[0].EngineBytes
	if oneEntry <= 0 {
		t.Fatalf("engine bytes not accounted: %+v", ds.Stats())
	}
	budget := oneEntry*3 + oneEntry/2

	s2 := NewServer(Config{Parallelism: 2, MaxEngineBytes: budget})
	defer s2.Close()
	if _, err := s2.Register("d", d, nil, 3); err != nil {
		t.Fatal(err)
	}
	want, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.BatchQuery(context.Background(), "d", BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		for y, v := range want.Results[i].Fractions {
			if got.Results[i].Fractions[y] != v {
				t.Fatalf("point %d label %d: budgeted cache answered %v, unbudgeted %v",
					i, y, got.Results[i].Fractions[y], v)
			}
		}
	}
	ds2, _ := s2.Dataset("d")
	st := ds2.Stats()[0]
	if st.EnginesCached > 4 {
		t.Fatalf("byte budget ignored: %d engines cached (budget fits ~3), bytes=%d budget=%d",
			st.EnginesCached, st.EngineBytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 3-engine budget across 24 distinct points: %+v", st)
	}
	if st.EngineBytes > budget+oneEntry {
		t.Fatalf("cache bytes %d stayed above budget %d", st.EngineBytes, budget)
	}
}

// TestConfigDefaultsIdempotent pins the sentinel contract: withDefaults is
// applied both at Open and again on request paths, so a second application
// must change nothing — in particular the negative "disable/unlimited"
// sentinels must survive instead of being re-inflated into the defaults.
func TestConfigDefaultsIdempotent(t *testing.T) {
	cases := []Config{
		{},
		{EngineCacheSize: -1, MaxEngineBytes: -1},
		{EngineCacheSize: 7, MaxEngineBytes: 1 << 20},
		{MaxCleanSessions: -1, SessionTTL: -1, MaxRegisterBytes: -1, MaxQueryBytes: -1},
	}
	for i, c := range cases {
		once := c.withDefaults()
		twice := once.withDefaults()
		// Logf is a func (not comparable); compare the scalar fields.
		if once.EngineCacheSize != twice.EngineCacheSize ||
			once.MaxEngineBytes != twice.MaxEngineBytes ||
			once.Parallelism != twice.Parallelism ||
			once.MaxCleanSessions != twice.MaxCleanSessions ||
			once.SessionTTL != twice.SessionTTL ||
			once.MaxRegisterBytes != twice.MaxRegisterBytes ||
			once.MaxQueryBytes != twice.MaxQueryBytes ||
			once.WALSegmentBytes != twice.WALSegmentBytes {
			t.Fatalf("case %d: withDefaults not idempotent:\nonce  %+v\ntwice %+v", i, once, twice)
		}
	}
	if c := (Config{EngineCacheSize: -1, MaxEngineBytes: -1}).withDefaults(); c.EngineCacheSize >= 0 || c.MaxEngineBytes >= 0 {
		t.Fatalf("negative sentinels collapsed: %+v", c)
	}
}

// TestQueryMemoRepeatHits checks the per-(dataset, point) retained memo:
// repeating a batch against an unchanged dataset answers from the memo
// (full scans stay at one per point) and bit-identically.
func TestQueryMemoRepeatHits(t *testing.T) {
	d := randDataset(t, 40, 3, 2, 2, 0.5, 940)
	s := NewServer(Config{Parallelism: 2})
	defer s.Close()
	ds, err := s.Register("d", d, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	points := randPoints(8, 2, 941)
	first, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		again, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points})
		if err != nil {
			t.Fatal(err)
		}
		for i := range first.Results {
			for y, v := range first.Results[i].Fractions {
				if again.Results[i].Fractions[y] != v {
					t.Fatalf("repeat %d point %d: memo answer diverged", rep, i)
				}
			}
		}
	}
	st := ds.Stats()[0]
	if st.Retained.FullScans != int64(len(points)) {
		t.Fatalf("want exactly one full scan per point, got %+v", st.Retained)
	}
	if st.Retained.MemoHits < int64(3*len(points)) {
		t.Fatalf("repeats were not memo hits: %+v", st.Retained)
	}
}
