package serve

import (
	"repro/internal/core"
	"repro/internal/durable"
)

// ServerStats is the GET /v1/stats payload: registry and session counts,
// per-dataset engine-pool counters (cache hits, byte budgets, retained
// query-memo reuse), the aggregated session query-memo totals, and — for a
// durable server — the WAL health metrics (fsync count/latency, segment and
// snapshot counts, last replay cost).
type ServerStats struct {
	Datasets      int                    `json:"datasets"`
	CleanSessions int                    `json:"clean_sessions"`
	Pools         map[string][]PoolStats `json:"pools,omitempty"`
	// SessionQueries aggregates every live session's pin-state query memo.
	SessionQueries SessionQueryStats `json:"session_queries"`
	// SweepWorkers echoes Config.SweepWorkers (0 = sequential sweeps); Sweep
	// totals the span-parallel sweep counters — parallel sweeps run, spans
	// executed, spans stolen across workers — over every dataset pool and
	// live session.
	SweepWorkers int             `json:"sweep_workers"`
	Sweep        core.SweepStats `json:"sweep"`
	// WAL is present only when the server runs with a data directory.
	WAL *durable.Metrics `json:"wal,omitempty"`
}

// Stats snapshots the server's serving and durability counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{Pools: make(map[string][]PoolStats)}
	s.mu.RLock()
	datasets := make([]*Dataset, 0, len(s.datasets))
	for _, ds := range s.datasets {
		datasets = append(datasets, ds)
	}
	s.mu.RUnlock()
	st.Datasets = len(datasets)
	st.SweepWorkers = s.cfg.SweepWorkers
	for _, ds := range datasets {
		if pools := ds.Stats(); len(pools) > 0 {
			st.Pools[ds.Name()] = pools
			for _, ps := range pools {
				st.Sweep.Add(ps.Sweep)
			}
		}
	}
	st.CleanSessions = s.CleanSessionCount()
	st.SessionQueries = s.sessions.queryStatsTotals()
	st.Sweep.Add(st.SessionQueries.Sweep)
	if s.journal != nil {
		m := s.journal.store.Metrics()
		st.WAL = &m
	}
	return st
}

// queryStatsTotals sums the query-memo counters of every live session.
func (st *sessionStore) queryStatsTotals() SessionQueryStats {
	st.mu.Lock()
	sessions := make([]*Session, 0, len(st.live))
	for _, sess := range st.live {
		sessions = append(sessions, sess)
	}
	st.mu.Unlock()
	var total SessionQueryStats
	for _, sess := range sessions {
		qs := sess.QueryStats()
		total.Queries += qs.Queries
		total.Retained.Add(qs.Retained)
		total.Sweep.Add(qs.Sweep)
	}
	return total
}
