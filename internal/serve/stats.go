package serve

import (
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/replica"
)

// ServerStats is the GET /v1/stats payload: registry and session counts,
// per-dataset engine-pool counters (cache hits, byte budgets, retained
// query-memo reuse), the aggregated session query-memo totals, and — for a
// durable server — the WAL health metrics (fsync count/latency, segment and
// snapshot counts, last replay cost).
type ServerStats struct {
	Datasets      int                    `json:"datasets"`
	CleanSessions int                    `json:"clean_sessions"`
	Pools         map[string][]PoolStats `json:"pools,omitempty"`
	// SessionQueries aggregates every live session's pin-state query memo.
	SessionQueries SessionQueryStats `json:"session_queries"`
	// SweepWorkers echoes Config.SweepWorkers (0 = sequential sweeps); Sweep
	// totals the span-parallel sweep counters — parallel sweeps run, spans
	// executed, spans stolen across workers — over every dataset pool and
	// live session.
	SweepWorkers int             `json:"sweep_workers"`
	Sweep        core.SweepStats `json:"sweep"`
	// ResultCache is present only when Config.ResultCacheBytes enables the
	// server-wide query result cache: entry/byte occupancy against the budget
	// plus lifetime hit/miss/eviction counts.
	ResultCache *ResultCacheStats `json:"result_cache,omitempty"`
	// WAL is present only when the server runs with a data directory.
	WAL *durable.Metrics `json:"wal,omitempty"`
	// Streams totals runOrdered's ordered fan-out counters across every
	// batch query (dataset- and session-level, buffered and NDJSON alike).
	Streams StreamStats `json:"streams"`
	// Replication is present on a durable leader (role "leader": ship-stream
	// counters and the durable WAL tip) and on a follower (role "follower":
	// applied cursor, record lag behind the leader, last apply error).
	Replication *ReplicationStats `json:"replication,omitempty"`
}

// ReplicationStats is the /v1/stats replication block.
type ReplicationStats struct {
	// Role is "leader" (shipping this WAL to followers) or "follower"
	// (tailing FollowURL).
	Role string `json:"role"`
	// Follower side.
	FollowURL      string `json:"follow_url,omitempty"`
	LeaderURL      string `json:"leader_url,omitempty"`
	Connected      bool   `json:"connected,omitempty"`
	AppliedSegment int    `json:"applied_segment,omitempty"`
	AppliedOffset  int64  `json:"applied_offset,omitempty"`
	AppliedRecords int64  `json:"applied_records,omitempty"`
	// LagRecords is the record distance to the leader's durable frontier as
	// of the last envelope (-1 before the first one arrives).
	LagRecords     int64  `json:"lag_records"`
	Bootstraps     int64  `json:"bootstraps,omitempty"`
	LastApplyError string `json:"last_apply_error,omitempty"`
	// Leader side: the durable WAL tip followers can have caught up to, plus
	// ship-stream counters.
	TipSegment int                `json:"tip_segment,omitempty"`
	TipOffset  int64              `json:"tip_offset,omitempty"`
	Ship       *replica.ShipStats `json:"ship,omitempty"`
}

// replicationStats assembles the role-appropriate replication block (nil on
// an in-memory server).
func (s *Server) replicationStats() *ReplicationStats {
	switch {
	case s.tailer != nil:
		ts := s.tailer.Status()
		return &ReplicationStats{
			Role:           "follower",
			FollowURL:      s.cfg.FollowURL,
			LeaderURL:      ts.LeaderURL,
			Connected:      ts.Connected,
			AppliedSegment: ts.Cursor.Segment,
			AppliedOffset:  ts.Cursor.Offset,
			AppliedRecords: ts.AppliedRecords,
			LagRecords:     ts.LagRecords,
			Bootstraps:     ts.Bootstraps,
			LastApplyError: ts.LastErr,
		}
	case s.shipper != nil:
		tip, _ := s.journal.store.SyncedTip()
		ship := s.shipper.Stats()
		return &ReplicationStats{
			Role:       "leader",
			TipSegment: tip.Segment,
			TipOffset:  tip.Offset,
			Ship:       &ship,
		}
	}
	return nil
}

// Stats snapshots the server's serving and durability counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{Pools: make(map[string][]PoolStats)}
	s.mu.RLock()
	datasets := make([]*Dataset, 0, len(s.datasets))
	for _, ds := range s.datasets {
		datasets = append(datasets, ds)
	}
	s.mu.RUnlock()
	st.Datasets = len(datasets)
	st.SweepWorkers = s.cfg.SweepWorkers
	for _, ds := range datasets {
		if pools := ds.Stats(); len(pools) > 0 {
			st.Pools[ds.Name()] = pools
			for _, ps := range pools {
				st.Sweep.Add(ps.Sweep)
			}
		}
	}
	st.CleanSessions = s.CleanSessionCount()
	if s.results != nil {
		rs := s.results.stats()
		st.ResultCache = &rs
	}
	st.SessionQueries = s.sessions.queryStatsTotals()
	st.Sweep.Add(st.SessionQueries.Sweep)
	if s.journal != nil {
		m := s.journal.store.Metrics()
		st.WAL = &m
	}
	st.Streams = s.streams.snapshot()
	st.Replication = s.replicationStats()
	return st
}

// queryStatsTotals sums the query-memo counters of every live session.
func (st *sessionStore) queryStatsTotals() SessionQueryStats {
	st.mu.Lock()
	sessions := make([]*Session, 0, len(st.live))
	for _, sess := range st.live {
		sessions = append(sessions, sess)
	}
	st.mu.Unlock()
	var total SessionQueryStats
	for _, sess := range sessions {
		qs := sess.QueryStats()
		total.Queries += qs.Queries
		total.Retained.Add(qs.Retained)
		total.Sweep.Add(qs.Sweep)
	}
	return total
}
