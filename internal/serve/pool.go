package serve

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// enginePool owns the per-(dataset, K) serving state: a Scratch free list
// (shape identical across every engine of the dataset) and an LRU of
// constructed engines keyed by test point, budgeted both by entry count and
// by approximate bytes (engines plus their retained query memos) through the
// shared lruBudget accounting. Cached engines carry no pins and are therefore
// safe for concurrent queries from many goroutines, each with its own
// Scratch; each entry's retained-tree memo is single-goroutine and guarded by
// the entry's own mutex.
type enginePool struct {
	ds       *Dataset
	k        int
	capacity int
	noMemo   bool // Config.DisableQueryMemo: ablation baseline

	mu        sync.Mutex
	cache     *lruBudget[*engineEntry] // guarded by mu
	scratches *core.ScratchPool        // created on first use; guarded by mu

	builds atomic.Int64 // engines constructed
	hits   atomic.Int64 // cache hits

	// Span-parallel sweep counters for the memo-less path (querySweep);
	// retained entries keep their own and are aggregated at Stats time.
	sweepPar    atomic.Int64
	sweepSpans  atomic.Int64
	sweepSteals atomic.Int64
}

// engineEntry is one cached (test point → engine) binding plus its
// retained-tree query memo: the full PointResult of the last query, keyed by
// the engine's pin generation, with the underlying core.Retained holding the
// scan state that makes a post-pin refresh incremental.
type engineEntry struct {
	key    string
	engine *core.Engine

	mu        sync.Mutex // serializes memo/retained use
	retained  *core.Retained
	memo      PointResult
	memoGen   uint64
	memoMC    bool
	memoValid bool
}

// pool returns (creating if needed) the engine pool for K.
func (d *Dataset) pool(k int, cfg Config) *enginePool {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pools[k]
	if !ok {
		p = &enginePool{
			ds:       d,
			k:        k,
			capacity: cfg.EngineCacheSize,
			noMemo:   cfg.DisableQueryMemo,
			cache:    newLRUBudget[*engineEntry](cfg.EngineCacheSize, cfg.MaxEngineBytes),
		}
		d.pools[k] = p
	}
	return p
}

// pointKey encodes a test point as a cache key (exact bit pattern; NaNs and
// signed zeros hash as distinct, which only costs a cache miss).
func pointKey(t []float64) string {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return string(b)
}

// engine returns a query engine for test point t, from cache when possible,
// together with its cache entry (nil when caching is disabled — the engine
// is then private to the caller). The returned engine may be shared with
// other goroutines; callers must not pin it.
func (p *enginePool) engine(t []float64) (*core.Engine, *engineEntry) {
	if p.capacity <= 0 {
		e := core.NewEngine(p.ds.data, p.ds.kernel, t)
		p.builds.Add(1)
		return e, nil
	}
	key := pointKey(t)
	p.mu.Lock()
	if ent, ok := p.cache.get(key); ok {
		p.mu.Unlock()
		p.hits.Add(1)
		return ent.engine, ent
	}
	p.mu.Unlock()
	// Construction is the expensive part (similarities + candidate sort);
	// keep it outside the lock. A concurrent miss on the same key builds a
	// duplicate and the first insert wins — wasted work, not a bug.
	e := core.NewEngine(p.ds.data, p.ds.kernel, t)
	p.builds.Add(1)
	ent := &engineEntry{key: key, engine: e}
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, inserted := p.cache.put(key, ent, e.ApproxBytes()); !inserted {
		return cur.engine, cur
	}
	return e, ent
}

// reaccount refreshes an entry's byte estimate after its retained memo grew
// (term streams expand on first scan) and re-applies the byte budget.
func (p *enginePool) reaccount(ent *engineEntry, newBytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cache.reaccount(ent.key, newBytes)
}

// queryEntry answers one point through the entry's retained memo: a repeat
// query at an unchanged pin generation returns the memoized PointResult
// outright, and a post-pin refresh recomputes Q2 through core.Retained's
// delta path instead of a full SS-DC sweep. Falls back to a plain sweep when
// the memo is disabled or the request's UseMC flips modes mid-entry.
// sweepWorkers > 1 runs any full rescan span-parallel (bit-identical either
// way); it is the caller's already-budgeted share of Config.Parallelism.
func (p *enginePool) queryEntry(ent *engineEntry, k int, useMC bool, sweepWorkers int) (PointResult, error) {
	e := ent.engine
	if p.noMemo {
		return p.querySweep(e, k, useMC, sweepWorkers)
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	gen := e.PinGeneration()
	if ent.memoValid && ent.memoGen == gen && ent.memoMC == useMC {
		if ent.retained != nil {
			// Keep the scans-avoided accounting truthful for memo repeats.
			ent.retained.Counts()
		}
		return ent.memo, nil
	}
	if ent.retained != nil && ent.retained.UseMC() != useMC {
		// Mode flip on a warm entry: answer plainly rather than thrash the
		// retained state between accumulators.
		return p.querySweep(e, k, useMC, sweepWorkers)
	}
	if ent.retained == nil {
		rt, err := core.NewRetained(e, k, useMC, p.scratchesFor(e))
		if err != nil {
			return PointResult{}, err
		}
		ent.retained = rt
	}
	ent.retained.ConfigureSweep(core.SweepConfig{Workers: sweepWorkers})
	counts := ent.retained.Counts()
	r, err := assemblePointResult(e, k, append([]float64(nil), counts...))
	if err != nil {
		return r, err
	}
	ent.memo, ent.memoGen, ent.memoMC, ent.memoValid = r, gen, useMC, true
	p.reaccount(ent, e.ApproxBytes()+ent.retained.ApproxBytes())
	return r, nil
}

// queryPlain is the memo-less path: borrow a scratch, run the fresh sweep.
func (p *enginePool) queryPlain(e *core.Engine, k int, useMC bool) (PointResult, error) {
	scratches := p.scratchesFor(e)
	sc := scratches.Get()
	defer scratches.Put(sc)
	return queryEngine(e, sc, k, useMC)
}

// querySweep is queryPlain with the span-parallel sweep when the caller's
// parallelism budget allows it, folding the run's counters into the pool.
func (p *enginePool) querySweep(e *core.Engine, k int, useMC bool, sweepWorkers int) (PointResult, error) {
	if sweepWorkers <= 1 {
		return p.queryPlain(e, k, useMC)
	}
	counts, stats, err := e.SweepCounts(k, useMC, core.SweepConfig{Workers: sweepWorkers}, p.scratchesFor(e))
	if err != nil {
		return PointResult{}, err
	}
	p.sweepPar.Add(stats.ParallelSweeps)
	p.sweepSpans.Add(stats.Spans)
	p.sweepSteals.Add(stats.Steals)
	return assemblePointResult(e, k, counts)
}

// scratchesFor returns the shared Scratch free list, creating it on first
// use from template (any engine of the dataset has the right shape; the
// pool captures only the shape, never the engine).
func (p *enginePool) scratchesFor(template *core.Engine) *core.ScratchPool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.scratches == nil {
		sp, err := core.NewScratchPool(template, p.k)
		if err != nil {
			// K was validated by resolveK before any pool use.
			panic(err)
		}
		p.scratches = sp
	}
	return p.scratches
}

// PoolStats reports one (K, pool) pair's serving counters.
type PoolStats struct {
	K             int   `json:"k"`
	EngineBuilds  int64 `json:"engine_builds"`
	EngineHits    int64 `json:"engine_hits"`
	EnginesCached int   `json:"engines_cached"`
	// EngineBytes is the approximate heap held by cached engines plus their
	// retained query memos; Evictions counts entries dropped by the entry or
	// byte budget.
	EngineBytes int64 `json:"engine_bytes"`
	Evictions   int64 `json:"evictions"`
	// Retained aggregates the retained-tree query-memo counters over the
	// currently cached entries (evicted entries take their counts with them).
	Retained core.RetainedStats `json:"retained"`
	// Plan aggregates the sweep-plan cache counters of the cached engines:
	// how many span plans were served verbatim, repaired in place, or rebuilt
	// from scratch (evicted engines take their counts with them).
	Plan core.PlanStats `json:"plan"`
	// Sweep aggregates the span-parallel sweep counters: the pool's memo-less
	// sweeps plus the cached entries' retained rescans.
	Sweep         core.SweepStats `json:"sweep"`
	ScratchGets   int64           `json:"scratch_gets"`
	ScratchAllocs int64           `json:"scratch_allocs"`
}

// Stats snapshots every pool of the dataset, ordered by K.
func (d *Dataset) Stats() []PoolStats {
	d.mu.Lock()
	pools := make([]*enginePool, 0, len(d.pools))
	for _, p := range d.pools {
		pools = append(pools, p)
	}
	d.mu.Unlock()
	out := make([]PoolStats, 0, len(pools))
	for _, p := range pools {
		st := PoolStats{
			K:            p.k,
			EngineBuilds: p.builds.Load(),
			EngineHits:   p.hits.Load(),
			Sweep: core.SweepStats{
				ParallelSweeps: p.sweepPar.Load(),
				Spans:          p.sweepSpans.Load(),
				Steals:         p.sweepSteals.Load(),
			},
		}
		p.mu.Lock()
		st.EnginesCached = p.cache.len()
		st.EngineBytes = p.cache.bytes
		st.Evictions = p.cache.evictions
		entries := p.cache.values()
		scratches := p.scratches
		p.mu.Unlock()
		for _, ent := range entries {
			st.Plan.Add(ent.engine.PlanStats())
			ent.mu.Lock()
			if ent.retained != nil {
				st.Retained.Add(ent.retained.Stats())
				st.Sweep.Add(ent.retained.SweepStats())
			}
			ent.mu.Unlock()
		}
		if scratches != nil {
			st.ScratchGets, st.ScratchAllocs = scratches.Stats()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}
