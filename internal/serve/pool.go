package serve

import (
	"container/list"
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// enginePool owns the per-(dataset, K) serving state: a Scratch free list
// (shape identical across every engine of the dataset) and an LRU of
// constructed engines keyed by test point. Cached engines carry no pins and
// are therefore safe for concurrent queries from many goroutines, each with
// its own Scratch.
type enginePool struct {
	ds       *Dataset
	k        int
	capacity int

	mu        sync.Mutex
	lru       *list.List // front = most recently used *engineEntry
	byKey     map[string]*list.Element
	scratches *core.ScratchPool // created on first use; guarded by mu

	builds atomic.Int64 // engines constructed
	hits   atomic.Int64 // cache hits
}

type engineEntry struct {
	key    string
	engine *core.Engine
}

// pool returns (creating if needed) the engine pool for K.
func (d *Dataset) pool(k, capacity int) *enginePool {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pools[k]
	if !ok {
		p = &enginePool{
			ds:       d,
			k:        k,
			capacity: capacity,
			lru:      list.New(),
			byKey:    make(map[string]*list.Element),
		}
		d.pools[k] = p
	}
	return p
}

// pointKey encodes a test point as a cache key (exact bit pattern; NaNs and
// signed zeros hash as distinct, which only costs a cache miss).
func pointKey(t []float64) string {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return string(b)
}

// engine returns a query engine for test point t, from cache when possible.
// The returned engine may be shared with other goroutines; callers must not
// pin it.
func (p *enginePool) engine(t []float64) *core.Engine {
	var key string
	if p.capacity > 0 {
		key = pointKey(t)
		p.mu.Lock()
		if el, ok := p.byKey[key]; ok {
			p.lru.MoveToFront(el)
			e := el.Value.(*engineEntry).engine
			p.mu.Unlock()
			p.hits.Add(1)
			return e
		}
		p.mu.Unlock()
	}
	// Construction is the expensive part (similarities + candidate sort);
	// keep it outside the lock. A concurrent miss on the same key builds a
	// duplicate and the first insert wins — wasted work, not a bug.
	e := core.NewEngine(p.ds.data, p.ds.kernel, t)
	p.builds.Add(1)
	if p.capacity > 0 {
		p.mu.Lock()
		if el, ok := p.byKey[key]; ok {
			p.lru.MoveToFront(el)
			e = el.Value.(*engineEntry).engine
		} else {
			p.byKey[key] = p.lru.PushFront(&engineEntry{key: key, engine: e})
			for p.lru.Len() > p.capacity {
				back := p.lru.Back()
				delete(p.byKey, back.Value.(*engineEntry).key)
				p.lru.Remove(back)
			}
		}
		p.mu.Unlock()
	}
	return e
}

// scratchesFor returns the shared Scratch free list, creating it on first
// use from template (any engine of the dataset has the right shape; the
// pool captures only the shape, never the engine).
func (p *enginePool) scratchesFor(template *core.Engine) *core.ScratchPool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.scratches == nil {
		sp, err := core.NewScratchPool(template, p.k)
		if err != nil {
			// K was validated by resolveK before any pool use.
			panic(err)
		}
		p.scratches = sp
	}
	return p.scratches
}

// PoolStats reports one (K, pool) pair's serving counters.
type PoolStats struct {
	K             int   `json:"k"`
	EngineBuilds  int64 `json:"engine_builds"`
	EngineHits    int64 `json:"engine_hits"`
	EnginesCached int   `json:"engines_cached"`
	ScratchGets   int64 `json:"scratch_gets"`
	ScratchAllocs int64 `json:"scratch_allocs"`
}

// Stats snapshots every pool of the dataset, ordered by K.
func (d *Dataset) Stats() []PoolStats {
	d.mu.Lock()
	pools := make([]*enginePool, 0, len(d.pools))
	for _, p := range d.pools {
		pools = append(pools, p)
	}
	d.mu.Unlock()
	out := make([]PoolStats, 0, len(pools))
	for _, p := range pools {
		st := PoolStats{
			K:            p.k,
			EngineBuilds: p.builds.Load(),
			EngineHits:   p.hits.Load(),
		}
		p.mu.Lock()
		st.EnginesCached = p.lru.Len()
		scratches := p.scratches
		p.mu.Unlock()
		if scratches != nil {
			st.ScratchGets, st.ScratchAllocs = scratches.Stats()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}
