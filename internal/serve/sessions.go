package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// tombstoneTTL is how long an expired session's ID keeps answering ErrGone
// (HTTP 410) before the store forgets it entirely (404). Deliberately much
// longer than any reasonable idle TTL so a returning client gets the
// truthful "expired" answer instead of a confusing "never existed".
const tombstoneTTL = time.Hour

// sessionStore owns every live clean session of one Server: creation under
// the capacity cap, ID lookup, idle-TTL eviction (lazily on access plus a
// background reaper), and tombstones that distinguish "expired" from "never
// existed". All methods are safe for concurrent use. Lock ordering is
// store.mu before Session.mu, never the reverse.
type sessionStore struct {
	max int           // live-session cap; < 0 = unlimited
	ttl time.Duration // idle eviction; < 0 = never

	mu         sync.Mutex
	live       map[string]*Session  // guarded by mu
	tombstones map[string]time.Time // expired ID → eviction time; guarded by mu
	stopped    bool                 // guarded by mu

	reaperOnce sync.Once
	stopReaper chan struct{}
}

func newSessionStore(max int, ttl time.Duration) *sessionStore {
	return &sessionStore{
		max:        max,
		ttl:        ttl,
		live:       make(map[string]*Session),
		tombstones: make(map[string]time.Time),
		stopReaper: make(chan struct{}),
	}
}

// Session is one addressable CPClean run whose lifetime is decoupled from
// any HTTP connection: it is created by POST /clean, driven by /next or
// /stream (one driver at a time — a second concurrent driver gets ErrBusy),
// survives client disconnects, and dies only by DELETE, idle-TTL eviction,
// or server shutdown.
//
// The underlying CleanSession is built lazily by the first driver, so
// creation returns immediately and validation errors still surface at
// creation time (validateCleanRequest runs up front).
//
// Every executed step is recorded in an append-only history, which is what
// makes disconnects harmless: a client that lost the stream after step k
// reconnects with /stream?from=k (or reads Status().Steps) and replays
// exactly the steps it missed before the session continues live.
type Session struct {
	id      string
	store   *sessionStore
	server  *Server
	ds      *Dataset
	k       int
	req     CleanRequest
	created time.Time

	mu             sync.Mutex
	lastUsed       time.Time // guarded by mu
	driving        bool      // guarded by mu
	closed         bool      // guarded by mu
	closeOnRelease bool      // guarded by mu
	// suspended marks a session re-materialized from the durable journal
	// after a restart: it holds only its request and executed-step history.
	// The first driver rebuilds the engines and re-executes the history
	// through the selection engine (verifying each step against the
	// journal), after which the run continues bit-identically to one that
	// was never interrupted.
	suspended bool
	failed    error
	clean     *CleanSession // nil until the first driver builds it
	history   []CleanStep   // every executed step, in order
	snap      sessionSnap
	// queries is the session's batch-query state: per-point engines pinned
	// to the executed step history, with retained-tree memos keyed by pin
	// generation (see squery.go). Built on first Query; dropped on close.
	queries *sessionQueryCache
}

// sessionSnap caches the summary fields a driver refreshes after every step
// so Status never has to touch the (single-goroutine) CleanSession.
type sessionSnap struct {
	started         bool
	done            bool
	steps           int
	certainFraction float64
	worlds          string
	examined        int64
}

// SessionStatus is the wire-visible state of a clean session.
type SessionStatus struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	// State is pending (created, no step yet), running, suspended
	// (re-materialized from the durable journal after a restart; the next
	// driver rebuilds its engines and continues), done, or failed.
	State string `json:"state"`
	// Busy reports whether a driver (/next or /stream) is attached right now.
	Busy bool `json:"busy"`
	// Steps is the number of executed cleaning steps; replay any of them via
	// GET /v1/clean/{id}/stream?from=N.
	Steps              int     `json:"steps"`
	CertainFraction    float64 `json:"certain_fraction"`
	WorldsRemaining    string  `json:"worlds_remaining,omitempty"`
	ExaminedHypotheses int64   `json:"examined_hypotheses"`
	Error              string  `json:"error,omitempty"`
	CreatedAt          string  `json:"created_at"`
	LastUsedAt         string  `json:"last_used_at"`
	// QueryMemo reports the session's batch-query memo counters (present
	// once the session has been queried via POST /v1/clean/{id}/query).
	QueryMemo *SessionQueryStats `json:"query_memo,omitempty"`
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return "cs_" + hex.EncodeToString(b[:])
}

// StartCleanSession validates the request, reserves a session slot under the
// MaxCleanSessions cap, and returns the addressable session immediately —
// the expensive engine construction is deferred to the first driver.
func (s *Server) StartCleanSession(name string, req CleanRequest) (*Session, error) {
	if err := s.availErr(); err != nil {
		return nil, err
	}
	if err := s.writeGate(); err != nil {
		return nil, err
	}
	ds, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	k, err := validateCleanRequest(ds, req)
	if err != nil {
		return nil, err
	}
	// Deep-copy the request: the engines are built lazily by the first
	// driver, possibly long after this call returns, so the session must not
	// alias caller slices the caller may reuse in the meantime.
	req.Truth = append([]int(nil), req.Truth...)
	pts := make([][]float64, len(req.ValPoints))
	for i, p := range req.ValPoints {
		pts[i] = append([]float64(nil), p...)
	}
	req.ValPoints = pts
	return s.sessions.create(s, ds, k, req)
}

// FindCleanSession resolves a session ID: ErrNotFound for unknown IDs,
// ErrGone for expired ones. A session idle past the TTL expires on lookup
// even if the reaper has not fired yet.
func (s *Server) FindCleanSession(id string) (*Session, error) {
	return s.sessions.get(id)
}

// ReleaseCleanSession deletes a session and returns its resources. Deleting
// a session that currently has a driver attached fails with ErrBusy;
// a deleted ID subsequently answers ErrNotFound (deliberate release, unlike
// expiry's ErrGone).
func (s *Server) ReleaseCleanSession(id string) error {
	// On a follower the release must happen on the leader and arrive as a
	// replicated record, or the two would disagree about the ID's fate.
	if err := s.writeGate(); err != nil {
		return err
	}
	return s.sessions.release(id)
}

// CleanSessionCount reports the number of live sessions.
func (s *Server) CleanSessionCount() int {
	s.sessions.mu.Lock()
	defer s.sessions.mu.Unlock()
	return len(s.sessions.live)
}

func (st *sessionStore) create(srv *Server, ds *Dataset, k int, req CleanRequest) (*Session, error) {
	now := time.Now()
	st.mu.Lock()
	if st.stopped {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: server is shut down", ErrUnavailable)
	}
	if st.max >= 0 && len(st.live) >= st.max {
		// Sweep before refusing: slots held by sessions already past the idle
		// TTL are reclaimable right now — a new run must not get a spurious
		// 429 just because neither a lookup nor the reaper tick has evicted
		// them yet.
		for _, old := range st.live {
			st.expireLocked(old, now)
		}
	}
	if st.max >= 0 && len(st.live) >= st.max {
		n := len(st.live)
		st.mu.Unlock()
		return nil, fmt.Errorf("%w (%d live)", ErrCapacity, n)
	}
	sess := &Session{
		id:       newSessionID(),
		store:    st,
		server:   srv,
		ds:       ds,
		k:        k,
		req:      req,
		created:  now,
		lastUsed: now,
	}
	st.live[sess.id] = sess
	// Buffer the create record under st.mu so a concurrent WAL compaction
	// can never snapshot a store state whose records the log is missing; the
	// fsync wait (commit) happens after unlock so creations don't stall
	// every session lookup for a group-commit window. The 201 the client
	// receives is durable once commit returns.
	commit, err := srv.journalSessionCreateStart(sess)
	if err != nil {
		delete(st.live, sess.id)
		st.mu.Unlock()
		return nil, err
	}
	if st.ttl > 0 {
		st.reaperOnce.Do(func() { go st.reaperLoop() })
	}
	st.mu.Unlock()
	if err := commit(); err != nil {
		// The record may not be durable (poisoned store): roll the creation
		// back. A driver can only have attached in this window if it raced
		// the failed create's caller, so closeOnRelease covers it.
		st.mu.Lock()
		if cur, ok := st.live[sess.id]; ok && cur == sess {
			sess.mu.Lock()
			if sess.driving {
				sess.closeOnRelease = true
			} else {
				sess.closeLocked()
			}
			sess.mu.Unlock()
			delete(st.live, sess.id)
		}
		st.mu.Unlock()
		return nil, err
	}
	return sess, nil
}

// maybeStartReaper starts the TTL reaper if recovery re-materialized
// sessions (create starts it lazily otherwise, but recovered sessions may
// never see another create).
func (st *sessionStore) maybeStartReaper() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.ttl > 0 && len(st.live) > 0 && !st.stopped {
		st.reaperOnce.Do(func() { go st.reaperLoop() })
	}
}

func (st *sessionStore) get(id string) (*Session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sess, ok := st.live[id]
	if !ok {
		if _, gone := st.tombstones[id]; gone {
			return nil, fmt.Errorf("%w: clean session %q", ErrGone, id)
		}
		return nil, fmt.Errorf("%w: unknown clean session %q", ErrNotFound, id)
	}
	if st.expireLocked(sess, time.Now()) {
		return nil, fmt.Errorf("%w: clean session %q", ErrGone, id)
	}
	return sess, nil
}

func (st *sessionStore) release(id string) error {
	st.mu.Lock()
	sess, ok := st.live[id]
	if !ok {
		_, gone := st.tombstones[id]
		st.mu.Unlock()
		if gone {
			return fmt.Errorf("%w: clean session %q", ErrGone, id)
		}
		return fmt.Errorf("%w: unknown clean session %q", ErrNotFound, id)
	}
	sess.mu.Lock()
	if sess.driving {
		sess.mu.Unlock()
		st.mu.Unlock()
		return fmt.Errorf("%w: session %q has a driver attached", ErrBusy, id)
	}
	// Buffer the release record — what keeps a deliberate DELETE a 404 (not
	// a resurrected session) after a restart — before touching anything, so
	// a journal that cannot take it fails the DELETE with the session intact
	// instead of acknowledging a deletion the next restart undoes.
	commit, err := sess.server.journalSessionReleaseStart(sess)
	if err != nil {
		sess.mu.Unlock()
		st.mu.Unlock()
		return err
	}
	sess.closeLocked()
	sess.mu.Unlock()
	delete(st.live, id)
	st.mu.Unlock()
	// A commit (fsync) failure poisons the store: report it — the in-memory
	// delete stands, a retried DELETE answers 404, and every later durable
	// operation fails loudly, so the operator knows durability is gone.
	return commit()
}

// expireLocked evicts sess if it has been idle past the TTL. Caller holds
// store.mu; a session with a driver attached is in use, never idle.
func (st *sessionStore) expireLocked(sess *Session, now time.Time) bool {
	if st.ttl < 0 {
		return false
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.driving || now.Sub(sess.lastUsed) <= st.ttl {
		return false
	}
	sess.closeLocked()
	delete(st.live, sess.id)
	st.tombstones[sess.id] = now
	// Journaling the tombstone keeps the expired ID answering 410 (not a
	// resurrected session) after a restart.
	sess.server.journalSessionExpire(sess, now)
	return true
}

// reaperLoop evicts idle sessions in the background so abandoned runs
// release their engines even if nobody ever touches their IDs again, and
// ages out old tombstones. Started lazily with the first session; stopped
// by close.
func (st *sessionStore) reaperLoop() {
	interval := st.ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-st.stopReaper:
			return
		case <-ticker.C:
			st.reap()
		}
	}
}

func (st *sessionStore) reap() {
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.stopped {
		return
	}
	for _, sess := range st.live {
		st.expireLocked(sess, now)
	}
	for id, t := range st.tombstones {
		if now.Sub(t) > tombstoneTTL {
			delete(st.tombstones, id)
		}
	}
}

func (st *sessionStore) close() {
	st.mu.Lock()
	if st.stopped {
		st.mu.Unlock()
		return
	}
	st.stopped = true
	// Stop a reaper if one was ever started; starting one later is prevented
	// by the stopped flag in create.
	st.reaperOnce.Do(func() {})
	close(st.stopReaper)
	live := make([]*Session, 0, len(st.live))
	for _, sess := range st.live {
		live = append(live, sess)
	}
	st.live = make(map[string]*Session)
	st.mu.Unlock()
	for _, sess := range live {
		sess.mu.Lock()
		if sess.driving {
			// An in-flight driver still holds the CleanSession; closing under
			// it would race. The release path finishes the close.
			sess.closeOnRelease = true
		} else {
			sess.closeLocked()
		}
		sess.mu.Unlock()
	}
}

// ID returns the session's addressable identifier.
func (sess *Session) ID() string { return sess.id }

// closeLocked releases the underlying CleanSession. Caller holds sess.mu
// and must guarantee no driver is attached.
func (sess *Session) closeLocked() {
	if sess.closed {
		return
	}
	sess.closed = true
	if sess.clean != nil {
		sess.clean.Close()
		sess.clean = nil
	}
	// The query cache holds per-point engines + retained memos — the bulk of
	// a queried session's footprint.
	sess.queries = nil
}

// acquire claims the session's single driver slot. A failed session still
// grants the slot — its history must stay replayable; only live stepping is
// off the table (drive checks failed before stepping).
func (sess *Session) acquire() error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return fmt.Errorf("%w: clean session %q", ErrGone, sess.id)
	}
	if sess.driving {
		return fmt.Errorf("%w: session %q already has a driver", ErrBusy, sess.id)
	}
	sess.driving = true
	sess.lastUsed = time.Now()
	return nil
}

func (sess *Session) releaseDriver() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.driving = false
	sess.lastUsed = time.Now()
	if sess.closeOnRelease {
		sess.closeLocked()
	}
}

// ensureBuilt constructs the CleanSession on first drive. Runs outside
// sess.mu (construction is expensive) but inside the driver slot, so no
// other goroutine can observe a half-built session.
//
// For a suspended session (re-materialized from the journal after a
// restart) it additionally re-executes the journaled step history through
// the freshly built selection engine, verifying each re-executed step —
// row, candidate, examined_hypotheses — against the journal. Because the
// step function is deterministic, this leaves the engines, pins, and
// selector memos in exactly the state an uninterrupted run would have, so
// every remaining step is bit-identical; a divergence means the data
// directory does not match the process (or a determinism bug) and fails the
// session rather than silently continuing from inconsistent state.
func (sess *Session) ensureBuilt() (*CleanSession, error) {
	sess.mu.Lock()
	c := sess.clean
	started := sess.snap.started
	suspended := sess.suspended
	// history is append-only and this goroutine holds the only driver slot.
	prefix := sess.history
	sess.mu.Unlock()
	if c != nil {
		return c, nil
	}
	if started && !suspended {
		// Built once and released since — done and failed sessions drop their
		// CleanSession, and drive returns before reaching here for both.
		return nil, fmt.Errorf("serve: internal: clean session %q has no live engine state", sess.id)
	}
	c, err := sess.server.buildCleanSession(sess.ds, sess.k, sess.req)
	if err != nil {
		// The request already passed validation, so a build failure is a
		// server-side fault — same 500 contract as a step failure.
		return nil, sess.setFailed(err)
	}
	if suspended {
		for i := range prefix {
			want := &prefix[i]
			step, ok, err := c.Step()
			if err != nil {
				c.Close()
				return nil, sess.setFailed(fmt.Errorf("replaying journaled step %d: %w", i+1, err))
			}
			if !ok {
				c.Close()
				return nil, sess.setFailed(fmt.Errorf(
					"journal has %d steps but the rebuilt run finished after %d", len(prefix), i))
			}
			if step.Row != want.Row || step.Candidate != want.Candidate ||
				step.ExaminedHypotheses != want.ExaminedHypotheses {
				c.Close()
				return nil, sess.setFailed(fmt.Errorf(
					"recovery diverged from the journal at step %d: re-executed (row %d, candidate %d, examined %d), journal has (row %d, candidate %d, examined %d)",
					i+1, step.Row, step.Candidate, step.ExaminedHypotheses,
					want.Row, want.Candidate, want.ExaminedHypotheses))
			}
		}
	}
	sess.mu.Lock()
	sess.clean = c
	sess.suspended = false
	sess.snap.started = true
	sess.snap.steps = c.Steps()
	sess.snap.certainFraction = c.CertainFraction()
	sess.snap.worlds = c.WorldsRemaining().String()
	sess.snap.examined = c.ExaminedHypotheses()
	if sess.server.journal == nil || !sess.ds.persistable {
		// The request was only ever needed for this build; drop the copied
		// Truth/ValPoints so a finished session really does hold just history
		// + snapshot. A journaled session keeps them: WAL compaction snapshots
		// must be able to re-materialize the run after the next restart.
		sess.req = CleanRequest{}
	}
	sess.mu.Unlock()
	return c, nil
}

// record appends an executed step to the history and refreshes the status
// snapshot.
func (sess *Session) record(c *CleanSession, step CleanStep) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.history = append(sess.history, step)
	sess.snap.steps = c.Steps()
	sess.snap.certainFraction = step.CertainFraction
	sess.snap.worlds = step.WorldsRemaining
	sess.snap.examined = c.ExaminedHypotheses()
	sess.lastUsed = time.Now()
}

// markDone finalizes the snapshot and releases the underlying CleanSession
// immediately: replay and the summary need only history + snap, so a
// finished run must not pin its engines and selection memos until DELETE or
// the idle TTL.
func (sess *Session) markDone(c *CleanSession) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.snap.done = true
	sess.snap.steps = c.Steps()
	sess.snap.certainFraction = c.CertainFraction()
	sess.snap.worlds = c.WorldsRemaining().String()
	sess.snap.examined = c.ExaminedHypotheses()
	sess.req = CleanRequest{} // a finished run is never re-materialized
	c.Close()
	sess.clean = nil
}

// setFailed records a server-side step/build error and releases the
// CleanSession (it is in an indeterminate state and will never step again);
// the history stays replayable. Returns the ErrSessionFailed-wrapped error
// so the failing driver reports the same 500 every later driver will see.
func (sess *Session) setFailed(err error) error {
	sess.mu.Lock()
	sess.failed = fmt.Errorf("%w: %v", ErrSessionFailed, err)
	sess.suspended = false
	sess.req = CleanRequest{}
	if sess.clean != nil {
		sess.clean.Close()
		sess.clean = nil
	}
	failed := sess.failed
	sess.mu.Unlock()
	// Best-effort: when journaling itself is what failed this only logs.
	sess.server.journalSessionFail(sess.id, err.Error())
	return failed
}

// DriveFrom attaches as the session's driver (ErrBusy if one is attached),
// replays history starting after step `from` (0 replays everything;
// len(history) replays nothing), then keeps executing live steps. Each step
// — replayed or fresh — is handed to fn; fn returning false detaches
// without consuming the session (every executed step is already in the
// history, so nothing is lost to a broken pipe). done reports whether the
// run has fully finished.
func (sess *Session) DriveFrom(from int, fn func(CleanStep) bool) (done bool, err error) {
	if from < 0 {
		return false, fmt.Errorf("serve: from=%d must be non-negative", from)
	}
	return sess.drive(from, fn)
}

// drive is DriveFrom with from == -1 meaning "no replay, live steps only" —
// the replay origin is resolved while holding the driver slot, so a Next
// racing another driver can never re-deliver steps that driver executed.
func (sess *Session) drive(from int, fn func(CleanStep) bool) (done bool, err error) {
	if err := sess.acquire(); err != nil {
		return false, err
	}
	defer sess.releaseDriver()
	sess.mu.Lock()
	n := len(sess.history)
	isDone := sess.snap.done
	failed := sess.failed
	sess.mu.Unlock()
	if from < 0 {
		from = n
	}
	if from > n {
		return false, fmt.Errorf("serve: from=%d out of range, session has %d executed steps", from, n)
	}
	// Replay needs only the history — it works on done and even failed
	// sessions (a client whose stream dropped before a server-side step
	// error must still be able to fetch the steps that did execute). The
	// history is append-only and this goroutine holds the only driver slot,
	// so indexing it without sess.mu is safe.
	for i := from; i < n; i++ {
		if !fn(sess.history[i]) {
			return false, nil
		}
	}
	if isDone {
		return true, nil
	}
	if failed != nil {
		return false, failed
	}
	// Live steps mutate the session — follower reads stop here: history
	// replay above (and done/failed summaries) served fine, but stepping
	// belongs to the leader, whose journal feeds this replica.
	if err := sess.server.writeGate(); err != nil {
		return false, err
	}
	c, err := sess.ensureBuilt()
	if err != nil {
		return false, err
	}
	for {
		step, ok, err := c.Step()
		if err != nil {
			return false, sess.setFailed(err)
		}
		if !ok {
			sess.markDone(c)
			sess.server.journalSessionDone(sess)
			return true, nil
		}
		sess.record(c, step)
		// Journaled asynchronously (group commit): a crash can lose the
		// freshest steps, and recovery re-executes them identically. A WAL
		// that cannot accept the record at all fails the session — continuing
		// would silently break the durability contract.
		if jerr := sess.server.journalSessionStep(sess, step); jerr != nil {
			return false, sess.setFailed(jerr)
		}
		if !fn(step) {
			return false, nil
		}
	}
}

// Next executes up to n fresh cleaning steps (never replaying history) and
// returns them; done reports whether the session finished. This is the
// resumable pull interface: after a dropped stream, Status().Steps says how
// far the run got, /stream?from=K replays what was missed, and Next
// continues the run.
func (sess *Session) Next(n int) (steps []CleanStep, done bool, err error) {
	if n <= 0 {
		n = 1
	}
	done, err = sess.drive(-1, func(step CleanStep) bool {
		steps = append(steps, step)
		return len(steps) < n
	})
	return steps, done, err
}

// Status snapshots the session without touching the underlying CleanSession,
// so it is safe (and cheap) while a driver is mid-step.
func (sess *Session) Status() SessionStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st := SessionStatus{
		ID:                 sess.id,
		Dataset:            sess.ds.Name(),
		Busy:               sess.driving,
		Steps:              sess.snap.steps,
		CertainFraction:    sess.snap.certainFraction,
		WorldsRemaining:    sess.snap.worlds,
		ExaminedHypotheses: sess.snap.examined,
		CreatedAt:          sess.created.UTC().Format(time.RFC3339Nano),
		LastUsedAt:         sess.lastUsed.UTC().Format(time.RFC3339Nano),
	}
	if sess.queries != nil {
		qs := sess.queries.statsSnapshot() // atomic counters; no extra locks
		st.QueryMemo = &qs
	}
	switch {
	case sess.failed != nil:
		st.State = "failed"
		st.Error = sess.failed.Error()
	case sess.snap.done:
		st.State = "done"
	case sess.suspended:
		st.State = "suspended"
	case !sess.snap.started:
		st.State = "pending"
	default:
		st.State = "running"
	}
	return st
}
