package serve

import (
	"context"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/knn"
)

// assertGoroutinesReturn fails the test if the goroutine count has not
// dropped back to the before-snapshot within a short deadline. Goroutines
// wind down asynchronously after Close returns (the runtime needs a moment
// to park exiting goroutines), so the helper polls instead of asserting
// once; on timeout it dumps all stacks so the leaked goroutine is named in
// the failure, not just counted.
func assertGoroutinesReturn(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after Close; stacks:\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCloseLeavesNoGoroutines is the runtime pin behind the cpvet
// goroutine analyzer: everything the server spawns — the WAL group-commit
// flusher, the session reaper, batch fan-out workers, and the detached
// compaction goroutine — must be joined or stopped by Server.Close. The
// workload deliberately crosses every spawn site: a durable server with a
// tiny segment threshold (forces compaction), a clean session driven to
// completion (journal traffic), and a batch query (worker fan-out).
func TestServerCloseLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	dir := t.TempDir()
	s := openDurable(t, dir, func(cfg *Config) { cfg.WALSegmentBytes = 2048 })
	d := randDataset(t, 40, 3, 2, 2, 0.6, 431)
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}

	if _, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: randPoints(12, 2, 433)}); err != nil {
		t.Fatal(err)
	}

	req := CleanRequest{Truth: make([]int, d.N()), ValPoints: randPoints(6, 2, 439)}
	sess, err := s.StartCleanSession("d", req)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, done, err := sess.Next(4); err != nil {
			t.Fatal(err)
		} else if done {
			break
		}
	}

	// Wait for at least one compaction so its goroutine has actually been
	// spawned before Close must join it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap")); len(snaps) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compaction never produced a snapshot despite a tiny segment threshold")
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.Close()
	assertGoroutinesReturn(t, before)
}
