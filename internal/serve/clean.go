package serve

import (
	"fmt"
	"math/big"
	"sync"

	"repro/internal/core"
	"repro/internal/selection"
)

// CleanRequest starts a CPClean session over a registered dataset: the
// caller supplies the oracle (the candidate each row would be cleaned to)
// and the validation points whose predictions the session drives to
// certainty.
type CleanRequest struct {
	// Truth[i] is the oracle candidate index of row i (consulted when the
	// session cleans row i). len(Truth) must equal the dataset size.
	Truth []int
	// ValPoints are the encoded validation points.
	ValPoints [][]float64
	// K overrides the dataset default when > 0.
	K int
	// MaxSteps caps cleaned rows (0 = until every validation point is CP'ed
	// or no uncertain rows remain).
	MaxSteps int
}

// CleanStep reports one executed cleaning step.
type CleanStep struct {
	// Step is the 1-based count of cleaned rows.
	Step int `json:"step"`
	// Row is the row cleaned at this step; Candidate its oracle repair.
	Row       int `json:"row"`
	Candidate int `json:"candidate"`
	// Entropy is the selected hypothesis's expected conditional entropy.
	Entropy float64 `json:"entropy"`
	// CertainFraction is the fraction of CP'ed validation points after the
	// step; WorldsRemaining the possible worlds still live under the pins.
	CertainFraction float64 `json:"certain_fraction"`
	WorldsRemaining string  `json:"worlds_remaining"`
	// ExaminedHypotheses counts the hypothesis Q2 scans this step actually
	// performed — after certain-skip, relevance pruning, and the selection
	// engine's cross-round memo. Watching it fall round over round is the
	// serving-visible signature of the incremental selector.
	ExaminedHypotheses int64 `json:"examined_hypotheses"`
}

// CleanSession is an in-progress CPClean run (Algorithm 3) whose steps the
// caller pulls one at a time — the serving layer streams them out as they
// complete. Sessions own private (pinnable) engines but draw Scratches from
// the dataset's shared pool. A session must be driven from one goroutine.
type CleanSession struct {
	ds        *Dataset
	cfg       Config
	k         int
	truth     []int
	maxSteps  int
	engines   []*core.Engine
	scratches *core.ScratchPool
	sel       *selection.Selector
	certain   []bool
	cleaned   []bool
	steps     int
	examined  int64
	closed    bool
}

// validateCleanRequest checks a CleanRequest against the dataset without
// building any engine state, so session creation can reject bad input
// immediately while deferring the expensive build to the first step.
func validateCleanRequest(ds *Dataset, req CleanRequest) (k int, err error) {
	k, err = ds.resolveK(req.K)
	if err != nil {
		return 0, err
	}
	if len(req.ValPoints) == 0 {
		return 0, fmt.Errorf("serve: clean session needs validation points")
	}
	d := ds.data
	if len(req.Truth) != d.N() {
		return 0, fmt.Errorf("serve: truth has %d entries, dataset %d rows", len(req.Truth), d.N())
	}
	for i, j := range req.Truth {
		if j < 0 || j >= d.Examples[i].M() {
			return 0, fmt.Errorf("serve: truth candidate %d out of range for row %d (M=%d)", j, i, d.Examples[i].M())
		}
	}
	dim := ds.dim()
	for i, t := range req.ValPoints {
		if len(t) != dim {
			return 0, fmt.Errorf("serve: val point %d has dim %d, dataset expects %d", i, len(t), dim)
		}
	}
	return k, nil
}

// NewCleanSession validates the request and builds the per-validation-point
// engines (in parallel) plus the initial certainty mask.
func (s *Server) NewCleanSession(name string, req CleanRequest) (*CleanSession, error) {
	ds, err := s.Dataset(name)
	if err != nil {
		return nil, err
	}
	k, err := validateCleanRequest(ds, req)
	if err != nil {
		return nil, err
	}
	return s.buildCleanSession(ds, k, req)
}

// buildCleanSession does the expensive part of session construction — the
// per-validation-point engines (in parallel), the scratch pool hookup, the
// initial certainty sweep, and the selection engine. req must already have
// passed validateCleanRequest.
func (s *Server) buildCleanSession(ds *Dataset, k int, req CleanRequest) (*CleanSession, error) {
	d := ds.data
	cfg := s.cfg
	c := &CleanSession{
		ds:       ds,
		cfg:      cfg,
		k:        k,
		truth:    append([]int(nil), req.Truth...),
		maxSteps: req.MaxSteps,
		engines:  make([]*core.Engine, len(req.ValPoints)),
		certain:  make([]bool, len(req.ValPoints)),
		cleaned:  make([]bool, d.N()),
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	for v := range req.ValPoints {
		wg.Add(1)
		sem <- struct{}{}
		go func(v int) {
			defer wg.Done()
			defer func() { <-sem }()
			c.engines[v] = core.NewEngine(d, ds.kernel, req.ValPoints[v])
		}(v)
	}
	wg.Wait()
	c.scratches = ds.pool(k, cfg).scratchesFor(c.engines[0])
	if err := c.refreshCertainty(); err != nil {
		return nil, err
	}
	sel, err := selection.New(c.engines, c.certain, c.scratches, selection.Config{
		K:            k,
		Parallelism:  cfg.Parallelism,
		SweepWorkers: cfg.SweepWorkers,
	})
	if err != nil {
		return nil, err
	}
	c.sel = sel
	return c, nil
}

// isCertain answers Q1 for one session engine under its current pins: exact
// MM for binary labels, Q2-threshold certainty otherwise.
func (c *CleanSession) isCertain(e *core.Engine, sc *core.Scratch) (bool, error) {
	if e.Instance().NumLabels == 2 {
		return e.IsCertainMM(c.k)
	}
	return core.IsCertain(e.Counts(sc, -1, -1)), nil
}

// refreshCertainty re-checks every not-yet-certain validation point
// (certain ones stay certain — the paper's monotonicity lemma).
func (c *CleanSession) refreshCertainty() error {
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.cfg.Parallelism)
	errs := make([]error, len(c.engines))
	for v, e := range c.engines {
		if c.certain[v] {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(v int, e *core.Engine) {
			defer wg.Done()
			defer func() { <-sem }()
			sc := c.scratches.Get()
			defer c.scratches.Put(sc)
			ok, err := c.isCertain(e, sc)
			if err != nil {
				errs[v] = err
				return
			}
			c.certain[v] = ok
		}(v, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CertainFraction returns the fraction of CP'ed validation points.
func (c *CleanSession) CertainFraction() float64 {
	n := 0
	for _, ok := range c.certain {
		if ok {
			n++
		}
	}
	return float64(n) / float64(len(c.certain))
}

// WorldsRemaining returns the possible-world count under the current pins.
func (c *CleanSession) WorldsRemaining() *big.Int {
	return c.engines[0].WorldCount()
}

// Steps returns the number of executed steps.
func (c *CleanSession) Steps() int { return c.steps }

// ExaminedHypotheses returns the cumulative hypothesis Q2 scans across all
// executed steps.
func (c *CleanSession) ExaminedHypotheses() int64 { return c.examined }

// Done reports whether the session has nothing left to do: every validation
// point CP'ed, every uncertain row cleaned, or the step budget exhausted.
func (c *CleanSession) Done() bool {
	if c.maxSteps > 0 && c.steps >= c.maxSteps {
		return true
	}
	if c.CertainFraction() == 1 {
		return true
	}
	return len(c.candidateRows()) == 0
}

// candidateRows lists uncleaned rows that are actually uncertain.
func (c *CleanSession) candidateRows() []int {
	var out []int
	for i := range c.cleaned {
		if !c.cleaned[i] && c.ds.data.Examples[i].M() > 1 {
			out = append(out, i)
		}
	}
	return out
}

// Close releases the session's serving resources: the per-validation-point
// engines and the selection engine's memos dominate session memory
// (O(valpoints · NM log NM)), and dropping them here instead of waiting for
// the whole session object to fall out of scope is what lets the store hold
// many finished-but-not-yet-deleted sessions cheaply. Stepping a closed
// session is an error; Close is idempotent.
func (c *CleanSession) Close() {
	c.closed = true
	c.engines = nil
	c.sel = nil
	c.scratches = nil
}

// Step executes one greedy CPClean step — the shared incremental selection
// engine (internal/selection) scores every candidate row by expected
// conditional entropy (Eq. 4), reusing memoized hypothesis sums from earlier
// steps wherever the last pin provably left them unchanged — then the
// minimizer is cleaned and certainty refreshed. ok is false when the session
// was already done.
func (c *CleanSession) Step() (step CleanStep, ok bool, err error) {
	if c.closed {
		return CleanStep{}, false, fmt.Errorf("serve: clean session is closed")
	}
	if c.Done() {
		return CleanStep{}, false, nil
	}
	rows := c.candidateRows()
	bestRows, bestEntropies, examined := c.sel.SelectBatch(rows, 1)
	c.examined += examined
	row := bestRows[0]
	cand := c.truth[row]
	c.cleaned[row] = true
	c.sel.Pin(row, cand)
	if err := c.refreshCertainty(); err != nil {
		return CleanStep{}, false, err
	}
	c.steps++
	return CleanStep{
		Step:               c.steps,
		Row:                row,
		Candidate:          cand,
		Entropy:            bestEntropies[0],
		CertainFraction:    c.CertainFraction(),
		WorldsRemaining:    c.WorldsRemaining().String(),
		ExaminedHypotheses: examined,
	}, true, nil
}

// Order is a convenience that runs the session to completion and returns
// the cleaned rows in order.
func (c *CleanSession) Order() ([]int, error) {
	var out []int
	for {
		step, ok, err := c.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, step.Row)
	}
}
