package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestStatsEndpoint drives a durable server through registrations, queries,
// and a clean session, then checks GET /v1/stats surfaces the serving
// counters and the WAL metrics (fsync count/latency, segment counts, replay
// duration) the ops runbook watches.
func TestStatsEndpoint(t *testing.T) {
	dir := t.TempDir()
	open := func() *Server {
		s, err := Open(Config{
			Parallelism:     2,
			DataDir:         dir,
			WALSyncInterval: -1, // fsync every append: deterministic counters
			Logf:            t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := open()
	d := randDataset(t, 30, 3, 2, 2, 0.6, 990)
	if _, err := s.Register("d", d, nil, 3); err != nil {
		t.Fatal(err)
	}
	points := randPoints(4, 2, 991)
	if _, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points}); err != nil {
		t.Fatal(err)
	}
	truth := make([]int, d.N())
	sess, err := s.StartCleanSession("d", CleanRequest{Truth: truth, ValPoints: randPoints(3, 2, 992)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Next(1); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(context.Background(), BatchRequest{Points: points}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(Handler(s))
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	if st.Datasets != 1 || st.CleanSessions != 1 {
		t.Fatalf("counts: %+v", st)
	}
	pools, ok := st.Pools["d"]
	if !ok || len(pools) == 0 || pools[0].EngineBuilds == 0 || pools[0].EngineBytes == 0 {
		t.Fatalf("pool stats missing: %+v", st.Pools)
	}
	if st.SessionQueries.Queries != int64(len(points)) {
		t.Fatalf("session query totals: %+v", st.SessionQueries)
	}
	if st.WAL == nil {
		t.Fatal("durable server reported no WAL metrics")
	}
	if st.WAL.FsyncCount == 0 || st.WAL.SegmentCount == 0 || st.WAL.AppendedRecords == 0 {
		t.Fatalf("WAL metrics empty: %+v", st.WAL)
	}
	if st.WAL.SyncedRecords != st.WAL.AppendedRecords {
		t.Fatalf("sync-every-append store left records unsynced: %+v", st.WAL)
	}

	// Restart: the replay cost must be visible.
	s.Close()
	s2 := open()
	defer s2.Close()
	m := s2.Stats().WAL
	if m == nil || m.LastReplayRecords == 0 {
		t.Fatalf("replay metrics empty after restart: %+v", m)
	}
	if m.LastReplayMicros < 0 || time.Duration(m.LastReplayMicros)*time.Microsecond > time.Minute {
		t.Fatalf("implausible replay duration: %+v", m)
	}

	// In-memory servers must omit WAL metrics entirely.
	mem := NewServer(Config{})
	defer mem.Close()
	if mem.Stats().WAL != nil {
		t.Fatal("in-memory server reported WAL metrics")
	}
}
