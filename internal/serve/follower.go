package serve

// Follower mode: this file is the apply side of WAL shipping (see
// internal/replica). A follower's tailer delivers the leader's journal
// records one at a time; applyShipped folds each into the live server —
// the continuous, lock-aware counterpart of startup recovery's applyRecord —
// and re-journals it verbatim into the follower's own WAL so a restart
// resumes from a durable cursor instead of re-bootstrapping.
//
// The invariant that makes follower reads bit-identical to leader reads:
// both sides derive every answer from the same journal prefix through the
// same deterministic code (recoverDataset/recoverSession builders, the exact
// step-idempotency rule, the history-pinned session query path). A record
// the follower cannot apply consistently fails the tail loudly rather than
// letting the replica drift.

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/durable"
	"repro/internal/replica"
)

// writeGate rejects state-changing operations on a follower. Every write
// belongs on the leader — its journal is the single source of truth that
// this server replays — so the caller gets ErrNotLeader (HTTP 421) naming
// the leader to retry against.
func (s *Server) writeGate() error {
	if s.cfg.FollowURL == "" {
		return nil
	}
	return fmt.Errorf("%w: read-only follower; retry against the leader at %s", ErrNotLeader, s.LeaderURL())
}

// LeaderURL is the best known leader base URL: what the leader advertises on
// its ship stream when known, the configured follow URL otherwise. Empty on
// anything that is not a follower.
func (s *Server) LeaderURL() string {
	if s.tailer != nil {
		if st := s.tailer.Status(); st.LeaderURL != "" {
			return st.LeaderURL
		}
	}
	return s.cfg.FollowURL
}

// applyShipped is the tailer's Apply hook: fold one shipped record into the
// in-memory state, then re-journal it verbatim. Idempotent (reconnects and
// restarts redeliver), and memory-first so a concurrent local compaction can
// never snapshot a state missing a record its log already sealed.
func (s *Server) applyShipped(rec durable.Record) error {
	if err := s.applyShippedToMemory(rec); err != nil {
		return err
	}
	if err := s.journal.appendRaw(rec); err != nil {
		return err
	}
	s.journal.maybeCompact(s.snapshotState)
	return nil
}

// applyShippedToMemory mirrors recovery's applyRecord decision-for-decision
// — same idempotency rules, same drop-with-warning tolerance for records the
// leader itself would have skipped at replay — but against a live server, so
// every map and session touch takes the owning lock (Server.mu before
// sessionStore.mu before Session.mu). The one divergence from recovery is a
// step that skips ahead of the history: at startup that means a mangled log,
// here it means lost replication records, and a follower that cannot prove
// continuity must fail loudly instead of serving wrong answers.
func (s *Server) applyShippedToMemory(rec durable.Record) error {
	skip := func(err error) {
		// The frame's CRC was intact, so the leader's replay would hit the
		// same undecodable payload and skip it too; both sides converge.
		s.logf("serve: replica: skipping %s record for %s: %v", rec.Type, rec.Entity, err)
	}
	switch rec.Type {
	case "register":
		var pd persistedDataset
		if err := json.Unmarshal(rec.Data, &pd); err != nil {
			skip(err)
			return nil
		}
		s.mu.RLock()
		old := s.datasets[pd.Name]
		s.mu.RUnlock()
		if old != nil {
			if old.fingerprint != pd.Fingerprint {
				skip(fmt.Errorf("conflicting re-registration of dataset %q", pd.Name))
			}
			return nil
		}
		ds, err := buildRecoveredDataset(pd)
		if err != nil {
			skip(err)
			return nil
		}
		s.mu.Lock()
		if _, ok := s.datasets[pd.Name]; !ok {
			s.datasets[pd.Name] = ds
		}
		s.mu.Unlock()
	case "create":
		var ps persistedSession
		if err := json.Unmarshal(rec.Data, &ps); err != nil {
			skip(err)
			return nil
		}
		s.mu.RLock()
		ds := s.datasets[ps.Dataset]
		s.mu.RUnlock()
		if ds == nil {
			skip(fmt.Errorf("dataset %q not replicated", ps.Dataset))
			return nil
		}
		sess, err := buildRecoveredSession(s, ds, ps)
		if err != nil {
			skip(err)
			return nil
		}
		st := s.sessions
		st.mu.Lock()
		_, exists := st.live[ps.ID]
		_, gone := st.tombstones[ps.ID]
		if !exists && !gone && !st.stopped {
			st.live[ps.ID] = sess
		}
		st.mu.Unlock()
	case "step":
		var sr stepRecord
		if err := json.Unmarshal(rec.Data, &sr); err != nil {
			skip(err)
			return nil
		}
		st := s.sessions
		st.mu.Lock()
		sess := st.live[sr.ID]
		st.mu.Unlock()
		if sess == nil {
			return nil // released/expired later in the leader's log, or dropped above
		}
		sess.mu.Lock()
		defer sess.mu.Unlock()
		switch {
		case sr.Step.Step <= len(sess.history):
			// Redelivery after a reconnect or restart; already applied.
		case sr.Step.Step == len(sess.history)+1:
			sess.history = append(sess.history, sr.Step)
			sess.snap.steps = len(sess.history)
			sess.snap.certainFraction = sr.Step.CertainFraction
			sess.snap.worlds = sr.Step.WorldsRemaining
			sess.snap.examined += sr.Step.ExaminedHypotheses
		default:
			return fmt.Errorf("serve: replica: session %s step %d arrived after %d applied steps; replication stream lost records",
				sr.ID, sr.Step.Step, len(sess.history))
		}
	case "done":
		var dr doneRecord
		if err := json.Unmarshal(rec.Data, &dr); err != nil {
			skip(err)
			return nil
		}
		if sess := s.lookupLive(dr.ID); sess != nil {
			sess.mu.Lock()
			sess.snap.done = true
			sess.snap.started = true
			sess.suspended = false
			sess.snap.certainFraction = dr.CertainFraction
			sess.snap.worlds = dr.Worlds
			if dr.Examined > 0 {
				sess.snap.examined = dr.Examined
			}
			sess.req = CleanRequest{}
			sess.mu.Unlock()
		}
	case "fail":
		var fr failRecord
		if err := json.Unmarshal(rec.Data, &fr); err != nil {
			skip(err)
			return nil
		}
		if sess := s.lookupLive(fr.ID); sess != nil {
			sess.mu.Lock()
			sess.failed = fmt.Errorf("%w: %s", ErrSessionFailed, fr.Error)
			sess.snap.started = true
			sess.suspended = false
			sess.req = CleanRequest{}
			sess.mu.Unlock()
		}
	case "expire":
		var er expireRecord
		if err := json.Unmarshal(rec.Data, &er); err != nil {
			skip(err)
			return nil
		}
		at := er.At
		if at.IsZero() {
			at = time.Now() //cpvet:allow nowalltime -- legacy expire record without a timestamp; TTL-only, never replayed downstream
		}
		s.dropReplicated(er.ID, &at)
	case "release":
		var rr releaseRecord
		if err := json.Unmarshal(rec.Data, &rr); err != nil {
			skip(err)
			return nil
		}
		s.dropReplicated(rr.ID, nil)
	default:
		s.logf("serve: replica: ignoring unknown record type %q for %s", rec.Type, rec.Entity)
	}
	return nil
}

// lookupLive fetches a live session without the expiry side effects of
// sessionStore.get — a replicated terminal record must land on the session
// regardless of how long it has been idle here.
func (s *Server) lookupLive(id string) *Session {
	st := s.sessions
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.live[id]
}

// dropReplicated removes a session the leader expired (tombstone set) or
// released (tombstone cleared), closing it unless a read driver is attached
// — replaying /stream readers hold the driver slot, and closing under them
// would race; closeOnRelease finishes the close when they detach.
func (s *Server) dropReplicated(id string, tombstone *time.Time) {
	st := s.sessions
	st.mu.Lock()
	defer st.mu.Unlock()
	if sess, ok := st.live[id]; ok {
		sess.mu.Lock()
		if sess.driving {
			sess.closeOnRelease = true
		} else {
			sess.closeLocked()
		}
		sess.mu.Unlock()
		delete(st.live, id)
	}
	if tombstone != nil {
		st.tombstones[id] = *tombstone
	} else {
		delete(st.tombstones, id)
	}
}

// applyReplicaSnapshot is the tailer's bootstrap hook: replace the follower's
// state with a leader snapshot (fresh follower, or our cursor was compacted
// away). Replace — not merge — semantics for sessions and tombstones: a live
// session absent from the snapshot was released or expired inside the
// compacted gap whose individual records we will never see. Datasets are
// add-only, matching the server (there is no unregister record to miss).
func (s *Server) applyReplicaSnapshot(payload []byte) error {
	var ps persistedState
	if err := json.Unmarshal(payload, &ps); err != nil {
		return fmt.Errorf("serve: undecodable leader snapshot: %w", err)
	}
	for _, pd := range ps.Datasets {
		s.mu.RLock()
		old := s.datasets[pd.Name]
		s.mu.RUnlock()
		if old != nil {
			if old.fingerprint != pd.Fingerprint {
				return fmt.Errorf("serve: leader snapshot re-registers dataset %q with a different fingerprint", pd.Name)
			}
			continue
		}
		ds, err := buildRecoveredDataset(pd)
		if err != nil {
			s.logf("serve: replica: dropping dataset %q from leader snapshot: %v", pd.Name, err)
			continue
		}
		s.mu.Lock()
		if _, ok := s.datasets[pd.Name]; !ok {
			s.datasets[pd.Name] = ds
		}
		s.mu.Unlock()
	}

	// Build replacement sessions outside the store lock (construction
	// validates the request), then swap the whole live set. The snapshot
	// covers at least through our old cursor, so for any session present on
	// both sides the snapshot's history is a superset of ours — replacing
	// never discards applied steps.
	built := make(map[string]*Session, len(ps.Sessions))
	for _, psess := range ps.Sessions {
		s.mu.RLock()
		ds := s.datasets[psess.Dataset]
		s.mu.RUnlock()
		if ds == nil {
			s.logf("serve: replica: dropping session %s from leader snapshot: dataset %q not replicated", psess.ID, psess.Dataset)
			continue
		}
		sess, err := buildRecoveredSession(s, ds, psess)
		if err != nil {
			s.logf("serve: replica: dropping session %s from leader snapshot: %v", psess.ID, err)
			continue
		}
		built[psess.ID] = sess
	}
	st := s.sessions
	st.mu.Lock()
	if st.stopped {
		st.mu.Unlock()
		return fmt.Errorf("%w: server is shut down", ErrUnavailable)
	}
	//cpvet:allow maporder -- close-and-replace of the whole live set; order cannot reach any output
	for id, sess := range st.live {
		sess.mu.Lock()
		if sess.driving {
			sess.closeOnRelease = true
		} else {
			sess.closeLocked()
		}
		sess.mu.Unlock()
		delete(st.live, id)
	}
	for id, sess := range built {
		st.live[id] = sess
	}
	st.tombstones = make(map[string]time.Time, len(ps.Tombstones))
	//cpvet:allow maporder -- copied map-to-map; iteration order cannot reach replicated state
	for id, at := range ps.Tombstones {
		st.tombstones[id] = at
	}
	st.mu.Unlock()

	// Reset the local WAL behind the new state: force a compaction so a
	// restart replays this snapshot instead of the stale pre-bootstrap log.
	if err := s.journal.store.Compact(s.snapshotState); err != nil {
		return fmt.Errorf("serve: persisting bootstrapped state: %w", err)
	}
	return nil
}

// noteApplied is the tailer's OnAdvance hook. Whenever the follower reaches
// the leader's durable frontier it fsyncs its own journal and persists the
// replication cursor — in that order, so the cursor on disk never points
// past records the local WAL could still lose. Mid-stream advances skip the
// save: redelivery from an older cursor is idempotent, losing locally
// unsynced records is not.
func (s *Server) noteApplied(c durable.Cursor, caughtUp bool) {
	if !caughtUp || c == s.lastSaved {
		return
	}
	if err := s.journal.store.Sync(); err != nil {
		s.logf("serve: replica: syncing journal before cursor save: %v", err)
		return
	}
	if err := replica.SaveCursor(s.cursorPath, c); err != nil {
		s.logf("serve: replica: persisting cursor %s: %v", c, err)
		return
	}
	s.lastSaved = c
}
