package serve

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// sessionQueryCache answers batch CP queries against a clean session's
// *current* pin state: per (K, test point) it keeps a private engine with the
// session's executed cleaning steps applied as pins, plus the retained-tree
// query memo (core.Retained) keyed by the engine's pin generation. A batch
// Q2 repeated while the session pins rows therefore reuses the prior tree
// state — an unchanged session is a pure memo hit, a session that pinned
// irrelevant rows since is too, and a relevant pin replays only its
// candidate-span window instead of a full SS-DC sweep.
//
// The cache is independent of the session's cleaning engines, so queries run
// concurrently with the (single-goroutine) driver: the driver appends to the
// session history under sess.mu, queries snapshot that history and catch
// their cached engines up pin by pin under each entry's own lock.
type sessionQueryCache struct {
	ds  *Dataset
	cfg Config

	mu    sync.Mutex
	cache *lruBudget[*squeryEntry] // guarded by mu

	// Lifetime counters, surviving entry eviction. queries counts points
	// answered; the rest mirror core.RetainedStats / core.SweepStats.
	queries     atomic.Int64
	fullScans   atomic.Int64
	memoHits    atomic.Int64
	deltaScans  atomic.Int64
	scanned     atomic.Int64
	avoided     atomic.Int64
	sweepPar    atomic.Int64
	sweepSpans  atomic.Int64
	sweepSteals atomic.Int64
}

// squeryEntry is one (K, point) pinned engine + retained memo. mu serializes
// use; last/lastSweep hold the retained stats already folded into the cache
// counters.
type squeryEntry struct {
	key string
	k   int
	pt  []float64

	mu        sync.Mutex
	engine    *core.Engine
	retained  *core.Retained
	applied   int // session history steps applied as pins
	last      core.RetainedStats
	lastSweep core.SweepStats
}

func newSessionQueryCache(ds *Dataset, cfg Config) *sessionQueryCache {
	capacity := cfg.EngineCacheSize
	if capacity <= 0 {
		// Even with engine caching disabled, session queries need at least
		// one live entry: a pinned engine is the answer's working state, and
		// a bounded cache (not none) is what keeps point sweeps from OOMing.
		capacity = 1
	}
	return &sessionQueryCache{
		ds:    ds,
		cfg:   cfg,
		cache: newLRUBudget[*squeryEntry](capacity, cfg.MaxEngineBytes),
	}
}

// SessionQueryStats is the wire-visible query-memo accounting of one session.
type SessionQueryStats struct {
	// Queries counts points answered against the session's pin state.
	Queries int64 `json:"queries"`
	// Retained aggregates the memo counters: how many answers came from the
	// memo verbatim, from a windowed delta replay, or from a full sweep, and
	// the boundary-candidate scans performed versus avoided.
	Retained core.RetainedStats `json:"retained"`
	// Sweep aggregates the span-parallel sweep counters of the session's
	// rescans.
	Sweep core.SweepStats `json:"sweep"`
}

func (q *sessionQueryCache) statsSnapshot() SessionQueryStats {
	return SessionQueryStats{
		Queries: q.queries.Load(),
		Retained: core.RetainedStats{
			FullScans:         q.fullScans.Load(),
			MemoHits:          q.memoHits.Load(),
			DeltaScans:        q.deltaScans.Load(),
			CandidatesScanned: q.scanned.Load(),
			CandidatesAvoided: q.avoided.Load(),
		},
		Sweep: core.SweepStats{
			ParallelSweeps: q.sweepPar.Load(),
			Spans:          q.sweepSpans.Load(),
			Steals:         q.sweepSteals.Load(),
		},
	}
}

// entry returns (creating if needed) the cache entry for (pt, k). Eviction
// runs the engine pool's policy through the shared lruBudget accounting.
func (q *sessionQueryCache) entry(pt []float64, k int) *squeryEntry {
	key := strconv.Itoa(k) + "|" + pointKey(pt)
	q.mu.Lock()
	defer q.mu.Unlock()
	if ent, ok := q.cache.get(key); ok {
		return ent
	}
	ent := &squeryEntry{key: key, k: k, pt: pt}
	q.cache.put(key, ent, 0)
	return ent
}

// reaccount refreshes an entry's byte estimate after a query grew its
// retained state, re-applying the byte budget.
func (q *sessionQueryCache) reaccount(ent *squeryEntry, newBytes int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.cache.reaccount(ent.key, newBytes)
}

// queryPoint answers one point under the pins of hist (the session's
// executed steps): the cached engine is caught up on any steps it has not
// seen, then the retained memo answers — O(1) when nothing relevant changed.
// sweepWorkers > 1 runs any full rescan span-parallel (bit-identical).
func (q *sessionQueryCache) queryPoint(ent *squeryEntry, hist []CleanStep, useMC bool, sweepWorkers int) (PointResult, error) {
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.engine == nil {
		ent.engine = core.NewEngine(q.ds.data, q.ds.kernel, ent.pt)
		rt, err := core.NewRetained(ent.engine, ent.k, useMC, q.ds.pool(ent.k, q.cfg).scratchesFor(ent.engine))
		if err != nil {
			ent.engine = nil
			return PointResult{}, err
		}
		ent.retained = rt
	}
	// Catch the engine up on cleaning steps executed since the last query of
	// this point. Pins only ever accumulate (the history is append-only), so
	// the delta is exactly hist[applied:].
	for ; ent.applied < len(hist); ent.applied++ {
		st := hist[ent.applied]
		ent.engine.SetPin(st.Row, st.Candidate)
	}
	if ent.retained.UseMC() != useMC {
		// Mode flip on a warm entry: answer with a plain sweep rather than
		// thrash the retained accumulator.
		sp := q.ds.pool(ent.k, q.cfg).scratchesFor(ent.engine)
		sc := sp.Get()
		defer sp.Put(sc)
		q.queries.Add(1)
		return queryEngine(ent.engine, sc, ent.k, useMC)
	}
	if q.cfg.DisableQueryMemo {
		// Ablation baseline: force the full sweep through the same code path
		// so the scan counters stay comparable.
		ent.retained.Invalidate()
	}
	ent.retained.ConfigureSweep(core.SweepConfig{Workers: sweepWorkers})
	counts := ent.retained.Counts()
	r, err := assemblePointResult(ent.engine, ent.k, append([]float64(nil), counts...))
	q.queries.Add(1)
	s := ent.retained.Stats()
	q.fullScans.Add(s.FullScans - ent.last.FullScans)
	q.memoHits.Add(s.MemoHits - ent.last.MemoHits)
	q.deltaScans.Add(s.DeltaScans - ent.last.DeltaScans)
	q.scanned.Add(s.CandidatesScanned - ent.last.CandidatesScanned)
	q.avoided.Add(s.CandidatesAvoided - ent.last.CandidatesAvoided)
	ent.last = s
	sw := ent.retained.SweepStats()
	q.sweepPar.Add(sw.ParallelSweeps - ent.lastSweep.ParallelSweeps)
	q.sweepSpans.Add(sw.Spans - ent.lastSweep.Spans)
	q.sweepSteals.Add(sw.Steals - ent.lastSweep.Steals)
	ent.lastSweep = sw
	q.reaccount(ent, ent.engine.ApproxBytes()+ent.retained.ApproxBytes())
	return r, err
}

// Query answers a batch CP query against the session's current cleaning
// state: every executed step so far is applied as a pin, exactly as if the
// dataset had been partially cleaned. It is safe to call while a driver is
// stepping the session — each answer reflects a consistent prefix of the
// step history — and repeated batches reuse the per-point retained tree
// state across pins (see sessionQueryCache). Canceling ctx abandons the
// remaining points, as in Server.BatchQuery.
func (sess *Session) Query(ctx context.Context, req BatchRequest) (*BatchResult, error) {
	res := &BatchResult{Results: make([]PointResult, len(req.Points))}
	sum, err := sess.StreamQuery(ctx, req, func(i int, r PointResult) error {
		res.Results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.K, res.CertainFraction = sum.K, sum.CertainFraction
	return res, nil
}

// StreamQuery is Query with the results delivered through yield in request
// order as they complete — the session-side engine of the NDJSON batch mode,
// with the same ordered fan-out and lowest-index error determinism as
// Dataset.StreamBatchQuery.
func (sess *Session) StreamQuery(ctx context.Context, req BatchRequest, yield func(i int, r PointResult) error) (BatchSummary, error) {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return BatchSummary{}, fmt.Errorf("%w: clean session %q", ErrGone, sess.id)
	}
	if sess.queries == nil {
		sess.queries = newSessionQueryCache(sess.ds, sess.server.cfg)
	}
	q := sess.queries
	hist := sess.history[:len(sess.history):len(sess.history)]
	sess.lastUsed = time.Now()
	sess.mu.Unlock()

	k := sess.k
	if req.K != 0 {
		var err error
		if k, err = sess.ds.resolveK(req.K); err != nil {
			return BatchSummary{}, err
		}
	}
	dim := sess.ds.dim()
	for i, t := range req.Points {
		if len(t) != dim {
			return BatchSummary{}, fmt.Errorf("serve: point %d has dim %d, dataset expects %d", i, len(t), dim)
		}
	}
	cfg := sess.server.cfg.withDefaults()
	batchWorkers, sweepWorkers := splitParallelism(cfg, len(req.Points))
	// Session answers are valid for one pin-state prefix: the history is
	// append-only, so its snapshot length is the result-cache generation —
	// a cleaning step bumps it and stale entries are simply never keyed again.
	results := cfg.resultCacheFor()
	gen := uint64(len(hist))
	certain := 0
	err := runOrdered(ctx, len(req.Points), batchWorkers, cfg.streams,
		func(i int) (PointResult, error) {
			var key string
			if results != nil {
				key = resultKey(sess.ds.fingerprint, sess.id, k, req.UseMC, gen, pointKey(req.Points[i]))
				if r, ok := results.get(key); ok {
					return r, nil
				}
			}
			ent := q.entry(req.Points[i], k)
			r, err := q.queryPoint(ent, hist, req.UseMC, sweepWorkers)
			if err == nil && results != nil {
				results.put(key, r)
			}
			return r, err
		},
		func(i int, r PointResult) error {
			if r.Certain {
				certain++
			}
			return yield(i, r)
		})
	if err != nil {
		if ctx.Err() != nil {
			return BatchSummary{}, fmt.Errorf("serve: session query abandoned: %w", ctx.Err())
		}
		return BatchSummary{}, err
	}
	sum := BatchSummary{K: k, Points: len(req.Points)}
	if len(req.Points) > 0 {
		sum.CertainFraction = float64(certain) / float64(len(req.Points))
	}
	return sum, nil
}

// QueryStats snapshots the session's query-memo counters (zero when the
// session was never queried).
func (sess *Session) QueryStats() SessionQueryStats {
	sess.mu.Lock()
	q := sess.queries
	sess.mu.Unlock()
	if q == nil {
		return SessionQueryStats{}
	}
	return q.statsSnapshot()
}
