package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/knn"
)

// KernelSpec names a similarity kernel in the wire format.
type KernelSpec struct {
	// Name is one of neg-euclidean (default), neg-sq-euclidean,
	// neg-manhattan, linear, cosine, rbf.
	Name string `json:"name"`
	// Gamma is the RBF bandwidth (rbf only; must be > 0).
	Gamma float64 `json:"gamma,omitempty"`
}

// Kernel resolves the spec.
func (ks KernelSpec) Kernel() (knn.Kernel, error) {
	switch ks.Name {
	case "", "neg-euclidean":
		return knn.NegEuclidean{}, nil
	case "neg-sq-euclidean":
		return knn.NegSquaredEuclidean{}, nil
	case "neg-manhattan":
		return knn.NegManhattan{}, nil
	case "linear":
		return knn.Linear{}, nil
	case "cosine":
		return knn.Cosine{}, nil
	case "rbf":
		if ks.Gamma <= 0 {
			return nil, fmt.Errorf("serve: rbf kernel needs gamma > 0")
		}
		return knn.RBF{Gamma: ks.Gamma}, nil
	default:
		return nil, fmt.Errorf("serve: unknown kernel %q", ks.Name)
	}
}

// exampleJSON is one training example on the wire.
type exampleJSON struct {
	Candidates [][]float64 `json:"candidates"`
	Label      int         `json:"label"`
}

// registerRequest is the POST /v1/datasets body.
type registerRequest struct {
	Name      string        `json:"name"`
	NumLabels int           `json:"num_labels"`
	Examples  []exampleJSON `json:"examples"`
	Kernel    KernelSpec    `json:"kernel"`
	K         int           `json:"k"`
}

// datasetInfo describes a registered dataset on the wire.
type datasetInfo struct {
	Name            string      `json:"name"`
	Fingerprint     string      `json:"fingerprint"`
	Rows            int         `json:"rows"`
	UncertainRows   int         `json:"uncertain_rows"`
	TotalCandidates int         `json:"total_candidates"`
	Worlds          string      `json:"worlds"`
	NumLabels       int         `json:"num_labels"`
	Kernel          string      `json:"kernel"`
	K               int         `json:"k"`
	Pools           []PoolStats `json:"pools,omitempty"`
}

func infoFor(d *Dataset, withPools bool) datasetInfo {
	info := datasetInfo{
		Name:            d.Name(),
		Fingerprint:     d.Fingerprint(),
		Rows:            d.Data().N(),
		UncertainRows:   len(d.Data().UncertainRows()),
		TotalCandidates: d.Data().TotalCandidates(),
		Worlds:          d.Data().WorldCount().String(),
		NumLabels:       d.Data().NumLabels,
		Kernel:          d.Kernel().Name(),
		K:               d.K(),
	}
	if withPools {
		info.Pools = d.Stats()
	}
	return info
}

// decodeJSON reads one strict JSON body: size-capped with MaxBytesReader
// (413 on overflow; maxBytes <= 0 disables the cap), unknown fields rejected
// (a typo'd "vak_points" is a 400 naming the field, not a confusing
// validation error), and trailing data after the object rejected. On error
// the response has already been written; callers just return.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v interface{}) bool {
	if maxBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, decodeStatus(err), fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		if err == nil {
			err = fmt.Errorf("serve: trailing data after JSON body")
		} else {
			err = fmt.Errorf("serve: trailing data after JSON body: %w", err)
		}
		httpError(w, decodeStatus(err), err)
		return false
	}
	return true
}

func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// Handler returns the HTTP/JSON API over the server:
//
//	POST   /v1/datasets                 register a dataset
//	GET    /v1/datasets                 list registered names
//	GET    /v1/datasets/{name}          dataset info + serving stats
//	POST   /v1/datasets/{name}/query    batch CP query (BatchRequest → BatchResult;
//	                                    Accept: application/x-ndjson streams one
//	                                    result line per point in request order)
//	POST   /v1/datasets/{name}/clean    create a CPClean session → 201 SessionStatus
//	GET    /v1/clean/{id}               session status
//	POST   /v1/clean/{id}/next?steps=N  execute up to N steps (resumable pull)
//	GET    /v1/clean/{id}/stream?from=K replay steps after K, then stream live NDJSON
//	POST   /v1/clean/{id}/query         batch CP query under the session's pins
//	                                    (same NDJSON streaming via Accept)
//	DELETE /v1/clean/{id}               release the session
//	GET    /v1/stats                    server-wide serving + WAL + replication statistics
//	GET    /v1/wal/stream?from=S,O      (leader only) CRC-framed WAL ship stream
//	GET    /v1/wal/snapshot             (leader only) newest snapshot for follower bootstrap
//
// A follower (Config.FollowURL) answers every read route from replicated
// state; writes (dataset registration, session creation, stepping, release)
// get 421 Misdirected Request with the leader's URL in the Leader header.
//
// Every route answers 503 once the server is closed (cpserve additionally
// serves 503 at the listener while Open is still replaying the data
// directory, before any Server exists to build a Handler around).
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if !decodeJSON(w, r, s.cfg.MaxRegisterBytes, &req) {
			return
		}
		examples := make([]dataset.Example, len(req.Examples))
		for i, ex := range req.Examples {
			examples[i] = dataset.Example{Candidates: ex.Candidates, Label: ex.Label}
		}
		d, err := dataset.New(examples, req.NumLabels)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		kernel, err := req.Kernel.Kernel()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ds, err := s.Register(req.Name, d, kernel, req.K)
		if err != nil {
			s.httpFail(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, infoFor(ds, false))
	})
	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{"datasets": s.Names()})
	})
	mux.HandleFunc("GET /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		ds, err := s.Dataset(r.PathValue("name"))
		if err != nil {
			s.httpFail(w, err)
			return
		}
		writeJSON(w, http.StatusOK, infoFor(ds, true))
	})
	mux.HandleFunc("POST /v1/datasets/{name}/query", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Points [][]float64 `json:"points"`
			K      int         `json:"k"`
			UseMC  bool        `json:"use_mc"`
		}
		if !decodeJSON(w, r, s.cfg.MaxQueryBytes, &req) {
			return
		}
		breq := BatchRequest{Points: req.Points, K: req.K, UseMC: req.UseMC}
		if wantsNDJSON(r) {
			streamBatchNDJSON(w, func(yield func(int, PointResult) error) (BatchSummary, error) {
				return s.StreamBatchQuery(r.Context(), r.PathValue("name"), breq, yield)
			})
			return
		}
		res, err := s.BatchQuery(r.Context(), r.PathValue("name"), breq)
		if err != nil {
			// A canceled request context means the client disconnected
			// mid-batch; the fan-out already stopped and freed its workers.
			// 499 (nginx's "client closed request") goes nowhere, but keeps
			// logs and metrics truthful — consistent with the clean-stream
			// path, which likewise stops stepping on a dead connection.
			s.httpFail(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/datasets/{name}/clean", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Truth     []int       `json:"truth"`
			ValPoints [][]float64 `json:"val_points"`
			K         int         `json:"k"`
			MaxSteps  int         `json:"max_steps"`
		}
		if !decodeJSON(w, r, s.cfg.MaxQueryBytes, &req) {
			return
		}
		sess, err := s.StartCleanSession(r.PathValue("name"), CleanRequest{
			Truth: req.Truth, ValPoints: req.ValPoints, K: req.K, MaxSteps: req.MaxSteps,
		})
		if err != nil {
			s.httpFail(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, sess.Status())
	})
	mux.HandleFunc("POST /v1/clean/{id}/query", func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.FindCleanSession(r.PathValue("id"))
		if err != nil {
			s.httpFail(w, err)
			return
		}
		var req struct {
			Points [][]float64 `json:"points"`
			K      int         `json:"k"`
			UseMC  bool        `json:"use_mc"`
		}
		if !decodeJSON(w, r, s.cfg.MaxQueryBytes, &req) {
			return
		}
		// Answers reflect the session's current cleaning state (every executed
		// step applied as a pin); repeats reuse the per-point retained trees.
		breq := BatchRequest{Points: req.Points, K: req.K, UseMC: req.UseMC}
		if wantsNDJSON(r) {
			streamBatchNDJSON(w, func(yield func(int, PointResult) error) (BatchSummary, error) {
				return sess.StreamQuery(r.Context(), breq, yield)
			})
			return
		}
		res, err := sess.Query(r.Context(), breq)
		if err != nil {
			s.httpFail(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /v1/clean/{id}", func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.FindCleanSession(r.PathValue("id"))
		if err != nil {
			s.httpFail(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sess.Status())
	})
	mux.HandleFunc("POST /v1/clean/{id}/next", func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.FindCleanSession(r.PathValue("id"))
		if err != nil {
			s.httpFail(w, err)
			return
		}
		n := 1
		if q := r.URL.Query().Get("steps"); q != "" {
			n, err = strconv.Atoi(q)
			if err != nil || n <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("serve: steps=%q must be a positive integer", q))
				return
			}
		}
		steps, done, err := sess.Next(n)
		if err != nil {
			s.httpFail(w, err)
			return
		}
		if steps == nil {
			steps = []CleanStep{}
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"id":      sess.ID(),
			"steps":   steps,
			"done":    done,
			"session": sess.Status(),
		})
	})
	mux.HandleFunc("GET /v1/clean/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.FindCleanSession(r.PathValue("id"))
		if err != nil {
			s.httpFail(w, err)
			return
		}
		from := 0
		if q := r.URL.Query().Get("from"); q != "" {
			from, err = strconv.Atoi(q)
			if err != nil || from < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("serve: from=%q must be a non-negative integer", q))
				return
			}
		}
		// One NDJSON object per step — replayed history first, then live —
		// each flushed as it is written so slow runs still deliver progress.
		// A failed write (client gone) just detaches the driver: every
		// executed step is in the session history, so the client resumes
		// with ?from= or /next after reconnecting.
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		headerWritten := false
		writeLine := func(v interface{}) bool {
			if !headerWritten {
				w.WriteHeader(http.StatusOK)
				headerWritten = true
			}
			if err := enc.Encode(v); err != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
			return true
		}
		ctx := r.Context()
		done, err := sess.DriveFrom(from, func(step CleanStep) bool {
			if ctx.Err() != nil {
				return false
			}
			return writeLine(step)
		})
		if err != nil {
			if !headerWritten {
				// Nothing streamed yet — a proper status code is still possible
				// (busy session → 409, bad from → 400, ...).
				s.httpFail(w, err)
				return
			}
			writeLine(map[string]string{"error": err.Error()})
			return
		}
		if done {
			st := sess.Status()
			writeLine(map[string]interface{}{
				"done":                true,
				"id":                  st.ID,
				"steps":               st.Steps,
				"certain_fraction":    st.CertainFraction,
				"worlds_remaining":    st.WorldsRemaining,
				"examined_hypotheses": st.ExaminedHypotheses,
			})
		}
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	if s.shipper != nil {
		// Leader only: followers tail these to replicate the journal. The
		// replica package handles its own status codes (it is transport, not
		// part of the JSON error contract above).
		mux.HandleFunc("GET /v1/wal/stream", s.shipper.ServeStream)
		mux.HandleFunc("GET /v1/wal/snapshot", s.shipper.ServeSnapshot)
	}
	mux.HandleFunc("DELETE /v1/clean/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.ReleaseCleanSession(r.PathValue("id")); err != nil {
			s.httpFail(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := s.availErr(); err != nil {
			s.httpFail(w, err)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// wantsNDJSON reports whether the request opted into the streaming batch
// encoding.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// streamPointLine is one NDJSON result line: the point's index in the
// request plus its full PointResult fields, inlined.
type streamPointLine struct {
	Index int `json:"index"`
	PointResult
}

// streamBatchNDJSON answers a batch query as NDJSON: one result line per
// point, written and flushed in request order the moment the point (and all
// earlier ones) completes — so first-result latency tracks the fastest
// point, not the whole batch — then one trailer line with the summary
// ("done": true, k, points, certain_fraction). Errors before the first line
// still get a proper status code; a mid-stream error is reported as a final
// {"error": ...} line, mirroring the clean-stream protocol.
func streamBatchNDJSON(w http.ResponseWriter, run func(yield func(int, PointResult) error) (BatchSummary, error)) {
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	headerWritten := false
	writeLine := func(v interface{}) error {
		if !headerWritten {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			headerWritten = true
		}
		if err := enc.Encode(v); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	sum, err := run(func(i int, r PointResult) error {
		return writeLine(streamPointLine{Index: i, PointResult: r})
	})
	if err != nil {
		if !headerWritten {
			httpError(w, errStatus(err), err)
			return
		}
		// The stream is already 200; a trailer line is the only error channel
		// left (and if the write itself failed, the client is gone anyway).
		_ = writeLine(map[string]string{"error": err.Error()})
		return
	}
	_ = writeLine(map[string]interface{}{
		"done":             true,
		"k":                sum.K,
		"points":           sum.Points,
		"certain_fraction": sum.CertainFraction,
	})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// httpFail is httpError with the status derived from the error, plus the
// follower write-rejection contract: an ErrNotLeader response carries the
// leader's base URL in the Leader header so a misdirected writer can retry
// there without parsing the body.
func (s *Server) httpFail(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrNotLeader) {
		if leader := s.LeaderURL(); leader != "" {
			w.Header().Set("Leader", leader)
		}
	}
	httpError(w, errStatus(err), err)
}

// statusClientClosedRequest is nginx's non-standard 499: the client closed
// the connection before the response was ready. No client reads it; it keeps
// access logs and metrics distinguishing "we failed" from "they left".
const statusClientClosedRequest = 499

// errStatus maps server errors to HTTP status codes: unknown dataset or
// session → 404, expired session → 410, session at capacity → 429, busy
// session or conflicting registration → 409, a session killed by a
// server-side step error or a write the durable journal rejected → 500,
// server outside its serving window (replaying at startup, or shut down)
// → 503, client disconnect canceling the request's work → 499, anything
// else (validation) → 400.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrGone):
		return http.StatusGone
	case errors.Is(err, ErrBusy), errors.Is(err, ErrConflict):
		return http.StatusConflict
	case errors.Is(err, ErrCapacity):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrSessionFailed), errors.Is(err, ErrPersist):
		return http.StatusInternalServerError
	case errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotLeader):
		// 421 Misdirected Request: this replica cannot take writes; the
		// Leader response header names where to retry.
		return http.StatusMisdirectedRequest
	default:
		return http.StatusBadRequest
	}
}
