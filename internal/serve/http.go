package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/dataset"
	"repro/internal/knn"
)

// KernelSpec names a similarity kernel in the wire format.
type KernelSpec struct {
	// Name is one of neg-euclidean (default), neg-sq-euclidean,
	// neg-manhattan, linear, cosine, rbf.
	Name string `json:"name"`
	// Gamma is the RBF bandwidth (rbf only; must be > 0).
	Gamma float64 `json:"gamma,omitempty"`
}

// Kernel resolves the spec.
func (ks KernelSpec) Kernel() (knn.Kernel, error) {
	switch ks.Name {
	case "", "neg-euclidean":
		return knn.NegEuclidean{}, nil
	case "neg-sq-euclidean":
		return knn.NegSquaredEuclidean{}, nil
	case "neg-manhattan":
		return knn.NegManhattan{}, nil
	case "linear":
		return knn.Linear{}, nil
	case "cosine":
		return knn.Cosine{}, nil
	case "rbf":
		if ks.Gamma <= 0 {
			return nil, fmt.Errorf("serve: rbf kernel needs gamma > 0")
		}
		return knn.RBF{Gamma: ks.Gamma}, nil
	default:
		return nil, fmt.Errorf("serve: unknown kernel %q", ks.Name)
	}
}

// exampleJSON is one training example on the wire.
type exampleJSON struct {
	Candidates [][]float64 `json:"candidates"`
	Label      int         `json:"label"`
}

// registerRequest is the POST /v1/datasets body.
type registerRequest struct {
	Name      string        `json:"name"`
	NumLabels int           `json:"num_labels"`
	Examples  []exampleJSON `json:"examples"`
	Kernel    KernelSpec    `json:"kernel"`
	K         int           `json:"k"`
}

// datasetInfo describes a registered dataset on the wire.
type datasetInfo struct {
	Name            string      `json:"name"`
	Fingerprint     string      `json:"fingerprint"`
	Rows            int         `json:"rows"`
	UncertainRows   int         `json:"uncertain_rows"`
	TotalCandidates int         `json:"total_candidates"`
	Worlds          string      `json:"worlds"`
	NumLabels       int         `json:"num_labels"`
	Kernel          string      `json:"kernel"`
	K               int         `json:"k"`
	Pools           []PoolStats `json:"pools,omitempty"`
}

func infoFor(d *Dataset, withPools bool) datasetInfo {
	info := datasetInfo{
		Name:            d.Name(),
		Fingerprint:     d.Fingerprint(),
		Rows:            d.Data().N(),
		UncertainRows:   len(d.Data().UncertainRows()),
		TotalCandidates: d.Data().TotalCandidates(),
		Worlds:          d.Data().WorldCount().String(),
		NumLabels:       d.Data().NumLabels,
		Kernel:          d.Kernel().Name(),
		K:               d.K(),
	}
	if withPools {
		info.Pools = d.Stats()
	}
	return info
}

// Handler returns the HTTP/JSON API over the server:
//
//	POST /v1/datasets              register a dataset
//	GET  /v1/datasets              list registered names
//	GET  /v1/datasets/{name}       dataset info + serving stats
//	POST /v1/datasets/{name}/query batch CP query (BatchRequest → BatchResult)
//	POST /v1/datasets/{name}/clean CPClean session; streams NDJSON CleanSteps
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		var req registerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		examples := make([]dataset.Example, len(req.Examples))
		for i, ex := range req.Examples {
			examples[i] = dataset.Example{Candidates: ex.Candidates, Label: ex.Label}
		}
		d, err := dataset.New(examples, req.NumLabels)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		kernel, err := req.Kernel.Kernel()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ds, err := s.Register(req.Name, d, kernel, req.K)
		if err != nil {
			httpError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, infoFor(ds, false))
	})
	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{"datasets": s.Names()})
	})
	mux.HandleFunc("GET /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		ds, err := s.Dataset(r.PathValue("name"))
		if err != nil {
			httpError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, infoFor(ds, true))
	})
	mux.HandleFunc("POST /v1/datasets/{name}/query", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Points [][]float64 `json:"points"`
			K      int         `json:"k"`
			UseMC  bool        `json:"use_mc"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		res, err := s.BatchQuery(r.PathValue("name"), BatchRequest{Points: req.Points, K: req.K, UseMC: req.UseMC})
		if err != nil {
			httpError(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/datasets/{name}/clean", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Truth     []int       `json:"truth"`
			ValPoints [][]float64 `json:"val_points"`
			K         int         `json:"k"`
			MaxSteps  int         `json:"max_steps"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		sess, err := s.NewCleanSession(r.PathValue("name"), CleanRequest{
			Truth: req.Truth, ValPoints: req.ValPoints, K: req.K, MaxSteps: req.MaxSteps,
		})
		if err != nil {
			httpError(w, errStatus(err), err)
			return
		}
		// Stream one NDJSON object per step, flushed as it completes, then a
		// summary line.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		ctx := r.Context()
		for {
			// A cleaning step can be expensive; don't keep stepping a session
			// whose client already disconnected.
			select {
			case <-ctx.Done():
				return
			default:
			}
			step, ok, err := sess.Step()
			if err != nil {
				enc.Encode(map[string]string{"error": err.Error()})
				return
			}
			if !ok {
				break
			}
			enc.Encode(step)
			if flusher != nil {
				flusher.Flush()
			}
		}
		enc.Encode(map[string]interface{}{
			"done":                true,
			"steps":               sess.Steps(),
			"certain_fraction":    sess.CertainFraction(),
			"worlds_remaining":    sess.WorldsRemaining().String(),
			"examined_hypotheses": sess.ExaminedHypotheses(),
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// errStatus maps server errors to HTTP status codes: unknown dataset → 404,
// conflicting registration → 409, anything else (validation) → 400.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrConflict):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}
