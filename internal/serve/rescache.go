package serve

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// resultCache is the server-wide query result cache: finished PointResults
// keyed by everything that determines a CP answer — dataset fingerprint,
// session scope, K, accumulator mode, pin generation, and the test point's
// exact bit pattern — so a repeated query is answered without touching an
// engine, a Scratch, or a retained memo at all. It sits in front of
// Dataset.StreamBatchQuery (scope "", generation 0: pooled engines are never
// pinned, so a dataset-level answer can never go stale) and
// Session.StreamQuery (scope = session ID, generation = executed-step count:
// the history is append-only, so the prefix length identifies the pin state
// exactly — a cleaning step bumps the generation and the stale entry is
// simply never keyed again, aging out through the byte budget).
//
// The cache is byte-budgeted through the same lruBudget accounting as the
// engine LRU and opt-in via Config.ResultCacheBytes; cached Fractions slices
// are shared across callers under PointResult's read-only contract.
type resultCache struct {
	maxBytes int64

	mu    sync.Mutex
	cache *lruBudget[PointResult] // guarded by mu

	hits   atomic.Int64
	misses atomic.Int64
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		cache:    newLRUBudget[PointResult](0, maxBytes),
	}
}

// resultKey builds the cache key. scope is "" for dataset-level queries and
// the session ID for session-level ones; gen is the pin-state generation the
// answer is valid for (0 at dataset level, the executed-step count at session
// level). point is the pointKey encoding of the test point.
func resultKey(fingerprint, scope string, k int, useMC bool, gen uint64, point string) string {
	var b strings.Builder
	b.Grow(len(fingerprint) + len(scope) + len(point) + 32)
	b.WriteString(fingerprint)
	b.WriteByte('|')
	b.WriteString(scope)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(k))
	if useMC {
		b.WriteString("|mc|")
	} else {
		b.WriteString("|tally|")
	}
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteByte('|')
	b.WriteString(point)
	return b.String()
}

// get returns the cached answer for key, counting the outcome.
func (rc *resultCache) get(key string) (PointResult, bool) {
	rc.mu.Lock()
	r, ok := rc.cache.get(key)
	rc.mu.Unlock()
	if ok {
		rc.hits.Add(1)
	} else {
		rc.misses.Add(1)
	}
	return r, ok
}

// put caches a finished answer, accounting the key and the fractions slice
// and applying the byte budget.
func (rc *resultCache) put(key string, r PointResult) {
	bytes := int64(len(key)) + int64(len(r.Fractions))*8 + 96
	rc.mu.Lock()
	rc.cache.put(key, r, bytes)
	rc.mu.Unlock()
}

// resultCacheFor returns the result cache a query path should consult: nil
// when the cache is disabled or the query-memo ablation is on (the ablation
// must keep every sweep counter comparable, so no layer may short-circuit).
func (c Config) resultCacheFor() *resultCache {
	if c.DisableQueryMemo {
		return nil
	}
	return c.results
}

// ResultCacheStats is the /v1/stats result-cache block.
type ResultCacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (rc *resultCache) stats() ResultCacheStats {
	st := ResultCacheStats{
		MaxBytes: rc.maxBytes,
		Hits:     rc.hits.Load(),
		Misses:   rc.misses.Load(),
	}
	rc.mu.Lock()
	st.Entries = rc.cache.len()
	st.Bytes = rc.cache.bytes
	st.Evictions = rc.cache.evictions
	rc.mu.Unlock()
	return st
}
