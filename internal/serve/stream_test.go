package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
)

// TestRunOrderedStreamsBeforeCompletion pins the streaming contract: the
// first results are yielded while a later point is still computing, so NDJSON
// first-result latency tracks the fastest point rather than the whole batch.
func TestRunOrderedStreamsBeforeCompletion(t *testing.T) {
	release := make(chan struct{})
	firstYielded := make(chan struct{})
	var order []int
	done := make(chan error, 1)
	go func() {
		done <- runOrdered(context.Background(), 4, 2, nil,
			func(i int) (PointResult, error) {
				if i == 3 {
					<-release // the slow last point
				}
				return PointResult{Prediction: i}, nil
			},
			func(i int, r PointResult) error {
				order = append(order, i)
				if i == 0 {
					close(firstYielded)
				}
				return nil
			})
	}()
	select {
	case <-firstYielded:
		// Point 0 streamed out while point 3 is still blocked — the property
		// under test.
	case <-time.After(10 * time.Second):
		t.Fatal("first result never yielded while the last point was in flight")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Fatalf("yield order %v, want %v", order, want)
	}
}

// TestRunOrderedLowestIndexError pins the deterministic error contract:
// whichever worker finishes first, the error reported is always the one at
// the lowest failing point index, and no result past it is yielded.
func TestRunOrderedLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 50; trial++ {
		var yielded []int
		err := runOrdered(context.Background(), 6, 4, nil,
			func(i int) (PointResult, error) {
				switch i {
				case 1:
					return PointResult{}, errLow
				case 3:
					return PointResult{}, errHigh
				}
				return PointResult{Prediction: i}, nil
			},
			func(i int, r PointResult) error {
				yielded = append(yielded, i)
				return nil
			})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got error %v, want the lowest-index error %v", trial, err, errLow)
		}
		if !reflect.DeepEqual(yielded, []int{0}) {
			t.Fatalf("trial %d: yielded %v, want only index 0 before the error", trial, yielded)
		}
	}
}

// TestRunOrderedYieldErrorStops checks a failed yield (a client write error
// in the NDJSON path) stops the fan-out with that error.
func TestRunOrderedYieldErrorStops(t *testing.T) {
	errWrite := errors.New("client went away")
	var yielded []int
	err := runOrdered(context.Background(), 8, 3, nil,
		func(i int) (PointResult, error) { return PointResult{Prediction: i}, nil },
		func(i int, r PointResult) error {
			yielded = append(yielded, i)
			if i == 2 {
				return errWrite
			}
			return nil
		})
	if !errors.Is(err, errWrite) {
		t.Fatalf("got %v, want the yield error", err)
	}
	if !reflect.DeepEqual(yielded, []int{0, 1, 2}) {
		t.Fatalf("yielded %v, want exactly [0 1 2]", yielded)
	}
}

// streamLine mirrors one NDJSON result line for decoding in tests.
type streamLine struct {
	Index int `json:"index"`
	PointResult
}

// TestBatchQueryNDJSON drives the HTTP NDJSON mode end to end: the response
// is one JSON line per point in request order, each bit-identical to the
// buffered BatchQuery answer, followed by a done trailer with the summary.
func TestBatchQueryNDJSON(t *testing.T) {
	d := randDataset(t, 40, 3, 3, 2, 0.4, 21)
	s := NewServer(Config{Parallelism: 4})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	points := randPoints(12, 2, 22)
	want, err := s.BatchQuery(context.Background(), "d", BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	body, _ := json.Marshal(map[string]interface{}{"points": points})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/datasets/d/query", bytes.NewReader(body))
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(points)+1 {
		t.Fatalf("got %d lines for %d points (want points+trailer)", len(lines), len(points))
	}
	for i, line := range lines[:len(points)] {
		var got streamLine
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got.Index != i {
			t.Fatalf("line %d carries index %d — results must stream in request order", i, got.Index)
		}
		if !reflect.DeepEqual(got.PointResult, want.Results[i]) {
			t.Fatalf("point %d: streamed %+v, buffered %+v", i, got.PointResult, want.Results[i])
		}
	}
	var trailer struct {
		Done            bool    `json:"done"`
		K               int     `json:"k"`
		Points          int     `json:"points"`
		CertainFraction float64 `json:"certain_fraction"`
	}
	if err := json.Unmarshal([]byte(lines[len(points)]), &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || trailer.K != want.K || trailer.Points != len(points) || trailer.CertainFraction != want.CertainFraction {
		t.Fatalf("trailer %+v disagrees with buffered result (k=%d, certain=%v)", trailer, want.K, want.CertainFraction)
	}
}

// TestSessionQueryNDJSON smoke-tests the clean-session NDJSON route: lines
// stream under the session's pins and match the buffered session answer.
func TestSessionQueryNDJSON(t *testing.T) {
	s, _, sess := cleanFixture(t, Config{Parallelism: 2}, 31)
	defer s.Close()
	if _, _, err := sess.Next(2); err != nil {
		t.Fatal(err)
	}
	points := randPoints(4, 2, 32)
	want, err := sess.Query(context.Background(), BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	body, _ := json.Marshal(map[string]interface{}{"points": points})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/clean/"+sess.ID()+"/query", bytes.NewReader(body))
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != len(points)+1 {
		t.Fatalf("got %d lines, want %d", len(lines), len(points)+1)
	}
	for i := range points {
		var got streamLine
		if err := json.Unmarshal([]byte(lines[i]), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got.Index != i || !reflect.DeepEqual(got.PointResult, want.Results[i]) {
			t.Fatalf("point %d: streamed %+v, buffered %+v", i, got.PointResult, want.Results[i])
		}
	}
	if !strings.Contains(lines[len(points)], `"done":true`) {
		t.Fatalf("missing done trailer: %q", lines[len(points)])
	}
}

// TestRegisterRejectsEmptyCandidates hand-builds the malformed dataset that
// dataset.New refuses (an example with zero candidates) and checks Register
// rejects it cleanly instead of letting dim() panic on first query.
func TestRegisterRejectsEmptyCandidates(t *testing.T) {
	bad := &dataset.Incomplete{
		Examples: []dataset.Example{
			{Candidates: nil, Label: 0},
			{Candidates: [][]float64{{1, 2}}, Label: 1},
		},
		NumLabels: 2,
	}
	s := NewServer(Config{})
	defer s.Close()
	_, err := s.Register("bad", bad, knn.NegEuclidean{}, 1)
	if err == nil {
		t.Fatal("Register accepted an example with no candidates")
	}
	if status := errStatus(err); status != http.StatusBadRequest {
		t.Fatalf("empty-candidate registration maps to %d, want 400", status)
	}
	if _, qerr := s.BatchQuery(context.Background(), "bad", BatchRequest{Points: [][]float64{{0, 0}}}); qerr == nil {
		t.Fatal("rejected dataset is queryable")
	}
}

// TestBatchQuerySweepParallelLockstep runs the same batch on a sequential
// server and on one with span-parallel sweeps and requires bit-for-bit
// identical fractions — the determinism contract of the sweep planner, here
// checked through the full serve stack (budget split, pool, retained memo).
func TestBatchQuerySweepParallelLockstep(t *testing.T) {
	// Big enough that the full scan window comfortably exceeds twice the
	// default span floor, so the parallel server really splits.
	d := randDataset(t, 600, 2, 3, 2, 0.6, 41)
	points := randPoints(2, 2, 42)

	seq := NewServer(Config{Parallelism: 1})
	defer seq.Close()
	par := NewServer(Config{Parallelism: 8, SweepWorkers: 4})
	defer par.Close()
	for _, s := range []*Server{seq, par} {
		if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
			t.Fatal(err)
		}
	}
	for _, useMC := range []bool{false, true} {
		t.Run(fmt.Sprintf("mc=%v", useMC), func(t *testing.T) {
			a, err := seq.BatchQuery(context.Background(), "d", BatchRequest{Points: points, UseMC: useMC})
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.BatchQuery(context.Background(), "d", BatchRequest{Points: points, UseMC: useMC})
			if err != nil {
				t.Fatal(err)
			}
			for i := range points {
				for y := range a.Results[i].Fractions {
					if a.Results[i].Fractions[y] != b.Results[i].Fractions[y] {
						t.Fatalf("point %d label %d: sequential %v, span-parallel %v — must be bit-identical",
							i, y, a.Results[i].Fractions, b.Results[i].Fractions)
					}
				}
				if a.Results[i].Certain != b.Results[i].Certain || a.Results[i].Prediction != b.Results[i].Prediction {
					t.Fatalf("point %d: decisions diverged", i)
				}
			}
		})
	}
	st := par.Stats()
	if st.Sweep.ParallelSweeps == 0 || st.Sweep.Spans < 2 {
		t.Fatalf("parallel server never ran a span-parallel sweep: %+v", st.Sweep)
	}
	if st.SweepWorkers != 4 {
		t.Fatalf("stats echo SweepWorkers=%d, want 4", st.SweepWorkers)
	}
	if sst := seq.Stats(); sst.Sweep.ParallelSweeps != 0 {
		t.Fatalf("sequential server reports parallel sweeps: %+v", sst.Sweep)
	}
}
