// Package serve is the concurrent batch CP-query serving layer: it owns
// registered incomplete datasets and answers Q1/Q2/entropy queries for many
// test points per request, amortizing the expensive per-test-point state
// (engine construction, Scratch segment trees) across queries instead of
// rebuilding it per call the way the one-shot core API does.
//
// # Pooling
//
// Three pooling levers, in decreasing order of savings:
//
//   - Scratches (O(N·K) segment trees) are pooled per (dataset, K) via
//     core.ScratchPool — every engine of one dataset has the same shape, so
//     one free list serves every worker and every test point.
//   - Engines (O(NM log NM) candidate sort) are cached per (dataset, K) in
//     an LRU keyed by test point, so repeated queries for hot points skip
//     construction entirely. Engines are immutable while serving batch
//     queries (pins are only used by cleaning sessions, which own private
//     engines), so one cached engine safely serves many goroutines, each
//     with its own pooled Scratch.
//   - Batch requests fan out across a bounded worker pool mirroring
//     cleaning.Options.Parallelism.
//
// # Clean sessions
//
// A CPClean run is served as an addressable Session decoupled from any
// connection. Its lifecycle states are:
//
//	pending   → created; no driver has touched it, engines not yet built
//	running   → a driver has built the engines and executed ≥ 0 steps
//	suspended → re-materialized from the durable journal after a restart;
//	            holds request + step history only, next driver rebuilds
//	done      → run finished; engines released, history kept for replay
//	failed    → a server-side step/build/journal error killed the run;
//	            history stays replayable, live stepping is over
//
// Invariants the session machinery relies on:
//
//   - Single-driver rule: at most one driver (/next or /stream) is attached
//     at a time; concurrent drivers get ErrBusy (409). Everything a driver
//     does — building, replaying, stepping, recording — happens inside that
//     exclusive slot, which is why history indexing and engine access need
//     no extra locking.
//   - Append-only history: every executed step is recorded before it is
//     handed to the client, so a disconnect can never lose an acknowledged
//     step, and /stream?from=k replays are exact.
//   - Deterministic stepping: given the same dataset, request, and pin
//     prefix, CleanSession.Step picks the same row, candidate, and
//     examined_hypotheses count. This is load-bearing for resume (PR 3's
//     lockstep test) and for crash recovery (the journaled prefix is
//     re-executed and verified, then the run continues bit-identically).
//   - Engine staleness: selection memos are validated against
//     core.Engine.PinGeneration; a session's engines are private, so pins
//     advance only under its own driver.
//
// # Durability
//
// With Config.DataDir set (constructor Open), registrations and session
// events are journaled through internal/durable and replayed on startup;
// see durable.go in this package for the journal/recovery design. A server
// outside its serving window — still replaying, or after Close — answers
// every request ErrUnavailable (HTTP 503).
package serve
