package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/knn"
)

// openDurable opens a durable server over dir with a tight group-commit
// window so tests don't wait on the default fsync cadence.
func openDurable(t *testing.T, dir string, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{DataDir: dir, WALSyncInterval: time.Millisecond, Logf: t.Logf}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// crashCopy snapshots the data directory exactly as it is on disk right
// now — the process-death simulation: everything still buffered in the
// crashed server's memory (records inside the group-commit window) is lost,
// everything fsynced survives.
func crashCopy(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// runReference executes the same clean workload uninterrupted and returns
// its full step sequence.
func runReference(t *testing.T, s *Server, name string, req CleanRequest) []CleanStep {
	t.Helper()
	ref, err := s.NewCleanSession(name, req)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	var steps []CleanStep
	for {
		step, ok, err := ref.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return steps
		}
		steps = append(steps, step)
	}
}

// TestDurableKillRestartLockstep is the acceptance test for the durability
// layer: a clean session interrupted by process death resumes from the data
// directory and the complete run — journaled prefix plus post-restart
// continuation — is bit-for-bit (rows, candidates, examined_hypotheses)
// the sequence an uninterrupted run emits. Steps lost from the group-commit
// window must be re-executed identically, not skipped or diverged from.
func TestDurableKillRestartLockstep(t *testing.T) {
	d := randDataset(t, 36, 3, 2, 2, 0.7, 307)
	req := CleanRequest{Truth: make([]int, d.N()), ValPoints: randPoints(8, 2, 311)}

	dir := t.TempDir()
	srv1 := openDurable(t, dir, nil)
	defer srv1.Close()
	if _, err := srv1.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	refSteps := runReference(t, srv1, "d", req)
	if len(refSteps) < 5 {
		t.Fatalf("reference run has %d steps; too short to interrupt meaningfully", len(refSteps))
	}

	sess, err := srv1.StartCleanSession("d", req)
	if err != nil {
		t.Fatal(err)
	}
	preCrash, _, err := sess.Next(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(preCrash) != 3 {
		t.Fatalf("pre-crash Next executed %d steps, want 3", len(preCrash))
	}
	// Let the group-commit flusher write the step records, then "kill" the
	// process by copying the directory as-is. (Whatever the flusher had not
	// yet synced is legitimately lost — recovery must absorb that too.)
	time.Sleep(50 * time.Millisecond)
	crashDir := crashCopy(t, dir)

	srv2 := openDurable(t, crashDir, nil)
	defer srv2.Close()
	recovered, err := srv2.FindCleanSession(sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	st := recovered.Status()
	if st.State != "suspended" {
		t.Fatalf("recovered session state = %q, want suspended", st.State)
	}
	if st.Steps > 3 {
		t.Fatalf("recovered session has %d journaled steps, ran only 3", st.Steps)
	}

	// Finish the run over the HTTP pull interface, like a reconnecting
	// client would.
	web := httptest.NewServer(Handler(srv2))
	defer web.Close()
	for {
		resp := postJSON(t, web.URL+"/v1/clean/"+sess.ID()+"/next?steps=2", nil)
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("/next on recovered session: status %d: %s", resp.StatusCode, b)
		}
		var next struct {
			Steps []CleanStep `json:"steps"`
			Done  bool        `json:"done"`
		}
		decodeBody(t, resp, &next)
		if next.Done {
			break
		}
		if len(next.Steps) == 0 {
			t.Fatal("/next returned no steps and done=false")
		}
	}

	// The full history — journaled prefix + post-restart continuation — must
	// equal the uninterrupted reference exactly.
	var replayed []CleanStep
	done, err := recovered.DriveFrom(0, func(step CleanStep) bool {
		replayed = append(replayed, step)
		return true
	})
	if err != nil || !done {
		t.Fatalf("full replay: done %v, err %v", done, err)
	}
	if len(replayed) != len(refSteps) {
		t.Fatalf("resumed run executed %d steps, uninterrupted %d", len(replayed), len(refSteps))
	}
	for i := range refSteps {
		if replayed[i].Row != refSteps[i].Row || replayed[i].Candidate != refSteps[i].Candidate {
			t.Fatalf("step %d diverged: resumed cleaned (%d,%d), uninterrupted (%d,%d)",
				i+1, replayed[i].Row, replayed[i].Candidate, refSteps[i].Row, refSteps[i].Candidate)
		}
		if replayed[i].ExaminedHypotheses != refSteps[i].ExaminedHypotheses {
			t.Fatalf("step %d: resumed examined %d hypotheses, uninterrupted %d",
				i+1, replayed[i].ExaminedHypotheses, refSteps[i].ExaminedHypotheses)
		}
	}
	// The steps the client executed before the crash are a prefix of the
	// recovered history — nothing acknowledged was rewritten.
	for i := range preCrash {
		if preCrash[i].Row != replayed[i].Row {
			t.Fatalf("pre-crash step %d cleaned row %d, recovered history has %d",
				i+1, preCrash[i].Row, replayed[i].Row)
		}
	}
}

// TestDurableDatasetSurvivesRestart pins registration durability end to
// end over HTTP: fingerprint and query answers are identical after a
// graceful restart.
func TestDurableDatasetSurvivesRestart(t *testing.T) {
	d := randDataset(t, 24, 3, 3, 2, 0.5, 331)
	dir := t.TempDir()
	srv1 := openDurable(t, dir, nil)
	web1 := httptest.NewServer(Handler(srv1))
	resp := postJSON(t, web1.URL+"/v1/datasets", map[string]interface{}{
		"name": "web", "num_labels": 3, "examples": exampleJSONs(d), "k": 3,
	})
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("register: status %d: %s", resp.StatusCode, b)
	}
	var info datasetInfo
	decodeBody(t, resp, &info)
	points := randPoints(6, 2, 337)
	before, err := srv1.BatchQuery(context.Background(), "web", BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	web1.Close()
	srv1.Close()

	srv2 := openDurable(t, dir, nil)
	defer srv2.Close()
	ds, err := srv2.Dataset("web")
	if err != nil {
		t.Fatalf("dataset did not survive the restart: %v", err)
	}
	if ds.Fingerprint() != info.Fingerprint {
		t.Fatalf("fingerprint changed across restart: %s → %s", info.Fingerprint, ds.Fingerprint())
	}
	after, err := srv2.BatchQuery(context.Background(), "web", BatchRequest{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	for i := range before.Results {
		if before.Results[i].Certain != after.Results[i].Certain ||
			before.Results[i].Prediction != after.Results[i].Prediction ||
			before.Results[i].Entropy != after.Results[i].Entropy {
			t.Fatalf("query %d answers differ across restart: %+v vs %+v", i, before.Results[i], after.Results[i])
		}
	}
	// Re-registering the identical dataset is still idempotent.
	if _, err := srv2.Register("web", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatalf("idempotent re-register after restart: %v", err)
	}
	// And a conflicting registration is still refused.
	other := randDataset(t, 24, 3, 3, 2, 0.5, 347)
	if _, err := srv2.Register("web", other, knn.NegEuclidean{}, 3); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting re-register after restart = %v, want ErrConflict", err)
	}
}

// TestDurableReleaseAndExpiryAcrossRestart pins the tombstone contract
// across restarts: a DELETEd session stays 404, an expired one stays 410.
func TestDurableReleaseAndExpiryAcrossRestart(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.4, 353)
	dir := t.TempDir()
	srv1 := openDurable(t, dir, func(cfg *Config) { cfg.SessionTTL = time.Hour })
	if _, err := srv1.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	req := CleanRequest{Truth: make([]int, d.N()), ValPoints: randPoints(3, 2, 359)}
	released, err := srv1.StartCleanSession("d", req)
	if err != nil {
		t.Fatal(err)
	}
	expired, err := srv1.StartCleanSession("d", req)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.ReleaseCleanSession(released.ID()); err != nil {
		t.Fatal(err)
	}
	expired.mu.Lock()
	expired.lastUsed = time.Now().Add(-2 * time.Hour)
	expired.mu.Unlock()
	if _, err := srv1.FindCleanSession(expired.ID()); !errors.Is(err, ErrGone) {
		t.Fatalf("expired lookup = %v, want ErrGone", err)
	}
	srv1.Close()

	srv2 := openDurable(t, dir, func(cfg *Config) { cfg.SessionTTL = time.Hour })
	defer srv2.Close()
	if _, err := srv2.FindCleanSession(released.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("released session after restart = %v, want ErrNotFound (404)", err)
	}
	if _, err := srv2.FindCleanSession(expired.ID()); !errors.Is(err, ErrGone) {
		t.Fatalf("expired session after restart = %v, want ErrGone (410)", err)
	}
}

// TestDurableCorruptTailRecovery pins the serve-level corrupt-WAL contract:
// garbage on the end of the active segment (a torn final write) is warned
// about and truncated, and the recovered session still resumes to the exact
// reference sequence.
func TestDurableCorruptTailRecovery(t *testing.T) {
	d := randDataset(t, 30, 3, 2, 2, 0.6, 367)
	req := CleanRequest{Truth: make([]int, d.N()), ValPoints: randPoints(6, 2, 373)}
	dir := t.TempDir()
	srv1 := openDurable(t, dir, nil)
	if _, err := srv1.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	refSteps := runReference(t, srv1, "d", req)
	sess, err := srv1.StartCleanSession("d", req)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Next(2); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	// Tear the tail: half a fake record — a plausible length field with no
	// payload behind it.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	active := segs[len(segs)-1]
	f, err := os.OpenFile(active, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var warnings []string
	srv2 := openDurable(t, dir, func(cfg *Config) {
		cfg.Logf = func(format string, args ...interface{}) {
			warnings = append(warnings, strings.TrimSpace(format))
			t.Logf(format, args...)
		}
	})
	defer srv2.Close()
	if len(warnings) == 0 {
		t.Fatal("no warning logged for the torn WAL tail")
	}
	recovered, err := srv2.FindCleanSession(sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got := recovered.Status().Steps; got != 2 {
		t.Fatalf("recovered session has %d journaled steps, want the 2 written before the tear", got)
	}
	var replayed []CleanStep
	for {
		steps, done, err := recovered.Next(4)
		if err != nil {
			t.Fatal(err)
		}
		replayed = append(replayed, steps...)
		if done {
			break
		}
	}
	full := recovered.Status().Steps
	if full != len(refSteps) {
		t.Fatalf("resumed run finished at %d steps, reference %d", full, len(refSteps))
	}
	for i, step := range replayed {
		ref := refSteps[2+i]
		if step.Row != ref.Row || step.ExaminedHypotheses != ref.ExaminedHypotheses {
			t.Fatalf("post-recovery step %d diverged: (%d, examined %d) vs reference (%d, examined %d)",
				2+i+1, step.Row, step.ExaminedHypotheses, ref.Row, ref.ExaminedHypotheses)
		}
	}
}

// TestDurableCompaction forces WAL rotation with a tiny segment threshold
// and checks the snapshot takes over cleanly: superseded segments deleted,
// and a restart over the compacted directory still has the dataset, the
// finished session, and its full replayable history.
func TestDurableCompaction(t *testing.T) {
	d := randDataset(t, 40, 3, 2, 2, 0.6, 379)
	req := CleanRequest{Truth: make([]int, d.N()), ValPoints: randPoints(6, 2, 383)}
	dir := t.TempDir()
	srv1 := openDurable(t, dir, func(cfg *Config) { cfg.WALSegmentBytes = 2048 })
	if _, err := srv1.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	sess, err := srv1.StartCleanSession("d", req)
	if err != nil {
		t.Fatal(err)
	}
	var history []CleanStep
	for {
		steps, done, err := sess.Next(2)
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, steps...)
		if done {
			break
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
		if len(snaps) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compaction never produced a snapshot despite a tiny segment threshold")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv1.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) == 0 {
		t.Fatal("no active segment after compaction")
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-00000001.log")); !os.IsNotExist(err) {
		t.Fatalf("superseded segment 1 still present (stat err %v)", err)
	}

	srv2 := openDurable(t, dir, nil)
	defer srv2.Close()
	if _, err := srv2.Dataset("d"); err != nil {
		t.Fatalf("dataset lost across compaction+restart: %v", err)
	}
	recovered, err := srv2.FindCleanSession(sess.ID())
	if err != nil {
		t.Fatalf("session lost across compaction+restart: %v", err)
	}
	st := recovered.Status()
	if st.State != "done" || st.Steps != len(history) {
		t.Fatalf("recovered session = %q with %d steps, want done with %d", st.State, st.Steps, len(history))
	}
	var replayed []CleanStep
	done, err := recovered.DriveFrom(0, func(step CleanStep) bool {
		replayed = append(replayed, step)
		return true
	})
	if err != nil || !done {
		t.Fatalf("replay of recovered done session: done %v, err %v", done, err)
	}
	for i := range history {
		if replayed[i].Row != history[i].Row || replayed[i].ExaminedHypotheses != history[i].ExaminedHypotheses {
			t.Fatalf("replayed step %d differs from the original run", i+1)
		}
	}
}

// TestServerUnavailableAfterClose pins the 503 serving-window contract.
func TestServerUnavailableAfterClose(t *testing.T) {
	d := randDataset(t, 12, 2, 2, 2, 0.4, 389)
	s := NewServer(Config{})
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(Handler(s))
	defer web.Close()
	s.Close()
	resp, err := http.Get(web.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed server answered %d, want 503", resp.StatusCode)
	}
	if _, err := s.StartCleanSession("d", CleanRequest{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("StartCleanSession on closed server = %v, want ErrUnavailable", err)
	}
}
