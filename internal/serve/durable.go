package serve

// This file is the bridge between the serving layer and internal/durable:
// the journal (what gets written, and with which durability class), the
// persisted wire schemas, and recovery (how snapshot + record stream fold
// back into a Server).
//
// Journal design: every state transition the server must survive is one
// record in one entity's stream —
//
//	dataset/<name>: register                      (the full dataset content)
//	session/<id>:   create, step*, done|fail, expire|release
//
// Registrations, session creations, and terminal events use group-commit
// AppendSync (the client's acknowledgement implies durability); per-step
// records use async Append — a crash can lose the freshest few steps, but
// CPClean's step function is deterministic (the PR-3 lockstep property), so
// recovery re-executes exactly the lost tail and the resumed run emits a
// bit-for-bit identical sequence. Durability batching therefore bounds
// redone work, never correctness.
//
// Recovery design: datasets are rebuilt eagerly (cheap: decode + fingerprint
// check); sessions are re-materialized in a "suspended" state holding only
// their request and executed-step history. The first driver that touches a
// suspended session rebuilds its engines and re-executes the journaled
// prefix through the selection engine, verifying each re-executed step
// against the history — after that the selector's memos are in exactly the
// state an uninterrupted run would have, which is what makes the remaining
// sequence (rows, candidates, examined_hypotheses) bit-identical.

import (
	"cmp"
	"encoding/json"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/knn"
)

// sortedKeys returns m's keys in ascending order — the sanctioned way to
// iterate a map inside //cpvet:deterministic scope, where raw map ranges are
// rejected by the maporder analyzer.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// persistedDataset is the journaled form of one registration: the full
// content (candidates round-trip bit-exactly through JSON — Go emits the
// shortest float form that parses back to the same float64), plus the
// fingerprint as an end-to-end integrity check on top of the WAL's CRC.
type persistedDataset struct {
	Name        string        `json:"name"`
	Fingerprint string        `json:"fingerprint"`
	NumLabels   int           `json:"num_labels"`
	Examples    []exampleJSON `json:"examples"`
	Kernel      KernelSpec    `json:"kernel"`
	K           int           `json:"k"`
}

// persistedSession carries a session through a restart. A create record
// fills identity + request; snapshots additionally embed the executed
// history and terminal state.
type persistedSession struct {
	ID        string      `json:"id"`
	Dataset   string      `json:"dataset"`
	K         int         `json:"k"` // resolved K, not the request's 0-default
	Truth     []int       `json:"truth,omitempty"`
	ValPoints [][]float64 `json:"val_points,omitempty"`
	MaxSteps  int         `json:"max_steps,omitempty"`
	Created   time.Time   `json:"created"`

	History []CleanStep `json:"history,omitempty"` // snapshots only
	Done    bool        `json:"done,omitempty"`
	Failed  string      `json:"failed,omitempty"`
	// Final summary fields, meaningful when Done (or as the latest snapshot
	// of a running session).
	CertainFraction float64 `json:"certain_fraction,omitempty"`
	Worlds          string  `json:"worlds,omitempty"`
	Examined        int64   `json:"examined,omitempty"`
}

type stepRecord struct {
	ID   string    `json:"id"`
	Step CleanStep `json:"step"`
}

type doneRecord struct {
	ID              string  `json:"id"`
	Steps           int     `json:"steps"`
	CertainFraction float64 `json:"certain_fraction"`
	Worlds          string  `json:"worlds"`
	Examined        int64   `json:"examined"`
}

type failRecord struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

type expireRecord struct {
	ID string    `json:"id"`
	At time.Time `json:"at"`
}

type releaseRecord struct {
	ID string `json:"id"`
}

// persistedState is the snapshot payload: everything a restart needs,
// equivalent to replaying the full record stream from the beginning.
type persistedState struct {
	Datasets   []persistedDataset   `json:"datasets,omitempty"`
	Sessions   []persistedSession   `json:"sessions,omitempty"`
	Tombstones map[string]time.Time `json:"tombstones,omitempty"`
}

func datasetEntity(name string) string { return "dataset/" + name }
func sessionEntity(id string) string   { return "session/" + id }

// kernelSpecFor inverts KernelSpec.Kernel for the built-in kernels. A custom
// knn.Kernel implementation has no wire form, so datasets registered with
// one (only possible through the Go API, never HTTP) stay in-memory.
func kernelSpecFor(k knn.Kernel) (KernelSpec, bool) {
	switch kk := k.(type) {
	case knn.NegEuclidean:
		return KernelSpec{Name: "neg-euclidean"}, true
	case knn.NegSquaredEuclidean:
		return KernelSpec{Name: "neg-sq-euclidean"}, true
	case knn.NegManhattan:
		return KernelSpec{Name: "neg-manhattan"}, true
	case knn.Linear:
		return KernelSpec{Name: "linear"}, true
	case knn.Cosine:
		return KernelSpec{Name: "cosine"}, true
	case knn.RBF:
		return KernelSpec{Name: "rbf", Gamma: kk.Gamma}, true
	}
	return KernelSpec{}, false
}

// persisted serializes the registration for the journal. Its output is
// journaled and replayed, so emission order must be deterministic.
//
//cpvet:deterministic
func (d *Dataset) persisted() persistedDataset {
	examples := make([]exampleJSON, d.data.N())
	for i := range d.data.Examples {
		ex := &d.data.Examples[i]
		examples[i] = exampleJSON{Candidates: ex.Candidates, Label: ex.Label}
	}
	spec, _ := kernelSpecFor(d.kernel)
	return persistedDataset{
		Name:        d.name,
		Fingerprint: d.fingerprint,
		NumLabels:   d.data.NumLabels,
		Examples:    examples,
		Kernel:      spec,
		K:           d.k,
	}
}

// journal owns the server's durable store plus the compaction policy. nil
// journal (no DataDir) makes every hook below a no-op — today's in-memory
// behavior.
type journal struct {
	store        *durable.Store
	logf         func(format string, args ...interface{})
	segmentBytes int64 // <= 0: never rotate

	compactMu  sync.Mutex     // at most one compaction in flight
	compacting bool           // guarded by compactMu
	closing    bool           // guarded by compactMu; set once by close, never cleared
	compactWG  sync.WaitGroup // joins the in-flight compaction goroutine
}

func marshalRecord(entity, typ string, payload interface{}) (durable.Record, error) {
	b, err := json.Marshal(payload)
	if err != nil {
		return durable.Record{}, fmt.Errorf("%w: encoding %s record: %v", ErrPersist, typ, err)
	}
	return durable.Record{Entity: entity, Type: typ, Data: b}, nil
}

// appendSync journals one record with the group-commit durability class:
// it returns only once the record is fsynced. Do not call it while holding
// server/store locks — use appendWait there.
func (j *journal) appendSync(entity, typ string, payload interface{}) error {
	commit, err := j.appendWait(entity, typ, payload)
	if err != nil {
		return err
	}
	return commit()
}

// appendWait buffers one record immediately (safe — and intended — to call
// while holding the lock that guards the matching state mutation, so log
// order and snapshot consistency stay atomic) and returns the group-commit
// wait, which the caller runs after releasing its locks. A commit error
// means the record may not be durable and the store is poisoned.
func (j *journal) appendWait(entity, typ string, payload interface{}) (commit func() error, err error) {
	rec, err := marshalRecord(entity, typ, payload)
	if err != nil {
		return nil, err
	}
	wait, err := j.store.AppendWait(rec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPersist, err)
	}
	return func() error {
		if werr := wait(); werr != nil {
			return fmt.Errorf("%w: %v", ErrPersist, werr)
		}
		return nil
	}, nil
}

// append journals one record asynchronously (durable within one fsync
// window).
func (j *journal) append(entity, typ string, payload interface{}) error {
	rec, err := marshalRecord(entity, typ, payload)
	if err != nil {
		return err
	}
	if err := j.store.Append(rec); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	return nil
}

// appendRaw re-journals one already-marshaled record verbatim — the
// follower's write path: what the leader persisted is what the follower
// persists, byte for byte, so a shared WAL prefix is identical on both
// sides. Async durability class; the follower's replication cursor is only
// persisted after an explicit Sync, which bounds redelivery, and every apply
// is idempotent, which makes redelivery harmless.
func (j *journal) appendRaw(rec durable.Record) error {
	if err := j.store.Append(rec); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	return nil
}

// maybeCompact rotates + snapshots in the background once the active
// segment outgrows the threshold. state is the server's snapshotState.
func (j *journal) maybeCompact(state func() ([]byte, error)) {
	if j.segmentBytes <= 0 || j.store.ActiveSegmentBytes() < j.segmentBytes {
		return
	}
	j.compactMu.Lock()
	if j.compacting || j.closing {
		j.compactMu.Unlock()
		return
	}
	j.compacting = true
	// Add under compactMu, before the spawn: close() observes either
	// closing-before-Add (no new goroutine) or the Add (Wait joins it) —
	// never a goroutine it failed to count.
	j.compactWG.Add(1)
	j.compactMu.Unlock()
	go func() {
		defer j.compactWG.Done()
		defer func() {
			j.compactMu.Lock()
			j.compacting = false
			j.compactMu.Unlock()
		}()
		if err := j.store.Compact(state); err != nil {
			j.logf("serve: WAL compaction failed (will retry on further growth): %v", err)
		}
	}()
}

// close joins any in-flight compaction before closing the store, so a
// background Compact never races the store teardown (the PR-6-era leak: a
// detached compaction goroutine could touch a closed store).
func (j *journal) close() {
	j.compactMu.Lock()
	j.closing = true
	j.compactMu.Unlock()
	j.compactWG.Wait()
	if err := j.store.Close(); err != nil {
		j.logf("serve: closing WAL: %v", err)
	}
}

// --- Server-side journaling hooks (all nil-safe) ---

// noopCommit is the commit for unjournaled operations.
func noopCommit() error { return nil }

// journalRegisterStart buffers the registration record; call it with s.mu
// held, right after the map insert, and run the returned commit (the fsync
// wait) after unlocking. Commit failure means the caller must roll the
// registration back.
func (s *Server) journalRegisterStart(ds *Dataset) (commit func() error, err error) {
	if s.journal == nil || !ds.persistable {
		return noopCommit, nil
	}
	wait, err := s.journal.appendWait(datasetEntity(ds.name), "register", ds.persisted())
	if err != nil {
		return nil, err
	}
	return func() error {
		if cerr := wait(); cerr != nil {
			return cerr
		}
		s.journal.maybeCompact(s.snapshotState)
		return nil
	}, nil
}

// journalSessionCreateStart buffers the create record; call it with the
// session-store lock held, right after the insert, and run the returned
// commit after unlocking. Commit failure means the caller must roll the
// creation back.
func (s *Server) journalSessionCreateStart(sess *Session) (commit func() error, err error) {
	if s.journal == nil || !sess.ds.persistable {
		return noopCommit, nil
	}
	return s.journal.appendWait(sessionEntity(sess.id), "create", persistedSession{
		ID:        sess.id,
		Dataset:   sess.ds.name,
		K:         sess.k,
		Truth:     sess.req.Truth,
		ValPoints: sess.req.ValPoints,
		MaxSteps:  sess.req.MaxSteps,
		Created:   sess.created,
	})
}

func (s *Server) journalSessionStep(sess *Session, step CleanStep) error {
	if s.journal == nil || !sess.ds.persistable {
		return nil
	}
	if err := s.journal.append(sessionEntity(sess.id), "step", stepRecord{ID: sess.id, Step: step}); err != nil {
		return err
	}
	s.journal.maybeCompact(s.snapshotState)
	return nil
}

// journalSessionDone is best-effort: losing a done record only means the
// restarted server re-finishes the run (identically) on its next drive.
func (s *Server) journalSessionDone(sess *Session) {
	if s.journal == nil || !sess.ds.persistable {
		return
	}
	sess.mu.Lock()
	rec := doneRecord{
		ID:              sess.id,
		Steps:           sess.snap.steps,
		CertainFraction: sess.snap.certainFraction,
		Worlds:          sess.snap.worlds,
		Examined:        sess.snap.examined,
	}
	sess.mu.Unlock()
	if err := s.journal.appendSync(sessionEntity(sess.id), "done", rec); err != nil {
		s.logf("serve: journaling session %s completion: %v", sess.id, err)
	}
}

// journalSessionFail is best-effort (it frequently runs because journaling
// itself failed). Caller may hold sess.mu.
func (s *Server) journalSessionFail(id, msg string) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(sessionEntity(id), "fail", failRecord{ID: id, Error: msg}); err != nil {
		s.logf("serve: journaling session %s failure: %v", id, err)
	}
}

// journalSessionExpire is best-effort: a lost expire record resurrects the
// session after restart and the TTL simply evicts it again.
func (s *Server) journalSessionExpire(sess *Session, at time.Time) {
	if s.journal == nil || !sess.ds.persistable {
		return
	}
	if err := s.journal.append(sessionEntity(sess.id), "expire", expireRecord{ID: sess.id, At: at}); err != nil {
		s.logf("serve: journaling session %s expiry: %v", sess.id, err)
	}
}

// journalSessionReleaseStart buffers the release record that keeps a
// DELETEd ID a 404 (not a resurrected session) across restarts. Call it
// before removing the session so a journal that cannot take the record
// fails the DELETE instead of silently un-deleting it at the next restart;
// run the returned commit after dropping the locks.
func (s *Server) journalSessionReleaseStart(sess *Session) (commit func() error, err error) {
	if s.journal == nil || !sess.ds.persistable {
		return noopCommit, nil
	}
	return s.journal.appendWait(sessionEntity(sess.id), "release", releaseRecord{ID: sess.id})
}

// snapshotState serializes the full server state for WAL compaction. It
// must include every record appended before the enclosing Compact sealed
// the old segment — guaranteed because each journaling site updates the
// in-memory structures before (or under the same lock as) its append.
//
//cpvet:deterministic
func (s *Server) snapshotState() ([]byte, error) {
	var ps persistedState
	s.mu.RLock()
	for _, name := range s.namesLocked() {
		ds := s.datasets[name]
		if ds.persistable {
			ps.Datasets = append(ps.Datasets, ds.persisted())
		}
	}
	s.mu.RUnlock()

	st := s.sessions
	st.mu.Lock()
	if st.stopped {
		// Server.Close empties the live map (under this lock, after setting
		// stopped); a snapshot taken now would capture that emptiness and a
		// racing compaction would then delete the segments holding the real
		// session records. Abort — Compact keeps the old segments on error.
		st.mu.Unlock()
		return nil, fmt.Errorf("serve: shutting down; snapshot aborted")
	}
	for _, id := range sortedKeys(st.live) {
		sess := st.live[id]
		if !sess.ds.persistable {
			continue
		}
		sess.mu.Lock()
		p := persistedSession{
			ID:      sess.id,
			Dataset: sess.ds.name,
			K:       sess.k,
			Created: sess.created,
			// History is append-only and its elements immutable, so the slice
			// header captured here is safe to marshal after the locks drop.
			History:         sess.history,
			Done:            sess.snap.done,
			CertainFraction: sess.snap.certainFraction,
			Worlds:          sess.snap.worlds,
			Examined:        sess.snap.examined,
		}
		if sess.failed != nil {
			p.Failed = sess.failed.Error()
		}
		if !sess.snap.done && sess.failed == nil {
			// Only a resumable session needs its request re-materialized.
			p.Truth = sess.req.Truth
			p.ValPoints = sess.req.ValPoints
			p.MaxSteps = sess.req.MaxSteps
		}
		sess.mu.Unlock()
		ps.Sessions = append(ps.Sessions, p)
	}
	if len(st.tombstones) > 0 {
		ps.Tombstones = make(map[string]time.Time, len(st.tombstones))
		//cpvet:allow maporder -- copied map-to-map; iteration order cannot reach the JSON output
		for id, at := range st.tombstones {
			ps.Tombstones[id] = at
		}
	}
	st.mu.Unlock()
	return json.Marshal(&ps)
}

// --- Recovery ---

// recoverFrom rebuilds the registry and session store from a freshly opened
// store. Individual unusable entries are dropped with a warning (recovery
// must not be a startup crash); only a snapshot the server itself cannot
// decode fails the open.
//
//cpvet:deterministic
//cpvet:allow lockheld -- recovery runs single-goroutine in Open, before the server is reachable; no lock can be contended
func (s *Server) recoverFrom(st *durable.Store) error {
	if b := st.Snapshot(); b != nil {
		var ps persistedState
		if err := json.Unmarshal(b, &ps); err != nil {
			return fmt.Errorf("serve: undecodable snapshot in %s: %w", st.Dir(), err)
		}
		for _, pd := range ps.Datasets {
			s.recoverDataset(pd)
		}
		for _, psess := range ps.Sessions {
			s.recoverSession(psess)
		}
		//cpvet:allow maporder -- copied map-to-map; iteration order cannot reach recovered state
		for id, at := range ps.Tombstones {
			s.sessions.tombstones[id] = at
		}
	}
	for _, rec := range st.Records() {
		s.applyRecord(rec)
	}
	return nil
}

// recoverDataset rebuilds one registration. Application is idempotent: an
// already-present name with the same fingerprint is a no-op (snapshot/WAL
// overlap after an interrupted compaction), a different fingerprint is
// dropped with a warning.
//
//cpvet:deterministic
//cpvet:allow lockheld -- recovery runs single-goroutine in Open, before the server is reachable; no lock can be contended
func (s *Server) recoverDataset(pd persistedDataset) {
	if old, ok := s.datasets[pd.Name]; ok {
		if old.fingerprint != pd.Fingerprint {
			s.logf("serve: recovery: dropping conflicting re-registration of dataset %q", pd.Name)
		}
		return
	}
	ds, err := buildRecoveredDataset(pd)
	if err != nil {
		s.logf("serve: recovery: dropping dataset %q: %v", pd.Name, err)
		return
	}
	s.datasets[pd.Name] = ds
}

// buildRecoveredDataset decodes and fingerprint-verifies one journaled
// registration into a servable Dataset. Pure — no Server state is read or
// written — so both startup recovery and the follower apply path share it.
//
//cpvet:deterministic
func buildRecoveredDataset(pd persistedDataset) (*Dataset, error) {
	examples := make([]dataset.Example, len(pd.Examples))
	for i, ex := range pd.Examples {
		examples[i] = dataset.Example{Candidates: ex.Candidates, Label: ex.Label}
	}
	d, err := dataset.New(examples, pd.NumLabels)
	if err != nil {
		return nil, err
	}
	kernel, err := pd.Kernel.Kernel()
	if err != nil {
		return nil, err
	}
	if got := Fingerprint(d, kernel, pd.K); got != pd.Fingerprint {
		return nil, fmt.Errorf("fingerprint mismatch (journal %.12s, rebuilt %.12s)", pd.Fingerprint, got)
	}
	return &Dataset{
		name:        pd.Name,
		fingerprint: pd.Fingerprint,
		data:        d,
		kernel:      kernel,
		k:           pd.K,
		pools:       make(map[int]*enginePool),
		persistable: true,
		ready:       closedReady, // the journal is where it came from
	}, nil
}

// closedReady marks registrations that were durable before this process
// started (recovered datasets): idempotent re-registers need not wait.
var closedReady = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// recoverSession re-materializes one session in the suspended state: request
// + history only; engines and selection memos are rebuilt by the first
// driver (ensureBuilt), which re-executes the history through the selector
// so the continuation is bit-identical to an uninterrupted run.
//
//cpvet:deterministic
//cpvet:allow lockheld -- recovery runs single-goroutine in Open, before the server is reachable; no lock can be contended
func (s *Server) recoverSession(ps persistedSession) {
	ds, ok := s.datasets[ps.Dataset]
	if !ok {
		s.logf("serve: recovery: dropping session %s: dataset %q not recovered", ps.ID, ps.Dataset)
		return
	}
	if _, exists := s.sessions.live[ps.ID]; exists {
		return // snapshot/WAL overlap
	}
	if _, gone := s.sessions.tombstones[ps.ID]; gone {
		return
	}
	sess, err := buildRecoveredSession(s, ds, ps)
	if err != nil {
		s.logf("serve: recovery: dropping session %s: %v", ps.ID, err)
		return
	}
	s.sessions.live[ps.ID] = sess
}

// buildRecoveredSession re-materializes one persisted session (see
// recoverSession for the suspended-state contract). It only constructs the
// Session — no store maps are touched — so both startup recovery and the
// follower apply path share it; the caller inserts under its own locking.
//
//cpvet:deterministic
func buildRecoveredSession(s *Server, ds *Dataset, ps persistedSession) (*Session, error) {
	sess := &Session{
		id:       ps.ID,
		store:    s.sessions,
		server:   s,
		ds:       ds,
		k:        ps.K,
		created:  ps.Created,
		lastUsed: time.Now(), //cpvet:allow nowalltime -- idle clock restarts at recovery; never persisted or replayed
		history:  ps.History,
	}
	sess.snap.steps = len(ps.History)
	var examined int64
	for i := range ps.History {
		examined += ps.History[i].ExaminedHypotheses
	}
	if n := len(ps.History); n > 0 {
		sess.snap.certainFraction = ps.History[n-1].CertainFraction
		sess.snap.worlds = ps.History[n-1].WorldsRemaining
	}
	sess.snap.examined = examined
	switch {
	case ps.Failed != "":
		sess.failed = fmt.Errorf("%w: %s", ErrSessionFailed, ps.Failed)
		sess.snap.started = true
	case ps.Done:
		sess.snap.done = true
		sess.snap.started = true
		sess.snap.certainFraction = ps.CertainFraction
		sess.snap.worlds = ps.Worlds
		if ps.Examined > 0 {
			sess.snap.examined = ps.Examined
		}
	default:
		sess.suspended = true
		sess.req = CleanRequest{Truth: ps.Truth, ValPoints: ps.ValPoints, K: ps.K, MaxSteps: ps.MaxSteps}
		if _, err := validateCleanRequest(ds, sess.req); err != nil {
			return nil, err
		}
	}
	return sess, nil
}

// applyRecord folds one WAL record into the recovering server. Tolerant and
// idempotent: unknown sessions, duplicate events, and overlap with the
// snapshot are warnings or no-ops, never startup failures.
//
//cpvet:deterministic
//cpvet:allow lockheld -- recovery runs single-goroutine in Open, before the server is reachable; no lock can be contended
func (s *Server) applyRecord(rec durable.Record) {
	fail := func(err error) {
		s.logf("serve: recovery: skipping %s record for %s: %v", rec.Type, rec.Entity, err)
	}
	switch rec.Type {
	case "register":
		var pd persistedDataset
		if err := json.Unmarshal(rec.Data, &pd); err != nil {
			fail(err)
			return
		}
		s.recoverDataset(pd)
	case "create":
		var ps persistedSession
		if err := json.Unmarshal(rec.Data, &ps); err != nil {
			fail(err)
			return
		}
		s.recoverSession(ps)
	case "step":
		var sr stepRecord
		if err := json.Unmarshal(rec.Data, &sr); err != nil {
			fail(err)
			return
		}
		sess, ok := s.sessions.live[sr.ID]
		if !ok {
			return // released/expired later in the log, or dropped above
		}
		switch {
		case sr.Step.Step <= len(sess.history):
			// Snapshot/WAL overlap; already have it.
		case sr.Step.Step == len(sess.history)+1:
			sess.history = append(sess.history, sr.Step)
			sess.snap.steps = len(sess.history)
			sess.snap.certainFraction = sr.Step.CertainFraction
			sess.snap.worlds = sr.Step.WorldsRemaining
			sess.snap.examined += sr.Step.ExaminedHypotheses
		default:
			fail(fmt.Errorf("step %d after %d journaled steps", sr.Step.Step, len(sess.history)))
		}
	case "done":
		var dr doneRecord
		if err := json.Unmarshal(rec.Data, &dr); err != nil {
			fail(err)
			return
		}
		if sess, ok := s.sessions.live[dr.ID]; ok {
			sess.snap.done = true
			sess.snap.started = true
			sess.suspended = false
			sess.snap.certainFraction = dr.CertainFraction
			sess.snap.worlds = dr.Worlds
			if dr.Examined > 0 {
				sess.snap.examined = dr.Examined
			}
			sess.req = CleanRequest{}
		}
	case "fail":
		var fr failRecord
		if err := json.Unmarshal(rec.Data, &fr); err != nil {
			fail(err)
			return
		}
		if sess, ok := s.sessions.live[fr.ID]; ok {
			sess.failed = fmt.Errorf("%w: %s", ErrSessionFailed, fr.Error)
			sess.snap.started = true
			sess.suspended = false
			sess.req = CleanRequest{}
		}
	case "expire":
		var er expireRecord
		if err := json.Unmarshal(rec.Data, &er); err != nil {
			fail(err)
			return
		}
		delete(s.sessions.live, er.ID)
		at := er.At
		if at.IsZero() {
			at = time.Now() //cpvet:allow nowalltime -- legacy expire record without a timestamp; TTL-only, never replayed downstream
		}
		s.sessions.tombstones[er.ID] = at
	case "release":
		var rr releaseRecord
		if err := json.Unmarshal(rec.Data, &rr); err != nil {
			fail(err)
			return
		}
		delete(s.sessions.live, rr.ID)
		delete(s.sessions.tombstones, rr.ID)
	default:
		s.logf("serve: recovery: ignoring unknown record type %q for %s", rec.Type, rec.Entity)
	}
}
