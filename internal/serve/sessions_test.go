package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/knn"
)

// cleanBody builds the POST /clean payload shared by the session tests.
func cleanBody(t *testing.T, truth []int, valPts [][]float64) map[string]interface{} {
	t.Helper()
	return map[string]interface{}{"truth": truth, "val_points": valPts}
}

func createSession(t *testing.T, base string, body map[string]interface{}) SessionStatus {
	t.Helper()
	resp := postJSON(t, base+"/v1/datasets/d/clean", body)
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("create session: status %d: %s", resp.StatusCode, b)
	}
	var st SessionStatus
	decodeBody(t, resp, &st)
	return st
}

// TestSessionResumeLockstep is the end-to-end resume guarantee: a run whose
// stream is killed mid-way and finished over /next must execute exactly the
// same step sequence — same rows, same examined_hypotheses — as an
// uninterrupted run, and a full-history replay must reconstruct it.
func TestSessionResumeLockstep(t *testing.T) {
	d := randDataset(t, 36, 3, 2, 2, 0.7, 211)
	s := NewServer(Config{})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	valPts := randPoints(8, 2, 213)
	truth := make([]int, d.N())

	// Reference: the same workload run uninterrupted.
	ref, err := s.NewCleanSession("d", CleanRequest{Truth: truth, ValPoints: valPts})
	if err != nil {
		t.Fatal(err)
	}
	var refSteps []CleanStep
	for {
		step, ok, err := ref.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		refSteps = append(refSteps, step)
	}
	if len(refSteps) < 4 {
		t.Fatalf("reference run has %d steps; too short to interrupt meaningfully", len(refSteps))
	}

	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	created := createSession(t, srv.URL, cleanBody(t, truth, valPts))

	// Stream, then kill the connection after reading two step lines.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/clean/"+created.ID+"/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var seen []CleanStep
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() && len(seen) < 2 {
		var step CleanStep
		if err := json.Unmarshal(scanner.Bytes(), &step); err != nil {
			t.Fatalf("bad step line %q: %v", scanner.Text(), err)
		}
		seen = append(seen, step)
	}
	cancel()
	resp.Body.Close()

	// Wait for the server side to notice the disconnect and detach the
	// driver (409 while it is still attached is the documented contract).
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp := postJSON(t, srv.URL+"/v1/clean/"+created.ID+"/next?steps=2", nil)
		if resp.StatusCode == http.StatusConflict {
			resp.Body.Close()
			if time.Now().After(deadline) {
				t.Fatal("driver never detached after client disconnect")
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("first /next after disconnect: status %d: %s", resp.StatusCode, b)
		}
		resp.Body.Close()
		break
	}

	// Finish the run over /next in small pulls.
	for {
		resp := postJSON(t, srv.URL+"/v1/clean/"+created.ID+"/next?steps=3", nil)
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("/next: status %d: %s", resp.StatusCode, b)
		}
		var next struct {
			Steps []CleanStep `json:"steps"`
			Done  bool        `json:"done"`
		}
		decodeBody(t, resp, &next)
		if next.Done {
			break
		}
		if len(next.Steps) == 0 {
			t.Fatal("/next returned no steps and done=false")
		}
	}

	// Replay the full history and compare against the uninterrupted run.
	resp, err = http.Get(srv.URL + "/v1/clean/" + created.ID + "/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var replayed []CleanStep
	var summary map[string]interface{}
	scanner = bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		if strings.Contains(scanner.Text(), `"done"`) {
			if err := json.Unmarshal(scanner.Bytes(), &summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var step CleanStep
		if err := json.Unmarshal(scanner.Bytes(), &step); err != nil {
			t.Fatalf("bad replay line %q: %v", scanner.Text(), err)
		}
		replayed = append(replayed, step)
	}
	if len(replayed) != len(refSteps) {
		t.Fatalf("interrupted run executed %d steps, uninterrupted %d", len(replayed), len(refSteps))
	}
	var refExamined, gotExamined int64
	for i := range refSteps {
		if replayed[i].Row != refSteps[i].Row || replayed[i].Candidate != refSteps[i].Candidate {
			t.Fatalf("step %d diverged: interrupted cleaned (%d,%d), uninterrupted (%d,%d)",
				i+1, replayed[i].Row, replayed[i].Candidate, refSteps[i].Row, refSteps[i].Candidate)
		}
		if replayed[i].ExaminedHypotheses != refSteps[i].ExaminedHypotheses {
			t.Fatalf("step %d: interrupted examined %d hypotheses, uninterrupted %d",
				i+1, replayed[i].ExaminedHypotheses, refSteps[i].ExaminedHypotheses)
		}
		refExamined += refSteps[i].ExaminedHypotheses
		gotExamined += replayed[i].ExaminedHypotheses
	}
	if summary == nil {
		t.Fatal("full replay of a finished session did not end with a summary line")
	}
	if got := int64(summary["examined_hypotheses"].(float64)); got != refExamined {
		t.Fatalf("summary examined_hypotheses %d, uninterrupted total %d", got, refExamined)
	}
	// The steps watched before the kill are a prefix of the history.
	for i := range seen {
		if seen[i].Row != replayed[i].Row {
			t.Fatalf("pre-disconnect step %d saw row %d, history has %d", i+1, seen[i].Row, replayed[i].Row)
		}
	}
}

// TestSessionCapacityAndRelease pins the 429-at-capacity contract and that
// DELETE frees a slot (and makes the ID a 404, not a 410).
func TestSessionCapacityAndRelease(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.4, 221)
	s := NewServer(Config{MaxCleanSessions: 2})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	body := cleanBody(t, make([]int, d.N()), randPoints(4, 2, 223))

	first := createSession(t, srv.URL, body)
	createSession(t, srv.URL, body)
	resp := postJSON(t, srv.URL+"/v1/datasets/d/clean", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create beyond cap: status %d, want 429", resp.StatusCode)
	}
	if got := s.CleanSessionCount(); got != 2 {
		t.Fatalf("live sessions = %d, want 2", got)
	}

	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/clean/"+first.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", resp.StatusCode)
	}
	createSession(t, srv.URL, body) // slot freed

	resp, err = http.Get(srv.URL + "/v1/clean/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session: status %d, want 404", resp.StatusCode)
	}
}

// TestSessionExpiry pins the idle-TTL contract: an idle session answers 410
// (distinguishable from an unknown ID's 404), its slot is reclaimed, and the
// background reaper evicts abandoned sessions nobody ever looks up again.
func TestSessionExpiry(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.4, 227)
	s := NewServer(Config{MaxCleanSessions: 1, SessionTTL: 30 * time.Millisecond})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	body := cleanBody(t, make([]int, d.N()), randPoints(4, 2, 229))

	st := createSession(t, srv.URL, body)
	time.Sleep(60 * time.Millisecond)
	resp, err := http.Get(srv.URL + "/v1/clean/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("expired session: status %d, want 410", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/clean/cs_never_existed")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", resp.StatusCode)
	}

	// The expiry freed the (capacity-1) slot.
	st = createSession(t, srv.URL, body)

	// The reaper evicts without any lookup touching the ID.
	deadline := time.Now().Add(30 * time.Second)
	for s.CleanSessionCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reaper never evicted the abandoned session (%d live)", s.CleanSessionCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := s.FindCleanSession(st.ID); err == nil {
		t.Fatal("reaped session still resolvable")
	}
}

// TestCreateSweepsExpiredAtCapacity checks a full store sweeps TTL-expired
// sessions before refusing with 429 — a reclaimable slot must not cost a
// client a spurious rejection just because neither a lookup nor a reaper
// tick has evicted its holder yet.
func TestCreateSweepsExpiredAtCapacity(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.4, 283)
	s := NewServer(Config{MaxCleanSessions: 1, SessionTTL: time.Hour})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	req := CleanRequest{Truth: make([]int, d.N()), ValPoints: randPoints(3, 2, 293)}
	old, err := s.StartCleanSession("d", req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartCleanSession("d", req); !errors.Is(err, ErrCapacity) {
		t.Fatalf("create at capacity = %v, want ErrCapacity", err)
	}
	old.mu.Lock()
	old.lastUsed = time.Now().Add(-2 * time.Hour) // idle far past the TTL
	old.mu.Unlock()
	fresh, err := s.StartCleanSession("d", req)
	if err != nil {
		t.Fatalf("create did not reclaim the expired slot: %v", err)
	}
	if _, err := s.FindCleanSession(old.ID()); !errors.Is(err, ErrGone) {
		t.Fatalf("swept session lookup = %v, want ErrGone", err)
	}
	if _, err := s.FindCleanSession(fresh.ID()); err != nil {
		t.Fatal(err)
	}
}

// TestSessionSingleDriver pins the one-driver-at-a-time contract
// deterministically: while one driver is blocked mid-drive, /next and
// DELETE answer 409, and both succeed after it detaches.
func TestSessionSingleDriver(t *testing.T) {
	d := randDataset(t, 24, 3, 2, 2, 0.6, 233)
	s := NewServer(Config{})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	sess, err := s.StartCleanSession("d", CleanRequest{
		Truth:     make([]int, d.N()),
		ValPoints: randPoints(4, 2, 239),
	})
	if err != nil {
		t.Fatal(err)
	}

	inDrive := make(chan struct{})
	releaseDrive := make(chan struct{})
	driveDone := make(chan error, 1)
	go func() {
		_, err := sess.DriveFrom(0, func(CleanStep) bool {
			close(inDrive)
			<-releaseDrive
			return false
		})
		driveDone <- err
	}()
	<-inDrive

	if _, _, err := sess.Next(1); !errors.Is(err, ErrBusy) {
		t.Fatalf("concurrent Next error = %v, want ErrBusy", err)
	}
	if err := s.ReleaseCleanSession(sess.ID()); !errors.Is(err, ErrBusy) {
		t.Fatalf("DELETE while driving error = %v, want ErrBusy", err)
	}
	close(releaseDrive)
	if err := <-driveDone; err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Next(1); err != nil {
		t.Fatalf("Next after driver detached: %v", err)
	}
	if err := s.ReleaseCleanSession(sess.ID()); err != nil {
		t.Fatalf("DELETE after driver detached: %v", err)
	}
}

// TestStartCleanSessionCopiesRequest pins the defensive deep copy: the
// engines are built lazily, so a caller mutating its slices after
// StartCleanSession returns must not corrupt the validated request.
func TestStartCleanSessionCopiesRequest(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.5, 277)
	s := NewServer(Config{})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	truth := make([]int, d.N())
	pts := randPoints(3, 2, 281)
	sess, err := s.StartCleanSession("d", CleanRequest{Truth: truth, ValPoints: pts})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), pts[0]...)
	pts[0][0] = 1e9 // would bypass validation if the session aliased it
	truth[0] = 1e6
	sess.mu.Lock()
	aliased := &sess.req.ValPoints[0][0] == &pts[0][0] || sess.req.ValPoints[0][0] != want[0]
	sess.mu.Unlock()
	if aliased {
		t.Fatal("session aliases the caller's ValPoints across the lazy-build window")
	}
	if _, _, err := sess.Next(1); err != nil {
		t.Fatalf("first drive after caller mutated its slices: %v", err)
	}
}

// TestSessionStoreConcurrent hammers create/step/status/expire/delete from
// many goroutines under a tiny TTL — meant for -race. Correctness here is
// "no race, no panic, counts stay within the cap".
func TestSessionStoreConcurrent(t *testing.T) {
	d := randDataset(t, 16, 2, 2, 2, 0.5, 241)
	s := NewServer(Config{MaxCleanSessions: 8, SessionTTL: 20 * time.Millisecond, Parallelism: 2})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	valPts := randPoints(3, 2, 251)
	truth := make([]int, d.N())
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				sess, err := s.StartCleanSession("d", CleanRequest{Truth: truth, ValPoints: valPts, MaxSteps: 2})
				if err != nil {
					if errors.Is(err, ErrCapacity) {
						continue
					}
					t.Errorf("goroutine %d: create: %v", g, err)
					return
				}
				if _, _, err := sess.Next(2); err != nil && !errors.Is(err, ErrBusy) && !errors.Is(err, ErrGone) {
					t.Errorf("goroutine %d: next: %v", g, err)
					return
				}
				sess.Status()
				if iter%2 == 0 {
					err := s.ReleaseCleanSession(sess.ID())
					if err != nil && !errors.Is(err, ErrGone) && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrBusy) {
						t.Errorf("goroutine %d: release: %v", g, err)
						return
					}
				}
				if g == 0 {
					time.Sleep(25 * time.Millisecond) // let TTL expiry interleave
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.CleanSessionCount(); got > 8 {
		t.Fatalf("live sessions %d exceeded cap 8", got)
	}
}

// TestRequestBodyLimits pins the 413 contract on every capped POST route.
func TestRequestBodyLimits(t *testing.T) {
	d := randDataset(t, 10, 2, 2, 2, 0.4, 257)
	s := NewServer(Config{MaxRegisterBytes: 256, MaxQueryBytes: 128})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	big := make([][]float64, 64)
	for i := range big {
		big[i] = []float64{1.23456789, 2.3456789}
	}
	resp := postJSON(t, srv.URL+"/v1/datasets/d/query", map[string]interface{}{"points": big})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized query: status %d, want 413", resp.StatusCode)
	}
	resp = postJSON(t, srv.URL+"/v1/datasets/d/clean", map[string]interface{}{
		"truth": make([]int, d.N()), "val_points": big,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized clean: status %d, want 413", resp.StatusCode)
	}
	reg := map[string]interface{}{"name": "big", "num_labels": 2, "examples": exampleJSONs(d), "k": 3}
	resp = postJSON(t, srv.URL+"/v1/datasets", reg)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized register: status %d, want 413", resp.StatusCode)
	}
	// Under the cap still works.
	resp = postJSON(t, srv.URL+"/v1/datasets/d/query", map[string]interface{}{
		"points": [][]float64{{0, 0}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small query under cap: status %d", resp.StatusCode)
	}
}

// TestStrictJSONDecoding pins the 400s for typo'd field names and trailing
// body data — the silent-ignore bug the decoders used to have.
func TestStrictJSONDecoding(t *testing.T) {
	d := randDataset(t, 10, 2, 2, 2, 0.4, 263)
	s := NewServer(Config{})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/datasets/d/clean", map[string]interface{}{
		"truth": make([]int, d.N()), "vak_points": [][]float64{{0, 0}},
	})
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo'd field: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(b), "vak_points") {
		t.Fatalf("typo'd-field error does not name the field: %s", b)
	}

	resp, err := http.Post(srv.URL+"/v1/datasets/d/query", "application/json",
		bytes.NewReader([]byte(`{"points":[[0,0]]} {"points":[[1,1]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing data: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(b), "trailing") {
		t.Fatalf("trailing-data error unclear: %s", b)
	}
}

// TestStreamOfFinishedSessionEmitsSummaryOnly checks streaming a done
// session with from at the end yields exactly the flushed summary line.
func TestStreamOfFinishedSessionEmitsSummaryOnly(t *testing.T) {
	d := randDataset(t, 20, 2, 2, 2, 0.5, 269)
	s := NewServer(Config{})
	defer s.Close()
	if _, err := s.Register("d", d, knn.NegEuclidean{}, 3); err != nil {
		t.Fatal(err)
	}
	sess, err := s.StartCleanSession("d", CleanRequest{
		Truth:     make([]int, d.N()),
		ValPoints: randPoints(4, 2, 271),
		MaxSteps:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := sess.Next(5); err != nil || !done {
		t.Fatalf("Next = done %v, err %v; want finished run", done, err)
	}
	// A finished run must not pin its engines until DELETE/TTL: replay and
	// the summary need only the history + snapshot.
	sess.mu.Lock()
	leaked := sess.clean != nil
	sess.mu.Unlock()
	if leaked {
		t.Fatal("finished session still holds its CleanSession (engines + memos)")
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("%s/v1/clean/%s/stream?from=%d", srv.URL, sess.ID(), sess.Status().Steps))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], `"done":true`) {
		t.Fatalf("finished-session stream = %q, want a single summary line", b)
	}
	// Out-of-range from is a clear 400.
	resp, err = http.Get(srv.URL + "/v1/clean/" + sess.ID() + "/stream?from=999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("from beyond history: status %d, want 400", resp.StatusCode)
	}
}
