package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateKernel counts Similarity calls and, once armed, blocks every call at a
// gate — simulating expensive per-point engine builds so a test can freeze a
// batch mid-flight, disconnect the client, and measure how much work the
// server still performs.
type gateKernel struct {
	calls   *atomic.Int64
	started chan struct{}
	once    *sync.Once
	gate    chan struct{}
}

func newGateKernel() gateKernel {
	return gateKernel{
		calls:   &atomic.Int64{},
		started: make(chan struct{}),
		once:    &sync.Once{},
		gate:    make(chan struct{}),
	}
}

func (g gateKernel) Similarity(a, b []float64) float64 {
	g.calls.Add(1)
	g.once.Do(func() { close(g.started) })
	<-g.gate
	d := 0.0
	for i := range a {
		d += (a[i] - b[i]) * (a[i] - b[i])
	}
	return -d
}

func (g gateKernel) Name() string { return "test-gate" }

// TestBatchQueryClientDisconnectFreesWorkers is the orphaned-batch bugfix
// contract: canceling the request context mid-batch stops the fan-out — the
// feeder hands out no further points and workers skip what was already
// queued — so a disconnected client's batch does not burn workers computing
// answers nobody will read.
func TestBatchQueryClientDisconnectFreesWorkers(t *testing.T) {
	d := randDataset(t, 30, 3, 2, 2, 0.5, 910)
	kernel := newGateKernel()
	s := NewServer(Config{Parallelism: 2, EngineCacheSize: -1})
	defer s.Close()
	if _, err := s.Register("d", d, kernel, 3); err != nil {
		t.Fatal(err)
	}
	perEngine := int64(d.TotalCandidates())
	const points = 40
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := s.BatchQuery(ctx, "d", BatchRequest{Points: randPoints(points, 2, 911)})
		errc <- err
	}()
	<-kernel.started // both workers are now inside (or entering) engine builds
	cancel()         // client disconnects
	close(kernel.gate)
	err := <-errc
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned batch returned %v, want a context.Canceled wrap", err)
	}
	if got := errStatus(err); got != statusClientClosedRequest {
		t.Fatalf("errStatus(%v) = %d, want %d", err, got, statusClientClosedRequest)
	}
	// Only the builds already in flight at cancel time may complete: with 2
	// workers that is a handful of engines, nowhere near all 40 points.
	if calls := kernel.calls.Load(); calls >= perEngine*(points/2) {
		t.Fatalf("canceled batch still performed %d kernel calls (≥ %d): workers kept computing after disconnect",
			calls, perEngine*(points/2))
	}
}

// TestBatchQueryHTTPDisconnect drives the same contract end to end over
// HTTP: a client whose connection dies mid-batch (its writer hung, then the
// request context canceled) must stop the handler's fan-out.
func TestBatchQueryHTTPDisconnect(t *testing.T) {
	d := randDataset(t, 30, 3, 2, 2, 0.5, 920)
	kernel := newGateKernel()
	s := NewServer(Config{Parallelism: 2, EngineCacheSize: -1})
	defer s.Close()
	if _, err := s.Register("d", d, kernel, 3); err != nil {
		t.Fatal(err)
	}
	// Wrap the handler so the test can observe the server-side request
	// context: the contract under test is "server ctx canceled → workers
	// freed", so the gate opens only after the server has noticed the
	// disconnect (the stdlib's detection latency is not what's being tested).
	var srvCtx atomic.Value
	h := Handler(s)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		srvCtx.Store(r.Context())
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()
	const points = 40
	body, err := encodeQueryBody(randPoints(points, 2, 921))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/datasets/d/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-kernel.started
	cancel() // the client goes away while the server is mid-build
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}
	// Wait until the server has detected the dead connection and canceled
	// the request context, then let the frozen builds proceed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ctx, ok := srvCtx.Load().(context.Context); ok && ctx.Err() != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never canceled the request context after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(kernel.gate)
	// The handler must wind down without finishing the batch: wait for the
	// kernel-call counter to go quiet, then check how far it got.
	perEngine := int64(d.TotalCandidates())
	deadline = time.Now().Add(5 * time.Second)
	last := kernel.calls.Load()
	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		cur := kernel.calls.Load()
		if cur == last {
			break
		}
		last = cur
	}
	if calls := kernel.calls.Load(); calls >= perEngine*(points/2) {
		t.Fatalf("disconnected HTTP batch still performed %d kernel calls (≥ %d)", calls, perEngine*(points/2))
	}
}

// encodeQueryBody builds the POST /v1/datasets/{name}/query JSON body.
func encodeQueryBody(points [][]float64) ([]byte, error) {
	return json.Marshal(map[string]interface{}{"points": points})
}
