package segtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refConvolve computes the truncated product of leaf polynomials directly.
func refConvolve(leaves [][2]float64, k int) []float64 {
	acc := make([]float64, k+1)
	acc[0] = 1
	next := make([]float64, k+1)
	for _, lf := range leaves {
		for c := 0; c <= k; c++ {
			v := lf[0] * acc[c]
			if c > 0 {
				v += lf[1] * acc[c-1]
			}
			next[c] = v
		}
		copy(acc, next)
	}
	return acc
}

func almostEq(a, b []float64, eps float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

func TestRootMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(4)
		tr := New(n, k)
		leaves := make([][2]float64, n)
		for i := range leaves {
			leaves[i] = [2]float64{rng.Float64(), rng.Float64()}
			tr.SetLeaf(i, leaves[i][0], leaves[i][1])
		}
		want := refConvolve(leaves, k)
		if !almostEq(tr.Root(), want, 1e-12) {
			t.Fatalf("trial %d (n=%d k=%d): root %v want %v", trial, n, k, tr.Root(), want)
		}
	}
}

func TestIncrementalUpdatesMatchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, k := 9, 3
	tr := New(n, k)
	leaves := make([][2]float64, n)
	for i := range leaves {
		leaves[i] = [2]float64{rng.Float64(), rng.Float64()}
		tr.SetLeaf(i, leaves[i][0], leaves[i][1])
	}
	for step := 0; step < 200; step++ {
		i := rng.Intn(n)
		leaves[i] = [2]float64{rng.Float64(), rng.Float64()}
		tr.SetLeaf(i, leaves[i][0], leaves[i][1])
		want := refConvolve(leaves, k)
		if !almostEq(tr.Root(), want, 1e-12) {
			t.Fatalf("step %d: root %v want %v", step, tr.Root(), want)
		}
	}
}

func TestResetLeaves(t *testing.T) {
	n, k := 5, 2
	tr := New(n, k)
	p0 := []float64{1, 2, 3, 4, 5}
	p1 := []float64{5, 4, 3, 2, 1}
	tr.ResetLeaves(p0, p1)
	leaves := make([][2]float64, n)
	for i := range leaves {
		leaves[i] = [2]float64{p0[i], p1[i]}
	}
	if !almostEq(tr.Root(), refConvolve(leaves, k), 1e-9) {
		t.Fatalf("root after reset = %v", tr.Root())
	}
	// ResetIdentity: root must be [1, 0, 0].
	tr.ResetIdentity()
	root := tr.Root()
	if root[0] != 1 || root[1] != 0 || root[2] != 0 {
		t.Fatalf("identity root = %v", root)
	}
}

func TestLeafReadback(t *testing.T) {
	tr := New(3, 2)
	tr.SetLeaf(1, 0.25, 0.75)
	p0, p1 := tr.Leaf(1)
	if p0 != 0.25 || p1 != 0.75 {
		t.Fatalf("leaf = %v,%v", p0, p1)
	}
}

func TestEmptyTreeIsIdentity(t *testing.T) {
	tr := New(0, 3)
	root := tr.Root()
	if root[0] != 1 {
		t.Fatalf("empty root = %v", root)
	}
	for _, v := range root[1:] {
		if v != 0 {
			t.Fatalf("empty root = %v", root)
		}
	}
}

func TestK0Tree(t *testing.T) {
	tr := New(4, 0)
	for i := 0; i < 4; i++ {
		tr.SetLeaf(i, 0.5, 0.5) // p1 is dropped at k=0
	}
	root := tr.Root()
	if math.Abs(root[0]-0.0625) > 1e-15 {
		t.Fatalf("k=0 root = %v", root)
	}
}

func TestSetLeafOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range leaf")
		}
	}()
	New(2, 1).SetLeaf(5, 0, 0)
}

// TestSwapLeafRestore checks the delta/undo pair: SwapLeaf returns the
// pre-delta state and Restore brings every node back bit-for-bit.
func TestSwapLeafRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		k := 1 + rng.Intn(4)
		tr := New(n, k)
		for i := 0; i < n; i++ {
			tr.SetLeaf(i, rng.Float64(), rng.Float64())
		}
		before := append([]float64(nil), tr.nodes...)
		i := rng.Intn(n)
		p0, p1 := tr.Leaf(i)
		undo := tr.SwapLeaf(i, rng.Float64(), rng.Float64())
		if undo.Index != i || undo.P0 != p0 || undo.P1 != p1 {
			t.Fatalf("trial %d: undo record %+v, leaf was [%v %v]", trial, undo, p0, p1)
		}
		tr.Restore(undo)
		for j, v := range tr.nodes {
			if v != before[j] {
				t.Fatalf("trial %d: node %d = %v after restore, want %v", trial, j, v, before[j])
			}
		}
	}
}

// TestPathIndependence pins the purity invariant the retained-tree Q2 mode
// relies on: node values depend only on the final leaf state, bit for bit,
// no matter how that state was reached (incremental SetLeaf/SwapLeaf paths,
// bulk ResetLeaves, or CopyFrom).
func TestPathIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(4)
		p0 := make([]float64, n)
		p1 := make([]float64, n)
		for i := range p0 {
			p0[i], p1[i] = rng.Float64(), rng.Float64()
		}
		// Path A: bulk rebuild.
		a := New(n, k)
		a.ResetLeaves(p0, p1)
		// Path B: incremental updates in random order with detours.
		b := New(n, k)
		for _, i := range rng.Perm(n) {
			b.SetLeaf(i, rng.Float64(), rng.Float64()) // detour
			b.SetLeaf(i, p0[i], p1[i])
		}
		for _, i := range rng.Perm(n) { // redundant re-application
			b.Restore(LeafState{Index: i, P0: p0[i], P1: p1[i]})
		}
		// Path C: copy of A.
		c := New(n, k)
		c.CopyFrom(a)
		for j := range a.nodes {
			if a.nodes[j] != b.nodes[j] || a.nodes[j] != c.nodes[j] {
				t.Fatalf("trial %d: node %d diverged: bulk=%v incremental=%v copy=%v",
					trial, j, a.nodes[j], b.nodes[j], c.nodes[j])
			}
		}
	}
}

func TestRootSumProperty(t *testing.T) {
	// If every leaf is a probability pair (p, 1−p) and k ≥ n, the root
	// coefficients sum to 1 (a full binomial distribution).
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		n := len(raw)
		tr := New(n, n)
		for i, r := range raw {
			p := math.Abs(math.Mod(r, 1))
			if math.IsNaN(p) || math.IsInf(p, 0) {
				p = 0.5
			}
			tr.SetLeaf(i, p, 1-p)
		}
		sum := 0.0
		for _, v := range tr.Root() {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
