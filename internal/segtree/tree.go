// Package segtree implements the divide-and-conquer dynamic-programming tree
// from appendix A.2 of the paper: a segment tree whose leaves hold degree-1
// polynomials (the per-row "in / not in the top-K" weights) and whose
// internal nodes hold K-truncated polynomial products
//
//	T(c, a, b) = Σ_k T(k, a, m) · T(c−k, m+1, b)
//
// so the root coefficient T(c, 1, N) is the total weight of choosing exactly
// c rows into the top-K. Updating one leaf costs O(K² log N); reading the
// root is O(1).
//
// # Purity invariant
//
// Every internal node is always the exact truncated convolution of its two
// children (each update fully recomputes the nodes on the changed leaf's
// path), so node values — the root above all — are a pure function of the
// current leaf values: any sequence of SetLeaf / SwapLeaf / Restore /
// ResetLeaves calls that ends in the same leaf state yields bit-identical
// node values, regardless of the path taken. The retained-tree incremental
// Q2 mode (internal/core.Retained) depends on exactly this property to
// splice bulk-rebuilt tree states into the middle of a replayed scan and
// still match a fresh scan bit for bit; TestPathIndependence pins it.
package segtree

// PolyTree is a fixed-size segment tree over n leaves, each node storing a
// polynomial of k+1 coefficients.
type PolyTree struct {
	n     int // number of real leaves
	k     int // polynomial degree bound (top-K capacity)
	size  int // number of leaves in the padded (power-of-two) tree
	nodes []float64
}

// New creates a tree with n leaves and capacity k. All real leaves start as
// [1, 0, ..., 0] (the identity weight); padding leaves are identities too.
func New(n, k int) *PolyTree {
	if n < 0 || k < 0 {
		panic("segtree: negative size")
	}
	size := 1
	for size < n {
		size *= 2
	}
	if n == 0 {
		size = 1
	}
	t := &PolyTree{n: n, k: k, size: size,
		nodes: make([]float64, 2*size*(k+1)),
	}
	t.ResetIdentity()
	return t
}

// Len returns the number of real leaves.
func (t *PolyTree) Len() int { return t.n }

// K returns the capacity bound.
func (t *PolyTree) K() int { return t.k }

// node returns the coefficient slice of tree node idx (1-based heap layout).
func (t *PolyTree) node(idx int) []float64 {
	w := t.k + 1
	return t.nodes[idx*w : idx*w+w]
}

// ResetIdentity sets every leaf to the identity polynomial [1, 0, ..., 0]
// and rebuilds internal nodes. O(size·K).
func (t *PolyTree) ResetIdentity() {
	w := t.k + 1
	for i := range t.nodes {
		t.nodes[i] = 0
	}
	// All nodes are [1,0,...]: identity products of identities.
	for idx := 1; idx < 2*t.size; idx++ {
		t.nodes[idx*w] = 1
	}
}

// ResetLeaves sets every real leaf i to [p0[i], p1[i], 0, ...] (padding
// leaves stay identity) and rebuilds all internal nodes bottom-up in
// O(size·K²) — cheaper than n individual SetLeaf calls.
func (t *PolyTree) ResetLeaves(p0, p1 []float64) {
	if len(p0) != t.n || len(p1) != t.n {
		panic("segtree: ResetLeaves length mismatch")
	}
	for i := 0; i < t.size; i++ {
		leaf := t.node(t.size + i)
		for j := range leaf {
			leaf[j] = 0
		}
		if i < t.n {
			leaf[0] = p0[i]
			if t.k >= 1 {
				leaf[1] = p1[i]
			}
		} else {
			leaf[0] = 1
		}
	}
	for idx := t.size - 1; idx >= 1; idx-- {
		t.recompute(idx)
	}
}

// SetLeaf sets leaf i to the polynomial [p0, p1, 0, ...] and updates the
// path to the root. O(K² log n).
func (t *PolyTree) SetLeaf(i int, p0, p1 float64) {
	if i < 0 || i >= t.n {
		panic("segtree: SetLeaf out of range")
	}
	leaf := t.node(t.size + i)
	for j := range leaf {
		leaf[j] = 0
	}
	leaf[0] = p0
	if t.k >= 1 {
		leaf[1] = p1
	}
	for idx := (t.size + i) / 2; idx >= 1; idx /= 2 {
		t.recompute(idx)
	}
}

// LeafState is an undo record for one leaf delta: the leaf index and the
// [p0, p1] it held before the delta was applied.
type LeafState struct {
	Index  int
	P0, P1 float64
}

// SwapLeaf applies the leaf delta (i ← [p0, p1]) and returns the previous
// state, so the caller can hypothetically collapse a leaf — e.g. to a pinned
// candidate's polynomial — read the root, and roll back with Restore.
// O(K² log n), identical cost to SetLeaf.
func (t *PolyTree) SwapLeaf(i int, p0, p1 float64) LeafState {
	prev0, prev1 := t.Leaf(i)
	t.SetLeaf(i, p0, p1)
	return LeafState{Index: i, P0: prev0, P1: prev1}
}

// Restore undoes a SwapLeaf by re-applying the saved leaf state. By the
// purity invariant the tree is bit-identical to the state before the swap.
func (t *PolyTree) Restore(s LeafState) {
	t.SetLeaf(s.Index, s.P0, s.P1)
}

// CopyFrom makes t a bitwise copy of src, which must have identical n and k.
// O(size·K) — cheaper than replaying src's update history.
func (t *PolyTree) CopyFrom(src *PolyTree) {
	if t.n != src.n || t.k != src.k {
		panic("segtree: CopyFrom shape mismatch")
	}
	copy(t.nodes, src.nodes)
}

// Leaf returns the current [p0, p1] of leaf i.
func (t *PolyTree) Leaf(i int) (p0, p1 float64) {
	leaf := t.node(t.size + i)
	p0 = leaf[0]
	if t.k >= 1 {
		p1 = leaf[1]
	}
	return
}

// recompute sets node idx to the truncated convolution of its children.
// dst never aliases the children (idx < 2·idx), so the convolution writes
// straight into dst — descending c so dst[c] is finished before dst[c-1]
// is produced (they are independent anyway).
func (t *PolyTree) recompute(idx int) {
	l, r, dst := t.node(2*idx), t.node(2*idx+1), t.node(idx)
	for c := t.k; c >= 0; c-- {
		s := 0.0
		for a := 0; a <= c; a++ {
			if l[a] == 0 {
				continue
			}
			s += l[a] * r[c-a]
		}
		dst[c] = s
	}
}

// Root returns the root polynomial: Root()[c] is the total weight of
// configurations placing exactly c rows in the top-K. The returned slice
// aliases internal storage; do not modify or retain across updates.
func (t *PolyTree) Root() []float64 {
	return t.node(1)
}
