// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark line:
//
//	{"name": "BenchmarkBatchQ2_ParallelSweep/workers=8-16",
//	 "iterations": 1, "ns_per_op": 1234567.0,
//	 "metrics": {"spans/op": 8, "steals/op": 2}}
//
// ns_per_op is pulled out of the metric pairs because it is the one every
// line has and the one trend dashboards key on; every other "value unit"
// pair (b.ReportMetric and the -benchmem columns) lands under metrics
// verbatim. Non-benchmark lines (ok/PASS/goos/...) are ignored, so the raw
// `go test` transcript can be fed in unfiltered.
//
// Usage: benchjson -in bench.out -out BENCH_2026-08-07.json
// With -in/-out omitted it filters stdin to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	in := flag.String("in", "", "benchmark output to parse (default stdin)")
	out := flag.String("out", "", "JSON file to write (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := parse(r)
	if err != nil {
		fatal(err)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// parse extracts benchmark result lines: "BenchmarkName-P  N  v1 u1  v2 u2 ...".
func parse(r io.Reader) ([]result, error) {
	results := []result{} // non-nil so an empty run encodes as [] not null
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." headers without a result column
		}
		res := result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: bad value %q", fields[0], fields[i])
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				res.NsPerOp = v
				continue
			}
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
