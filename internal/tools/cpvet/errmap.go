package cpvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ErrMap enforces the error-mapping and error-hygiene contracts around the
// serving and durability layers:
//
//   - every Err* sentinel declared at package level in the sentinel package
//     must be referenced by the HTTP status mapping function (errStatus), so
//     adding a sentinel without teaching the mapper is a build-time failure
//     instead of a surprise 500 (the PR-2 bug class: 404 vs 400);
//   - the sentinel package must not call http.Error directly — raw status
//     writes bypass the single mapping point;
//   - in the configured durability/shutdown packages, an error returned by
//     Close, Flush, or Sync must be checked or deliberately discarded with
//     `_ =` and a comment; a bare expression or defer statement silently
//     drops it, and a dropped Close error on a WAL segment is a lost write.
var ErrMap = &Analyzer{
	Name: "errmap",
	Doc:  "checks sentinel→status exhaustiveness, bans raw http.Error, and flags discarded Close/Flush/Sync errors",
	Run:  runErrMap,
}

func runErrMap(p *Pass) error {
	if p.Pkg.Path() == p.Config.SentinelPkg {
		checkSentinelCoverage(p)
		checkRawHTTPError(p)
	}
	if p.Config.CloseCheckPkgs[p.Pkg.Path()] {
		checkDiscardedCloseErrors(p)
	}
	return nil
}

// checkSentinelCoverage verifies the status mapping function references every
// package-level Err* sentinel of type error.
func checkSentinelCoverage(p *Pass) {
	sentinels := make(map[types.Object]bool)
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Err") || len(name) == len("Err") {
			continue
		}
		obj, ok := scope.Lookup(name).(*types.Var)
		if !ok || !types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
			continue
		}
		sentinels[obj] = true
	}
	if len(sentinels) == 0 {
		return
	}

	var statusFn *ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == p.Config.StatusFunc {
				statusFn = fd
			}
		}
	}
	if statusFn == nil || statusFn.Body == nil {
		var first token.Pos
		for obj := range sentinels {
			if first == token.NoPos || obj.Pos() < first {
				first = obj.Pos()
			}
		}
		p.Reportf(first, "package declares %d Err* sentinels but has no status mapping function %s", len(sentinels), p.Config.StatusFunc)
		return
	}

	handled := make(map[types.Object]bool)
	ast.Inspect(statusFn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.TypesInfo.Uses[id]; obj != nil && sentinels[obj] {
				handled[obj] = true
			}
		}
		return true
	})
	var missing []string
	for obj := range sentinels {
		if !handled[obj] {
			missing = append(missing, obj.Name())
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		p.Reportf(statusFn.Pos(), "sentinel %s is not handled in %s; every sentinel must map to an HTTP status", name, p.Config.StatusFunc)
	}
}

// checkRawHTTPError flags direct http.Error calls, which bypass the single
// sentinel→status mapping point.
func checkRawHTTPError(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := p.pkgFunc(call.Fun); ok && pkg == "net/http" && name == "Error" {
				p.Reportf(call.Pos(), "raw http.Error bypasses the %s sentinel mapping; use the package's error-writing helper", p.Config.StatusFunc)
			}
			return true
		})
	}
}

// checkDiscardedCloseErrors flags Close/Flush/Sync calls whose error result
// is silently dropped: a bare expression statement or a bare defer. The
// sanctioned deliberate discard is `_ = f.Close()` (wrapped in a closure for
// defers) next to a comment saying why the error cannot matter.
func checkDiscardedCloseErrors(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = stmt.Call
			case *ast.GoStmt:
				call = stmt.Call
			default:
				return true
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Close" && name != "Flush" && name != "Sync" {
				return true
			}
			tv, ok := p.TypesInfo.Types[call]
			if !ok || !types.Identical(tv.Type, types.Universe.Lookup("error").Type()) {
				return true
			}
			p.Reportf(call.Pos(), "error from %s.%s() is discarded; check it or assign to _ with a comment", exprString(sel.X), name)
			return true
		})
	}
}

// exprString renders a short receiver description for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	default:
		return "expr"
	}
}
