// Fixture for the maporder analyzer outside any deterministic package:
// only functions tagged //cpvet:deterministic are in scope.
package maporderfunc

// journal replays entries, so its body is order-critical.
//
//cpvet:deterministic
func journal(m map[string]int, out func(string, int)) {
	for k, v := range m { // want `range over map`
		out(k, v)
	}
}

// free is untagged: map order is allowed to be arbitrary here.
func free(m map[string]int, out func(string, int)) {
	for k, v := range m {
		out(k, v)
	}
}

var _ = journal
var _ = free
