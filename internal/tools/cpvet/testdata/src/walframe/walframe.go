// Fixture for the walframe analyzer: the package is configured as the WAL
// package, so raw file mutation outside allow-annotated helpers is flagged.
package walframe

import (
	"os"
	"path/filepath"
)

// rotate renames outside any sanctioned helper — the seeded violation.
func rotate(dir string) error {
	return os.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")) // want `raw os.Rename outside the framing helpers`
}

func write(f *os.File, b []byte) error {
	_, err := f.Write(b) // want `raw \(\*os.File\)\.Write outside the framing helpers`
	return err
}

// frame is a sanctioned framing helper: the function-level allow covers
// every raw operation in its body.
//
//cpvet:allow walframe -- fixture-sanctioned framing helper
func frame(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

// read cannot tear a record: no finding.
func read(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// mkdir creates directories only: no finding.
func mkdir(dir string) error {
	return os.MkdirAll(dir, 0o755)
}

var (
	_ = rotate
	_ = write
	_ = frame
	_ = read
	_ = mkdir
)
