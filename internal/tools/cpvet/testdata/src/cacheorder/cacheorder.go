// Fixture pinning the deterministic-scope rule for cache code, modeled on
// the engine's sweep-plan cache: a lookup that feeds replayed scans must not
// range over its cache map directly — iteration goes through a sorted key
// slice (core.sortedPlanKeys in the real code), so the sibling a rebuild
// seeds from is the same on every run. The sorted-keys collector itself
// stays untagged: its own map range is the one sanctioned place order is
// destroyed, because sorting restores it before any caller observes a key.
package cacheorder

import "sort"

type key struct{ k, lo, hi int }

type plan struct{ emitStart int }

// lookupUnsorted picks a seed plan by ranging the cache map directly: two
// runs can pick different siblings, so replays diverge. Flagged.
//
//cpvet:deterministic
func lookupUnsorted(cache map[key]*plan, k int) *plan {
	for ck, p := range cache { // want `range over map`
		if ck.k == k {
			return p
		}
	}
	return nil
}

// lookupSorted is the sanctioned shape: collect keys through the untagged
// sorter, then range the slice. Clean.
//
//cpvet:deterministic
func lookupSorted(cache map[key]*plan, k int) *plan {
	for _, ck := range sortedKeys(cache) {
		if ck.k == k {
			return cache[ck]
		}
	}
	return nil
}

// sortedKeys is deliberately untagged: its internal map range is out of
// deterministic scope because the sort below makes the output order
// independent of it.
func sortedKeys(cache map[key]*plan) []key {
	keys := make([]key, 0, len(cache))
	for ck := range cache {
		keys = append(keys, ck)
	}
	sort.Slice(keys, func(a, b int) bool {
		x, y := keys[a], keys[b]
		if x.k != y.k {
			return x.k < y.k
		}
		if x.lo != y.lo {
			return x.lo < y.lo
		}
		return x.hi < y.hi
	})
	return keys
}

var _ = lookupUnsorted
var _ = lookupSorted
