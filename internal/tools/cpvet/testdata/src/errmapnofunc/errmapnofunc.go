// Fixture for errmap's missing-status-function check: sentinels exist but
// nothing maps them to HTTP statuses.
package errmapnofunc

import "errors"

var ErrOops = errors.New("oops") // want `has no status mapping function errStatus`
