// Package lockorderseed exercises the Config.LockOrder seeding: the test
// config pins Store.mu → Session.mu as the canonical order, so the inverted
// acquisition below closes a cycle even though the forward nesting never
// appears in this package — exactly how the repository pins its
// st.mu → sess.mu hierarchy.
package lockorderseed

import "sync"

type Store struct {
	mu   sync.Mutex
	live map[string]*Session // guarded by mu
}

type Session struct {
	mu sync.Mutex
	n  int
}

// inverted acquires against the seeded canonical order.
func inverted(st *Store, sess *Session) {
	sess.mu.Lock()
	st.mu.Lock() // want `lock order cycle`
	st.mu.Unlock()
	sess.mu.Unlock()
}

// forward matches the seeded order; it is never the bug (negative — the
// canonical direction is exempt even while the cycle above exists).
func forward(st *Store, sess *Session) {
	st.mu.Lock()
	for _, sess := range st.live {
		_ = sess
	}
	sess.mu.Lock()
	sess.n++
	sess.mu.Unlock()
	st.mu.Unlock()
}
