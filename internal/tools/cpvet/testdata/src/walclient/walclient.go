// Fixture for walframe's client mode: the package is configured as a WAL
// client, where any raw file mutation must go through the durable API.
package walclient

import "os"

func persist(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `in a WAL client package`
}

var _ = persist
