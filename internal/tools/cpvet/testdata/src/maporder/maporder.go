// Fixture for the maporder analyzer: the whole package is configured as
// deterministic scope.
package maporder

import "sort"

// emit journals entries in map order — the seeded violation.
func emit(m map[string]int, out func(string, int)) {
	for k, v := range m { // want `range over map`
		out(k, v)
	}
}

// emitSorted is the sanctioned pattern: collect, sort, then range the slice.
// The collection loop itself cannot leak iteration order, hence the allow.
func emitSorted(m map[string]int, out func(string, int)) {
	keys := make([]string, 0, len(m))
	//cpvet:allow maporder -- keys are sorted before any order-sensitive use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out(k, m[k])
	}
}

// overSlice ranges a slice: deterministic by construction, no finding.
func overSlice(s []int, out func(int)) {
	for _, v := range s {
		out(v)
	}
}

var _ = emit
var _ = emitSorted
var _ = overSlice
