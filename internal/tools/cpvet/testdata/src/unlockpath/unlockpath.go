// Package unlockpath exercises the all-paths release check: early returns
// and panics between Lock and Unlock leak the lock; defer always covers.
package unlockpath

import "sync"

type counter struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	n   int
	err error
}

// good uses the sanctioned defer idiom (negative).
func (c *counter) good() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// goodExplicit releases on its single path (negative).
func (c *counter) goodExplicit(x bool) {
	c.mu.Lock()
	if x {
		c.n++
	}
	c.mu.Unlock()
}

// goodBothBranches releases in each branch (negative).
func (c *counter) goodBothBranches(x bool) int {
	c.mu.Lock()
	if x {
		c.mu.Unlock()
		return 1
	}
	c.mu.Unlock()
	return 0
}

// badEarlyReturn leaks on the x path.
func (c *counter) badEarlyReturn(x bool) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not released on every path`
	if x {
		return
	}
	c.mu.Unlock()
}

// badPanic leaks when the panic path unwinds.
func (c *counter) badPanic(x bool) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) is not released on every path`
	if x {
		panic("boom")
	}
	c.mu.Unlock()
}

// goodPanicDefer: the deferred unlock runs during unwinding (negative).
func (c *counter) goodPanicDefer(x bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if x {
		panic("boom")
	}
}

// goodLoop locks and unlocks per iteration (negative).
func (c *counter) goodLoop(items []int) {
	for range items {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

// badLoopBreak leaks via the break path.
func (c *counter) badLoopBreak(items []int) {
	for _, it := range items {
		c.mu.Lock() // want `c\.mu\.Lock\(\) is not released on every path`
		if it < 0 {
			break
		}
		c.mu.Unlock()
	}
}

// goodReadLock pairs RLock with RUnlock (negative).
func (c *counter) goodReadLock() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.n
}

// badReadWriteMismatch: an Unlock does not release an RLock.
func (c *counter) badReadWriteMismatch() {
	c.rw.RLock() // want `c\.rw\.RLock\(\) is not released on every path`
	c.rw.Unlock()
}

// goodClosureDefer releases inside a deferred closure (negative).
func (c *counter) goodClosureDefer() {
	c.mu.Lock()
	defer func() {
		c.n = 0
		c.mu.Unlock()
	}()
	c.n++
}

// acquire is a sanctioned handoff: release() is the other half.
func (c *counter) acquire() {
	//cpvet:allow unlockpath -- fixture: lock handoff; release() is the paired unlock
	c.mu.Lock()
}

func (c *counter) release() {
	c.mu.Unlock()
}
