// Fixture for the errmap analyzer: the package is configured as both the
// sentinel package (status function errStatus) and a close-check package.
package errmap

import (
	"bufio"
	"errors"
	"net/http"
	"os"
)

var (
	ErrNotFound = errors.New("not found")
	ErrBusy     = errors.New("busy")
	ErrGone     = errors.New("gone") // deliberately missing from errStatus
)

func errStatus(err error) int { // want `sentinel ErrGone is not handled`
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	}
	return http.StatusInternalServerError
}

// raw bypasses the single mapping point — the seeded violation.
func raw(w http.ResponseWriter) {
	http.Error(w, "nope", http.StatusTeapot) // want `raw http.Error bypasses`
}

func drop(f *os.File) {
	f.Close() // want `error from f.Close\(\) is discarded`
}

func dropDefer(f *os.File) error {
	defer f.Close() // want `error from f.Close\(\) is discarded`
	return nil
}

func dropFlush(w *bufio.Writer) {
	w.Flush() // want `error from w.Flush\(\) is discarded`
}

// deliberate is the sanctioned discard: assign to _ next to a comment.
func deliberate(f *os.File) {
	// Read-only handle; a close error cannot lose data.
	_ = f.Close()
}

func checked(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

func allowed(f *os.File) {
	f.Close() //cpvet:allow errmap -- fixture-sanctioned discard
}

var (
	_ = errStatus
	_ = raw
	_ = drop
	_ = dropDefer
	_ = dropFlush
	_ = deliberate
	_ = checked
	_ = allowed
)
