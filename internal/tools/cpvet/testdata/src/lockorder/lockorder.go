// Package lockorder exercises cycle detection over the observed
// lock-acquisition graph: two functions nesting two locks in opposite
// directions close a cycle; a consistently-ordered pair does not.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

type C struct {
	mu sync.Mutex
	n  int
}

// ab nests A before B — half of the cycle.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock order cycle`
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

// ba nests B before A — the inverted half.
func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lock order cycle`
	a.n++
	a.mu.Unlock()
	b.mu.Unlock()
}

// ac nests consistently with no inversion anywhere (negative).
func ac(a *A, c *C) {
	a.mu.Lock()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	a.mu.Unlock()
}

// sameClass locks two values of one type: no static order exists, left to
// convention (negative).
func sameClass(x, y *C) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// allowedInversion repeats ba's inverted nesting but is silenced at the
// acquisition: the annotation covers this site, not the cycle reported in
// ab/ba above.
func allowedInversion(a *A, b *B) {
	b.mu.Lock()
	//cpvet:allow lockorder -- fixture: deliberate inversion, serialized by the caller
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}
