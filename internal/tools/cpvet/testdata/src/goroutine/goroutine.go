// Package goroutine exercises the spawn-accounting check: every go
// statement must be joined (WaitGroup Add/Done visible at the spawn site) or
// bounded (the body receives/selects on ctx.Done() or a stop channel).
package goroutine

import (
	"context"
	"sync"
	"time"
)

type W struct {
	stop chan struct{}
	work chan int
	wg   sync.WaitGroup
	n    int
}

// badDetached is the leak class: nothing joins or stops it.
func (w *W) badDetached() {
	go func() { // want `goroutine is neither joined .* nor bounded`
		for v := range w.work {
			w.n += v
		}
	}()
}

// goodWaitGroup pairs Add at the spawn site with Done in the body (negative).
func (w *W) goodWaitGroup() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.n++
	}()
	w.wg.Wait()
}

// badDoneWithoutAdd: the Done alone does not count — the Add must be visible
// where the goroutine is spawned.
func (w *W) badDoneWithoutAdd() {
	go func() { // want `goroutine is neither joined .* nor bounded`
		defer w.wg.Done()
		w.n++
	}()
}

// goodCtx is bounded by the caller's context (negative).
func (w *W) goodCtx(ctx context.Context) {
	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				w.n++
			}
		}
	}()
}

// goodStopChan spawns a named method whose body selects on the stop channel
// (negative — the method is resolved within the package).
func (w *W) goodStopChan() {
	go w.loop()
}

func (w *W) loop() {
	for {
		select {
		case <-w.stop:
			return
		case v := <-w.work:
			w.n += v
		}
	}
}

// badOpaque spawns a function the analyzer cannot see into.
func badOpaque(d time.Duration) {
	go time.Sleep(d) // want `goroutine body is not analyzable here`
}

// allowedDetached is a sanctioned process-lifetime worker.
func (w *W) allowedDetached() {
	//cpvet:allow goroutine -- fixture: process-lifetime worker, exits with the program
	go func() {
		for v := range w.work {
			w.n += v
		}
	}()
}
