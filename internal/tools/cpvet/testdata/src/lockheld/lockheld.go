// Package lockheld exercises the three lockheld rules: *Locked methods must
// not lock their own receiver's mutex, *Locked calls require the lock held,
// and "guarded by" fields may only be touched under their mutex.
package lockheld

import "sync"

type store struct {
	mu   sync.Mutex
	live map[string]int // guarded by mu
	n    int
}

// evictLocked presumes mu held (negative: the seed covers the access).
func (s *store) evictLocked() {
	delete(s.live, "old")
}

// badLocked violates rule 1: a *Locked method managing its own lock.
func (s *store) badLocked() {
	s.mu.Lock() // want `badLocked locks s\.mu, but the \*Locked suffix promises the caller already holds it`
	s.n++
	s.mu.Unlock() // want `badLocked unlocks s\.mu, but the \*Locked suffix promises the caller already holds it`
}

// get holds the lock across the access (negative).
func (s *store) get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live["a"]
}

// bad touches a guarded field with no lock at all.
func (s *store) bad() int {
	return s.live["a"] // want `s\.live is guarded by s\.mu, which is not held here`
}

// badAfterUnlock shows the check is flow-sensitive, not per-function.
func (s *store) badAfterUnlock() int {
	s.mu.Lock()
	v := s.live["a"]
	s.mu.Unlock()
	return v + s.live["b"] // want `s\.live is guarded by s\.mu, which is not held here`
}

// badCall violates rule 2: calling a *Locked method without the lock.
func (s *store) badCall() {
	s.evictLocked() // want `s\.evictLocked\(\) called without holding a s mutex`
}

// goodCall holds the lock across the *Locked call (negative).
func (s *store) goodCall() {
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
}

// chainLocked calls a sibling *Locked method: the entry presumption covers it
// (negative).
func (s *store) chainLocked() {
	s.evictLocked()
}

// reset is sanctioned unlocked access: the value has not escaped yet.
//
//cpvet:allow lockheld -- fixture: constructor-style access before the store escapes
func (s *store) reset() {
	s.live = map[string]int{}
}
