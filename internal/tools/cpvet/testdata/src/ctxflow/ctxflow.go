// Fixture for the ctxflow analyzer: the package is configured as a
// context-discipline package.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// Blocking severs the caller's cancellation — the seeded violation.
func Blocking(ctx context.Context, run func(context.Context) error) error {
	fresh := context.Background() // want `context.Background replaces the incoming context`
	_ = fresh
	return run(ctx)
}

// Dropped blanks its context before any blocking work it guards.
func Dropped(_ context.Context) error { // want `discards its context.Context parameter`
	return nil
}

// Unused accepts a context and then ignores it.
func Unused(ctx context.Context) error { // want `never uses its context.Context parameter`
	return nil
}

// Handler has cancellation via the request but mints a fresh context anyway.
func Handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.TODO() // want `context.TODO replaces the incoming context`
	_ = ctx
	_ = w
	_ = r
}

// Derives narrows the incoming context: deriving keeps the chain, no finding.
func Derives(ctx context.Context) error {
	c, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	<-c.Done()
	return c.Err()
}

// unexported entry points are not flagged for unused contexts.
func relaxed(ctx context.Context) error {
	return nil
}

// StartJanitor intentionally detaches: the background loop must outlive the
// registering request.
//
//cpvet:allow ctxflow -- detached janitor outlives the request by design
func StartJanitor(ctx context.Context, run func(context.Context)) {
	go run(context.Background())
}

var _ = relaxed
