// Fixture for the nowalltime analyzer: the whole package is configured as
// deterministic scope.
package nowalltime

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock in replayed code — the seeded violation.
func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic scope`
}

func age(t time.Time) time.Duration {
	return time.Since(t) // want `time.Since in deterministic scope`
}

func pick(n int) int {
	return rand.Intn(n) // want `math/rand\.Intn in deterministic scope`
}

// metric feeds observability only; the annotations record why that is safe.
func metric() time.Duration {
	start := time.Now() //cpvet:allow nowalltime -- latency metric only, never persisted
	//cpvet:allow nowalltime -- latency metric only, never persisted
	return time.Since(start)
}

// fromJournal derives time from journal-supplied state: no finding.
func fromJournal(at time.Time) time.Time {
	return at.Add(time.Minute)
}

var (
	_ = stamp
	_ = age
	_ = pick
	_ = metric
	_ = fromJournal
)
