// Package blockedlock exercises the no-blocking-under-lock check: channel
// operations, selects without default, and configured blocking calls are
// flagged while a mutex is held; select-with-default and sync.Cond.Wait are
// exempt.
package blockedlock

import (
	"os"
	"sync"
	"time"
)

type S struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
	f    *os.File
	n    int
}

func (s *S) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

func (s *S) badRecv() {
	s.mu.Lock()
	<-s.ch // want `channel receive while holding s\.mu`
	s.mu.Unlock()
}

func (s *S) badSelect() {
	s.mu.Lock()
	select { // want `select without default while holding s\.mu`
	case v := <-s.ch:
		s.n = v
	}
	s.mu.Unlock()
}

// okSelectDefault never blocks: a ready case or the default runs (negative).
func (s *S) okSelectDefault() {
	s.mu.Lock()
	select {
	case v := <-s.ch:
		s.n = v
	default:
	}
	s.mu.Unlock()
}

func (s *S) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep \(blocking\) while holding s\.mu`
	s.mu.Unlock()
}

// okOutside blocks only after releasing (negative).
func (s *S) okOutside() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	<-s.ch
}

// flushLocked: the *Locked entry presumption makes the fsync a finding even
// though no Lock call appears in this function.
func (s *S) flushLocked() error {
	return s.f.Sync() // want `call to os\.File\.Sync \(blocking\) while holding s\.mu`
}

// okCondWait: Cond.Wait releases the mutex while parked (negative — Wait is
// simply not a configured blocking call).
func (s *S) okCondWait() {
	s.mu.Lock()
	for s.n == 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// allowedSync is a sanctioned fsync-under-lock (group-commit style).
func (s *S) allowedSync() {
	s.mu.Lock()
	//cpvet:allow blockedlock -- fixture: fsync under the lock is the design, waiters park on cond
	_ = s.f.Sync()
	s.mu.Unlock()
}
