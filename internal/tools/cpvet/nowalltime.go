package cpvet

import (
	"go/ast"
)

// NoWallTime flags wall-clock and randomness reads in deterministic scope.
//
// A time.Now() or math/rand draw inside replay- or accumulation-order-
// critical code makes two replays of the same WAL produce different state —
// the invariant pinned by TestRetainedMatchesFreshSSDC and
// TestDurableKillRestartLockstep. Timestamps that only feed metrics or idle
// clocks are silenced with `//cpvet:allow nowalltime -- <why>`; anything that
// reaches persisted or replayed state must come from the journal itself.
var NoWallTime = &Analyzer{
	Name: "nowalltime",
	Doc:  "flags time.Now/Since/Until and math/rand use in deterministic scope",
	Run:  runNoWallTime,
}

var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runNoWallTime(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := p.pkgFunc(sel)
			if !ok {
				return true
			}
			switch {
			case pkg == "time" && wallClockFuncs[name]:
				if p.InDeterministicScope(sel.Pos()) {
					p.Reportf(sel.Pos(), "time.%s in deterministic scope; replayed state must not depend on wall time", name)
				}
			case pkg == "math/rand" || pkg == "math/rand/v2":
				if p.InDeterministicScope(sel.Pos()) {
					p.Reportf(sel.Pos(), "%s.%s in deterministic scope; replayed state must not depend on nondeterministic randomness", pkg, name)
				}
			}
			return true
		})
	}
	return nil
}
