package cpvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goroutine checks that every `go` statement in scoped non-test code is
// accounted for: either joined — the spawned body calls Done() on a
// sync.WaitGroup that the spawning function Adds to — or bounded — the body
// receives or selects on ctx.Done() or a stop/shutdown channel, so Close can
// end it. A goroutine with neither is a leak: it outlives Server.Close,
// keeps its captures alive, and (the PR-6-era compaction bug class) can
// touch a store that has already been closed underneath it.
//
// The check is syntactic over the spawned body: a FuncLit is inspected
// directly; `go x.method()` resolves the method within the package and
// inspects its declaration. A spawn whose lifetime is bounded by something
// the analyzer cannot see (process-lifetime singletons, one-shot startup
// work) is silenced with //cpvet:allow goroutine -- <why>.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "flags go statements neither joined via a WaitGroup Add/Done pairing nor bounded by a ctx.Done()/stop-channel select",
	Run:  runGoroutine,
}

// stopChanWords are the name fragments that mark a channel as a lifecycle
// signal.
var stopChanWords = []string{"stop", "done", "quit", "shutdown", "closing", "close", "exit", "cancel"}

func runGoroutine(p *Pass) error {
	if !p.Config.GoroutinePkgs[p.Pkg.Path()] {
		return nil
	}
	decls := packageFuncDecls(p)
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			for _, s := range bodyGoStmts(fb.body) {
				checkGoStmt(p, fb, s, decls)
			}
		}
	}
	return nil
}

// packageFuncDecls maps each function object defined in this package to its
// declaration, so `go st.reaperLoop()` can be resolved to a body.
func packageFuncDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// bodyGoStmts collects the go statements belonging directly to body (not to
// nested function literals, which are separate funcBodies).
func bodyGoStmts(body *ast.BlockStmt) []*ast.GoStmt {
	var out []*ast.GoStmt
	inspectShallow(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			out = append(out, g)
			// The spawned FuncLit (if any) is a nested lit — do not descend;
			// its own go statements are found via its funcBody.
			return false
		}
		return true
	})
	return out
}

func checkGoStmt(p *Pass, fb funcBody, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) {
	spawned := spawnedBody(p, g, decls)
	if spawned == nil {
		// An out-of-package or dynamic target: nothing to inspect. The call
		// is still a detached spawn from this package's point of view.
		p.Reportf(g.Pos(), "goroutine body is not analyzable here; join it with a WaitGroup or bound it with a stop channel (or //cpvet:allow goroutine -- why it is safe)")
		return
	}
	if wg := joinedWaitGroup(p, spawned); wg != "" && addsToWaitGroup(p, fb.body, wg) {
		return
	}
	if boundedByStopSignal(p, spawned) {
		return
	}
	p.Reportf(g.Pos(), "goroutine is neither joined (no WaitGroup Add/Done pairing) nor bounded (no ctx.Done()/stop-channel receive); it can outlive Close")
}

// spawnedBody resolves the block that the go statement runs: a FuncLit body,
// or the declaration of a same-package function/method.
func spawnedBody(p *Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := p.TypesInfo.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := p.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// joinedWaitGroup returns the display name of the sync.WaitGroup the spawned
// body calls Done() on ("" if none). Nested closures count: `defer
// wg.Done()` wrapped in a cleanup closure still joins.
func joinedWaitGroup(p *Pass, body *ast.BlockStmt) string {
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if wg, ok := waitGroupMethod(p, call, "Done"); ok {
			name = wg
			return false
		}
		return true
	})
	return name
}

// addsToWaitGroup reports whether the spawning body calls Add on the same
// WaitGroup display expression (the Add must be visible at the spawn site —
// an Add hidden in a helper does not count, by design: the pairing should be
// reviewable in one screenful).
func addsToWaitGroup(p *Pass, body *ast.BlockStmt, wg string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := waitGroupMethod(p, call, "Add"); ok && name == wg {
			found = true
			return false
		}
		return true
	})
	return found
}

// waitGroupMethod matches wg.<method>() on a sync.WaitGroup receiver and
// returns the receiver's display expression.
func waitGroupMethod(p *Pass, call *ast.CallExpr, method string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	if !p.methodOn(call.Fun, "sync", "WaitGroup", method) {
		return "", false
	}
	return exprString(sel.X), true
}

// boundedByStopSignal reports whether the body receives from (or selects on,
// or ranges over) a lifecycle channel: ctx.Done() or a channel whose name
// contains a stop word.
func boundedByStopSignal(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isStopChan(p, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && isStopChan(p, n.X) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isStopChan reports whether e denotes a lifecycle signal: a Done() call
// (context.Context and friends) or an expression whose final name component
// contains a stop word.
func isStopChan(p *Pass, e ast.Expr) bool {
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
		return false
	}
	name := exprString(e)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.ToLower(name)
	for _, w := range stopChanWords {
		if strings.Contains(name, w) {
			return true
		}
	}
	return false
}
