package cpvet

import (
	"go/ast"
	"go/token"
	"strings"
)

// directives holds the parsed //cpvet:... annotations of one package.
type directives struct {
	// allowLine maps filename → line → analyzer names silenced on that
	// line. An annotation suppresses findings on its own line and on the
	// line below it (so it can sit above a long statement).
	allowLine map[string]map[int]map[string]bool
	// allowFunc maps filename → function line ranges whose doc comment
	// silences the named analyzers for the whole body.
	allowFunc map[string][]funcRange
	// detFunc maps filename → function line ranges whose doc comment
	// carries //cpvet:deterministic, opting the body into deterministic
	// scope.
	detFunc map[string][]lineRange
}

type lineRange struct{ start, end int }

type funcRange struct {
	lineRange
	names map[string]bool
}

// parseDirectives scans every comment of the package's files.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{
		allowLine: make(map[string]map[int]map[string]bool),
		allowFunc: make(map[string][]funcRange),
		detFunc:   make(map[string][]lineRange),
	}
	for _, f := range files {
		docs := make(map[*ast.CommentGroup]*ast.FuncDecl)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docs[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			fd := docs[cg]
			for _, c := range cg.List {
				names, det, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if fd != nil {
					r := lineRange{
						start: fset.Position(fd.Pos()).Line,
						end:   fset.Position(fd.End()).Line,
					}
					if det {
						d.detFunc[pos.Filename] = append(d.detFunc[pos.Filename], r)
					}
					if len(names) > 0 {
						d.allowFunc[pos.Filename] = append(d.allowFunc[pos.Filename], funcRange{r, names})
					}
					continue
				}
				if len(names) > 0 {
					lines := d.allowLine[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						d.allowLine[pos.Filename] = lines
					}
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						set := lines[ln]
						if set == nil {
							set = make(map[string]bool)
							lines[ln] = set
						}
						for n := range names {
							set[n] = true
						}
					}
				}
				// A //cpvet:deterministic outside a func doc comment has no
				// range to scope to; it is ignored rather than guessed at.
			}
		}
	}
	return d
}

// parseDirective decodes one comment. It returns the allowed analyzer names
// (empty for a pure deterministic tag), whether the comment carries the
// deterministic tag, and whether it is a cpvet directive at all.
func parseDirective(text string) (names map[string]bool, det bool, ok bool) {
	const allowPrefix = "//cpvet:allow"
	const detTag = "//cpvet:deterministic"
	if strings.HasPrefix(text, detTag) {
		return nil, true, true
	}
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, false, false
	}
	rest := text[len(allowPrefix):]
	if reason := strings.Index(rest, "--"); reason >= 0 {
		rest = rest[:reason]
	}
	names = make(map[string]bool)
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names[n] = true
		}
	}
	return names, false, true
}

// allowed reports whether a finding by analyzer at pos is silenced.
func (d *directives) allowed(analyzer string, pos token.Position) bool {
	if set := d.allowLine[pos.Filename][pos.Line]; set[analyzer] {
		return true
	}
	for _, fr := range d.allowFunc[pos.Filename] {
		if fr.names[analyzer] && pos.Line >= fr.start && pos.Line <= fr.end {
			return true
		}
	}
	return false
}

// deterministicAt reports whether pos sits inside a //cpvet:deterministic
// function.
func (d *directives) deterministicAt(pos token.Position) bool {
	for _, r := range d.detFunc[pos.Filename] {
		if pos.Line >= r.start && pos.Line <= r.end {
			return true
		}
	}
	return false
}

// InDeterministicScope reports whether pos is replay-order-critical: either
// the whole package is configured deterministic, or pos falls inside a
// function tagged //cpvet:deterministic.
func (p *Pass) InDeterministicScope(pos token.Pos) bool {
	if p.Config.DeterministicPkgs[p.Pkg.Path()] {
		return true
	}
	return p.dirs.deterministicAt(p.Fset.Position(pos))
}
