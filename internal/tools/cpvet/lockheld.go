package cpvet

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockHeld enforces the *Locked naming convention and guarded-field access:
//
//  1. A method named fooLocked documents "caller holds the receiver's
//     mutex". Its body must therefore never Lock or Unlock a mutex field of
//     its own receiver — doing so either self-deadlocks or silently drops
//     the caller's critical section.
//
//  2. A call x.fooLocked() is legal only where x's mutex is actually held:
//     either the caller locked it on every path reaching the call (forward
//     must-analysis over the CFG) or the caller is itself a *Locked method
//     on the same receiver (its entry presumes the lock).
//
//  3. A struct field whose doc or line comment says "guarded by <mu>" may
//     only be touched while <mu> on the same base expression is held —
//     again via the must-analysis, so an access after an early Unlock or on
//     a path that skipped the Lock is flagged.
//
// Accesses that are safe for structural reasons the analysis cannot see
// (single-goroutine recovery before the server is reachable, constructor
// code before the value escapes) are silenced with
// //cpvet:allow lockheld -- <why>.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "enforces the *Locked convention: no self-locking, callers must hold the lock, guarded fields accessed only under their mutex",
	Run:  runLockHeld,
}

// guardedByRE extracts the mutex field name from a "guarded by mu" comment.
var guardedByRE = regexp.MustCompile(`(?i)guarded by (\w+)`)

func runLockHeld(p *Pass) error {
	if !p.Config.ConcurrencyPkgs[p.Pkg.Path()] {
		return nil
	}
	guarded := collectGuardedFields(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockedSelfLock(p, fn)
			checkHeldAccess(p, fn, guarded)
		}
	}
	return nil
}

// checkLockedSelfLock flags a *Locked method locking or unlocking a mutex
// field of its own receiver (rule 1).
func checkLockedSelfLock(p *Pass, fn *ast.FuncDecl) {
	if !strings.HasSuffix(fn.Name.Name, "Locked") || fn.Recv == nil {
		return
	}
	recvName := receiverName(fn)
	if recvName == "" {
		return
	}
	inspectShallow(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ref, ok := mutexOp(p.TypesInfo, p.Pkg, call)
		if !ok {
			return true
		}
		if strings.HasPrefix(ref.display, recvName+".") {
			p.Reportf(call.Pos(), "%s %ss %s, but the *Locked suffix promises the caller already holds it",
				fn.Name.Name, strings.ToLower(lockOpName(ref.op)), ref.display)
		}
		return true
	})
}

func lockOpName(op lockOp) string {
	switch op {
	case opLock:
		return "Lock"
	case opUnlock:
		return "Unlock"
	case opRLock:
		return "RLock"
	default:
		return "RUnlock"
	}
}

// checkHeldAccess runs the held-lock dataflow over fn and applies rules 2
// and 3 statement by statement.
func checkHeldAccess(p *Pass, fn *ast.FuncDecl, guarded map[string]string) {
	g := buildCFG(fn.Body, p.TypesInfo)
	seed := lockedSeed(p.TypesInfo, p.Pkg, fn)
	ff := heldFlow(p.TypesInfo, p.Pkg, g, seed)

	for _, blk := range ff.cfg.blocks {
		held := ff.in[blk]
		if held == nil {
			held = heldSet{}
		}
		held = held.clone()
		for _, s := range blk.nodes {
			scanShallow(s, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkLockedCall(p, n, held)
				case *ast.SelectorExpr:
					checkGuardedField(p, n, held, guarded)
				}
				return true
			})
			applyStmt(p.TypesInfo, p.Pkg, s, held)
		}
	}
}

// checkLockedCall flags x.fooLocked() when no mutex of x is held (rule 2).
func checkLockedCall(p *Pass, call *ast.CallExpr, held heldSet) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasSuffix(sel.Sel.Name, "Locked") {
		return
	}
	// Only method calls on a nameable receiver expression are checkable.
	if selObj, ok := p.TypesInfo.Selections[sel]; !ok || selObj.Kind() != types.MethodVal {
		return
	}
	base := exprString(sel.X)
	if base == "" || base == "expr" {
		return
	}
	for k := range held {
		if strings.HasPrefix(k.display, base+".") {
			return
		}
	}
	p.Reportf(call.Pos(), "%s.%s() called without holding a %s mutex; *Locked methods require the caller to hold the lock",
		base, sel.Sel.Name, base)
}

// checkGuardedField flags x.f where f's declaration says "guarded by mu" and
// x.mu is not held (rule 3). Inside a *Locked function the receiver's locks
// are presumed held by the seed, so only genuinely unguarded accesses fire.
func checkGuardedField(p *Pass, sel *ast.SelectorExpr, held heldSet, guarded map[string]string) {
	selection, ok := p.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fld, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	class := fieldClass(selection.Recv(), fld.Name())
	if class == "" {
		return
	}
	muName, ok := guarded[class]
	if !ok {
		return
	}
	base := exprString(sel.X)
	if base == "" || base == "expr" {
		return
	}
	want := base + "." + muName
	for k := range held {
		if k.display == want {
			return
		}
	}
	p.Reportf(sel.Pos(), "%s.%s is guarded by %s, which is not held here", base, fld.Name(), want)
}

// fieldClass names a field by the struct type declaring it:
// "pkgpath.TypeName.field".
func fieldClass(recv types.Type, field string) string {
	for {
		if pt, ok := recv.(*types.Pointer); ok {
			recv = pt.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	pkgPath := ""
	if named.Obj().Pkg() != nil {
		pkgPath = named.Obj().Pkg().Path()
	}
	return pkgPath + "." + named.Obj().Name() + "." + field
}

// collectGuardedFields scans the package's struct declarations for fields
// whose doc or line comment contains "guarded by <mu>", returning
// fieldClass → mutex field name. A comment on a field declaration with
// multiple names guards all of them; a standalone "Observability counters
// (guarded by mu)" doc comment above a run of fields guards only the fields
// in that declaration group line.
func collectGuardedFields(p *Pass) map[string]string {
	out := map[string]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Defs[ts.Name]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			prefix := obj.Pkg().Path() + "." + obj.Name() + "."
			for _, fld := range st.Fields.List {
				mu := guardComment(fld.Doc)
				if mu == "" {
					mu = guardComment(fld.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range fld.Names {
					out[prefix+name.Name] = mu
				}
			}
			return true
		})
	}
	return out
}

func guardComment(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

func receiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return ""
	}
	name := fn.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}
