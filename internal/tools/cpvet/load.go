package cpvet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns under dir (a module root)
// and type-checks each against the gc export data of its dependencies.
//
// It shells out to `go list -export -json -deps`, which compiles whatever is
// stale into the build cache and reports an export-data file per dependency;
// go/types then imports dependencies from those files — the same scheme
// `go vet`'s unitchecker uses, with the go command (not a network) supplying
// everything, so the loader works fully offline. Only non-test GoFiles are
// loaded; see Pass.Files for why test files are exempt.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("cpvet: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return loadFromList(out)
}

// LoadExports returns the import-path → export-data map for the given
// packages and all their dependencies, without type-checking anything. The
// fixture runner (vettest) uses it to resolve fixture imports.
func LoadExports(dir string, pkgs []string) (map[string]string, error) {
	if len(pkgs) == 0 {
		return map[string]string{}, nil
	}
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("cpvet: go list %s: %v\n%s", strings.Join(pkgs, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("cpvet: decoding go list output: %v", derr)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

func loadFromList(out []byte) ([]*Package, error) {
	dec := json.NewDecoder(bytes.NewReader(out))
	exports := make(map[string]string)
	var targets []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("cpvet: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("cpvet: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("cpvet: %s uses cgo, which the loader does not support", lp.ImportPath)
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("cpvet: %v", err)
			}
			files = append(files, f)
		}
		tpkg, info, err := Check(lp.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("cpvet: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  lp.ImportPath,
			Dir:   lp.Dir,
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// exportImporter builds a go/types importer that resolves every import from
// the export-data files `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Check type-checks one package's parsed files with the analyzer-relevant
// fact tables populated. Exposed for vettest, which parses fixture files
// itself.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}

// NewExportImporter exposes the export-data importer for vettest.
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return exportImporter(fset, exports)
}
