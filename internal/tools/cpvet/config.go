package cpvet

// Config is the shared analyzer configuration: which packages are in each
// analyzer's scope and which symbols anchor the error-mapping checks. The
// zero value disables every analyzer; use DefaultConfig for this repository's
// contracts.
type Config struct {
	// DeterministicPkgs lists import paths whose every function is
	// replay-/accumulation-order-critical. maporder and nowalltime apply to
	// all code in these packages; elsewhere they apply only to functions
	// whose doc comment carries //cpvet:deterministic.
	DeterministicPkgs map[string]bool

	// CtxPkgs lists import paths whose exported blocking entry points must
	// thread an incoming context.Context instead of minting a fresh one.
	CtxPkgs map[string]bool

	// SentinelPkg is the import path declaring the Err* sentinel variables
	// and the status-mapping function named StatusFunc. errmap checks the
	// mapping is exhaustive over the sentinels and that no file in the
	// package calls http.Error directly.
	SentinelPkg string
	StatusFunc  string

	// CloseCheckPkgs lists import paths where a Close/Flush/Sync error must
	// be checked or explicitly discarded with `_ =`.
	CloseCheckPkgs map[string]bool

	// WALPkg is the import path of the CRC-framed WAL implementation.
	// walframe flags raw file mutation there outside functions annotated
	// //cpvet:allow walframe (the sanctioned framing/rename helpers), and
	// flags any raw file mutation at all in WALClientPkgs, which must go
	// through the WAL API.
	WALPkg        string
	WALClientPkgs map[string]bool
}

// DefaultConfig returns the contract scopes for this repository.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: map[string]bool{
			// Purity re-summation: TestPathIndependence pins that any insert
			// order yields identical summaries.
			"repro/internal/segtree": true,
			// Eq.4 entropy scoring and its memo keys: pinned by
			// TestRetainedRescoreLockstep.
			"repro/internal/selection": true,
			// WAL replay and snapshot/compaction: pinned by
			// TestDurableKillRestartLockstep and TestTornTailSweep.
			"repro/internal/durable": true,
		},
		CtxPkgs: map[string]bool{
			"repro/internal/serve": true,
		},
		SentinelPkg: "repro/internal/serve",
		StatusFunc:  "errStatus",
		CloseCheckPkgs: map[string]bool{
			"repro/internal/durable": true,
			"repro/cmd/cpserve":      true,
		},
		WALPkg: "repro/internal/durable",
		WALClientPkgs: map[string]bool{
			"repro/internal/serve": true,
		},
	}
}
