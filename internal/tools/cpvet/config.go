package cpvet

// Config is the shared analyzer configuration: which packages are in each
// analyzer's scope and which symbols anchor the error-mapping checks. The
// zero value disables every analyzer; use DefaultConfig for this repository's
// contracts.
type Config struct {
	// DeterministicPkgs lists import paths whose every function is
	// replay-/accumulation-order-critical. maporder and nowalltime apply to
	// all code in these packages; elsewhere they apply only to functions
	// whose doc comment carries //cpvet:deterministic.
	DeterministicPkgs map[string]bool

	// CtxPkgs lists import paths whose exported blocking entry points must
	// thread an incoming context.Context instead of minting a fresh one.
	CtxPkgs map[string]bool

	// SentinelPkg is the import path declaring the Err* sentinel variables
	// and the status-mapping function named StatusFunc. errmap checks the
	// mapping is exhaustive over the sentinels and that no file in the
	// package calls http.Error directly.
	SentinelPkg string
	StatusFunc  string

	// CloseCheckPkgs lists import paths where a Close/Flush/Sync error must
	// be checked or explicitly discarded with `_ =`.
	CloseCheckPkgs map[string]bool

	// WALPkg is the import path of the CRC-framed WAL implementation.
	// walframe flags raw file mutation there outside functions annotated
	// //cpvet:allow walframe (the sanctioned framing/rename helpers), and
	// flags any raw file mutation at all in WALClientPkgs, which must go
	// through the WAL API.
	WALPkg        string
	WALClientPkgs map[string]bool

	// ConcurrencyPkgs lists import paths where the flow-sensitive lock
	// discipline analyzers apply: lockheld (the *Locked convention and
	// guarded-field access), unlockpath (every Lock released on all CFG
	// paths), and lockorder (acquisition-order cycles).
	ConcurrencyPkgs map[string]bool

	// HotPathPkgs lists import paths whose mutexes are hot-path: blockedlock
	// flags blocking operations — channel send/receive, select without
	// default, and the calls in BlockingCalls — while any mutex is held.
	HotPathPkgs map[string]bool

	// BlockingCalls names calls blockedlock treats as blocking, keyed
	// "pkgpath.Func" for package functions and "pkgpath.Type.Method" for
	// methods (interface methods included), e.g. "time.Sleep",
	// "os.File.Sync", "repro/internal/durable.Store.AppendSync".
	BlockingCalls map[string]bool

	// GoroutinePkgs lists import paths where every `go` statement must be
	// joined (a WaitGroup Add/Done pairing visible at the spawn site) or
	// bounded (the goroutine selects/receives on ctx.Done() or a
	// stop/shutdown channel).
	GoroutinePkgs map[string]bool

	// LockOrder seeds the lock-acquisition graph with canonical edges
	// (each pair is before → after, using lock class keys
	// "pkgpath.TypeName.field"). Code acquiring in the reverse direction
	// closes a cycle and is reported by lockorder even if the forward
	// acquisition never appears syntactically.
	LockOrder [][2]string
}

// DefaultConfig returns the contract scopes for this repository.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: map[string]bool{
			// Purity re-summation: TestPathIndependence pins that any insert
			// order yields identical summaries.
			"repro/internal/segtree": true,
			// Eq.4 entropy scoring and its memo keys: pinned by
			// TestRetainedRescoreLockstep.
			"repro/internal/selection": true,
			// WAL replay and snapshot/compaction: pinned by
			// TestDurableKillRestartLockstep and TestTornTailSweep.
			"repro/internal/durable": true,
		},
		CtxPkgs: map[string]bool{
			"repro/internal/serve": true,
		},
		SentinelPkg: "repro/internal/serve",
		StatusFunc:  "errStatus",
		CloseCheckPkgs: map[string]bool{
			"repro/internal/durable": true,
			"repro/cmd/cpserve":      true,
		},
		WALPkg: "repro/internal/durable",
		WALClientPkgs: map[string]bool{
			"repro/internal/serve": true,
		},
		ConcurrencyPkgs: map[string]bool{
			"repro/internal/serve":     true,
			"repro/internal/durable":   true,
			"repro/internal/segtree":   true,
			"repro/internal/selection": true,
			"repro/internal/cleaning":  true,
			// Span-parallel sweep workers (core/sweep.go) share scratches and
			// span queues; lock discipline applies to core now that it spawns.
			"repro/internal/core": true,
			"repro/cmd/cpserve":   true,
			// WAL shipping: the Tailer's status mutex and the ship loop's use
			// of the store's frontier signal.
			"repro/internal/replica": true,
		},
		HotPathPkgs: map[string]bool{
			"repro/internal/serve":   true,
			"repro/internal/durable": true,
			"repro/internal/segtree": true,
			// The sweep inner loop is the hottest path in the repository;
			// nothing may block under a mutex there.
			"repro/internal/core":    true,
			"repro/internal/replica": true,
		},
		BlockingCalls: map[string]bool{
			"time.Sleep":          true,
			"os.File.Sync":        true,
			"sync.WaitGroup.Wait": true,
			// Group-commit WAL entry points: each waits for (or performs) an
			// fsync.
			"repro/internal/durable.Store.AppendSync":   true,
			"repro/internal/durable.Store.AppendWait":   true,
			"repro/internal/durable.Store.startSegment": true,
			"repro/internal/durable.syncDir":            true,
		},
		GoroutinePkgs: map[string]bool{
			"repro/internal/serve":     true,
			"repro/internal/durable":   true,
			"repro/internal/segtree":   true,
			"repro/internal/selection": true,
			"repro/internal/cleaning":  true,
			// runSpans' span workers must stay joined (WaitGroup visible at
			// the spawn site) — the sweep returns only after every span lands.
			"repro/internal/core": true,
			"repro/cmd/cpserve":   true,
			// The Tailer's run goroutine is WaitGroup-joined by Close.
			"repro/internal/replica": true,
		},
		// The canonical serve-layer hierarchy: Server.mu before the session
		// store's mu before any Session.mu (see docs/ARCHITECTURE.md,
		// "Locking"). snapshotState in serve/durable.go exercises the full
		// chain.
		LockOrder: [][2]string{
			{"repro/internal/serve.Server.mu", "repro/internal/serve.sessionStore.mu"},
			{"repro/internal/serve.sessionStore.mu", "repro/internal/serve.Session.mu"},
		},
	}
}
