package cpvet

import (
	"sort"
)

// All returns the full analyzer suite in a stable order: the five contract
// analyzers from the first cpvet generation, then the five flow-sensitive
// concurrency analyzers built on the CFG/dataflow layer.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		CtxFlow,
		ErrMap,
		WALFrame,
		NoWallTime,
		LockHeld,
		UnlockPath,
		LockOrder,
		BlockedLock,
		Goroutine,
	}
}

// Run loads the packages matching patterns under dir and applies every
// analyzer, returning the surviving (non-suppressed) diagnostics sorted by
// position. An error means the analysis itself could not run — a load or
// type-check failure — not that findings exist.
func Run(dir string, patterns []string, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := AnalyzePackage(pkg, analyzers, cfg)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// AnalyzePackage applies the analyzers to one loaded package, filtering
// findings silenced by //cpvet:allow annotations.
func AnalyzePackage(pkg *Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	all, err := AnalyzePackageAll(pkg, analyzers, cfg)
	if err != nil {
		return nil, err
	}
	diags := all[:0]
	for _, d := range all {
		if !d.Allowed {
			diags = append(diags, d)
		}
	}
	return diags, nil
}

// AnalyzePackageAll is AnalyzePackage without the suppression filter: every
// finding is returned, with Allowed set on those silenced by //cpvet:allow.
// Machine consumers (cpvet -json) use this so the annotation inventory stays
// visible.
func AnalyzePackageAll(pkg *Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Config:    cfg,
			dirs:      dirs,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
		for _, d := range raw {
			d.Allowed = dirs.allowed(d.Analyzer, d.Pos)
			diags = append(diags, d)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunAll is Run without the suppression filter (see AnalyzePackageAll).
func RunAll(dir string, patterns []string, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := AnalyzePackageAll(pkg, analyzers, cfg)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
