// Package cpvet is a project-invariant analyzer suite: ten static
// analyzers that mechanically enforce the determinism, cancellation,
// durability, and concurrency contracts the serving and persistence layers
// are built on — the invariants that, before this package, lived only in
// comments and in lockstep tests that catch violations after they ship.
// Five are syntactic; five are flow-sensitive, built on an intraprocedural
// CFG (cfg.go) with a must-hold lock data-flow pass (flow.go).
//
// The suite deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) but is implemented entirely on the standard
// library: packages are enumerated with `go list -export -json -deps` and
// type-checked with go/types against the gc export data the go command
// already produced, so the tool builds and runs with no dependencies beyond
// the toolchain itself.
//
// # Analyzers
//
//   - maporder: flags `range` over a map inside deterministic scope
//     (replay-, journal-, and accumulation-order-critical code); map
//     iteration order is randomized per run, so any order-sensitive
//     consumer diverges between replays — iterate sorted keys instead.
//   - ctxflow: flags code in the serving layer that drops, ignores, or
//     replaces an incoming context.Context (the PR-5 bug class: a stream
//     that kept stepping for a disconnected client).
//   - errmap: checks the serve sentinel set is exhaustively handled by the
//     HTTP status mapping, that handlers never bypass it with raw
//     http.Error, and that Close/Flush/Sync errors in the durability and
//     shutdown paths are checked or explicitly discarded.
//   - walframe: flags raw *os.File writes and renames inside the WAL
//     package that bypass the CRC-framed append / atomic tmp+rename
//     helpers (and any raw file mutation in packages that must go through
//     the durable API).
//   - nowalltime: flags time.Now/time.Since/time.Until and math/rand use
//     in deterministic scope — wall-clock or randomness in a replayed
//     computation breaks bit-for-bit recovery.
//   - lockheld: *Locked functions must not lock their own guard, their
//     callers must hold it, and fields annotated `// guarded by mu` may
//     only be touched while mu is held (must-hold data flow).
//   - unlockpath: every Lock() reaches a matching Unlock() on all CFG
//     paths to return/panic, or is released by defer.
//   - lockorder: builds the package-level lock-acquisition graph (seeded
//     with the configured canonical hierarchy) and flags acquisitions that
//     close a cycle — the deadlock precondition.
//   - blockedlock: no channel operations, selects without default, or
//     configured blocking calls (fsync, Sleep, WaitGroup.Wait) while a
//     hot-path mutex is held.
//   - goroutine: every go statement is joined via a visible WaitGroup
//     Add/Done pairing or bounded by ctx.Done()/a stop channel, so no
//     goroutine can outlive Close.
//
// # Escape hatch
//
// A finding that is deliberate is silenced with an annotation on its line,
// the line above, or the enclosing function's doc comment:
//
//	//cpvet:allow maporder -- keys are copied into a map; order cannot matter
//
// The reason after `--` is conventionally required by review, not by the
// tool. A function whose doc comment carries `//cpvet:deterministic` opts
// its body into deterministic scope even outside the configured
// deterministic packages.
package cpvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check, the cpvet analogue of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //cpvet:allow
	// annotations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files. Test files are exempt
	// from every analyzer by construction: the contracts guard production
	// replay/serving paths, and tests legitimately use wall time, fresh
	// contexts, and raw file IO.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Config    *Config

	dirs  *directives
	diags *[]Diagnostic
}

// Diagnostic is one finding at a resolved source position. Allowed marks a
// finding silenced by //cpvet:allow: the filtered API (Run/AnalyzePackage)
// drops such findings, the -All variants keep them so machine output can
// inventory the annotations.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Allowed  bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// pkgFunc resolves a selector expression to (package path, function name)
// when it is a direct call target like time.Now or os.Rename. ok is false
// for method calls and non-package selectors.
func (p *Pass) pkgFunc(fun ast.Expr) (pkgPath, name string, ok bool) {
	sel, isSel := fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodOn reports whether fun is a method selector named name whose
// receiver's type (after pointer indirection) is the named type pkgPath.tname.
func (p *Pass) methodOn(fun ast.Expr, pkgPath, tname, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := p.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == tname
}
