package cpvet

// This file is the shared lock-identity and held-lock dataflow layer used by
// the flow-sensitive concurrency analyzers. It answers two questions:
//
//   1. "is this call a mutex operation, and on which lock?" — mutexOp
//      recognizes Lock/Unlock/RLock/RUnlock calls whose receiver's type is
//      sync.Mutex or sync.RWMutex and names the lock two ways: a display key
//      (the printed receiver expression, e.g. "sess.mu" — what a human reads
//      and what syntactic matching within one function uses) and a class key
//      (pkgpath.TypeName.field, e.g. "repro/internal/serve.Session.mu" —
//      stable across functions, what the lock-order graph uses).
//
//   2. "which locks are held at this statement?" — heldSets runs a forward
//      must-analysis over the funcCFG: a lock is held at a point only if it
//      is held on every path reaching it (intersection at joins), computed
//      with a worklist to fixpoint so loops converge.
//
// defer mu.Unlock() does NOT release the lock in this model: the unlock runs
// at function exit, so for everything between the defer and the return the
// lock is genuinely held. unlockpath separately credits the defer as path
// coverage. Functions named *Locked are presumed to hold every mutex field
// of their receiver on entry — that presumption is what makes the lockheld
// call-site rule and the st.mu→sess.mu lockorder edge visible inside helpers
// like expireLocked.

import (
	"go/ast"
	"go/types"
	"strings"
)

// lockOp is the kind of mutex method call.
type lockOp int

const (
	opLock lockOp = iota
	opUnlock
	opRLock
	opRUnlock
)

// lockRef identifies one lock acquisition or release site.
type lockRef struct {
	display string // printed receiver expr: "sess.mu", "st.mu", "mu"
	class   string // pkgpath.TypeName.field or pkgpath.varname; "" if unresolvable
	op      lockOp
	call    *ast.CallExpr
}

// read reports whether the op is the reader half of an RWMutex.
func (r lockRef) read() bool { return r.op == opRLock || r.op == opRUnlock }

// heldKey is the identity used in held-sets: display string plus read-ness,
// so mu.RLock pairs with mu.RUnlock and not mu.Unlock.
type heldKey struct {
	display string
	read    bool
}

// heldLock is what a held-set stores per key: the class (for lockorder) and
// the acquisition call (for positions in reports).
type heldLock struct {
	class string
	at    *ast.CallExpr
}

// mutexOp reports whether call is a (R)Lock/(R)Unlock on a sync.Mutex or
// sync.RWMutex receiver, and identifies the lock.
func mutexOp(info *types.Info, pkg *types.Package, call *ast.CallExpr) (lockRef, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return lockRef{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "Unlock":
		op = opUnlock
	case "RLock":
		op = opRLock
	case "RUnlock":
		op = opRUnlock
	default:
		return lockRef{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return lockRef{}, false
	}
	if !isMutexType(tv.Type) {
		return lockRef{}, false
	}
	return lockRef{
		display: exprString(sel.X),
		class:   lockClass(info, pkg, sel.X),
		op:      op,
		call:    call,
	}, true
}

// isMutexType reports whether t (after pointer deref) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockClass derives the cross-function identity of a lock expression:
// for a field selector x.mu it is "pkgpath.TypeName.mu" keyed by the type
// declaring the field; for a package-level or local var it is
// "pkgpath.varname". Returns "" when the expression is too dynamic to name
// (map index, function result, ...).
func lockClass(info *types.Info, pkg *types.Package, e ast.Expr) string {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok {
			return ""
		}
		fld, ok := sel.Obj().(*types.Var)
		if !ok || !fld.IsField() {
			return ""
		}
		// Name the field by the struct type that declares it: walk the
		// receiver type to its named form.
		recv := sel.Recv()
		for {
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
				continue
			}
			break
		}
		if named, ok := recv.(*types.Named); ok {
			obj := named.Obj()
			pkgPath := ""
			if obj.Pkg() != nil {
				pkgPath = obj.Pkg().Path()
			}
			return pkgPath + "." + obj.Name() + "." + fld.Name()
		}
		return ""
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			pkgPath := ""
			if v.Pkg() != nil {
				pkgPath = v.Pkg().Path()
			}
			return pkgPath + "." + v.Name()
		}
		return ""
	case *ast.UnaryExpr:
		return lockClass(info, pkg, e.X)
	case *ast.StarExpr:
		return lockClass(info, pkg, e.X)
	}
	return ""
}

// heldSet maps heldKey → acquisition info. Sets are tiny (1–3 locks), so
// map copies are cheap.
type heldSet map[heldKey]heldLock

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// intersect returns the must-held intersection of a and b (keys in both; the
// heldLock value is taken from a arbitrarily — acquisition sites may differ
// across paths but the class is the same).
func intersect(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func sameSet(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// funcFlow is the per-function dataflow result: the held-set at entry to
// each block, plus the function's CFG.
type funcFlow struct {
	cfg  *funcCFG
	in   map[*cfgBlock]heldSet
	seed heldSet // entry presumption (the *Locked convention)
}

// lockedSeed builds the entry held-set presumed for a *Locked function: every
// sync.Mutex / sync.RWMutex field of the receiver's struct type, keyed by
// "<recvname>.<field>". Non-methods and non-*Locked functions seed empty.
func lockedSeed(info *types.Info, pkg *types.Package, fn *ast.FuncDecl) heldSet {
	seed := heldSet{}
	if fn.Recv == nil || len(fn.Recv.List) != 1 || !strings.HasSuffix(fn.Name.Name, "Locked") {
		return seed
	}
	if len(fn.Recv.List[0].Names) != 1 {
		return seed
	}
	recvName := fn.Recv.List[0].Names[0].Name
	if recvName == "_" {
		return seed
	}
	recvObj := info.Defs[fn.Recv.List[0].Names[0]]
	if recvObj == nil {
		return seed
	}
	t := recvObj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return seed
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return seed
	}
	pkgPath := ""
	if named.Obj().Pkg() != nil {
		pkgPath = named.Obj().Pkg().Path()
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if !isMutexType(fld.Type()) {
			continue
		}
		class := pkgPath + "." + named.Obj().Name() + "." + fld.Name()
		display := recvName + "." + fld.Name()
		// Presume the write lock; an RWMutex held for reading inside a
		// *Locked helper is indistinguishable statically, and presuming
		// write-held is the conservative choice for every client analyzer.
		seed[heldKey{display: display}] = heldLock{class: class}
	}
	return seed
}

// heldFlow computes the held-set at entry to every block of body, starting
// from seed. transfer is applied statement-by-statement inside blocks by
// callers via applyStmt; here we only need the per-block fixpoint.
func heldFlow(info *types.Info, pkg *types.Package, g *funcCFG, seed heldSet) *funcFlow {
	ff := &funcFlow{cfg: g, in: make(map[*cfgBlock]heldSet, len(g.blocks)), seed: seed}
	ff.in[g.entry] = seed.clone()

	work := []*cfgBlock{g.entry}
	inWork := map[*cfgBlock]bool{g.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk] = false

		out := ff.in[blk].clone()
		for _, s := range blk.nodes {
			applyStmt(info, pkg, s, out)
		}
		for _, succ := range blk.succs {
			var next heldSet
			if cur, ok := ff.in[succ]; ok {
				next = intersect(cur, out)
				if sameSet(next, cur) {
					continue
				}
			} else {
				next = out.clone()
			}
			ff.in[succ] = next
			if !inWork[succ] {
				inWork[succ] = true
				work = append(work, succ)
			}
		}
	}
	return ff
}

// applyStmt mutates held with the lock effects of one statement. Only
// top-level expression statements and defers change the set:
//
//	mu.Lock()          → add {mu, write}
//	mu.Unlock()        → remove {mu, write}
//	mu.RLock()         → add {mu, read}
//	mu.RUnlock()       → remove {mu, read}
//	defer mu.Unlock()  → no change (runs at exit; lock stays held here)
//
// Lock calls buried in larger expressions are vanishingly rare for mutexes
// (Lock returns nothing) and are ignored.
func applyStmt(info *types.Info, pkg *types.Package, s ast.Stmt, held heldSet) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return
	}
	ref, ok := mutexOp(info, pkg, call)
	if !ok {
		return
	}
	key := heldKey{display: ref.display, read: ref.read()}
	switch ref.op {
	case opLock, opRLock:
		held[key] = heldLock{class: ref.class, at: call}
	case opUnlock, opRUnlock:
		delete(held, key)
	}
}

// heldBefore walks a block's statements from its entry set and returns the
// held-set in force just before stmt (which must be one of blk.nodes).
func (ff *funcFlow) heldBefore(info *types.Info, pkg *types.Package, blk *cfgBlock, stmt ast.Stmt) heldSet {
	held := ff.in[blk]
	if held == nil {
		held = heldSet{} // unreachable block
	}
	held = held.clone()
	for _, s := range blk.nodes {
		if s == stmt {
			return held
		}
		applyStmt(info, pkg, s, held)
	}
	return held
}

// funcBodies yields every function body in the file along with its declaring
// FuncDecl (nil for FuncLits) — the unit of intraprocedural analysis.
// FuncLit bodies nested inside a FuncDecl are yielded separately and are NOT
// part of the enclosing body's CFG.
type funcBody struct {
	decl *ast.FuncDecl // nil for function literals
	lit  *ast.FuncLit  // nil for declared functions
	body *ast.BlockStmt
}

func funcBodies(file *ast.File) []funcBody {
	var out []funcBody
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcBody{decl: fd, body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcBody{lit: lit, body: lit.Body})
			}
			return true
		})
	}
	return out
}

// stmtScanNodes returns the parts of a block-resident statement that actually
// execute at that CFG position. Compound statements (if/for/switch) are
// appended to the block where their condition/tag evaluates, but their bodies
// live in other blocks — scanning the whole subtree there would attribute
// body code to the wrong flow state. Select headers evaluate nothing; their
// comm statements are appended inside the clause blocks.
func stmtScanNodes(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		return []ast.Node{s.Cond}
	case *ast.ForStmt:
		if s.Cond != nil {
			return []ast.Node{s.Cond}
		}
		return nil
	case *ast.RangeStmt:
		out := []ast.Node{s.X}
		if s.Key != nil {
			out = append(out, s.Key)
		}
		if s.Value != nil {
			out = append(out, s.Value)
		}
		return out
	case *ast.SwitchStmt:
		if s.Tag != nil {
			return []ast.Node{s.Tag}
		}
		return nil
	case *ast.TypeSwitchStmt:
		return []ast.Node{s.Assign}
	case *ast.SelectStmt:
		return nil
	default:
		return []ast.Node{s}
	}
}

// scanShallow runs fn over each scan node of s without descending into
// nested function literals.
func scanShallow(s ast.Stmt, fn func(ast.Node) bool) {
	for _, n := range stmtScanNodes(s) {
		ast.Inspect(n, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			return fn(n)
		})
	}
}

// inspectShallow walks body without descending into nested function
// literals: a FuncLit runs at some other time, so its statements are not part
// of the enclosing function's flow. (The enclosing FuncLit node itself never
// appears when walking its BlockStmt, so every FuncLit seen is nested.)
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
