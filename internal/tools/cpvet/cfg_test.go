package cpvet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// The CFG tests assert successor edges between *marker blocks*. A marker is
// a call statement to a single-letter function (a(), b(), ...; defer/go
// forms included); a block's label joins its markers with "+". Expected
// edges relate marker blocks to the nearest marker blocks (or "exit")
// reachable through unlabeled blocks — that contraction keeps the
// expectations stable under block-splitting details while still pinning the
// branch structure.

// markerLabel returns the marker name of a statement, or "".
func markerLabel(s ast.Stmt) string {
	var call *ast.CallExpr
	switch s := s.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	case *ast.GoStmt:
		call = s.Call
	}
	if call == nil {
		return ""
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(id.Name) != 1 {
		return ""
	}
	return id.Name
}

func blockLabel(b *cfgBlock) string {
	var names []string
	for _, s := range b.nodes {
		if m := markerLabel(s); m != "" {
			names = append(names, m)
		}
	}
	return strings.Join(names, "+")
}

// contractedEdges renders the CFG as "label -> succLabels" for every marker
// block (plus "entry" when the entry block itself has no markers), where
// successor labels are found by skipping through unlabeled blocks.
func contractedEdges(g *funcCFG) map[string][]string {
	labels := make(map[*cfgBlock]string)
	for _, b := range g.blocks {
		labels[b] = blockLabel(b)
	}
	labels[g.exit] = "exit"
	if labels[g.entry] == "" {
		labels[g.entry] = "entry"
	}

	// nearest returns the labeled blocks reachable from b by skipping
	// unlabeled blocks (b itself excluded).
	var nearest func(b *cfgBlock, seen map[*cfgBlock]bool, out map[string]bool)
	nearest = func(b *cfgBlock, seen map[*cfgBlock]bool, out map[string]bool) {
		for _, s := range b.succs {
			if l := labels[s]; l != "" {
				out[l] = true
				continue
			}
			if !seen[s] {
				seen[s] = true
				nearest(s, seen, out)
			}
		}
	}

	edges := make(map[string][]string)
	for _, b := range g.blocks {
		l := labels[b]
		if l == "" || l == "exit" {
			continue
		}
		out := map[string]bool{}
		nearest(b, map[*cfgBlock]bool{b: true}, out)
		var succs []string
		for s := range out {
			succs = append(succs, s)
		}
		sort.Strings(succs)
		if prev, ok := edges[l]; ok {
			// Two blocks with the same label (shouldn't happen in these
			// fixtures) — merge to keep the failure readable.
			succs = append(succs, prev...)
			sort.Strings(succs)
		}
		edges[l] = succs
	}
	return edges
}

func buildFixtureCFG(t *testing.T, body string) *funcCFG {
	t.Helper()
	src := "package p\nfunc f(x bool, items []int, ch chan int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return buildCFG(fn.Body, nil)
}

func TestCFGShapes(t *testing.T) {
	tests := []struct {
		name string
		body string
		want map[string][]string
	}{
		{
			name: "straight line",
			body: "a(); b()",
			want: map[string][]string{"a+b": {"exit"}},
		},
		{
			name: "if without else",
			body: "a(); if x { b() }; c()",
			want: map[string][]string{
				"a": {"b", "c"},
				"b": {"c"},
				"c": {"exit"},
			},
		},
		{
			name: "if with else",
			body: "a(); if x { b() } else { c() }; d()",
			want: map[string][]string{
				"a": {"b", "c"},
				"b": {"d"},
				"c": {"d"},
				"d": {"exit"},
			},
		},
		{
			name: "for loop",
			body: "a(); for x { b() }; c()",
			want: map[string][]string{
				"a": {"b", "c"},
				"b": {"b", "c"}, // back edge through the loop head
				"c": {"exit"},
			},
		},
		{
			name: "infinite for has no exit edge from the head",
			body: "a(); for { b() }",
			want: map[string][]string{
				"a": {"b"},
				"b": {"b"},
			},
		},
		{
			name: "range loop",
			body: "a(); for range items { b() }; c()",
			want: map[string][]string{
				"a": {"b", "c"},
				"b": {"b", "c"},
				"c": {"exit"},
			},
		},
		{
			name: "switch with default",
			body: "a(); switch { case x: b(); default: c() }; d()",
			want: map[string][]string{
				"a": {"b", "c"}, // no skip edge: some clause always runs
				"b": {"d"},
				"c": {"d"},
				"d": {"exit"},
			},
		},
		{
			name: "switch without default",
			body: "a(); switch { case x: b() }; c()",
			want: map[string][]string{
				"a": {"b", "c"}, // skip edge: no case may match
				"b": {"c"},
				"c": {"exit"},
			},
		},
		{
			name: "switch fallthrough",
			body: "a(); switch { case x: b(); fallthrough; case true: c() }; d()",
			want: map[string][]string{
				"a": {"b", "c", "d"}, // skip edge: the builder does not evaluate `case true`
				"b": {"c"},           // fallthrough edges to the next clause, not past the switch
				"c": {"d"},
				"d": {"exit"},
			},
		},
		{
			name: "early return",
			body: "a(); if x { b(); return }; c()",
			want: map[string][]string{
				"a": {"b", "c"},
				"b": {"exit"},
				"c": {"exit"},
			},
		},
		{
			name: "panic terminates the path",
			body: "a(); if x { b(); panic(\"boom\") }; c()",
			want: map[string][]string{
				"a": {"b", "c"},
				"b": {"exit"},
				"c": {"exit"},
			},
		},
		{
			name: "defer is a plain statement at registration",
			body: "a(); defer b(); c()",
			want: map[string][]string{"a+b+c": {"exit"}},
		},
		{
			name: "goto backward",
			body: "a(); L: b(); if x { goto L }; c()",
			want: map[string][]string{
				"a": {"b"},
				"b": {"b", "c"}, // the goto re-enters the labeled block
				"c": {"exit"},
			},
		},
		{
			name: "goto forward",
			body: "a(); if x { goto L }; b(); L: c()",
			want: map[string][]string{
				"a": {"b", "c"}, // then-branch jumps straight to the label
				"b": {"c"},
				"c": {"exit"},
			},
		},
		{
			name: "labeled break",
			body: "a(); L: for { b(); for { if x { break L }; c() } }; d()",
			want: map[string][]string{
				"a": {"b"},
				"b": {"c", "d"}, // inner head → c; break L → d
				"c": {"c", "d"},
				"d": {"exit"},
			},
		},
		{
			name: "continue",
			body: "a(); for x { if x { continue }; b() }; c()",
			want: map[string][]string{
				"a": {"b", "c"},
				"b": {"b", "c"},
				"c": {"exit"},
			},
		},
		{
			name: "select clauses each succeed the header",
			body: "a(); select { case <-ch: b(); case ch <- 1: c() }; d()",
			want: map[string][]string{
				"a": {"b", "c"}, // no skip edge: select blocks until a case fires
				"b": {"d"},
				"c": {"d"},
				"d": {"exit"},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := buildFixtureCFG(t, tt.body)
			got := contractedEdges(g)
			for label, want := range tt.want {
				if gotSuccs, ok := got[label]; !ok {
					t.Errorf("no block labeled %q (have %v)", label, keysOf(got))
				} else if fmt.Sprint(gotSuccs) != fmt.Sprint(want) {
					t.Errorf("block %q: successors %v, want %v", label, gotSuccs, want)
				}
			}
			for label := range got {
				if label == "entry" {
					continue
				}
				if _, ok := tt.want[label]; !ok {
					t.Errorf("unexpected labeled block %q with successors %v", label, got[label])
				}
			}
		})
	}
}

func keysOf(m map[string][]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
