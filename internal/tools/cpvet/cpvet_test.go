package cpvet_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tools/cpvet"
	"repro/internal/tools/cpvet/vettest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestMapOrderDeterministicPackage(t *testing.T) {
	cfg := &cpvet.Config{DeterministicPkgs: map[string]bool{"fix/maporder": true}}
	vettest.Run(t, fixture("maporder"), "fix/maporder", []*cpvet.Analyzer{cpvet.MapOrder}, cfg)
}

func TestMapOrderFunctionTag(t *testing.T) {
	// No deterministic packages: only //cpvet:deterministic functions are in
	// scope.
	vettest.Run(t, fixture("maporderfunc"), "fix/maporderfunc", []*cpvet.Analyzer{cpvet.MapOrder}, &cpvet.Config{})
}

// TestMapOrderCacheScope pins the deterministic-scope rule the sweep-plan
// cache relies on (core/plan.go): a //cpvet:deterministic cache lookup may
// not range over its cache map directly, while the untagged sorted-keys
// collector it is supposed to call — whose own map range is made harmless by
// the sort — stays out of scope.
func TestMapOrderCacheScope(t *testing.T) {
	vettest.Run(t, fixture("cacheorder"), "fix/cacheorder", []*cpvet.Analyzer{cpvet.MapOrder}, &cpvet.Config{})
}

func TestCtxFlow(t *testing.T) {
	cfg := &cpvet.Config{CtxPkgs: map[string]bool{"fix/ctxflow": true}}
	vettest.Run(t, fixture("ctxflow"), "fix/ctxflow", []*cpvet.Analyzer{cpvet.CtxFlow}, cfg)
}

func TestErrMap(t *testing.T) {
	cfg := &cpvet.Config{
		SentinelPkg:    "fix/errmap",
		StatusFunc:     "errStatus",
		CloseCheckPkgs: map[string]bool{"fix/errmap": true},
	}
	vettest.Run(t, fixture("errmap"), "fix/errmap", []*cpvet.Analyzer{cpvet.ErrMap}, cfg)
}

func TestErrMapMissingStatusFunc(t *testing.T) {
	cfg := &cpvet.Config{SentinelPkg: "fix/errmapnofunc", StatusFunc: "errStatus"}
	vettest.Run(t, fixture("errmapnofunc"), "fix/errmapnofunc", []*cpvet.Analyzer{cpvet.ErrMap}, cfg)
}

func TestWALFrame(t *testing.T) {
	cfg := &cpvet.Config{WALPkg: "fix/walframe"}
	vettest.Run(t, fixture("walframe"), "fix/walframe", []*cpvet.Analyzer{cpvet.WALFrame}, cfg)
}

func TestWALFrameClient(t *testing.T) {
	cfg := &cpvet.Config{WALClientPkgs: map[string]bool{"fix/walclient": true}}
	vettest.Run(t, fixture("walclient"), "fix/walclient", []*cpvet.Analyzer{cpvet.WALFrame}, cfg)
}

func TestNoWallTime(t *testing.T) {
	cfg := &cpvet.Config{DeterministicPkgs: map[string]bool{"fix/nowalltime": true}}
	vettest.Run(t, fixture("nowalltime"), "fix/nowalltime", []*cpvet.Analyzer{cpvet.NoWallTime}, cfg)
}

func TestLockHeld(t *testing.T) {
	cfg := &cpvet.Config{ConcurrencyPkgs: map[string]bool{"fix/lockheld": true}}
	vettest.Run(t, fixture("lockheld"), "fix/lockheld", []*cpvet.Analyzer{cpvet.LockHeld}, cfg)
}

func TestUnlockPath(t *testing.T) {
	cfg := &cpvet.Config{ConcurrencyPkgs: map[string]bool{"fix/unlockpath": true}}
	vettest.Run(t, fixture("unlockpath"), "fix/unlockpath", []*cpvet.Analyzer{cpvet.UnlockPath}, cfg)
}

func TestLockOrder(t *testing.T) {
	cfg := &cpvet.Config{ConcurrencyPkgs: map[string]bool{"fix/lockorder": true}}
	vettest.Run(t, fixture("lockorder"), "fix/lockorder", []*cpvet.Analyzer{cpvet.LockOrder}, cfg)
}

// TestLockOrderSeeded pins the Config.LockOrder mechanism: the canonical
// Store.mu → Session.mu edge comes from configuration, and only the
// inverted acquisition in the fixture is reported — the forward direction
// stays clean even while the cycle exists.
func TestLockOrderSeeded(t *testing.T) {
	cfg := &cpvet.Config{
		ConcurrencyPkgs: map[string]bool{"fix/lockorderseed": true},
		LockOrder: [][2]string{
			{"fix/lockorderseed.Store.mu", "fix/lockorderseed.Session.mu"},
		},
	}
	vettest.Run(t, fixture("lockorderseed"), "fix/lockorderseed", []*cpvet.Analyzer{cpvet.LockOrder}, cfg)
}

func TestBlockedLock(t *testing.T) {
	cfg := &cpvet.Config{
		HotPathPkgs: map[string]bool{"fix/blockedlock": true},
		BlockingCalls: map[string]bool{
			"time.Sleep":   true,
			"os.File.Sync": true,
		},
	}
	vettest.Run(t, fixture("blockedlock"), "fix/blockedlock", []*cpvet.Analyzer{cpvet.BlockedLock}, cfg)
}

func TestGoroutine(t *testing.T) {
	cfg := &cpvet.Config{GoroutinePkgs: map[string]bool{"fix/goroutine": true}}
	vettest.Run(t, fixture("goroutine"), "fix/goroutine", []*cpvet.Analyzer{cpvet.Goroutine}, cfg)
}

// TestRepoLintsClean is the integration check behind `make verify-static`:
// the full suite with the repository's own config must report nothing on the
// repository itself.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list over the whole module")
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := cpvet.Run(root, []string{"./..."}, cpvet.All(), cpvet.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
