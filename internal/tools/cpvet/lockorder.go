package cpvet

import (
	"go/token"
	"sort"
)

// LockOrder builds the package's lock-acquisition graph and flags cycles.
//
// Every nested acquisition observed by the held-lock dataflow — "mu B locked
// while mu A is held" — adds the edge A → B, where locks are identified by
// class ("pkgpath.TypeName.field"), not by variable name, so st.mu → sess.mu
// in one function and store.mu → s.mu in another land on the same edge. The
// graph is seeded with the canonical edges from Config.LockOrder (for this
// repository: Server.mu → sessionStore.mu → Session.mu), so code that
// acquires in the reverse direction closes a cycle and is reported even if
// the forward nesting appears only in a different package or only at
// runtime.
//
// *Locked methods contribute edges through their entry presumption: inside
// expireLocked (store lock presumed held), locking sess.mu records
// sessionStore.mu → Session.mu.
//
// An acquisition that is genuinely ordered by other means (e.g. two values
// of the same type always locked in ascending key order) is silenced with
// //cpvet:allow lockorder -- <why>.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags lock-acquisition cycles against the observed + configured lock-order graph",
	Run:  runLockOrder,
}

// lockEdge is one observed nested acquisition: to was locked while from was
// held.
type lockEdge struct {
	from, to         string // lock classes
	fromDisp, toDisp string // receiver expressions, for the report
	pos              token.Pos
}

func runLockOrder(p *Pass) error {
	if !p.Config.ConcurrencyPkgs[p.Pkg.Path()] {
		return nil
	}

	var observed []lockEdge
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			g := buildCFG(fb.body, p.TypesInfo)
			seed := heldSet{}
			if fb.decl != nil {
				seed = lockedSeed(p.TypesInfo, p.Pkg, fb.decl)
			}
			ff := heldFlow(p.TypesInfo, p.Pkg, g, seed)
			for _, blk := range ff.cfg.blocks {
				held := ff.in[blk]
				if held == nil {
					continue
				}
				held = held.clone()
				for _, s := range blk.nodes {
					if ref, ok := stmtMutexOp(p, s); ok &&
						(ref.op == opLock || ref.op == opRLock) && ref.class != "" {
						for k, h := range held {
							if h.class == "" || h.class == ref.class {
								// Same-class nesting (two values of one type)
								// has no static order; left to convention.
								continue
							}
							observed = append(observed, lockEdge{
								from:     h.class,
								to:       ref.class,
								fromDisp: k.display,
								toDisp:   ref.display,
								pos:      s.Pos(),
							})
						}
					}
					applyStmt(p.TypesInfo, p.Pkg, s, held)
				}
			}
		}
	}

	// Adjacency over observed + seeded edges.
	adj := map[string]map[string]bool{}
	addEdge := func(a, b string) {
		if adj[a] == nil {
			adj[a] = map[string]bool{}
		}
		adj[a][b] = true
	}
	for _, e := range observed {
		addEdge(e.from, e.to)
	}
	for _, e := range p.Config.LockOrder {
		addEdge(e[0], e[1])
	}

	// Acquisitions that follow a canonical Config.LockOrder edge are never
	// the bug: when a cycle exists, the inverted acquisition is the report.
	canonical := map[string]bool{}
	for _, e := range p.Config.LockOrder {
		canonical[e[0]+"\x00"+e[1]] = true
	}

	// An observed edge a→b is part of a cycle iff b reaches a. Report at the
	// acquisition position, once per (from,to,pos).
	seen := map[string]bool{}
	sort.Slice(observed, func(i, j int) bool { return observed[i].pos < observed[j].pos })
	for _, e := range observed {
		if canonical[e.from+"\x00"+e.to] {
			continue
		}
		if !reaches(adj, e.to, e.from) {
			continue
		}
		key := e.from + "\x00" + e.to + "\x00" + p.Fset.Position(e.pos).String()
		if seen[key] {
			continue
		}
		seen[key] = true
		p.Reportf(e.pos, "lock order cycle: %s (%s) acquired while holding %s (%s), but the lock-order graph already orders %s before %s",
			e.toDisp, e.to, e.fromDisp, e.from, e.to, e.from)
	}
	return nil
}

// reaches reports whether from reaches to in adj.
func reaches(adj map[string]map[string]bool, from, to string) bool {
	if from == to {
		return true
	}
	visited := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range adj[n] {
			if m == to {
				return true
			}
			if !visited[m] {
				visited[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}
