package cpvet

import (
	"go/ast"
)

// WALFrame guards the CRC-framed write discipline of the WAL package and its
// clients.
//
// Inside the WAL package every durable byte must flow through the framing
// and atomic-replace helpers (CRC-framed record append; snapshot written to
// a temp file, synced, then renamed over the old one). A raw os.Rename or
// (*os.File).Write anywhere else can produce an unframed record that replay
// cannot CRC-validate, or a torn snapshot that recovery trusts. The small
// set of sanctioned helpers carries a function-level
// `//cpvet:allow walframe` annotation; everything else is flagged.
//
// Client packages configured in WALClientPkgs (the serving layer) must not
// mutate files at all — their persistence goes through the durable API — so
// there any raw file mutation is flagged.
var WALFrame = &Analyzer{
	Name: "walframe",
	Doc:  "flags raw file writes/renames that bypass the CRC-framed WAL helpers",
	Run:  runWALFrame,
}

// walMutatingOSFuncs are the package-level os functions that mutate the
// filesystem in ways relevant to WAL integrity.
var walMutatingOSFuncs = map[string]bool{
	"Rename":     true,
	"Remove":     true,
	"RemoveAll":  true,
	"WriteFile":  true,
	"Truncate":   true,
	"Create":     true,
	"CreateTemp": true,
	"OpenFile":   true,
	"Mkdir":      false, // directory creation cannot tear a record
	"MkdirAll":   false,
}

// walMutatingFileMethods are the *os.File methods that write or truncate.
var walMutatingFileMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"Truncate":    true,
}

func runWALFrame(p *Pass) error {
	inWAL := p.Pkg.Path() == p.Config.WALPkg
	inClient := p.Config.WALClientPkgs[p.Pkg.Path()]
	if !inWAL && !inClient {
		return nil
	}
	where := "outside the framing helpers"
	if inClient {
		where = "in a WAL client package; go through the durable API"
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := p.pkgFunc(call.Fun); ok && pkg == "os" && walMutatingOSFuncs[name] {
				p.Reportf(call.Pos(), "raw os.%s %s", name, where)
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && walMutatingFileMethods[sel.Sel.Name] {
				if p.methodOn(call.Fun, "os", "File", sel.Sel.Name) {
					p.Reportf(call.Pos(), "raw (*os.File).%s %s", sel.Sel.Name, where)
				}
			}
			return true
		})
	}
	return nil
}
