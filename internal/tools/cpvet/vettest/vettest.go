// Package vettest is an analysistest-style fixture runner for the cpvet
// analyzer suite. A fixture is a directory of Go files under testdata/src
// annotated with `// want "regex"` comments; Run type-checks the fixture
// against real gc export data (resolved offline through the go command's
// build cache), applies the analyzers, and fails the test on any mismatch
// between expected and reported diagnostics — in either direction.
package vettest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/tools/cpvet"
)

// want is one expectation: a diagnostic on file:line whose message matches re.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// wantArgRE accepts analysistest's two quoting styles: backquoted (the usual
// form, since diagnostics regularly contain regex metacharacters) and
// double-quoted.
var wantArgRE = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

// exportCache memoizes `go list -export` runs per import set: most fixtures
// share the same handful of stdlib imports.
var (
	exportMu    sync.Mutex
	exportCache = map[string]map[string]string{}
)

// Run analyzes the fixture package rooted at dir (its files declare package
// importPath's last element; importPath is what the Config keys against) and
// checks the reported diagnostics against the fixture's want comments.
func Run(t *testing.T, dir, importPath string, analyzers []*cpvet.Analyzer, cfg *cpvet.Config) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	var wants []*want
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
		wants = append(wants, parseWants(t, path)...)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}

	exports := exportsFor(t, imports)
	tpkg, info, err := cpvet.Check(importPath, fset, files, cpvet.NewExportImporter(fset, exports))
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	pkg := &cpvet.Package{Path: importPath, Dir: dir, Fset: fset, Files: files, Pkg: tpkg, Info: info}
	diags, err := cpvet.AnalyzePackage(pkg, analyzers, cfg)
	if err != nil {
		t.Fatalf("analyzing fixture %s: %v", dir, err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the `// want "..."` expectations from one file by
// rescanning its source text line by line (comment positions in the AST are
// exact, but line scanning keeps the matcher independent of comment
// attachment rules).
func parseWants(t *testing.T, path string) []*want {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	var wants []*want
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		args := wantArgRE.FindAllStringSubmatch(m[1], -1)
		if len(args) == 0 {
			t.Fatalf("%s:%d: malformed want comment %q", path, i+1, line)
		}
		for _, a := range args {
			pat := a[1]
			if pat == "" {
				pat = a[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
			}
			wants = append(wants, &want{file: path, line: i + 1, re: re, raw: pat})
		}
	}
	return wants
}

// exportsFor resolves gc export data for the fixture's imports (plus their
// transitive deps) via the repo's go module, memoized per import set.
func exportsFor(t *testing.T, imports map[string]bool) map[string]string {
	t.Helper()
	pkgs := make([]string, 0, len(imports))
	for p := range imports {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	key := strings.Join(pkgs, ",")
	exportMu.Lock()
	defer exportMu.Unlock()
	if exp, ok := exportCache[key]; ok {
		return exp
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	exp, err := cpvet.LoadExports(root, pkgs)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	exportCache[key] = exp
	return exp
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
