package cpvet

import (
	"go/ast"
)

// UnlockPath checks that every mutex acquisition is released on every
// control-flow path out of the function.
//
// For each mu.Lock() / mu.RLock() in a concurrency-scoped package, the
// analyzer walks the CFG forward: a path is covered once it executes a
// matching Unlock (same receiver expression, same read/write half) or passes
// a `defer mu.Unlock()` — deferred releases fire on every later exit,
// panics included, which is exactly why they are the sanctioned idiom. A
// path that reaches the function exit (an explicit return, falling off the
// end, or a panic/os.Exit edge) still holding the lock is a leak: the next
// acquirer deadlocks.
//
// An intentionally cross-function release (lock here, unlock in a callee or
// a later callback) is silenced with //cpvet:allow unlockpath -- <why>.
var UnlockPath = &Analyzer{
	Name: "unlockpath",
	Doc:  "flags mutex Lock calls not released on every CFG path (use defer or unlock on all returns)",
	Run:  runUnlockPath,
}

func runUnlockPath(p *Pass) error {
	if !p.Config.ConcurrencyPkgs[p.Pkg.Path()] {
		return nil
	}
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			g := buildCFG(fb.body, p.TypesInfo)
			for _, blk := range g.blocks {
				for i, s := range blk.nodes {
					ref, ok := stmtMutexOp(p, s)
					if !ok || (ref.op != opLock && ref.op != opRLock) {
						continue
					}
					key := heldKey{display: ref.display, read: ref.read()}
					if !releasedOnAllPaths(p, g, blk, i+1, key) {
						p.Reportf(s.Pos(), "%s.%s() is not released on every path; unlock before each return/panic or use defer %s.%s()",
							ref.display, lockName(ref.op), ref.display, unlockName(ref.op))
					}
				}
			}
		}
	}
	return nil
}

func lockName(op lockOp) string {
	if op == opRLock {
		return "RLock"
	}
	return "Lock"
}

func unlockName(op lockOp) string {
	if op == opRLock {
		return "RUnlock"
	}
	return "Unlock"
}

// stmtMutexOp recognizes a top-level `mu.Lock()`-style statement.
func stmtMutexOp(p *Pass, s ast.Stmt) (lockRef, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return lockRef{}, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return lockRef{}, false
	}
	return mutexOp(p.TypesInfo, p.Pkg, call)
}

// releasedOnAllPaths explores every path from blk.nodes[start] and reports
// whether each one releases key before reaching the function exit. A path is
// credited when it executes a matching unlock statement or passes a defer
// that releases the key (directly or inside a deferred closure).
func releasedOnAllPaths(p *Pass, g *funcCFG, blk *cfgBlock, start int, key heldKey) bool {
	// visited guards block *entries*; the initial partial block is walked
	// once from start and never revisited as a partial.
	visited := make(map[*cfgBlock]bool)
	type frame struct {
		blk   *cfgBlock
		start int
	}
	stack := []frame{{blk, start}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		released := false
		for _, s := range fr.blk.nodes[fr.start:] {
			if ref, ok := stmtMutexOp(p, s); ok &&
				(ref.op == opUnlock || ref.op == opRUnlock) &&
				ref.display == key.display && ref.read() == key.read {
				released = true
				break
			}
			if d, ok := s.(*ast.DeferStmt); ok && deferReleases(p, d, key) {
				released = true
				break
			}
		}
		if released {
			continue
		}
		for _, succ := range fr.blk.succs {
			if succ == g.exit {
				return false // reached exit still holding key
			}
			if !visited[succ] {
				visited[succ] = true
				stack = append(stack, frame{succ, 0})
			}
		}
	}
	return true
}

// deferReleases reports whether the defer statement releases key: either
// `defer mu.Unlock()` directly, or a deferred closure that contains a
// matching unlock anywhere in its body (conditional unlocks inside the
// closure are credited optimistically).
func deferReleases(p *Pass, d *ast.DeferStmt, key heldKey) bool {
	if ref, ok := mutexOp(p.TypesInfo, p.Pkg, d.Call); ok &&
		(ref.op == opUnlock || ref.op == opRUnlock) &&
		ref.display == key.display && ref.read() == key.read {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ref, ok := mutexOp(p.TypesInfo, p.Pkg, call); ok &&
			(ref.op == opUnlock || ref.op == opRUnlock) &&
			ref.display == key.display && ref.read() == key.read {
			found = true
			return false
		}
		return true
	})
	return found
}
