package cpvet

import (
	"go/ast"
	"go/types"
)

// CtxFlow flags serving-layer code that severs an incoming cancellation
// chain — the PR-5 bug class, where a batch stream kept stepping for a
// client that had already disconnected.
//
// Inside the configured context-discipline packages it reports:
//
//   - a call to context.Background() or context.TODO() inside a function
//     that already receives a context.Context or *http.Request, which
//     replaces (or shadows) the caller's cancellation with an uncancelable
//     one;
//   - an exported function or method whose context.Context parameter is
//     blank (_) or never referenced in the body — the context was dropped
//     before any blocking work it guards.
//
// Deriving a new context from the incoming one (context.WithTimeout(ctx, …))
// is fine: only Background/TODO sever the chain.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags dropped, shadowed, or replaced incoming context.Context in the serving layer",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) error {
	if !p.Config.CtxPkgs[p.Pkg.Path()] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams, hasIncoming := incomingCtx(p, fd)
			if hasIncoming {
				flagFreshContexts(p, fd)
			}
			if fd.Name.IsExported() {
				flagDroppedCtx(p, fd, ctxParams)
			}
		}
	}
	return nil
}

// incomingCtx returns the function's context.Context parameter objects and
// whether the function receives cancellation at all (a ctx param or an
// *http.Request, whose Context() carries it).
func incomingCtx(p *Pass, fd *ast.FuncDecl) (ctxParams []*paramIdent, hasIncoming bool) {
	if fd.Type.Params == nil {
		return nil, false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := p.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if isContextType(tv.Type) {
			hasIncoming = true
			for _, name := range field.Names {
				ctxParams = append(ctxParams, &paramIdent{name: name, obj: p.TypesInfo.Defs[name]})
			}
		}
		if isHTTPRequestPtr(tv.Type) {
			hasIncoming = true
		}
	}
	return ctxParams, hasIncoming
}

type paramIdent struct {
	name *ast.Ident
	obj  types.Object
}

// flagFreshContexts reports context.Background/TODO calls in the body of a
// function that already has an incoming context.
func flagFreshContexts(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := p.pkgFunc(call.Fun)
		if !ok || pkg != "context" || (name != "Background" && name != "TODO") {
			return true
		}
		p.Reportf(call.Pos(), "context.%s replaces the incoming context in %s; thread the caller's context so cancellation propagates", name, fd.Name.Name)
		return true
	})
}

// flagDroppedCtx reports exported entry points whose context parameter is
// blank or unused.
func flagDroppedCtx(p *Pass, fd *ast.FuncDecl, ctxParams []*paramIdent) {
	for _, cp := range ctxParams {
		if cp.name.Name == "_" {
			p.Reportf(cp.name.Pos(), "exported %s discards its context.Context parameter; cancellation cannot propagate", fd.Name.Name)
			continue
		}
		if cp.obj == nil {
			continue
		}
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if used {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && p.TypesInfo.Uses[id] == cp.obj {
				used = true
			}
			return true
		})
		if !used {
			p.Reportf(cp.name.Pos(), "exported %s never uses its context.Context parameter %s; cancellation cannot propagate", fd.Name.Name, cp.name.Name)
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request"
}
