package cpvet

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` statements over maps in deterministic scope.
//
// Map iteration order is randomized per process, so ranging over a map in
// replay-, journal-, or accumulation-order-critical code makes two replays of
// the same WAL (or two nodes applying the same journal) diverge. The
// sanctioned pattern is to collect the keys, sort them, and range over the
// sorted slice (see serve's sortedKeys helper); a range whose order provably
// cannot matter is silenced with //cpvet:allow maporder -- <why>.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flags range over a map in deterministic (replay-order-critical) scope",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if !p.InDeterministicScope(rs.Pos()) {
				return true
			}
			p.Reportf(rs.Pos(), "range over map %s in deterministic scope; iterate sorted keys instead", types.TypeString(tv.Type, types.RelativeTo(p.Pkg)))
			return true
		})
	}
	return nil
}
