package cpvet

// This file is cpvet's intraprocedural control-flow layer: a basic-block CFG
// over one function body, built purely from the AST. It exists so the
// concurrency analyzers (lockheld, unlockpath, lockorder, blockedlock,
// goroutine) can reason about *paths* — an early return between Lock and
// Unlock, a panic that unwinds past a critical section, a loop that
// re-acquires — instead of just spotting calls.
//
// The model is deliberately small:
//
//   - Blocks hold statements in execution order; edges are fallthrough,
//     branch, and loop back-edges. if/for/range/switch/type-switch/select/
//     goto/labeled break/continue/fallthrough are all modeled.
//   - One virtual exit block terminates every function. return edges there,
//     and so do calls that provably never return: panic, os.Exit,
//     log.Fatal*, runtime.Goexit, and testing's FailNow family.
//   - defer is recorded as an ordinary statement at the point it executes
//     (registration), not at function exit. Analyzers that care about
//     at-exit effects (unlockpath) treat "path passed the defer" as "the
//     deferred effect is armed for every later exit on that path", which is
//     exactly Go's semantics.
//   - Function literals are NOT inlined: a FuncLit body is a separate
//     function with its own CFG (it runs at some other time, on some other
//     goroutine, with its own lock state).

import (
	"go/ast"
	"go/types"
)

// cfgBlock is one straight-line run of statements plus successor edges.
type cfgBlock struct {
	index int
	nodes []ast.Stmt
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock // virtual: every return/panic path edges here
}

type labelInfo struct {
	target     *cfgBlock // goto target (start of the labeled statement)
	breakTo    *cfgBlock // set while the labeled loop/switch/select is open
	continueTo *cfgBlock // set while the labeled loop is open
}

type cfgBuilder struct {
	g    *funcCFG
	info *types.Info // nil-safe: only used to recognize never-returns calls
	cur  *cfgBlock

	breakTo    []*cfgBlock // innermost-last stacks for unlabeled break/continue
	continueTo []*cfgBlock

	labels map[string]*labelInfo
	// pendingLabel is the label naming the next loop/switch built, so its
	// break/continue targets resolve for `break L` / `continue L`.
	pendingLabel string
}

// buildCFG constructs the CFG for one function body. info may be nil (the
// never-returns recognition then falls back to the builtin panic only).
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	b := &cfgBuilder{
		g:      &funcCFG{},
		info:   info,
		labels: make(map[string]*labelInfo),
	}
	b.g.exit = b.newBlock() // index 0 is the exit by convention
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	// Falling off the end of the body is a return.
	b.edge(b.cur, b.g.exit)
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// startBlock finishes cur with an edge to next and makes next current.
func (b *cfgBuilder) startBlock(next *cfgBlock) {
	b.edge(b.cur, next)
	b.cur = next
}

// deadBlock makes an unreachable block current (after return/break/goto), so
// syntactically-following statements still get modeled without edges from the
// terminated path.
func (b *cfgBuilder) deadBlock() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// A forward goto may have pre-created this label's target block;
		// reuse it so those edges land here.
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{target: b.newBlock()}
			b.labels[s.Label.Name] = li
		}
		b.startBlock(li.target)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s) // the condition evaluates here
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.startBlock(head)
		head.nodes = append(head.nodes, s) // condition re-evaluates here
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after) // condition can be false
		}
		b.pushLoop(after, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		if s.Post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
		}
		b.edge(b.cur, head) // back edge
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		head.nodes = append(head.nodes, s)
		b.edge(head, body)
		b.edge(head, after) // range can be empty / exhausted
		b.pushLoop(after, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s) // the tag evaluates here
		b.buildSwitchBody(s.Body, switchHasDefault(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s)
		b.buildSwitchBody(s.Body, switchHasDefault(s.Body))

	case *ast.SelectStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		// Every clause is a successor; there is no implicit skip edge — with
		// no default the select blocks until a case fires, and analyzers that
		// care about the blocking itself (blockedlock) look at the statement,
		// not the edges.
		b.buildSwitchBody(s.Body, true)

	case *ast.ReturnStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		b.edge(b.cur, b.g.exit)
		b.deadBlock()

	case *ast.BranchStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		b.branch(s)

	case *ast.DeferStmt, *ast.GoStmt:
		b.cur.nodes = append(b.cur.nodes, s)

	case *ast.ExprStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.neverReturns(call) {
			b.edge(b.cur, b.g.exit)
			b.deadBlock()
		}

	default:
		// Assignments, declarations, sends, inc/dec, empty statements:
		// straight-line.
		b.cur.nodes = append(b.cur.nodes, s)
	}
}

// buildSwitchBody wires the case clauses of a switch/type-switch/select.
// noSkipEdge suppresses the implicit "no case matched" edge (a switch with a
// default, and every select).
func (b *cfgBuilder) buildSwitchBody(body *ast.BlockStmt, noSkipEdge bool) {
	head := b.cur
	after := b.newBlock()
	label := b.pendingLabel
	b.pendingLabel = ""
	if label != "" {
		b.labels[label].breakTo = after
	}
	b.breakTo = append(b.breakTo, after)
	// Pre-create clause blocks so fallthrough can edge to the next one.
	var clauses []*cfgBlock
	for range body.List {
		clauses = append(clauses, b.newBlock())
	}
	for i, cl := range body.List {
		b.edge(head, clauses[i])
		b.cur = clauses[i]
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				b.stmt(cl.Comm)
			}
			stmts = cl.Body
		}
		// fallthrough must be the last statement; handle it by edging to the
		// next clause body.
		ft := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				ft = true
				stmts = stmts[:n-1]
			}
		}
		b.stmtList(stmts)
		if ft && i+1 < len(clauses) {
			b.edge(b.cur, clauses[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	if !noSkipEdge {
		b.edge(head, after)
	}
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.cur = after
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (b *cfgBuilder) pushLoop(brk, cont *cfgBlock) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if label != "" {
		b.labels[label].breakTo = brk
		b.labels[label].continueTo = cont
	}
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.breakTo != nil {
				b.edge(b.cur, li.breakTo)
			}
		} else if n := len(b.breakTo); n > 0 {
			b.edge(b.cur, b.breakTo[n-1])
		}
		b.deadBlock()
	case "continue":
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.continueTo != nil {
				b.edge(b.cur, li.continueTo)
			}
		} else if n := len(b.continueTo); n > 0 {
			b.edge(b.cur, b.continueTo[n-1])
		}
		b.deadBlock()
	case "goto":
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				b.edge(b.cur, li.target)
				b.deadBlock()
				return
			}
			// Forward goto: the label has not been built yet. Record a
			// placeholder target now; LabeledStmt construction patches it.
			li := &labelInfo{target: b.newBlock()}
			b.labels[s.Label.Name] = li
			b.edge(b.cur, li.target)
		}
		b.deadBlock()
	case "fallthrough":
		// Handled structurally in buildSwitchBody; a stray one is a compile
		// error anyway.
	}
}

// neverReturns reports whether the call provably terminates the goroutine or
// process: the builtin panic, os.Exit, runtime.Goexit, and the log.Fatal
// family. (Test-only FailNow/Fatal never appear: Pass.Files holds no test
// files.)
func (b *cfgBuilder) neverReturns(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info == nil {
			return true
		}
		_, isBuiltin := b.info.Uses[fun].(*types.Builtin)
		return isBuiltin
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok || b.info == nil {
			return false
		}
		pn, ok := b.info.Uses[id].(*types.PkgName)
		if !ok {
			return false
		}
		switch pn.Imported().Path() {
		case "os":
			return fun.Sel.Name == "Exit"
		case "runtime":
			return fun.Sel.Name == "Goexit"
		case "log":
			switch fun.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		}
	}
	return false
}
