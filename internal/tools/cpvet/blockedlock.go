package cpvet

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// BlockedLock flags blocking operations performed while a mutex is held in a
// hot-path package. A critical section that blocks — a channel send or
// receive, a select with no default, an fsync, a group-commit wait — turns
// one slow peer into a convoy: every other goroutine needing the mutex
// queues behind the blocked holder.
//
// Blocking operations are channel sends/receives (outside select comm
// clauses, which only block if their select does), range over a channel,
// select statements without a default case, and the calls named in
// Config.BlockingCalls ("pkgpath.Func" or "pkgpath.Type.Method" — fsync,
// time.Sleep, WaitGroup.Wait, the WAL's AppendSync/AppendWait). sync.Cond
// Wait is exempt by construction: it releases the mutex while parked.
//
// A critical section that blocks by design (the WAL flusher fsyncs under
// Store.mu precisely so appenders observe a consistent synced sequence) is
// silenced with //cpvet:allow blockedlock -- <why>.
var BlockedLock = &Analyzer{
	Name: "blockedlock",
	Doc:  "flags blocking operations (channel ops, selects without default, fsync-class calls) while holding a hot-path mutex",
	Run:  runBlockedLock,
}

func runBlockedLock(p *Pass) error {
	if !p.Config.HotPathPkgs[p.Pkg.Path()] {
		return nil
	}
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			checkBlockedLock(p, fb)
		}
	}
	return nil
}

func checkBlockedLock(p *Pass, fb funcBody) {
	g := buildCFG(fb.body, p.TypesInfo)
	seed := heldSet{}
	if fb.decl != nil {
		seed = lockedSeed(p.TypesInfo, p.Pkg, fb.decl)
	}
	ff := heldFlow(p.TypesInfo, p.Pkg, g, seed)

	// Comm statements of select clauses never block on their own: the select
	// chooses a ready case (or its default).
	comms := map[ast.Stmt]bool{}
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
			comms[cc.Comm] = true
		}
		return true
	})

	for _, blk := range ff.cfg.blocks {
		held := ff.in[blk]
		if held == nil {
			continue
		}
		held = held.clone()
		for _, s := range blk.nodes {
			if len(held) > 0 {
				reportBlocking(p, s, held, comms)
			}
			applyStmt(p.TypesInfo, p.Pkg, s, held)
		}
	}
}

// reportBlocking flags the blocking operations that execute at stmt s while
// held is non-empty.
func reportBlocking(p *Pass, s ast.Stmt, held heldSet, comms map[ast.Stmt]bool) {
	holding := heldDescription(held)

	// Structural channel operations on the statement itself.
	switch st := s.(type) {
	case *ast.SendStmt:
		if !comms[s] {
			p.Reportf(st.Arrow, "channel send while holding %s", holding)
		}
	case *ast.RangeStmt:
		if tv, ok := p.TypesInfo.Types[st.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				p.Reportf(st.Pos(), "range over channel while holding %s", holding)
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(st) {
			p.Reportf(st.Pos(), "select without default while holding %s", holding)
		}
	}

	scanShallow(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !commReceive(s, comms) {
				p.Reportf(n.Pos(), "channel receive while holding %s", holding)
			}
		case *ast.CallExpr:
			if name, ok := blockingCallName(p, n); ok {
				p.Reportf(n.Pos(), "call to %s (blocking) while holding %s", name, holding)
			}
		}
		return true
	})
}

// commReceive reports whether s is the comm statement of a select clause
// (its receive does not block independently).
func commReceive(s ast.Stmt, comms map[ast.Stmt]bool) bool {
	return comms[s]
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCallName matches a call against Config.BlockingCalls, returning
// the matched key.
func blockingCallName(p *Pass, call *ast.CallExpr) (string, bool) {
	if pkgPath, name, ok := p.pkgFunc(call.Fun); ok {
		key := pkgPath + "." + name
		return key, p.Config.BlockingCalls[key]
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	for {
		if pt, ok := recv.(*types.Pointer); ok {
			recv = pt.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	return key, p.Config.BlockingCalls[key]
}

// heldDescription renders the held locks for a report, sorted for
// determinism.
func heldDescription(held heldSet) string {
	var names []string
	for k := range held {
		names = append(names, k.display)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
