// Command docverify keeps documentation honest: it extracts every ```go
// code fence from the given markdown files, turns each into a compilable
// source file against the current module, and fails if any snippet no
// longer builds — so README/ARCHITECTURE examples cannot silently rot as
// the API moves.
//
// Usage (from the module root, as `make verify-docs` does):
//
//	go run ./internal/tools/docverify README.md docs/ARCHITECTURE.md
//
// Snippet handling:
//
//   - A fence containing a `package` clause is compiled verbatim in its own
//     package directory.
//   - Any other fence is treated as statements: wrapped in a throwaway
//     function in a `docsnippets` package, with imports added by scanning
//     for well-known qualifiers (repro., fmt., time., ...) and a trailing
//     `_ = x` appended for every top-level declared name so illustrative
//     declarations don't trip "declared and not used". If statement
//     wrapping does not parse, the snippet is retried as package-level
//     declarations.
//   - A fence immediately preceded by `<!-- docverify:skip -->` is skipped
//     (for deliberately partial pseudo-code; prefer a ```text fence).
//
// Fences in other languages (sh, text, json) are ignored. Generated files
// land in a `.docverify-*` temp directory inside the module (deleted
// afterwards) so the module's own `go.mod` governs the build.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

type snippet struct {
	file string // markdown source
	line int    // 1-based line of the opening fence
	body string
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docverify FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	var snippets []snippet
	for _, path := range os.Args[1:] {
		got, err := extract(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docverify: %v\n", err)
			os.Exit(1)
		}
		snippets = append(snippets, got...)
	}
	if len(snippets) == 0 {
		fmt.Println("docverify: no ```go fences found; nothing to check")
		return
	}
	tmp, err := os.MkdirTemp(".", ".docverify-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "docverify: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmp)

	failed := false
	for i, sn := range snippets {
		if err := check(tmp, i, sn); err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "docverify: %s:%d: snippet does not build:\n%v\n", sn.file, sn.line, err)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("docverify: %d snippet(s) build cleanly\n", len(snippets))
}

// extract pulls ```go fences out of one markdown file.
func extract(path string) ([]snippet, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(b), "\n")
	var out []snippet
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		if i > 0 && strings.Contains(lines[i-1], "docverify:skip") {
			for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			}
			continue
		}
		start := i + 1
		var body []string
		for i++; i < len(lines); i++ {
			if strings.TrimSpace(lines[i]) == "```" {
				break
			}
			body = append(body, lines[i])
		}
		if i == len(lines) {
			return nil, fmt.Errorf("%s:%d: unterminated ```go fence", path, start)
		}
		out = append(out, snippet{file: path, line: start, body: strings.Join(body, "\n")})
	}
	return out, nil
}

// knownImports maps a qualifier regex to the import line it implies.
var knownImports = []struct {
	re   *regexp.Regexp
	path string
}{
	{regexp.MustCompile(`\brepro\.`), `repro "repro"`},
	{regexp.MustCompile(`\bserve\.`), `serve "repro/internal/serve"`},
	{regexp.MustCompile(`\bdurable\.`), `durable "repro/internal/durable"`},
	{regexp.MustCompile(`\bfmt\.`), `"fmt"`},
	{regexp.MustCompile(`\berrors\.`), `"errors"`},
	{regexp.MustCompile(`\btime\.`), `"time"`},
	{regexp.MustCompile(`\bmath\.`), `"math"`},
	{regexp.MustCompile(`\bstrings\.`), `"strings"`},
	{regexp.MustCompile(`\bos\.`), `"os"`},
	{regexp.MustCompile(`\blog\.`), `"log"`},
	{regexp.MustCompile(`\bcontext\.`), `"context"`},
	{regexp.MustCompile(`\bjson\.`), `"encoding/json"`},
	{regexp.MustCompile(`\bhttp\.`), `"net/http"`},
}

func importsFor(body string) string {
	var imps []string
	for _, ki := range knownImports {
		if ki.re.MatchString(body) {
			imps = append(imps, "\t"+ki.path)
		}
	}
	if len(imps) == 0 {
		return ""
	}
	return "import (\n" + strings.Join(imps, "\n") + "\n)\n\n"
}

// check materializes one snippet as Go source in its own package directory
// under tmp and builds it.
func check(tmp string, idx int, sn snippet) error {
	dir := filepath.Join(tmp, fmt.Sprintf("s%03d", idx))
	if err := os.Mkdir(dir, 0o755); err != nil {
		return err
	}
	var src string
	switch {
	case regexp.MustCompile(`(?m)^package\s+\w+`).MatchString(sn.body):
		src = sn.body
	default:
		wrapped, err := wrapStatements(idx, sn.body)
		if err != nil {
			// Maybe the fence holds package-level declarations (func/type/...)
			// rather than statements.
			declSrc := fmt.Sprintf("package docsnippets\n\n%s%s\n", importsFor(sn.body), sn.body)
			if _, derr := parser.ParseFile(token.NewFileSet(), "snippet.go", declSrc, 0); derr != nil {
				return err // report the statement-wrap error: it's the common case
			}
			src = declSrc
			break
		}
		src = wrapped
	}
	path := filepath.Join(dir, "snippet.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		return err
	}
	cmd := exec.Command("go", "build", "./"+filepath.ToSlash(dir))
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("%s\n--- generated source ---\n%s", out, src)
	}
	return nil
}

// wrapStatements turns a statement fence into a package with one throwaway
// function, appending `_ = name` for every name the snippet declares at the
// top level of the function so illustrative bindings compile.
func wrapStatements(idx int, body string) (string, error) {
	header := "package docsnippets\n\n" + importsFor(body)
	src := fmt.Sprintf("%sfunc snippet%d() {\n%s\n}\n", header, idx, body)
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, 0)
	if err != nil {
		return "", fmt.Errorf("as statements: %w", err)
	}
	var uses []string
	seen := map[string]bool{}
	add := func(id *ast.Ident) {
		if id.Name != "_" && !seen[id.Name] {
			seen[id.Name] = true
			uses = append(uses, "\t_ = "+id.Name)
		}
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		for _, stmt := range fn.Body.List {
			switch st := stmt.(type) {
			case *ast.AssignStmt:
				if st.Tok == token.DEFINE {
					for _, lhs := range st.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							add(id)
						}
					}
				}
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, id := range vs.Names {
								add(id)
							}
						}
					}
				}
			}
		}
	}
	if len(uses) == 0 {
		return src, nil
	}
	return fmt.Sprintf("%sfunc snippet%d() {\n%s\n%s\n}\n", header, idx, body, strings.Join(uses, "\n")), nil
}
