// Command benchcompare diffs two benchjson files (see internal/tools/benchjson)
// and fails when a benchmark regressed: any benchmark present in both files
// whose current ns/op exceeds the baseline's by more than -pct percent exits
// nonzero, with a one-line verdict per compared benchmark either way.
//
//	benchcompare -baseline bench/BENCH_baseline.json -current BENCH_2026-08-07.json \
//	             -pct 15 -match SweepPlanCache,ScanPositions
//
// -match restricts the comparison to benchmarks whose name contains one of
// the comma-separated substrings (empty = compare everything). Benchmarks
// missing from one side are reported as warnings, not failures: a rename or
// a new benchmark should update the committed baseline, not break CI.
// Improvements beyond the threshold are called out too — a committed
// baseline that lags a big win under-protects every later change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline benchjson file (required)")
	currentPath := flag.String("current", "", "current benchjson file (required)")
	pct := flag.Float64("pct", 15, "ns/op regression threshold in percent")
	match := flag.String("match", "", "comma-separated name substrings to compare (empty = all)")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fatal(fmt.Errorf("-baseline and -current are required"))
	}
	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}
	var filters []string
	for _, f := range strings.Split(*match, ",") {
		if f = strings.TrimSpace(f); f != "" {
			filters = append(filters, f)
		}
	}

	regressions := 0
	compared := 0
	for _, c := range cur {
		if !matches(c.Name, filters) {
			continue
		}
		b, ok := base[c.Name]
		if !ok {
			fmt.Printf("benchcompare: WARN %s: not in baseline (new benchmark? refresh the baseline)\n", c.Name)
			continue
		}
		if b.NsPerOp <= 0 || c.NsPerOp <= 0 {
			continue
		}
		compared++
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		switch {
		case delta > *pct:
			fmt.Printf("benchcompare: FAIL %s: %.0f ns/op vs baseline %.0f (%+.1f%%, threshold %+.1f%%)\n",
				c.Name, c.NsPerOp, b.NsPerOp, delta, *pct)
			regressions++
		case delta < -*pct:
			fmt.Printf("benchcompare: ok   %s: %.0f ns/op vs baseline %.0f (%+.1f%%) — faster than baseline; consider refreshing it\n",
				c.Name, c.NsPerOp, b.NsPerOp, delta)
		default:
			fmt.Printf("benchcompare: ok   %s: %.0f ns/op vs baseline %.0f (%+.1f%%)\n",
				c.Name, c.NsPerOp, b.NsPerOp, delta)
		}
		delete(base, c.Name)
	}
	for name := range base {
		if matches(name, filters) {
			fmt.Printf("benchcompare: WARN %s: in baseline but not in current run (renamed or deleted? refresh the baseline)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchcompare: %d of %d compared benchmark(s) regressed more than %.1f%%\n", regressions, compared, *pct)
		os.Exit(1)
	}
	fmt.Printf("benchcompare: %d benchmark(s) within %.1f%% of baseline\n", compared, *pct)
}

// load reads a benchjson file into a by-name map. A -count run repeats each
// name; the minimum ns/op wins — the best-of-N statistic is far more robust
// to scheduler noise than any single sample, so both sides of the diff
// should be produced with the same -count.
func load(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]result, len(results))
	for _, r := range results {
		if prev, ok := out[r.Name]; ok && prev.NsPerOp > 0 && (r.NsPerOp <= 0 || prev.NsPerOp <= r.NsPerOp) {
			continue
		}
		out[r.Name] = r
	}
	return out, nil
}

func matches(name string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if strings.Contains(name, f) {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(1)
}
