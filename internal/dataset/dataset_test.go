package dataset

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleIncomplete() *Incomplete {
	return MustNew([]Example{
		{Candidates: [][]float64{{0}, {1}}, Label: 0},
		{Candidates: [][]float64{{2}}, Label: 1},
		{Candidates: [][]float64{{3}, {4}, {5}}, Label: 0},
	}, 2)
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Example{{Candidates: nil, Label: 0}}, 2); err == nil {
		t.Fatal("empty candidate set accepted")
	}
	if _, err := New([]Example{{Candidates: [][]float64{{1}}, Label: 5}}, 2); err == nil {
		t.Fatal("label out of range accepted")
	}
	if _, err := New([]Example{
		{Candidates: [][]float64{{1}}, Label: 0},
		{Candidates: [][]float64{{1, 2}}, Label: 1},
	}, 2); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := New(nil, 1); err == nil {
		t.Fatal("single-label dataset accepted")
	}
}

func TestBasicAccessors(t *testing.T) {
	d := sampleIncomplete()
	if d.N() != 3 || d.MaxM() != 3 || d.TotalCandidates() != 6 {
		t.Fatalf("N=%d MaxM=%d total=%d", d.N(), d.MaxM(), d.TotalCandidates())
	}
	if got := d.UncertainRows(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("uncertain = %v", got)
	}
	if wc := d.WorldCount(); wc.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("world count = %s", wc)
	}
}

func TestFromComplete(t *testing.T) {
	d, err := FromComplete([][]float64{{1}, {2}}, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.WorldCount().Cmp(big.NewInt(1)) != 0 {
		t.Fatal("complete dataset should have one world")
	}
	if _, err := FromComplete([][]float64{{1}}, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPin(t *testing.T) {
	d := sampleIncomplete()
	p := d.Pin(2, 1)
	if p.Examples[2].M() != 1 || p.Examples[2].Candidates[0][0] != 4 {
		t.Fatalf("pin wrong: %+v", p.Examples[2])
	}
	if d.Examples[2].M() != 3 {
		t.Fatal("Pin mutated the source dataset")
	}
	if p.WorldCount().Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("pinned world count = %s", p.WorldCount())
	}
}

func TestWorld(t *testing.T) {
	d := sampleIncomplete()
	x, y := d.World([]int{1, 0, 2})
	if x[0][0] != 1 || x[1][0] != 2 || x[2][0] != 5 {
		t.Fatalf("world = %v", x)
	}
	if y[0] != 0 || y[1] != 1 || y[2] != 0 {
		t.Fatalf("labels = %v", y)
	}
}

func TestWorldIteratorEnumeratesAll(t *testing.T) {
	d := sampleIncomplete()
	seen := map[[3]int]bool{}
	it := Worlds(d)
	for {
		var key [3]int
		copy(key[:], it.Choice())
		if seen[key] {
			t.Fatalf("world %v repeated", key)
		}
		seen[key] = true
		if !it.Next() {
			break
		}
	}
	if len(seen) != 6 {
		t.Fatalf("enumerated %d worlds, want 6", len(seen))
	}
	if !it.Done() {
		t.Fatal("iterator not done")
	}
	if it.Next() {
		t.Fatal("Next after done returned true")
	}
}

func TestEnumerateWorldsLimit(t *testing.T) {
	d := sampleIncomplete()
	if err := EnumerateWorlds(d, 5, func([]int) {}); err == nil {
		t.Fatal("limit not enforced")
	}
	count := 0
	if err := EnumerateWorlds(d, 10, func([]int) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Fatalf("visited %d worlds", count)
	}
}

func TestSampleWorldInRange(t *testing.T) {
	d := sampleIncomplete()
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		choice := SampleWorld(d, rng)
		for i, c := range choice {
			if c < 0 || c >= d.Examples[i].M() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWorldCountMatchesEnumeration(t *testing.T) {
	f := func(m1, m2, m3 uint8) bool {
		ms := []int{int(m1%3) + 1, int(m2%3) + 1, int(m3%3) + 1}
		ex := make([]Example, len(ms))
		for i, m := range ms {
			cands := make([][]float64, m)
			for j := range cands {
				cands[j] = []float64{float64(i*10 + j)}
			}
			ex[i] = Example{Candidates: cands, Label: i % 2}
		}
		d := MustNew(ex, 2)
		count := 0
		if err := EnumerateWorlds(d, 1000, func([]int) { count++ }); err != nil {
			return false
		}
		return d.WorldCount().Cmp(big.NewInt(int64(count))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
