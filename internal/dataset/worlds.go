package dataset

import (
	"fmt"
	"math/big"
	"math/rand"
)

// WorldIterator enumerates every possible world of an incomplete dataset in
// odometer order (candidate indices increment like digits, last row fastest).
// Intended for brute-force verification on small datasets.
type WorldIterator struct {
	d      *Incomplete
	choice []int
	done   bool
}

// Worlds returns an iterator positioned on the first world.
func Worlds(d *Incomplete) *WorldIterator {
	return &WorldIterator{d: d, choice: make([]int, d.N())}
}

// Choice returns the current candidate-index vector. The slice is reused
// between Next calls; copy it if you need to retain it.
func (it *WorldIterator) Choice() []int { return it.choice }

// Done reports whether enumeration has finished.
func (it *WorldIterator) Done() bool { return it.done }

// Next advances to the next world; it returns false when enumeration is
// complete (the iterator is then Done and Choice is invalid).
func (it *WorldIterator) Next() bool {
	if it.done {
		return false
	}
	for i := it.d.N() - 1; i >= 0; i-- {
		it.choice[i]++
		if it.choice[i] < it.d.Examples[i].M() {
			return true
		}
		it.choice[i] = 0
	}
	it.done = true
	return false
}

// EnumerateWorlds calls fn with each possible world's candidate-choice
// vector. It refuses to enumerate more than maxWorlds worlds (guarding
// against accidental exponential blowups in tests).
func EnumerateWorlds(d *Incomplete, maxWorlds int64, fn func(choice []int)) error {
	total := d.WorldCount()
	if total.Cmp(big.NewInt(maxWorlds)) > 0 {
		return fmt.Errorf("dataset: %s possible worlds exceed limit %d", total.String(), maxWorlds)
	}
	it := Worlds(d)
	for {
		fn(it.Choice())
		if !it.Next() {
			return nil
		}
	}
}

// SampleWorld draws a uniformly random possible world's choice vector.
func SampleWorld(d *Incomplete, rng *rand.Rand) []int {
	choice := make([]int, d.N())
	for i := range d.Examples {
		choice[i] = rng.Intn(d.Examples[i].M())
	}
	return choice
}
