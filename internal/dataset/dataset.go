// Package dataset implements the paper's incomplete-dataset model
// (Definition 1): a finite set of examples whose feature vector is known
// only up to a candidate set C_i, together with the induced possible-world
// semantics (Definition 2).
package dataset

import (
	"fmt"
	"math/big"
)

// Example is one training example with incomplete information: the true
// feature vector is one of Candidates (the paper's C_i); the label is known.
type Example struct {
	// Candidates holds the possible feature vectors x_{i,1..M_i}. A clean
	// (certain) example has exactly one candidate.
	Candidates [][]float64
	// Label is the class label y_i in [0, NumLabels).
	Label int
}

// M returns the candidate count |C_i|.
func (e *Example) M() int { return len(e.Candidates) }

// IsCertain reports whether the example has a single candidate.
func (e *Example) IsCertain() bool { return len(e.Candidates) == 1 }

// Incomplete is the paper's incomplete dataset D = {(C_i, y_i)}.
type Incomplete struct {
	Examples  []Example
	NumLabels int
}

// New validates and constructs an incomplete dataset.
func New(examples []Example, numLabels int) (*Incomplete, error) {
	if numLabels < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 labels, got %d", numLabels)
	}
	var dim = -1
	for i, e := range examples {
		if len(e.Candidates) == 0 {
			return nil, fmt.Errorf("dataset: example %d has an empty candidate set", i)
		}
		if e.Label < 0 || e.Label >= numLabels {
			return nil, fmt.Errorf("dataset: example %d label %d out of range [0,%d)", i, e.Label, numLabels)
		}
		for j, c := range e.Candidates {
			if dim == -1 {
				dim = len(c)
			}
			if len(c) != dim {
				return nil, fmt.Errorf("dataset: example %d candidate %d has dim %d, want %d", i, j, len(c), dim)
			}
		}
	}
	return &Incomplete{Examples: examples, NumLabels: numLabels}, nil
}

// MustNew is New but panics on error.
func MustNew(examples []Example, numLabels int) *Incomplete {
	d, err := New(examples, numLabels)
	if err != nil {
		panic(err)
	}
	return d
}

// FromComplete wraps a complete dataset (one candidate per example).
func FromComplete(x [][]float64, y []int, numLabels int) (*Incomplete, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("dataset: %d vectors, %d labels", len(x), len(y))
	}
	ex := make([]Example, len(x))
	for i := range x {
		ex[i] = Example{Candidates: [][]float64{x[i]}, Label: y[i]}
	}
	return New(ex, numLabels)
}

// N returns the number of examples.
func (d *Incomplete) N() int { return len(d.Examples) }

// MaxM returns the largest candidate-set size.
func (d *Incomplete) MaxM() int {
	m := 0
	for i := range d.Examples {
		if mm := d.Examples[i].M(); mm > m {
			m = mm
		}
	}
	return m
}

// TotalCandidates returns Σ_i |C_i|.
func (d *Incomplete) TotalCandidates() int {
	s := 0
	for i := range d.Examples {
		s += d.Examples[i].M()
	}
	return s
}

// UncertainRows returns the indices of examples with more than one candidate.
func (d *Incomplete) UncertainRows() []int {
	var out []int
	for i := range d.Examples {
		if !d.Examples[i].IsCertain() {
			out = append(out, i)
		}
	}
	return out
}

// WorldCount returns |I_D| = Π_i |C_i| as a big integer.
func (d *Incomplete) WorldCount() *big.Int {
	total := big.NewInt(1)
	for i := range d.Examples {
		total.Mul(total, big.NewInt(int64(d.Examples[i].M())))
	}
	return total
}

// Pin returns a copy of d with example row fixed to its cand-th candidate
// (the effect of cleaning that row to a specific repair).
func (d *Incomplete) Pin(row, cand int) *Incomplete {
	ex := append([]Example(nil), d.Examples...)
	ex[row] = Example{
		Candidates: [][]float64{d.Examples[row].Candidates[cand]},
		Label:      d.Examples[row].Label,
	}
	return &Incomplete{Examples: ex, NumLabels: d.NumLabels}
}

// World materializes the possible world selected by choice (choice[i] is the
// candidate index for example i) as parallel feature/label slices.
func (d *Incomplete) World(choice []int) ([][]float64, []int) {
	x := make([][]float64, d.N())
	y := make([]int, d.N())
	for i := range d.Examples {
		x[i] = d.Examples[i].Candidates[choice[i]]
		y[i] = d.Examples[i].Label
	}
	return x, y
}
