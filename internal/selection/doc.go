// Package selection is the shared greedy entropy-selection engine behind
// CPClean (paper §4, Eq. 4): given one pinnable CP-query engine per
// validation point, it repeatedly scores candidate training rows by the
// expected conditional entropy of the validation predictions under the
// hypothetical cleaning of each row, and returns the minimizers.
//
// Both iterative cleaners — the library loop (cleaning.CPClean and the
// shared runState of RandomClean) and the serving layer's streaming
// CleanSession — drive the same Selector, so the selection logic and its
// exact prunings live in one place.
//
// # Prunings and the cross-round memo
//
// Beyond the two per-round prunings the paper already licenses (certain
// validation points contribute zero entropy forever; rows outside a point's
// top-K relevance set cannot move its Q2 distribution), the Selector reuses
// work *across* rounds: the per-(row, validation point) hypothesis entropy
// sums are memoized, and pinning row r invalidates only the memo of
// validation points r was relevant to. For every other point v the pin
// provably changes nothing — r can never enter v's top-K in any world, so
// v's Q2 distribution, v's relevance mask, and every hypothesis distribution
// over v are bit-for-bit identical before and after the pin (the lemma
// core.Engine.RelevantRows documents, verified by
// core.TestIrrelevantPinLeavesHypothesesUnchanged) — so round t+1 rescans
// only the (row, point) pairs the round-t pin actually touched.
//
// When a pin does invalidate a point's memo, the point's current entropy and
// relevance mask rescore through the retained-tree query mode
// (core.Retained): the pin replays as segment-tree leaf deltas inside the
// pinned row's candidate-span window instead of a fresh O(NM·K²·log N)
// SS-DC sweep, with bit-identical results (Retained's exactness contract).
// Config.DisableRetained ablates this back to full sweeps.
//
// # Invariants
//
//   - PinGeneration staleness: a memo is trusted only while its recorded
//     generation equals the engine's core.Engine.PinGeneration. Any pin the
//     Selector did not account for (or an engine reset) bumps the
//     generation and forces a rebuild, so out-of-band pinning can degrade
//     performance but never correctness.
//   - Determinism: SelectBatch breaks entropy ties toward the smaller row
//     index, and the memo only ever reuses values that are provably
//     bit-identical to a full rescore (the relevance lemma), so a cleaning
//     run — and its examined-hypotheses counts — is reproducible given the
//     same inputs. The serving layer's resume-after-disconnect and
//     crash-recovery guarantees (internal/serve, internal/durable) are
//     built on exactly this property.
//   - Single-goroutine driving: one cleaning run drives its Selector from
//     one goroutine; internal scoring fans out across a bounded worker pool,
//     but Pin/SelectBatch themselves are not safe for concurrent use.
//   - The certainty mask passed to New is aliased, not copied: the caller
//     refreshes it after each pin (binary-MM and threshold callers use
//     different predicates) and the Selector reads it at selection time.
package selection
