package selection

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
)

// randDataset builds a deterministic random incomplete dataset with
// label-dependent cluster centers and uncertainFrac of rows carrying m
// jittered candidates.
func randDataset(t testing.TB, n, m, numLabels, dim int, uncertainFrac float64, seed int64) *dataset.Incomplete {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	examples := make([]dataset.Example, n)
	for i := range examples {
		label := rng.Intn(numLabels)
		if i < numLabels {
			label = i
		}
		base := make([]float64, dim)
		for d := range base {
			base[d] = float64(label) + rng.NormFloat64()
		}
		cands := [][]float64{base}
		if rng.Float64() < uncertainFrac {
			for j := 1; j < m; j++ {
				c := make([]float64, dim)
				for d := range c {
					c[d] = base[d] + rng.NormFloat64()
				}
				cands = append(cands, c)
			}
		}
		examples[i] = dataset.Example{Candidates: cands, Label: label}
	}
	return dataset.MustNew(examples, numLabels)
}

// harness is one independent cleaning state: engines, certainty, selector.
type harness struct {
	d       *dataset.Incomplete
	k       int
	engines []*core.Engine
	certain []bool
	sel     *Selector
}

func newHarness(t *testing.T, d *dataset.Incomplete, valPts [][]float64, k int, cfg Config) *harness {
	t.Helper()
	h := &harness{d: d, k: k}
	h.engines = make([]*core.Engine, len(valPts))
	h.certain = make([]bool, len(valPts))
	for v, p := range valPts {
		h.engines[v] = core.NewEngine(d, knn.NegEuclidean{}, p)
	}
	pool, err := core.NewScratchPool(h.engines[0], k)
	if err != nil {
		t.Fatal(err)
	}
	h.refreshCertainty(t)
	cfg.K = k
	sel, err := New(h.engines, h.certain, pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.sel = sel
	return h
}

func (h *harness) refreshCertainty(t *testing.T) {
	t.Helper()
	sc := h.engines[0].MustScratch(h.k)
	for v, e := range h.engines {
		if h.certain[v] {
			continue
		}
		if e.Instance().NumLabels == 2 {
			ok, err := e.IsCertainMM(h.k)
			if err != nil {
				t.Fatal(err)
			}
			h.certain[v] = ok
		} else {
			h.certain[v] = core.IsCertain(e.Counts(sc, -1, -1))
		}
	}
}

func (h *harness) allCertain() bool {
	for _, c := range h.certain {
		if !c {
			return false
		}
	}
	return true
}

func (h *harness) candidateRows() []int {
	var rows []int
	for i := 0; i < h.d.N(); i++ {
		if h.engines[0].Pin(i) < 0 && h.d.Examples[i].M() > 1 {
			rows = append(rows, i)
		}
	}
	return rows
}

func randPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = 2 * rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// runLockstep drives incremental and full-rescore selectors through one full
// greedy cleaning run, asserting identical selections and scores each round.
// Returns the per-selector lifetime scan counts.
func runLockstep(t *testing.T, numLabels int, useMC bool, seed int64) (inc, full int64) {
	t.Helper()
	d := randDataset(t, 28, 3, numLabels, 2, 0.6, seed)
	valPts := randPoints(10, 2, seed+1)
	a := newHarness(t, d, valPts, 3, Config{UseMC: useMC})
	b := newHarness(t, d, valPts, 3, Config{UseMC: useMC, DisableCache: true})
	rng := rand.New(rand.NewSource(seed + 2))
	for round := 0; ; round++ {
		if round > d.N() {
			t.Fatal("run did not terminate")
		}
		if a.allCertain() {
			break
		}
		rows := a.candidateRows()
		if len(rows) == 0 {
			break
		}
		batch := 1 + rng.Intn(2)
		rowsA, hA, _ := a.sel.SelectBatch(rows, batch)
		rowsB, hB, _ := b.sel.SelectBatch(rows, batch)
		if len(rowsA) != len(rowsB) {
			t.Fatalf("round %d: batch sizes diverged: %v vs %v", round, rowsA, rowsB)
		}
		for i := range rowsA {
			if rowsA[i] != rowsB[i] {
				t.Fatalf("round %d: incremental selected %v, full rescore %v", round, rowsA, rowsB)
			}
			if hA[i] != hB[i] {
				t.Fatalf("round %d: entropy diverged for row %d: %v vs %v", round, rowsA[i], hA[i], hB[i])
			}
		}
		// Clean only the first of the batch (pin timing relative to the next
		// scoring round is what the memo must survive).
		cand := rng.Intn(d.Examples[rowsA[0]].M())
		a.sel.Pin(rowsA[0], cand)
		b.sel.Pin(rowsB[0], cand)
		a.refreshCertainty(t)
		b.refreshCertainty(t)
	}
	ia, _ := a.sel.Stats()
	ib, _ := b.sel.Stats()
	return ia, ib
}

// TestIncrementalMatchesFullRescore is the central property test: across a
// whole multi-round greedy run, the memoized selector returns exactly the
// rows and entropies of per-round full rescoring, for binary SS-DC,
// multi-class, and the MC query path.
func TestIncrementalMatchesFullRescore(t *testing.T) {
	cases := []struct {
		name      string
		numLabels int
		useMC     bool
		seed      int64
	}{
		{"binary", 2, false, 101},
		{"multiclass", 3, false, 202},
		{"binary-mc", 2, true, 303},
	}
	savedSomewhere := false
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			inc, full := runLockstep(t, c.numLabels, c.useMC, c.seed)
			if inc > full {
				t.Fatalf("incremental performed MORE scans than full rescore: %d vs %d", inc, full)
			}
			if inc < full {
				savedSomewhere = true
			}
		})
	}
	if !savedSomewhere {
		t.Fatal("memo never saved a single scan across all cases; cache is inert")
	}
}

// TestRetainedRescoreLockstep drives the default selector (retained-tree
// delta rescore) and the DisableRetained ablation (full SS-DC sweep per
// invalidated point) through a whole run: identical selections and scores
// every round, and the retained stats must show the delta path actually
// fired instead of degenerating to full rescans.
func TestRetainedRescoreLockstep(t *testing.T) {
	d := randDataset(t, 30, 3, 2, 2, 0.6, 404)
	valPts := randPoints(10, 2, 405)
	a := newHarness(t, d, valPts, 3, Config{})
	b := newHarness(t, d, valPts, 3, Config{DisableRetained: true})
	rng := rand.New(rand.NewSource(406))
	for round := 0; round <= d.N() && !a.allCertain(); round++ {
		rows := a.candidateRows()
		if len(rows) == 0 {
			break
		}
		rowsA, hA, _ := a.sel.SelectBatch(rows, 1)
		rowsB, hB, _ := b.sel.SelectBatch(rows, 1)
		if rowsA[0] != rowsB[0] || hA[0] != hB[0] {
			t.Fatalf("round %d: retained rescore selected row %d (H=%v), full sweep row %d (H=%v)",
				round, rowsA[0], hA[0], rowsB[0], hB[0])
		}
		cand := rng.Intn(d.Examples[rowsA[0]].M())
		a.sel.Pin(rowsA[0], cand)
		b.sel.Pin(rowsB[0], cand)
		a.refreshCertainty(t)
		b.refreshCertainty(t)
	}
	st := a.sel.RetainedStats()
	if st.FullScans == 0 {
		t.Fatalf("no initial full scans recorded: %+v", st)
	}
	if st.DeltaScans+st.MemoHits == 0 {
		t.Fatalf("retained rescore never reused work across pins: %+v", st)
	}
	if off := b.sel.RetainedStats(); off.FullScans+off.DeltaScans+off.MemoHits != 0 {
		t.Fatalf("DisableRetained still touched the retained path: %+v", off)
	}
}

// TestSelectorSurvivesOutOfBandPins pins engines directly (bypassing
// Selector.Pin) and checks the pin-generation staleness hook forces a
// recompute instead of serving stale memos.
func TestSelectorSurvivesOutOfBandPins(t *testing.T) {
	d := randDataset(t, 24, 3, 2, 2, 0.6, 77)
	valPts := randPoints(8, 2, 78)
	a := newHarness(t, d, valPts, 3, Config{})
	b := newHarness(t, d, valPts, 3, Config{DisableCache: true})
	rng := rand.New(rand.NewSource(79))
	for round := 0; round < 6 && !a.allCertain(); round++ {
		rows := a.candidateRows()
		if len(rows) == 0 {
			break
		}
		rowsA, hA, _ := a.sel.SelectBatch(rows, 1)
		rowsB, hB, _ := b.sel.SelectBatch(rows, 1)
		if rowsA[0] != rowsB[0] || hA[0] != hB[0] {
			t.Fatalf("round %d diverged after out-of-band pins: row %d (H=%v) vs row %d (H=%v)",
				round, rowsA[0], hA[0], rowsB[0], hB[0])
		}
		cand := rng.Intn(d.Examples[rowsA[0]].M())
		// Out-of-band: mutate the engines behind both selectors' backs.
		for _, e := range a.engines {
			e.SetPin(rowsA[0], cand)
		}
		for _, e := range b.engines {
			e.SetPin(rowsB[0], cand)
		}
		a.refreshCertainty(t)
		b.refreshCertainty(t)
	}
}

// TestSkipCertainAblation checks DisableSkipCertain scores certain points
// too, costing extra scans but never changing which rows exist to score.
func TestSkipCertainAblation(t *testing.T) {
	d := randDataset(t, 24, 3, 2, 2, 0.5, 55)
	valPts := randPoints(8, 2, 56)
	plain := newHarness(t, d, valPts, 3, Config{DisableCache: true})
	noskip := newHarness(t, d, valPts, 3, Config{DisableCache: true, DisableSkipCertain: true})
	rows := plain.candidateRows()
	if len(rows) == 0 {
		t.Skip("no uncertain rows")
	}
	_, _, exPlain := plain.sel.SelectBatch(rows, 1)
	_, _, exNoskip := noskip.sel.SelectBatch(rows, 1)
	certains := 0
	for _, c := range plain.certain {
		if c {
			certains++
		}
	}
	if certains > 0 && exNoskip <= exPlain {
		t.Fatalf("ablation with %d certain points examined %d hypotheses, skip path %d — skip lemma saved nothing",
			certains, exNoskip, exPlain)
	}
}

// TestNewValidation covers constructor error paths.
func TestNewValidation(t *testing.T) {
	d := randDataset(t, 10, 2, 2, 2, 0.5, 91)
	e := core.NewEngine(d, knn.NegEuclidean{}, []float64{0, 0})
	pool, err := core.NewScratchPool(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, nil, pool, Config{K: 3}); err == nil {
		t.Fatal("accepted zero engines")
	}
	if _, err := New([]*core.Engine{e}, make([]bool, 2), pool, Config{K: 3}); err == nil {
		t.Fatal("accepted mismatched certainty mask")
	}
	if _, err := New([]*core.Engine{e}, make([]bool, 1), pool, Config{K: 0}); err == nil {
		t.Fatal("accepted K=0")
	}
	if _, err := New([]*core.Engine{e}, make([]bool, 1), nil, Config{K: 3}); err == nil {
		t.Fatal("accepted nil scratch pool")
	}
}
