package selection

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
)

// Config tunes a Selector.
type Config struct {
	// K is the number of neighbors (must match the engines' query K).
	K int
	// Parallelism bounds scoring workers (0 = GOMAXPROCS).
	Parallelism int
	// SweepWorkers bounds the span-parallel sweep used when a cold
	// (memo-invalidated) validation point rescores through its retained
	// tree (0 or 1 = sequential). Cold rescores run one point at a time
	// inside refresh, so this budget does not multiply with Parallelism;
	// answers are bit-identical either way.
	SweepWorkers int
	// UseMC answers hypothesis Q2 with the multi-class winner-cap DP
	// (CountsMC per candidate) instead of the combined HypothesisCounts scan.
	UseMC bool
	// DisableSkipCertain scores certain validation points too — the §4
	// ablation of the CP'ed-points-stay-CP'ed lemma.
	DisableSkipCertain bool
	// DisableCache turns OFF the cross-round hypothesis memo, rescoring
	// every (row, validation point) pair from scratch each round — the
	// pre-incremental behavior, kept as an ablation/benchmark baseline.
	// It also bypasses the retained-tree rescore so the baseline really is
	// the full pre-incremental cost.
	DisableCache bool
	// DisableRetained turns OFF the retained-tree delta rescore of
	// invalidated validation points (core.Retained), falling back to a full
	// SS-DC sweep per invalidated point per round — the ablation that
	// isolates the tentpole's win.
	DisableRetained bool
}

// valMemo is the per-validation-point cache. It is valid for exactly one
// engine cleaning state, identified by the engine's pin generation.
type valMemo struct {
	// fresh marks curH/relevant/hypSum as matching the engine state with
	// pin generation gen. Pinning a row relevant to this point clears it.
	fresh bool
	gen   uint64
	// curH is the entropy of the point's current (no-hypothesis) Q2
	// distribution — the score contribution of every irrelevant row.
	curH float64
	// relevant[i] reports whether row i can enter the point's top-K in any
	// world under the current pins (core.Engine.RelevantRows).
	relevant []bool
	// hypSum[i] memoizes Σ_j H(Q2 | clean row i → candidate j); NaN marks
	// a pair not yet scanned under the current state.
	hypSum []float64
}

// Selector owns the scoring machinery of one cleaning run. It shares the
// caller's engines and certainty mask: the caller refreshes certainty after
// each pin (the predicate differs between binary-MM and threshold callers)
// and the Selector reads the mask at selection time. Not safe for
// concurrent use; one cleaning run must drive it from one goroutine.
type Selector struct {
	engines   []*core.Engine
	certain   []bool
	scratches *core.ScratchPool
	cfg       Config
	memos     []valMemo
	// retained holds one retained-tree query mode per validation point,
	// built lazily: when a pin invalidates a point's memo, its current
	// entropy and relevance mask rescore through segment-tree leaf deltas
	// (O(K²·log N) tree work inside the pinned row's candidate span) instead
	// of a fresh O(NM·K²·log N) SS-DC sweep, bit-identical by Retained's
	// exactness contract.
	retained []*core.Retained

	examined int64 // hypothesis Q2 scans actually performed
	reused   int64 // scans avoided by the cross-round memo
}

// New builds a Selector over one engine per validation point. certain is
// aliased, not copied: the caller keeps updating it in place and the
// Selector observes the updates. scratches must produce Scratches
// compatible with every engine at cfg.K (all engines of one dataset share a
// shape, so any dataset pool works).
func New(engines []*core.Engine, certain []bool, scratches *core.ScratchPool, cfg Config) (*Selector, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("selection: needs at least one validation engine")
	}
	if len(engines) != len(certain) {
		return nil, fmt.Errorf("selection: %d engines but %d certainty entries", len(engines), len(certain))
	}
	if cfg.K <= 0 || cfg.K > engines[0].N() {
		return nil, fmt.Errorf("selection: K=%d out of range for N=%d", cfg.K, engines[0].N())
	}
	if scratches == nil {
		return nil, fmt.Errorf("selection: needs a scratch pool")
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Selector{
		engines:   engines,
		certain:   certain,
		scratches: scratches,
		cfg:       cfg,
		memos:     make([]valMemo, len(engines)),
		retained:  make([]*core.Retained, len(engines)),
	}, nil
}

// Pin records the cleaning of row to cand: every engine is pinned, and each
// validation point's memo is kept or dropped by the invalidation lemma — if
// the row could never enter the point's top-K under the pre-pin state, the
// pin changes neither the point's Q2 distribution nor any hypothesis
// distribution over it, so the memoized entropies remain exact; otherwise
// the memo is rebuilt on the next SelectBatch.
func (s *Selector) Pin(row, cand int) {
	for v := range s.engines {
		e := s.engines[v]
		m := &s.memos[v]
		wasFresh := m.fresh && e.PinGeneration() == m.gen
		e.SetPin(row, cand)
		switch {
		case !wasFresh:
			m.fresh = false
		case m.relevant[row]:
			m.fresh = false
		default:
			m.gen = e.PinGeneration() // memo still matches the engine
		}
	}
}

// Stats reports lifetime hypothesis Q2 scans: performed and avoided by the
// cross-round memo.
func (s *Selector) Stats() (examined, reused int64) {
	return s.examined, s.reused
}

// refresh rebuilds stale memos for the given validation points: relevance
// mask, current entropy, and a cleared hypothesis table. The rebuild routes
// through the point's retained-tree mode — the pins that invalidated the
// memo replay as leaf deltas inside their candidate-span window, not as a
// fresh SS-DC sweep — unless an ablation flag forces the full-sweep path.
// With DisableCache every memo is rebuilt every round.
func (s *Selector) refresh(valIdx []int) {
	var sc *core.Scratch
	useRetained := !s.cfg.DisableCache && !s.cfg.DisableRetained
	for _, v := range valIdx {
		e := s.engines[v]
		m := &s.memos[v]
		if !s.cfg.DisableCache && m.fresh && e.PinGeneration() == m.gen {
			continue
		}
		if useRetained {
			rt := s.retained[v]
			if rt == nil {
				var err error
				rt, err = core.NewRetained(e, s.cfg.K, s.cfg.UseMC, s.scratches)
				if err != nil {
					// K was validated by New; an error here is a programming
					// bug, same contract as MustScratch.
					panic(err)
				}
				rt.ConfigureSweep(core.SweepConfig{Workers: s.cfg.SweepWorkers})
				s.retained[v] = rt
			}
			m.curH = core.Entropy(rt.Counts())
			m.relevant = rt.Relevant()
		} else {
			if sc == nil {
				sc = s.scratches.Get()
			}
			m.relevant = e.RelevantRows(s.cfg.K)
			if s.cfg.UseMC {
				m.curH = core.Entropy(e.CountsMC(sc, -1, -1))
			} else {
				m.curH = core.Entropy(e.Counts(sc, -1, -1))
			}
		}
		if m.hypSum == nil {
			m.hypSum = make([]float64, e.N())
		}
		for i := range m.hypSum {
			m.hypSum[i] = math.NaN()
		}
		m.gen = e.PinGeneration()
		m.fresh = true
	}
	if sc != nil {
		s.scratches.Put(sc)
	}
}

// RetainedStats aggregates the retained-tree rescore counters across every
// validation point: how many current-entropy rescores were answered from the
// memo, by windowed delta replay, or by a full sweep, and the boundary
// candidates scanned versus avoided.
func (s *Selector) RetainedStats() core.RetainedStats {
	var agg core.RetainedStats
	for _, rt := range s.retained {
		if rt != nil {
			agg.Add(rt.Stats())
		}
	}
	return agg
}

// SelectBatch scores every candidate row by expected conditional entropy
// (Eq. 4) and returns the `batch` lowest-entropy rows in ascending score
// order (ties toward the smaller row index — deterministic). rows must be
// uncleaned (no engine pin); examined reports the hypothesis Q2 scans this
// round actually performed, net of both prunings and the cross-round memo.
func (s *Selector) SelectBatch(rows []int, batch int) (bestRows []int, bestEntropies []float64, examined int64) {
	if len(rows) == 0 {
		return nil, nil, 0
	}
	inst := s.engines[0].Instance()
	// Uncertain validation points only: certain ones contribute zero entropy
	// under any hypothesis (unless the ablation disables the skip).
	var valIdx []int
	for v, c := range s.certain {
		if !c || s.cfg.DisableSkipCertain {
			valIdx = append(valIdx, v)
		}
	}
	s.refresh(valIdx)

	type rowScore struct {
		row     int
		entropy float64
		queries int64
		reused  int64
	}
	scores := make([]rowScore, len(rows))
	workers := s.cfg.Parallelism
	if workers > len(rows) {
		workers = len(rows)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc *core.Scratch
			defer func() {
				if sc != nil {
					s.scratches.Put(sc)
				}
			}()
			for ri := range work {
				row := rows[ri]
				m := inst.M(row)
				total := 0.0
				var queries, reused int64
				for _, v := range valIdx {
					memo := &s.memos[v]
					if !memo.relevant[row] {
						// Cleaning this row cannot change this validation
						// point's distribution: every candidate yields the
						// current entropy.
						total += memo.curH * float64(m)
						continue
					}
					if sum := memo.hypSum[row]; !math.IsNaN(sum) {
						// Memoized from an earlier round; still exact because
						// no relevant pin has landed on this point since.
						total += sum
						reused += int64(m)
						continue
					}
					e := s.engines[v]
					if sc == nil {
						sc = s.scratches.Get()
					}
					sum := 0.0
					if s.cfg.UseMC {
						// The multi-class path answers each pin separately.
						for j := 0; j < m; j++ {
							sum += core.Entropy(e.CountsMC(sc, row, j))
						}
					} else {
						// All M pins from one combined scan.
						for _, p := range e.HypothesisCounts(sc, row) {
							sum += core.Entropy(p)
						}
					}
					memo.hypSum[row] = sum
					total += sum
					queries += int64(m)
				}
				// Uniform prior over the M candidates, averaged over the
				// validation set (certain examples contribute zero).
				scores[ri] = rowScore{
					row:     row,
					entropy: total / float64(m) / float64(len(s.certain)),
					queries: queries,
					reused:  reused,
				}
			}
		}()
	}
	for ri := range rows {
		work <- ri
	}
	close(work)
	wg.Wait()
	var reused int64
	for _, rs := range scores {
		examined += rs.queries
		reused += rs.reused
	}
	s.examined += examined
	s.reused += reused
	// Ascending entropy, ties toward the smaller row index (deterministic).
	sort.Slice(scores, func(a, b int) bool {
		if scores[a].entropy != scores[b].entropy {
			return scores[a].entropy < scores[b].entropy
		}
		return scores[a].row < scores[b].row
	})
	if batch > len(scores) {
		batch = len(scores)
	}
	bestRows = make([]int, 0, batch)
	bestEntropies = make([]float64, 0, batch)
	for _, rs := range scores[:batch] {
		bestRows = append(bestRows, rs.row)
		bestEntropies = append(bestEntropies, rs.entropy)
	}
	return bestRows, bestEntropies, examined
}
