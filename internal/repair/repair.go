// Package repair generates candidate repairs for missing cells and builds
// the induced incomplete dataset — the paper's §5.1 protocol: "For missing
// cells in numerical columns, we consider five candidate repairs: the
// minimum value, the 25-th percentile, the mean value, the 75-th percentile
// and the maximum value of the column. For missing cells in categorical
// columns, we also consider five candidate repairs: the top 4 most frequent
// categories and a dummy category named 'other category'. If a record i has
// multiple missing values, then the Cartesian product of all candidate
// repairs for all missing cells forms C_i."
package repair

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/table"
)

// OtherCategory is the dummy repair for categorical cells, representing any
// category outside the frequent ones; encoders map it to their shared
// "other" one-hot slot.
const OtherCategory = "__other__"

// Options configures candidate generation.
type Options struct {
	// TopCategories is the number of frequent categories offered as repairs
	// (plus OtherCategory). Default 4.
	TopCategories int
	// MaxRowCandidates caps the Cartesian product size per row. Rows whose
	// product would exceed the cap keep the first MaxRowCandidates
	// combinations in odometer order. Default 125 (three missing cells).
	MaxRowCandidates int
}

func (o Options) withDefaults() Options {
	if o.TopCategories <= 0 {
		o.TopCategories = 4
	}
	if o.MaxRowCandidates <= 0 {
		o.MaxRowCandidates = 125
	}
	return o
}

// NumericCandidates returns the paper's five-point repair set for a numeric
// column (deduplicated, order preserved).
func NumericCandidates(c *table.Column) []table.Cell {
	st := c.Stats()
	raw := []float64{st.Min, st.P25, st.Mean, st.P75, st.Max}
	var out []table.Cell
	for _, v := range raw {
		dup := false
		for _, e := range out {
			if e.Num == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, table.NumCell(v))
		}
	}
	if len(out) == 0 {
		out = append(out, table.NumCell(0))
	}
	return out
}

// CategoricalCandidates returns the top-k frequent categories plus the
// OtherCategory dummy.
func CategoricalCandidates(c *table.Column, topK int) []table.Cell {
	var out []table.Cell
	for _, cc := range c.TopCategories(topK) {
		out = append(out, table.CatCell(cc.Value))
	}
	out = append(out, table.CatCell(OtherCategory))
	return out
}

// Repairs holds the incomplete dataset induced by a dirty table plus the
// bookkeeping CPClean needs: per-row candidate overrides and the oracle's
// ground-truth choice.
type Repairs struct {
	// Dataset is the encoded incomplete dataset (one example per train row).
	Dataset *dataset.Incomplete
	// Encoder maps table rows to the feature space of Dataset's candidates.
	Encoder *table.Encoder
	// Overrides[i][j] is the cell assignment (column → repair) that produced
	// candidate j of row i; nil for certain rows' single candidate.
	Overrides [][]map[int]table.Cell
	// Truth[i] is the oracle's candidate for row i: the candidate closest to
	// the ground-truth values (the paper's simulated human).
	Truth []int
	// DirtyRows lists rows with more than one candidate.
	DirtyRows []int
}

// Generate builds the candidate sets for a dirty training table. truth must
// be the complete version of the same table (used only to position the
// oracle); pass nil if no oracle is needed (Truth will be zeros). enc must
// have been fitted on data with the same schema (typically the dirty table
// itself).
func Generate(dirty, truth *table.Table, enc *table.Encoder, opts Options) (*Repairs, error) {
	opts = opts.withDefaults()
	if truth != nil && truth.NumRows() != dirty.NumRows() {
		return nil, fmt.Errorf("repair: truth has %d rows, dirty has %d", truth.NumRows(), dirty.NumRows())
	}
	// Per-column candidate pools, computed once.
	pools := make([][]table.Cell, dirty.NumCols())
	for ci, c := range dirty.Cols {
		if c.MissingCount() == 0 {
			continue
		}
		if c.Kind == table.Numeric {
			pools[ci] = NumericCandidates(c)
		} else {
			pools[ci] = CategoricalCandidates(c, opts.TopCategories)
		}
	}

	n := dirty.NumRows()
	out := &Repairs{
		Encoder:   enc,
		Overrides: make([][]map[int]table.Cell, n),
		Truth:     make([]int, n),
	}
	examples := make([]dataset.Example, n)
	for i := 0; i < n; i++ {
		missCols := missingColumns(dirty, i)
		if len(missCols) == 0 {
			examples[i] = dataset.Example{
				Candidates: [][]float64{enc.EncodeRow(dirty, i, nil)},
				Label:      dirty.Labels[i],
			}
			out.Overrides[i] = []map[int]table.Cell{nil}
			continue
		}
		combos := cartesian(missCols, pools, opts.MaxRowCandidates)
		cands := make([][]float64, len(combos))
		for j, ov := range combos {
			cands[j] = enc.EncodeRow(dirty, i, ov)
		}
		examples[i] = dataset.Example{Candidates: cands, Label: dirty.Labels[i]}
		out.Overrides[i] = combos
		out.DirtyRows = append(out.DirtyRows, i)
		if truth != nil {
			out.Truth[i] = closestToTruth(dirty, truth, i, combos, pools)
		}
	}
	d, err := dataset.New(examples, dirty.NumLabels)
	if err != nil {
		return nil, err
	}
	out.Dataset = d
	return out, nil
}

// missingColumns lists the columns with a missing cell in row i.
func missingColumns(t *table.Table, i int) []int {
	var out []int
	for ci, c := range t.Cols {
		if c.Missing[i] {
			out = append(out, ci)
		}
	}
	return out
}

// cartesian enumerates cell assignments over the missing columns in odometer
// order, capped at limit.
func cartesian(missCols []int, pools [][]table.Cell, limit int) []map[int]table.Cell {
	idx := make([]int, len(missCols))
	var out []map[int]table.Cell
	for {
		ov := make(map[int]table.Cell, len(missCols))
		for k, ci := range missCols {
			ov[ci] = pools[ci][idx[k]]
		}
		out = append(out, ov)
		if len(out) >= limit {
			return out
		}
		k := len(missCols) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(pools[missCols[k]]) {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			return out
		}
	}
}

// closestToTruth implements the simulated human: among the row's candidates,
// pick the one minimizing per-cell distance to the ground truth. Numeric
// cells use |v − truth| scaled by the column range; categorical cells cost 0
// on exact match, 0.5 for OtherCategory when the truth is not a frequent
// category (OtherCategory is the honest answer then), and 1 otherwise.
func closestToTruth(dirty, truth *table.Table, row int, combos []map[int]table.Cell, pools [][]table.Cell) int {
	best, bestDist := 0, math.Inf(1)
	for j, ov := range combos {
		d := 0.0
		for ci, cell := range ov {
			col := truth.Cols[ci]
			if cell.Kind == table.Numeric {
				st := dirty.Cols[ci].Stats()
				scale := st.Max - st.Min
				if scale <= 0 {
					scale = 1
				}
				d += math.Abs(cell.Num-col.Nums[row]) / scale
			} else {
				tv := col.Cats[row]
				switch {
				case cell.Cat == tv:
					// exact match
				case cell.Cat == OtherCategory && !inPool(pools[ci], tv):
					d += 0.5
				default:
					d += 1
				}
			}
		}
		if d < bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// inPool reports whether category v is one of the frequent repair values.
func inPool(pool []table.Cell, v string) bool {
	for _, c := range pool {
		if c.Kind == table.Categorical && c.Cat == v {
			return true
		}
	}
	return false
}
