package repair

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

func dirtyPair(n int, seed int64) (dirty, truth *table.Table) {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	c := make([]string, n)
	labels := make([]int, n)
	cats := []string{"a", "b", "c", "d", "e", "f"}
	for i := range x {
		x[i] = float64(i)
		c[i] = cats[rng.Intn(len(cats))]
		labels[i] = i % 2
	}
	truth = table.MustNew([]*table.Column{
		table.NewNumeric("x", x),
		table.NewCategorical("c", c),
	}, labels, 2)
	dirty = truth.Clone()
	dirty.Cols[0].SetMissing(1)
	dirty.Cols[1].SetMissing(2)
	dirty.Cols[0].SetMissing(3)
	dirty.Cols[1].SetMissing(3) // row 3: two missing cells
	return dirty, truth
}

func TestNumericCandidatesFivePoint(t *testing.T) {
	c := table.NewNumeric("x", []float64{0, 1, 2, 3, 4})
	got := NumericCandidates(c)
	want := []float64{0, 1, 2, 3, 4}
	if len(got) != 5 {
		t.Fatalf("candidates = %v", got)
	}
	for i, cell := range got {
		if cell.Num != want[i] {
			t.Fatalf("candidate %d = %v, want %v", i, cell.Num, want[i])
		}
	}
}

func TestNumericCandidatesDedup(t *testing.T) {
	c := table.NewNumeric("x", []float64{5, 5, 5})
	got := NumericCandidates(c)
	if len(got) != 1 || got[0].Num != 5 {
		t.Fatalf("constant column candidates = %v", got)
	}
}

func TestCategoricalCandidates(t *testing.T) {
	c := table.NewCategorical("c", []string{"a", "a", "b", "b", "c", "d", "e"})
	got := CategoricalCandidates(c, 4)
	if len(got) != 5 {
		t.Fatalf("%d candidates", len(got))
	}
	if got[len(got)-1].Cat != OtherCategory {
		t.Fatalf("last candidate = %v", got[len(got)-1])
	}
}

func TestGenerateShapes(t *testing.T) {
	dirty, truth := dirtyPair(12, 1)
	enc := table.FitEncoder(dirty, 0)
	reps, err := Generate(dirty, truth, enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := reps.Dataset
	if d.N() != 12 {
		t.Fatalf("N = %d", d.N())
	}
	// Clean rows have one candidate.
	for _, i := range []int{0, 4, 5} {
		if d.Examples[i].M() != 1 {
			t.Fatalf("clean row %d has %d candidates", i, d.Examples[i].M())
		}
	}
	// Row 1: one numeric missing cell → 5 candidates.
	if d.Examples[1].M() != 5 {
		t.Fatalf("row 1 has %d candidates", d.Examples[1].M())
	}
	// Row 2: one categorical missing cell → 5 candidates (top-4 + other).
	if d.Examples[2].M() != 5 {
		t.Fatalf("row 2 has %d candidates", d.Examples[2].M())
	}
	// Row 3: Cartesian product 5×5 = 25.
	if d.Examples[3].M() != 25 {
		t.Fatalf("row 3 has %d candidates", d.Examples[3].M())
	}
	if got := reps.DirtyRows; len(got) != 3 {
		t.Fatalf("dirty rows = %v", got)
	}
}

func TestGenerateMaxRowCandidatesCap(t *testing.T) {
	dirty, truth := dirtyPair(12, 2)
	enc := table.FitEncoder(dirty, 0)
	reps, err := Generate(dirty, truth, enc, Options{MaxRowCandidates: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reps.Dataset.Examples {
		if m := reps.Dataset.Examples[i].M(); m > 7 {
			t.Fatalf("row %d has %d candidates, cap 7", i, m)
		}
	}
}

func TestOraclePicksClosestNumeric(t *testing.T) {
	dirty, truth := dirtyPair(12, 3)
	enc := table.FitEncoder(dirty, 0)
	reps, err := Generate(dirty, truth, enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Row 1's truth is x = 1; the candidate set is {min, p25, mean, p75,
	// max} of the observed column. The oracle must pick the numerically
	// closest.
	j := reps.Truth[1]
	ov := reps.Overrides[1][j]
	cell := ov[0]
	bestDist := -1.0
	for _, alt := range reps.Overrides[1] {
		d := alt[0].Num - 1
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			bestDist = d
		}
	}
	got := cell.Num - 1
	if got < 0 {
		got = -got
	}
	if got != bestDist {
		t.Fatalf("oracle picked %v (|Δ|=%v), best |Δ|=%v", cell.Num, got, bestDist)
	}
}

func TestOracleExactCategoricalMatch(t *testing.T) {
	// Construct a categorical column where the truth is a frequent category:
	// the oracle must select it exactly.
	truth := table.MustNew([]*table.Column{
		table.NewCategorical("c", []string{"a", "a", "a", "b", "b", "x"}),
	}, []int{0, 1, 0, 1, 0, 1}, 2)
	dirty := truth.Clone()
	dirty.Cols[0].SetMissing(0) // truth "a", the mode
	dirty.Cols[0].SetMissing(5) // truth "x", a rare category outside top-4
	enc := table.FitEncoder(dirty, 0)
	reps, err := Generate(dirty, truth, enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reps.Overrides[0][reps.Truth[0]][0].Cat; got != "a" {
		t.Fatalf("oracle chose %q for truth 'a'", got)
	}
	// Truth "x" is not among the frequent categories: OtherCategory is the
	// honest answer.
	if got := reps.Overrides[5][reps.Truth[5]][0].Cat; got != OtherCategory {
		t.Fatalf("oracle chose %q for rare truth", got)
	}
}

func TestGenerateWithoutTruth(t *testing.T) {
	dirty, _ := dirtyPair(12, 4)
	enc := table.FitEncoder(dirty, 0)
	reps, err := Generate(dirty, nil, enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range reps.Truth {
		if j != 0 {
			t.Fatal("truth indices should be zero without an oracle")
		}
	}
}

func TestGenerateRowMismatch(t *testing.T) {
	dirty, truth := dirtyPair(12, 5)
	enc := table.FitEncoder(dirty, 0)
	if _, err := Generate(dirty, truth.Subset([]int{0, 1}), enc, Options{}); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
}

func TestCandidatesEncodeDistinctly(t *testing.T) {
	dirty, truth := dirtyPair(12, 6)
	enc := table.FitEncoder(dirty, 0)
	reps, err := Generate(dirty, truth, enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Row 1's five numeric candidates must produce five distinct encodings.
	seen := map[float64]bool{}
	for _, cand := range reps.Dataset.Examples[1].Candidates {
		seen[cand[0]] = true
	}
	if len(seen) != 5 {
		t.Fatalf("only %d distinct encoded values", len(seen))
	}
}
