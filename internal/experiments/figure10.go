package experiments

import (
	"fmt"

	"repro/internal/cleaning"
)

// Figure10Point is one (dataset, |Dval|) measurement (paper Figure 10:
// gap closed and examples cleaned as the validation set grows).
type Figure10Point struct {
	Dataset     string
	ValN        int
	GapClosed   float64
	CleanedFrac float64 // fraction of dirty examples cleaned to certify
}

// Figure10ValSizes returns the validation sizes swept at a scale: the
// paper's {200, 600, 1000, 1400} scaled by ValN/1000.
func Figure10ValSizes(scale Scale) []int {
	base := scale.ValN
	fracs := []float64{0.2, 0.6, 1.0, 1.4}
	out := make([]int, len(fracs))
	for i, f := range fracs {
		v := int(f * float64(base))
		if v < 5 {
			v = 5
		}
		out[i] = v
	}
	return out
}

// RunFigure10Dataset sweeps the validation size for one dataset.
func RunFigure10Dataset(spec DatasetSpec, scale Scale, seed int64) ([]Figure10Point, error) {
	var out []Figure10Point
	for _, valN := range Figure10ValSizes(scale) {
		task, err := BuildTask(spec, scale, seed, valN)
		if err != nil {
			return nil, err
		}
		gt, err := cleaning.GroundTruthAccuracy(task)
		if err != nil {
			return nil, err
		}
		def, err := cleaning.DefaultCleanAccuracy(task)
		if err != nil {
			return nil, err
		}
		cp, err := cleaning.CPClean(task, cleaning.DefaultOptions())
		if err != nil {
			return nil, err
		}
		dirty := len(task.Repairs.DirtyRows)
		cleaned := cp.AllCertainStep
		if cleaned < 0 {
			cleaned = len(cp.Order)
		}
		frac := 0.0
		if dirty > 0 {
			frac = float64(cleaned) / float64(dirty)
		}
		out = append(out, Figure10Point{
			Dataset:     spec.Name,
			ValN:        valN,
			GapClosed:   cleaning.GapClosed(cp.FinalAccuracy, def, gt),
			CleanedFrac: frac,
		})
	}
	return out, nil
}

// RunFigure10 sweeps all datasets.
func RunFigure10(scale Scale, seed int64) ([]Figure10Point, error) {
	var out []Figure10Point
	for _, spec := range Specs() {
		pts, err := RunFigure10Dataset(spec, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("figure10 %s: %w", spec.Name, err)
		}
		out = append(out, pts...)
	}
	return out, nil
}

// Figure10Report renders the sweep.
func Figure10Report(points []Figure10Point) *Table {
	t := &Table{
		Title:   "Figure 10: varying the validation-set size |Dval|",
		Headers: []string{"Dataset", "|Dval|", "Gap Closed", "Examples Cleaned"},
	}
	for _, p := range points {
		t.AddRow(p.Dataset, fmt.Sprintf("%d", p.ValN), Pct(p.GapClosed), Pct(p.CleanedFrac))
	}
	return t
}
