package experiments

import (
	"testing"
	"time"

	"repro/internal/cleaning"
)

func TestProfileCPCleanOnce(t *testing.T) {
	spec, _ := SpecByName("Bank")
	task, err := BuildTask(spec, Small, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := cleaning.CPClean(task, cleaning.Options{EvalTestEachStep: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Bank small: %d dirty, cleaned %d, certified at %d, hypotheses evaluated %d, took %s",
		len(task.Repairs.DirtyRows), len(res.Order), res.AllCertainStep, res.ExaminedHypotheses, time.Since(start))
}
