// Package experiments reproduces every table and figure of the paper's
// evaluation (§5): Table 1 (dataset characteristics), Table 2 (end-to-end
// comparison), Figure 9 (cleaning curves vs RandomClean), Figure 10
// (validation-set size sweep), plus runtime-scaling experiments standing in
// for the complexity summary of Figure 4. See DESIGN.md §5 for the index
// and EXPERIMENTS.md for paper-vs-measured numbers.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cleaning"
	"repro/internal/knn"
	"repro/internal/missing"
	"repro/internal/repair"
	"repro/internal/synth"
	"repro/internal/table"
)

// Scale is a size preset. The paper's full sizes (Paper) make CPClean runs
// take hours on one core; Small/Medium preserve the comparisons' shape at
// tractable sizes (see DESIGN.md §4, last row).
type Scale struct {
	Name   string
	TrainN int
	ValN   int
	TestN  int
	// RandomRuns is the number of RandomClean repetitions averaged in
	// Figure 9 (the paper uses 20).
	RandomRuns int
	// MissingCellRate is the fraction of missing *cells* injected into the
	// training partition of the synthetic-error datasets (the paper's
	// "missing rate 20%"). Cells of a column go missing with probability
	// proportional to the column's feature importance (MNAR).
	MissingCellRate float64
	// Table2Seeds averages Table 2 over this many seeded repetitions (small
	// scales need it: a 300-row test set has ±2-3pp accuracy noise, which
	// the gap-closed ratio amplifies).
	Table2Seeds int
}

// Predefined scales.
var (
	// Tiny exists for benchmarks and CI: one seed, minimal sizes.
	Tiny   = Scale{Name: "tiny", TrainN: 60, ValN: 16, TestN: 100, RandomRuns: 3, MissingCellRate: 0.20, Table2Seeds: 1}
	Small  = Scale{Name: "small", TrainN: 120, ValN: 40, TestN: 300, RandomRuns: 5, MissingCellRate: 0.20, Table2Seeds: 3}
	Medium = Scale{Name: "medium", TrainN: 300, ValN: 80, TestN: 500, RandomRuns: 10, MissingCellRate: 0.20, Table2Seeds: 3}
	Paper  = Scale{Name: "paper", TrainN: 0 /* dataset native */, ValN: 1000, TestN: 1000, RandomRuns: 20, MissingCellRate: 0.20, Table2Seeds: 1}
)

// ScaleByName resolves a preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (tiny|small|medium|paper)", name)
	}
}

// DatasetSpec describes one evaluation dataset (paper Table 1).
type DatasetSpec struct {
	Name      string
	ErrorType string // "real"-style or "synthetic"
	// NativeRows/Features document the paper's characteristics.
	NativeRows  int
	Features    int
	MissingRate string // as reported in Table 1
	// Generate produces a complete table with n rows.
	Generate func(n int, seed int64) *table.Table
	// RealErrors marks datasets whose missingness pattern is intrinsic
	// (BabyProduct) rather than importance-targeted MNAR.
	RealErrors bool
}

// Specs returns the four Table 1 datasets in the paper's order.
func Specs() []DatasetSpec {
	return []DatasetSpec{
		{Name: "BabyProduct", ErrorType: "real", NativeRows: 3042, Features: 7, MissingRate: "11.8%",
			Generate: synth.BabyProduct, RealErrors: true},
		{Name: "Supreme", ErrorType: "synthetic", NativeRows: 3052, Features: 7, MissingRate: "20%",
			Generate: synth.Supreme},
		{Name: "Bank", ErrorType: "synthetic", NativeRows: 3192, Features: 8, MissingRate: "20%",
			Generate: synth.Bank},
		{Name: "Puma", ErrorType: "synthetic", NativeRows: 8192, Features: 8, MissingRate: "20%",
			Generate: synth.Puma},
	}
}

// SpecByName resolves a dataset spec (case-sensitive, as printed).
func SpecByName(name string) (DatasetSpec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("experiments: unknown dataset %q", name)
}

// ModelK is the paper's KNN parameter ("We use a KNN classifier with K=3 and
// use Euclidean distance as the similarity function").
const ModelK = 3

// Kernel returns the paper's similarity function.
func Kernel() knn.Kernel { return knn.NegEuclidean{} }

// BuildTask generates the dataset, splits it, injects missing values into
// the training partition, and assembles the cleaning task. valN overrides
// the scale's validation size when > 0 (Figure 10).
func BuildTask(spec DatasetSpec, scale Scale, seed int64, valN int) (*cleaning.Task, error) {
	trainN := scale.TrainN
	totalRows := spec.NativeRows
	if trainN > 0 {
		totalRows = trainN + scale.ValN + scale.TestN
	}
	if valN <= 0 {
		valN = scale.ValN
	} else if trainN > 0 {
		totalRows = trainN + valN + scale.TestN
	}
	full := spec.Generate(totalRows, seed)
	rng := rand.New(rand.NewSource(seed + 1000))
	split, err := full.SplitRandom(rng, valN, scale.TestN)
	if err != nil {
		return nil, err
	}
	truth := split.Train
	dirty := truth.Clone()
	if spec.RealErrors {
		// BabyProduct: extraction-error pattern at the native 11.8% rate.
		synth.InjectBabyProductErrors(dirty, 0.118, rng)
	} else {
		imp, err := missing.FeatureImportance(truth, ModelK, Kernel(), rng, 0)
		if err != nil {
			return nil, err
		}
		if err := missing.InjectMNARBiased(dirty, scale.MissingCellRate, 1.2, imp, rng); err != nil {
			return nil, err
		}
	}
	// Cap the Cartesian product at 25 candidates per row to bound CPClean's
	// per-iteration cost (the hypothesis count is Σ_i M_i); rows with three
	// or more missing cells keep a truncated candidate set.
	return cleaning.NewTask(dirty, truth, split.Val, split.Test, ModelK, Kernel(), repair.Options{MaxRowCandidates: 25})
}
