package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table used by all experiment reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with column alignment.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (title omitted).
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVLine(w, t.Headers)
	for _, row := range t.Rows {
		writeCSVLine(w, row)
	}
}

func writeCSVLine(w io.Writer, cells []string) {
	quoted := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		quoted[i] = c
	}
	fmt.Fprintf(w, "%s\n", strings.Join(quoted, ","))
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// Pct1 formats a ratio as a percentage with one decimal.
func Pct1(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// F3 formats a float with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }
