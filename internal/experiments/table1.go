package experiments

import "fmt"

// Table1Row holds one dataset's characteristics as generated at the given
// scale (paper Table 1).
type Table1Row struct {
	Dataset        string
	ErrorType      string
	Examples       int
	Features       int
	MissingRowRate float64
	MissingCell    float64
	DirtyRows      int
	Candidates     int // total candidates Σ|C_i| in the induced incomplete dataset
	PaperExamples  int
	PaperMissing   string
}

// RunTable1 generates each dataset at the scale and measures its
// characteristics.
func RunTable1(scale Scale, seed int64) ([]Table1Row, error) {
	var out []Table1Row
	for _, spec := range Specs() {
		task, err := BuildTask(spec, scale, seed, 0)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", spec.Name, err)
		}
		out = append(out, Table1Row{
			Dataset:        spec.Name,
			ErrorType:      spec.ErrorType,
			Examples:       task.Dirty.NumRows(),
			Features:       task.Dirty.NumCols(),
			MissingRowRate: task.Dirty.MissingRowRate(),
			MissingCell:    task.Dirty.MissingCellRate(),
			DirtyRows:      len(task.Repairs.DirtyRows),
			Candidates:     task.Dataset().TotalCandidates(),
			PaperExamples:  spec.NativeRows,
			PaperMissing:   spec.MissingRate,
		})
	}
	return out, nil
}

// Table1Report renders the rows.
func Table1Report(rows []Table1Row) *Table {
	t := &Table{
		Title: "Table 1: Dataset characteristics (paper values in parentheses)",
		Headers: []string{"Dataset", "Error Type", "#Examples", "#Features",
			"Missing rows", "Missing cells", "Dirty rows", "Σ|Ci|"},
	}
	for _, r := range rows {
		t.AddRow(
			r.Dataset, r.ErrorType,
			fmt.Sprintf("%d (%d)", r.Examples, r.PaperExamples),
			fmt.Sprintf("%d", r.Features),
			fmt.Sprintf("%s (%s)", Pct1(r.MissingRowRate), r.PaperMissing),
			Pct1(r.MissingCell),
			fmt.Sprintf("%d", r.DirtyRows),
			fmt.Sprintf("%d", r.Candidates),
		)
	}
	return t
}
