package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
)

// Figure4Row is one runtime measurement of a CP-query algorithm (standing in
// for the paper's Figure 4 complexity summary: SS in O(NM log NM) for K=1,
// MM in O(NM) for Q1, SS-DC in O(NM(log NM + K² log N)) in general).
type Figure4Row struct {
	Algorithm string
	Query     string // "Q1" or "Q2"
	K         int
	N, M      int
	Elapsed   time.Duration
	// PerCand is Elapsed / (N·M), the per-candidate cost; near-constant
	// growth in N demonstrates the claimed quasi-linearity.
	PerCand time.Duration
}

// scalingInstance builds a random instance of the given shape.
func scalingInstance(rng *rand.Rand, n, m, numLabels int) *core.Instance {
	sims := make([][]float64, n)
	labels := make([]int, n)
	for i := range sims {
		row := make([]float64, m)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		sims[i] = row
		labels[i] = rng.Intn(numLabels)
	}
	for l := 0; l < numLabels && l < n; l++ {
		labels[l] = l
	}
	return core.MustNewInstance(sims, labels, numLabels)
}

// timeIt measures fn with enough repetitions for stable timings.
func timeIt(fn func()) time.Duration {
	reps := 1
	for {
		start := time.Now()
		for r := 0; r < reps; r++ {
			fn()
		}
		el := time.Since(start)
		if el > 20*time.Millisecond || reps >= 1<<16 {
			return el / time.Duration(reps)
		}
		reps *= 4
	}
}

// RunFigure4 measures Q1/Q2 runtimes for each algorithm across N (fixed
// M = 5, K = 3, |Y| = 2, matching the paper's experimental model), plus the
// K = 1 fast path.
func RunFigure4(sizes []int, seed int64) []Figure4Row {
	if len(sizes) == 0 {
		sizes = []int{100, 200, 400, 800}
	}
	rng := rand.New(rand.NewSource(seed))
	const m = 5
	var out []Figure4Row
	add := func(alg, query string, k, n int, el time.Duration) {
		out = append(out, Figure4Row{Algorithm: alg, Query: query, K: k, N: n, M: m,
			Elapsed: el, PerCand: el / time.Duration(n*m)})
	}
	for _, n := range sizes {
		inst := scalingInstance(rng, n, m, 2)

		// Q2, K = 1: incremental SortScan (paper row 1: O(NM log NM)).
		add("SS (K=1 scan)", "Q2", 1, n, timeIt(func() { core.SSFastCounts(inst) }))

		// Q2, K = 3: SS-DC segment-tree scan (paper row 3).
		e := core.NewEngineFromInstance(inst)
		sc := e.MustScratch(3)
		add("SS-DC", "Q2", 3, n, timeIt(func() { e.Counts(sc, -1, -1) }))

		// Q2, K = 3: multi-class variant (appendix A.3).
		add("SS-DC-MC", "Q2", 3, n, timeIt(func() { e.CountsMC(sc, -1, -1) }))

		// Q1, K = 3: MM (paper row 2: O(NM)).
		add("MM", "Q1", 3, n, timeIt(func() {
			if _, err := e.CheckMM(3, -1, -1); err != nil {
				panic(err)
			}
		}))

		// Q1 via SS-DC for contrast (the ablation MM is compared against).
		add("SS-DC (as Q1)", "Q1", 3, n, timeIt(func() {
			core.CheckFromNormalized(e.Counts(sc, -1, -1))
		}))
	}
	return out
}

// Figure4Report renders the scaling measurements.
func Figure4Report(rows []Figure4Row) *Table {
	t := &Table{
		Title:   "Figure 4 (runtime form): CP-query algorithm scaling, M=5, |Y|=2",
		Headers: []string{"Algorithm", "Query", "K", "N", "Elapsed", "Per candidate"},
	}
	for _, r := range rows {
		t.AddRow(r.Algorithm, r.Query, fmt.Sprintf("%d", r.K), fmt.Sprintf("%d", r.N),
			r.Elapsed.String(), r.PerCand.String())
	}
	return t
}
