package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cleaning"
)

// CurvePoint is one sampled point of a cleaning trajectory.
type CurvePoint struct {
	FracCleaned    float64
	ValCertainFrac float64
	GapClosed      float64
}

// Figure9Result holds one dataset's CPClean-vs-RandomClean curves
// (paper Figure 9: % validation examples CP'ed and % gap closed vs
// % examples cleaned).
type Figure9Result struct {
	Dataset string
	CPClean []CurvePoint
	Random  []CurvePoint // averaged over Scale.RandomRuns runs

	GroundTruthAcc float64
	DefaultAcc     float64
	// CleanedToCertifyCP / Random: fraction of dirty examples cleaned until
	// every validation example was CP'ed.
	CleanedToCertifyCP     float64
	CleanedToCertifyRandom float64
}

// RunFigure9Dataset produces both trajectories for one dataset.
func RunFigure9Dataset(spec DatasetSpec, scale Scale, seed int64) (*Figure9Result, error) {
	task, err := BuildTask(spec, scale, seed, 0)
	if err != nil {
		return nil, err
	}
	res := &Figure9Result{Dataset: spec.Name}
	if res.GroundTruthAcc, err = cleaning.GroundTruthAccuracy(task); err != nil {
		return nil, err
	}
	if res.DefaultAcc, err = cleaning.DefaultCleanAccuracy(task); err != nil {
		return nil, err
	}
	gap := func(acc float64) float64 {
		return cleaning.GapClosed(acc, res.DefaultAcc, res.GroundTruthAcc)
	}
	dirty := len(task.Repairs.DirtyRows)
	if dirty == 0 {
		return nil, fmt.Errorf("figure9 %s: no dirty rows", spec.Name)
	}

	cp, err := cleaning.CPClean(task, cleaning.Options{EvalTestEachStep: true})
	if err != nil {
		return nil, err
	}
	res.CPClean = trajectory(cp, gap)
	res.CleanedToCertifyCP = certifyFrac(cp, dirty)

	// RandomClean: average ValCertainFrac and gap over aligned step indices.
	runs := scale.RandomRuns
	if runs <= 0 {
		runs = 5
	}
	sums := make([]CurvePoint, dirty+1)
	counts := make([]int, dirty+1)
	certifySum := 0.0
	for r := 0; r < runs; r++ {
		rc, err := cleaning.RandomClean(task, cleaning.Options{
			EvalTestEachStep: true,
			Rand:             rand.New(rand.NewSource(seed + int64(r)*7919)),
		})
		if err != nil {
			return nil, err
		}
		traj := trajectory(rc, gap)
		for si, p := range traj {
			if si > dirty {
				break
			}
			sums[si].FracCleaned += p.FracCleaned
			sums[si].ValCertainFrac += p.ValCertainFrac
			sums[si].GapClosed += p.GapClosed
			counts[si]++
		}
		// Runs that certify early keep their final state for later steps, so
		// averages stay comparable across runs of different lengths.
		last := traj[len(traj)-1]
		for si := len(traj); si <= dirty; si++ {
			sums[si].FracCleaned += float64(si) / float64(dirty)
			sums[si].ValCertainFrac += last.ValCertainFrac
			sums[si].GapClosed += last.GapClosed
			counts[si]++
		}
		certifySum += certifyFrac(rc, dirty)
	}
	for si := range sums {
		if counts[si] == 0 {
			continue
		}
		res.Random = append(res.Random, CurvePoint{
			FracCleaned:    sums[si].FracCleaned / float64(counts[si]),
			ValCertainFrac: sums[si].ValCertainFrac / float64(counts[si]),
			GapClosed:      sums[si].GapClosed / float64(counts[si]),
		})
	}
	res.CleanedToCertifyRandom = certifySum / float64(runs)
	return res, nil
}

// trajectory converts a cleaning result into curve points.
func trajectory(res *cleaning.Result, gap func(float64) float64) []CurvePoint {
	out := make([]CurvePoint, 0, len(res.Steps))
	for _, s := range res.Steps {
		out = append(out, CurvePoint{
			FracCleaned:    s.FracCleaned,
			ValCertainFrac: s.ValCertainFrac,
			GapClosed:      gap(s.TestAccuracy),
		})
	}
	return out
}

// certifyFrac returns the fraction of dirty rows cleaned when everything
// became CP'ed (1 if the run ended without certifying).
func certifyFrac(res *cleaning.Result, dirty int) float64 {
	if res.AllCertainStep < 0 {
		return 1
	}
	return float64(res.AllCertainStep) / float64(dirty)
}

// RunFigure9 produces curves for all datasets.
func RunFigure9(scale Scale, seed int64) ([]*Figure9Result, error) {
	var out []*Figure9Result
	for _, spec := range Specs() {
		r, err := RunFigure9Dataset(spec, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("figure9 %s: %w", spec.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Figure9Report renders one dataset's curves sampled at ~10% increments.
func Figure9Report(r *Figure9Result) *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 9 (%s): cleaning curves — CPClean vs RandomClean", r.Dataset),
		Headers: []string{"Cleaned", "CP'ed (CPClean)", "Gap (CPClean)",
			"CP'ed (Random)", "Gap (Random)"},
	}
	n := len(r.CPClean)
	m := len(r.Random)
	steps := 10
	for s := 0; s <= steps; s++ {
		ci := s * (n - 1) / steps
		ri := s * (m - 1) / steps
		t.AddRow(
			Pct(r.CPClean[ci].FracCleaned),
			Pct(r.CPClean[ci].ValCertainFrac), Pct(r.CPClean[ci].GapClosed),
			Pct(r.Random[ri].ValCertainFrac), Pct(r.Random[ri].GapClosed),
		)
	}
	t.AddRow("", "", "", "", "")
	t.AddRow("certify@", Pct(r.CleanedToCertifyCP), "", Pct(r.CleanedToCertifyRandom), "")
	return t
}
