package experiments

import (
	"strings"
	"testing"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "paper"} {
		sc, err := ScaleByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name != name {
			t.Fatalf("scale %q has name %q", name, sc.Name)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestSpecByName(t *testing.T) {
	specs := Specs()
	if len(specs) != 4 {
		t.Fatalf("%d specs", len(specs))
	}
	for _, s := range specs {
		got, err := SpecByName(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != s.Name {
			t.Fatalf("resolved %q", got.Name)
		}
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestBuildTaskShapes(t *testing.T) {
	for _, spec := range Specs() {
		task, err := BuildTask(spec, Tiny, 3, 0)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if task.Dirty.NumRows() != Tiny.TrainN {
			t.Fatalf("%s: train %d", spec.Name, task.Dirty.NumRows())
		}
		if task.Val.NumRows() != Tiny.ValN || task.Test.NumRows() != Tiny.TestN {
			t.Fatalf("%s: val/test %d/%d", spec.Name, task.Val.NumRows(), task.Test.NumRows())
		}
		if len(task.Repairs.DirtyRows) == 0 {
			t.Fatalf("%s: no dirty rows", spec.Name)
		}
		if task.Truth.MissingCellRate() != 0 {
			t.Fatalf("%s: truth table has missing cells", spec.Name)
		}
	}
}

func TestBuildTaskValOverride(t *testing.T) {
	spec, _ := SpecByName("Supreme")
	task, err := BuildTask(spec, Tiny, 3, 25)
	if err != nil {
		t.Fatal(err)
	}
	if task.Val.NumRows() != 25 {
		t.Fatalf("val override ignored: %d", task.Val.NumRows())
	}
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(Tiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Examples != Tiny.TrainN {
			t.Fatalf("%s: %d examples", r.Dataset, r.Examples)
		}
		if r.MissingRowRate <= 0 || r.Candidates <= r.Examples {
			t.Fatalf("%s: rate=%v candidates=%d", r.Dataset, r.MissingRowRate, r.Candidates)
		}
	}
	rep := Table1Report(rows).String()
	if !strings.Contains(rep, "BabyProduct") || !strings.Contains(rep, "Puma") {
		t.Fatalf("report missing datasets:\n%s", rep)
	}
}

func TestRunFigure4ShapesAndScaling(t *testing.T) {
	rows := RunFigure4([]int{60, 120}, 1)
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Elapsed <= 0 {
			t.Fatalf("%s N=%d: non-positive elapsed", r.Algorithm, r.N)
		}
	}
	rep := Figure4Report(rows).String()
	if !strings.Contains(rep, "SS-DC") || !strings.Contains(rep, "MM") {
		t.Fatalf("report incomplete:\n%s", rep)
	}
}

func TestFigure10ValSizes(t *testing.T) {
	sizes := Figure10ValSizes(Small)
	if len(sizes) != 4 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not increasing: %v", sizes)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tb.AddRow("x", "y")
	out := tb.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "a") {
		t.Fatalf("render:\n%s", out)
	}
	var csv strings.Builder
	tb.RenderCSV(&csv)
	if !strings.HasPrefix(csv.String(), "a,bb\n") {
		t.Fatalf("csv:\n%s", csv.String())
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := &Table{Headers: []string{"a"}}
	tb.AddRow(`va"l,ue`)
	var csv strings.Builder
	tb.RenderCSV(&csv)
	if !strings.Contains(csv.String(), `"va""l,ue"`) {
		t.Fatalf("csv quoting:\n%s", csv.String())
	}
}

// TestRunTable2TinySmoke runs the full Table 2 pipeline on one dataset at
// tiny scale — the end-to-end integration test of the whole repository.
func TestRunTable2TinySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny Table 2 run skipped in -short mode")
	}
	spec, _ := SpecByName("Supreme")
	row, err := RunTable2Dataset(spec, Tiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	if row.GroundTruthAcc <= 0.5 {
		t.Fatalf("GT accuracy %v", row.GroundTruthAcc)
	}
	if row.CPCleanCleaned <= 0 || row.CPCleanCleaned > 1 {
		t.Fatalf("cleaned fraction %v", row.CPCleanCleaned)
	}
	rep := Table2Report([]*Table2Row{row}).String()
	if !strings.Contains(rep, "Supreme") {
		t.Fatalf("report:\n%s", rep)
	}
}

// TestRunFigure9TinySmoke checks both trajectories exist and are monotone in
// certification.
func TestRunFigure9TinySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny Figure 9 run skipped in -short mode")
	}
	spec, _ := SpecByName("Supreme")
	r, err := RunFigure9Dataset(spec, Tiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CPClean) == 0 || len(r.Random) == 0 {
		t.Fatal("empty trajectories")
	}
	prev := -1.0
	for _, p := range r.CPClean {
		if p.ValCertainFrac < prev-1e-9 {
			t.Fatalf("CPClean certification not monotone: %v after %v", p.ValCertainFrac, prev)
		}
		prev = p.ValCertainFrac
	}
	if r.CleanedToCertifyCP > r.CleanedToCertifyRandom+0.15 {
		t.Fatalf("CPClean certified at %v, random at %v — greedy not helping",
			r.CleanedToCertifyCP, r.CleanedToCertifyRandom)
	}
	_ = Figure9Report(r).String()
}
