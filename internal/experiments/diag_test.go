package experiments

import (
	"testing"

	"repro/internal/cleaning"
)

// TestDiagOracleCeiling reports corruption statistics and the accuracy
// ceiling of cleaning every dirty row with the oracle candidate.
func TestDiagOracleCeiling(t *testing.T) {
	for _, name := range []string{"Supreme", "Bank", "Puma", "BabyProduct"} {
		spec, _ := SpecByName(name)
		task, err := BuildTask(spec, Small, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		gt, _ := cleaning.GroundTruthAccuracy(task)
		def, _ := cleaning.DefaultCleanAccuracy(task)
		x, y := task.WorldX(task.OracleWorld())
		oracleAcc, _ := task.AccuracyOnEncoded(x, y)
		t.Logf("%s: GT=%.3f Default=%.3f OracleAll=%.3f gapPP=%.1f ceiling=%.0f%% dirtyRows=%d/%d cellRate=%.1f%% sumM=%d",
			name, gt, def, oracleAcc, 100*(gt-def), 100*cleaning.GapClosed(oracleAcc, def, gt),
			len(task.Repairs.DirtyRows), task.Dirty.NumRows(), 100*task.Dirty.MissingCellRate(),
			task.Dataset().TotalCandidates())
		for _, c := range task.Dirty.Cols {
			if c.MissingCount() > 0 {
				t.Logf("  col %-14s missing %3d/%d", c.Name, c.MissingCount(), c.Len())
			}
		}
	}
}
