package experiments

import (
	"fmt"

	"repro/internal/cleaning"
)

// Table2Row holds one dataset's end-to-end comparison (paper Table 2).
type Table2Row struct {
	Dataset string

	GroundTruthAcc float64
	DefaultAcc     float64

	BoostCleanGap float64
	HoloCleanGap  float64

	// CPClean at convergence (all validation examples CP'ed).
	CPCleanGap     float64
	CPCleanCleaned float64 // fraction of dirty examples cleaned
	// CPClean stopped at a 20% budget of the dirty examples.
	CPCleanGapAt20 float64

	// Extra diagnostics.
	DirtyRows   int
	CPCleanStep int // examples cleaned at convergence (-1 if not reached)
}

// RunTable2Dataset runs every method on one dataset, averaging over
// scale.Table2Seeds seeded repetitions (gap-closed ratios are computed from
// the averaged accuracies, so a noisy single-seed denominator cannot blow
// them up).
func RunTable2Dataset(spec DatasetSpec, scale Scale, seed int64) (*Table2Row, error) {
	seeds := scale.Table2Seeds
	if seeds <= 0 {
		seeds = 1
	}
	agg := &table2Acc{}
	for s := 0; s < seeds; s++ {
		r, err := runTable2Once(spec, scale, seed+int64(s)*10007)
		if err != nil {
			return nil, err
		}
		agg.add(r)
	}
	return agg.mean(spec.Name, seeds), nil
}

// table2Acc accumulates raw accuracies across seeds.
type table2Acc struct {
	gt, def, boost, holo, cp, cpAt20 float64
	cleaned                          float64
	dirty                            int
	certified                        int
}

func (a *table2Acc) add(r *table2Raw) {
	a.gt += r.gt
	a.def += r.def
	a.boost += r.boost
	a.holo += r.holo
	a.cp += r.cp
	a.cpAt20 += r.cpAt20
	a.cleaned += r.cleanedFrac
	a.dirty += r.dirty
	if r.certified {
		a.certified++
	}
}

func (a *table2Acc) mean(name string, n int) *Table2Row {
	f := 1 / float64(n)
	gt, def := a.gt*f, a.def*f
	gap := func(acc float64) float64 { return cleaning.GapClosed(acc, def, gt) }
	row := &Table2Row{
		Dataset:        name,
		GroundTruthAcc: gt,
		DefaultAcc:     def,
		BoostCleanGap:  gap(a.boost * f),
		HoloCleanGap:   gap(a.holo * f),
		CPCleanGap:     gap(a.cp * f),
		CPCleanGapAt20: gap(a.cpAt20 * f),
		CPCleanCleaned: a.cleaned * f,
		DirtyRows:      a.dirty / n,
	}
	if a.certified == n {
		row.CPCleanStep = int(a.cleaned * f * float64(row.DirtyRows))
	} else {
		row.CPCleanStep = -1
	}
	return row
}

// table2Raw holds one seed's raw accuracies.
type table2Raw struct {
	gt, def, boost, holo, cp, cpAt20 float64
	cleanedFrac                      float64
	dirty                            int
	certified                        bool
}

// runTable2Once runs every method on one generated task.
func runTable2Once(spec DatasetSpec, scale Scale, seed int64) (*table2Raw, error) {
	task, err := BuildTask(spec, scale, seed, 0)
	if err != nil {
		return nil, err
	}
	raw := &table2Raw{dirty: len(task.Repairs.DirtyRows)}

	if raw.gt, err = cleaning.GroundTruthAccuracy(task); err != nil {
		return nil, err
	}
	if raw.def, err = cleaning.DefaultCleanAccuracy(task); err != nil {
		return nil, err
	}
	bc, err := cleaning.BoostClean(task, 1)
	if err != nil {
		return nil, err
	}
	raw.boost = bc.Accuracy

	hc, err := cleaning.HoloCleanStyle(task, 10)
	if err != nil {
		return nil, err
	}
	raw.holo = hc.Accuracy

	cp, err := cleaning.CPClean(task, cleaning.Options{EvalTestEachStep: true})
	if err != nil {
		return nil, err
	}
	raw.cp = cp.FinalAccuracy
	raw.certified = cp.AllCertainStep >= 0
	if raw.dirty > 0 {
		cleaned := cp.AllCertainStep
		if cleaned < 0 {
			cleaned = len(cp.Order)
		}
		raw.cleanedFrac = float64(cleaned) / float64(raw.dirty)
	}
	// Accuracy at the 20% budget mark, read off the trajectory.
	budget := raw.dirty / 5
	raw.cpAt20 = raw.def
	for _, s := range cp.Steps {
		if s.Step > budget {
			break
		}
		if s.TestAccuracy != 0 {
			raw.cpAt20 = s.TestAccuracy
		}
	}
	return raw, nil
}

// RunTable2 runs the comparison over all datasets.
func RunTable2(scale Scale, seed int64) ([]*Table2Row, error) {
	var out []*Table2Row
	for _, spec := range Specs() {
		row, err := RunTable2Dataset(spec, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", spec.Name, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// Table2Report renders the rows in the paper's layout.
func Table2Report(rows []*Table2Row) *Table {
	t := &Table{
		Title: "Table 2: End-to-end performance comparison",
		Headers: []string{"Dataset", "GT Acc", "Default Acc", "Boost Gap", "Holo Gap",
			"CP Gap", "CP Cleaned", "CP Gap@20%"},
	}
	for _, r := range rows {
		t.AddRow(r.Dataset, F3(r.GroundTruthAcc), F3(r.DefaultAcc),
			Pct(r.BoostCleanGap), Pct(r.HoloCleanGap),
			Pct(r.CPCleanGap), Pct(r.CPCleanCleaned), Pct(r.CPCleanGapAt20))
	}
	return t
}
