package knn

import (
	"container/heap"
	"fmt"
)

// Neighbor is one scored training example.
type Neighbor struct {
	Index int     // training-row index
	Sim   float64 // similarity to the query point
}

// Less orders neighbors by the package-wide strict total order: higher
// similarity first, ties broken toward the smaller index (the paper assumes
// no ties; this tie-break makes every algorithm deterministic and mutually
// consistent).
func (n Neighbor) MoreSimilarThan(o Neighbor) bool {
	if n.Sim != o.Sim {
		return n.Sim > o.Sim
	}
	return n.Index < o.Index
}

// minHeap keeps the K most-similar neighbors seen so far; the root is the
// least similar of the kept set.
type minHeap []Neighbor

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[j].MoreSimilarThan(h[i]) }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopK returns the indices of the K most similar neighbors under the strict
// total order, in no particular order. If fewer than K neighbors exist, all
// are returned. Runs in O(N log K).
func TopK(sims []float64, k int) []int {
	h := make(minHeap, 0, k)
	for i, s := range sims {
		nb := Neighbor{Index: i, Sim: s}
		if len(h) < k {
			heap.Push(&h, nb)
		} else if nb.MoreSimilarThan(h[0]) {
			h[0] = nb
			heap.Fix(&h, 0)
		}
	}
	out := make([]int, len(h))
	for i, nb := range h {
		out[i] = nb.Index
	}
	return out
}

// Vote returns the majority label among the given labels; ties go to the
// smallest label index. numLabels bounds the label alphabet.
func Vote(labels []int, numLabels int) int {
	counts := make([]int, numLabels)
	for _, y := range labels {
		counts[y]++
	}
	return ArgmaxTally(counts)
}

// ArgmaxTally returns the winning label of a tally vector under the
// smallest-label tie-break.
func ArgmaxTally(tally []int) int {
	best, bestCount := 0, -1
	for l, c := range tally {
		if c > bestCount {
			best, bestCount = l, c
		}
	}
	return best
}

// Classifier is a K-NN classifier over a fixed, complete training set.
type Classifier struct {
	K      int
	Kernel Kernel
	// X are the training feature vectors; Y the labels in [0, NumLabels).
	X         [][]float64
	Y         []int
	NumLabels int
}

// NewClassifier validates and constructs a classifier.
func NewClassifier(k int, kernel Kernel, x [][]float64, y []int, numLabels int) (*Classifier, error) {
	if k <= 0 {
		return nil, fmt.Errorf("knn: K must be positive, got %d", k)
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("knn: %d feature vectors but %d labels", len(x), len(y))
	}
	if len(x) < k {
		return nil, fmt.Errorf("knn: K=%d exceeds training size %d", k, len(x))
	}
	for i, yy := range y {
		if yy < 0 || yy >= numLabels {
			return nil, fmt.Errorf("knn: label %d at row %d out of range [0,%d)", yy, i, numLabels)
		}
	}
	return &Classifier{K: k, Kernel: kernel, X: x, Y: y, NumLabels: numLabels}, nil
}

// Predict classifies one query point.
func (c *Classifier) Predict(q []float64) int {
	sims := make([]float64, len(c.X))
	for i, xi := range c.X {
		sims[i] = c.Kernel.Similarity(xi, q)
	}
	top := TopK(sims, c.K)
	labels := make([]int, len(top))
	for i, idx := range top {
		labels[i] = c.Y[idx]
	}
	return Vote(labels, c.NumLabels)
}

// PredictAll classifies a batch of query points.
func (c *Classifier) PredictAll(qs [][]float64) []int {
	out := make([]int, len(qs))
	for i, q := range qs {
		out[i] = c.Predict(q)
	}
	return out
}

// Accuracy returns the fraction of query points whose prediction matches the
// given labels.
func (c *Classifier) Accuracy(qs [][]float64, y []int) float64 {
	if len(qs) == 0 {
		return 0
	}
	correct := 0
	for i, q := range qs {
		if c.Predict(q) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(qs))
}
