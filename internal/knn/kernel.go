// Package knn implements the K-nearest-neighbor classifier substrate used by
// the paper: similarity kernels, deterministic top-K selection with a strict
// total order, and majority voting with smallest-label tie-breaking.
package knn

import "math"

// Kernel computes a similarity score between two feature vectors; larger
// values mean more similar (the paper's κ). All kernels must be symmetric.
type Kernel interface {
	// Similarity returns κ(a, b).
	Similarity(a, b []float64) float64
	// Name identifies the kernel in reports.
	Name() string
}

// NegEuclidean is the paper's experimental setting ("Euclidean distance as
// the similarity function"): κ(a,b) = −‖a−b‖₂. Monotone in distance, so
// top-K by similarity equals top-K by closeness.
type NegEuclidean struct{}

// Similarity implements Kernel.
func (NegEuclidean) Similarity(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return -math.Sqrt(s)
}

// Name implements Kernel.
func (NegEuclidean) Name() string { return "neg-euclidean" }

// NegSquaredEuclidean is κ(a,b) = −‖a−b‖₂²; same ordering as NegEuclidean
// but cheaper (no sqrt).
type NegSquaredEuclidean struct{}

// Similarity implements Kernel.
func (NegSquaredEuclidean) Similarity(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return -s
}

// Name implements Kernel.
func (NegSquaredEuclidean) Name() string { return "neg-sq-euclidean" }

// NegManhattan is κ(a,b) = −‖a−b‖₁.
type NegManhattan struct{}

// Similarity implements Kernel.
func (NegManhattan) Similarity(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return -s
}

// Name implements Kernel.
func (NegManhattan) Name() string { return "neg-manhattan" }

// Linear is the dot-product kernel κ(a,b) = ⟨a,b⟩.
type Linear struct{}

// Similarity implements Kernel.
func (Linear) Similarity(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// RBF is the Gaussian kernel κ(a,b) = exp(−γ‖a−b‖²).
type RBF struct {
	// Gamma is the bandwidth parameter γ (> 0).
	Gamma float64
}

// Similarity implements Kernel.
func (k RBF) Similarity(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-k.Gamma * s)
}

// Name implements Kernel.
func (k RBF) Name() string { return "rbf" }

// Cosine is κ(a,b) = ⟨a,b⟩ / (‖a‖‖b‖); zero vectors get similarity 0.
type Cosine struct{}

// Similarity implements Kernel.
func (Cosine) Similarity(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Name implements Kernel.
func (Cosine) Name() string { return "cosine" }
