package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelsBasics(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if s := (NegEuclidean{}).Similarity(a, b); s != -5 {
		t.Fatalf("neg euclidean = %v", s)
	}
	if s := (NegSquaredEuclidean{}).Similarity(a, b); s != -25 {
		t.Fatalf("neg sq euclidean = %v", s)
	}
	if s := (NegManhattan{}).Similarity(a, b); s != -7 {
		t.Fatalf("neg manhattan = %v", s)
	}
	if s := (Linear{}).Similarity([]float64{1, 2}, []float64{3, 4}); s != 11 {
		t.Fatalf("linear = %v", s)
	}
	if s := (RBF{Gamma: 1}).Similarity(a, a); s != 1 {
		t.Fatalf("rbf self = %v", s)
	}
	if s := (Cosine{}).Similarity([]float64{1, 0}, []float64{2, 0}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("cosine parallel = %v", s)
	}
	if s := (Cosine{}).Similarity([]float64{0, 0}, []float64{1, 0}); s != 0 {
		t.Fatalf("cosine zero = %v", s)
	}
}

func TestKernelSymmetryProperty(t *testing.T) {
	kernels := []Kernel{NegEuclidean{}, NegSquaredEuclidean{}, NegManhattan{}, Linear{}, RBF{Gamma: 0.5}, Cosine{}}
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		a, b := []float64{ax, ay}, []float64{bx, by}
		for _, k := range kernels {
			sa, sb := k.Similarity(a, b), k.Similarity(b, a)
			if sa != sb && !(math.IsNaN(sa) && math.IsNaN(sb)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			return true
		}
	}
	return false
}

func TestTopKAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(30)
		k := 1 + rng.Intn(n)
		sims := make([]float64, n)
		for i := range sims {
			sims[i] = float64(rng.Intn(5)) // deliberate ties
		}
		got := TopK(sims, k)
		// Reference: full sort under the total order.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			na := Neighbor{Index: idx[a], Sim: sims[idx[a]]}
			nb := Neighbor{Index: idx[b], Sim: sims[idx[b]]}
			return na.MoreSimilarThan(nb)
		})
		want := idx[:k]
		sort.Ints(got)
		wantSorted := append([]int(nil), want...)
		sort.Ints(wantSorted)
		for i := range wantSorted {
			if got[i] != wantSorted[i] {
				t.Fatalf("trial %d: TopK=%v want %v (sims=%v k=%d)", trial, got, wantSorted, sims, k)
			}
		}
	}
}

func TestVoteTieBreak(t *testing.T) {
	if v := Vote([]int{1, 0, 1, 0}, 2); v != 0 {
		t.Fatalf("tie should go to label 0, got %d", v)
	}
	if v := Vote([]int{2, 2, 1}, 3); v != 2 {
		t.Fatalf("majority = %d", v)
	}
	if v := ArgmaxTally([]int{0, 3, 3}); v != 1 {
		t.Fatalf("tally tie-break = %d", v)
	}
}

func TestClassifierValidation(t *testing.T) {
	x := [][]float64{{0}, {1}}
	if _, err := NewClassifier(0, NegEuclidean{}, x, []int{0, 1}, 2); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewClassifier(3, NegEuclidean{}, x, []int{0, 1}, 2); err == nil {
		t.Fatal("K>N accepted")
	}
	if _, err := NewClassifier(1, NegEuclidean{}, x, []int{0}, 2); err == nil {
		t.Fatal("len mismatch accepted")
	}
	if _, err := NewClassifier(1, NegEuclidean{}, x, []int{0, 5}, 2); err == nil {
		t.Fatal("label out of range accepted")
	}
}

func TestClassifierPredict(t *testing.T) {
	// Two clusters on a line.
	x := [][]float64{{0}, {0.1}, {0.2}, {1}, {1.1}, {1.2}}
	y := []int{0, 0, 0, 1, 1, 1}
	clf, err := NewClassifier(3, NegEuclidean{}, x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p := clf.Predict([]float64{0.05}); p != 0 {
		t.Fatalf("predict left cluster = %d", p)
	}
	if p := clf.Predict([]float64{1.05}); p != 1 {
		t.Fatalf("predict right cluster = %d", p)
	}
	acc := clf.Accuracy([][]float64{{0}, {1.2}}, []int{0, 1})
	if acc != 1 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestClassifierK1IsNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([][]float64, 20)
	y := make([]int, 20)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = rng.Intn(2)
	}
	clf, err := NewClassifier(1, NegEuclidean{}, x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64(), rng.Float64()}
		best, bestD := -1, math.Inf(1)
		for i := range x {
			d := math.Hypot(x[i][0]-q[0], x[i][1]-q[1])
			if d < bestD {
				best, bestD = i, d
			}
		}
		if p := clf.Predict(q); p != y[best] {
			t.Fatalf("1-NN prediction %d != nearest label %d", p, y[best])
		}
	}
}

func TestPredictAll(t *testing.T) {
	x := [][]float64{{0}, {1}}
	clf, err := NewClassifier(1, NegEuclidean{}, x, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := clf.PredictAll([][]float64{{-1}, {2}})
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("predict all = %v", got)
	}
}
