package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/durable"
)

// ErrCursorGone reports a leader 410: the records at the follower's cursor
// were compacted away, so the tailer must re-bootstrap from the leader's
// snapshot instead of resuming the stream.
var ErrCursorGone = errors.New("replica: cursor compacted away on the leader")

// DefaultReconnectDelay is the base backoff between tail reconnects.
const DefaultReconnectDelay = 200 * time.Millisecond

// maxReconnectDelay caps the exponential reconnect backoff.
const maxReconnectDelay = 5 * time.Second

// TailerConfig wires a Tailer to its leader and its apply sink.
type TailerConfig struct {
	// BaseURL is the leader's base URL (scheme://host:port); the tailer
	// appends /v1/wal/stream and /v1/wal/snapshot.
	BaseURL string
	// Client overrides http.DefaultClient (tests inject fault proxies).
	Client *http.Client
	// Apply folds one shipped record into follower state. It must be
	// idempotent: a reconnect can redeliver the last record, and a restart
	// redelivers everything after the persisted cursor. A returned error
	// drops the connection and retries from the record's predecessor cursor.
	Apply func(rec durable.Record) error
	// ApplySnapshot replaces follower state with a leader snapshot payload
	// (bootstrap, and re-bootstrap after ErrCursorGone). Replace — not merge
	// — semantics: entities absent from the snapshot were released in the
	// compacted gap and must go.
	ApplySnapshot func(payload []byte) error
	// OnAdvance, if non-nil, observes every cursor advance after the record
	// is applied; caughtUp marks tip frames (the follower is at the leader's
	// durable frontier). This is where the owner persists its cursor.
	OnAdvance func(c durable.Cursor, caughtUp bool)
	// Logf receives connection diagnostics. nil = silent.
	Logf func(format string, args ...interface{})
	// ReconnectDelay overrides DefaultReconnectDelay (tests shrink it).
	ReconnectDelay time.Duration
}

// TailStatus is a point-in-time snapshot of a tailer's replication state.
type TailStatus struct {
	// Connected reports a live ship stream right now.
	Connected bool
	// LeaderURL is the leader's advertised URL (X-CP-Leader), falling back
	// to the configured BaseURL.
	LeaderURL string
	// Cursor is the position just past the last applied record.
	Cursor durable.Cursor
	// AppliedRecords counts records applied since the tailer started.
	AppliedRecords int64
	// Bootstraps counts snapshot bootstraps (1 for a fresh follower; more
	// after the leader compacted past our cursor).
	Bootstraps int64
	// LagRecords is the replication lag reported by the leader's last
	// envelope, or -1 before the first envelope arrives.
	LagRecords int64
	// LastErr is the most recent connection or apply error ("" when none
	// since the last healthy frame).
	LastErr string
}

// Tailer follows a leader's ship stream: bootstrap from snapshot when there
// is no cursor, then apply records as they arrive, reconnecting with backoff
// on any failure. It never applies a frame that fails its CRC — a torn or
// flipped record drops the connection and the re-fetch starts from the last
// record that was applied.
type Tailer struct {
	cfg    TailerConfig
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu sync.Mutex
	st TailStatus // guarded by mu
}

// StartTailer launches the tail loop from the given cursor (zero = bootstrap
// from the leader's snapshot). Stop it with Close.
func StartTailer(cfg TailerConfig, from durable.Cursor) *Tailer {
	ctx, cancel := context.WithCancel(context.Background())
	t := &Tailer{cfg: cfg, cancel: cancel}
	t.mu.Lock()
	t.st.Cursor = from
	t.st.LagRecords = -1
	t.st.LeaderURL = cfg.BaseURL
	t.mu.Unlock()
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.run(ctx, from)
	}()
	return t
}

// Close stops the tail loop and waits for it to exit. The last applied
// cursor remains readable via Status.
func (t *Tailer) Close() {
	t.cancel()
	t.wg.Wait()
}

// Status snapshots the tailer's replication state.
func (t *Tailer) Status() TailStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st
}

func (t *Tailer) logf(format string, args ...interface{}) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

func (t *Tailer) client() *http.Client {
	if t.cfg.Client != nil {
		return t.cfg.Client
	}
	return http.DefaultClient
}

func (t *Tailer) baseDelay() time.Duration {
	if t.cfg.ReconnectDelay > 0 {
		return t.cfg.ReconnectDelay
	}
	return DefaultReconnectDelay
}

// run is the follower loop: (re)bootstrap when the cursor is zero, tail the
// stream until it breaks, back off, repeat until Close.
func (t *Tailer) run(ctx context.Context, c durable.Cursor) {
	delay := t.baseDelay()
	for ctx.Err() == nil {
		if c.IsZero() {
			nc, err := t.bootstrap(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				t.noteErr(err)
				sleepCtx(ctx, delay)
				delay = backoff(delay)
				continue
			}
			c = nc
			t.mu.Lock()
			t.st.Cursor = c
			t.st.Bootstraps++
			t.mu.Unlock()
		}
		err := t.stream(ctx, &c)
		t.setConnected(false)
		if ctx.Err() != nil {
			return
		}
		switch {
		case errors.Is(err, ErrCursorGone):
			t.logf("replica: leader compacted past cursor %s; re-bootstrapping from snapshot", c)
			t.noteErr(err)
			c = durable.Cursor{} // forces the snapshot path above
		case err != nil:
			t.noteErr(err)
		default:
			// Clean EOF: the leader closed the stream (shutdown, or a
			// compaction race). Reconnect from where we stopped.
		}
		sleepCtx(ctx, delay)
		delay = backoff(delay)
	}
}

// bootstrap fetches the leader's newest snapshot, applies it, and returns
// the cursor to start streaming from. With no snapshot on the leader (204)
// the stream starts at the first segment and ApplySnapshot is not called.
func (t *Tailer) bootstrap(ctx context.Context) (durable.Cursor, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.cfg.BaseURL+"/v1/wal/snapshot", nil)
	if err != nil {
		return durable.Cursor{}, fmt.Errorf("replica: %w", err)
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return durable.Cursor{}, fmt.Errorf("replica: fetching snapshot: %w", err)
	}
	defer func() { _ = resp.Body.Close() }() // body fully read or abandoned below
	t.noteLeader(resp.Header.Get(HeaderLeader))
	switch resp.StatusCode {
	case http.StatusNoContent:
		return durable.SegmentStart(1), nil
	case http.StatusOK:
		seq, err := strconv.Atoi(resp.Header.Get(HeaderSnapshotSegment))
		if err != nil {
			return durable.Cursor{}, fmt.Errorf("replica: snapshot response lacks a valid %s header: %w", HeaderSnapshotSegment, err)
		}
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return durable.Cursor{}, fmt.Errorf("replica: reading snapshot: %w", err)
		}
		if t.cfg.ApplySnapshot == nil {
			return durable.Cursor{}, errors.New("replica: leader requires a snapshot bootstrap but no ApplySnapshot is configured")
		}
		if err := t.cfg.ApplySnapshot(payload); err != nil {
			return durable.Cursor{}, fmt.Errorf("replica: applying snapshot: %w", err)
		}
		return durable.SegmentStart(seq + 1), nil
	default:
		return durable.Cursor{}, fmt.Errorf("replica: snapshot fetch: leader answered %s", resp.Status)
	}
}

// stream opens one ship connection from *c and applies frames until the
// connection ends, keeping *c at the last applied position so the caller
// reconnects without redelivery. A clean stream end returns nil; a torn or
// corrupt frame, an apply failure, or a decode failure returns the error —
// in every case nothing past the last intact, applied record was acted on.
func (t *Tailer) stream(ctx context.Context, c *durable.Cursor) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.cfg.BaseURL+"/v1/wal/stream?from="+c.String(), nil)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return fmt.Errorf("replica: connecting to leader: %w", err)
	}
	defer func() { _ = resp.Body.Close() }() // stream is abandoned on any exit
	t.noteLeader(resp.Header.Get(HeaderLeader))
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return ErrCursorGone
	default:
		return fmt.Errorf("replica: ship stream: leader answered %s", resp.Status)
	}
	t.setConnected(true)
	br := bufio.NewReader(resp.Body)
	for {
		payload, err := durable.ReadFrame(br)
		if err == io.EOF {
			return nil // clean boundary: leader closed the stream
		}
		if err != nil {
			// Torn mid-frame or checksum mismatch: refuse the frame and
			// everything after it; the reconnect re-fetches from *c, the last
			// record actually applied.
			return fmt.Errorf("replica: ship stream broke at %s: %w", c, err)
		}
		var env envelope
		if err := json.Unmarshal(payload, &env); err != nil {
			return fmt.Errorf("replica: undecodable envelope at %s: %w", c, err)
		}
		if env.Record != nil {
			var rec durable.Record
			if err := json.Unmarshal(env.Record, &rec); err != nil {
				// The frame was intact, so this is a record the leader also
				// could not decode at replay; skip it the same way so both
				// sides converge (the cursor still advances past it).
				t.logf("replica: skipping undecodable record at %s: %v", c, err)
			} else if err := t.cfg.Apply(rec); err != nil {
				return fmt.Errorf("replica: applying record at %s: %w", c, err)
			}
		}
		next := durable.Cursor{Segment: env.Segment, Offset: env.Offset}
		caughtUp := env.Record == nil
		t.mu.Lock()
		t.st.Cursor = next
		if env.Record != nil {
			t.st.AppliedRecords++
			t.st.LagRecords = maxInt64(0, env.TipOrd-env.Ord)
		} else {
			t.st.LagRecords = 0
		}
		t.st.LastErr = ""
		t.mu.Unlock()
		*c = next
		if t.cfg.OnAdvance != nil {
			t.cfg.OnAdvance(next, caughtUp)
		}
	}
}

func (t *Tailer) noteErr(err error) {
	t.logf("replica: %v", err)
	t.mu.Lock()
	t.st.LastErr = err.Error()
	t.mu.Unlock()
}

func (t *Tailer) noteLeader(url string) {
	if url == "" {
		return
	}
	t.mu.Lock()
	t.st.LeaderURL = url
	t.mu.Unlock()
}

func (t *Tailer) setConnected(v bool) {
	t.mu.Lock()
	t.st.Connected = v
	t.mu.Unlock()
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// sleepCtx sleeps for d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}

func backoff(d time.Duration) time.Duration {
	d *= 2
	if d > maxReconnectDelay {
		return maxReconnectDelay
	}
	return d
}
