package replica

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
)

func trec(i int) durable.Record {
	return durable.Record{Entity: "e", Type: "step", Data: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))}
}

func appendRecs(t *testing.T, st *durable.Store, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if err := st.Append(trec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
}

// collector is a test Apply sink counting exactly-once delivery.
type collector struct {
	mu   sync.Mutex
	recs []durable.Record
}

func (c *collector) apply(rec durable.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, rec)
	return nil
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// checkExactlyOnce asserts the collector holds records lo..hi, each exactly
// once, in append order — the convergence contract after any fault.
func (c *collector) checkExactlyOnce(t *testing.T, lo, hi int) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.recs) != hi-lo {
		t.Fatalf("applied %d records, want %d", len(c.recs), hi-lo)
	}
	for j, r := range c.recs {
		if want := trec(lo + j); !reflect.DeepEqual(r, want) {
			t.Fatalf("applied record %d = %+v, want %+v (duplicate, loss, or reorder)", j, r, want)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// leaderFixture is a raw durable store behind a real Shipper on an httptest
// server — the leader side of the protocol with no serving stack on top.
func leaderFixture(t *testing.T) (*durable.Store, *Shipper, *httptest.Server) {
	t.Helper()
	st, err := durable.Open(t.TempDir(), durable.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	sh := &Shipper{Store: st, Advertise: "http://leader.example", Heartbeat: 20 * time.Millisecond, Logf: t.Logf}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/wal/stream", sh.ServeStream)
	mux.HandleFunc("GET /v1/wal/snapshot", sh.ServeSnapshot)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return st, sh, srv
}

// TestShipTailLive drives the happy path end to end: a fresh follower
// bootstraps (204: no snapshot yet), catches up on the backlog, then applies
// live appends as the leader's group commit lands them.
func TestShipTailLive(t *testing.T) {
	st, sh, srv := leaderFixture(t)
	appendRecs(t, st, 0, 10)

	col := &collector{}
	tl := StartTailer(TailerConfig{
		BaseURL: srv.URL, Apply: col.apply, Logf: t.Logf,
		ReconnectDelay: time.Millisecond,
	}, durable.Cursor{})
	defer tl.Close()

	waitFor(t, "backlog catch-up", func() bool { return col.count() == 10 })
	appendRecs(t, st, 10, 15)
	waitFor(t, "live tail", func() bool { return col.count() == 15 })
	col.checkExactlyOnce(t, 0, 15)

	waitFor(t, "lag to settle", func() bool {
		s := tl.Status()
		return s.Connected && s.LagRecords == 0
	})
	status := tl.Status()
	if status.LeaderURL != "http://leader.example" {
		t.Fatalf("LeaderURL %q, want the advertised URL", status.LeaderURL)
	}
	if status.Bootstraps != 1 || status.AppliedRecords != 15 {
		t.Fatalf("status %+v, want 1 bootstrap and 15 applied", status)
	}
	tip, _ := st.SyncedTip()
	if status.Cursor != tip {
		t.Fatalf("follower cursor %v, leader durable tip %v", status.Cursor, tip)
	}
	if ss := sh.Stats(); ss.StreamsServed < 1 || ss.RecordsShipped < 15 {
		t.Fatalf("shipper stats %+v", ss)
	}
}

// TestTailerRestartResumes pins redelivery-free resume: a tailer restarted
// from the cursor the old one reached applies only records appended after it.
func TestTailerRestartResumes(t *testing.T) {
	st, _, srv := leaderFixture(t)
	appendRecs(t, st, 0, 6)

	first := &collector{}
	tl := StartTailer(TailerConfig{BaseURL: srv.URL, Apply: first.apply, Logf: t.Logf, ReconnectDelay: time.Millisecond}, durable.SegmentStart(1))
	waitFor(t, "first tailer catch-up", func() bool { return first.count() == 6 })
	tl.Close()
	cursor := tl.Status().Cursor
	first.checkExactlyOnce(t, 0, 6)

	appendRecs(t, st, 6, 10)
	second := &collector{}
	tl2 := StartTailer(TailerConfig{BaseURL: srv.URL, Apply: second.apply, Logf: t.Logf, ReconnectDelay: time.Millisecond}, cursor)
	defer tl2.Close()
	waitFor(t, "resumed tailer catch-up", func() bool { return second.count() == 4 })
	second.checkExactlyOnce(t, 6, 10)
	if tl2.Status().Bootstraps != 0 {
		t.Fatal("a resume from a live cursor must not bootstrap")
	}
}

// TestTailerRebootstrapAfterCompaction pins the 410 path: a follower whose
// cursor the leader compacted away re-bootstraps from the snapshot (replace
// semantics) and resumes the stream after the segment the snapshot covers.
func TestTailerRebootstrapAfterCompaction(t *testing.T) {
	st, _, srv := leaderFixture(t)
	appendRecs(t, st, 0, 5)
	state := []byte(`{"compacted":"through-5"}`)
	if err := st.Compact(func() ([]byte, error) { return state, nil }); err != nil {
		t.Fatal(err)
	}
	appendRecs(t, st, 5, 8)

	col := &collector{}
	var snapMu sync.Mutex
	var snaps [][]byte
	tl := StartTailer(TailerConfig{
		BaseURL: srv.URL,
		Apply:   col.apply,
		ApplySnapshot: func(p []byte) error {
			snapMu.Lock()
			defer snapMu.Unlock()
			snaps = append(snaps, append([]byte(nil), p...))
			return nil
		},
		Logf:           t.Logf,
		ReconnectDelay: time.Millisecond,
	}, durable.SegmentStart(1)) // stale: segment 1 was compacted away
	defer tl.Close()

	waitFor(t, "post-snapshot records", func() bool { return col.count() == 3 })
	col.checkExactlyOnce(t, 5, 8)
	snapMu.Lock()
	defer snapMu.Unlock()
	if len(snaps) != 1 || !bytes.Equal(snaps[0], state) {
		t.Fatalf("ApplySnapshot calls %d (payload %q), want exactly the compaction state once", len(snaps), snaps)
	}
	if s := tl.Status(); s.Bootstraps != 1 {
		t.Fatalf("Bootstraps %d, want 1", s.Bootstraps)
	}
}

// TestCursorFile pins the durable-cursor round trip and its failure
// contract: absent file = fresh follower, unreadable file = loud error.
func TestCursorFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), CursorFileName)
	if _, ok, err := LoadCursor(path); ok || err != nil {
		t.Fatalf("missing file: ok=%v err=%v", ok, err)
	}
	want := durable.Cursor{Segment: 3, Offset: 4096}
	if err := SaveCursor(path, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadCursor(path)
	if err != nil || !ok || got != want {
		t.Fatalf("LoadCursor = (%v, %v, %v), want (%v, true, nil)", got, ok, err, want)
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCursor(path); err == nil {
		t.Fatal("corrupt cursor file loaded silently")
	}
}

// faultHandler serves one poisoned stream response, then passes through to
// the real shipper. checkBeforeRetry observes state between the poisoned
// attempt and the retry.
type faultHandler struct {
	sh *Shipper

	mu               sync.Mutex
	poison           []byte
	served           bool
	checkBeforeRetry func()
}

func (f *faultHandler) arm(poison []byte, check func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.poison = append([]byte(nil), poison...)
	f.served = false
	f.checkBeforeRetry = check
}

func (f *faultHandler) stream(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	if !f.served {
		f.served = true
		poison := f.poison
		f.mu.Unlock()
		w.Header().Set("Content-Type", ContentTypeFrames)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(poison)
		return // closing the handler tears the chunked stream here
	}
	check := f.checkBeforeRetry
	f.mu.Unlock()
	if check != nil {
		check()
	}
	f.sh.ServeStream(w, r)
}

// shipStreamBytes renders the catch-up portion of a ship stream — the exact
// frames ServeStream would send for the store's current contents — and the
// byte offset at which each frame ends.
func shipStreamBytes(t *testing.T, st *durable.Store) (stream []byte, frameEnds []int) {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	_, tipOrd := st.SyncedTip()
	_, err := st.ReadFrom(durable.SegmentStart(1), func(payload []byte, ord int64, next durable.Cursor) error {
		env := envelope{Segment: next.Segment, Offset: next.Offset, Ord: ord, TipOrd: tipOrd, Record: payload}
		if err := writeEnvelope(bw, env); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		frameEnds = append(frameEnds, buf.Len())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), frameEnds
}

// TestFaultInjectionSweep is the shipped-segment fault sweep: the follower's
// first connection gets the catch-up stream truncated at EVERY byte boundary
// (and, separately, with a CRC byte flipped in every frame). The contract
// under test: the follower applies exactly the intact frames before the
// fault — never a torn or corrupt record — then re-fetches from its cursor
// and converges to exactly-once delivery of the whole log.
func TestFaultInjectionSweep(t *testing.T) {
	st, err := durable.Open(t.TempDir(), durable.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st.Close() }()
	const n = 3
	appendRecs(t, st, 0, n)
	stream, frameEnds := shipStreamBytes(t, st)
	if len(frameEnds) != n {
		t.Fatalf("rendered %d frames, want %d", len(frameEnds), n)
	}

	sh := &Shipper{Store: st, Heartbeat: 10 * time.Millisecond, Logf: t.Logf}
	fh := &faultHandler{sh: sh}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/wal/stream", fh.stream)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// intactBefore(cut) = frames wholly inside stream[:cut] — exactly what a
	// correct follower may apply from the poisoned attempt.
	intactBefore := func(cut int) int {
		k := 0
		for k < len(frameEnds) && frameEnds[k] <= cut {
			k++
		}
		return k
	}

	runCase := func(name string, poison []byte, wantIntact int) {
		col := &collector{}
		fh.arm(poison, func() {
			if got := col.count(); got != wantIntact {
				t.Errorf("%s: follower applied %d records from the poisoned stream, want %d (torn/corrupt frame applied?)", name, got, wantIntact)
			}
		})
		tl := StartTailer(TailerConfig{BaseURL: srv.URL, Apply: col.apply, ReconnectDelay: time.Millisecond}, durable.SegmentStart(1))
		waitFor(t, name+" convergence", func() bool { return col.count() == n })
		tl.Close()
		col.checkExactlyOnce(t, 0, n)
	}

	for cut := 0; cut <= len(stream); cut++ {
		runCase(fmt.Sprintf("truncate@%d", cut), stream[:cut], intactBefore(cut))
	}
	for f := 0; f < len(frameEnds); f++ {
		start := 0
		if f > 0 {
			start = frameEnds[f-1]
		}
		flipped := append([]byte(nil), stream...)
		flipped[start+4] ^= 0xFF // one byte inside frame f's CRC field
		runCase(fmt.Sprintf("crcflip@frame%d", f), flipped, f)
	}
}
