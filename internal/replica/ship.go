// Package replica implements WAL shipping between a leader serving process
// and read-only followers. The leader streams its journal over HTTP as the
// same CRC-framed records it writes to disk, resumable from any
// (segment, offset) cursor; a follower tails the stream, applies each record
// to its in-memory state exactly as startup recovery would, and re-journals
// it locally so a restart resumes from a durable cursor.
//
// The wire protocol is deliberately the storage format: each frame on a
// GET /v1/wal/stream response is a durable.WriteFrame-framed JSON envelope
// carrying one journal record (bytes verbatim from the leader's log) plus
// its position and ordinal, or a bare "tip" heartbeat that keeps the
// follower's lag estimate fresh while no records flow. A torn or bit-flipped
// frame fails the durable.ReadFrame checksum on the follower, which drops
// the connection and re-fetches from its last applied cursor — a corrupt
// record is never applied, the defining fault-injection contract of this
// package.
package replica

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/durable"
)

const (
	// HeaderLeader names the leader's advertised base URL on ship-stream
	// responses (and on 421 write rejections from a follower).
	HeaderLeader = "X-CP-Leader"
	// HeaderSnapshotSegment carries the segment a shipped snapshot covers
	// through; the follower resumes the stream at the next segment.
	HeaderSnapshotSegment = "X-CP-Snapshot-Segment"
	// ContentTypeFrames is the media type of a ship stream: a sequence of
	// durable CRC frames, each holding one JSON envelope.
	ContentTypeFrames = "application/x-cpwal-frames"

	// DefaultHeartbeat is how often an idle ship stream sends a tip frame.
	DefaultHeartbeat = 2 * time.Second
)

// envelope is one frame payload on the ship stream.
type envelope struct {
	// Segment/Offset is the cursor just past this record — what the follower
	// resumes from once the record is applied. On a tip frame it is the
	// leader's durable frontier itself.
	Segment int   `json:"segment"`
	Offset  int64 `json:"offset"`
	// Ord is the record's global ordinal on the leader; TipOrd is the
	// ordinal of the leader's last durable record when the frame was built.
	// TipOrd-Ord is the follower's replication lag in records.
	Ord    int64 `json:"ord,omitempty"`
	TipOrd int64 `json:"tip_ord"`
	// Record is the journal record's bytes verbatim from the leader's log
	// (nil on tip frames): the follower applies exactly what the leader
	// persisted, so a shared WAL prefix is byte-identical on both sides.
	Record json.RawMessage `json:"record,omitempty"`
}

// ShipStats counts a Shipper's lifetime activity for /v1/stats.
type ShipStats struct {
	StreamsServed   int64 `json:"streams_served"`
	StreamsActive   int64 `json:"streams_active"`
	RecordsShipped  int64 `json:"records_shipped"`
	SnapshotsServed int64 `json:"snapshots_served"`
}

// Shipper serves a store's WAL to followers: ServeStream tails the record
// stream from a cursor and ServeSnapshot hands out the newest snapshot for
// bootstrap. One Shipper serves any number of concurrent followers.
type Shipper struct {
	Store *durable.Store
	// Advertise is the leader's client-facing base URL, echoed in the
	// X-CP-Leader response header so followers can redirect writers at it.
	Advertise string
	// Heartbeat overrides DefaultHeartbeat (tests shrink it).
	Heartbeat time.Duration
	// Logf receives per-stream diagnostics. nil = silent.
	Logf func(format string, args ...interface{})

	streams   atomic.Int64
	active    atomic.Int64
	shipped   atomic.Int64
	snapshots atomic.Int64
}

// Stats snapshots the shipper's counters.
func (sh *Shipper) Stats() ShipStats {
	return ShipStats{
		StreamsServed:   sh.streams.Load(),
		StreamsActive:   sh.active.Load(),
		RecordsShipped:  sh.shipped.Load(),
		SnapshotsServed: sh.snapshots.Load(),
	}
}

func (sh *Shipper) logf(format string, args ...interface{}) {
	if sh.Logf != nil {
		sh.Logf(format, args...)
	}
}

func (sh *Shipper) heartbeat() time.Duration {
	if sh.Heartbeat > 0 {
		return sh.Heartbeat
	}
	return DefaultHeartbeat
}

// ServeSnapshot is GET /v1/wal/snapshot: the newest intact snapshot payload
// with its covered-through segment in X-CP-Snapshot-Segment, or 204 when the
// log has never been compacted (the follower starts from the first segment).
func (sh *Shipper) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	payload, seq, ok, err := sh.Store.LatestSnapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	sh.snapshots.Add(1)
	if sh.Advertise != "" {
		w.Header().Set(HeaderLeader, sh.Advertise)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderSnapshotSegment, strconv.Itoa(seq))
	if _, err := w.Write(payload); err != nil {
		sh.logf("replica: writing snapshot to follower: %v", err)
	}
}

// ServeStream is GET /v1/wal/stream?from=<segment,offset>: an unbounded
// chunked response of CRC-framed envelopes. With no from parameter the
// stream starts at the oldest record on disk. A cursor older than the oldest
// segment gets 410 Gone plus a JSON body naming the oldest available cursor
// — the follower re-bootstraps from ServeSnapshot. Once records are flowing
// the stream never resyncs: any error just ends the response, and the
// follower reconnects from its own durable cursor.
func (sh *Shipper) ServeStream(w http.ResponseWriter, r *http.Request) {
	from := sh.Store.FirstCursor()
	if q := r.URL.Query().Get("from"); q != "" {
		c, err := durable.ParseCursor(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		from = c
	}
	if min := durable.SegmentStart(from.Segment); from.Offset < min.Offset {
		from = min // offsets inside the magic header mean "top of segment"
	}
	if oldest := sh.Store.FirstCursor(); from.Before(oldest) {
		// Refuse before committing to a 200: the records are gone, and the
		// follower must know to bootstrap from the snapshot instead.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		_ = json.NewEncoder(w).Encode(map[string]interface{}{
			"error":  "cursor predates the oldest on-disk segment; bootstrap from /v1/wal/snapshot",
			"oldest": oldest.String(),
		})
		return
	}

	sh.streams.Add(1)
	sh.active.Add(1)
	defer sh.active.Add(-1)
	if sh.Advertise != "" {
		w.Header().Set(HeaderLeader, sh.Advertise)
	}
	w.Header().Set("Content-Type", ContentTypeFrames)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriter(w)
	ctx := r.Context()
	c := from
	for {
		// Take the signal before reading: a frontier advance between the
		// catch-up and the wait below then shows as an already-closed channel
		// instead of a lost wakeup.
		signal := sh.Store.SyncedSignal()
		_, tipOrd := sh.Store.SyncedTip()
		next, err := sh.Store.ReadFrom(c, func(payload []byte, ord int64, nc durable.Cursor) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			env := envelope{Segment: nc.Segment, Offset: nc.Offset, Ord: ord, TipOrd: tipOrd, Record: payload}
			if err := writeEnvelope(bw, env); err != nil {
				return err
			}
			sh.shipped.Add(1)
			return nil
		})
		c = next
		if err != nil {
			switch {
			case ctx.Err() != nil || errors.Is(err, durable.ErrClosed):
				// Follower went away or the leader is shutting down.
			case errors.Is(err, durable.ErrCompacted):
				// Compaction passed the cursor mid-stream. Just end the
				// response; the reconnect gets a clean 410 before any bytes.
				sh.logf("replica: stream at %s overtaken by compaction; ending stream", c)
			default:
				sh.logf("replica: ship stream at %s failed: %v", c, err)
			}
			_ = bw.Flush()
			return
		}
		// Caught up: confirm the frontier so the follower can report lag 0,
		// then park until the frontier moves (or heartbeat so dead
		// connections surface as write errors).
		_, tipOrd = sh.Store.SyncedTip()
		if err := writeEnvelope(bw, envelope{Segment: c.Segment, Offset: c.Offset, TipOrd: tipOrd}); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		idle := time.NewTimer(sh.heartbeat())
		select {
		case <-ctx.Done():
			idle.Stop()
			return
		case <-signal:
			idle.Stop()
		case <-idle.C:
		}
	}
}

// writeEnvelope frames one envelope with the WAL's own CRC framing.
func writeEnvelope(w *bufio.Writer, env envelope) error {
	b, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("replica: encoding envelope: %w", err)
	}
	return durable.WriteFrame(w, b)
}
