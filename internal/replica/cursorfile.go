package replica

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/durable"
)

// CursorFileName is the follower's applied-cursor file inside its data
// directory.
const CursorFileName = "replica-cursor.json"

// SaveCursor atomically persists a follower's applied cursor: temp file,
// fsync, rename, directory fsync — the same discipline the WAL uses for
// snapshots, so a crash leaves either the old cursor or the new one, never
// a torn file. The owner must only call this after the records up to the
// cursor are durable locally, or a restart would skip records it never
// journaled.
func SaveCursor(path string, c durable.Cursor) error {
	b, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("replica: encoding cursor: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".cursor-*.tmp")
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	defer func() { _ = os.Remove(tmp.Name()) }() // no-op after a successful rename
	_, werr := tmp.Write(b)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("replica: writing cursor: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("replica: fsync %s: %w", dir, serr)
	}
	return nil
}

// LoadCursor reads a cursor saved by SaveCursor. ok is false when the file
// does not exist (a fresh follower); a present-but-unreadable file is an
// error, because silently bootstrapping would re-apply from zero over state
// the local WAL already holds.
func LoadCursor(path string) (c durable.Cursor, ok bool, err error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return durable.Cursor{}, false, nil
	}
	if err != nil {
		return durable.Cursor{}, false, fmt.Errorf("replica: %w", err)
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return durable.Cursor{}, false, fmt.Errorf("replica: decoding cursor file %s: %w", path, err)
	}
	return c, true, nil
}
