// Package table implements a small typed, columnar, in-memory table — the
// "dataframe" substrate the paper's experiments sit on. A Table holds named
// columns of numeric or categorical data with per-cell missingness, and
// supports CSV I/O, summary statistics, normalization, feature encoding and
// dataset splits.
package table

import (
	"fmt"
	"math"
	"sort"
)

// Kind is the data type of a column.
type Kind int

const (
	// Numeric columns hold float64 values.
	Numeric Kind = iota
	// Categorical columns hold string values.
	Categorical
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column is a single named column. Exactly one of Nums/Cats is used,
// selected by Kind. Missing[i] marks cell i as NULL; the corresponding
// payload entry is ignored.
type Column struct {
	Name    string
	Kind    Kind
	Nums    []float64
	Cats    []string
	Missing []bool
}

// NewNumeric constructs a fully-observed numeric column.
func NewNumeric(name string, vals []float64) *Column {
	return &Column{Name: name, Kind: Numeric, Nums: vals, Missing: make([]bool, len(vals))}
}

// NewCategorical constructs a fully-observed categorical column.
func NewCategorical(name string, vals []string) *Column {
	return &Column{Name: name, Kind: Categorical, Cats: vals, Missing: make([]bool, len(vals))}
}

// Len returns the number of cells in the column.
func (c *Column) Len() int {
	if c.Kind == Numeric {
		return len(c.Nums)
	}
	return len(c.Cats)
}

// MissingCount returns the number of missing cells.
func (c *Column) MissingCount() int {
	n := 0
	for _, m := range c.Missing {
		if m {
			n++
		}
	}
	return n
}

// Clone deep-copies the column.
func (c *Column) Clone() *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	if c.Nums != nil {
		out.Nums = append([]float64(nil), c.Nums...)
	}
	if c.Cats != nil {
		out.Cats = append([]string(nil), c.Cats...)
	}
	out.Missing = append([]bool(nil), c.Missing...)
	return out
}

// SetMissing marks cell i missing.
func (c *Column) SetMissing(i int) { c.Missing[i] = true }

// IsMissing reports whether cell i is missing.
func (c *Column) IsMissing(i int) bool { return c.Missing[i] }

// NumStats summarizes the observed (non-missing) values of a numeric column.
type NumStats struct {
	Count            int
	Min, Max         float64
	Mean, Std        float64
	P25, Median, P75 float64
}

// Stats computes summary statistics over the observed cells of a numeric
// column. It panics if the column is categorical. If no cell is observed,
// the zero NumStats is returned.
func (c *Column) Stats() NumStats {
	if c.Kind != Numeric {
		panic("table: Stats on categorical column " + c.Name)
	}
	var obs []float64
	for i, v := range c.Nums {
		if !c.Missing[i] {
			obs = append(obs, v)
		}
	}
	if len(obs) == 0 {
		return NumStats{}
	}
	sort.Float64s(obs)
	st := NumStats{
		Count:  len(obs),
		Min:    obs[0],
		Max:    obs[len(obs)-1],
		P25:    quantile(obs, 0.25),
		Median: quantile(obs, 0.5),
		P75:    quantile(obs, 0.75),
	}
	sum := 0.0
	for _, v := range obs {
		sum += v
	}
	st.Mean = sum / float64(len(obs))
	ss := 0.0
	for _, v := range obs {
		d := v - st.Mean
		ss += d * d
	}
	if len(obs) > 1 {
		st.Std = math.Sqrt(ss / float64(len(obs)-1))
	}
	return st
}

// quantile computes the linearly-interpolated q-quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CatCount is a category with its observed frequency.
type CatCount struct {
	Value string
	Count int
}

// TopCategories returns up to n categories of a categorical column ordered
// by descending observed frequency (ties broken alphabetically for
// determinism). It panics if the column is numeric.
func (c *Column) TopCategories(n int) []CatCount {
	if c.Kind != Categorical {
		panic("table: TopCategories on numeric column " + c.Name)
	}
	freq := map[string]int{}
	for i, v := range c.Cats {
		if !c.Missing[i] {
			freq[v]++
		}
	}
	out := make([]CatCount, 0, len(freq))
	for v, k := range freq {
		out = append(out, CatCount{Value: v, Count: k})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value < out[b].Value
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Mode returns the most frequent observed category, or "" if none observed.
func (c *Column) Mode() string {
	top := c.TopCategories(1)
	if len(top) == 0 {
		return ""
	}
	return top[0].Value
}
