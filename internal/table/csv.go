package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MissingToken is the cell value written/recognized as NULL in CSV files.
const MissingToken = ""

// extraMissingTokens are additional spellings accepted on read.
var extraMissingTokens = map[string]bool{
	"": true, "?": true, "NA": true, "N/A": true, "NaN": true, "nan": true,
	"null": true, "NULL": true, "None": true,
}

// WriteCSV writes the table as CSV with a header row. The label column is
// written last under the name "label". Missing cells become empty strings.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(t.Cols)+1)
	for _, c := range t.Cols {
		header = append(header, c.Name)
	}
	header = append(header, "label")
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i := 0; i < t.NumRows(); i++ {
		for ci, c := range t.Cols {
			switch {
			case c.Missing[i]:
				rec[ci] = MissingToken
			case c.Kind == Numeric:
				rec[ci] = strconv.FormatFloat(c.Nums[i], 'g', -1, 64)
			default:
				rec[ci] = c.Cats[i]
			}
		}
		rec[len(rec)-1] = strconv.Itoa(t.Labels[i])
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV with a header row into a Table. The last column is the
// integer class label; every other column is inferred as numeric if all of
// its observed values parse as floats, and categorical otherwise. Missing
// cells are empty strings or any of "?", "NA", "N/A", "NaN", "null", "None".
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: read csv: %w", err)
	}
	if len(recs) < 2 {
		return nil, fmt.Errorf("table: csv needs a header and at least one row")
	}
	header := recs[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("table: csv needs at least one feature column and a label")
	}
	body := recs[1:]
	nrows := len(body)
	ncols := len(header) - 1

	labels := make([]int, nrows)
	maxLabel := 0
	for i, rec := range body {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("table: row %d has %d fields, want %d", i+1, len(rec), len(header))
		}
		y, err := strconv.Atoi(strings.TrimSpace(rec[ncols]))
		if err != nil {
			return nil, fmt.Errorf("table: row %d: bad label %q: %w", i+1, rec[ncols], err)
		}
		if y < 0 {
			return nil, fmt.Errorf("table: row %d: negative label %d", i+1, y)
		}
		labels[i] = y
		if y > maxLabel {
			maxLabel = y
		}
	}

	cols := make([]*Column, ncols)
	for ci := 0; ci < ncols; ci++ {
		missing := make([]bool, nrows)
		raw := make([]string, nrows)
		numeric := true
		for ri, rec := range body {
			v := strings.TrimSpace(rec[ci])
			raw[ri] = v
			if extraMissingTokens[v] {
				missing[ri] = true
				continue
			}
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				numeric = false
			}
		}
		col := &Column{Name: header[ci], Missing: missing}
		if numeric {
			col.Kind = Numeric
			col.Nums = make([]float64, nrows)
			for ri, v := range raw {
				if missing[ri] {
					continue
				}
				col.Nums[ri], _ = strconv.ParseFloat(v, 64)
			}
		} else {
			col.Kind = Categorical
			col.Cats = raw
			for ri := range raw {
				if missing[ri] {
					col.Cats[ri] = ""
				}
			}
		}
		cols[ci] = col
	}
	return New(cols, labels, maxLabel+1)
}
