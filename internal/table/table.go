package table

import (
	"fmt"
	"math/rand"
)

// Table is a collection of equal-length columns plus an integer label vector.
// Labels are class indices in [0, NumLabels).
type Table struct {
	Cols      []*Column
	Labels    []int
	NumLabels int
}

// New creates a table from columns and labels, validating lengths.
func New(cols []*Column, labels []int, numLabels int) (*Table, error) {
	n := len(labels)
	for _, c := range cols {
		if c.Len() != n {
			return nil, fmt.Errorf("table: column %q has %d rows, want %d", c.Name, c.Len(), n)
		}
		if len(c.Missing) != n {
			return nil, fmt.Errorf("table: column %q missing-mask has %d entries, want %d", c.Name, len(c.Missing), n)
		}
	}
	for i, y := range labels {
		if y < 0 || y >= numLabels {
			return nil, fmt.Errorf("table: label %d at row %d out of range [0,%d)", y, i, numLabels)
		}
	}
	return &Table{Cols: cols, Labels: labels, NumLabels: numLabels}, nil
}

// MustNew is New but panics on error; for generators with known-good shapes.
func MustNew(cols []*Column, labels []int, numLabels int) *Table {
	t, err := New(cols, labels, numLabels)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.Labels) }

// NumCols returns the number of feature columns (label excluded).
func (t *Table) NumCols() int { return len(t.Cols) }

// Col returns the column with the given name, or nil.
func (t *Table) Col(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	cols := make([]*Column, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = c.Clone()
	}
	return &Table{
		Cols:      cols,
		Labels:    append([]int(nil), t.Labels...),
		NumLabels: t.NumLabels,
	}
}

// RowIsDirty reports whether any cell of row i is missing.
func (t *Table) RowIsDirty(i int) bool {
	for _, c := range t.Cols {
		if c.Missing[i] {
			return true
		}
	}
	return false
}

// DirtyRows returns the indices of rows with at least one missing cell.
func (t *Table) DirtyRows() []int {
	var out []int
	for i := 0; i < t.NumRows(); i++ {
		if t.RowIsDirty(i) {
			out = append(out, i)
		}
	}
	return out
}

// MissingCellRate returns the fraction of missing cells over all cells.
func (t *Table) MissingCellRate() float64 {
	total, miss := 0, 0
	for _, c := range t.Cols {
		total += c.Len()
		miss += c.MissingCount()
	}
	if total == 0 {
		return 0
	}
	return float64(miss) / float64(total)
}

// MissingRowRate returns the fraction of rows with at least one missing cell.
func (t *Table) MissingRowRate() float64 {
	if t.NumRows() == 0 {
		return 0
	}
	return float64(len(t.DirtyRows())) / float64(t.NumRows())
}

// Subset returns a new table containing the given rows, in order.
func (t *Table) Subset(rows []int) *Table {
	cols := make([]*Column, len(t.Cols))
	for ci, c := range t.Cols {
		nc := &Column{Name: c.Name, Kind: c.Kind, Missing: make([]bool, len(rows))}
		if c.Kind == Numeric {
			nc.Nums = make([]float64, len(rows))
		} else {
			nc.Cats = make([]string, len(rows))
		}
		for ri, r := range rows {
			nc.Missing[ri] = c.Missing[r]
			if c.Kind == Numeric {
				nc.Nums[ri] = c.Nums[r]
			} else {
				nc.Cats[ri] = c.Cats[r]
			}
		}
		cols[ci] = nc
	}
	labels := make([]int, len(rows))
	for ri, r := range rows {
		labels[ri] = t.Labels[r]
	}
	return &Table{Cols: cols, Labels: labels, NumLabels: t.NumLabels}
}

// Split holds a train/validation/test partition of a table.
type Split struct {
	Train, Val, Test *Table
	// TrainRows etc. map split rows back to rows of the source table.
	TrainRows, ValRows, TestRows []int
}

// SplitRandom partitions the table into validation and test sets of the given
// sizes (the remainder becomes training data), shuffling with rng. It mirrors
// the paper's protocol: "randomly select 1,000 examples as the validation set
// and 1,000 examples as the test set; the remaining examples are used as the
// training set."
func (t *Table) SplitRandom(rng *rand.Rand, valN, testN int) (*Split, error) {
	n := t.NumRows()
	if valN+testN >= n {
		return nil, fmt.Errorf("table: split sizes val=%d test=%d exceed %d rows", valN, testN, n)
	}
	perm := rng.Perm(n)
	valRows := append([]int(nil), perm[:valN]...)
	testRows := append([]int(nil), perm[valN:valN+testN]...)
	trainRows := append([]int(nil), perm[valN+testN:]...)
	return &Split{
		Train: t.Subset(trainRows), Val: t.Subset(valRows), Test: t.Subset(testRows),
		TrainRows: trainRows, ValRows: valRows, TestRows: testRows,
	}, nil
}
