package table

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTable() *Table {
	return MustNew([]*Column{
		NewNumeric("x", []float64{1, 2, 3, 4, 5, 6}),
		NewCategorical("c", []string{"a", "b", "a", "c", "a", "b"}),
	}, []int{0, 1, 0, 1, 0, 1}, 2)
}

func TestColumnStats(t *testing.T) {
	c := NewNumeric("x", []float64{4, 1, 3, 2, 5})
	st := c.Stats()
	if st.Min != 1 || st.Max != 5 {
		t.Fatalf("min/max = %v/%v", st.Min, st.Max)
	}
	if st.Mean != 3 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.Median != 3 {
		t.Fatalf("median = %v", st.Median)
	}
	if st.P25 != 2 || st.P75 != 4 {
		t.Fatalf("quartiles = %v/%v", st.P25, st.P75)
	}
	if math.Abs(st.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", st.Std)
	}
}

func TestColumnStatsSkipsMissing(t *testing.T) {
	c := NewNumeric("x", []float64{1, 100, 3})
	c.SetMissing(1)
	st := c.Stats()
	if st.Count != 2 || st.Max != 3 || st.Mean != 2 {
		t.Fatalf("stats with missing = %+v", st)
	}
}

func TestTopCategoriesAndMode(t *testing.T) {
	c := NewCategorical("c", []string{"b", "a", "a", "c", "a", "b"})
	top := c.TopCategories(2)
	if len(top) != 2 || top[0].Value != "a" || top[0].Count != 3 || top[1].Value != "b" {
		t.Fatalf("top = %+v", top)
	}
	if c.Mode() != "a" {
		t.Fatalf("mode = %q", c.Mode())
	}
}

func TestTopCategoriesTieBreak(t *testing.T) {
	c := NewCategorical("c", []string{"z", "y", "y", "z"})
	top := c.TopCategories(2)
	if top[0].Value != "y" || top[1].Value != "z" {
		t.Fatalf("alphabetical tie-break violated: %+v", top)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	got := quantile([]float64{0, 10}, 0.5)
	if got != 5 {
		t.Fatalf("quantile = %v", got)
	}
	if q := quantile([]float64{7}, 0.9); q != 7 {
		t.Fatalf("single-element quantile = %v", q)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New([]*Column{NewNumeric("x", []float64{1})}, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := New(nil, []int{5}, 2); err == nil {
		t.Fatal("out-of-range label not rejected")
	}
}

func TestSubsetAndClone(t *testing.T) {
	tb := sampleTable()
	sub := tb.Subset([]int{4, 0})
	if sub.NumRows() != 2 || sub.Cols[0].Nums[0] != 5 || sub.Cols[0].Nums[1] != 1 {
		t.Fatalf("subset wrong: %+v", sub.Cols[0].Nums)
	}
	if sub.Labels[0] != 0 {
		t.Fatalf("subset label = %d", sub.Labels[0])
	}
	cl := tb.Clone()
	cl.Cols[0].Nums[0] = 99
	if tb.Cols[0].Nums[0] == 99 {
		t.Fatal("clone aliases source")
	}
}

func TestDirtyRowsAndRates(t *testing.T) {
	tb := sampleTable()
	tb.Cols[0].SetMissing(1)
	tb.Cols[1].SetMissing(1)
	tb.Cols[1].SetMissing(3)
	if got := tb.DirtyRows(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("dirty rows = %v", got)
	}
	if r := tb.MissingRowRate(); math.Abs(r-2.0/6) > 1e-12 {
		t.Fatalf("row rate = %v", r)
	}
	if r := tb.MissingCellRate(); math.Abs(r-3.0/12) > 1e-12 {
		t.Fatalf("cell rate = %v", r)
	}
}

func TestSplitRandomPartitions(t *testing.T) {
	tb := sampleTable()
	sp, err := tb.SplitRandom(rand.New(rand.NewSource(1)), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Val.NumRows() != 2 || sp.Test.NumRows() != 2 || sp.Train.NumRows() != 2 {
		t.Fatalf("split sizes: %d/%d/%d", sp.Train.NumRows(), sp.Val.NumRows(), sp.Test.NumRows())
	}
	seen := map[int]bool{}
	for _, rows := range [][]int{sp.TrainRows, sp.ValRows, sp.TestRows} {
		for _, r := range rows {
			if seen[r] {
				t.Fatalf("row %d in two partitions", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != 6 {
		t.Fatalf("partition covers %d rows", len(seen))
	}
	if _, err := tb.SplitRandom(rand.New(rand.NewSource(1)), 4, 2); err == nil {
		t.Fatal("oversized split not rejected")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sampleTable()
	tb.Cols[0].SetMissing(2)
	tb.Cols[1].SetMissing(4)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tb.NumRows() || got.NumCols() != tb.NumCols() {
		t.Fatalf("shape %dx%d", got.NumRows(), got.NumCols())
	}
	if got.Cols[0].Kind != Numeric || got.Cols[1].Kind != Categorical {
		t.Fatalf("kinds: %v %v", got.Cols[0].Kind, got.Cols[1].Kind)
	}
	if !got.Cols[0].Missing[2] || !got.Cols[1].Missing[4] {
		t.Fatal("missing flags lost in round trip")
	}
	for i := range tb.Labels {
		if got.Labels[i] != tb.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
		if i != 2 && got.Cols[0].Nums[i] != tb.Cols[0].Nums[i] {
			t.Fatalf("numeric cell %d changed", i)
		}
	}
}

func TestReadCSVMissingTokens(t *testing.T) {
	in := "x,c,label\n1,a,0\nNA,?,1\nnan,null,0\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cols[0].Missing[1] || !got.Cols[0].Missing[2] {
		t.Fatal("NA/nan not recognized as missing")
	}
	if !got.Cols[1].Missing[1] || !got.Cols[1].Missing[2] {
		t.Fatal("?/null not recognized as missing")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("x,label\n")); err == nil {
		t.Fatal("header-only csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("x,label\n1,notanint\n")); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := ReadCSV(strings.NewReader("label\n0\n")); err == nil {
		t.Fatal("featureless csv accepted")
	}
}

func TestEncoderNumericScaling(t *testing.T) {
	tb := MustNew([]*Column{NewNumeric("x", []float64{0, 5, 10})}, []int{0, 1, 0}, 2)
	enc := FitEncoder(tb, 0)
	if enc.Dim != 1 {
		t.Fatalf("dim = %d", enc.Dim)
	}
	v := enc.EncodeRow(tb, 1, nil)
	if v[0] != 0.5 {
		t.Fatalf("scaled = %v", v[0])
	}
}

func TestEncoderCategoricalOneHot(t *testing.T) {
	tb := sampleTable()
	enc := FitEncoder(tb, 0)
	// 1 numeric + (3 categories + other) = 5 dims.
	if enc.Dim != 5 {
		t.Fatalf("dim = %d", enc.Dim)
	}
	v := enc.EncodeRow(tb, 0, nil) // category "a"
	hot := 0
	for _, x := range v[1:] {
		if x != 0 {
			hot++
			if math.Abs(x-OneHotScale) > 1e-15 {
				t.Fatalf("one-hot value %v", x)
			}
		}
	}
	if hot != 1 {
		t.Fatalf("%d hot slots", hot)
	}
}

func TestEncoderUnseenCategoryGoesToOther(t *testing.T) {
	tb := sampleTable()
	enc := FitEncoder(tb, 0)
	a := enc.EncodeRow(tb, 0, map[int]Cell{1: CatCell("zebra")})
	b := enc.EncodeRow(tb, 0, map[int]Cell{1: CatCell("unicorn")})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("two unseen categories encode differently")
		}
	}
}

func TestEncoderOverrideAndImpute(t *testing.T) {
	tb := sampleTable()
	tb.Cols[0].SetMissing(0)
	enc := FitEncoder(tb, 0)
	imputed := enc.EncodeRow(tb, 0, nil)
	mean := tb.Cols[0].Stats().Mean
	want := (mean - 2) / 4 // observed range [2,6] after cell 0 went missing
	if math.Abs(imputed[0]-want) > 1e-12 {
		t.Fatalf("imputed = %v want %v", imputed[0], want)
	}
	forced := enc.EncodeRow(tb, 0, map[int]Cell{0: NumCell(6)})
	if forced[0] != 1 {
		t.Fatalf("override = %v", forced[0])
	}
}

func TestImputeDefaults(t *testing.T) {
	tb := sampleTable()
	tb.Cols[0].SetMissing(0)
	tb.Cols[1].SetMissing(1)
	clean := ImputeDefaults(tb)
	if clean.MissingCellRate() != 0 {
		t.Fatal("missing cells remain")
	}
	if clean.Cols[0].Nums[0] != tb.Cols[0].Stats().Mean {
		t.Fatalf("mean imputation = %v", clean.Cols[0].Nums[0])
	}
	if clean.Cols[1].Cats[1] != "a" {
		t.Fatalf("mode imputation = %q", clean.Cols[1].Cats[1])
	}
	if tb.MissingCellRate() == 0 {
		t.Fatal("ImputeDefaults mutated its input")
	}
}

func TestQuantilePropertyMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = v
		}
		c := NewNumeric("x", vals)
		st := c.Stats()
		return st.Min <= st.P25 && st.P25 <= st.Median &&
			st.Median <= st.P75 && st.P75 <= st.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeAllMatchesEncodeRow(t *testing.T) {
	tb := sampleTable()
	enc := FitEncoder(tb, 0)
	all := enc.EncodeAll(tb)
	for i := range all {
		row := enc.EncodeRow(tb, i, nil)
		for d := range row {
			if row[d] != all[i][d] {
				t.Fatalf("row %d dim %d mismatch", i, d)
			}
		}
	}
}
