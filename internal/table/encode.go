package table

import "fmt"

// Cell is a single typed cell value, used to override or fill table cells
// (e.g. candidate repairs for missing values).
type Cell struct {
	Kind Kind
	Num  float64
	Cat  string
}

// NumCell constructs a numeric cell.
func NumCell(v float64) Cell { return Cell{Kind: Numeric, Num: v} }

// CatCell constructs a categorical cell.
func CatCell(v string) Cell { return Cell{Kind: Categorical, Cat: v} }

// String renders the cell for display.
func (c Cell) String() string {
	if c.Kind == Numeric {
		return fmt.Sprintf("%g", c.Num)
	}
	return c.Cat
}

// colSpec is the fitted encoding of one column.
type colSpec struct {
	kind Kind
	// numeric: min-max scaling of observed training values.
	min, scale float64
	mean       float64 // imputation default
	// categorical: category -> one-hot slot; unseen/other categories share
	// the last slot.
	index map[string]int
	width int
	mode  string // imputation default
}

// OneHotScale is the value written into active one-hot slots: 1/√2, so that
// a category mismatch contributes exactly 1.0 to the squared Euclidean
// distance — the same as a full-range numeric mismatch — instead of 2.0,
// which would let categorical blocks dominate mixed-type distances.
const OneHotScale = 0.7071067811865476

// Encoder maps table rows to dense feature vectors: numeric columns are
// min-max scaled to [0,1] using training statistics, categorical columns are
// one-hot encoded (active slots get OneHotScale) over their training
// categories with a shared "other" slot. Missing cells without an override
// are imputed (mean / mode) — callers that care about incompleteness
// override them with candidate repairs instead.
type Encoder struct {
	specs []colSpec
	// Dim is the encoded feature dimensionality.
	Dim int
	// MaxCategories caps one-hot width per categorical column (0 = default 16).
	MaxCategories int
}

// FitEncoder learns encoding parameters from the observed cells of t.
func FitEncoder(t *Table, maxCategories int) *Encoder {
	if maxCategories <= 0 {
		maxCategories = 16
	}
	e := &Encoder{MaxCategories: maxCategories}
	dim := 0
	for _, c := range t.Cols {
		var sp colSpec
		sp.kind = c.Kind
		if c.Kind == Numeric {
			st := c.Stats()
			sp.min = st.Min
			if st.Max > st.Min {
				sp.scale = 1 / (st.Max - st.Min)
			} else {
				sp.scale = 0
			}
			sp.mean = st.Mean
			dim++
		} else {
			top := c.TopCategories(maxCategories)
			sp.index = make(map[string]int, len(top))
			for i, cc := range top {
				sp.index[cc.Value] = i
			}
			sp.width = len(top) + 1 // +1 "other" slot
			sp.mode = c.Mode()
			dim += sp.width
		}
		e.specs = append(e.specs, sp)
	}
	e.Dim = dim
	return e
}

// EncodeRow encodes row `row` of t into a dense vector. override maps column
// index -> replacement cell value (used for candidate repairs of missing
// cells); overridden cells are used regardless of their missing flag.
func (e *Encoder) EncodeRow(t *Table, row int, override map[int]Cell) []float64 {
	out := make([]float64, e.Dim)
	e.EncodeRowInto(out, t, row, override)
	return out
}

// EncodeRowInto is EncodeRow writing into dst (len(dst) must equal e.Dim).
func (e *Encoder) EncodeRowInto(dst []float64, t *Table, row int, override map[int]Cell) {
	if len(dst) != e.Dim {
		panic(fmt.Sprintf("table: EncodeRowInto dst has dim %d, want %d", len(dst), e.Dim))
	}
	for i := range dst {
		dst[i] = 0
	}
	pos := 0
	for ci, c := range t.Cols {
		sp := &e.specs[ci]
		if sp.kind == Numeric {
			v := c.Nums[row]
			if ov, ok := override[ci]; ok {
				v = ov.Num
			} else if c.Missing[row] {
				v = sp.mean
			}
			dst[pos] = (v - sp.min) * sp.scale
			pos++
		} else {
			v := c.Cats[row]
			if ov, ok := override[ci]; ok {
				v = ov.Cat
			} else if c.Missing[row] {
				v = sp.mode
			}
			slot, ok := sp.index[v]
			if !ok {
				slot = sp.width - 1 // "other"
			}
			dst[pos+slot] = OneHotScale
			pos += sp.width
		}
	}
}

// EncodeAll encodes every row of t (with imputation of missing cells).
func (e *Encoder) EncodeAll(t *Table) [][]float64 {
	out := make([][]float64, t.NumRows())
	for i := range out {
		out[i] = e.EncodeRow(t, i, nil)
	}
	return out
}

// ImputeDefaults returns a copy of t with every missing numeric cell replaced
// by the column mean and every missing categorical cell by the column mode —
// the paper's "Default Cleaning" baseline. Statistics are computed on t's own
// observed cells.
func ImputeDefaults(t *Table) *Table {
	out := t.Clone()
	for _, c := range out.Cols {
		if c.MissingCount() == 0 {
			continue
		}
		if c.Kind == Numeric {
			mean := c.Stats().Mean
			for i := range c.Nums {
				if c.Missing[i] {
					c.Nums[i] = mean
					c.Missing[i] = false
				}
			}
		} else {
			mode := c.Mode()
			for i := range c.Cats {
				if c.Missing[i] {
					c.Cats[i] = mode
					c.Missing[i] = false
				}
			}
		}
	}
	return out
}
