// Package missing injects missing values into complete tables under the
// standard missingness mechanisms (MCAR / MAR / MNAR) and measures feature
// importance — the paper's injection protocol (§5.1): "we first assess the
// relative importance of each feature in a classification task (by measuring
// the accuracy loss after removing a feature), and use the relative feature
// importance as the relative probability of a feature missing."
package missing

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/knn"
	"repro/internal/table"
)

// Mechanism identifies a missingness model.
type Mechanism int

const (
	// MCAR — missing completely at random: every cell is dropped with equal
	// probability.
	MCAR Mechanism = iota
	// MAR — missing at random: the drop probability of a cell depends on an
	// observed covariate (we use the row's label).
	MAR
	// MNAR — missing not at random: the drop probability of a column is
	// proportional to its importance (the paper's protocol).
	MNAR
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case MCAR:
		return "MCAR"
	case MAR:
		return "MAR"
	case MNAR:
		return "MNAR"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// InjectMCAR drops each cell independently with probability rate.
func InjectMCAR(t *table.Table, rate float64, rng *rand.Rand) {
	for _, c := range t.Cols {
		for i := 0; i < c.Len(); i++ {
			if rng.Float64() < rate {
				c.Missing[i] = true
			}
		}
	}
}

// InjectMAR drops cells with probability depending on the row label:
// rows of label 1 lose cells at twice the base rate of label 0 (scaled so the
// overall expected rate matches `rate`).
func InjectMAR(t *table.Table, rate float64, rng *rand.Rand) {
	n := t.NumRows()
	if n == 0 {
		return
	}
	n1 := 0
	for _, y := range t.Labels {
		if y != 0 {
			n1++
		}
	}
	// p0·n0 + 2·p0·n1 = rate·n
	p0 := rate * float64(n) / (float64(n-n1) + 2*float64(n1))
	for _, c := range t.Cols {
		for i := 0; i < c.Len(); i++ {
			p := p0
			if t.Labels[i] != 0 {
				p = 2 * p0
			}
			if rng.Float64() < p {
				c.Missing[i] = true
			}
		}
	}
}

// InjectMNAR drops cells of column f with probability proportional to
// weights[f], scaled so the expected overall cell-missing rate is `rate`.
// Weights are typically feature importances (see FeatureImportance).
func InjectMNAR(t *table.Table, rate float64, weights []float64, rng *rand.Rand) error {
	if len(weights) != t.NumCols() {
		return fmt.Errorf("missing: %d weights for %d columns", len(weights), t.NumCols())
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
	}
	if total == 0 {
		InjectMCAR(t, rate, rng)
		return nil
	}
	// Per-column probability p_f = rate·|cols|·w_f/Σw, capped at 0.95.
	for ci, c := range t.Cols {
		w := weights[ci]
		if w < 0 {
			w = 0
		}
		p := rate * float64(t.NumCols()) * w / total
		if p > 0.95 {
			p = 0.95
		}
		for i := 0; i < c.Len(); i++ {
			if rng.Float64() < p {
				c.Missing[i] = true
			}
		}
	}
	return nil
}

// InjectMNARBiased is the cell-level MNAR injector used by the experiments:
// the number of missing cells per column is proportional to the column's
// importance weight (overall cell rate = rate), and *which* cells go missing
// is value-dependent — numeric cells with extreme values (both tails,
// weight e^(bias·|z|)) and rare categories are preferentially dropped, the
// paper's §5.1 MNAR story ("the probability of missing may be higher for
// more sensitive/important attributes. For example, high income people are
// more likely to not report their income"). Two-sided tails keep any single
// global imputation rule (mean, max, ...) from undoing the damage, which is
// what separates per-tuple cleaners from BoostClean-style selection.
func InjectMNARBiased(t *table.Table, rate, bias float64, weights []float64, rng *rand.Rand) error {
	if len(weights) != t.NumCols() {
		return fmt.Errorf("missing: %d weights for %d columns", len(weights), t.NumCols())
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		InjectMCAR(t, rate, rng)
		return nil
	}
	n := t.NumRows()
	budget := rate * float64(n*t.NumCols())
	for ci, c := range t.Cols {
		w := weights[ci]
		if w <= 0 {
			continue
		}
		count := int(budget*w/total + 0.5)
		if count > n*95/100 {
			count = n * 95 / 100
		}
		cellW := absTailWeights(c, bias)
		taken := make([]bool, n)
		for k := 0; k < count; k++ {
			row := sampleRowByTail(cellW, taken, rng)
			if row < 0 {
				break
			}
			taken[row] = true
			c.Missing[row] = true
		}
	}
	return nil
}

// absTailWeights returns per-cell sampling weights: e^(bias·|z|) for numeric
// columns (both tails), inverse category frequency for categorical columns.
func absTailWeights(c *table.Column, bias float64) []float64 {
	w := make([]float64, c.Len())
	if c.Kind == table.Numeric {
		st := c.Stats()
		std := st.Std
		if std <= 0 {
			std = 1
		}
		for i, v := range c.Nums {
			z := math.Abs(v-st.Mean) / std
			if z > 4 {
				z = 4
			}
			w[i] = math.Exp(bias * z)
		}
		return w
	}
	freq := map[string]int{}
	for i, v := range c.Cats {
		if !c.Missing[i] {
			freq[v]++
		}
	}
	for i, v := range c.Cats {
		f := freq[v]
		if f == 0 {
			f = 1
		}
		w[i] = 1 / float64(f)
	}
	return w
}

// InjectMNARRows injects missing values at the *row* level under the
// paper's MNAR story (§5.1): rowRate of the rows become dirty; the column of
// each missing cell is drawn with probability proportional to weights
// (feature importance), and the *rows* are drawn value-dependently — cells
// with extreme numeric values or rare categories are preferentially dropped
// ("high income people are more likely to not report their income"). This is
// what makes mean/mode imputation systematically biased and gives cleaning
// room to matter. Each dirty row gains extra missing cells with probability
// extraProb per additional cell.
func InjectMNARRows(t *table.Table, rowRate, extraProb float64, weights []float64, rng *rand.Rand) error {
	if len(weights) != t.NumCols() {
		return fmt.Errorf("missing: %d weights for %d columns", len(weights), t.NumCols())
	}
	n := t.NumRows()
	dirtyN := int(rowRate*float64(n) + 0.5)
	tail := tailWeights(t)
	isDirty := make([]bool, n)
	for d := 0; d < dirtyN; d++ {
		cols := sampleColumns(weights, 1, rng)
		if len(cols) == 0 {
			break
		}
		ci := cols[0]
		row := sampleRowByTail(tail[ci], isDirty, rng)
		if row < 0 {
			break
		}
		isDirty[row] = true
		t.Cols[ci].Missing[row] = true
		// Extra missing cells in the same record, importance-weighted.
		w := append([]float64(nil), weights...)
		w[ci] = 0
		for len(missingColsOf(t, row)) < t.NumCols() && rng.Float64() < extraProb {
			extra := sampleColumns(w, 1, rng)
			if len(extra) == 0 {
				break
			}
			t.Cols[extra[0]].Missing[row] = true
			w[extra[0]] = 0
		}
	}
	return nil
}

// tailWeights precomputes, per column, a sampling weight for each row:
// numeric cells get exp(1.5·z) (upper-tail bias), categorical cells get the
// inverse frequency of their category (rare values go missing).
func tailWeights(t *table.Table) [][]float64 {
	out := make([][]float64, t.NumCols())
	for ci, c := range t.Cols {
		w := make([]float64, c.Len())
		if c.Kind == table.Numeric {
			st := c.Stats()
			std := st.Std
			if std <= 0 {
				std = 1
			}
			for i, v := range c.Nums {
				z := (v - st.Mean) / std
				if z > 4 {
					z = 4
				}
				w[i] = math.Exp(0.8 * z)
			}
		} else {
			freq := map[string]int{}
			for i, v := range c.Cats {
				if !c.Missing[i] {
					freq[v]++
				}
			}
			for i, v := range c.Cats {
				f := freq[v]
				if f == 0 {
					f = 1
				}
				w[i] = 1 / float64(f)
			}
		}
		out[ci] = w
	}
	return out
}

// sampleRowByTail draws a not-yet-dirty row with probability proportional to
// the tail weights; -1 when every row is dirty.
func sampleRowByTail(w []float64, isDirty []bool, rng *rand.Rand) int {
	total := 0.0
	for i, v := range w {
		if !isDirty[i] {
			total += v
		}
	}
	if total == 0 {
		return -1
	}
	r := rng.Float64() * total
	acc := 0.0
	for i, v := range w {
		if isDirty[i] {
			continue
		}
		acc += v
		if r < acc {
			return i
		}
	}
	return -1
}

// missingColsOf lists row i's missing columns.
func missingColsOf(t *table.Table, i int) []int {
	var out []int
	for ci, c := range t.Cols {
		if c.Missing[i] {
			out = append(out, ci)
		}
	}
	return out
}

// sampleColumns draws k distinct column indices with probability
// proportional to weights.
func sampleColumns(weights []float64, k int, rng *rand.Rand) []int {
	w := append([]float64(nil), weights...)
	var out []int
	for len(out) < k {
		total := 0.0
		for _, v := range w {
			if v > 0 {
				total += v
			}
		}
		if total == 0 {
			// Remaining weights exhausted: fill with unused columns.
			for ci := range w {
				if len(out) >= k {
					break
				}
				if !contains(out, ci) {
					out = append(out, ci)
				}
			}
			break
		}
		r := rng.Float64() * total
		acc := 0.0
		for ci, v := range w {
			if v <= 0 {
				continue
			}
			acc += v
			if r < acc {
				out = append(out, ci)
				w[ci] = 0
				break
			}
		}
	}
	return out
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// FeatureImportance estimates the importance of each column as the K-NN
// accuracy loss on a held-out probe set when the column is removed
// (leave-one-feature-out). Negative losses are clamped to zero. The table
// must be complete (no missing cells).
func FeatureImportance(t *table.Table, k int, kernel knn.Kernel, rng *rand.Rand, probeN int) ([]float64, error) {
	if t.MissingCellRate() > 0 {
		return nil, fmt.Errorf("missing: FeatureImportance requires a complete table")
	}
	if probeN <= 0 || probeN >= t.NumRows()/2 {
		probeN = t.NumRows() / 4
	}
	split, err := t.SplitRandom(rng, probeN, 0)
	if err != nil {
		return nil, err
	}
	base, err := knnAccuracy(split.Train, split.Val, k, kernel, -1)
	if err != nil {
		return nil, err
	}
	imp := make([]float64, t.NumCols())
	for f := range imp {
		acc, err := knnAccuracy(split.Train, split.Val, k, kernel, f)
		if err != nil {
			return nil, err
		}
		loss := base - acc
		if loss < 0 {
			loss = 0
		}
		imp[f] = loss
	}
	// If no feature mattered, fall back to uniform weights.
	total := 0.0
	for _, v := range imp {
		total += v
	}
	if total == 0 {
		for i := range imp {
			imp[i] = 1
		}
	}
	return imp, nil
}

// knnAccuracy trains K-NN on train (dropping column dropCol if ≥ 0) and
// returns its accuracy on probe.
func knnAccuracy(train, probe *table.Table, k int, kernel knn.Kernel, dropCol int) (float64, error) {
	tr := train
	pb := probe
	if dropCol >= 0 {
		tr = dropColumn(train, dropCol)
		pb = dropColumn(probe, dropCol)
	}
	enc := table.FitEncoder(tr, 0)
	clf, err := knn.NewClassifier(k, kernel, enc.EncodeAll(tr), tr.Labels, tr.NumLabels)
	if err != nil {
		return 0, err
	}
	return clf.Accuracy(enc.EncodeAll(pb), pb.Labels), nil
}

// dropColumn returns a shallow table without column f.
func dropColumn(t *table.Table, f int) *table.Table {
	cols := make([]*table.Column, 0, len(t.Cols)-1)
	for i, c := range t.Cols {
		if i != f {
			cols = append(cols, c)
		}
	}
	return &table.Table{Cols: cols, Labels: t.Labels, NumLabels: t.NumLabels}
}
