package missing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/knn"
	"repro/internal/table"
)

func completeTable(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	y := make([]float64, n)
	c := make([]string, n)
	labels := make([]int, n)
	cats := []string{"a", "b", "c", "rare"}
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
		ci := rng.Intn(10)
		switch {
		case ci < 5:
			c[i] = cats[0]
		case ci < 8:
			c[i] = cats[1]
		case ci < 9:
			c[i] = cats[2]
		default:
			c[i] = cats[3]
		}
		if x[i] > 0 {
			labels[i] = 1
		}
	}
	return table.MustNew([]*table.Column{
		table.NewNumeric("x", x),
		table.NewNumeric("y", y),
		table.NewCategorical("c", c),
	}, labels, 2)
}

func TestInjectMCARHitsRate(t *testing.T) {
	tb := completeTable(2000, 1)
	InjectMCAR(tb, 0.2, rand.New(rand.NewSource(2)))
	r := tb.MissingCellRate()
	if math.Abs(r-0.2) > 0.03 {
		t.Fatalf("MCAR rate = %v, want ≈0.2", r)
	}
}

func TestInjectMARLabelDependence(t *testing.T) {
	tb := completeTable(4000, 3)
	InjectMAR(tb, 0.2, rand.New(rand.NewSource(4)))
	miss := [2]int{}
	count := [2]int{}
	for _, c := range tb.Cols {
		for i := range c.Missing {
			count[tb.Labels[i]]++
			if c.Missing[i] {
				miss[tb.Labels[i]]++
			}
		}
	}
	r0 := float64(miss[0]) / float64(count[0])
	r1 := float64(miss[1]) / float64(count[1])
	if r1 < 1.5*r0 {
		t.Fatalf("MAR rates r0=%v r1=%v: label dependence missing", r0, r1)
	}
	overall := tb.MissingCellRate()
	if math.Abs(overall-0.2) > 0.03 {
		t.Fatalf("MAR overall rate = %v", overall)
	}
}

func TestInjectMNARWeightsColumns(t *testing.T) {
	tb := completeTable(3000, 5)
	if err := InjectMNAR(tb, 0.1, []float64{1, 0, 0}, rand.New(rand.NewSource(6))); err != nil {
		t.Fatal(err)
	}
	if tb.Cols[1].MissingCount() != 0 || tb.Cols[2].MissingCount() != 0 {
		t.Fatal("zero-weight columns were injected")
	}
	if tb.Cols[0].MissingCount() == 0 {
		t.Fatal("weighted column untouched")
	}
	if err := InjectMNAR(tb, 0.1, []float64{1}, rand.New(rand.NewSource(6))); err == nil {
		t.Fatal("weight-length mismatch accepted")
	}
}

func TestInjectMNARBiasedTargetsTails(t *testing.T) {
	tb := completeTable(4000, 7)
	if err := InjectMNARBiased(tb, 0.15, 1.5, []float64{1, 1, 1}, rand.New(rand.NewSource(8))); err != nil {
		t.Fatal(err)
	}
	// Mean |z| of missing numeric cells should exceed the overall mean |z|
	// (≈ 0.8 for a standard normal).
	col := tb.Cols[0]
	var missSum float64
	var missN int
	for i, v := range col.Nums {
		if col.Missing[i] {
			missSum += math.Abs(v)
			missN++
		}
	}
	if missN == 0 {
		t.Fatal("no missing cells injected")
	}
	if avg := missSum / float64(missN); avg < 1.0 {
		t.Fatalf("missing cells not tail-biased: mean |z| = %v", avg)
	}
	// Rate approximately honored.
	if r := tb.MissingCellRate(); math.Abs(r-0.15) > 0.03 {
		t.Fatalf("cell rate = %v", r)
	}
}

func TestInjectMNARBiasedPrefersRareCategories(t *testing.T) {
	tb := completeTable(4000, 9)
	if err := InjectMNARBiased(tb, 0.1, 1.0, []float64{0, 0, 1}, rand.New(rand.NewSource(10))); err != nil {
		t.Fatal(err)
	}
	col := tb.Cols[2]
	missRare, totalRare, missCommon, totalCommon := 0, 0, 0, 0
	for i, v := range col.Cats {
		if v == "rare" || v == "c" {
			totalRare++
			if col.Missing[i] {
				missRare++
			}
		} else if v == "a" {
			totalCommon++
			if col.Missing[i] {
				missCommon++
			}
		}
	}
	rRare := float64(missRare) / float64(totalRare)
	rCommon := float64(missCommon) / float64(totalCommon)
	if rRare < 2*rCommon {
		t.Fatalf("rare categories not preferred: rare=%v common=%v", rRare, rCommon)
	}
}

func TestInjectMNARRows(t *testing.T) {
	tb := completeTable(1000, 11)
	if err := InjectMNARRows(tb, 0.2, 0.3, []float64{1, 1, 1}, rand.New(rand.NewSource(12))); err != nil {
		t.Fatal(err)
	}
	if r := tb.MissingRowRate(); math.Abs(r-0.2) > 0.02 {
		t.Fatalf("row rate = %v", r)
	}
}

func TestFeatureImportanceFindsSignal(t *testing.T) {
	tb := completeTable(600, 13)
	imp, err := FeatureImportance(tb, 3, knn.NegEuclidean{}, rand.New(rand.NewSource(14)), 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 3 {
		t.Fatalf("%d importances", len(imp))
	}
	// Label is sign(x): column x must be the most important.
	if !(imp[0] > imp[1] && imp[0] > imp[2]) {
		t.Fatalf("importance ranking wrong: %v", imp)
	}
}

func TestFeatureImportanceRejectsDirtyTable(t *testing.T) {
	tb := completeTable(100, 15)
	tb.Cols[0].SetMissing(0)
	if _, err := FeatureImportance(tb, 3, knn.NegEuclidean{}, rand.New(rand.NewSource(16)), 0); err == nil {
		t.Fatal("dirty table accepted")
	}
}

func TestMechanismString(t *testing.T) {
	if MCAR.String() != "MCAR" || MAR.String() != "MAR" || MNAR.String() != "MNAR" {
		t.Fatal("mechanism names wrong")
	}
}
