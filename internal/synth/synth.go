// Package synth generates the four evaluation datasets of the paper's Table 1
// in shape (rows, features, type mix, task difficulty) — a documented
// substitution for the original data (see DESIGN.md §4): the paper itself
// injected synthetic MNAR errors into Supreme/Bank/Puma, and BabyProduct's
// real missing values require a generator with known ground truth so the
// human-cleaning oracle can be simulated.
package synth

import (
	"math"
	"math/rand"

	"repro/internal/table"
)

// labelFromScore draws a binary label whose Bayes-optimal accuracy is
// controlled by the score margin plus explicit flip noise.
func labelFromScore(score, flip float64, rng *rand.Rand) int {
	y := 0
	if score > 0 {
		y = 1
	}
	if rng.Float64() < flip {
		y = 1 - y
	}
	return y
}

// Supreme mimics the Supreme Court dataset (3052 rows × 7 features, binary
// outcome): discrete judicial attributes with a well-separated, nearly
// linear decision rule — the paper reports 0.968 ground-truth accuracy.
// Features are discrete (votes, directions, small ordinal scores), so the
// five-point percentile repairs frequently equal the missing value exactly,
// which is what lets oracle cleaning recover the full accuracy gap.
func Supreme(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"liberal_votes", "lower_court_dir", "justice_ideology",
		"petitioner_rank", "respondent_rank", "issue_area", "term_year"}
	data := make([][]float64, len(names))
	for f := range names {
		data[f] = make([]float64, n)
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		// The two dominant features take five evenly-spaced levels, so the
		// five-point percentile repairs {min, p25, mean, p75, max} coincide
		// with the level set and a human picking the closest candidate can
		// restore the truth exactly (as with the paper's categorical court
		// attributes).
		liberalVotes := float64(2 * rng.Intn(5)) // vote margin levels 0,2,4,6,8
		ideology := float64(rng.Intn(5)) - 2     // −2..2
		lowerCourtDir := float64(rng.Intn(2))    // conservative / liberal
		petRank := float64(1 + rng.Intn(5))      // 1..5
		respRank := float64(1 + rng.Intn(5))     // 1..5
		issue := float64(rng.Intn(4))            // 0..3
		term := float64(rng.Intn(31))            // 0..30
		vals := []float64{liberalVotes, lowerCourtDir, ideology, petRank, respRank, issue, term}
		for f := range names {
			data[f][i] = vals[f]
		}
		score := 0.8*(liberalVotes-4) + 2.2*(lowerCourtDir-0.5) + 1.4*ideology +
			0.5*(petRank-respRank) - 0.2*(issue-1.5)
		labels[i] = labelFromScore(score+0.6*rng.NormFloat64(), 0.02, rng)
	}
	cols := make([]*table.Column, len(names))
	for f, name := range names {
		cols[f] = table.NewNumeric(name, data[f])
	}
	return table.MustNew(cols, labels, 2)
}

// Bank mimics the Bank marketing dataset (3192 rows × 8 mixed features):
// a noisy task — the paper reports 0.643 ground-truth accuracy.
func Bank(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	jobs := []string{"admin", "technician", "blue-collar", "management", "services", "retired"}
	maritals := []string{"married", "single", "divorced"}
	educations := []string{"primary", "secondary", "tertiary"}
	housings := []string{"yes", "no"}

	age := make([]float64, n)
	balance := make([]float64, n)
	duration := make([]float64, n)
	campaign := make([]float64, n)
	job := make([]string, n)
	marital := make([]string, n)
	education := make([]string, n)
	housing := make([]string, n)
	labels := make([]int, n)

	jobW := map[string]float64{"admin": 0.1, "technician": 0.0, "blue-collar": -0.4,
		"management": 0.5, "services": -0.2, "retired": 0.6}
	eduW := map[string]float64{"primary": -0.3, "secondary": 0.0, "tertiary": 0.4}

	for i := 0; i < n; i++ {
		age[i] = float64(25 + rng.Intn(41))
		// Moderately skewed but bounded distributions: KNN with min-max
		// scaling degenerates under unbounded exponential tails.
		balance[i] = float64(int(2000*(rng.Float64()+rng.Float64()))) / 2
		duration[i] = float64(30 + rng.Intn(570))
		campaign[i] = float64(1 + rng.Intn(8))
		job[i] = jobs[rng.Intn(len(jobs))]
		marital[i] = maritals[rng.Intn(len(maritals))]
		education[i] = educations[rng.Intn(len(educations))]
		housing[i] = housings[rng.Intn(len(housings))]

		// Call duration dominates subscription odds, as in the real bank
		// marketing data.
		score := 0.008*(duration[i]-315) + 0.0005*(balance[i]-1000) +
			0.8*jobW[job[i]] + 0.8*eduW[education[i]] - 0.12*(campaign[i]-4)
		if housing[i] == "no" {
			score += 0.3
		}
		labels[i] = labelFromScore(score+0.7*rng.NormFloat64(), 0.10, rng)
	}
	cols := []*table.Column{
		table.NewNumeric("age", age),
		table.NewNumeric("balance", balance),
		table.NewNumeric("duration", duration),
		table.NewNumeric("campaign", campaign),
		table.NewCategorical("job", job),
		table.NewCategorical("marital", marital),
		table.NewCategorical("education", education),
		table.NewCategorical("housing", housing),
	}
	return table.MustNew(cols, labels, 2)
}

// Puma mimics the Puma robot-arm dataset (8192 rows × 8 numeric features):
// a nonlinear dynamics task — the paper reports 0.794 ground-truth accuracy.
// The label thresholds the simulated angular acceleration of link 3 of a
// Puma 560 arm, following the DELVE "puma8NH" family (high noise).
func Puma(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"theta1", "theta2", "theta3", "thetad1", "thetad2", "thetad3", "tau1", "tau2"}
	data := make([][]float64, len(names))
	for f := range names {
		data[f] = make([]float64, n)
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		th1 := (rng.Float64()*2 - 1) * math.Pi / 2
		th2 := (rng.Float64()*2 - 1) * math.Pi / 2
		th3 := (rng.Float64()*2 - 1) * math.Pi / 2
		td1 := rng.NormFloat64()
		td2 := rng.NormFloat64()
		td3 := rng.NormFloat64()
		tau1 := rng.NormFloat64() * 2
		tau2 := rng.NormFloat64() * 2
		vals := []float64{th1, th2, th3, td1, td2, td3, tau1, tau2}
		for f := range names {
			data[f][i] = vals[f]
		}
		// Simplified rigid-body dynamics: acceleration of link 3.
		accel := 2.2*tau2 - 1.4*math.Sin(th2+th3)*tau1 +
			0.8*td2*td2*math.Sin(th3) - 1.1*td3*math.Cos(th2) - 0.5*td1
		labels[i] = labelFromScore(accel+1.6*rng.NormFloat64(), 0.08, rng)
	}
	cols := make([]*table.Column, len(names))
	for f, name := range names {
		cols[f] = table.NewNumeric(name, data[f])
	}
	return table.MustNew(cols, labels, 2)
}

// BabyProduct mimics the Magellan BabyProduct catalogue (3042 rows × 7 mixed
// features; predict high vs low price) — the paper reports 0.668
// ground-truth accuracy, a deliberately hard task ("we selected a subset of
// product categories whose price difference is not so high").
func BabyProduct(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	categories := []string{"bedding", "strollers", "carriers", "toys", "safety", "feeding"}
	brands := []string{"JustBorn", "Graco", "Chicco", "Summer", "Fisher", "Evenflo", "Munchkin", "Skip"}
	catBase := map[string]float64{"bedding": 46, "strollers": 52, "carriers": 50,
		"toys": 44, "safety": 46, "feeding": 42}
	brandPremium := map[string]float64{"JustBorn": 5, "Graco": 28, "Chicco": 38, "Summer": 0,
		"Fisher": 18, "Evenflo": 4, "Munchkin": -4, "Skip": 24}

	category := make([]string, n)
	brand := make([]string, n)
	weight := make([]float64, n)
	length := make([]float64, n)
	width := make([]float64, n)
	titleLen := make([]float64, n)
	rating := make([]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		category[i] = categories[rng.Intn(len(categories))]
		brand[i] = brands[rng.Intn(len(brands))]
		weight[i] = 0.5 + 10*rng.Float64()
		length[i] = 5 + rng.Float64()*30
		width[i] = 3 + rng.Float64()*20
		titleLen[i] = float64(20 + rng.Intn(80))
		rating[i] = 2.5 + rng.Float64()*2.5

		// Price is dominated by weight (shipping class) and brand premium —
		// exactly the attributes whose extraction fails (see
		// InjectBabyProductErrors), so default imputation is costly.
		price := catBase[category[i]] + brandPremium[brand[i]] +
			5*weight[i] + 0.2*length[i] + 0.15*width[i] + 1.5*(rating[i]-3.5) +
			5*rng.NormFloat64()
		y := 0
		if price > 100 {
			y = 1
		}
		if rng.Float64() < 0.08 {
			y = 1 - y
		}
		labels[i] = y
	}
	cols := []*table.Column{
		table.NewCategorical("category", category),
		table.NewCategorical("brand", brand),
		table.NewNumeric("weight", weight),
		table.NewNumeric("length", length),
		table.NewNumeric("width", width),
		table.NewNumeric("title_len", titleLen),
		table.NewNumeric("rating", rating),
	}
	return table.MustNew(cols, labels, 2)
}

// InjectBabyProductErrors reproduces the BabyProduct missingness pattern:
// extraction errors concentrated on the brand and weight attributes, hitting
// rowRate of the records (the paper reports an 11.8% missing-record rate).
// Errors are value-dependent, as web-extraction errors are in practice:
// heavier products (longer spec strings) lose their weight field and
// less-common brands fail brand extraction.
func InjectBabyProductErrors(t *table.Table, rowRate float64, rng *rand.Rand) {
	brand := t.Col("brand")
	weight := t.Col("weight")
	st := weight.Stats()
	std := st.Std
	if std <= 0 {
		std = 1
	}
	freq := map[string]int{}
	for i, v := range brand.Cats {
		if !brand.Missing[i] {
			freq[v]++
		}
	}
	// Row weights: mixture of weight-tail and brand-rarity effects.
	w := make([]float64, t.NumRows())
	total := 0.0
	for i := 0; i < t.NumRows(); i++ {
		z := (weight.Nums[i] - st.Mean) / std
		if z > 4 {
			z = 4
		}
		f := freq[brand.Cats[i]]
		if f == 0 {
			f = 1
		}
		w[i] = math.Exp(1.2*z) + float64(t.NumRows())/float64(f)/10
		total += w[i]
	}
	dirtyN := int(rowRate*float64(t.NumRows()) + 0.5)
	dirty := map[int]bool{}
	for len(dirty) < dirtyN && total > 0 {
		r := rng.Float64() * total
		acc := 0.0
		for i, wi := range w {
			if dirty[i] {
				continue
			}
			acc += wi
			if r < acc {
				dirty[i] = true
				total -= wi
				switch rng.Intn(3) {
				case 0:
					brand.Missing[i] = true
				case 1:
					weight.Missing[i] = true
				default:
					brand.Missing[i] = true
					weight.Missing[i] = true
				}
				break
			}
		}
	}
}
