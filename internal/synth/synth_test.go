package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/knn"
	"repro/internal/table"
)

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		name     string
		gen      func(int, int64) *table.Table
		features int
	}{
		{"Supreme", Supreme, 7},
		{"Bank", Bank, 8},
		{"Puma", Puma, 8},
		{"BabyProduct", BabyProduct, 7},
	}
	for _, c := range cases {
		tb := c.gen(500, 1)
		if tb.NumRows() != 500 {
			t.Fatalf("%s: %d rows", c.name, tb.NumRows())
		}
		if tb.NumCols() != c.features {
			t.Fatalf("%s: %d features, want %d", c.name, tb.NumCols(), c.features)
		}
		if tb.NumLabels != 2 {
			t.Fatalf("%s: %d labels", c.name, tb.NumLabels)
		}
		if tb.MissingCellRate() != 0 {
			t.Fatalf("%s: generator produced missing cells", c.name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Supreme(100, 7)
	b := Supreme(100, 7)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	c := Supreme(100, 8)
	diff := false
	for i := range a.Labels {
		if a.Labels[i] != c.Labels[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical labels")
	}
}

func TestLabelBalance(t *testing.T) {
	gens := map[string]func(int, int64) *table.Table{
		"Supreme": Supreme, "Bank": Bank, "Puma": Puma, "BabyProduct": BabyProduct,
	}
	for name, gen := range gens {
		tb := gen(3000, 11)
		ones := 0
		for _, y := range tb.Labels {
			ones += y
		}
		frac := float64(ones) / float64(len(tb.Labels))
		if frac < 0.25 || frac > 0.75 {
			t.Fatalf("%s: label-1 fraction %v is too imbalanced", name, frac)
		}
	}
}

// TestTasksAreLearnable trains KNN on a clean split of each dataset and
// requires accuracy comfortably above chance — the precondition for any
// cleaning experiment to be meaningful.
func TestTasksAreLearnable(t *testing.T) {
	gens := map[string]func(int, int64) *table.Table{
		"Supreme": Supreme, "Bank": Bank, "Puma": Puma, "BabyProduct": BabyProduct,
	}
	for name, gen := range gens {
		tb := gen(900, 5)
		split, err := tb.SplitRandom(rand.New(rand.NewSource(6)), 0, 300)
		if err != nil {
			t.Fatal(err)
		}
		enc := table.FitEncoder(split.Train, 0)
		clf, err := knn.NewClassifier(3, knn.NegEuclidean{}, enc.EncodeAll(split.Train), split.Train.Labels, 2)
		if err != nil {
			t.Fatal(err)
		}
		acc := clf.Accuracy(enc.EncodeAll(split.Test), split.Test.Labels)
		if acc < 0.58 {
			t.Fatalf("%s: clean KNN accuracy %v barely above chance", name, acc)
		}
	}
}

func TestSupremeKeyFeaturesAreFiveLevel(t *testing.T) {
	tb := Supreme(2000, 3)
	for _, name := range []string{"liberal_votes", "justice_ideology"} {
		col := tb.Col(name)
		if col == nil {
			t.Fatalf("column %s missing", name)
		}
		levels := map[float64]bool{}
		for _, v := range col.Nums {
			levels[v] = true
		}
		if len(levels) != 5 {
			t.Fatalf("%s has %d levels, want 5", name, len(levels))
		}
	}
}

func TestInjectBabyProductErrorsPattern(t *testing.T) {
	tb := BabyProduct(2000, 9)
	rng := rand.New(rand.NewSource(10))
	InjectBabyProductErrors(tb, 0.118, rng)
	rate := tb.MissingRowRate()
	if math.Abs(rate-0.118) > 0.02 {
		t.Fatalf("row rate = %v, want ≈0.118", rate)
	}
	for _, c := range tb.Cols {
		if c.Name != "brand" && c.Name != "weight" && c.MissingCount() > 0 {
			t.Fatalf("column %s has missing cells", c.Name)
		}
	}
	if tb.Col("brand").MissingCount() == 0 || tb.Col("weight").MissingCount() == 0 {
		t.Fatal("brand/weight untouched")
	}
	// Value dependence: missing weights should skew heavy.
	w := tb.Col("weight")
	var missSum, allSum float64
	var missN int
	for i, v := range w.Nums {
		allSum += v
		if w.Missing[i] {
			missSum += v
			missN++
		}
	}
	if missN == 0 || missSum/float64(missN) <= allSum/float64(len(w.Nums)) {
		t.Fatalf("missing weights not heavier than average")
	}
}
