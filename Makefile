GO ?= go

.PHONY: build vet test race bench verify verify-docs clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on catches order-dependent tests (the session store keeps
# cross-test state candidates: tombstones, reaper timing).
test:
	$(GO) test -shuffle=on ./...

# Race-check the concurrency-heavy packages: the serving layer (shared
# engines + pooled scratches), the cleaning loop, the shared selection
# engine (parallel hypothesis sweeps over memoized per-point state), and
# the WAL (group-commit flusher vs concurrent appenders).
race:
	$(GO) test -race -shuffle=on ./internal/serve/... ./internal/cleaning/... ./internal/selection/... ./internal/durable/...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Docs stay honest: vet catches comment drift, docverify extracts every
# ```go fence from the README and architecture doc and builds it against
# the current module.
verify-docs: vet
	$(GO) run ./internal/tools/docverify README.md docs/ARCHITECTURE.md

# Tier-1 gate plus the race suite and the docs check (which runs vet).
verify: build test race verify-docs

clean:
	rm -f cpbench cpclean cpquery cpserve datagen *.test *.prof
