GO ?= go

.PHONY: build vet test race bench verify clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on catches order-dependent tests (the session store keeps
# cross-test state candidates: tombstones, reaper timing).
test:
	$(GO) test -shuffle=on ./...

# Race-check the concurrency-heavy packages: the serving layer (shared
# engines + pooled scratches), the cleaning loop, and the shared selection
# engine (parallel hypothesis sweeps over memoized per-point state).
race:
	$(GO) test -race -shuffle=on ./internal/serve/... ./internal/cleaning/... ./internal/selection/...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Tier-1 gate plus the race suite.
verify: build vet test race

clean:
	rm -f cpbench cpclean cpquery cpserve datagen *.test *.prof
