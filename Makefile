GO ?= go

.PHONY: build vet test race bench verify verify-static verify-docs clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on catches order-dependent tests (the session store keeps
# cross-test state candidates: tombstones, reaper timing).
test:
	$(GO) test -shuffle=on ./...

# Race-check the concurrency-heavy packages: the serving layer (shared
# engines + pooled scratches), the cleaning loop, the shared selection
# engine (parallel hypothesis sweeps over memoized per-point state), the
# WAL (group-commit flusher vs concurrent appenders), and the segment tree
# (read-mostly purity queries under concurrent batch drivers).
race:
	$(GO) test -race -shuffle=on ./internal/serve/... ./internal/cleaning/... ./internal/selection/... ./internal/durable/... ./internal/segtree/...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Docs stay honest: vet catches comment drift, docverify extracts every
# ```go fence from the README and architecture doc and builds it against
# the current module.
verify-docs: vet
	$(GO) run ./internal/tools/docverify README.md docs/ARCHITECTURE.md

# Static analysis: the project-invariant analyzer suite (cpvet, always —
# stdlib-only, so it runs anywhere the toolchain does), then staticcheck and
# govulncheck when their binaries are installed (CI installs them; offline
# dev boxes skip with a note rather than failing the target).
verify-static:
	$(GO) run ./cmd/cpvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "verify-static: staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "verify-static: govulncheck not installed; skipping"; fi

# Tier-1 gate plus the race suite, static analysis, and the docs check
# (which runs vet).
verify: build test race verify-static verify-docs

clean:
	rm -f cpbench cpclean cpquery cpserve datagen *.test *.prof
