GO ?= go

.PHONY: build vet test race bench bench-baseline bench-compare verify verify-static verify-docs clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on catches order-dependent tests (the session store keeps
# cross-test state candidates: tombstones, reaper timing).
test:
	$(GO) test -shuffle=on ./...

# Race-check everything. The concurrency lives in serve (shared engines +
# pooled scratches, and the follower's apply-vs-query seam), replica (the
# tailer loop vs Status/Close), cleaning, selection (parallel hypothesis
# sweeps), durable (group-commit flusher vs concurrent appenders), and
# segtree — but ./... costs little more and catches races that leak across
# package boundaries (e.g. a serve test driving the WAL).
race:
	$(GO) test -race -shuffle=on ./...

# One iteration per benchmark (a smoke pass), with the raw transcript kept
# in bench.out and a machine-readable summary (name, ns/op, custom metrics
# like scans/op) in BENCH_<date>.json for trend tracking / CI artifacts.
# Two sequenced commands, not a pipe, so a benchmark failure fails the
# target instead of being masked by the parser's exit code.
BENCH_JSON = BENCH_$(shell date +%Y-%m-%d).json

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./... > bench.out || (cat bench.out; exit 1)
	@cat bench.out
	$(GO) run ./internal/tools/benchjson -in bench.out -out $(BENCH_JSON)
	@echo "bench: wrote $(BENCH_JSON)"

# Refresh the committed regression baseline for the pinned sweep benchmarks
# (same benchmark set and iteration count bench-compare measures against).
bench-baseline:
	$(GO) test -run XXX -bench 'SweepPlanCache|ScanPositions|BatchQ2_ParallelSweep' -benchtime 50x -count 5 . ./internal/core/ > bench-baseline.out || (cat bench-baseline.out; exit 1)
	@cat bench-baseline.out
	$(GO) run ./internal/tools/benchjson -in bench-baseline.out -out bench/BENCH_baseline.json
	@rm -f bench-baseline.out
	@echo "bench-baseline: wrote bench/BENCH_baseline.json"

# Diff the pinned sweep benchmarks against the committed baseline; fails on
# a >15% ns/op regression (override with BENCH_REGRESSION_PCT).
bench-compare:
	./scripts/bench_compare.sh

# Docs stay honest: vet catches comment drift, docverify extracts every
# ```go fence from the README and architecture doc and builds it against
# the current module.
verify-docs: vet
	$(GO) run ./internal/tools/docverify README.md docs/ARCHITECTURE.md

# Static analysis: the project-invariant analyzer suite (cpvet, always —
# stdlib-only, so it runs anywhere the toolchain does), then staticcheck and
# govulncheck when their binaries are installed (CI installs them; offline
# dev boxes skip with a note rather than failing the target).
verify-static:
	$(GO) run ./cmd/cpvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "verify-static: staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "verify-static: govulncheck not installed; skipping"; fi

# Tier-1 gate plus the race suite, static analysis, and the docs check
# (which runs vet).
verify: build test race verify-static verify-docs

clean:
	rm -f cpbench cpclean cpquery cpserve datagen *.test *.prof bench.out BENCH_*.json
