// Command cpserve runs the batch CP-query HTTP server.
//
// Usage:
//
//	cpserve -addr :8080 [-train dirty.csv -name mydata] [-k 3]
//	        [-max-candidates 125] [-parallelism 0] [-engine-cache 256]
//
// Datasets are registered either at startup (-train: a CSV with missing
// cells whose last column is the integer label, expanded into candidate
// repairs with the paper's §5.1 protocol) or at runtime via the JSON API:
//
//	POST /v1/datasets              register {name, num_labels, examples, kernel, k}
//	GET  /v1/datasets              list registered names
//	GET  /v1/datasets/{name}       dataset info + engine/scratch pool stats
//	POST /v1/datasets/{name}/query batch CP query {points, k?} → Q1/Q2/entropy per point
//	POST /v1/datasets/{name}/clean CPClean session {truth, val_points, max_steps?};
//	                               streams one NDJSON object per cleaning step
//	                               (each with examined_hypotheses, the
//	                               hypothesis Q2 scans the incremental
//	                               selection engine actually performed),
//	                               then a summary line; client disconnect
//	                               aborts the session between steps
//
// Registering with k omitted or 0 defaults to min(3, N). Errors are JSON
// {"error": ...} with status 400 (malformed request), 404 (unknown dataset
// name), or 409 (name registered with a different fingerprint).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/knn"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/table"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	trainPath := flag.String("train", "", "optional incomplete training CSV to register at startup")
	name := flag.String("name", "default", "registration name for -train")
	k := flag.Int("k", 3, "default K for -train")
	maxCands := flag.Int("max-candidates", 125, "cap on candidates per row (-train)")
	parallelism := flag.Int("parallelism", 0, "worker goroutines per batch (0 = GOMAXPROCS)")
	engineCache := flag.Int("engine-cache", 0, "per-dataset engine LRU size (0 = default, <0 = off)")
	flag.Parse()

	srv := serve.NewServer(serve.Config{Parallelism: *parallelism, EngineCacheSize: *engineCache})

	if *trainPath != "" {
		f, err := os.Open(*trainPath)
		if err != nil {
			fatalf("%v", err)
		}
		train, err := table.ReadCSV(f)
		f.Close()
		if err != nil {
			fatalf("reading %s: %v", *trainPath, err)
		}
		enc := table.FitEncoder(train, 0)
		reps, err := repair.Generate(train, nil, enc, repair.Options{MaxRowCandidates: *maxCands})
		if err != nil {
			fatalf("%v", err)
		}
		ds, err := srv.Register(*name, reps.Dataset, knn.NegEuclidean{}, *k)
		if err != nil {
			fatalf("%v", err)
		}
		log.Printf("registered %q: %d rows (%d uncertain), %s possible worlds, fingerprint %.12s",
			ds.Name(), ds.Data().N(), len(ds.Data().UncertainRows()), ds.Data().WorldCount(), ds.Fingerprint())
	}

	log.Printf("cpserve listening on %s", *addr)
	if err := http.ListenAndServe(*addr, serve.Handler(srv)); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cpserve: "+format+"\n", args...)
	os.Exit(1)
}
