// Command cpserve runs the batch CP-query HTTP server.
//
// Usage:
//
//	cpserve -addr :8080 [-train dirty.csv -name mydata] [-k 3]
//	        [-max-candidates 125] [-parallelism 0] [-sweep-workers 0]
//	        [-engine-cache 256] [-max-engine-bytes 1073741824]
//	        [-result-cache-bytes 67108864]
//	        [-max-sessions 64] [-session-ttl 15m]
//	        [-max-register-bytes 33554432] [-max-body-bytes 8388608]
//	        [-data-dir /var/lib/cpserve] [-wal-segment-bytes 8388608]
//	        [-wal-sync-interval 5ms]
//	        [-follow http://leader:8080] [-advertise http://this-host:8080]
//
// With -data-dir set the server is durable: dataset registrations and every
// clean-session event are journaled to a CRC-framed write-ahead log (with
// periodic snapshot compaction) under that directory, and a restart replays
// it — registered datasets come back verbatim, unfinished clean sessions
// come back "suspended" and resume bit-for-bit where the journal ends, and
// released/expired session IDs keep answering 404/410 truthfully. Without
// -data-dir everything is in-memory and dies with the process. Run exactly
// one cpserve per data directory.
//
// With -follow the server is a read-only replica: it tails the leader's WAL
// ship stream (GET /v1/wal/stream), applies every journaled record exactly
// as restart recovery would, re-journals it into its own -data-dir
// (required), and serves all read routes — batch/entropy queries, session
// status, history replay — from the replicated state, byte-identical to the
// leader's answers at the same replication offset. Writes are rejected with
// 421 Misdirected Request plus a Leader header naming the leader (what the
// leader passes via -advertise). A restarting follower resumes from its
// durably persisted cursor; a follower whose cursor the leader has compacted
// away re-bootstraps from GET /v1/wal/snapshot.
//
// Datasets are registered either at startup (-train: a CSV with missing
// cells whose last column is the integer label, expanded into candidate
// repairs with the paper's §5.1 protocol) or at runtime via the JSON API:
//
//	POST   /v1/datasets                 register {name, num_labels, examples, kernel, k}
//	GET    /v1/datasets                 list registered names
//	GET    /v1/datasets/{name}          dataset info + engine/scratch pool stats
//	POST   /v1/datasets/{name}/query    batch CP query {points, k?} → Q1/Q2/entropy per
//	                                    point; repeats of a cached point answer from its
//	                                    retained-tree memo, and a client disconnect cancels
//	                                    the remaining fan-out (499). With
//	                                    Accept: application/x-ndjson the results stream
//	                                    back one JSON line per point, in request order,
//	                                    as they complete
//	POST   /v1/datasets/{name}/clean    create a CPClean session {truth, val_points,
//	                                    k?, max_steps?} → 201 with a session ID;
//	                                    the run is decoupled from any connection
//	GET    /v1/clean/{id}               session status (state, steps, certainty)
//	POST   /v1/clean/{id}/next?steps=N  execute up to N cleaning steps and return
//	                                    them — the resumable pull interface
//	GET    /v1/clean/{id}/stream?from=K NDJSON: replay executed steps after K,
//	                                    then stream live steps (each with
//	                                    examined_hypotheses), then a summary
//	                                    line; disconnecting detaches the client
//	                                    but the session survives for resume
//	POST   /v1/clean/{id}/query         batch CP query under the session's current pins —
//	                                    answers reflect the partially cleaned state, and
//	                                    repeated batches reuse per-point retained trees
//	                                    across pins (see query_memo in the session status);
//	                                    also streams NDJSON under the same Accept header
//	DELETE /v1/clean/{id}               release the session
//	GET    /v1/stats                    serving + WAL statistics (engine caches and byte
//	                                    budgets, query-memo reuse, result-cache hit/miss/
//	                                    bytes counters, fsync count/latency,
//	                                    segment/snapshot counts, last replay duration)
//
// Registering with k omitted or 0 defaults to min(3, N). Errors are JSON
// {"error": ...} with status 400 (malformed request, unknown JSON field,
// trailing body data), 404 (unknown dataset or session), 409 (conflicting
// registration, or a session that already has a driver attached), 410
// (expired session), 413 (request body over the configured cap), 429
// (MaxCleanSessions live sessions already exist), 500 (server-side step
// error, or a write the durable journal rejected), or 503 (server outside
// its serving window: still replaying -data-dir, or shutting down).
//
// The listener sets a read-header timeout (Slowloris protection) and shuts
// down gracefully on SIGINT/SIGTERM: in-flight requests drain, live
// sessions are closed and their pooled resources released, and the WAL is
// flushed and fsynced before exit so a graceful stop loses nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/knn"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/table"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	trainPath := flag.String("train", "", "optional incomplete training CSV to register at startup")
	name := flag.String("name", "default", "registration name for -train")
	k := flag.Int("k", 3, "default K for -train")
	maxCands := flag.Int("max-candidates", 125, "cap on candidates per row (-train)")
	parallelism := flag.Int("parallelism", 0, "worker goroutines per batch (0 = GOMAXPROCS)")
	sweepWorkers := flag.Int("sweep-workers", 0, "span-parallel workers per SS-DC sweep, budgeted against -parallelism (0 or 1 = sequential)")
	engineCache := flag.Int("engine-cache", 0, "per-dataset engine LRU size (0 = default, <0 = off)")
	maxEngineBytes := flag.Int64("max-engine-bytes", 0, "byte budget per (dataset, K) engine cache (0 = default 1GiB, <0 = unlimited)")
	resultCacheBytes := flag.Int64("result-cache-bytes", 64<<20, "byte budget for the server-wide query result cache (≤0 = disabled)")
	maxSessions := flag.Int("max-sessions", 0, "cap on live clean sessions (0 = default, <0 = unlimited)")
	sessionTTL := flag.Duration("session-ttl", 0, "evict clean sessions idle this long (0 = default, <0 = never)")
	maxRegisterBytes := flag.Int64("max-register-bytes", 0, "dataset registration body cap (0 = default, <0 = unlimited)")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "query/clean body cap (0 = default, <0 = unlimited)")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + snapshots); empty = in-memory")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 0, "WAL size that triggers snapshot compaction (0 = default, <0 = never)")
	walSyncInterval := flag.Duration("wal-sync-interval", 0, "group-commit fsync window (0 = default, <0 = fsync every append)")
	follow := flag.String("follow", "", "run as a read-only follower of the leader at this base URL (requires -data-dir)")
	advertise := flag.String("advertise", "", "this leader's client-facing base URL, echoed to followers for write redirects")
	flag.Parse()
	if *follow != "" && *trainPath != "" {
		fatalf("-train and -follow are mutually exclusive: a follower takes registrations only from its leader")
	}

	// The listener comes up immediately and answers 503 until recovery (and
	// any -train registration) completes, so health checks and clients see
	// "retry shortly" instead of connection-refused during a long replay.
	var handler atomic.Value
	handler.Store(http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"cpserve: not ready yet (replaying the data directory); retry shortly"}`)
	})))
	httpSrv := &http.Server{
		Addr: *addr,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(http.Handler).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var (
		srvMu sync.Mutex
		srv   *serve.Server // nil until recovery completes
	)
	//cpvet:allow goroutine -- one-shot startup recovery: publishes the server via handler.Store and exits; process lifetime, nothing to join
	go func() {
		s, err := serve.Open(serve.Config{
			Parallelism:      *parallelism,
			SweepWorkers:     *sweepWorkers,
			EngineCacheSize:  *engineCache,
			MaxEngineBytes:   *maxEngineBytes,
			ResultCacheBytes: *resultCacheBytes,
			MaxCleanSessions: *maxSessions,
			SessionTTL:       *sessionTTL,
			MaxRegisterBytes: *maxRegisterBytes,
			MaxQueryBytes:    *maxBodyBytes,
			DataDir:          *dataDir,
			WALSegmentBytes:  *walSegmentBytes,
			WALSyncInterval:  *walSyncInterval,
			FollowURL:        *follow,
			AdvertiseURL:     *advertise,
		})
		if err != nil {
			fatalf("opening data dir %s: %v", *dataDir, err)
		}
		if *dataDir != "" {
			nDatasets, nSessions := s.RecoveredCounts()
			log.Printf("recovered from %s: %d dataset(s), %d live clean session(s)", *dataDir, nDatasets, nSessions)
		}
		if *follow != "" {
			log.Printf("read-only follower of %s; writes answer 421 with a Leader header", *follow)
		}
		if *trainPath != "" {
			registerTrain(s, *trainPath, *name, *k, *maxCands)
		}
		srvMu.Lock()
		srv = s
		srvMu.Unlock()
		handler.Store(serve.Handler(s))
		log.Printf("cpserve ready")
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Printf("cpserve shutting down: draining in-flight requests")
		drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("cpserve: forced shutdown: %v", err)
		}
		// Close releases live sessions and, when -data-dir is set, flushes and
		// fsyncs the WAL, so a graceful stop loses nothing — not even records
		// still inside the group-commit window. (A SIGTERM during recovery
		// finds srv still nil; the half-opened store has no buffered appends
		// to lose.)
		srvMu.Lock()
		if srv != nil {
			srv.Close()
		}
		srvMu.Unlock()
	}()

	log.Printf("cpserve listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatalf("%v", err)
	}
	<-shutdownDone
	log.Printf("cpserve stopped")
}

// registerTrain loads the -train CSV, expands candidate repairs with the
// paper's §5.1 protocol, and registers the dataset (idempotent when the
// data directory already remembers the identical dataset; a fingerprint
// conflict is fatal — the directory and the flag disagree about the data).
func registerTrain(srv *serve.Server, path, name string, k, maxCands int) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	train, err := table.ReadCSV(f)
	// Read-only file; a close error cannot lose data and the read error wins.
	_ = f.Close()
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	enc := table.FitEncoder(train, 0)
	reps, err := repair.Generate(train, nil, enc, repair.Options{MaxRowCandidates: maxCands})
	if err != nil {
		fatalf("%v", err)
	}
	ds, err := srv.Register(name, reps.Dataset, knn.NegEuclidean{}, k)
	if err != nil {
		fatalf("%v", err)
	}
	log.Printf("registered %q: %d rows (%d uncertain), %s possible worlds, fingerprint %.12s",
		ds.Name(), ds.Data().N(), len(ds.Data().UncertainRows()), ds.Data().WorldCount(), ds.Fingerprint())
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cpserve: "+format+"\n", args...)
	os.Exit(1)
}
