// Command cpserve runs the batch CP-query HTTP server.
//
// Usage:
//
//	cpserve -addr :8080 [-train dirty.csv -name mydata] [-k 3]
//	        [-max-candidates 125] [-parallelism 0] [-engine-cache 256]
//	        [-max-sessions 64] [-session-ttl 15m]
//	        [-max-register-bytes 33554432] [-max-body-bytes 8388608]
//
// Datasets are registered either at startup (-train: a CSV with missing
// cells whose last column is the integer label, expanded into candidate
// repairs with the paper's §5.1 protocol) or at runtime via the JSON API:
//
//	POST   /v1/datasets                 register {name, num_labels, examples, kernel, k}
//	GET    /v1/datasets                 list registered names
//	GET    /v1/datasets/{name}          dataset info + engine/scratch pool stats
//	POST   /v1/datasets/{name}/query    batch CP query {points, k?} → Q1/Q2/entropy per point
//	POST   /v1/datasets/{name}/clean    create a CPClean session {truth, val_points,
//	                                    k?, max_steps?} → 201 with a session ID;
//	                                    the run is decoupled from any connection
//	GET    /v1/clean/{id}               session status (state, steps, certainty)
//	POST   /v1/clean/{id}/next?steps=N  execute up to N cleaning steps and return
//	                                    them — the resumable pull interface
//	GET    /v1/clean/{id}/stream?from=K NDJSON: replay executed steps after K,
//	                                    then stream live steps (each with
//	                                    examined_hypotheses), then a summary
//	                                    line; disconnecting detaches the client
//	                                    but the session survives for resume
//	DELETE /v1/clean/{id}               release the session
//
// Registering with k omitted or 0 defaults to min(3, N). Errors are JSON
// {"error": ...} with status 400 (malformed request, unknown JSON field,
// trailing body data), 404 (unknown dataset or session), 409 (conflicting
// registration, or a session that already has a driver attached), 410
// (expired session), 413 (request body over the configured cap), or 429
// (MaxCleanSessions live sessions already exist).
//
// The listener sets a read-header timeout (Slowloris protection) and shuts
// down gracefully on SIGINT/SIGTERM: in-flight requests drain, then live
// sessions are closed and their pooled resources released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/knn"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/table"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	trainPath := flag.String("train", "", "optional incomplete training CSV to register at startup")
	name := flag.String("name", "default", "registration name for -train")
	k := flag.Int("k", 3, "default K for -train")
	maxCands := flag.Int("max-candidates", 125, "cap on candidates per row (-train)")
	parallelism := flag.Int("parallelism", 0, "worker goroutines per batch (0 = GOMAXPROCS)")
	engineCache := flag.Int("engine-cache", 0, "per-dataset engine LRU size (0 = default, <0 = off)")
	maxSessions := flag.Int("max-sessions", 0, "cap on live clean sessions (0 = default, <0 = unlimited)")
	sessionTTL := flag.Duration("session-ttl", 0, "evict clean sessions idle this long (0 = default, <0 = never)")
	maxRegisterBytes := flag.Int64("max-register-bytes", 0, "dataset registration body cap (0 = default, <0 = unlimited)")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "query/clean body cap (0 = default, <0 = unlimited)")
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		Parallelism:      *parallelism,
		EngineCacheSize:  *engineCache,
		MaxCleanSessions: *maxSessions,
		SessionTTL:       *sessionTTL,
		MaxRegisterBytes: *maxRegisterBytes,
		MaxQueryBytes:    *maxBodyBytes,
	})

	if *trainPath != "" {
		f, err := os.Open(*trainPath)
		if err != nil {
			fatalf("%v", err)
		}
		train, err := table.ReadCSV(f)
		f.Close()
		if err != nil {
			fatalf("reading %s: %v", *trainPath, err)
		}
		enc := table.FitEncoder(train, 0)
		reps, err := repair.Generate(train, nil, enc, repair.Options{MaxRowCandidates: *maxCands})
		if err != nil {
			fatalf("%v", err)
		}
		ds, err := srv.Register(*name, reps.Dataset, knn.NegEuclidean{}, *k)
		if err != nil {
			fatalf("%v", err)
		}
		log.Printf("registered %q: %d rows (%d uncertain), %s possible worlds, fingerprint %.12s",
			ds.Name(), ds.Data().N(), len(ds.Data().UncertainRows()), ds.Data().WorldCount(), ds.Fingerprint())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           serve.Handler(srv),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Printf("cpserve shutting down: draining in-flight requests")
		drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("cpserve: forced shutdown: %v", err)
		}
		srv.Close()
	}()

	log.Printf("cpserve listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatalf("%v", err)
	}
	<-shutdownDone
	log.Printf("cpserve stopped")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cpserve: "+format+"\n", args...)
	os.Exit(1)
}
