// Command cpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	cpbench -exp table1|table2|figure4|figure9|figure10|all [-scale small|medium|paper]
//	        [-dataset NAME] [-seed N] [-csv]
//
// Each experiment prints an aligned text table mirroring the corresponding
// table/figure of the paper; -csv switches to CSV output for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table2|figure4|figure9|figure10|all")
	scaleName := flag.String("scale", "small", "scale preset: small|medium|paper")
	dataset := flag.String("dataset", "", "restrict to one dataset (Table 2 / Figures 9, 10)")
	seed := flag.Int64("seed", 1, "random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	specs := experiments.Specs()
	if *dataset != "" {
		spec, err := experiments.SpecByName(*dataset)
		if err != nil {
			fatal(err)
		}
		specs = []experiments.DatasetSpec{spec}
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n", name, time.Since(start).Round(time.Millisecond))
	}

	emit := func(t *experiments.Table) {
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	want := func(name string) bool { return *exp == name || *exp == "all" }

	if want("table1") {
		run("table1", func() error {
			rows, err := experiments.RunTable1(scale, *seed)
			if err != nil {
				return err
			}
			emit(experiments.Table1Report(rows))
			return nil
		})
	}
	if want("table2") {
		run("table2", func() error {
			var rows []*experiments.Table2Row
			for _, spec := range specs {
				r, err := experiments.RunTable2Dataset(spec, scale, *seed)
				if err != nil {
					return err
				}
				rows = append(rows, r)
			}
			emit(experiments.Table2Report(rows))
			return nil
		})
	}
	if want("figure4") {
		run("figure4", func() error {
			rows := experiments.RunFigure4(nil, *seed)
			emit(experiments.Figure4Report(rows))
			return nil
		})
	}
	if want("figure9") {
		run("figure9", func() error {
			for _, spec := range specs {
				r, err := experiments.RunFigure9Dataset(spec, scale, *seed)
				if err != nil {
					return err
				}
				emit(experiments.Figure9Report(r))
			}
			return nil
		})
	}
	if want("figure10") {
		run("figure10", func() error {
			var pts []experiments.Figure10Point
			for _, spec := range specs {
				p, err := experiments.RunFigure10Dataset(spec, scale, *seed)
				if err != nil {
					return err
				}
				pts = append(pts, p...)
			}
			emit(experiments.Figure10Report(pts))
			return nil
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpbench:", err)
	os.Exit(1)
}
